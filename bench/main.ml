(* Benchmark harness entry point.

   dune exec bench/main.exe              -- run every experiment (E1-E18)
   dune exec bench/main.exe -- e4 e5     -- run a subset
   dune exec bench/main.exe -- smoke     -- tiny smoke run (@bench-smoke)
   dune exec bench/main.exe -- bechamel  -- Bechamel micro-benchmarks
   dune exec bench/main.exe -- all       -- experiments + micro-benchmarks *)

let usage () =
  Printf.printf "usage: bench/main.exe [e1..e20|smoke|bechamel|all]...\n";
  Printf.printf "available experiments: %s\n"
    (String.concat " " (List.map fst Experiments.all))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  Printf.printf
    "REVERE benchmark harness — reproduces the evaluation of\n\
     \"Crossing the Structure Chasm\" (CIDR 2003). See DESIGN.md for the\n\
     per-experiment index and EXPERIMENTS.md for recorded results.\n";
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) Experiments.all
  | [ "all" ] ->
      List.iter (fun (_, f) -> f ()) Experiments.all;
      Micro.run ()
  | [ "smoke" ] -> Experiments.smoke ()
  | [ "bechamel" ] -> Micro.run ()
  | [ "help" ] | [ "--help" ] -> usage ()
  | ids ->
      List.iter
        (fun id ->
          match List.assoc_opt (String.lowercase_ascii id) Experiments.all with
          | Some f -> f ()
          | None ->
              Printf.printf "unknown experiment %S\n" id;
              usage ();
              exit 1)
        ids
