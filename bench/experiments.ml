(* The experiment harness: one function per experiment of DESIGN.md's
   per-experiment index (E1-E9). Each prints an aligned table; the rows
   are what EXPERIMENTS.md records. All experiments are deterministic
   (seeded PRNGs); timings are CPU time and will vary by machine, while
   counters (nodes expanded, rewritings, accuracies) are exact. *)

module T = Util.Ascii_table

let time_ms f =
  let t0 = Sys.time () in
  let result = f () in
  ((Sys.time () -. t0) *. 1000.0, result)

(* Wall-clock timing for the parallel experiments: [Sys.time] sums CPU
   time across domains, which would hide any parallel speedup. *)
let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  ((Unix.gettimeofday () -. t0) *. 1000.0, result)

let header id claim =
  Printf.printf "\n## %s — %s\n\n" id claim

(* ------------------------------------------------------------------ *)
(* E1: reformulation cost vs. number of peers, per topology (claim C3) *)

let e1_sized sizes () =
  header "E1" "PDMS reformulation cost vs. #peers and topology";
  let table =
    T.create
      [ "topology"; "peers"; "mappings"; "time_ms"; "rewritings"; "nodes";
        "answers" ]
  in
  let prng = Util.Prng.create 1 in
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let topology = Pdms.Topology.generate ~prng kind ~n in
          let g =
            Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
              ~tuples_per_peer:4 ()
          in
          let query = Workload.Peers_gen.course_query g ~at:0 in
          let ms, result =
            time_ms (fun () -> Pdms.Answer.answer g.Workload.Peers_gen.catalog query)
          in
          let stats = result.Pdms.Answer.outcome.Pdms.Reformulate.stats in
          T.add_row table
            [ Pdms.Topology.kind_name kind; T.cell_i n;
              T.cell_i (Pdms.Topology.edge_count topology); T.cell_f ms;
              T.cell_i stats.Pdms.Reformulate.emitted;
              T.cell_i stats.Pdms.Reformulate.nodes_expanded;
              T.cell_i (Relalg.Relation.cardinality result.Pdms.Answer.answers) ])
        sizes)
    [ Pdms.Topology.Chain; Pdms.Topology.Binary_tree; Pdms.Topology.Mesh 1 ];
  T.print table

let e1 () = e1_sized [ 4; 8; 16; 32; 48 ] ()

(* ------------------------------------------------------------------ *)
(* E2: pruning ablation (claim C3) *)

let e2 () =
  header "E2" "pruning heuristics ablation (cyclic mesh, n=12, depth cap 12)";
  let prng = Util.Prng.create 2 in
  let topology = Pdms.Topology.generate ~prng (Pdms.Topology.Mesh 1) ~n:12 in
  let g =
    Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
      ~tuples_per_peer:3 ()
  in
  let query = Workload.Peers_gen.course_query g ~at:0 in
  let base =
    { Pdms.Reformulate.no_pruning with Pdms.Reformulate.max_depth = 12 }
  in
  let configs =
    [ ("none", base);
      ("history", { base with Pdms.Reformulate.use_history = true });
      ("history+dominance",
       { base with Pdms.Reformulate.use_history = true; use_visited = true });
      ("+goal-memo",
       { base with
         Pdms.Reformulate.use_history = true;
         use_visited = true;
         use_goal_memo = true });
      ("all (default)", Pdms.Reformulate.default_pruning) ]
  in
  let table =
    T.create [ "pruning"; "time_ms"; "nodes"; "rewritings"; "answers" ]
  in
  List.iter
    (fun (name, pruning) ->
      let ms, result =
        time_ms (fun () ->
            Pdms.Answer.answer ~exec:(Pdms.Exec.with_pruning pruning)
              g.Workload.Peers_gen.catalog query)
      in
      let stats = result.Pdms.Answer.outcome.Pdms.Reformulate.stats in
      T.add_row table
        [ name; T.cell_f ms; T.cell_i stats.Pdms.Reformulate.nodes_expanded;
          T.cell_i stats.Pdms.Reformulate.emitted;
          T.cell_i (Relalg.Relation.cardinality result.Pdms.Answer.answers) ])
    configs;
  T.print table

(* ------------------------------------------------------------------ *)
(* E3: MiniCon vs. Bucket *)

let e3 () =
  header "E3" "MiniCon vs. Bucket rewriting cost (chain queries)";
  let v = Cq.Term.v in
  (* Distinct predicate per position (as in the original MiniCon
     evaluation): e0(X0,X1), e1(X1,X2), ... *)
  let chain_query len =
    let body =
      List.init len (fun i ->
          Cq.Atom.make (Printf.sprintf "e%d" i)
            [ v (Printf.sprintf "X%d" i); v (Printf.sprintf "X%d" (i + 1)) ])
    in
    Cq.Query.make
      (Cq.Atom.make "q" [ v "X0"; v (Printf.sprintf "X%d" len) ])
      body
  in
  (* Relevant views: every distinct subchain of length 1 or 2, exposing
     only its endpoints (projection views — the regime where MiniCon's
     MCD conditions pay off). Our Bucket implementation omits the
     classic algorithm's equality-repair step, so it additionally misses
     rewritings here (reported as bk_rw < mc_rw); its candidate count is
     the cost metric. Distractors: views over unrelated predicates,
     inflating the catalog the way a large PDMS does. *)
  let views len distractors =
    let relevant =
      List.concat_map
        (fun start ->
          List.filter_map
            (fun vlen ->
              if start + vlen > len then None
              else
                let body =
                  List.init vlen (fun i ->
                      Cq.Atom.make (Printf.sprintf "e%d" (start + i))
                        [ v (Printf.sprintf "A%d" (start + i));
                          v (Printf.sprintf "A%d" (start + i + 1)) ])
                in
                let head_args =
                  [ v (Printf.sprintf "A%d" start);
                    v (Printf.sprintf "A%d" (start + vlen)) ]
                in
                Some
                  (Cq.Query.make
                     (Cq.Atom.make (Printf.sprintf "v_%d_%d" start vlen) head_args)
                     body))
            [ 1; 2 ])
        (List.init len Fun.id)
    in
    let noise =
      List.init distractors (fun k ->
          Cq.Query.make
            (Cq.Atom.make (Printf.sprintf "w%d" k) [ v "B0"; v "B1" ])
            [ Cq.Atom.make (Printf.sprintf "f%d" k) [ v "B0"; v "B1" ] ])
    in
    relevant @ noise
  in
  let table =
    T.create
      [ "query_len"; "views"; "mc_ms"; "mc_rw"; "mc_mcds"; "bk_ms"; "bk_rw";
        "bk_candidates" ]
  in
  List.iter
    (fun (len, distractors) ->
      let q = chain_query len in
      let vs = views len distractors in
      let mc_ms, (mc_rw, mc_stats) =
        time_ms (fun () -> Rewrite.Minicon.rewrite ~views:vs q)
      in
      let bk_ms, (bk_rw, bk_stats) =
        time_ms (fun () -> Rewrite.Bucket.rewrite ~max_candidates:50_000 ~views:vs q)
      in
      T.add_row table
        [ T.cell_i len; T.cell_i (List.length vs); T.cell_f mc_ms;
          T.cell_i (List.length mc_rw);
          T.cell_i mc_stats.Rewrite.Minicon.mcds_formed; T.cell_f bk_ms;
          T.cell_i (List.length bk_rw);
          T.cell_i bk_stats.Rewrite.Bucket.candidates_tried ])
    [ (2, 0); (4, 0); (6, 0); (8, 0); (10, 0); (6, 40); (10, 40) ];
  T.print table

(* ------------------------------------------------------------------ *)
(* E4: LSD matching accuracy (claim C1: 70-90%) *)

(* Additional base domains so the claim is not university-specific. *)
module Sm = Corpus.Schema_model

let conference_schema =
  Sm.make ~name:"conference"
    [ Sm.relation "paper"
        [ Sm.attribute "title"; Sm.attribute "author"; Sm.attribute "year" ];
      Sm.relation "session"
        [ Sm.attribute "name"; Sm.attribute "room"; Sm.attribute "time";
          Sm.attribute "day" ];
      Sm.relation "attendee"
        [ Sm.attribute "name"; Sm.attribute "email"; Sm.attribute "phone" ] ]

let clinic_schema =
  Sm.make ~name:"clinic"
    [ Sm.relation "visit"
        [ Sm.attribute "code"; Sm.attribute "day"; Sm.attribute "time";
          Sm.attribute "room" ];
      Sm.relation "doctor"
        [ Sm.attribute "name"; Sm.attribute "phone"; Sm.attribute "office";
          Sm.attribute "email" ] ]

let bookshop_schema =
  Sm.make ~name:"bookshop"
    [ Sm.relation "title_entry"
        [ Sm.attribute "title"; Sm.attribute "author"; Sm.attribute "year";
          Sm.attribute "count" ];
      Sm.relation "contact"
        [ Sm.attribute "name"; Sm.attribute "email"; Sm.attribute "phone" ] ]

let lsd_domains =
  [ ("university", Workload.University.mediated_schema);
    ("conference", conference_schema); ("clinic", clinic_schema);
    ("bookshop", bookshop_schema) ]

let lsd_accuracy prng base ~level ~only =
  let train = 3 and trials = 4 in
  let examples =
    List.concat_map
      (fun i ->
        let variant =
          Workload.Perturb.perturb
            ~name:(Printf.sprintf "train%d" i)
            (Util.Prng.split prng) ~level base
        in
        let mapping =
          List.map
            (fun (b, p) -> (p, Workload.Perturb.label_of b))
            variant.Workload.Perturb.truth
        in
        Matching.Lsd.examples_of_schema ~mapping variant.Workload.Perturb.perturbed)
      (List.init train Fun.id)
  in
  let lsd = Matching.Lsd.train ~examples () in
  let scores =
    List.init trials (fun i ->
        let variant =
          Workload.Perturb.perturb
            ~name:(Printf.sprintf "test%d" i)
            (Util.Prng.split prng) ~level base
        in
        let truth = Workload.Perturb.truth_correspondences variant in
        let assignment =
          Matching.Lsd.match_schema ?only lsd variant.Workload.Perturb.perturbed
        in
        (Matching.Evaluate.score
           ~predicted:(Matching.Evaluate.of_assignment assignment)
           ~truth)
          .Matching.Evaluate.accuracy)
  in
  Util.Stats.mean scores

let e4 () =
  header "E4" "LSD multi-strategy matching accuracy (paper: 70-90%)";
  let table =
    T.create
      [ "domain"; "level"; "acc_meta"; "acc_name"; "acc_bayes"; "acc_struct" ]
  in
  List.iter
    (fun (domain, base) ->
      List.iter
        (fun level ->
          let prng = Util.Prng.create (Hashtbl.hash (domain, level)) in
          let acc only = lsd_accuracy (Util.Prng.copy prng) base ~level ~only in
          T.add_row table
            [ domain; T.cell_f level; T.cell_f (acc None);
              T.cell_f (acc (Some [ "name" ]));
              T.cell_f (acc (Some [ "naive-bayes" ]));
              T.cell_f (acc (Some [ "structure" ])) ])
        [ 0.3; 0.5; 0.75 ])
    lsd_domains;
  T.print table

(* ------------------------------------------------------------------ *)
(* E5: MatchingAdvisor (corpus) vs. direct lexical matching *)

let lexical_match s1 s2 =
  (* Baseline: greedy one-to-one on canonicalised name similarity. *)
  let cols1 = Matching.Column.of_schema s1 and cols2 = Matching.Column.of_schema s2 in
  let sim c1 c2 =
    Util.Strdist.jaccard (Matching.Column.name_tokens c1) (Matching.Column.name_tokens c2)
  in
  let pairs =
    List.concat_map (fun c1 -> List.map (fun c2 -> (c1, c2, sim c1 c2)) cols2) cols1
    |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
  in
  let used1 = ref [] and used2 = ref [] in
  List.filter
    (fun (c1, c2, s) ->
      if s <= 0.0 || List.memq c1 !used1 || List.memq c2 !used2 then false
      else begin
        used1 := c1 :: !used1;
        used2 := c2 :: !used2;
        true
      end)
    pairs
  |> List.map (fun (c1, c2, _) -> (c1, c2))

let base_of truth key =
  List.find_map (fun (b, k) -> if k = key then Some b else None) truth

let pair_correct v1 v2 pairs =
  List.length
    (List.filter
       (fun (col1, col2) ->
         match
           ( base_of v1.Workload.Perturb.truth (Matching.Column.key col1),
             base_of v2.Workload.Perturb.truth (Matching.Column.key col2) )
         with
         | Some x, Some y -> x = y
         | _ -> false)
       pairs)

let pair_accuracy v1 v2 pairs =
  match List.length pairs with
  | 0 -> 0.0
  | n -> float_of_int (pair_correct v1 v2 pairs) /. float_of_int n

(* Base elements surviving in both variants: the matchable pairs. *)
let matchable v1 v2 =
  List.length
    (List.filter
       (fun (b, _) -> List.exists (fun (b', _) -> b = b') v2.Workload.Perturb.truth)
       v1.Workload.Perturb.truth)

let pair_recall v1 v2 pairs =
  match matchable v1 v2 with
  | 0 -> 0.0
  | m -> float_of_int (pair_correct v1 v2 pairs) /. float_of_int m

(* Vocabulary outside every synonym table: renamings a name matcher
   cannot undo, but whose data still gives the game away — the regime
   the corpus tools are for. *)
let exotic_synonyms =
  Util.Synonyms.of_groups
    [ [ "title"; "caption" ]; [ "instructor"; "presenter" ];
      [ "phone"; "extension" ]; [ "email"; "mailbox" ];
      [ "room"; "chamber" ]; [ "name"; "moniker" ]; [ "day"; "slot" ];
      [ "time"; "moment" ]; [ "enrollment"; "headcount" ];
      [ "code"; "tag" ]; [ "office"; "den" ]; [ "year"; "vintage" ];
      [ "speaker"; "orator" ]; [ "author"; "writer" ];
      [ "venue"; "locale" ]; [ "course"; "offering" ];
      [ "person"; "individual" ]; [ "ta"; "helper" ];
      [ "talk"; "address" ]; [ "publication"; "writeup" ] ]

let e5 () =
  header "E5" "MatchingAdvisor (corpus classifiers) vs. direct lexical matching";
  let table =
    T.create
      [ "corpus_size"; "corpus_prec"; "corpus_recall"; "lexical_prec";
        "lexical_recall" ]
  in
  let level = 0.4 in
  List.iter
    (fun size ->
      let prng = Util.Prng.create (100 + size) in
      let corpus =
        Workload.University.corpus_of_variants (Util.Prng.split prng) ~n:size ~level
      in
      let matcher = Matching.Corpus_matcher.build corpus in
      (* The two schemas to match use the exotic vocabulary. *)
      let v1 =
        Workload.Perturb.perturb ~name:"s1" ~synonyms:exotic_synonyms
          (Util.Prng.split prng) ~level Workload.University.mediated_schema
      in
      let v2 =
        Workload.Perturb.perturb ~name:"s2" ~synonyms:exotic_synonyms
          (Util.Prng.split prng) ~level Workload.University.mediated_schema
      in
      let corpus_pairs =
        Matching.Corpus_matcher.match_schemas matcher v1.Workload.Perturb.perturbed
          v2.Workload.Perturb.perturbed
        |> List.map (fun (a, b, _) -> (a, b))
      in
      let lex_pairs =
        lexical_match v1.Workload.Perturb.perturbed v2.Workload.Perturb.perturbed
      in
      T.add_row table
        [ T.cell_i size; T.cell_f (pair_accuracy v1 v2 corpus_pairs);
          T.cell_f (pair_recall v1 v2 corpus_pairs);
          T.cell_f (pair_accuracy v1 v2 lex_pairs);
          T.cell_f (pair_recall v1 v2 lex_pairs) ])
    [ 4; 8; 16; 32 ];
  T.print table

(* ------------------------------------------------------------------ *)
(* E6: DesignAdvisor ranking quality (claim C6) *)

(* Decoys from genuinely foreign domains (no attribute overlap with the
   university vocabulary). *)
let far_decoys prng =
  let num n = Sm.attribute ~values:(Workload.Data_gen.values prng Workload.Data_gen.Count n) in
  let yr n = Sm.attribute ~values:(Workload.Data_gen.values prng Workload.Data_gen.Year n) in
  [ Sm.make ~name:"geology"
      [ Sm.relation "mineral" [ num 15 "hardness"; num 15 "density"; yr 15 "discovered" ];
        Sm.relation "stratum" [ num 15 "depth"; num 15 "porosity" ] ];
    Sm.make ~name:"finance"
      [ Sm.relation "position" [ num 15 "shares"; num 15 "basis"; yr 15 "acquired" ];
        Sm.relation "dividend" [ num 15 "payout"; num 15 "yield_bps" ] ];
    Sm.make ~name:"logistics"
      [ Sm.relation "shipment" [ num 15 "weight_kg"; num 15 "pallets"; num 15 "distance_km" ];
        Sm.relation "depot" [ num 15 "bays"; num 15 "forklifts" ] ] ]

let e6 () =
  header "E6" "DesignAdvisor ranking quality (partial schemas)";
  let table =
    T.create [ "seed_relations"; "top1_domain_acc"; "mean_completions"; "trials" ]
  in
  let trials = 6 in
  List.iter
    (fun k ->
      let hits = ref 0 and completions = ref [] in
      for trial = 1 to trials do
        let prng = Util.Prng.create ((k * 100) + trial) in
        let corpus =
          Workload.University.corpus_of_variants (Util.Prng.split prng) ~n:8
            ~level:0.3
        in
        List.iter
          (fun s ->
            Corpus.Corpus_store.add_schema corpus
              { s with Sm.schema_name = s.Sm.schema_name ^ string_of_int trial })
          (far_decoys (Util.Prng.split prng));
        let fresh =
          Workload.Perturb.perturb ~name:"partial" (Util.Prng.split prng)
            ~level:0.3 Workload.University.mediated_schema
        in
        let partial =
          {
            fresh.Workload.Perturb.perturbed with
            Sm.relations =
              List.filteri
                (fun i _ -> i < k)
                fresh.Workload.Perturb.perturbed.Sm.relations;
          }
        in
        let advisor = Advisor.Design_advisor.build corpus in
        match Advisor.Design_advisor.rank ~limit:1 advisor ~partial with
        | [ best ] ->
            let name = best.Advisor.Design_advisor.candidate.Sm.schema_name in
            if String.length name >= 4 && String.sub name 0 4 = "univ" then
              incr hits;
            completions :=
              float_of_int (List.length best.Advisor.Design_advisor.missing)
              :: !completions
        | _ -> ()
      done;
      T.add_row table
        [ T.cell_i k;
          T.cell_f (float_of_int !hits /. float_of_int trials);
          T.cell_f (Util.Stats.mean !completions); T.cell_i trials ])
    [ 1; 2; 3 ];
  T.print table

(* ------------------------------------------------------------------ *)
(* E7: mapping effort & join cost, PDMS vs. mediated schema (claim C2) *)

let attr_canon_set (s : Sm.t) =
  Sm.attr_names s
  |> List.map (fun a ->
         Util.Tokenize.split_identifier a
         |> List.map (Util.Synonyms.canonical Util.Synonyms.university_domain)
         |> List.map Util.Stemmer.stem
         |> String.concat "_")

let schema_similarity a b =
  Util.Strdist.jaccard (attr_canon_set a) (attr_canon_set b)

let e7 () =
  header "E7"
    "join effort, PDMS (map to closest peer) vs. mediated (map to global schema)";
  let table =
    T.create
      [ "peers"; "pdms_mappings"; "mediated_mappings"; "pdms_join_cost";
        "mediated_join_cost"; "reachable" ]
  in
  List.iter
    (fun n ->
      let prng = Util.Prng.create (7000 + n) in
      (* Peers arrive one by one; each is a variant derived from a random
         EXISTING peer's schema (regional similarity, like Trento/Roma). *)
      let first =
        (Workload.Perturb.perturb ~name:"peer0" (Util.Prng.split prng) ~level:0.5
           Workload.University.mediated_schema)
          .Workload.Perturb.perturbed
      in
      let members = ref [ first ] in
      let pdms_costs = ref [] and mediated_costs = ref [] in
      for i = 1 to n - 1 do
        let parent = Util.Prng.pick prng !members in
        let joiner =
          (Workload.Perturb.perturb
             ~name:(Printf.sprintf "peer%d" i)
             (Util.Prng.split prng) ~level:0.2 parent)
            .Workload.Perturb.perturbed
        in
        (* PDMS: author one mapping to the most similar member. *)
        let best =
          List.fold_left
            (fun acc m -> Float.max acc (schema_similarity joiner m))
            0.0 !members
        in
        pdms_costs := (1.0 -. best) :: !pdms_costs;
        (* Mediated: author one mapping to the fixed global schema. *)
        mediated_costs :=
          (1.0 -. schema_similarity joiner Workload.University.mediated_schema)
          :: !mediated_costs;
        members := joiner :: !members
      done;
      T.add_row table
        [ T.cell_i n; T.cell_i (n - 1); T.cell_i n;
          T.cell_f (Util.Stats.mean !pdms_costs);
          T.cell_f (Util.Stats.mean !mediated_costs); "1.000" ])
    [ 4; 8; 16; 32; 64 ];
  T.print table

(* ------------------------------------------------------------------ *)
(* E8: annotation repository vs. crawl-at-query-time (claim C4) *)

let e8 () =
  header "E8" "stored annotation repository vs. page access at query time";
  let table =
    T.create [ "pages"; "repo_ms"; "crawl_ms"; "speedup"; "courses" ]
  in
  List.iter
    (fun scale ->
      let prng = Util.Prng.create (800 + scale) in
      let pages =
        Workload.Pages.department prng ~host:"uw" ~people:scale
          ~course_pages:scale ~courses_per_page:4
      in
      (* Publish once into the repository. *)
      let repo = Mangrove.Repository.create () in
      List.iter
        (fun (p : Workload.Pages.annotated_page) ->
          let a =
            Mangrove.Annotator.start ~schema:Mangrove.Lightweight_schema.department
              p.Workload.Pages.doc
          in
          Workload.Pages.annotate a p.Workload.Pages.plan;
          ignore (Mangrove.Repository.publish repo a))
        pages;
      let repo_ms, rows = time_ms (fun () -> Mangrove.Apps.calendar repo) in
      (* Crawl baseline: touch every page at query time — re-walk each
         document, re-extract its annotations into a transient store,
         then answer. *)
      let crawl_ms, crawl_rows =
        time_ms (fun () ->
            let transient = Mangrove.Repository.create () in
            List.iter
              (fun (p : Workload.Pages.annotated_page) ->
                (* The crawl must at least read the page... *)
                ignore (Mangrove.Html.word_count p.Workload.Pages.doc);
                let a =
                  Mangrove.Annotator.start
                    ~schema:Mangrove.Lightweight_schema.department
                    p.Workload.Pages.doc
                in
                Workload.Pages.annotate a p.Workload.Pages.plan;
                ignore (Mangrove.Repository.publish transient a))
              pages;
            Mangrove.Apps.calendar transient)
      in
      assert (List.length rows = List.length crawl_rows);
      T.add_row table
        [ T.cell_i (List.length pages); T.cell_f repo_ms; T.cell_f crawl_ms;
          T.cell_f (crawl_ms /. Float.max 0.001 repo_ms);
          T.cell_i (List.length rows) ])
    [ 5; 15; 40 ];
  T.print table

(* ------------------------------------------------------------------ *)
(* E9: updategram maintenance vs. recomputation (claim C5) *)

let e9 () =
  header "E9" "incremental updategram maintenance vs. view recomputation";
  let table =
    T.create
      [ "base_tuples"; "batch"; "incr_ms"; "recompute_ms"; "speedup"; "view_rows" ]
  in
  List.iter
    (fun (base_size, batch) ->
      let prng = Util.Prng.create (900 + base_size + batch) in
      let db = Relalg.Database.create () in
      let r = Relalg.Database.create_relation db "r" [ "a"; "b" ] in
      let s = Relalg.Database.create_relation db "s" [ "b"; "c" ] in
      let domain = base_size / 2 in
      for _ = 1 to base_size do
        Cq.Eval.add_distinct r
          [| Relalg.Value.Int (Util.Prng.int prng domain);
             Relalg.Value.Int (Util.Prng.int prng domain) |];
        Cq.Eval.add_distinct s
          [| Relalg.Value.Int (Util.Prng.int prng domain);
             Relalg.Value.Int (Util.Prng.int prng domain) |]
      done;
      let v = Cq.Term.v in
      let view =
        Cq.Query.make
          (Cq.Atom.make "vw" [ v "X"; v "Z" ])
          [ Cq.Atom.make "r" [ v "X"; v "Y" ]; Cq.Atom.make "s" [ v "Y"; v "Z" ] ]
      in
      let vm = Pdms.View_maintenance.create db view in
      let grams =
        List.init batch (fun _ ->
            Pdms.Updategram.make ~rel:(if Util.Prng.bool prng then "r" else "s")
              ~inserts:
                [ [| Relalg.Value.Int (Util.Prng.int prng domain);
                     Relalg.Value.Int (Util.Prng.int prng domain) |] ]
              ())
      in
      let incr_ms, () =
        time_ms (fun () -> List.iter (Pdms.View_maintenance.apply vm) grams)
      in
      let recompute_ms, () = time_ms (fun () -> Pdms.View_maintenance.refresh vm) in
      T.add_row table
        [ T.cell_i base_size; T.cell_i batch; T.cell_f incr_ms;
          T.cell_f recompute_ms;
          T.cell_f (recompute_ms /. Float.max 0.001 incr_ms);
          T.cell_i (Pdms.View_maintenance.cardinality vm) ])
    [ (1000, 1); (1000, 10); (4000, 1); (4000, 10); (4000, 50) ];
  T.print table

(* ------------------------------------------------------------------ *)
(* E10: cooperative query caching under locality (Section 3.1.2) *)

let e10 () =
  header "E10" "query-result caching under Zipf query locality and updates";
  let table =
    T.create
      [ "update_prob"; "queries"; "hit_rate"; "cached_ms"; "uncached_ms";
        "invalidations" ]
  in
  List.iter
    (fun update_prob ->
      let prng = Util.Prng.create 1000 in
      let topology = Pdms.Topology.generate Pdms.Topology.Chain ~n:8 in
      let g =
        Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
          ~tuples_per_peer:6 ()
      in
      let catalog = g.Workload.Peers_gen.catalog in
      let cache = Pdms.Cache.create catalog () in
      (* Query templates: per peer, the course query plus a projection. *)
      let templates =
        List.concat_map
          (fun at ->
            let base = Workload.Peers_gen.course_query g ~at in
            let projected =
              Cq.Query.make
                (Cq.Atom.make "ans" [ Cq.Term.v "Qtitle" ])
                base.Cq.Query.body
            in
            [ base; projected ])
          [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        |> Array.of_list
      in
      let total_queries = 150 in
      let invalidations = ref 0 in
      let touch_random_peer () =
        let peer = g.Workload.Peers_gen.peers.(Util.Prng.int prng 8) in
        let pred = Pdms.Peer.stored_pred peer "course" in
        let u =
          Pdms.Updategram.make ~rel:pred
            ~inserts:
              [ [| Relalg.Value.Str (Workload.Vocab.course_code prng);
                   Relalg.Value.Str (Workload.Vocab.course_title prng);
                   Relalg.Value.Str (Workload.Vocab.person_name prng) |] ]
            ()
        in
        Pdms.Updategram.apply (Pdms.Catalog.global_db catalog) u;
        invalidations := !invalidations + Pdms.Cache.invalidate cache u
      in
      let cached_ms, () =
        time_ms (fun () ->
            for _ = 1 to total_queries do
              if Util.Prng.bernoulli prng update_prob then touch_random_peer ();
              (* Zipf-skewed template choice: locality. *)
              let rank = Util.Prng.zipf prng ~n:(Array.length templates) ~s:1.2 in
              ignore (Pdms.Cache.answer cache templates.(rank - 1))
            done)
      in
      (* Uncached baseline over an equally skewed stream. *)
      let prng2 = Util.Prng.create 2000 in
      let uncached_ms, () =
        time_ms (fun () ->
            for _ = 1 to total_queries do
              let rank = Util.Prng.zipf prng2 ~n:(Array.length templates) ~s:1.2 in
              ignore (Pdms.Answer.answer catalog templates.(rank - 1))
            done)
      in
      let hit_rate =
        float_of_int (Pdms.Cache.hits cache)
        /. float_of_int (Pdms.Cache.hits cache + Pdms.Cache.misses cache)
      in
      T.add_row table
        [ T.cell_f update_prob; T.cell_i total_queries; T.cell_f hit_rate;
          T.cell_f cached_ms; T.cell_f uncached_ms; T.cell_i !invalidations ])
    [ 0.0; 0.1; 0.3 ];
  T.print table

(* ------------------------------------------------------------------ *)
(* E11: peer-based execution vs. ship-everything-central (Section 3.1.2) *)

let e11 () =
  header "E11" "distributed execution at data sites vs. central shipping";
  let table =
    T.create
      [ "topology"; "peers"; "distributed_ms"; "central_ms"; "ratio"; "answers" ]
  in
  List.iter
    (fun (kind, n) ->
      let prng = Util.Prng.create (1100 + n) in
      let topology = Pdms.Topology.generate ~prng kind ~n in
      let g =
        Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
          ~tuples_per_peer:60 ()
      in
      let names = List.init n (Printf.sprintf "p%d") in
      let network =
        Pdms.Network.of_topology topology ~names ~base_latency_ms:15.0
      in
      (* A selective query: one stored code, so results are small while
         inputs are large — the regime where executing at the data wins. *)
      let some_code =
        let peer = g.Workload.Peers_gen.peers.(n - 1) in
        let stored =
          Relalg.Database.find (Pdms.Peer.stored_db peer)
            (Pdms.Peer.stored_pred peer "course")
        in
        match Relalg.Relation.tuples stored with
        | row :: _ -> row.(0)
        | [] -> Relalg.Value.Str "none"
      in
      let query =
        Cq.Query.make
          (Cq.Atom.make "ans" [ Cq.Term.v "T" ])
          [ Pdms.Peer.atom g.Workload.Peers_gen.peers.(0) "course"
              [ Cq.Term.Const some_code; Cq.Term.v "T"; Cq.Term.v "I" ] ]
      in
      let plan =
        Pdms.Distributed.execute g.Workload.Peers_gen.catalog network ~at:"p0"
          query
      in
      T.add_row table
        [ Pdms.Topology.kind_name kind; T.cell_i n;
          T.cell_f plan.Pdms.Distributed.distributed_ms;
          T.cell_f plan.Pdms.Distributed.central_ms;
          T.cell_f
            (plan.Pdms.Distributed.central_ms
            /. Float.max 0.001 plan.Pdms.Distributed.distributed_ms);
          T.cell_i (Relalg.Relation.cardinality plan.Pdms.Distributed.answers) ])
    [ (Pdms.Topology.Chain, 4); (Pdms.Topology.Chain, 8);
      (Pdms.Topology.Chain, 16); (Pdms.Topology.Star, 8);
      (Pdms.Topology.Star, 16) ];
  T.print table

(* ------------------------------------------------------------------ *)
(* E12: cost-based materialised-view placement (Section 3.1.2) *)

let e12 () =
  header "E12" "greedy view placement vs. single authoritative copy";
  let table =
    T.create
      [ "topology"; "peers"; "hotspots"; "cost_initial"; "cost_placed";
        "replicas"; "improvement" ]
  in
  List.iter
    (fun (kind, n, hotspots) ->
      let prng = Util.Prng.create (1200 + n + hotspots) in
      let topology = Pdms.Topology.generate ~prng kind ~n in
      let names = List.init n (Printf.sprintf "p%d") in
      let network =
        Pdms.Network.of_topology topology ~names ~base_latency_ms:25.0
      in
      (* Hotspot peers issue most of the queries. *)
      let query_freq =
        List.mapi
          (fun i name -> (name, if i < hotspots then 30.0 else 1.0))
          names
      in
      let workloads =
        [ {
            Pdms.Placement.view_name = "calendar";
            query_freq;
            update_rate = 1.0;
            result_size = 2048;
          };
          {
            Pdms.Placement.view_name = "whoswho";
            query_freq = List.rev query_freq;
            update_rate = 0.2;
            result_size = 1024;
          } ]
      in
      let initial = [ ("calendar", [ "p0" ]); ("whoswho", [ "p0" ]) ] in
      let before = Pdms.Placement.cost network workloads initial in
      let placed =
        Pdms.Placement.greedy network workloads ~initial ~max_replicas:4
      in
      let after = Pdms.Placement.cost network workloads placed in
      let replicas =
        List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 placed
      in
      T.add_row table
        [ Pdms.Topology.kind_name kind; T.cell_i n; T.cell_i hotspots;
          T.cell_f before; T.cell_f after; T.cell_i replicas;
          T.cell_f (before /. Float.max 0.001 after) ])
    [ (Pdms.Topology.Chain, 6, 1); (Pdms.Topology.Chain, 12, 2);
      (Pdms.Topology.Chain, 16, 3); (Pdms.Topology.Star, 8, 2);
      (Pdms.Topology.Star, 16, 3) ];
  T.print table

(* ------------------------------------------------------------------ *)
(* E13: rewriting-union scaling — sequential vs. parallel evaluation of
   the union of rewritings (the PDMS answer path's hot loop) *)

(* The seed's union evaluation for reference: one shared answer list,
   membership by linear scan (what [Relation.insert_distinct] did before
   the hash-set membership structure). *)
let list_backed_union db qs =
  let head_tuple (q : Cq.Query.t) b =
    Array.of_list
      (List.map
         (function
           | Cq.Term.Const v -> v
           | Cq.Term.Var x -> Cq.Eval.Smap.find x b)
         q.Cq.Query.head.Cq.Atom.args)
  in
  let seen = ref [] in
  let count = ref 0 in
  List.iter
    (fun q ->
      List.iter
        (fun b ->
          let row = head_tuple q b in
          if not (List.exists (fun r -> r = row) !seen) then begin
            seen := row :: !seen;
            incr count
          end)
        (Cq.Eval.run_bindings db q))
    qs;
  !count

let e13_configs configs () =
  header "E13"
    "rewriting-union scaling: union evaluation, jobs in {1, 2, 4, cores}";
  let cores = Util.Pool.cpu_count () in
  Printf.printf "(hardware reports %d core%s)\n" cores
    (if cores = 1 then "" else "s");
  let jobs_list = List.sort_uniq compare [ 1; 2; 4; cores ] in
  let table =
    T.create
      [ "peers"; "tuples"; "rewritings"; "jobs"; "time_ms"; "speedup";
        "vs_list"; "ktuples_s" ]
  in
  List.iter
    (fun (n, tuples_per_peer) ->
      let prng = Util.Prng.create (1300 + n + tuples_per_peer) in
      let topology = Pdms.Topology.generate ~prng (Pdms.Topology.Mesh 1) ~n in
      let g =
        Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
          ~tuples_per_peer ~with_join:true ()
      in
      let query = Workload.Peers_gen.join_query g ~at:0 in
      let outcome =
        Pdms.Reformulate.reformulate g.Workload.Peers_gen.catalog query
      in
      let rewritings = outcome.Pdms.Reformulate.rewritings in
      (* One snapshot, frozen up front, shared by every jobs setting —
         no run gets to reuse indexes another run paid for. *)
      let db = Pdms.Catalog.global_db_snapshot g.Workload.Peers_gen.catalog in
      Relalg.Database.freeze db;
      let list_ms, list_count =
        wall_ms (fun () -> list_backed_union db rewritings)
      in
      Printf.printf
        "BENCH_e13_baseline {\"peers\":%d,\"tuples_per_peer\":%d,\
         \"rewritings\":%d,\"list_backed_ms\":%.2f,\"answers\":%d}\n"
        n tuples_per_peer (List.length rewritings) list_ms list_count;
      let baseline = ref 1.0 in
      List.iter
        (fun jobs ->
          let ms, answers =
            wall_ms (fun () ->
                Pdms.Answer.eval_union ~exec:(Pdms.Exec.with_jobs jobs) db
                  rewritings)
          in
          if jobs = 1 then baseline := ms;
          let speedup = !baseline /. Float.max 0.001 ms in
          let vs_list = list_ms /. Float.max 0.001 ms in
          let produced = Relalg.Relation.cardinality answers in
          assert (produced = list_count);
          let ktuples_s = float_of_int produced /. Float.max 0.001 ms in
          T.add_row table
            [ T.cell_i n; T.cell_i tuples_per_peer;
              T.cell_i (List.length rewritings); T.cell_i jobs; T.cell_f ms;
              T.cell_f speedup; T.cell_f vs_list; T.cell_f ktuples_s ];
          Printf.printf
            "BENCH_e13 {\"peers\":%d,\"tuples_per_peer\":%d,\"rewritings\":%d,\
             \"jobs\":%d,\"time_ms\":%.2f,\"speedup\":%.2f,\
             \"speedup_vs_list_backed\":%.2f,\"answers\":%d}\n"
            n tuples_per_peer (List.length rewritings) jobs ms speedup vs_list
            produced)
        jobs_list)
    configs;
  T.print table

let e13 () = e13_configs [ (8, 200); (12, 400); (16, 600) ] ()

(* ------------------------------------------------------------------ *)
(* E14: reformulation throughput — the final subsumption sweep
   (signature prefilter + optional parallelism) against the seed's
   unprefiltered O(n²) sweep, on dense Fig. 2-style topologies; plus the
   answer-cache hit-latency micro-bench against the seed's list-scan
   store. *)

(* The seed's containment test (no signature prefilter), reconstructed
   from the primitives: freeze the head, seed the substitution
   head-onto-head, search for a homomorphism. *)
let unprefiltered_contained_in (q1 : Cq.Query.t) (q2 : Cq.Query.t) =
  let frozen_head = Cq.Homomorphism.freeze_atom q1.Cq.Query.head in
  match Cq.Subst.match_atom Cq.Subst.empty q2.Cq.Query.head frozen_head with
  | None -> false
  | Some init ->
      Cq.Homomorphism.exists ~init ~from:q2.Cq.Query.body q1.Cq.Query.body

(* The seed's final sweep verbatim: every ordered pair pays the full
   homomorphism search. *)
let seed_sweep rewritings =
  let arr = Array.of_list rewritings in
  let n = Array.length arr in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if
        i <> j && keep.(i) && keep.(j)
        && unprefiltered_contained_in arr.(i) arr.(j)
      then
        if unprefiltered_contained_in arr.(j) arr.(i) then (
          if j > i then keep.(j) <- false else keep.(i) <- false)
        else keep.(i) <- false
    done
  done;
  List.filteri (fun i _ -> keep.(i)) (Array.to_list arr)

let e14_sweep_configs configs =
  let cores = Util.Pool.cpu_count () in
  let jobs_list = List.sort_uniq compare [ 1; 2; 4; cores ] in
  let table =
    T.create
      [ "peers"; "raw_rw"; "kept"; "jobs"; "sweep_ms"; "seed_ms"; "vs_seed" ]
  in
  List.iter
    (fun (n, cap) ->
      let prng = Util.Prng.create (1400 + n) in
      let topology = Pdms.Topology.generate ~prng (Pdms.Topology.Mesh 2) ~n in
      let g =
        Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
          ~tuples_per_peer:2 ()
      in
      let query = Workload.Peers_gen.course_query g ~at:0 in
      (* Raw emissions: subsumption off, so the sweep input is the dense
         duplicated set the emit-time index normally thins out. *)
      let pruning =
        {
          Pdms.Reformulate.default_pruning with
          Pdms.Reformulate.use_subsumption = false;
          max_rewritings = cap;
        }
      in
      let outcome =
        Pdms.Reformulate.reformulate ~exec:(Pdms.Exec.with_pruning pruning)
          g.Workload.Peers_gen.catalog
          query
      in
      let raw = outcome.Pdms.Reformulate.rewritings in
      let raw_n = List.length raw in
      let seed_ms, seed_kept = wall_ms (fun () -> seed_sweep raw) in
      Printf.printf
        "BENCH_e14_seed_sweep {\"peers\":%d,\"raw_rewritings\":%d,\
         \"kept\":%d,\"seed_ms\":%.2f}\n"
        n raw_n (List.length seed_kept) seed_ms;
      let reference = ref [] in
      List.iter
        (fun jobs ->
          let ms, kept =
            wall_ms (fun () ->
                Pdms.Reformulate.subsumption_sweep
                  ~exec:(Pdms.Exec.with_jobs jobs) raw)
          in
          let rendered = List.map Cq.Query.to_string kept in
          if jobs = 1 then begin
            reference := rendered;
            (* The prefiltered sweep must keep exactly what the seed's
               sweep keeps. *)
            assert (rendered = List.map Cq.Query.to_string seed_kept)
          end
          else
            (* ... and every jobs value must agree byte-for-byte. *)
            assert (rendered = !reference);
          let vs_seed = seed_ms /. Float.max 0.001 ms in
          T.add_row table
            [ T.cell_i n; T.cell_i raw_n; T.cell_i (List.length kept);
              T.cell_i jobs; T.cell_f ms; T.cell_f seed_ms;
              T.cell_f vs_seed ];
          Printf.printf
            "BENCH_e14_sweep {\"peers\":%d,\"raw_rewritings\":%d,\
             \"kept\":%d,\"jobs\":%d,\"sweep_ms\":%.2f,\
             \"speedup_vs_seed\":%.2f}\n"
            n raw_n (List.length kept) jobs ms vs_seed)
        jobs_list)
    configs;
  T.print table

(* Cache micro-bench: hit latency must be flat in the entry count
   (hashtable + intrusive LRU) where the seed's list store scanned
   linearly. The list-scan baseline replays the same lookups over an
   assoc list of the same keys. *)
let e14_cache_micro entry_counts =
  let lookups = 20_000 in
  let catalog = Pdms.Catalog.create () in
  let peer =
    Pdms.Peer.create ~name:"cachepeer"
      ~schema:[ ("course", [ "code"; "title" ]) ]
  in
  Pdms.Catalog.add_peer catalog peer;
  let stored = Pdms.Catalog.store_identity catalog peer ~rel:"course" in
  Relalg.Relation.apply stored
    (Relalg.Relation.Delta.add
       [| Relalg.Value.Str "cse444"; Relalg.Value.Str "databases" |]);
  let mk i =
    Cq.Query.make
      (Cq.Atom.make (Printf.sprintf "q%d" i) [ Cq.Term.v "X"; Cq.Term.v "Y" ])
      [ Pdms.Peer.atom peer "course" [ Cq.Term.v "X"; Cq.Term.v "Y" ] ]
  in
  let table =
    T.create [ "entries"; "ns_per_hit"; "list_ns_per_hit"; "list_vs_cache" ]
  in
  List.iter
    (fun m ->
      let cache = Pdms.Cache.create ~capacity:1024 catalog () in
      let queries = Array.init m mk in
      Array.iter (fun q -> ignore (Pdms.Cache.answer cache q)) queries;
      assert (Pdms.Cache.entries cache = m);
      let hits0 = Pdms.Cache.hits cache in
      let prng = Util.Prng.create (1450 + m) in
      let picks = Array.init lookups (fun _ -> Util.Prng.int prng m) in
      let ms, () =
        wall_ms (fun () ->
            Array.iter
              (fun i -> ignore (Pdms.Cache.answer cache queries.(i)))
              picks)
      in
      (* Every lookup must have been a hit — no hidden evictions. *)
      assert (Pdms.Cache.hits cache = hits0 + lookups);
      (* The seed's store: an assoc list probed by key equality, the
         entry's position depending on recency. We scan a static list of
         the same rendered keys — flattering to the seed, which also
         paid a timestamped LRU fold per miss. *)
      let keys = Array.to_list (Array.map Cq.Query.to_string queries) in
      let list_ms, () =
        wall_ms (fun () ->
            Array.iter
              (fun i ->
                let key = Cq.Query.to_string queries.(i) in
                ignore (List.find_opt (fun k -> String.equal k key) keys))
              picks)
      in
      let ns_per_hit = ms *. 1e6 /. float_of_int lookups in
      let list_ns = list_ms *. 1e6 /. float_of_int lookups in
      T.add_row table
        [ T.cell_i m; T.cell_f ns_per_hit; T.cell_f list_ns;
          T.cell_f (list_ns /. Float.max 0.001 ns_per_hit) ];
      Printf.printf
        "BENCH_e14_cache {\"entries\":%d,\"ns_per_hit\":%.0f,\
         \"list_scan_ns_per_hit\":%.0f}\n"
        m ns_per_hit list_ns)
    entry_counts;
  T.print table

let e14_configs ~sweep ~cache_entries () =
  header "E14"
    "reformulation throughput: subsumption sweep vs seed + cache hit latency";
  let cores = Util.Pool.cpu_count () in
  Printf.printf "(hardware reports %d core%s)\n" cores
    (if cores = 1 then "" else "s");
  e14_sweep_configs sweep;
  e14_cache_micro cache_entries

let e14 () =
  e14_configs
    ~sweep:[ (16, 192); (32, 256); (48, 256) ]
    ~cache_entries:[ 64; 256; 1024 ] ()

(* ------------------------------------------------------------------ *)
(* E15: instrumentation overhead. The Obs layer is designed to stay on
   permanently, so the null-sink configuration (tracing disabled,
   metrics enabled — Exec.default) must be indistinguishable from a
   fully disabled build. We measure the E14 subsumption-sweep workload
   in three modes and assert the null-sink overhead against a budget:
   <2% in the full run (the tentpole's acceptance bar; the sweep is the
   tightest loop the instrumentation touches). The smoke configuration
   uses a smaller sweep where fixed costs loom larger, so its assertion
   bar is looser — it guards against regressions that make
   instrumentation grossly expensive, not against single-percent
   drift. *)

let e15_sweep_input ~peers ~cap =
  let prng = Util.Prng.create (1400 + peers) in
  let topology = Pdms.Topology.generate ~prng (Pdms.Topology.Mesh 2) ~n:peers in
  let g =
    Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
      ~tuples_per_peer:2 ()
  in
  let query = Workload.Peers_gen.course_query g ~at:0 in
  let pruning =
    {
      Pdms.Reformulate.default_pruning with
      Pdms.Reformulate.use_subsumption = false;
      max_rewritings = cap;
    }
  in
  (Pdms.Reformulate.reformulate ~exec:(Pdms.Exec.with_pruning pruning)
     g.Workload.Peers_gen.catalog query)
    .Pdms.Reformulate.rewritings

let e15_configs ~peers ~cap ~threshold_pct () =
  header "E15"
    "instrumentation overhead: Obs null sink vs disabled on the E14 sweep";
  let raw = e15_sweep_input ~peers ~cap in
  let raw_n = List.length raw in
  let sweep exec = Pdms.Reformulate.subsumption_sweep ~exec raw in
  (* Calibrate the iteration count so each measurement runs long enough
     for the wall clock (~60ms), then take the best of [repeats] runs to
     shed scheduler noise. *)
  let once_ms, reference = wall_ms (fun () -> sweep Pdms.Exec.default) in
  let iters = max 1 (min 5_000 (int_of_float (60.0 /. Float.max 0.01 once_ms))) in
  let repeats = 5 in
  let best exec =
    let ms = ref infinity in
    for _ = 1 to repeats do
      let m, () =
        wall_ms (fun () ->
            for _ = 1 to iters do
              ignore (sweep exec : Cq.Query.t list)
            done)
      in
      if m < !ms then ms := m
    done;
    !ms /. float_of_int iters
  in
  let disabled_exec = Pdms.Exec.make ~metrics:false () in
  let memory_exec () =
    Pdms.Exec.make ~trace:(Obs.Trace.create (Obs.Sink.memory ())) ()
  in
  (* Mode 1: everything off — the global switch turns even registered
     counters into no-ops, approximating an uninstrumented build. *)
  Obs.Metrics.set_enabled false;
  let base_ms =
    Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled true)
      (fun () -> best disabled_exec)
  in
  (* Mode 2: the permanent default — metrics counted, tracing nulled. *)
  let null_ms = best Pdms.Exec.default in
  (* Mode 3: full tracing into a memory sink (what `--trace` pays). *)
  let traced_ms = best (memory_exec ()) in
  (* Instrumentation must not change the result. *)
  let render qs = List.map Cq.Query.to_string qs in
  assert (render (sweep disabled_exec) = render reference);
  assert (render (sweep (memory_exec ())) = render reference);
  let pct ms = (ms -. base_ms) /. Float.max 1e-9 base_ms *. 100.0 in
  let table = T.create [ "mode"; "sweep_ms"; "overhead_pct" ] in
  T.add_row table [ "disabled"; T.cell_f base_ms; T.cell_f 0.0 ];
  T.add_row table [ "null-sink"; T.cell_f null_ms; T.cell_f (pct null_ms) ];
  T.add_row table
    [ "memory-sink"; T.cell_f traced_ms; T.cell_f (pct traced_ms) ];
  T.print table;
  Printf.printf
    "BENCH_e15_overhead {\"peers\":%d,\"raw_rewritings\":%d,\"iters\":%d,\
     \"disabled_ms\":%.4f,\"null_sink_ms\":%.4f,\"memory_sink_ms\":%.4f,\
     \"null_overhead_pct\":%.2f,\"budget_pct\":%.1f}\n"
    peers raw_n iters base_ms null_ms traced_ms (pct null_ms) threshold_pct;
  if pct null_ms >= threshold_pct then (
    Printf.printf
      "E15 FAILED: null-sink overhead %.2f%% exceeds the %.1f%% budget\n"
      (pct null_ms) threshold_pct;
    exit 1)

let e15 () = e15_configs ~peers:48 ~cap:256 ~threshold_pct:2.0 ()

(* ------------------------------------------------------------------ *)
(* E16: completeness/latency under peer failures. Distributed execution
   on the E14 topology (Mesh 2) with an increasing fraction of peers
   failed: how much of the answer survives, and what the retry layer
   spends finding out. The zero-fault configuration is asserted complete
   from every peer — a CI guard against silent degradation. *)

let e16_configs ~peers ~tuples_per_peer ~rates () =
  header "E16"
    "answer completeness and retry cost under peer failures (Mesh 2)";
  let n = peers in
  let prng = Util.Prng.create (1600 + n) in
  let topology = Pdms.Topology.generate ~prng (Pdms.Topology.Mesh 2) ~n in
  let g =
    Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
      ~tuples_per_peer ()
  in
  let catalog = g.Workload.Peers_gen.catalog in
  let names = List.init n (Printf.sprintf "p%d") in
  let network =
    Pdms.Network.of_topology topology ~names ~base_latency_ms:15.0
  in
  let query = Workload.Peers_gen.course_query g ~at:0 in
  let full_answers =
    Relalg.Relation.cardinality (Pdms.Answer.answer catalog query).Pdms.Answer.answers
  in
  (* Zero-fault guard: every peer's seed query must come back complete. *)
  List.iteri
    (fun i _ ->
      let p =
        Pdms.Distributed.execute catalog network
          ~at:(Printf.sprintf "p%d" i)
          (Workload.Peers_gen.course_query g ~at:i)
      in
      if not p.Pdms.Distributed.report.Pdms.Distributed.complete then (
        Printf.printf
          "E16 FAILED: zero-fault query at p%d reported incomplete\n" i;
        exit 1))
    names;
  let table =
    T.create
      [ "fail_rate"; "peers_down"; "complete"; "answers"; "full"; "dropped";
        "retries"; "backoff_ms"; "distributed_ms"; "wall_ms" ]
  in
  List.iter
    (fun rate ->
      Pdms.Network.Fault.heal network;
      let fprng = Util.Prng.create (1660 + int_of_float (rate *. 100.0)) in
      let downed =
        List.filter
          (fun p ->
            (not (String.equal p "p0")) && Util.Prng.bernoulli fprng rate)
          names
      in
      List.iter (Pdms.Network.Fault.fail_peer network) downed;
      let ms, plan =
        wall_ms (fun () ->
            Pdms.Distributed.execute catalog network ~at:"p0" query)
      in
      let r = plan.Pdms.Distributed.report in
      let answers =
        Relalg.Relation.cardinality plan.Pdms.Distributed.answers
      in
      T.add_row table
        [ T.cell_f rate; T.cell_i (List.length downed);
          string_of_bool r.Pdms.Distributed.complete; T.cell_i answers;
          T.cell_i full_answers;
          T.cell_i r.Pdms.Distributed.rewritings_dropped;
          T.cell_i r.Pdms.Distributed.retries;
          T.cell_f r.Pdms.Distributed.backoff_ms;
          T.cell_f plan.Pdms.Distributed.distributed_ms; T.cell_f ms ];
      Printf.printf
        "BENCH_e16 {\"peers\":%d,\"fail_rate\":%.2f,\"peers_down\":%d,\
         \"complete\":%b,\"answers\":%d,\"full_answers\":%d,\
         \"rewritings_dropped\":%d,\"retries\":%d,\"backoff_ms\":%.1f,\
         \"distributed_ms\":%.1f,\"wall_ms\":%.2f}\n"
        n rate (List.length downed) r.Pdms.Distributed.complete answers
        full_answers r.Pdms.Distributed.rewritings_dropped
        r.Pdms.Distributed.retries r.Pdms.Distributed.backoff_ms
        plan.Pdms.Distributed.distributed_ms ms)
    rates;
  Pdms.Network.Fault.heal network;
  T.print table

let e16 () =
  e16_configs ~peers:12 ~tuples_per_peer:6 ~rates:[ 0.0; 0.1; 0.25; 0.5 ] ()

(* ------------------------------------------------------------------ *)
(* E17: shared-prefix batch evaluation — the Cq.Plan trie against
   per-rewriting union evaluation, on the Fig. 2 topology sweep. The
   three-atom chain query unfolds to one rewriting per peer triple, so
   sibling rewritings that differ only in their last atom share the
   whole two-atom course-instr join as a trie prefix, and the trie
   computes each shared join once. Guards: answers byte-identical to
   the per-rewriting path at every point, bindings actually reused, and
   a minimum speedup at the config's guard point (exit 1 otherwise). *)

let e17_rows rel =
  Relalg.Relation.tuples rel
  |> List.map (fun row -> Array.to_list (Array.map Relalg.Value.to_string row))
  |> List.sort compare

let e17_configs ~repeats configs () =
  header "E17"
    "shared-prefix batch evaluation: Cq.Plan trie vs per-rewriting union \
     (jobs=1)";
  let table =
    T.create
      [ "topology"; "peers"; "rewritings"; "trie_nodes"; "shared"; "answers";
        "nobatch_ms"; "batch_ms"; "speedup"; "reused" ]
  in
  List.iter
    (fun (topo_name, kind, n, tuples_per_peer, min_speedup) ->
      let prng = Util.Prng.create (1700 + n + tuples_per_peer) in
      let topology = Pdms.Topology.generate ~prng kind ~n in
      let g =
        Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
          ~tuples_per_peer ~with_join:true ()
      in
      let query = Workload.Peers_gen.chain_query g ~at:0 in
      let outcome =
        Pdms.Reformulate.reformulate g.Workload.Peers_gen.catalog query
      in
      let rewritings = outcome.Pdms.Reformulate.rewritings in
      (* One frozen snapshot shared by both modes: neither run pays for
         or reuses the other's index builds. *)
      let db = Pdms.Catalog.global_db_snapshot g.Workload.Peers_gen.catalog in
      Relalg.Database.freeze db;
      let nobatch_exec = Pdms.Exec.make ~batch:false () in
      let best f =
        let rec go best_ms last = function
          | 0 -> (best_ms, Option.get last)
          | k ->
              let ms, result = wall_ms f in
              go (Float.min best_ms ms) (Some result) (k - 1)
        in
        go infinity None (max 1 repeats)
      in
      let nobatch_ms, nobatch_out =
        best (fun () -> Pdms.Answer.eval_union ~exec:nobatch_exec db rewritings)
      in
      let before = Obs.Metrics.snapshot () in
      let batch_ms, batch_out =
        best (fun () -> Pdms.Answer.eval_union db rewritings)
      in
      let after = Obs.Metrics.snapshot () in
      let delta name =
        (Obs.Metrics.counter_value after name
        - Obs.Metrics.counter_value before name)
        / max 1 repeats
      in
      let nodes = delta "cq.plan.nodes" in
      let shared = delta "cq.plan.shared_prefix_atoms" in
      let reused = delta "cq.plan.bindings_reused" in
      if e17_rows batch_out <> e17_rows nobatch_out then begin
        Printf.printf
          "E17 FAILED: batch answers differ from --no-batch at %s n=%d\n"
          topo_name n;
        exit 1
      end;
      if reused <= 0 then begin
        Printf.printf
          "E17 FAILED: cq.plan.bindings_reused = %d at %s n=%d (no sharing?)\n"
          reused topo_name n;
        exit 1
      end;
      let speedup = nobatch_ms /. Float.max 0.001 batch_ms in
      let answers = Relalg.Relation.cardinality batch_out in
      T.add_row table
        [ topo_name; T.cell_i n; T.cell_i (List.length rewritings);
          T.cell_i nodes; T.cell_i shared; T.cell_i answers;
          T.cell_f nobatch_ms; T.cell_f batch_ms; T.cell_f speedup;
          T.cell_i reused ];
      Printf.printf
        "BENCH_e17 {\"topology\":\"%s\",\"peers\":%d,\"tuples_per_peer\":%d,\
         \"rewritings\":%d,\"trie_nodes\":%d,\"shared_prefix_atoms\":%d,\
         \"bindings_reused\":%d,\"answers\":%d,\"nobatch_ms\":%.2f,\
         \"batch_ms\":%.2f,\"speedup\":%.2f}\n"
        topo_name n tuples_per_peer (List.length rewritings) nodes shared
        reused answers nobatch_ms batch_ms speedup;
      match min_speedup with
      | Some floor when speedup < floor ->
          Printf.printf
            "E17 FAILED: speedup %.2fx below the %.1fx floor at %s n=%d\n"
            speedup floor topo_name n;
          exit 1
      | Some _ | None -> ())
    configs;
  T.print table

let e17 () =
  e17_configs ~repeats:5
    [ ("chain", Pdms.Topology.Chain, 16, 48, None);
      ("chain", Pdms.Topology.Chain, 32, 48, None);
      ("tree", Pdms.Topology.Binary_tree, 16, 48, None);
      ("tree", Pdms.Topology.Binary_tree, 48, 48, None);
      ("mesh2", Pdms.Topology.Mesh 2, 16, 48, None);
      ("mesh2", Pdms.Topology.Mesh 2, 32, 48, None);
      (* The acceptance point: high-sharing 48-peer Mesh-2 union. *)
      ("mesh2", Pdms.Topology.Mesh 2, 48, 48, Some 2.0) ]
    ()

(* E18: inverted-index keyword search — Kwindex vs --no-index brute
   force over generated peer workloads. Repeated (warm) searches are
   the regime the index targets: index entries, the merged df corpus,
   and per-tuple norms are all version-guarded caches, so a warm query
   touches only its tokens' postings, while the brute path rebuilds the
   corpus and re-vectorizes every tuple per call. Guards: hit lists
   byte-identical (scores, order, tie-breaks) between the two paths and
   across every jobs value, and a minimum warm speedup at the config's
   guard point (exit 1 otherwise). *)

let e18_hits hits =
  List.map
    (fun (h : Pdms.Keyword.hit) ->
      ( h.Pdms.Keyword.peer,
        h.Pdms.Keyword.stored_rel,
        Array.map Relalg.Value.to_string h.Pdms.Keyword.tuple,
        Int64.bits_of_float h.Pdms.Keyword.score ))
    hits

let e18_configs ~repeats ~queries:nq configs () =
  header "E18"
    "inverted-index keyword search: Kwindex vs --no-index (warm repeated \
     queries, jobs=1)";
  let table =
    T.create
      [ "peers"; "tuples"; "docs"; "queries"; "candidates"; "skipped";
        "brute_ms"; "indexed_ms"; "speedup" ]
  in
  List.iter
    (fun (n, tuples_per_peer, min_speedup) ->
      let prng = Util.Prng.create (1800 + n + tuples_per_peer) in
      let topology = Pdms.Topology.generate ~prng (Pdms.Topology.Mesh 1) ~n in
      let g =
        Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
          ~tuples_per_peer ~with_join:true ()
      in
      let catalog = g.Workload.Peers_gen.catalog in
      let queries =
        Workload.Peers_gen.keyword_queries g (Util.Prng.split prng) ~n:nq
      in
      let docs = n * tuples_per_peer * 2 in
      let jobs_list =
        List.sort_uniq compare [ 1; 2; 4; Util.Pool.cpu_count () ]
      in
      (* Byte-identity guard: every query, both paths, every jobs value
         (this also warms the version-guarded caches for the timing). *)
      List.iter
        (fun query ->
          let reference =
            e18_hits
              (Pdms.Keyword.search
                 ~exec:(Pdms.Exec.make ~index:false ())
                 catalog query)
          in
          List.iter
            (fun jobs ->
              let brute =
                e18_hits
                  (Pdms.Keyword.search
                     ~exec:(Pdms.Exec.make ~index:false ~jobs ())
                     catalog query)
              in
              let indexed =
                e18_hits
                  (Pdms.Keyword.search ~exec:(Pdms.Exec.make ~jobs ())
                     catalog query)
              in
              if brute <> reference || indexed <> reference then begin
                Printf.printf
                  "E18 FAILED: hit lists differ (jobs=%d, peers=%d, \
                   query=%S)\n"
                  jobs n query;
                exit 1
              end)
            jobs_list)
        queries;
      let run exec =
        List.iter
          (fun query -> ignore (Pdms.Keyword.search ~exec catalog query))
          queries
      in
      let best f =
        let rec go best_ms = function
          | 0 -> best_ms
          | k ->
              let ms, () = wall_ms f in
              go (Float.min best_ms ms) (k - 1)
        in
        go infinity (max 1 repeats)
      in
      let brute_ms =
        best (fun () -> run (Pdms.Exec.make ~index:false ()))
      in
      let before = Obs.Metrics.snapshot () in
      let indexed_ms = best (fun () -> run Pdms.Exec.default) in
      let after = Obs.Metrics.snapshot () in
      (* Per query-batch repeat. *)
      let delta name =
        (Obs.Metrics.counter_value after name
        - Obs.Metrics.counter_value before name)
        / max 1 repeats
      in
      let candidates = delta "pdms.kwindex.candidates" in
      let skipped = delta "pdms.kwindex.skipped_by_bound" in
      let rebuilt = delta "pdms.kwindex.builds" in
      if rebuilt > 0 then begin
        Printf.printf
          "E18 FAILED: %d index rebuilds during warm queries (peers=%d)\n"
          rebuilt n;
        exit 1
      end;
      let speedup = brute_ms /. Float.max 0.001 indexed_ms in
      T.add_row table
        [ T.cell_i n; T.cell_i tuples_per_peer; T.cell_i docs; T.cell_i nq;
          T.cell_i candidates; T.cell_i skipped; T.cell_f brute_ms;
          T.cell_f indexed_ms; T.cell_f speedup ];
      Printf.printf
        "BENCH_e18 {\"peers\":%d,\"tuples_per_peer\":%d,\"docs\":%d,\
         \"queries\":%d,\"candidates\":%d,\"skipped_by_bound\":%d,\
         \"brute_ms\":%.2f,\"indexed_ms\":%.2f,\"speedup\":%.2f}\n"
        n tuples_per_peer docs nq candidates skipped brute_ms indexed_ms
        speedup;
      match min_speedup with
      | Some floor when speedup < floor ->
          Printf.printf
            "E18 FAILED: warm speedup %.2fx below the %.1fx floor at \
             peers=%d\n"
            speedup floor n;
          exit 1
      | Some _ | None -> ())
    configs;
  T.print table

let e18 () =
  e18_configs ~repeats:3 ~queries:12
    [ (16, 50, None);
      (32, 100, None);
      (* The acceptance point: largest workload, >= 5x warm speedup. *)
      (48, 200, Some 5.0) ]
    ()

(* ------------------------------------------------------------------ *)
(* E19: live updates — delta-patched maintenance of the inverted index,
   statistics and result caches vs the --no-incremental version-guarded
   rebuild discipline.  Each round pushes a small updategram through
   Updategram.apply and then brings the derived structures current: the
   touched relation's index entry (Kwindex patches its postings vs a
   full reindex), Stats.of_relation (delta fold vs rescan), and a
   cached answer whose pinned constant can never unify with the changed
   tuples (the delta probe keeps the entry; the baseline drops it and
   pays a full re-answer every round).  Both modes replay the identical
   update stream on identically generated worlds.  Guards: search hit
   lists and query answers byte-identical between the modes for jobs in
   {1,2,4}, zero pdms.delta.rebuild_fallbacks in the incremental runs,
   and a minimum speedup at the config's guard point (exit 1
   otherwise). *)

let e19_world n tuples_per_peer =
  let prng = Util.Prng.create (1900 + n + tuples_per_peer) in
  let topology = Pdms.Topology.generate ~prng (Pdms.Topology.Mesh 1) ~n in
  let g =
    Workload.Peers_gen.generate (Util.Prng.split prng) ~topology
      ~tuples_per_peer ~with_join:true ()
  in
  let queries =
    Workload.Peers_gen.keyword_queries g (Util.Prng.split prng) ~n:4
  in
  let p0 = g.Workload.Peers_gen.peers.(0) in
  let pinned =
    Cq.Query.make
      (Cq.Atom.make "pin" [ Cq.Term.v "T" ])
      [ Pdms.Peer.atom p0 "course"
          [ Cq.Term.Const (Relalg.Value.Str "e19-nosuch"); Cq.Term.v "T";
            Cq.Term.v "I" ] ]
  in
  (g, queries, pinned)

(* The update stream is a pure function of the round number, so separate
   worlds replay byte-identical mutations: one insert per round into the
   stored relations round-robin, plus (once the stream wraps around) the
   retraction of the row inserted a full lap earlier. *)
let e19_gram db names i =
  let k = List.length names in
  let rel = List.nth names (i mod k) in
  let arity =
    Relalg.Schema.arity (Relalg.Relation.schema (Relalg.Database.find db rel))
  in
  let row j =
    Array.init arity (fun c ->
        Relalg.Value.Str (Printf.sprintf "delta%d col%d" j c))
  in
  let deletes = if i >= k then [ row (i - k) ] else [] in
  Pdms.Updategram.make ~rel ~inserts:[ row i ] ~deletes ()

let e19_fallbacks () =
  Obs.Metrics.counter_value (Obs.Metrics.snapshot ())
    "pdms.delta.rebuild_fallbacks"

let e19_configs ~rounds configs () =
  header "E19"
    "live updates: delta-patched index/stats/cache maintenance vs \
     --no-incremental version-guarded rebuild (round-robin updategrams)";
  let table =
    T.create
      [ "peers"; "tuples"; "rounds"; "patched"; "stats_patched";
        "cache_kept"; "rebuild_ms"; "incremental_ms"; "speedup" ]
  in
  List.iter
    (fun (n, tuples_per_peer, min_speedup) ->
      (* A fresh world per mode and pass: identical seeds give identical
         catalogs, so the streams are comparable tuple for tuple. *)
      let fresh incremental =
        Pdms.Kwindex.reset ();
        Relalg.Stats.reset_cache ();
        let g, queries, pinned = e19_world n tuples_per_peer in
        let catalog = g.Workload.Peers_gen.catalog in
        let db = Pdms.Catalog.global_db catalog in
        let names = List.sort String.compare (Relalg.Database.names db) in
        let exec = Pdms.Exec.make ~incremental () in
        let cache = Pdms.Cache.create catalog () in
        (* Warm every derived structure to the pre-update state. *)
        List.iter (fun q -> ignore (Pdms.Keyword.search ~exec catalog q)) queries;
        List.iter
          (fun nm ->
            ignore
              (Relalg.Stats.of_relation ~incremental
                 (Relalg.Database.find db nm)))
          names;
        ignore (Pdms.Cache.answer ~exec cache pinned);
        (queries, pinned, catalog, db, names, exec, cache)
      in
      (* One maintenance round: apply the gram, then bring every derived
         structure current for the touched relation.  This is the timed
         unit — query *serving* (probing, corpus merge, ranking) costs
         the same in both modes and is exercised untimed below. *)
      let round (_, pinned, _, db, names, exec, cache) i =
        let u = e19_gram db names i in
        let rel = Relalg.Database.find db u.Pdms.Updategram.rel in
        Pdms.Updategram.apply ~exec db u;
        ignore (Pdms.Cache.invalidate ~exec cache u);
        ignore
          (Pdms.Kwindex.get ~incremental:exec.Pdms.Exec.incremental
             ~rel_name:u.Pdms.Updategram.rel rel);
        ignore
          (Relalg.Stats.of_relation ~incremental:exec.Pdms.Exec.incremental
             rel);
        ignore (Pdms.Cache.answer ~exec cache pinned)
      in
      (* Byte-identity pass: replay the stream in both modes, transcribing
         rendered hits (jobs in {1,2,4}) and query answers every round. *)
      let transcript incremental =
        let (queries, _, catalog, _, _, _, _) as world = fresh incremental in
        let acc = ref [] in
        for i = 0 to min rounds 8 - 1 do
          round world i;
          List.iter
            (fun jobs ->
              let e = Pdms.Exec.make ~incremental ~jobs () in
              let hits =
                Pdms.Keyword.search ~limit:10 ~exec:e catalog
                  (List.nth queries (i mod List.length queries))
              in
              acc :=
                List.rev_append (List.map Pdms.Keyword.render_hit hits) !acc)
            [ 1; 2; 4 ];
          let aq =
            Cq.Query.make
              (Cq.Atom.make "ans"
                 [ Cq.Term.v "C"; Cq.Term.v "T"; Cq.Term.v "I" ])
              [ Cq.Atom.make "p0.course"
                  [ Cq.Term.v "C"; Cq.Term.v "T"; Cq.Term.v "I" ] ]
          in
          List.iter
            (fun jobs ->
              let e = Pdms.Exec.make ~incremental ~jobs () in
              let answers =
                Pdms.Answer.answers_list (Pdms.Answer.answer ~exec:e catalog aq)
              in
              acc :=
                List.rev_append (List.map (String.concat "|") answers) !acc)
            [ 1; 2; 4 ]
        done;
        !acc
      in
      let fb0 = e19_fallbacks () in
      let t_incr = transcript true in
      let fb_identity = e19_fallbacks () - fb0 in
      let t_rebuild = transcript false in
      if t_incr <> t_rebuild then begin
        Printf.printf
          "E19 FAILED: incremental and rebuild transcripts differ (peers=%d)\n"
          n;
        exit 1
      end;
      (* Timing pass. *)
      let timed incremental =
        let world = fresh incremental in
        let ms, () =
          wall_ms (fun () ->
              for i = 0 to rounds - 1 do
                round world i
              done)
        in
        ms
      in
      let rebuild_ms = timed false in
      let fb1 = e19_fallbacks () in
      let before = Obs.Metrics.snapshot () in
      let incremental_ms = timed true in
      let after = Obs.Metrics.snapshot () in
      let fb_timed = e19_fallbacks () - fb1 in
      if fb_identity + fb_timed > 0 then begin
        Printf.printf
          "E19 FAILED: %d rebuild fallbacks in incremental mode (peers=%d)\n"
          (fb_identity + fb_timed) n;
        exit 1
      end;
      let delta name =
        Obs.Metrics.counter_value after name
        - Obs.Metrics.counter_value before name
      in
      let patched = delta "pdms.delta.patched_postings" in
      let stats_patched = delta "pdms.delta.stats_patched" in
      let cache_kept = delta "pdms.delta.cache_kept" in
      let speedup = rebuild_ms /. Float.max 0.001 incremental_ms in
      T.add_row table
        [ T.cell_i n; T.cell_i tuples_per_peer; T.cell_i rounds;
          T.cell_i patched; T.cell_i stats_patched; T.cell_i cache_kept;
          T.cell_f rebuild_ms; T.cell_f incremental_ms; T.cell_f speedup ];
      Printf.printf
        "BENCH_e19 {\"peers\":%d,\"tuples_per_peer\":%d,\"rounds\":%d,\
         \"patched_postings\":%d,\"stats_patched\":%d,\"cache_kept\":%d,\
         \"rebuild_ms\":%.2f,\"incremental_ms\":%.2f,\"speedup\":%.2f}\n"
        n tuples_per_peer rounds patched stats_patched cache_kept rebuild_ms
        incremental_ms speedup;
      match min_speedup with
      | Some floor when speedup < floor ->
          Printf.printf
            "E19 FAILED: speedup %.2fx below the %.1fx floor at peers=%d\n"
            speedup floor n;
          exit 1
      | Some _ | None -> ())
    configs;
  T.print table

let e19 () =
  e19_configs ~rounds:40
    [ (8, 60, None);
      (16, 120, None);
      (* The acceptance point: largest workload, >= 5x incremental win. *)
      (32, 200, Some 5.0) ]
    ()

(* ------------------------------------------------------------------ *)
(* E20: durability cost — write-ahead logging overhead on the E19
   maintenance sweep (guard: < 2x over in-memory), and recovery time as
   a function of the WAL suffix length (snapshotting resets the curve
   to near-zero). *)

let e20_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "revere-e20-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir dir 0o755;
    dir

let e20_configs ~rounds ~suffixes configs () =
  header "E20"
    "durability: WAL append overhead on the E19 maintenance sweep, and \
     recovery time vs WAL suffix length";
  let exec = Pdms.Exec.make ~incremental:true () in
  (* One E19-style maintenance round, with the gram applied through
     [apply_gram] — the only difference between the modes is whether
     that call tees the effective delta into the WAL first. *)
  let round apply_gram catalog db names cache pinned i =
    let u = e19_gram db names i in
    let rel = Relalg.Database.find db u.Pdms.Updategram.rel in
    apply_gram u;
    ignore (Pdms.Cache.invalidate ~exec cache u);
    ignore
      (Pdms.Kwindex.get ~incremental:true ~rel_name:u.Pdms.Updategram.rel rel);
    ignore (Relalg.Stats.of_relation ~incremental:true rel);
    ignore (Pdms.Cache.answer ~exec cache (pinned : Cq.Query.t));
    ignore (catalog : Pdms.Catalog.t)
  in
  let warm catalog db queries pinned cache names =
    List.iter (fun q -> ignore (Pdms.Keyword.search ~exec catalog q)) queries;
    List.iter
      (fun nm ->
        ignore
          (Relalg.Stats.of_relation ~incremental:true
             (Relalg.Database.find db nm)))
      names;
    ignore (Pdms.Cache.answer ~exec cache pinned)
  in
  let table =
    T.create
      [ "peers"; "tuples"; "rounds"; "mem_ms"; "wal_ms"; "overhead";
        "wal_kb"; "appends" ]
  in
  List.iter
    (fun (n, tuples_per_peer, max_overhead) ->
      (* In-memory baseline: the E19 sweep as-is. *)
      Pdms.Kwindex.reset ();
      Relalg.Stats.reset_cache ();
      let g, queries, pinned = e19_world n tuples_per_peer in
      let catalog = g.Workload.Peers_gen.catalog in
      let db = Pdms.Catalog.global_db catalog in
      let names = List.sort String.compare (Relalg.Database.names db) in
      let cache = Pdms.Cache.create catalog () in
      warm catalog db queries pinned cache names;
      let mem_ms, () =
        wall_ms (fun () ->
            for i = 0 to rounds - 1 do
              round
                (fun u -> Pdms.Updategram.apply ~exec db u)
                catalog db names cache pinned i
            done)
      in
      (* Durable: an identically-seeded world recovered from its own
         init snapshot, every effective delta teed into the WAL. *)
      Pdms.Kwindex.reset ();
      Relalg.Stats.reset_cache ();
      let g2, queries2, pinned2 = e19_world n tuples_per_peer in
      let dir = e20_dir () in
      Pdms.Persist.init ~dir g2.Workload.Peers_gen.catalog;
      let t = Pdms.Persist.open_dir_exn dir in
      let catalog2 = Pdms.Persist.catalog t and db2 = Pdms.Persist.db t in
      let names2 = List.sort String.compare (Relalg.Database.names db2) in
      let cache2 = Pdms.Cache.create catalog2 () in
      warm catalog2 db2 queries2 pinned2 cache2 names2;
      let before = Obs.Metrics.snapshot () in
      let wal_ms, () =
        wall_ms (fun () ->
            for i = 0 to rounds - 1 do
              round
                (fun u -> Pdms.Persist.apply ~exec t u)
                catalog2 db2 names2 cache2 pinned2 i
            done)
      in
      let after = Obs.Metrics.snapshot () in
      let wal_bytes = Pdms.Persist.wal_size t in
      Pdms.Persist.close t;
      let appends =
        Obs.Metrics.counter_value after "pdms.wal.appends"
        - Obs.Metrics.counter_value before "pdms.wal.appends"
      in
      let overhead = wal_ms /. Float.max 0.001 mem_ms in
      T.add_row table
        [ T.cell_i n; T.cell_i tuples_per_peer; T.cell_i rounds;
          T.cell_f mem_ms; T.cell_f wal_ms; T.cell_f overhead;
          T.cell_f (float_of_int wal_bytes /. 1024.0); T.cell_i appends ];
      Printf.printf
        "BENCH_e20 {\"peers\":%d,\"tuples_per_peer\":%d,\"rounds\":%d,\
         \"mem_ms\":%.2f,\"wal_ms\":%.2f,\"overhead\":%.2f,\
         \"wal_bytes\":%d,\"appends\":%d}\n"
        n tuples_per_peer rounds mem_ms wal_ms overhead wal_bytes appends;
      match max_overhead with
      | Some cap when overhead > cap ->
          Printf.printf
            "E20 FAILED: WAL overhead %.2fx above the %.1fx cap at peers=%d\n"
            overhead cap n;
          exit 1
      | Some _ | None -> ())
    configs;
  T.print table;
  (* Recovery time grows with the replayed WAL suffix; a snapshot
     resets it to (nearly) the parse cost alone. *)
  let rtable =
    T.create [ "wal_records"; "recover_ms"; "snap_recover_ms" ]
  in
  List.iter
    (fun suffix ->
      Pdms.Kwindex.reset ();
      Relalg.Stats.reset_cache ();
      let g, _, _ = e19_world 6 30 in
      let dir = e20_dir () in
      Pdms.Persist.init ~dir g.Workload.Peers_gen.catalog;
      let t = Pdms.Persist.open_dir_exn dir in
      let db = Pdms.Persist.db t in
      let names = List.sort String.compare (Relalg.Database.names db) in
      for i = 0 to suffix - 1 do
        Pdms.Persist.apply t (e19_gram db names i)
      done;
      Pdms.Persist.close t;
      let recover_ms, t' = wall_ms (fun () -> Pdms.Persist.open_dir_exn dir) in
      ignore (Pdms.Persist.snapshot t');
      Pdms.Persist.close t';
      let snap_recover_ms, t'' =
        wall_ms (fun () -> Pdms.Persist.open_dir_exn dir)
      in
      Pdms.Persist.close t'';
      T.add_row rtable
        [ T.cell_i suffix; T.cell_f recover_ms; T.cell_f snap_recover_ms ];
      Printf.printf
        "BENCH_e20_recovery {\"wal_records\":%d,\"recover_ms\":%.2f,\
         \"snap_recover_ms\":%.2f}\n"
        suffix recover_ms snap_recover_ms)
    suffixes;
  T.print rtable

let e20 () =
  e20_configs ~rounds:400 ~suffixes:[ 100; 400; 1600 ]
    [ (8, 60, None);
      (* The acceptance point: logging every delta must stay under 2x
         the in-memory sweep. *)
      (16, 120, Some 2.0) ]
    ()

(* Tiny sizes so `dune build @bench-smoke` exercises the harness without
   a full run. *)
let smoke () =
  e1_sized [ 4 ] ();
  e13_configs [ (4, 10) ] ();
  e14_configs ~sweep:[ (6, 48) ] ~cache_entries:[ 32 ] ();
  e15_configs ~peers:12 ~cap:128 ~threshold_pct:30.0 ();
  e16_configs ~peers:6 ~tuples_per_peer:2 ~rates:[ 0.0; 0.5 ] ();
  (* Durability runs before the timing-guarded experiments (their
     machine-sensitive floors can exit early): the WAL-overhead cap is
     left unguarded at smoke sizes (a single round is timer noise); the
     recovery path still runs. *)
  e20_configs ~rounds:20 ~suffixes:[ 50 ] [ (6, 20, None) ] ();
  (* Best-of-5 keeps the tiny high-sharing point's batch-never-slower
     guard (1.0x) out of timer-noise territory. *)
  e17_configs ~repeats:5 [ ("mesh2", Pdms.Topology.Mesh 2, 10, 20, Some 1.0) ] ();
  (* Indexed-never-slower floor: warm repeated searches must at least
     match brute force even at toy sizes. *)
  e18_configs ~repeats:5 ~queries:4 [ (6, 20, Some 1.0) ] ();
  (* Incremental-never-slower floor plus the byte-identity and
     zero-fallback guards at toy sizes. *)
  e19_configs ~rounds:5 [ (6, 40, Some 1.0) ] ()

let all = [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
            ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
            ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14);
            ("e15", e15); ("e16", e16); ("e17", e17); ("e18", e18);
            ("e19", e19); ("e20", e20) ]
