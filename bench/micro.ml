(* Bechamel micro-benchmarks for the hot paths, one Test.make per
   experiment family. Run with: dune exec bench/main.exe -- bechamel *)

open Bechamel
open Toolkit

let minicon_fixture =
  let v = Cq.Term.v in
  let query =
    Cq.Query.make
      (Cq.Atom.make "q" [ v "X0"; v "X6" ])
      (List.init 6 (fun i ->
           Cq.Atom.make (Printf.sprintf "e%d" i)
             [ v (Printf.sprintf "X%d" i); v (Printf.sprintf "X%d" (i + 1)) ]))
  in
  let views =
    List.concat_map
      (fun start ->
        List.filter_map
          (fun vlen ->
            if start + vlen > 6 then None
            else
              Some
                (Cq.Query.make
                   (Cq.Atom.make (Printf.sprintf "v_%d_%d" start vlen)
                      [ v (Printf.sprintf "A%d" start);
                        v (Printf.sprintf "A%d" (start + vlen)) ])
                   (List.init vlen (fun i ->
                        Cq.Atom.make (Printf.sprintf "e%d" (start + i))
                          [ v (Printf.sprintf "A%d" (start + i));
                            v (Printf.sprintf "A%d" (start + i + 1)) ]))))
          [ 1; 2 ])
      (List.init 6 Fun.id)
  in
  (query, views)

let test_minicon =
  let query, views = minicon_fixture in
  Test.make ~name:"minicon:chain6-subchain-views"
    (Staged.stage (fun () -> ignore (Rewrite.Minicon.rewrite ~views query)))

let reformulate_fixture =
  let prng = Util.Prng.create 41 in
  let topology = Pdms.Topology.generate Pdms.Topology.Chain ~n:8 in
  let g = Workload.Peers_gen.generate prng ~topology ~tuples_per_peer:3 () in
  (g.Workload.Peers_gen.catalog, Workload.Peers_gen.course_query g ~at:0)

let test_reformulate =
  let catalog, query = reformulate_fixture in
  Test.make ~name:"pdms:reformulate-chain8"
    (Staged.stage (fun () -> ignore (Pdms.Reformulate.reformulate catalog query)))

let triple_fixture =
  let prng = Util.Prng.create 42 in
  let repo = Mangrove.Repository.create () in
  ignore
    (Workload.Pages.publish_department prng ~repo ~host:"uw" ~people:10
       ~course_pages:10 ~courses_per_page:4);
  repo

let test_triple_query =
  let repo = triple_fixture in
  Test.make ~name:"mangrove:calendar-40courses"
    (Staged.stage (fun () -> ignore (Mangrove.Apps.calendar repo)))

let view_fixture =
  let prng = Util.Prng.create 43 in
  let db = Relalg.Database.create () in
  let r = Relalg.Database.create_relation db "r" [ "a"; "b" ] in
  let s = Relalg.Database.create_relation db "s" [ "b"; "c" ] in
  for _ = 1 to 2000 do
    Cq.Eval.add_distinct r
      [| Relalg.Value.Int (Util.Prng.int prng 500);
         Relalg.Value.Int (Util.Prng.int prng 500) |];
    Cq.Eval.add_distinct s
      [| Relalg.Value.Int (Util.Prng.int prng 500);
         Relalg.Value.Int (Util.Prng.int prng 500) |]
  done;
  let v = Cq.Term.v in
  let view =
    Cq.Query.make
      (Cq.Atom.make "vw" [ v "X"; v "Z" ])
      [ Cq.Atom.make "r" [ v "X"; v "Y" ]; Cq.Atom.make "s" [ v "Y"; v "Z" ] ]
  in
  let vm = Pdms.View_maintenance.create db view in
  let prng' = Util.Prng.create 44 in
  (vm, prng')

let test_view_maintenance =
  let vm, prng = view_fixture in
  Test.make ~name:"pdms:updategram-apply"
    (Staged.stage (fun () ->
         Pdms.View_maintenance.apply vm
           (Pdms.Updategram.make ~rel:"r"
              ~inserts:
                [ [| Relalg.Value.Int (Util.Prng.int prng 500);
                     Relalg.Value.Int (Util.Prng.int prng 500) |] ]
              ())))

let test_stemmer =
  Test.make ~name:"util:porter-stem"
    (Staged.stage (fun () -> ignore (Util.Stemmer.stem "relational")))

let lsd_fixture =
  let prng = Util.Prng.create 45 in
  let examples =
    List.concat_map
      (fun i ->
        let variant =
          Workload.Perturb.perturb
            ~name:(Printf.sprintf "t%d" i)
            (Util.Prng.split prng) ~level:0.3 Workload.University.mediated_schema
        in
        let mapping =
          List.map
            (fun (b, p) -> (p, Workload.Perturb.label_of b))
            variant.Workload.Perturb.truth
        in
        Matching.Lsd.examples_of_schema ~mapping variant.Workload.Perturb.perturbed)
      [ 0; 1; 2 ]
  in
  let lsd = Matching.Lsd.train ~examples () in
  let probe =
    Workload.Perturb.perturb ~name:"probe" prng ~level:0.3
      Workload.University.mediated_schema
  in
  (lsd, List.hd (Matching.Column.of_schema probe.Workload.Perturb.perturbed))

let test_lsd_predict =
  let lsd, column = lsd_fixture in
  Test.make ~name:"matching:lsd-predict-column"
    (Staged.stage (fun () -> ignore (Matching.Lsd.predict_column lsd column)))

let run () =
  let tests =
    Test.make_grouped ~name:"revere"
      [ test_minicon; test_reformulate; test_triple_query;
        test_view_maintenance; test_stemmer; test_lsd_predict ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  Printf.printf "\n## Bechamel micro-benchmarks (monotonic clock, ns/run)\n\n";
  let table = Util.Ascii_table.create [ "benchmark"; "ns_per_run"; "r2" ] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%.1f" e
        | Some es ->
            String.concat "," (List.map (Printf.sprintf "%.1f") es)
        | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      Util.Ascii_table.add_row table [ name; estimate; r2 ])
    results;
  Util.Ascii_table.print table
