let shred xml =
  let db = Relalg.Database.create () in
  let node_rel = Relalg.Database.create_relation db "node" [ "id"; "tag" ] in
  let edge_rel =
    Relalg.Database.create_relation db "edge" [ "parent"; "child"; "position" ]
  in
  let content_rel = Relalg.Database.create_relation db "content" [ "id"; "value" ] in
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter
  in
  let vi i = Relalg.Value.Int i and vs s = Relalg.Value.Str s in
  let add rel row = Relalg.Relation.apply rel (Relalg.Relation.Delta.add row) in
  let rec go node =
    let id = next () in
    (match node with
    | Xml.Text s ->
        add node_rel [| vi id; vs "#text" |];
        add content_rel [| vi id; vs s |]
    | Xml.Element (tag, _, children) ->
        add node_rel [| vi id; vs tag |];
        List.iteri
          (fun pos child ->
            let child_id = go child in
            add edge_rel [| vi id; vi child_id; vi pos |])
          children);
    id
  in
  ignore (go xml);
  db

let extract xml ~tag ~fields =
  List.map
    (fun node ->
      Array.of_list
        (List.map
           (fun field ->
             match Xml.child_named node field with
             | Some child -> Relalg.Value.of_string (Xml.text_content child)
             | None -> Relalg.Value.Null)
           fields))
    (Xml.descendants_named xml tag)

let relation_of xml ~name ~tag ~fields =
  Relalg.Relation.of_tuples (Relalg.Schema.make name fields) (extract xml ~tag ~fields)

let to_xml rel ~root ~row_tag =
  let schema = Relalg.Relation.schema rel in
  let attrs = Relalg.Schema.attrs schema in
  let rows =
    List.map
      (fun row ->
        Xml.element row_tag
          (List.mapi
             (fun i attr ->
               Xml.element attr [ Xml.text (Relalg.Value.to_string row.(i)) ])
             attrs))
      (Relalg.Relation.tuples rel)
  in
  Xml.element root rows
