let ( let* ) = Result.bind

let patterns ~tags (q : Cq.Query.t) =
  let counter = ref 0 in
  let fresh_subject () =
    incr counter;
    Cq.Term.Var (Printf.sprintf "~subj%d" !counter)
  in
  List.fold_left
    (fun acc (atom : Cq.Atom.t) ->
      let* acc = acc in
      match List.assoc_opt atom.Cq.Atom.pred tags with
      | None -> Error ("unknown instance tag " ^ atom.Cq.Atom.pred)
      | Some fields ->
          if List.length fields <> Cq.Atom.arity atom then
            Error
              (Printf.sprintf "%s expects %d fields, got %d" atom.Cq.Atom.pred
                 (List.length fields) (Cq.Atom.arity atom))
          else
            let subject = fresh_subject () in
            let type_pattern =
              Storage.Triple_store.pat subject
                (Cq.Term.str Repository.type_pred)
                (Cq.Term.str atom.Cq.Atom.pred)
            in
            let field_patterns =
              List.map2
                (fun field term ->
                  Storage.Triple_store.pat subject (Cq.Term.str field) term)
                fields atom.Cq.Atom.args
            in
            Ok (acc @ (type_pattern :: field_patterns)))
    (Ok []) q.Cq.Query.body

let run ~tags repo (q : Cq.Query.t) =
  if not (Cq.Query.is_safe q) then Error "unsafe query"
  else
    let* pats = patterns ~tags q in
    let bindings = Repository.query repo pats in
    let head_vars = Cq.Query.head_vars q in
    let schema =
      Relalg.Schema.make q.Cq.Query.head.Cq.Atom.pred head_vars
    in
    let out = Relalg.Relation.create schema in
    List.iter
      (fun binding ->
        let row =
          List.map
            (fun x ->
              Option.value ~default:Relalg.Value.Null
                (Cq.Eval.Smap.find_opt x binding))
            head_vars
        in
        let row = Array.of_list row in
        if not (Relalg.Relation.mem out row) then
          Relalg.Relation.apply out (Relalg.Relation.Delta.add row))
      bindings;
    Ok out

let run_exn ~tags repo q =
  match run ~tags repo q with
  | Ok rel -> rel
  | Error msg -> invalid_arg ("Cq_query.run_exn: " ^ msg)

let department_tags =
  List.map
    (fun tag -> (tag, Lightweight_schema.fields_of Lightweight_schema.department tag))
    (Lightweight_schema.instance_tags Lightweight_schema.department)
