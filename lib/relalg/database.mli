(** A mutable collection of named relations. *)

type t

val create : unit -> t
val add_relation : t -> Relation.t -> unit
(** Raises [Invalid_argument] if a relation with the same name exists. *)

val create_relation : t -> string -> string list -> Relation.t
(** Declare-and-register shorthand. *)

val find : t -> string -> Relation.t
(** Raises [Not_found]. *)

val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool
val relations : t -> Relation.t list
val names : t -> string list
val total_tuples : t -> int
val copy : t -> t

val freeze : t -> unit
(** [Relation.freeze] every relation, making subsequent lookups
    mutation-free — call before sharing the database read-only across
    domains. *)

val pp : Format.formatter -> t -> unit
