type tuple = Value.t array

let tuple_equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

(* Hash consistent with [tuple_equal]: Value.equal is structural, so a
   fold over Value.hash agrees on equal tuples. *)
let tuple_hash (row : tuple) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 row

module Tset = Hashtbl.Make (struct
  type t = tuple

  let equal = tuple_equal
  let hash = tuple_hash
end)

module Delta = struct
  type t = { adds : tuple list; dels : tuple list }

  let empty = { adds = []; dels = [] }
  let add row = { adds = [ row ]; dels = [] }
  let remove row = { adds = []; dels = [ row ] }
  let of_rows rows = { adds = rows; dels = [] }
  let removes rows = { adds = []; dels = rows }
  let make ?(adds = []) ?(dels = []) () = { adds; dels }
  let adds t = t.adds
  let dels t = t.dels
  let is_empty t = t.adds = [] && t.dels = []
  let size t = List.length t.adds + List.length t.dels

  let remove_one tuple list =
    let rec go acc = function
      | [] -> None
      | x :: rest ->
          if tuple_equal x tuple then Some (List.rev_append acc rest)
          else go (x :: acc) rest
    in
    go [] list

  (* Sequential composition: [b] happens after [a].  Only add-then-del
     pairs cancel — a row added by [a] and removed by [b] was never
     observable, so dropping both is exact.  Del-then-add pairs are
     kept: the removed copy and the re-added copy occupy different
     positions in the relation's insertion order, and positional
     consumers (the keyword index) must see both events. *)
  let compose a b =
    let adds, dels =
      List.fold_left
        (fun (adds, dels) d ->
          match remove_one d adds with
          | Some adds' -> (adds', dels)
          | None -> (adds, dels @ [ d ]))
        (a.adds, a.dels) b.dels
    in
    { adds = adds @ b.adds; dels }
end

type t = {
  schema : Schema.t;
  uid : int;
  mutable version : int;
  (* Rows in insertion order: slot [0 .. count_slots - 1] of [rows_arr].
     Appends are amortised O(1); removal compacts in place preserving
     order, so derived structures can mirror slots stably. *)
  mutable rows_arr : tuple array;
  mutable count_slots : int;
  mutable count : int;  (* = count_slots; kept for clarity of intent *)
  (* Memoised oldest-first list view of the rows, keyed by version. *)
  mutable rows_list : (int * tuple list) option;
  (* Multiplicity per distinct tuple: O(1) [mem]. *)
  members : int Tset.t;
  (* col -> (value -> tuples). Built lazily, then maintained
     incrementally on insert; dropped wholesale on delete/clear. *)
  mutable indexes : (int, (Value.t, tuple list) Hashtbl.t) Hashtbl.t;
  (* Retained effective deltas, oldest first in [log_front], newest
     first in [log_back] (two-stack queue).  Each entry is
     [(version after applying, delta)].  [log_floor] is the oldest
     version still reconstructible from the log. *)
  mutable log_front : (int * Delta.t) list;
  mutable log_back : (int * Delta.t) list;
  mutable log_entries : int;
  mutable log_tuples : int;
  mutable log_floor : int;
}

(* Process-unique relation ids, so per-relation caches (e.g. the keyword
   index) can key on identity across otherwise identical names. *)
let next_uid = Atomic.make 0

(* Retention caps for the delta log: beyond either, oldest entries are
   truncated and consumers that saw a pre-truncation version must fall
   back to a full rebuild. *)
let log_max_entries = 512
let log_max_tuples = 8192

let create schema =
  {
    schema;
    uid = Atomic.fetch_and_add next_uid 1;
    version = 0;
    rows_arr = [||];
    count_slots = 0;
    count = 0;
    rows_list = None;
    members = Tset.create 16;
    indexes = Hashtbl.create 4;
    log_front = [];
    log_back = [];
    log_entries = 0;
    log_tuples = 0;
    log_floor = 0;
  }

let schema t = t.schema
let uid t = t.uid
let version t = t.version
let cardinality t = t.count
let delta_floor t = t.log_floor

let drop_indexes t =
  if Hashtbl.length t.indexes > 0 then t.indexes <- Hashtbl.create 4

let check_arity what t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Relation.%s: arity mismatch for %s (got %d, want %d)"
         what (Schema.name t.schema) (Array.length row)
         (Schema.arity t.schema))

let index_push idx key row =
  let existing = Option.value ~default:[] (Hashtbl.find_opt idx key) in
  Hashtbl.replace idx key (row :: existing)

let grow t =
  let cap = Array.length t.rows_arr in
  if t.count_slots >= cap then begin
    let cap' = max 8 (2 * cap) in
    let arr = Array.make cap' [||] in
    Array.blit t.rows_arr 0 arr 0 t.count_slots;
    t.rows_arr <- arr
  end

let append_row t row =
  grow t;
  t.rows_arr.(t.count_slots) <- row;
  t.count_slots <- t.count_slots + 1;
  t.count <- t.count + 1;
  Tset.replace t.members row
    (1 + Option.value ~default:0 (Tset.find_opt t.members row));
  (* Live indexes absorb the row instead of being invalidated. *)
  Hashtbl.iter (fun col idx -> index_push idx row.(col) row) t.indexes

let mem t row = Tset.mem t.members row

(* Remove one copy per del occurrence (multiset subtraction), lowest
   slot first, in a single order-preserving compaction pass.  Returns
   the effective removals (absent tuples are dropped). *)
let remove_rows t dels =
  let wanted = Tset.create (max 4 (List.length dels)) in
  let effective = ref [] in
  List.iter
    (fun row ->
      let have = Option.value ~default:0 (Tset.find_opt t.members row) in
      let already = Option.value ~default:0 (Tset.find_opt wanted row) in
      if already < have then begin
        Tset.replace wanted row (already + 1);
        effective := row :: !effective
      end)
    dels;
  if Tset.length wanted = 0 then []
  else begin
    let dst = ref 0 in
    for src = 0 to t.count_slots - 1 do
      let row = t.rows_arr.(src) in
      let pending = Option.value ~default:0 (Tset.find_opt wanted row) in
      if pending > 0 then begin
        Tset.replace wanted row (pending - 1);
        t.count <- t.count - 1;
        (match Tset.find_opt t.members row with
        | Some 1 -> Tset.remove t.members row
        | Some m -> Tset.replace t.members row (m - 1)
        | None -> ())
      end
      else begin
        t.rows_arr.(!dst) <- row;
        incr dst
      end
    done;
    for i = !dst to t.count_slots - 1 do
      t.rows_arr.(i) <- [||]
    done;
    t.count_slots <- !dst;
    drop_indexes t;
    List.rev !effective
  end

let log_push t entry tuples =
  t.log_back <- entry :: t.log_back;
  t.log_entries <- t.log_entries + 1;
  t.log_tuples <- t.log_tuples + tuples;
  while
    t.log_entries > log_max_entries || t.log_tuples > log_max_tuples
  do
    (match t.log_front with
    | [] ->
        t.log_front <- List.rev t.log_back;
        t.log_back <- []
    | _ -> ());
    match t.log_front with
    | (v, d) :: rest ->
        t.log_front <- rest;
        t.log_entries <- t.log_entries - 1;
        t.log_tuples <- t.log_tuples - Delta.size d;
        t.log_floor <- v
    | [] -> assert false
  done

let apply t (d : Delta.t) =
  List.iter (check_arity "apply (del)" t) d.Delta.dels;
  List.iter (check_arity "apply (add)" t) d.Delta.adds;
  let dels = remove_rows t d.Delta.dels in
  List.iter (append_row t) d.Delta.adds;
  if not (dels = [] && d.Delta.adds = []) then begin
    t.version <- t.version + 1;
    let eff = { Delta.adds = d.Delta.adds; dels } in
    log_push t (t.version, eff) (Delta.size eff)
  end

let deltas_since t since =
  if since = t.version then Some []
  else if since < t.log_floor then None
  else
    Some
      (List.filter
         (fun (v, _) -> v > since)
         (t.log_front @ List.rev t.log_back)
       |> List.map snd)

let delta_since t since =
  match deltas_since t since with
  | None -> None
  | Some ds -> Some (List.fold_left Delta.compose Delta.empty ds)

let tuples t =
  match t.rows_list with
  | Some (v, l) when v = t.version -> l
  | _ ->
      let l = List.init t.count_slots (fun i -> t.rows_arr.(i)) in
      t.rows_list <- Some (t.version, l);
      l

let iter f t =
  for i = 0 to t.count_slots - 1 do
    f t.rows_arr.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.count_slots - 1 do
    acc := f !acc t.rows_arr.(i)
  done;
  !acc

let build_index t col =
  let idx = Hashtbl.create (max 16 t.count) in
  (* Newest-first within each bucket, as incremental [index_push]
     maintains it. *)
  for i = 0 to t.count_slots - 1 do
    let row = t.rows_arr.(i) in
    index_push idx row.(col) row
  done;
  Hashtbl.replace t.indexes col idx;
  idx

let find_by t col v =
  if col < 0 || col >= Schema.arity t.schema then
    invalid_arg "Relation.find_by: column out of range";
  let idx =
    match Hashtbl.find_opt t.indexes col with
    | Some idx -> idx
    | None -> build_index t col
  in
  Option.value ~default:[] (Hashtbl.find_opt idx v)

let find_by_bound t bound =
  match bound with
  | [] -> tuples t
  | [ (col, v) ] -> find_by t col v
  | _ ->
      (* Intersect the two most selective posting lists: scan the
         shortest, filtering by the runner-up column. Remaining bound
         columns are the caller's to verify (the evaluator re-checks
         every position anyway). *)
      let postings =
        List.map (fun (col, v) -> ((col, v), find_by t col v)) bound
      in
      let sorted =
        List.sort
          (fun (_, a) (_, b) ->
            compare (List.length a) (List.length b))
          postings
      in
      (match sorted with
      | (_, best) :: ((col2, v2), _) :: _ ->
          List.filter (fun row -> Value.equal row.(col2) v2) best
      | _ -> assert false)

let freeze t =
  for col = 0 to Schema.arity t.schema - 1 do
    if not (Hashtbl.mem t.indexes col) then ignore (build_index t col)
  done

let of_tuples schema rows =
  let t = create schema in
  apply t (Delta.of_rows rows);
  t

let copy t = of_tuples t.schema (tuples t)

let clear t =
  t.version <- t.version + 1;
  t.rows_arr <- [||];
  t.count_slots <- 0;
  t.count <- 0;
  t.rows_list <- None;
  Tset.reset t.members;
  drop_indexes t;
  (* The log cannot express "everything went away" compactly; truncate
     it so consumers rebuild. *)
  t.log_front <- [];
  t.log_back <- [];
  t.log_entries <- 0;
  t.log_tuples <- 0;
  t.log_floor <- t.version

let pp fmt t =
  Format.fprintf fmt "%a [%d rows]" Schema.pp t.schema t.count;
  List.iteri
    (fun i row ->
      if i < 20 then
        Format.fprintf fmt "@\n  (%s)"
          (String.concat ", " (Array.to_list (Array.map Value.to_string row))))
    (tuples t)
