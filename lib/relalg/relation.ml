type tuple = Value.t array

let tuple_equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

(* Hash consistent with [tuple_equal]: Value.equal is structural, so a
   fold over Value.hash agrees on equal tuples. *)
let tuple_hash (row : tuple) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 row

module Tset = Hashtbl.Make (struct
  type t = tuple

  let equal = tuple_equal
  let hash = tuple_hash
end)

type t = {
  schema : Schema.t;
  uid : int;
  mutable version : int;
  mutable rows : tuple list;
  mutable count : int;
  (* Multiplicity per distinct tuple: O(1) [mem]/[insert_distinct]. *)
  members : int Tset.t;
  (* col -> (value -> tuples). Built lazily, then maintained
     incrementally on insert; dropped wholesale on delete/clear. *)
  mutable indexes : (int, (Value.t, tuple list) Hashtbl.t) Hashtbl.t;
}

(* Process-unique relation ids, so per-relation caches (e.g. the keyword
   token memo) can key on identity across otherwise identical names. *)
let next_uid = Atomic.make 0

let create schema =
  {
    schema;
    uid = Atomic.fetch_and_add next_uid 1;
    version = 0;
    rows = [];
    count = 0;
    members = Tset.create 16;
    indexes = Hashtbl.create 4;
  }

let schema t = t.schema
let uid t = t.uid
let version t = t.version
let cardinality t = t.count

let drop_indexes t =
  if Hashtbl.length t.indexes > 0 then t.indexes <- Hashtbl.create 4

let check_arity t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Relation.insert: arity mismatch for %s (got %d, want %d)"
         (Schema.name t.schema) (Array.length row) (Schema.arity t.schema))

let index_push idx key row =
  let existing = Option.value ~default:[] (Hashtbl.find_opt idx key) in
  Hashtbl.replace idx key (row :: existing)

let insert t row =
  check_arity t row;
  t.version <- t.version + 1;
  t.rows <- row :: t.rows;
  t.count <- t.count + 1;
  Tset.replace t.members row
    (1 + Option.value ~default:0 (Tset.find_opt t.members row));
  (* Live indexes absorb the row instead of being invalidated. *)
  Hashtbl.iter (fun col idx -> index_push idx row.(col) row) t.indexes

let mem t row = Tset.mem t.members row

let insert_distinct t row =
  check_arity t row;
  if mem t row then false
  else begin
    insert t row;
    true
  end

let bulk_insert t rows = List.iter (insert t) rows

let delete t row =
  match Tset.find_opt t.members row with
  | None -> 0
  | Some multiplicity ->
      t.version <- t.version + 1;
      t.rows <- List.filter (fun r -> not (tuple_equal r row)) t.rows;
      t.count <- t.count - multiplicity;
      Tset.remove t.members row;
      drop_indexes t;
      multiplicity

let tuples t = t.rows
let iter f t = List.iter f t.rows
let fold f init t = List.fold_left f init t.rows

let build_index t col =
  let idx = Hashtbl.create (max 16 t.count) in
  List.iter (fun row -> index_push idx row.(col) row) t.rows;
  Hashtbl.replace t.indexes col idx;
  idx

let find_by t col v =
  if col < 0 || col >= Schema.arity t.schema then
    invalid_arg "Relation.find_by: column out of range";
  let idx =
    match Hashtbl.find_opt t.indexes col with
    | Some idx -> idx
    | None -> build_index t col
  in
  Option.value ~default:[] (Hashtbl.find_opt idx v)

let find_by_bound t bound =
  match bound with
  | [] -> t.rows
  | [ (col, v) ] -> find_by t col v
  | _ ->
      (* Intersect the two most selective posting lists: scan the
         shortest, filtering by the runner-up column. Remaining bound
         columns are the caller's to verify (the evaluator re-checks
         every position anyway). *)
      let postings =
        List.map (fun (col, v) -> ((col, v), find_by t col v)) bound
      in
      let sorted =
        List.sort
          (fun (_, a) (_, b) ->
            compare (List.length a) (List.length b))
          postings
      in
      (match sorted with
      | (_, best) :: ((col2, v2), _) :: _ ->
          List.filter (fun row -> Value.equal row.(col2) v2) best
      | _ -> assert false)

let freeze t =
  for col = 0 to Schema.arity t.schema - 1 do
    if not (Hashtbl.mem t.indexes col) then ignore (build_index t col)
  done

let of_tuples schema rows =
  let t = create schema in
  bulk_insert t rows;
  t

let copy t = of_tuples t.schema t.rows

let clear t =
  t.version <- t.version + 1;
  t.rows <- [];
  t.count <- 0;
  Tset.reset t.members;
  drop_indexes t

let pp fmt t =
  Format.fprintf fmt "%a [%d rows]" Schema.pp t.schema t.count;
  List.iteri
    (fun i row ->
      if i < 20 then
        Format.fprintf fmt "@\n  (%s)"
          (String.concat ", " (Array.to_list (Array.map Value.to_string row))))
    t.rows
