(** Per-relation statistics for join planning: cardinality plus a
    distinct-value count per column, cached process-wide.

    The cache is keyed on {!Relation.uid} and {e maintained} from
    {!Relation.deltas_since}: when the relation's version has moved, the
    cached per-column value-count tables are patched with the retained
    deltas (O(changed rows x arity)) instead of rescanned.  A full
    O(tuples x arity) rescan happens only on a cold entry, when the
    delta log was truncated past the cached version (counted in
    [pdms.delta.rebuild_fallbacks]), or with [~incremental:false].
    The table is mutex-protected; full scans happen outside the lock,
    so concurrent planners at worst duplicate one scan. *)

type t = {
  cardinality : int;  (** tuple count at the served version *)
  distinct : int array;
      (** distinct values per column, length = schema arity *)
}

val of_relation : ?incremental:bool -> Relation.t -> t
(** Statistics for the relation's current state.  [incremental]
    (default [true]) allows delta-patching a stale cached entry —
    counted in [pdms.delta.stats_patched] and {!cache_patches};
    [false] forces the version-guarded rebuild discipline (any change
    rescans), the [--no-incremental] A/B baseline. *)

val selectivity : t -> int -> float
(** [selectivity s col] is [1 / distinct.(col)] clamped to [(0, 1]] — the
    expected fraction of tuples surviving an equality bound on [col].
    Out-of-range columns and empty relations yield [1.0] (no reduction
    claimed). *)

val cache_hits : unit -> int
val cache_misses : unit -> int
(** Cumulative cache behaviour since load (or the last {!reset_cache}) —
    exposed for tests and the E17 bench commentary.  A delta-patched
    serve counts as a hit (no rescan happened). *)

val cache_patches : unit -> int
(** How many serves were answered by folding retained deltas into a
    stale entry rather than rescanning. *)

val reset_cache : unit -> unit
(** Drop every cached entry and zero the hit/miss/patch counters. *)
