(** Per-relation statistics for join planning: cardinality plus a
    distinct-value count per column, cached process-wide.

    The cache is keyed on {!Relation.uid} and guarded by
    {!Relation.version}: a cached entry is served only while the
    relation's version is unchanged, so any [insert]/[delete]/[clear]
    invalidates it implicitly — the next {!of_relation} rescans. The
    table is mutex-protected; computing statistics happens outside the
    lock, so concurrent planners at worst duplicate one scan. *)

type t = {
  cardinality : int;  (** tuple count at the cached version *)
  distinct : int array;
      (** distinct values per column, length = schema arity *)
}

val of_relation : Relation.t -> t
(** Statistics for the relation's current state, from the cache when the
    [(uid, version)] pair still matches, else by one O(tuples * arity)
    scan that refreshes the cache. *)

val selectivity : t -> int -> float
(** [selectivity s col] is [1 / distinct.(col)] clamped to [(0, 1]] — the
    expected fraction of tuples surviving an equality bound on [col].
    Out-of-range columns and empty relations yield [1.0] (no reduction
    claimed). *)

val cache_hits : unit -> int
val cache_misses : unit -> int
(** Cumulative cache behaviour since load (or the last {!reset_cache}) —
    exposed for tests and the E17 bench commentary. *)

val reset_cache : unit -> unit
(** Drop every cached entry and zero the hit/miss counters. *)
