(** An in-memory relation: a schema and a bag of tuples in insertion
    order, with a hash-set membership structure (O(1) [mem]) and
    per-column hash indexes.  Indexes are built lazily and maintained
    incrementally on insertion; deletion drops them.

    {b Mutation is unified}: every change goes through {!apply} with an
    explicit {!Delta.t} (a folded multiset of row insertions and
    removals).  Each effective application bumps {!version} by one and
    is retained in a bounded in-relation delta log, so derived
    structures (indexes, statistics, caches, replicas) can ask
    {!deltas_since} "what changed since the version I saw" and patch
    themselves instead of rebuilding — falling back to a rebuild only
    when the log was truncated. *)

type tuple = Value.t array
type t

(** First-class change descriptions: what {!apply} consumes and what
    the retained log stores.  [adds] and [dels] are multisets (a tuple
    may appear several times); applying means "remove one copy per
    [dels] occurrence, then append one copy per [adds] occurrence, in
    list order". *)
module Delta : sig
  type t

  val empty : t
  val add : tuple -> t
  (** Single-row insertion. *)

  val remove : tuple -> t
  (** Single-copy removal. *)

  val of_rows : tuple list -> t
  (** Insert-only delta, rows appended in list order. *)

  val removes : tuple list -> t

  val make : ?adds:tuple list -> ?dels:tuple list -> unit -> t
  (** Removals are applied before additions. *)

  val adds : t -> tuple list
  val dels : t -> tuple list
  val is_empty : t -> bool

  val size : t -> int
  (** [List.length adds + List.length dels]. *)

  val compose : t -> t -> t
  (** [compose a b]: [b] happens after [a].  Add-then-del pairs cancel
      exactly (the row was never observable); del-then-add pairs are
      both kept so positional consumers see both events. *)
end

val create : Schema.t -> t
val schema : t -> Schema.t
val cardinality : t -> int

val uid : t -> int
(** Process-unique id of this relation instance ([copy] and
    [of_tuples] mint fresh ones) — a stable key for external caches. *)

val version : t -> int
(** Mutation counter: bumped once by every {e effective} {!apply} and by
    [clear].  [(uid, version)] identifies a relation {e state}; caches
    keyed on it are invalidated by any change to the contents. *)

val apply : t -> Delta.t -> unit
(** The single mutation entry point.  Removals first: one copy per
    [dels] occurrence (absent tuples are ignored), order-preserving.
    Then additions: one copy appended per [adds] occurrence (bag
    semantics — callers wanting set semantics guard with {!mem}).
    Raises [Invalid_argument] on arity mismatch.  An application with
    no effect (e.g. removals of absent tuples only) does not bump the
    version.  The {e effective} delta — what actually changed — is
    retained in the delta log for {!deltas_since}. *)

val deltas_since : t -> int -> Delta.t list option
(** [deltas_since t v] is the chronological list of effective deltas
    that lead from state [v] to the current state — [Some []] when
    [v = version t] — or [None] when the log no longer reaches back to
    [v] (capacity truncation, or a [clear]), in which case the caller
    must rebuild from the current contents. *)

val delta_since : t -> int -> Delta.t option
(** {!deltas_since} folded with {!Delta.compose} — convenient for
    consumers that don't need positional replay (statistics, caches,
    shipping to replicas). *)

val delta_floor : t -> int
(** Oldest version still reconstructible from the delta log;
    [deltas_since t v] is [None] exactly when [v < delta_floor t]. *)

val mem : t -> tuple -> bool
(** Constant-time membership via the internal tuple hash set. *)

val tuples : t -> tuple list
(** All rows, oldest first (insertion order).  Memoised per version —
    O(1) on repeated calls against an unchanged relation. *)

val iter : (tuple -> unit) -> t -> unit
val fold : ('a -> tuple -> 'a) -> 'a -> t -> 'a

val find_by : t -> int -> Value.t -> tuple list
(** [find_by t col v] returns tuples whose [col]-th value equals [v],
    via a lazily built hash index. *)

val find_by_bound : t -> (int * Value.t) list -> tuple list
(** Candidate tuples for a conjunction of column bindings: the two most
    selective posting lists are intersected (the shortest is scanned,
    filtered by the runner-up column). With two or more bindings the
    result may still contain tuples violating the {e remaining}
    bindings — callers must re-verify. [[]] returns all tuples. *)

val freeze : t -> unit
(** Build the index for every column, so that subsequent [find_by] /
    [find_by_bound] calls are mutation-free — the precondition for
    sharing the relation read-only across domains. A later {!apply}
    re-enters the ordinary (single-domain) regime. *)

val of_tuples : Schema.t -> tuple list -> t
val copy : t -> t

val clear : t -> unit
(** Empties the relation and truncates the delta log (consumers keyed
    on an earlier version must rebuild). *)

val pp : Format.formatter -> t -> unit
