(** An in-memory relation: a schema and a bag of tuples with a
    hash-set membership structure (O(1) [mem]/[insert_distinct]) and
    per-column hash indexes. Indexes are built lazily and maintained
    incrementally on insertion; deletion drops them. *)

type tuple = Value.t array
type t

val create : Schema.t -> t
val schema : t -> Schema.t
val cardinality : t -> int

val uid : t -> int
(** Process-unique id of this relation instance ([copy] and
    [of_tuples] mint fresh ones) — a stable key for external caches. *)

val version : t -> int
(** Mutation counter: bumped by every [insert], [delete] and [clear].
    [(uid, version)] identifies a relation {e state}; caches keyed on it
    are invalidated by any change to the contents. *)

val insert : t -> tuple -> unit
(** Raises [Invalid_argument] on arity mismatch. Duplicates are kept
    (bag semantics); use [insert_distinct] for set semantics. *)

val insert_distinct : t -> tuple -> bool
(** Returns [false] (and does nothing) if an equal tuple is present.
    Constant-time membership via the internal tuple hash set. *)

val bulk_insert : t -> tuple list -> unit
(** Insert many rows at once (bag semantics). Equivalent to iterated
    [insert] but intended for loading: live indexes absorb the rows
    incrementally instead of being rebuilt per row. *)

val delete : t -> tuple -> int
(** Removes all equal tuples; returns how many were removed. *)

val tuples : t -> tuple list
val iter : (tuple -> unit) -> t -> unit
val fold : ('a -> tuple -> 'a) -> 'a -> t -> 'a

val find_by : t -> int -> Value.t -> tuple list
(** [find_by t col v] returns tuples whose [col]-th value equals [v],
    via a lazily built hash index. *)

val find_by_bound : t -> (int * Value.t) list -> tuple list
(** Candidate tuples for a conjunction of column bindings: the two most
    selective posting lists are intersected (the shortest is scanned,
    filtered by the runner-up column). With two or more bindings the
    result may still contain tuples violating the {e remaining}
    bindings — callers must re-verify. [[]] returns all tuples. *)

val freeze : t -> unit
(** Build the index for every column, so that subsequent [find_by] /
    [find_by_bound] calls are mutation-free — the precondition for
    sharing the relation read-only across domains. A later insert or
    delete re-enters the ordinary (single-domain) regime. *)

val mem : t -> tuple -> bool
val of_tuples : Schema.t -> tuple list -> t
val copy : t -> t
val clear : t -> unit
val pp : Format.formatter -> t -> unit
