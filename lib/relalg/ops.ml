type agg = Count | Sum of string | Min of string | Max of string | Avg of string

(* Local conveniences over the unified mutation API: ops build their
   output relation row by row, either as a bag ([add]) or with a
   membership guard ([add_distinct]). *)
let add out row = Relation.apply out (Relation.Delta.add row)
let add_distinct out row = if not (Relation.mem out row) then add out row

let select pred rel =
  let out = Relation.create (Relation.schema rel) in
  Relation.iter (fun row -> if pred row then add out row) rel;
  out

let select_eq attr v rel =
  let col = Schema.index_of (Relation.schema rel) attr in
  let out = Relation.create (Relation.schema rel) in
  Relation.apply out (Relation.Delta.of_rows (Relation.find_by rel col v));
  out

let project attrs rel =
  let s = Relation.schema rel in
  let cols = List.map (Schema.index_of s) attrs in
  let out = Relation.create (Schema.make (Schema.name s) attrs) in
  Relation.iter
    (fun row ->
      let projected = Array.of_list (List.map (fun c -> row.(c)) cols) in
      add_distinct out projected)
    rel;
  out

let rename name rel =
  Relation.of_tuples (Schema.rename (Relation.schema rel) name) (Relation.tuples rel)

let rename_attrs mapping rel =
  let s = Relation.schema rel in
  let attrs =
    List.map
      (fun a -> match List.assoc_opt a mapping with Some b -> b | None -> a)
      (Schema.attrs s)
  in
  Relation.of_tuples (Schema.make (Schema.name s) attrs) (Relation.tuples rel)

let natural_join left right =
  let ls = Relation.schema left and rs = Relation.schema right in
  let lattrs = Schema.attrs ls and rattrs = Schema.attrs rs in
  let shared = List.filter (fun a -> List.mem a lattrs) rattrs in
  let r_only = List.filter (fun a -> not (List.mem a shared)) rattrs in
  let out_schema = Schema.make "join" (lattrs @ r_only) in
  let out = Relation.create out_schema in
  let l_shared_cols = List.map (Schema.index_of ls) shared in
  let r_shared_cols = List.map (Schema.index_of rs) shared in
  let r_only_cols = List.map (Schema.index_of rs) r_only in
  let key_of row cols = List.map (fun c -> row.(c)) cols in
  (* Hash the right side on the shared key. *)
  let index = Hashtbl.create (max 16 (Relation.cardinality right)) in
  Relation.iter
    (fun row ->
      let key = key_of row r_shared_cols in
      let existing = Option.value ~default:[] (Hashtbl.find_opt index key) in
      Hashtbl.replace index key (row :: existing))
    right;
  Relation.iter
    (fun lrow ->
      let key = key_of lrow l_shared_cols in
      match Hashtbl.find_opt index key with
      | None -> ()
      | Some matches ->
          List.iter
            (fun rrow ->
              let extra = List.map (fun c -> rrow.(c)) r_only_cols in
              add out (Array.append lrow (Array.of_list extra)))
            matches)
    left;
  out

let product left right =
  let ls = Relation.schema left and rs = Relation.schema right in
  let lattrs = Schema.attrs ls and rattrs = Schema.attrs rs in
  if List.exists (fun a -> List.mem a lattrs) rattrs then
    invalid_arg "Ops.product: schemas share attributes (use natural_join)";
  let out = Relation.create (Schema.make "product" (lattrs @ rattrs)) in
  Relation.iter
    (fun lrow ->
      Relation.iter (fun rrow -> add out (Array.append lrow rrow)) right)
    left;
  out

let check_compatible a b op =
  if Schema.arity (Relation.schema a) <> Schema.arity (Relation.schema b) then
    invalid_arg ("Ops." ^ op ^ ": arity mismatch")

let union a b =
  check_compatible a b "union";
  let out = Relation.create (Relation.schema a) in
  Relation.iter (add_distinct out) a;
  Relation.iter (add_distinct out) b;
  out

let diff a b =
  check_compatible a b "diff";
  let out = Relation.create (Relation.schema a) in
  Relation.iter
    (fun row -> if not (Relation.mem b row) then add_distinct out row)
    a;
  out

let intersect a b =
  check_compatible a b "intersect";
  let out = Relation.create (Relation.schema a) in
  Relation.iter
    (fun row -> if Relation.mem b row then add_distinct out row)
    a;
  out

let agg_name = function
  | Count -> "count"
  | Sum a -> "sum_" ^ a
  | Min a -> "min_" ^ a
  | Max a -> "max_" ^ a
  | Avg a -> "avg_" ^ a

let numeric = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | v -> invalid_arg ("Ops.group_by: non-numeric value " ^ Value.to_string v)

let compute_agg rows s = function
  | Count -> Value.Int (List.length rows)
  | Sum a ->
      let c = Schema.index_of s a in
      Value.Float (List.fold_left (fun acc r -> acc +. numeric r.(c)) 0.0 rows)
  | Min a ->
      let c = Schema.index_of s a in
      (match rows with
      | [] -> Value.Null
      | r0 :: rest ->
          List.fold_left (fun acc r -> if Value.compare r.(c) acc < 0 then r.(c) else acc) r0.(c) rest)
  | Max a ->
      let c = Schema.index_of s a in
      (match rows with
      | [] -> Value.Null
      | r0 :: rest ->
          List.fold_left (fun acc r -> if Value.compare r.(c) acc > 0 then r.(c) else acc) r0.(c) rest)
  | Avg a ->
      let c = Schema.index_of s a in
      if rows = [] then Value.Null
      else
        Value.Float
          (List.fold_left (fun acc r -> acc +. numeric r.(c)) 0.0 rows
          /. float_of_int (List.length rows))

let group_by keys aggs rel =
  let s = Relation.schema rel in
  let key_cols = List.map (Schema.index_of s) keys in
  let out_attrs = keys @ List.map agg_name aggs in
  let out = Relation.create (Schema.make "group" out_attrs) in
  let groups = Hashtbl.create 32 in
  Relation.iter
    (fun row ->
      let key = List.map (fun c -> row.(c)) key_cols in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (row :: existing))
    rel;
  Hashtbl.iter
    (fun key rows ->
      let agg_vals = List.map (compute_agg rows s) aggs in
      add out (Array.of_list (key @ agg_vals)))
    groups;
  out

let distinct rel =
  let out = Relation.create (Relation.schema rel) in
  Relation.iter (add_distinct out) rel;
  out

let sort_by attr rel =
  let col = Schema.index_of (Relation.schema rel) attr in
  let sorted =
    List.sort (fun a b -> Value.compare a.(col) b.(col)) (Relation.tuples rel)
  in
  (* Rows are stored and enumerated in insertion order now, so the
     ascending sort loads as-is (the pre-delta code reversed to cancel
     the newest-first enumeration). *)
  Relation.of_tuples (Relation.schema rel) sorted
