type t = (string, Relation.t) Hashtbl.t

let create () : t = Hashtbl.create 16

let add_relation t rel =
  let name = Schema.name (Relation.schema rel) in
  if Hashtbl.mem t name then
    invalid_arg ("Database.add_relation: duplicate relation " ^ name);
  Hashtbl.replace t name rel

let create_relation t name attrs =
  let rel = Relation.create (Schema.make name attrs) in
  add_relation t rel;
  rel

let find t name =
  match Hashtbl.find_opt t name with
  | Some rel -> rel
  | None -> raise Not_found

let find_opt t name = Hashtbl.find_opt t name
let mem t name = Hashtbl.mem t name

let relations t = Hashtbl.fold (fun _ rel acc -> rel :: acc) t []

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t [] |> List.sort String.compare

let total_tuples t =
  Hashtbl.fold (fun _ rel acc -> acc + Relation.cardinality rel) t 0

let freeze t = Hashtbl.iter (fun _ rel -> Relation.freeze rel) t

let copy t =
  let out = create () in
  Hashtbl.iter (fun _ rel -> add_relation out (Relation.copy rel)) t;
  out

let pp fmt t =
  List.iter (fun name -> Format.fprintf fmt "%a@\n" Relation.pp (find t name)) (names t)
