type t = { cardinality : int; distinct : int array }

(* uid -> (version, stats). Entries for dead relations (dropped
   snapshots mint fresh uids) are harmless but unbounded, so the table
   is emptied once it passes a generous cap rather than tracked with a
   precise eviction policy. *)
let cache : (int, int * t) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let max_entries = 8192
let hits = ref 0
let misses = ref 0

let compute rel =
  let arity = Schema.arity (Relation.schema rel) in
  let seen = Array.init arity (fun _ -> Hashtbl.create 64) in
  Relation.iter
    (fun row ->
      for i = 0 to arity - 1 do
        Hashtbl.replace seen.(i) row.(i) ()
      done)
    rel;
  { cardinality = Relation.cardinality rel;
    distinct = Array.map Hashtbl.length seen }

let of_relation rel =
  let uid = Relation.uid rel in
  let version = Relation.version rel in
  Mutex.lock lock;
  let cached =
    match Hashtbl.find_opt cache uid with
    | Some (v, s) when v = version -> Some s
    | Some _ | None -> None
  in
  (match cached with Some _ -> incr hits | None -> incr misses);
  Mutex.unlock lock;
  match cached with
  | Some s -> s
  | None ->
      (* Scan outside the lock: concurrent planners may race to compute
         the same entry, but both scans see a consistent state (callers
         freeze relations before sharing them across domains) and write
         identical results. *)
      let s = compute rel in
      Mutex.lock lock;
      if Hashtbl.length cache >= max_entries then Hashtbl.reset cache;
      Hashtbl.replace cache uid (version, s);
      Mutex.unlock lock;
      s

let selectivity s col =
  if col < 0 || col >= Array.length s.distinct then 1.0
  else
    let d = s.distinct.(col) in
    if d <= 1 then 1.0 else 1.0 /. float_of_int d

let cache_hits () =
  Mutex.lock lock;
  let h = !hits in
  Mutex.unlock lock;
  h

let cache_misses () =
  Mutex.lock lock;
  let m = !misses in
  Mutex.unlock lock;
  m

let reset_cache () =
  Mutex.lock lock;
  Hashtbl.reset cache;
  hits := 0;
  misses := 0;
  Mutex.unlock lock
