type t = { cardinality : int; distinct : int array }

(* A cached entry keeps, besides the public snapshot, a per-column
   value -> occurrence-count table so that a delta (inserted / removed
   rows) can be folded in without rescanning: a removal decrements the
   value's count and drops a distinct value exactly when the count hits
   zero; an insertion mirrors it. *)
type entry = {
  mutable version : int;
  mutable cardinality : int;
  counts : (Value.t, int) Hashtbl.t array;  (* one table per column *)
}

(* uid -> entry. Entries for dead relations (dropped snapshots mint
   fresh uids) are harmless but unbounded, so the table is emptied once
   it passes a generous cap rather than tracked with a precise eviction
   policy. *)
let cache : (int, entry) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let max_entries = 8192
let hits = ref 0
let misses = ref 0
let patches = ref 0

let m_patched = Obs.Metrics.counter "pdms.delta.stats_patched"
let m_fallbacks = Obs.Metrics.counter "pdms.delta.rebuild_fallbacks"

let compute rel =
  let arity = Schema.arity (Relation.schema rel) in
  let counts = Array.init arity (fun _ -> Hashtbl.create 64) in
  Relation.iter
    (fun row ->
      for i = 0 to arity - 1 do
        Hashtbl.replace counts.(i) row.(i)
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts.(i) row.(i)))
      done)
    rel;
  {
    version = Relation.version rel;
    cardinality = Relation.cardinality rel;
    counts;
  }

let bump_row counts row delta =
  Array.iteri
    (fun i tbl ->
      let v = row.(i) in
      let next = delta + Option.value ~default:0 (Hashtbl.find_opt tbl v) in
      if next <= 0 then Hashtbl.remove tbl v else Hashtbl.replace tbl v next)
    counts

(* Caller holds [lock]. *)
let patch e rel deltas =
  List.iter
    (fun d ->
      List.iter (fun row -> bump_row e.counts row (-1)) (Relation.Delta.dels d);
      List.iter (fun row -> bump_row e.counts row 1) (Relation.Delta.adds d);
      e.cardinality <-
        e.cardinality
        - List.length (Relation.Delta.dels d)
        + List.length (Relation.Delta.adds d))
    deltas;
  e.version <- Relation.version rel

let snapshot e =
  { cardinality = e.cardinality; distinct = Array.map Hashtbl.length e.counts }

let of_relation ?(incremental = true) rel =
  let uid = Relation.uid rel in
  let version = Relation.version rel in
  Mutex.lock lock;
  let served =
    match Hashtbl.find_opt cache uid with
    | Some e when e.version = version ->
        incr hits;
        Some (snapshot e)
    | Some e when incremental -> (
        (* Stale entry: try to fold the retained deltas in instead of
           rescanning. *)
        match Relation.deltas_since rel e.version with
        | Some ds ->
            patch e rel ds;
            incr hits;
            incr patches;
            Obs.Metrics.incr m_patched;
            Some (snapshot e)
        | None ->
            incr misses;
            Obs.Metrics.incr m_fallbacks;
            None)
    | Some _ | None ->
        incr misses;
        None
  in
  Mutex.unlock lock;
  match served with
  | Some s -> s
  | None ->
      (* Scan outside the lock: concurrent planners may race to compute
         the same entry, but both scans see a consistent state (callers
         freeze relations before sharing them across domains) and write
         identical results. *)
      let e = compute rel in
      Mutex.lock lock;
      if Hashtbl.length cache >= max_entries then Hashtbl.reset cache;
      Hashtbl.replace cache uid e;
      let s = snapshot e in
      Mutex.unlock lock;
      s

let selectivity s col =
  if col < 0 || col >= Array.length s.distinct then 1.0
  else
    let d = s.distinct.(col) in
    if d <= 1 then 1.0 else 1.0 /. float_of_int d

let cache_hits () =
  Mutex.lock lock;
  let h = !hits in
  Mutex.unlock lock;
  h

let cache_misses () =
  Mutex.lock lock;
  let m = !misses in
  Mutex.unlock lock;
  m

let cache_patches () =
  Mutex.lock lock;
  let p = !patches in
  Mutex.unlock lock;
  p

let reset_cache () =
  Mutex.lock lock;
  Hashtbl.reset cache;
  hits := 0;
  misses := 0;
  patches := 0;
  Mutex.unlock lock
