type t = {
  name : string;
  repository : Mangrove.Repository.t;
  schema : Mangrove.Lightweight_schema.t;
  peer : Pdms.Peer.t;
}

let create ~name ?(schema = Mangrove.Lightweight_schema.department) ~peer_schema
    () =
  {
    name;
    repository = Mangrove.Repository.create ();
    schema;
    peer = Pdms.Peer.create ~name ~schema:peer_schema;
  }

let name t = t.name
let repository t = t.repository
let peer t = t.peer
let mangrove_schema t = t.schema

let annotator t doc = Mangrove.Annotator.start ~schema:t.schema doc
let publish t annotator = Mangrove.Repository.publish t.repository annotator

let sync t ~catalog ~rel ~tag ~fields =
  let stored = Pdms.Catalog.store_identity catalog t.peer ~rel in
  let inserted = ref 0 in
  List.iter
    (fun subject ->
      let tuple =
        Array.of_list
          (List.map
             (fun field ->
               match
                 Mangrove.Repository.field_value t.repository ~subject ~field
               with
               | Some v -> v
               | None -> Relalg.Value.Null)
             fields)
      in
      if not (Relalg.Relation.mem stored tuple) then begin
        Relalg.Relation.apply stored (Relalg.Relation.Delta.add tuple);
        incr inserted
      end)
    (Mangrove.Repository.entities t.repository ~tag);
  !inserted

let schema_model_of_peer peer ~rel =
  let attrs =
    match List.assoc_opt rel (Pdms.Peer.schema peer) with
    | Some attrs -> attrs
    | None ->
        invalid_arg
          (Printf.sprintf "Revere.schema_model_of_peer: %s has no relation %s"
             (Pdms.Peer.name peer) rel)
  in
  let stored_tuples =
    match
      Relalg.Database.find_opt (Pdms.Peer.stored_db peer)
        (Pdms.Peer.stored_pred peer rel)
    with
    | Some r -> Relalg.Relation.tuples r
    | None -> []
  in
  let attributes =
    List.mapi
      (fun i attr ->
        let values =
          List.filteri (fun j _ -> j < 30) stored_tuples
          |> List.map (fun row -> Relalg.Value.to_string row.(i))
        in
        Corpus.Schema_model.attribute ~values attr)
      attrs
  in
  Corpus.Schema_model.make
    ~name:(Pdms.Peer.name peer)
    [ Corpus.Schema_model.relation rel attributes ]
