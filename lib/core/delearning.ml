type scenario = {
  delearning : Workload.University.delearning;
  corpus : Corpus.Corpus_store.t;
  matcher : Matching.Corpus_matcher.t;
}

let build prng ~courses_per_peer =
  let delearning = Workload.University.build_delearning prng ~courses_per_peer in
  let corpus = Corpus.Corpus_store.create () in
  List.iter
    (fun (name, peer) ->
      let rel, _ = Workload.University.peer_course_schema name in
      Corpus.Corpus_store.add_schema corpus (Revere.schema_model_of_peer peer ~rel))
    delearning.Workload.University.peers;
  { delearning; corpus; matcher = Matching.Corpus_matcher.build corpus }

type join_report = {
  joined_peer : Pdms.Peer.t;
  mapped_to : string;
  correspondences : (string * string) list;
  mapping_id : Pdms.Catalog.mapping_id;
}

let join_university scenario prng ~name ~rel ~attrs ~courses =
  let catalog = scenario.delearning.Workload.University.catalog in
  let peer = Pdms.Peer.create ~name ~schema:[ (rel, attrs) ] in
  Pdms.Catalog.add_peer catalog peer;
  (* Step 1: local data. *)
  let stored = Pdms.Catalog.store_identity catalog peer ~rel in
  for _ = 1 to courses do
    Relalg.Relation.apply stored
      (Relalg.Relation.Delta.add
         [| Relalg.Value.Str
              (Printf.sprintf "[%s] %s" name (Workload.Vocab.course_title prng));
            Relalg.Value.Int (10 + Util.Prng.int prng 290) |])
  done;
  let new_model = Revere.schema_model_of_peer peer ~rel in
  (* Step 2: the corpus picks the semantically closest member. *)
  let members = scenario.delearning.Workload.University.peers in
  let scored =
    List.map
      (fun (member_name, member_peer) ->
        let member_rel, _ = Workload.University.peer_course_schema member_name in
        let model = Revere.schema_model_of_peer member_peer ~rel:member_rel in
        let pairs =
          Matching.Corpus_matcher.match_schemas scenario.matcher new_model model
        in
        let strength = List.fold_left (fun acc (_, _, s) -> acc +. s) 0.0 pairs in
        (member_name, member_peer, member_rel, pairs, strength))
      members
  in
  let best =
    List.fold_left
      (fun best ((_, _, _, _, s) as cand) ->
        match best with
        | None -> Some cand
        | Some (_, _, _, _, bs) -> if s > bs then Some cand else best)
      None scored
  in
  match best with
  | None | Some (_, _, _, [], _) ->
      invalid_arg "Delearning.join_university: no correspondences proposed"
  | Some (member_name, member_peer, member_rel, pairs, _) ->
      (* Step 3: author the mapping from the proposed correspondences. *)
      let correspondences =
        List.map
          (fun (c_new, c_member, _) ->
            (c_new.Matching.Column.attr, c_member.Matching.Column.attr))
          pairs
      in
      let member_attrs = List.assoc member_rel (Pdms.Peer.schema member_peer) in
      (* Shared variables realise the correspondence; unmatched
         attributes get their own existential variables. *)
      let shared =
        List.map (fun (na, ma) -> (na, ma, Cq.Term.v ("S_" ^ na))) correspondences
      in
      let new_args =
        List.map
          (fun a ->
            match List.find_opt (fun (na, _, _) -> String.equal na a) shared with
            | Some (_, _, t) -> t
            | None -> Cq.Term.v ("V_" ^ a))
          attrs
      in
      let member_args =
        List.map
          (fun a ->
            match List.find_opt (fun (_, ma, _) -> String.equal ma a) shared with
            | Some (_, _, t) -> t
            | None -> Cq.Term.v ("W_" ^ a))
          member_attrs
      in
      let head_args = List.map (fun (_, _, t) -> t) shared in
      let lhs =
        Cq.Query.make (Cq.Atom.make "m" head_args) [ Pdms.Peer.atom peer rel new_args ]
      in
      let rhs =
        Cq.Query.make (Cq.Atom.make "m" head_args)
          [ Pdms.Peer.atom member_peer member_rel member_args ]
      in
      let mapping_id =
        Pdms.Catalog.add_mapping catalog (Pdms.Peer_mapping.equality ~lhs ~rhs)
      in
      { joined_peer = peer; mapped_to = member_name; correspondences; mapping_id }

let courses_visible_at scenario name =
  let catalog = scenario.delearning.Workload.University.catalog in
  let peer = Pdms.Catalog.peer catalog name in
  let rel, attrs =
    match List.assoc_opt name scenario.delearning.Workload.University.peers with
    | Some _ -> Workload.University.peer_course_schema name
    | None -> (
        match Pdms.Peer.schema peer with
        | (rel, attrs) :: _ -> (rel, attrs)
        | [] -> invalid_arg "Delearning.courses_visible_at: peer has no schema")
  in
  let title_attr = match attrs with a :: _ -> a | [] -> assert false in
  let args = List.map (fun a -> Cq.Term.v ("Q" ^ a)) attrs in
  let query =
    Cq.Query.make
      (Cq.Atom.make "ans" [ Cq.Term.v ("Q" ^ title_attr) ])
      [ Pdms.Peer.atom peer rel args ]
  in
  let result = Pdms.Answer.answer catalog query in
  List.map (function [ t ] -> t | _ -> "") (Pdms.Answer.answers_list result)
