(** PDMS generation over arbitrary topologies — the workload of the E1
    and E2 reformulation-scalability benchmarks. Every peer carries a
    course relation (and, for join workloads, an instructor relation);
    equality mappings are authored along each topology edge. *)

type generated = {
  catalog : Pdms.Catalog.t;
  peers : Pdms.Peer.t array;
  topology : Pdms.Topology.t;
}

val generate :
  Util.Prng.t ->
  topology:Pdms.Topology.t ->
  tuples_per_peer:int ->
  ?with_join:bool ->
  unit ->
  generated
(** [with_join] adds a second relation per peer plus its mappings
    (default false). *)

val course_query : generated -> at:int -> Cq.Query.t
(** Select-all over the course relation of peer [at]. *)

val join_query : generated -> at:int -> Cq.Query.t
(** Course-instructor join at peer [at]; requires [with_join]. *)

val keyword_query : generated -> Util.Prng.t -> string
(** One keyword query of 1–3 words sampled from the values of a random
    stored course tuple — guaranteed to have matching postings, which
    is what the E18 indexed-vs-brute sweep wants. *)

val keyword_queries : generated -> Util.Prng.t -> n:int -> string list

val chain_query : generated -> at:int -> Cq.Query.t
(** Three-atom chain at peer [at]: course joined to instr on code,
    joined to a second course atom on person ("titles of course pairs
    sharing an instructor"). Requires [with_join]. Rewritings of this
    query share two-atom join prefixes, which is what the batch
    evaluator exploits. *)
