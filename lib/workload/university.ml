module Dtd = Xmlmodel.Dtd
module Xml = Xmlmodel.Xml
module Path = Xmlmodel.Path
module Template = Xmlmodel.Template

let berkeley_dtd =
  Dtd.make ~root:"schedule"
    [ ("schedule", Dtd.Children [ ("college", Dtd.Many) ]);
      ("college", Dtd.Children [ ("name", Dtd.One); ("dept", Dtd.Many) ]);
      ("dept", Dtd.Children [ ("name", Dtd.One); ("course", Dtd.Many) ]);
      ("course", Dtd.Children [ ("title", Dtd.One); ("size", Dtd.One) ]);
      ("name", Dtd.Pcdata); ("title", Dtd.Pcdata); ("size", Dtd.Pcdata) ]

let mit_dtd =
  Dtd.make ~root:"catalog"
    [ ("catalog", Dtd.Children [ ("course", Dtd.Many) ]);
      ("course", Dtd.Children [ ("name", Dtd.One); ("subject", Dtd.Many) ]);
      ("subject", Dtd.Children [ ("title", Dtd.One); ("enrollment", Dtd.One) ]);
      ("name", Dtd.Pcdata); ("title", Dtd.Pcdata); ("enrollment", Dtd.Pcdata) ]

let leaf tag value = Xml.element tag [ Xml.text value ]

let berkeley_instance prng ~colleges ~depts ~courses =
  Xml.element "schedule"
    (List.init colleges (fun c ->
         Xml.element "college"
           (leaf "name" (Printf.sprintf "college of %s" (Util.Prng.pick_arr prng Vocab.departments))
           :: List.init depts (fun d ->
                  Xml.element "dept"
                    (leaf "name"
                       (Printf.sprintf "%s dept %d-%d"
                          (Util.Prng.pick_arr prng Vocab.departments) c d)
                    :: List.init courses (fun _ ->
                           Xml.element "course"
                             [ leaf "title" (Vocab.course_title prng);
                               leaf "size"
                                 (string_of_int (10 + Util.Prng.int prng 290)) ]))))))

(* Figure 4, verbatim in our template language. *)
let berkeley_to_mit =
  Template.template
    (Template.elem "catalog"
       [ Template.elem
           ~binding:
             ( "c",
               Template.Document "Berkeley.xml",
               Path.of_string "college/dept" )
           "course"
           [ Template.elem "name" [ Template.Text_from ("c", Path.of_string "name/text()") ];
             Template.elem
               ~binding:("s", Template.Variable "c", Path.of_string "course")
               "subject"
               [ Template.elem "title"
                   [ Template.Text_from ("s", Path.of_string "title/text()") ];
                 Template.elem "enrollment"
                   [ Template.Text_from ("s", Path.of_string "size/text()") ] ] ] ])

module Sm = Corpus.Schema_model

let mediated_schema =
  Sm.make ~name:"university"
    ~joins:
      [ ("ta", "course_code", "course", "code");
        ("course", "instructor", "person", "name") ]
    [ Sm.relation "course"
        [ Sm.attribute "code"; Sm.attribute "title"; Sm.attribute "instructor";
          Sm.attribute "room"; Sm.attribute "time"; Sm.attribute "day";
          Sm.attribute "enrollment" ];
      Sm.relation "person"
        [ Sm.attribute "name"; Sm.attribute "email"; Sm.attribute "phone";
          Sm.attribute "office" ];
      Sm.relation "ta"
        [ Sm.attribute "name"; Sm.attribute "email"; Sm.attribute "course_code" ];
      Sm.relation "talk"
        [ Sm.attribute "speaker"; Sm.attribute "topic"; Sm.attribute "venue";
          Sm.attribute "when" ];
      Sm.relation "publication"
        [ Sm.attribute "author"; Sm.attribute "title"; Sm.attribute "venue";
          Sm.attribute "year" ] ]

let corpus_of_variants prng ~n ~level =
  let corpus = Corpus.Corpus_store.create () in
  for i = 1 to n do
    let variant =
      Perturb.perturb
        ~name:(Printf.sprintf "univ_%d" i)
        (Util.Prng.split prng) ~level mediated_schema
    in
    Corpus.Corpus_store.add_schema corpus variant.Perturb.perturbed
  done;
  corpus

type delearning = {
  catalog : Pdms.Catalog.t;
  peers : (string * Pdms.Peer.t) list;
  network : Pdms.Network.t;
  course_counts : (string * int) list;
}

let peer_course_schema = function
  | "stanford" -> ("class", [ "name"; "enrollment" ])
  | "oxford" -> ("course_unit", [ "title"; "students" ])
  | "mit" -> ("subject", [ "title"; "enrollment" ])
  | "tsinghua" -> ("kecheng", [ "mingcheng"; "renshu" ])
  | "roma" -> ("corso", [ "titolo"; "iscritti" ])
  | "berkeley" -> ("course", [ "title"; "size" ])
  | other -> invalid_arg ("University.peer_course_schema: unknown " ^ other)

let peer_instructor_schema = function
  | "stanford" -> ("faculty", [ "prof"; "class_name" ])
  | "oxford" -> ("tutor", [ "don"; "unit_title" ])
  | "mit" -> ("teacher", [ "name"; "subject_title" ])
  | "tsinghua" -> ("laoshi", [ "xingming"; "kecheng_mingcheng" ])
  | "roma" -> ("docente", [ "persona"; "titolo_corso" ])
  | "berkeley" -> ("instructor", [ "name"; "course_title" ])
  | other -> invalid_arg ("University.peer_instructor_schema: unknown " ^ other)

(* Figure 2's mapping edges (any connected graph works; this one follows
   the figure's layout). *)
let delearning_edges =
  [ ("stanford", "berkeley"); ("stanford", "mit"); ("mit", "oxford");
    ("mit", "tsinghua"); ("berkeley", "roma") ]

let course_query peer =
  let rel, attrs = peer_course_schema (Pdms.Peer.name peer) in
  let args = List.map (fun a -> Cq.Term.v ("Q" ^ a)) attrs in
  Cq.Query.make (Cq.Atom.make "ans" args) [ Pdms.Peer.atom peer rel args ]

let course_instructor_query peer =
  let crel, cattrs = peer_course_schema (Pdms.Peer.name peer) in
  let irel, _ = peer_instructor_schema (Pdms.Peer.name peer) in
  let title = Cq.Term.v "Title" and size = Cq.Term.v "Size" in
  let person = Cq.Term.v "Person" in
  ignore cattrs;
  Cq.Query.make
    (Cq.Atom.make "ans" [ title; person ])
    [ Pdms.Peer.atom peer crel [ title; size ];
      Pdms.Peer.atom peer irel [ person; title ] ]

let build_delearning prng ~courses_per_peer =
  let catalog = Pdms.Catalog.create () in
  let names = Array.to_list Vocab.universities in
  let peers =
    List.map
      (fun name ->
        let rel, attrs = peer_course_schema name in
        let irel, iattrs = peer_instructor_schema name in
        let peer =
          Pdms.Peer.create ~name ~schema:[ (rel, attrs); (irel, iattrs) ]
        in
        Pdms.Catalog.add_peer catalog peer;
        (name, peer))
      names
  in
  let course_counts =
    List.map
      (fun (name, peer) ->
        let rel, _ = peer_course_schema name in
        let irel, _ = peer_instructor_schema name in
        let stored = Pdms.Catalog.store_identity catalog peer ~rel in
        let stored_instr = Pdms.Catalog.store_identity catalog peer ~rel:irel in
        for _ = 1 to courses_per_peer do
          let title = Printf.sprintf "[%s] %s" name (Vocab.course_title prng) in
          Relalg.Relation.apply stored
            (Relalg.Relation.Delta.add
               [| Relalg.Value.Str title;
                  Relalg.Value.Int (10 + Util.Prng.int prng 290) |]);
          Relalg.Relation.apply stored_instr
            (Relalg.Relation.Delta.add
               [| Relalg.Value.Str (Vocab.person_name prng);
                  Relalg.Value.Str title |])
        done;
        (name, courses_per_peer))
      peers
  in
  let add_edge_mapping schema_of (a, b) =
    let pa = List.assoc a peers and pb = List.assoc b peers in
    let rel_a, attrs_a = schema_of a in
    let rel_b, _ = schema_of b in
    let args = List.mapi (fun i _ -> Cq.Term.v (Printf.sprintf "M%d" i)) attrs_a in
    let lhs = Cq.Query.make (Cq.Atom.make "m" args) [ Pdms.Peer.atom pa rel_a args ] in
    let rhs = Cq.Query.make (Cq.Atom.make "m" args) [ Pdms.Peer.atom pb rel_b args ] in
    ignore (Pdms.Catalog.add_mapping catalog (Pdms.Peer_mapping.equality ~lhs ~rhs))
  in
  List.iter
    (fun edge ->
      add_edge_mapping peer_course_schema edge;
      add_edge_mapping peer_instructor_schema edge)
    delearning_edges;
  let network = Pdms.Network.create () in
  List.iter (fun (name, _) -> Pdms.Network.add_peer network name) peers;
  List.iter
    (fun (a, b) ->
      Pdms.Network.connect network a b
        ~latency_ms:(20.0 +. Util.Prng.float prng 60.0))
    delearning_edges;
  { catalog; peers; network; course_counts }
