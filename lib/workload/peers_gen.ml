type generated = {
  catalog : Pdms.Catalog.t;
  peers : Pdms.Peer.t array;
  topology : Pdms.Topology.t;
}

let course_attrs = [ "code"; "title"; "instructor" ]
let instr_attrs = [ "code"; "person" ]

let generate prng ~topology ~tuples_per_peer ?(with_join = false) () =
  let catalog = Pdms.Catalog.create () in
  let n = topology.Pdms.Topology.n in
  let peers =
    Array.init n (fun i ->
        let schema =
          ("course", course_attrs)
          :: (if with_join then [ ("instr", instr_attrs) ] else [])
        in
        let peer = Pdms.Peer.create ~name:(Printf.sprintf "p%d" i) ~schema in
        Pdms.Catalog.add_peer catalog peer;
        peer)
  in
  Array.iter
    (fun peer ->
      let stored = Pdms.Catalog.store_identity catalog peer ~rel:"course" in
      for _ = 1 to tuples_per_peer do
        let code = Vocab.course_code prng in
        Relalg.Relation.apply stored
          (Relalg.Relation.Delta.add
             [| Relalg.Value.Str code;
                Relalg.Value.Str (Vocab.course_title prng);
                Relalg.Value.Str (Vocab.person_name prng) |])
      done;
      if with_join then begin
        let stored_instr = Pdms.Catalog.store_identity catalog peer ~rel:"instr" in
        for _ = 1 to tuples_per_peer do
          Relalg.Relation.apply stored_instr
            (Relalg.Relation.Delta.add
               [| Relalg.Value.Str (Vocab.course_code prng);
                  Relalg.Value.Str (Vocab.person_name prng) |])
        done
      end)
    peers;
  let add_equality rel attrs a b =
    let args = List.mapi (fun i _ -> Cq.Term.v (Printf.sprintf "M%d" i)) attrs in
    let lhs =
      Cq.Query.make (Cq.Atom.make "m" args) [ Pdms.Peer.atom peers.(a) rel args ]
    in
    let rhs =
      Cq.Query.make (Cq.Atom.make "m" args) [ Pdms.Peer.atom peers.(b) rel args ]
    in
    ignore (Pdms.Catalog.add_mapping catalog (Pdms.Peer_mapping.equality ~lhs ~rhs))
  in
  List.iter
    (fun (a, b) ->
      add_equality "course" course_attrs a b;
      if with_join then add_equality "instr" instr_attrs a b)
    topology.Pdms.Topology.edges;
  { catalog; peers; topology }

let course_query g ~at =
  let args = List.map (fun a -> Cq.Term.v ("Q" ^ a)) course_attrs in
  Cq.Query.make (Cq.Atom.make "ans" args) [ Pdms.Peer.atom g.peers.(at) "course" args ]

let join_query g ~at =
  let peer = g.peers.(at) in
  Cq.Query.make
    (Cq.Atom.make "ans" [ Cq.Term.v "Title"; Cq.Term.v "Person" ])
    [ Pdms.Peer.atom peer "course"
        [ Cq.Term.v "Code"; Cq.Term.v "Title"; Cq.Term.v "I" ];
      Pdms.Peer.atom peer "instr" [ Cq.Term.v "Code"; Cq.Term.v "Person" ] ]

let keyword_query g prng =
  let peer = g.peers.(Util.Prng.int prng (Array.length g.peers)) in
  let rel =
    Relalg.Database.find (Pdms.Peer.stored_db peer)
      (Pdms.Peer.stored_pred peer "course")
  in
  let tuples = Array.of_list (Relalg.Relation.tuples rel) in
  if Array.length tuples = 0 then "databases"
  else
    let tuple = tuples.(Util.Prng.int prng (Array.length tuples)) in
    let words =
      Array.to_list tuple
      |> List.concat_map (fun v ->
             Util.Tokenize.words (Relalg.Value.to_string v))
      |> Array.of_list
    in
    if Array.length words = 0 then "databases"
    else
      let n = 1 + Util.Prng.int prng (min 3 (Array.length words)) in
      String.concat " "
        (List.init n (fun _ -> Util.Prng.pick_arr prng words))

let keyword_queries g prng ~n = List.init n (fun _ -> keyword_query g prng)

let chain_query g ~at =
  let peer = g.peers.(at) in
  Cq.Query.make
    (Cq.Atom.make "ans" [ Cq.Term.v "T1"; Cq.Term.v "T2" ])
    [ Pdms.Peer.atom peer "course"
        [ Cq.Term.v "C"; Cq.Term.v "T1"; Cq.Term.v "I" ];
      Pdms.Peer.atom peer "instr" [ Cq.Term.v "C"; Cq.Term.v "P" ];
      Pdms.Peer.atom peer "course"
        [ Cq.Term.v "C2"; Cq.Term.v "T2"; Cq.Term.v "P" ] ]
