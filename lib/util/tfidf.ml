module Smap = Map.Make (String)

type corpus = { df : float Smap.t; n : int }
type vector = (string * float) list

let build docs =
  let df =
    List.fold_left
      (fun acc doc ->
        let distinct = List.sort_uniq String.compare doc in
        List.fold_left
          (fun acc tok ->
            Smap.update tok
              (function None -> Some 1.0 | Some c -> Some (c +. 1.0))
              acc)
          acc distinct)
      Smap.empty docs
  in
  { df; n = List.length docs }

let of_counts ~n counts =
  let df =
    List.fold_left
      (fun acc (tok, c) -> Smap.add tok (float_of_int c) acc)
      Smap.empty counts
  in
  { df; n }

let num_docs c = c.n

let idf c tok =
  let df = Option.value ~default:0.0 (Smap.find_opt tok c.df) in
  log ((float_of_int c.n +. 1.0) /. (df +. 1.0)) +. 1.0

let vectorize c doc =
  let tf =
    List.fold_left
      (fun acc tok ->
        Smap.update tok
          (function None -> Some 1.0 | Some x -> Some (x +. 1.0))
          acc)
      Smap.empty doc
  in
  let weighted = Smap.mapi (fun tok f -> f *. idf c tok) tf in
  let norm =
    sqrt (Smap.fold (fun _ w acc -> acc +. (w *. w)) weighted 0.0)
  in
  let weighted = if norm > 0.0 then Smap.map (fun w -> w /. norm) weighted else weighted in
  Smap.bindings weighted

(* Vectors produced by [vectorize] come from [Smap.bindings] and are
   strictly sorted by token, so the dot product is a linear two-pointer
   merge. Callers outside this module also feed count-ordered vectors
   (e.g. Counter.items output), for which we keep the map-based path:
   the merge is only valid when both sides are strictly ascending. *)
let rec strictly_sorted = function
  | [] | [ _ ] -> true
  | (ka, _) :: ((kb, _) :: _ as rest) ->
      String.compare ka kb < 0 && strictly_sorted rest

let cosine_merge va vb =
  let rec go acc va vb =
    match (va, vb) with
    | [], _ | _, [] -> acc
    | (ka, wa) :: ra, (kb, wb) :: rb -> (
        match String.compare ka kb with
        | 0 -> go (acc +. (wa *. wb)) ra rb
        | c when c < 0 -> go acc ra vb
        | _ -> go acc va rb)
  in
  go 0.0 va vb

let cosine_map va vb =
  let mb = List.fold_left (fun acc (k, v) -> Smap.add k v acc) Smap.empty vb in
  List.fold_left
    (fun acc (k, v) ->
      match Smap.find_opt k mb with None -> acc | Some w -> acc +. (v *. w))
    0.0 va

let cosine va vb =
  if strictly_sorted va && strictly_sorted vb then cosine_merge va vb
  else cosine_map va vb

let similarity c da db = cosine (vectorize c da) (vectorize c db)
