(* Array-backed bounded binary min-heap: the root is the weakest
   retained item, so a full accumulator rejects a loser against one
   slot in O(1) and pays O(log k) only when a newcomer displaces it.
   The heap order key is (score, insertion sequence): among equal
   scores the later insertion is the weaker item, which preserves the
   tie-break of the original sorted-list implementation (first-come
   wins among equals). *)

type 'a slot = { score : float; seq : int; item : 'a }

type 'a t = {
  k : int;
  mutable heap : 'a slot array;  (* [0, size): min-heap, weakest at 0 *)
  mutable size : int;
  mutable seq : int;  (* total adds so far = next insertion stamp *)
}

let create k =
  if k <= 0 then invalid_arg "Topk.create: k must be positive";
  { k; heap = [||]; size = 0; seq = 0 }

(* [weaker a b]: is [a] dropped in preference to [b]? *)
let weaker a b = a.score < b.score || (a.score = b.score && a.seq > b.seq)

let swap h i j =
  let t = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if weaker h.(i) h.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let weakest = ref i in
  if l < size && weaker h.(l) h.(!weakest) then weakest := l;
  if r < size && weaker h.(r) h.(!weakest) then weakest := r;
  if !weakest <> i then begin
    swap h i !weakest;
    sift_down h size !weakest
  end

let add t score item =
  let s = { score; seq = t.seq; item } in
  t.seq <- t.seq + 1;
  if t.size < t.k then begin
    (* The backing array is allocated lazily so empty accumulators
       cost nothing; the first slot doubles as the filler value. *)
    if Array.length t.heap = 0 then t.heap <- Array.make t.k s;
    t.heap.(t.size) <- s;
    t.size <- t.size + 1;
    sift_up t.heap (t.size - 1)
  end
  else if weaker s t.heap.(0) then ()
    (* Full and no stronger than the weakest kept item: equal scores
       lose to the earlier insertion, exactly as the sorted list
       truncated them. *)
  else begin
    t.heap.(0) <- s;
    sift_down t.heap t.size 0
  end

let to_list t =
  Array.to_list (Array.sub t.heap 0 t.size)
  |> List.sort (fun a b ->
         match Float.compare b.score a.score with
         | 0 -> Int.compare a.seq b.seq
         | c -> c)
  |> List.map (fun s -> (s.score, s.item))

let min_score t = if t.size < t.k then None else Some t.heap.(0).score
