(** Bounded best-k accumulator for ranked retrieval (DesignAdvisor,
    semantic search). Backed by an array min-heap: [add] against a
    full accumulator is O(1) when the item loses to the current
    floor, O(log k) otherwise. Ties on score keep the earlier
    insertion. *)

type 'a t

val create : int -> 'a t
(** [create k] keeps the [k] highest-scoring items.
    @raise Invalid_argument if [k <= 0]. *)

val add : 'a t -> float -> 'a -> unit

val to_list : 'a t -> (float * 'a) list
(** Best first. *)

val min_score : 'a t -> float option
(** Score of the weakest retained item, if the accumulator is full. *)
