(** A small fixed-size worker pool over OCaml 5 domains (stdlib only).
    Work items are claimed from a shared atomic counter; results are
    returned in input order regardless of which domain ran which item. *)

val map : int -> ('a -> 'b) -> 'a list -> 'b list
(** [map jobs f xs] applies [f] to every element of [xs] using up to
    [jobs] domains (the calling domain is one of them) and returns the
    results in the order of [xs]. [jobs <= 1] is exactly [List.map].
    [f] must be safe to run concurrently with itself: it must not
    mutate state shared between items. An exception raised by [f] is
    re-raised in the caller (lowest item index first); the remaining
    items still run to completion. *)

val chunk : int -> 'a list -> 'a list list
(** [chunk k xs] splits [xs] into at most [k] contiguous, order-
    preserving pieces of near-equal length; concatenating the result
    yields [xs]. Never produces an empty piece; [chunk k [] = []]. *)

val cpu_count : unit -> int
(** [Domain.recommended_domain_count ()] — the parallelism the hardware
    offers. *)
