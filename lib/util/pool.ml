(* A small fixed-size worker pool over OCaml 5 domains (stdlib only).

   [map jobs f xs] spawns at most [jobs - 1] helper domains (the calling
   domain is the remaining worker); items are claimed from a shared
   atomic counter, and every result is written to its item's slot, so
   the output order equals the input order no matter which domain ran
   which item. Exceptions raised by [f] are re-raised in the caller,
   lowest item index first. *)

let cpu_count () = Domain.recommended_domain_count ()

let map jobs f xs =
  if jobs <= 1 then List.map f xs
  else
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ ->
        let items = Array.of_list xs in
        let n = Array.length items in
        let results = Array.make n None in
        let next = Atomic.make 0 in
        let rec worker () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (results.(i) <-
               (match f items.(i) with
               | y -> Some (Ok y)
               | exception e -> Some (Error e)));
            worker ()
          end
        in
        let helpers =
          Array.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker)
        in
        worker ();
        Array.iter Domain.join helpers;
        Array.to_list results
        |> List.map (function
             | Some (Ok y) -> y
             | Some (Error e) -> raise e
             | None -> assert false)

let chunk k xs =
  let n = List.length xs in
  if n = 0 then []
  else if k <= 1 then [ xs ]
  else
    let pieces = min k n in
    let base = n / pieces and extra = n mod pieces in
    (* First [extra] chunks get one more item; order is preserved. *)
    let rec take i acc rest =
      if i = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: tl -> take (i - 1) (x :: acc) tl
    in
    let rec go idx rest acc =
      if idx >= pieces then List.rev acc
      else
        let size = base + if idx < extra then 1 else 0 in
        let piece, rest = take size [] rest in
        go (idx + 1) rest (piece :: acc)
    in
    go 0 xs []
