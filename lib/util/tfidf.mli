(** TF/IDF vector space — the U-WORLD technique the paper explicitly
    transplants into the S-WORLD (Section 4). Documents are bags of
    tokens; vectors are sparse. *)

type corpus
type vector = (string * float) list
(** Sparse vector: token -> weight, tokens unique. *)

val build : string list list -> corpus
(** [build docs] computes document frequencies over tokenised documents. *)

val of_counts : n:int -> (string * int) list -> corpus
(** [of_counts ~n counts] assembles a corpus from precomputed integer
    document frequencies over [n] documents (e.g. merged per-relation
    deltas from an inverted index). Equivalent to [build] on any doc
    set with those frequencies: counts below 2^53 convert exactly. *)

val num_docs : corpus -> int

val idf : corpus -> string -> float
(** Smoothed: [log ((n + 1) / (df + 1)) + 1]. *)

val vectorize : corpus -> string list -> vector
(** TF (raw count) * IDF, L2-normalised. *)

val cosine : vector -> vector -> float
(** Dot product over shared tokens. When both vectors are strictly
    token-sorted (as [vectorize] output always is) this is a linear
    two-pointer merge; otherwise it falls back to a map-based probe. *)

val similarity : corpus -> string list -> string list -> float
(** Cosine of the two vectorised documents. *)
