open Cq

type pruning = Exec.pruning = {
  use_history : bool;
  use_visited : bool;
  use_goal_memo : bool;
  use_subsumption : bool;
  use_minimize : bool;
  max_depth : int;
  max_rewritings : int;
}

let default_pruning = Exec.default_pruning
let no_pruning = Exec.no_pruning

(* Metrics registered once at load; increments are batched per phase. *)
let m_runs = Obs.Metrics.counter "pdms.reformulate.runs"
let m_expanded = Obs.Metrics.counter "pdms.reformulate.nodes_expanded"
let m_emitted = Obs.Metrics.counter "pdms.reformulate.emitted"
let m_pruned_history = Obs.Metrics.counter "pdms.reformulate.pruned_history"
let m_pruned_visited = Obs.Metrics.counter "pdms.reformulate.pruned_visited"
let m_pruned_subsumed = Obs.Metrics.counter "pdms.reformulate.pruned_subsumed"
let m_pruned_depth = Obs.Metrics.counter "pdms.reformulate.pruned_depth"
let m_lav = Obs.Metrics.counter "pdms.reformulate.lav_invocations"
let m_sweeps = Obs.Metrics.counter "pdms.reformulate.sweep.runs"
let m_sweep_tested = Obs.Metrics.counter "pdms.reformulate.sweep.pairs_tested"
let m_sweep_skipped =
  Obs.Metrics.counter "pdms.reformulate.sweep.pairs_sig_skipped"
let m_sweep_killed = Obs.Metrics.counter "pdms.reformulate.sweep.killed"

type stats = {
  nodes_expanded : int;
  emitted : int;
  pruned_history : int;
  pruned_visited : int;
  pruned_subsumed : int;
  pruned_depth : int;
  lav_invocations : int;
}

type outcome = { rewritings : Query.t list; stats : stats }

module Iset = Set.Make (Int)

(* A node of the rule-goal tree: a partial reformulation whose body atoms
   each carry the set of mapping ids on their own derivation path (the
   per-goal path of the rule-goal tree — sibling subgoals may legally
   traverse the same mapping). *)
type node = { head : Atom.t; body : (Atom.t * Iset.t) list }

let plain node = Query.make node.head (List.map fst node.body)

(* Canonical variable names, memoized: the first 256 are shared strings
   so alpha-normalisation allocates no name for typical node widths. *)
let canon_names = Array.init 256 (fun i -> "v" ^ string_of_int i)

let canon_name i = if i < 256 then canon_names.(i) else "v" ^ string_of_int i

(* Alpha-normalise the node: rename variables in first-occurrence order,
   then sort (atom, history) pairs by the rendered atom. Returns the
   atoms-only key plus the tag vector in that order. All rendering goes
   through one scratch [Buffer] — the seed built the key from repeated
   [Atom.to_string] + [String.concat] allocations. *)
let canonical node =
  let mapping = Hashtbl.create 16 in
  let canon_var x =
    match Hashtbl.find_opt mapping x with
    | Some x' -> x'
    | None ->
        let x' = canon_name (Hashtbl.length mapping) in
        Hashtbl.replace mapping x x';
        x'
  in
  let buf = Buffer.create 128 in
  let render_atom (a : Atom.t) =
    Buffer.add_string buf a.Atom.pred;
    Buffer.add_char buf '(';
    List.iteri
      (fun i t ->
        if i > 0 then Buffer.add_string buf ", ";
        match t with
        | Term.Var x -> Buffer.add_string buf (canon_var x)
        | Term.Const v ->
            Buffer.add_char buf '\'';
            Buffer.add_string buf (Relalg.Value.to_string v);
            Buffer.add_char buf '\'')
      a.Atom.args;
    Buffer.add_char buf ')'
  in
  (* Renaming is first-occurrence order over head then body, so the head
     must be rendered first to seed the mapping. *)
  render_atom node.head;
  let head_len = Buffer.length buf in
  let tagged =
    List.map
      (fun (a, h) ->
        let start = Buffer.length buf in
        render_atom a;
        let s = Buffer.sub buf start (Buffer.length buf - start) in
        (s, h))
      node.body
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let head = Buffer.sub buf 0 head_len in
  Buffer.clear buf;
  Buffer.add_string buf head;
  Buffer.add_string buf " :- ";
  List.iteri
    (fun i (s, _) ->
      if i > 0 then Buffer.add_char buf ';';
      Buffer.add_string buf s)
    tagged;
  (Buffer.contents buf, List.map snd tagged)

let identity_view pred arity =
  let args = List.init arity (fun i -> Term.v (Printf.sprintf "I%d" i)) in
  Query.make (Atom.make pred args) [ Atom.make pred args ]

(* Unfold one tagged atom with a rule; rule-body atoms inherit the
   atom's history extended with the rule's mapping id. *)
let expand_tagged ~fresh node (atom, hist) extra (rule : Query.t) =
  let rule = Query.freshen ~suffix:(fresh ()) rule in
  match Subst.unify_atom Subst.empty atom rule.Query.head with
  | None -> None
  | Some mgu ->
      let new_hist =
        match extra with Some id -> Iset.add id hist | None -> hist
      in
      let body =
        List.concat_map
          (fun (a, h) ->
            if a == atom then
              List.map (fun b -> (Subst.apply_atom mgu b, new_hist)) rule.Query.body
            else [ (Subst.apply_atom mgu a, h) ])
          node.body
      in
      Some { head = Subst.apply_atom mgu node.head; body }

(* Drop repeated body atoms, keeping the first occurrence in order.
   Hash-set membership on the rendered atom — the seed's [List.exists]
   over the seen-prefix was quadratic in body length. *)
let dedupe_body node =
  let seen = Hashtbl.create 16 in
  let body =
    List.filter
      (fun (a, _) ->
        let key = Atom.to_string a in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      node.body
  in
  { node with body }

(* Emit-time subsumption index: rewritings bucketed by signature, with
   O(1) bucket lookup by signature key. [subsumed_by_any] visits only
   buckets whose signature passes the necessary-condition prefilter, so
   the homomorphism search runs on compatible candidates only. *)
module Sub_index = struct
  type bucket = { signature : Signature.t; mutable members : Query.t list }

  type t = {
    by_key : (string, bucket) Hashtbl.t;
    mutable buckets : bucket list;
  }

  let create () = { by_key = Hashtbl.create 64; buckets = [] }

  let subsumed_by_any t (q : Query.t) =
    let sub = Signature.of_query q in
    List.exists
      (fun b ->
        Signature.compatible ~sub ~super:b.signature
        && List.exists
             (fun e ->
               Containment.contained_in_with ~sub ~super:b.signature q e)
             b.members)
      t.buckets

  let add t (q : Query.t) =
    let signature = Signature.of_query q in
    let key = Signature.key signature in
    match Hashtbl.find_opt t.by_key key with
    | Some b -> b.members <- q :: b.members
    | None ->
        let b = { signature; members = [ q ] } in
        Hashtbl.replace t.by_key key b;
        t.buckets <- b :: t.buckets
end

(* The final all-pairs subsumption sweep, exposed for benchmarking.
   Scans pairs in the same order as the seed's nested loop and applies
   the identical keep-flag rules, so the surviving set and its order are
   byte-identical to the seed — the signature prefilter only skips pairs
   whose containment test is guaranteed [false].

   [jobs > 1] precomputes the containment matrix for every
   signature-compatible ordered pair in parallel (containment is pure,
   queries are immutable), then replays the same sequential keep loop
   against the matrix; the result is identical for every [jobs]. *)
let subsumption_sweep ?(exec = Exec.default) (rewritings : Query.t list) =
  let jobs = exec.Exec.jobs in
  let trace = exec.Exec.trace in
  Obs.Trace.span trace "sweep" @@ fun () ->
  let arr = Array.of_list rewritings in
  let n = Array.length arr in
  if n <= 1 then begin
    Obs.Trace.attr_i trace "input" n;
    Obs.Trace.attr_i trace "kept" n;
    rewritings
  end
  else begin
    (* Containment-test accounting is batched in plain locals — the inner
       loop runs at ~tens of ns per pair, so per-pair atomics would blow
       the E15 overhead budget — and flushed to Obs.Metrics once below. *)
    let tested = ref 0 in
    let skipped = ref 0 in
    let sigs = Array.map Signature.of_query arr in
    let compat i j = Signature.compatible ~sub:sigs.(i) ~super:sigs.(j) in
    let keep = Array.make n true in
    let decide contained =
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && keep.(i) && keep.(j) && contained i j then
            if contained j i then (
              if j > i then keep.(j) <- false else keep.(i) <- false)
            else keep.(i) <- false
        done
      done
    in
    if jobs <= 1 then
      decide (fun i j ->
          if compat i j then begin
            Stdlib.incr tested;
            Containment.contained_in_with ~sub:sigs.(i) ~super:sigs.(j)
              arr.(i) arr.(j)
          end
          else begin
            Stdlib.incr skipped;
            false
          end)
    else begin
      (* Dense n*n matrix of verdicts over compatible pairs; incompatible
         pairs are [false] by the prefilter's soundness. Work is sharded
         by row blocks to keep per-task granularity coarse. *)
      let matrix = Array.make (n * n) false in
      let rows = List.init n Fun.id in
      let blocks = Util.Pool.chunk (max 1 (n / (jobs * 4))) rows in
      let results =
        Util.Pool.map jobs
          (fun block ->
            List.map
              (fun i ->
                let verdicts = Array.make n false in
                let row_tested = ref 0 in
                for j = 0 to n - 1 do
                  if i <> j && compat i j then begin
                    Stdlib.incr row_tested;
                    verdicts.(j) <-
                      Containment.contained_in_with ~sub:sigs.(i)
                        ~super:sigs.(j) arr.(i) arr.(j)
                  end
                done;
                (i, verdicts, !row_tested))
              block)
          blocks
      in
      List.iter
        (List.iter (fun (i, verdicts, row_tested) ->
             Array.blit verdicts 0 matrix (i * n) n;
             tested := !tested + row_tested))
        results;
      skipped := (n * (n - 1)) - !tested;
      decide (fun i j -> matrix.((i * n) + j))
    end;
    let kept = Array.fold_left (fun acc k -> if k then acc + 1 else acc) 0 keep in
    if exec.Exec.metrics then begin
      Obs.Metrics.incr m_sweeps;
      Obs.Metrics.add m_sweep_tested !tested;
      Obs.Metrics.add m_sweep_skipped !skipped;
      Obs.Metrics.add m_sweep_killed (n - kept)
    end;
    Obs.Trace.attr_i trace "input" n;
    Obs.Trace.attr_i trace "kept" kept;
    Obs.Trace.attr_i trace "pairs_tested" !tested;
    Obs.Trace.attr_i trace "pairs_sig_skipped" !skipped;
    List.filteri (fun i _ -> keep.(i)) (Array.to_list arr)
  end

let reformulate ?(exec = Exec.default) catalog (q : Query.t) =
  let pruning = exec.Exec.pruning in
  let trace = exec.Exec.trace in
  Obs.Trace.span trace "reformulate" @@ fun () ->
  let nodes_expanded = ref 0 in
  let emitted = ref [] in
  let emitted_count = ref 0 in
  let sub_index = Sub_index.create () in
  let pruned_history = ref 0 in
  let pruned_visited = ref 0 in
  let pruned_subsumed = ref 0 in
  let pruned_depth = ref 0 in
  let lav_invocations = ref 0 in
  (* Goal memo: alpha-normalised CQ keys already enqueued (ignoring
     histories). Breadth-first order makes the first visit the
     shortest-path one, so its history is the most permissive in
     practice — this is the aggressive Piazza heuristic. *)
  let goal_memo : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  (* Dominance store: key -> tag vectors already explored. A new node is
     pruned when an explored vector is pointwise a subset of its own
     (the earlier node could do strictly more). *)
  let visited : (string, Iset.t list list) Hashtbl.t = Hashtbl.create 256 in
  let fresh_counter = ref 0 in
  let fresh () =
    incr fresh_counter;
    Printf.sprintf "~g%d" !fresh_counter
  in
  let emit c =
    let c = Minimize.remove_duplicate_atoms c in
    let c = if pruning.use_minimize then Minimize.minimize c else c in
    if pruning.use_subsumption && Sub_index.subsumed_by_any sub_index c then
      incr pruned_subsumed
    else begin
      emitted := c :: !emitted;
      incr emitted_count;
      if pruning.use_subsumption then Sub_index.add sub_index c
    end
  in
  let queue : (node * int) Queue.t = Queue.create () in
  let push node depth =
    let node = dedupe_body node in
    if depth > pruning.max_depth then incr pruned_depth
    else begin
      let pending_exists =
        List.exists
          (fun ((a : Atom.t), _) -> not (Catalog.is_stored catalog a.Atom.pred))
          node.body
      in
      if not pending_exists then
        (* Complete: enqueue for emission (kept in queue to preserve
           counting uniformity). *)
        Queue.add (node, depth) queue
      else begin
        let key, tags = canonical node in
        let memo_pruned =
          pruning.use_goal_memo
          &&
          if Hashtbl.mem goal_memo key then true
          else begin
            Hashtbl.replace goal_memo key ();
            false
          end
        in
        if memo_pruned then incr pruned_visited
        else
          let dominance_pruned =
            pruning.use_visited
            &&
            let stored = Option.value ~default:[] (Hashtbl.find_opt visited key) in
            if
              List.exists
                (fun prev ->
                  List.length prev = List.length tags
                  && List.for_all2 Iset.subset prev tags)
                stored
            then true
            else begin
              Hashtbl.replace visited key (tags :: stored);
              false
            end
          in
          if dominance_pruned then incr pruned_visited
          else Queue.add (node, depth) queue
      end
    end
  in
  let process node depth =
    incr nodes_expanded;
    let pending =
      List.filter
        (fun ((a : Atom.t), _) -> not (Catalog.is_stored catalog a.Atom.pred))
        node.body
    in
    if pending = [] then emit (plain node)
    else begin
      (* Step 1: GAV — unfold the first pending atom that has rules
         (definitional mappings and GLAV mapping predicates). *)
      let gav =
        List.find_opt
          (fun ((a : Atom.t), _) -> Catalog.has_rules catalog a.Atom.pred)
          pending
      in
      match gav with
      | Some ((atom, hist) as tagged) ->
          List.iter
            (fun (mid, rule) ->
              let blocked =
                pruning.use_history
                &&
                match mid with Some id -> Iset.mem id hist | None -> false
              in
              if blocked then incr pruned_history
              else
                match expand_tagged ~fresh node tagged mid rule with
                | None -> ()
                | Some node' -> push node' (depth + 1))
            (Catalog.rules_for catalog atom.Atom.pred)
      | None ->
          (* Step 2: LAV — answer the whole query with the catalog's
             views (MiniCon); identity views carry stored atoms through
             unchanged. View atoms inherit the union of the pending
             atoms' histories (conservative). *)
          incr lav_invocations;
          let union_hist =
            List.fold_left (fun acc (_, h) -> Iset.union acc h) Iset.empty pending
          in
          let usable_views =
            List.filter_map
              (fun (mid, view) ->
                match mid with
                | Some id when pruning.use_history && Iset.mem id union_hist ->
                    incr pruned_history;
                    None
                | Some _ | None -> Some view)
              (Catalog.views catalog)
          in
          let id_views =
            node.body
            |> List.filter_map (fun ((a : Atom.t), _) ->
                   if Catalog.is_stored catalog a.Atom.pred then
                     Some (a.Atom.pred, Atom.arity a)
                   else None)
            |> List.sort_uniq compare
            |> List.map (fun (p, n) -> identity_view p n)
          in
          let rewritings, _ =
            Rewrite.Minicon.rewrite ~views:(usable_views @ id_views) (plain node)
          in
          List.iter
            (fun (r : Query.t) ->
              push
                {
                  head = r.Query.head;
                  body = List.map (fun a -> (a, union_hist)) r.Query.body;
                }
                (depth + 1))
            rewritings
    end
  in
  push
    { head = q.Query.head; body = List.map (fun a -> (a, Iset.empty)) q.Query.body }
    0;
  while
    (not (Queue.is_empty queue)) && !emitted_count < pruning.max_rewritings
  do
    let node, depth = Queue.pop queue in
    process node depth
  done;
  let rewritings = List.rev !emitted in
  (* Final subsumption sweep: earlier emissions may be contained in
     later, more general ones (the incremental check only looks
     backwards). Equivalent pairs keep their first representative. *)
  let rewritings =
    if pruning.use_subsumption then subsumption_sweep ~exec rewritings
    else rewritings
  in
  let stats =
    {
      nodes_expanded = !nodes_expanded;
      emitted = List.length rewritings;
      pruned_history = !pruned_history;
      pruned_visited = !pruned_visited;
      pruned_subsumed = !pruned_subsumed;
      pruned_depth = !pruned_depth;
      lav_invocations = !lav_invocations;
    }
  in
  if exec.Exec.metrics then begin
    Obs.Metrics.incr m_runs;
    Obs.Metrics.add m_expanded stats.nodes_expanded;
    Obs.Metrics.add m_emitted stats.emitted;
    Obs.Metrics.add m_pruned_history stats.pruned_history;
    Obs.Metrics.add m_pruned_visited stats.pruned_visited;
    Obs.Metrics.add m_pruned_subsumed stats.pruned_subsumed;
    Obs.Metrics.add m_pruned_depth stats.pruned_depth;
    Obs.Metrics.add m_lav stats.lav_invocations
  end;
  Obs.Trace.attr_i trace "expanded" stats.nodes_expanded;
  Obs.Trace.attr_i trace "rewritings" stats.emitted;
  Obs.Trace.attr_i trace "pruned_history" stats.pruned_history;
  Obs.Trace.attr_i trace "pruned_visited" stats.pruned_visited;
  Obs.Trace.attr_i trace "pruned_subsumed" stats.pruned_subsumed;
  Obs.Trace.attr_i trace "pruned_depth" stats.pruned_depth;
  Obs.Trace.attr_i trace "lav_invocations" stats.lav_invocations;
  { rewritings; stats }

let pp_stats fmt s =
  Format.fprintf fmt
    "expanded=%d emitted=%d pruned(history=%d visited=%d subsumed=%d depth=%d) lav=%d"
    s.nodes_expanded s.emitted s.pruned_history s.pruned_visited
    s.pruned_subsumed s.pruned_depth s.lav_invocations
