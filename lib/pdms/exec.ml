type pruning = {
  use_history : bool;
  use_visited : bool;
  use_goal_memo : bool;
  use_subsumption : bool;
  use_minimize : bool;
  max_depth : int;
  max_rewritings : int;
}

let default_pruning =
  {
    use_history = true;
    use_visited = true;
    use_goal_memo = true;
    use_subsumption = true;
    use_minimize = true;
    max_depth = 128;
    max_rewritings = 2_000;
  }

let no_pruning =
  {
    use_history = false;
    use_visited = false;
    use_goal_memo = false;
    use_subsumption = false;
    use_minimize = false;
    max_depth = 24;
    max_rewritings = 2_000;
  }

type backoff = {
  base_ms : float;
  multiplier : float;
  jitter : float;
}

type retry = {
  max_attempts : int;
  timeout_ms : float;
  backoff : backoff;
}

let default_backoff = { base_ms = 10.0; multiplier = 2.0; jitter = 0.5 }

let default_retry =
  { max_attempts = 3; timeout_ms = 10_000.0; backoff = default_backoff }

let no_retry =
  { max_attempts = 1; timeout_ms = infinity; backoff = default_backoff }

type t = {
  jobs : int;
  pruning : pruning;
  retry : retry;
  batch : bool;
  index : bool;
  incremental : bool;
  trace : Obs.Trace.t;
  metrics : bool;
}

let default =
  {
    jobs = 1;
    pruning = default_pruning;
    retry = default_retry;
    batch = true;
    index = true;
    incremental = true;
    trace = Obs.Trace.null;
    metrics = true;
  }

let make ?(jobs = 1) ?(pruning = default_pruning) ?(retry = default_retry)
    ?(batch = true) ?(index = true) ?(incremental = true)
    ?(trace = Obs.Trace.null) ?(metrics = true) () =
  { jobs; pruning; retry; batch; index; incremental; trace; metrics }

let with_jobs jobs = { default with jobs }
let with_pruning pruning = { default with pruning }
let with_retry retry = { default with retry }
let with_batch batch = { default with batch }
let with_index index = { default with index }
let with_incremental incremental = { default with incremental }
let with_trace trace = { default with trace }
