open Cq

module Smap = Eval.Smap

type t = {
  view : Query.t;
  db : Relalg.Database.t;
  exec : Exec.t;
  (* rendered head tuple -> (derivation count, the tuple itself) *)
  counts : (string, int * Relalg.Relation.tuple) Hashtbl.t;
  mutable delta_bindings : int;
}

let render tuple =
  String.concat "\x00"
    (Array.to_list (Array.map Relalg.Value.to_string tuple))

let head_tuple (view : Query.t) resolve =
  Array.of_list
    (List.map
       (fun term ->
         match resolve term with
         | Some v -> v
         | None -> invalid_arg "View_maintenance: unsafe view")
       view.Query.head.Atom.args)

let resolve_with (b : Relalg.Value.t Smap.t) = function
  | Term.Const v -> Some v
  | Term.Var x -> Smap.find_opt x b

let bump counts tuple delta =
  let key = render tuple in
  let current = match Hashtbl.find_opt counts key with Some (c, _) -> c | None -> 0 in
  let next = current + delta in
  if next <= 0 then Hashtbl.remove counts key
  else Hashtbl.replace counts key (next, tuple)

let recompute_counts t =
  Hashtbl.reset t.counts;
  List.iter
    (fun b -> bump t.counts (head_tuple t.view (resolve_with b)) 1)
    (Eval.run_bindings t.db t.view)

let create ?(exec = Exec.default) db view =
  if not (Query.is_safe view) then
    invalid_arg "View_maintenance.create: unsafe view";
  let t = { view; db; exec; counts = Hashtbl.create 64; delta_bindings = 0 } in
  recompute_counts t;
  t

let query t = t.view
let tuples t = Hashtbl.fold (fun _ (_, tuple) acc -> tuple :: acc) t.counts []
let cardinality t = Hashtbl.length t.counts

(* Substitution grounding one body atom to a concrete tuple. *)
let ground_atom_subst (atom : Atom.t) tuple =
  if Atom.arity atom <> Array.length tuple then None
  else
    let rec go subst i = function
      | [] -> Some subst
      | term :: rest -> (
          match Subst.walk subst term with
          | Term.Const c ->
              if Relalg.Value.equal c tuple.(i) then go subst (i + 1) rest
              else None
          | Term.Var x ->
              go (Subst.bind subst x (Term.Const tuple.(i))) (i + 1) rest)
    in
    go Subst.empty 0 atom.Atom.args

(* All derivations that use [tuple] in relation [rel] at some body-atom
   occurrence, deduplicated across occurrences by the full variable
   assignment. Must be called while [tuple] is present in the db. *)
let derivations_using t rel tuple =
  let seen = Hashtbl.create 8 in
  let results = ref [] in
  List.iteri
    (fun i (atom : Atom.t) ->
      if String.equal atom.Atom.pred rel then
        match ground_atom_subst atom tuple with
        | None -> ()
        | Some subst ->
            let rest =
              List.filteri (fun j _ -> j <> i) t.view.Query.body
              |> List.map (Subst.apply_atom subst)
            in
            let sub_query = Query.make (Atom.make "~delta" []) rest in
            List.iter
              (fun b ->
                (* Re-attach the variables grounded by the tuple. *)
                let full =
                  List.fold_left
                    (fun acc (x, term) ->
                      match Subst.walk subst term with
                      | Term.Const v -> Smap.add x v acc
                      | Term.Var _ -> acc)
                    b (Subst.bindings subst)
                in
                let key =
                  String.concat ";"
                    (List.map
                       (fun (x, v) -> x ^ "=" ^ Relalg.Value.to_string v)
                       (Smap.bindings full))
                in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  results := full :: !results
                end)
              (Eval.run_bindings t.db sub_query))
    t.view.Query.body;
  !results

let mentions t rel =
  List.exists (fun (a : Atom.t) -> String.equal a.Atom.pred rel) t.view.Query.body

let maintain_insert t ~rel tuple =
  if mentions t rel then
    List.iter
      (fun b ->
        t.delta_bindings <- t.delta_bindings + 1;
        bump t.counts (head_tuple t.view (resolve_with b)) 1)
      (derivations_using t rel tuple)

let maintain_delete t ~rel tuple =
  if mentions t rel then
    List.iter
      (fun b ->
        t.delta_bindings <- t.delta_bindings + 1;
        bump t.counts (head_tuple t.view (resolve_with b)) (-1))
      (derivations_using t rel tuple)

let refresh t = recompute_counts t

let apply ?exec t (u : Updategram.t) =
  let exec = Option.value ~default:t.exec exec in
  if not exec.Exec.incremental then begin
    (* The --no-incremental baseline: mutate, then recompute the view
       from scratch.  Same final counts, none of the delta machinery. *)
    Updategram.apply ~exec t.db u;
    refresh t
  end
  else begin
    let rel = Relalg.Database.find t.db u.Updategram.rel in
    Obs.Trace.span exec.Exec.trace "view.maintain" @@ fun () ->
    (* Deletes: count derivations while the tuple is still present. *)
    List.iter
      (fun tuple ->
        if Relalg.Relation.mem rel tuple then begin
          maintain_delete t ~rel:u.Updategram.rel tuple;
          Relalg.Relation.apply rel (Relalg.Relation.Delta.remove tuple)
        end)
      u.Updategram.deletes;
    (* Inserts: add first, then count new derivations (all of them use
       the new tuple, which was absent before). *)
    List.iter
      (fun tuple ->
        if not (Relalg.Relation.mem rel tuple) then begin
          Relalg.Relation.apply rel (Relalg.Relation.Delta.add tuple);
          maintain_insert t ~rel:u.Updategram.rel tuple
        end)
      u.Updategram.inserts
  end

let delta_bindings_processed t = t.delta_bindings
