(** Updategrams (Section 3.1.2): "Piazza treats updates as first-class
    citizens, as any other data source" — a batch of inserts and deletes
    against one relation that can be shipped, composed, and applied to
    views incrementally. *)

type t = {
  rel : string;
  inserts : Relalg.Relation.tuple list;
  deletes : Relalg.Relation.tuple list;
}

val make :
  rel:string ->
  ?inserts:Relalg.Relation.tuple list ->
  ?deletes:Relalg.Relation.tuple list ->
  unit ->
  t

val of_log : Storage.Relation_store.event list -> t list
(** Fold a change log into one updategram per relation (insert-then-
    delete of the same tuple cancels). *)

val effective_delta : Relalg.Relation.t -> t -> Relalg.Relation.Delta.t
(** What this updategram would actually change against the relation's
    current contents: deletes of absent tuples are dropped, duplicate
    deletes collapse to one removal (stored relations are distinct),
    and inserts that would be no-ops under insert-distinct semantics
    (already present and not deleted, or repeated within the gram) are
    dropped.  This is the payload {!Propagate} ships to replicas. *)

val apply :
  ?exec:Exec.t ->
  ?tee:(rel:string -> Relalg.Relation.Delta.t -> unit) ->
  Relalg.Database.t ->
  t ->
  unit
(** Deletes first, then distinct inserts — one
    {!Relalg.Relation.apply} of the {!effective_delta}, so the
    relation's version bumps at most once and the retained delta log
    records the whole gram as a single entry.  Emits a [delta.apply]
    span on [exec.trace] and bumps [pdms.delta.applied] when
    [exec.metrics].  Missing relation raises [Not_found].

    [tee] (the durability hook — see [Persist]) observes the non-empty
    effective delta {e before} the mutation, i.e. write-ahead order:
    replaying teed deltas in sequence over the pre-update state
    reproduces the post-update state exactly, including row order. *)

val compose : t -> t -> t
(** Sequential composition (same relation required): the right operand
    happens after the left. *)

val size : t -> int
val is_empty : t -> bool
