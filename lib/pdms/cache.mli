(** Cooperative query-result caching (Section 3.1.2: peers should
    "perform the duties of cooperative web caches"). A cache stores the
    reformulated rewritings and evaluated answers per query; an incoming
    updategram invalidates exactly the entries whose rewritings read the
    touched relation. *)

type t

val create : ?capacity:int -> Catalog.t -> unit -> t
(** LRU with the given capacity (default 64 entries). The store is a
    hashtable plus an intrusive doubly-linked recency list, so lookup,
    hit bookkeeping and eviction are all O(1) in the entry count. *)

val answer : ?exec:Exec.t -> t -> Cq.Query.t -> Answer.result
(** Like {!Answer.answer} but cached: a hit skips both reformulation and
    evaluation. Queries are matched up to variable renaming. On
    overflow the strictly least-recently-used entry is evicted. Opens a
    ["cache.answer"] span (attribute [hit=true/false]; a miss nests the
    full ["answer"] span) and counts [pdms.cache.*] metrics. *)

val invalidate : ?exec:Exec.t -> t -> Updategram.t -> int
(** Drop entries whose rewritings mention the updategram's relation;
    returns how many were dropped. An inverted predicate index makes
    this O(affected entries), independent of cache size. Call this when
    applying updates to any peer's stored data.

    With [exec.incremental] (the default) the updategram is {e probed}
    against each candidate entry first: an entry survives when no body
    atom over the touched relation unifies with any changed tuple
    (constants must match, repeated variables must bind consistently) —
    its answers are provably unaffected.  Survivors count into
    [pdms.delta.cache_kept]; [~exec:(Exec.with_incremental false)]
    restores the drop-every-reader baseline.  An {e empty} updategram
    carries nothing to probe and acts as a wildcard: every reader of
    the relation is dropped in both modes. *)

val invalidate_all : t -> unit

val hits : t -> int
val misses : t -> int

val entries : t -> int
(** Live entries right now (not cumulative). *)

type stats = { hits : int; misses : int; evictions : int; invalidated : int }
(** Lifetime totals: [evictions] counts capacity overflows only;
    [invalidated] counts entries dropped by {!invalidate} and
    {!invalidate_all}. *)

val stats : t -> stats
(** O(1) snapshot of the lifetime totals. The same numbers accumulate
    process-wide (across all caches) in the [pdms.cache.*] counters of
    {!Obs.Metrics}. *)
