let strip = String.trim

let split_prefix line prefix =
  let lp = String.length prefix in
  if String.length line > lp && String.sub line 0 lp = prefix then
    Some (strip (String.sub line lp (String.length line - lp)))
  else None

(* One row value, already stripped of surrounding whitespace.  Single
   quotes force string interpretation (e.g. the course id '6.830');
   inside quotes, [''] is a literal quote. *)
let parse_value v =
  let n = String.length v in
  if n >= 2 && v.[0] = '\'' && v.[n - 1] = '\'' then begin
    let inner = String.sub v 1 (n - 2) in
    let m = String.length inner in
    let b = Buffer.create m in
    let i = ref 0 in
    while !i < m do
      if inner.[!i] = '\'' && !i + 1 < m && inner.[!i + 1] = '\'' then begin
        Buffer.add_char b '\'';
        i := !i + 2
      end
      else begin
        Buffer.add_char b inner.[!i];
        incr i
      end
    done;
    Relalg.Value.Str (Buffer.contents b)
  end
  else Relalg.Value.of_string v

(* Split a row's value list on top-level ['|'] only: a field whose
   first non-blank character is a quote runs (with [''] as a literal
   quote) to its closing quote, and any ['|'] inside it is data, not a
   separator.  Fields come back unstripped. *)
let split_row s =
  let n = String.length s in
  let fields = ref [] in
  let i = ref 0 in
  while !i <= n do
    let start = !i in
    let j = ref start in
    while !j < n && (s.[!j] = ' ' || s.[!j] = '\t') do incr j done;
    if !j < n && s.[!j] = '\'' then begin
      incr j;
      let closed = ref false in
      while (not !closed) && !j < n do
        if s.[!j] = '\'' then
          if !j + 1 < n && s.[!j + 1] = '\'' then j := !j + 2
          else begin
            closed := true;
            incr j
          end
        else incr j
      done
    end;
    while !j < n && s.[!j] <> '|' do incr j done;
    fields := String.sub s start (!j - start) :: !fields;
    i := !j + 1
  done;
  List.rev !fields

(* Inverse of [parse_value] under the row scanner: a string value is
   single-quoted whenever writing it bare would re-parse differently —
   it looks numeric/boolean (Str "6.830", Str "42"), contains the '|'
   column separator, carries leading/trailing whitespace the field
   strip would eat, or starts/ends with a quote the scanner would
   misread.  Interior quotes double under quoting. *)
let render_value v =
  match v with
  | Relalg.Value.Str s ->
      let n = String.length s in
      let needs_quoting =
        n > 0
        && (s <> strip s
           || String.contains s '|'
           || s.[0] = '\''
           || s.[n - 1] = '\''
           || (match Relalg.Value.of_string s with
              | Relalg.Value.Str _ -> false
              | _ -> true))
      in
      if needs_quoting then begin
        let b = Buffer.create (n + 2) in
        Buffer.add_char b '\'';
        String.iter
          (fun c ->
            if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
          s;
        Buffer.add_char b '\'';
        Buffer.contents b
      end
      else s
  | Relalg.Value.Float f ->
      (* [Value.to_string] uses ["%g"], which renders 2.0 as "2" — an
         int on re-parse — and truncates to 6 significant digits.  Keep
         a decimal point and enough digits to reproduce the float. *)
      if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
      else
        let s = Printf.sprintf "%.15g" f in
        if float_of_string s = f then s else Printf.sprintf "%.17g" f
  | v -> Relalg.Value.to_string v

type pending_mapping = {
  kind : [ `Equality | `Inclusion | `Definitional ];
  mutable lhs : Cq.Query.t option;
  mutable rhs : Cq.Query.t option;
  mutable rules : Cq.Query.t list;
}

type state = {
  catalog : Catalog.t;
  mutable current_peer : Peer.t option;
  mutable pending : pending_mapping option;
}

let ( let* ) = Result.bind

let finish_mapping st =
  match st.pending with
  | None -> Ok ()
  | Some p ->
      st.pending <- None;
      (match (p.kind, p.lhs, p.rhs, p.rules) with
      | `Equality, Some lhs, Some rhs, [] ->
          ignore (Catalog.add_mapping st.catalog (Peer_mapping.equality ~lhs ~rhs));
          Ok ()
      | `Inclusion, Some lhs, Some rhs, [] ->
          ignore (Catalog.add_mapping st.catalog (Peer_mapping.inclusion ~lhs ~rhs));
          Ok ()
      | `Definitional, None, None, (_ :: _ as rules) ->
          List.iter
            (fun rule ->
              ignore
                (Catalog.add_mapping st.catalog (Peer_mapping.definitional rule)))
            rules;
          Ok ()
      | `Definitional, _, _, _ ->
          Error "definitional mapping needs rule lines only"
      | (`Equality | `Inclusion), _, _, _ ->
          Error "equality/inclusion mapping needs exactly lhs and rhs lines")

let registered st name =
  List.exists (fun p -> Peer.name p = name) (Catalog.peers st.catalog)

(* Register the in-progress peer (a peer section ends at the next
   [peer]/[mapping] line or EOF). *)
let flush_peer st =
  (match st.current_peer with
  | Some peer when not (registered st (Peer.name peer)) ->
      Catalog.add_peer st.catalog peer
  | Some _ | None -> ());
  st.current_peer <- None

let parse_relation_decl rest =
  match String.index_opt rest '(' with
  | None -> Error "relation declaration needs (attributes)"
  | Some i -> (
      let name = strip (String.sub rest 0 i) in
      let rest = String.sub rest (i + 1) (String.length rest - i - 1) in
      match String.index_opt rest ')' with
      | None -> Error "missing closing parenthesis"
      | Some j ->
          let attrs =
            String.sub rest 0 j |> String.split_on_char ','
            |> List.map strip
            |> List.filter (fun a -> a <> "")
          in
          if name = "" || attrs = [] then Error "bad relation declaration"
          else Ok (name, attrs))

let handle_line st line =
  match split_prefix line "peer " with
  | Some name ->
      let* () = finish_mapping st in
      flush_peer st;
      (* Relations accumulate on following lines; the peer object is
         rebuilt per relation line and registered when the section ends
         (or at the first [store] line, which needs the catalog). *)
      st.current_peer <- Some (Peer.create ~name ~schema:[]);
      Ok ()
  | None -> (
      match split_prefix line "relation " with
      | Some rest -> (
          match st.current_peer with
          | None -> Error "relation outside a peer section"
          | Some peer ->
              let* name, attrs = parse_relation_decl rest in
              st.current_peer <-
                Some
                  (Peer.create ~name:(Peer.name peer)
                     ~schema:(Peer.schema peer @ [ (name, attrs) ]));
              Ok ())
      | None -> (
          match split_prefix line "store " with
          | Some rel -> (
              match st.current_peer with
              | None -> Error "store outside a peer section"
              | Some peer ->
                  (* The peer must be registered before store_identity. *)
                  if not (registered st (Peer.name peer)) then
                    Catalog.add_peer st.catalog peer;
                  let peer = Catalog.peer st.catalog (Peer.name peer) in
                  ignore (Catalog.store_identity st.catalog peer ~rel);
                  st.current_peer <- Some peer;
                  Ok ())
          | None -> (
              match split_prefix line "row " with
              | Some rest -> (
                  match String.index_opt rest ':' with
                  | None -> Error "row needs 'rel: v | v | ...'"
                  | Some i -> (
                      let rel = strip (String.sub rest 0 i) in
                      let values =
                        String.sub rest (i + 1) (String.length rest - i - 1)
                        |> split_row |> List.map strip
                        |> List.map parse_value
                      in
                      match st.current_peer with
                      | None -> Error "row outside a peer section"
                      | Some peer -> (
                          match
                            Relalg.Database.find_opt (Peer.stored_db peer)
                              (Peer.stored_pred peer rel)
                          with
                          | None -> Error ("row before 'store " ^ rel ^ "'")
                          | Some stored ->
                              let want =
                                Relalg.Schema.arity (Relalg.Relation.schema stored)
                              and got = List.length values
                              in
                              if got <> want then
                                Error
                                  (Printf.sprintf
                                     "row %s: expected %d values, got %d" rel
                                     want got)
                              else begin
                                Relalg.Relation.apply stored
                                  (Relalg.Relation.Delta.add
                                     (Array.of_list values));
                                Ok ()
                              end)))
              | None -> (
                  match split_prefix line "mapping " with
                  | Some kind_str ->
                      let* () = finish_mapping st in
                      flush_peer st;
                      let* kind =
                        match kind_str with
                        | "equality" -> Ok `Equality
                        | "inclusion" -> Ok `Inclusion
                        | "definitional" -> Ok `Definitional
                        | other -> Error ("unknown mapping kind " ^ other)
                      in
                      st.pending <-
                        Some { kind; lhs = None; rhs = None; rules = [] };
                      Ok ()
                  | None -> (
                      let parse_side setter rest =
                        match Cq.Parser.parse_query rest with
                        | Ok q ->
                            setter q;
                            Ok ()
                        | Error msg -> Error msg
                      in
                      match (split_prefix line "lhs ", st.pending) with
                      | Some rest, Some p ->
                          parse_side (fun q -> p.lhs <- Some q) rest
                      | Some _, None -> Error "lhs outside a mapping section"
                      | None, _ -> (
                          match (split_prefix line "rhs ", st.pending) with
                          | Some rest, Some p ->
                              parse_side (fun q -> p.rhs <- Some q) rest
                          | Some _, None -> Error "rhs outside a mapping section"
                          | None, _ -> (
                              match (split_prefix line "rule ", st.pending) with
                              | Some rest, Some p ->
                                  parse_side
                                    (fun q -> p.rules <- p.rules @ [ q ])
                                    rest
                              | Some _, None ->
                                  Error "rule outside a mapping section"
                              | None, _ ->
                                  Error ("unrecognised line: " ^ line))))))))

let parse text =
  let st =
    { catalog = Catalog.create (); current_peer = None; pending = None }
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] ->
        let* () = finish_mapping st in
        flush_peer st;
        Ok st.catalog
    | line :: rest -> (
        let trimmed = strip line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) rest
        else
          match handle_line st trimmed with
          | Ok () -> go (lineno + 1) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 lines

let parse_exn text =
  match parse text with
  | Ok c -> c
  | Error msg -> invalid_arg ("Pdms_file.parse_exn: " ^ msg)

let render catalog =
  let buf = Buffer.create 1024 in
  List.iter
    (fun peer ->
      Buffer.add_string buf (Printf.sprintf "peer %s\n" (Peer.name peer));
      List.iter
        (fun (rel, attrs) ->
          Buffer.add_string buf
            (Printf.sprintf "relation %s(%s)\n" rel (String.concat ", " attrs)))
        (Peer.schema peer);
      List.iter
        (fun stored_name ->
          (* stored preds look like "peer.rel!" *)
          match String.index_opt stored_name '.' with
          | Some i
            when String.length stored_name > 0
                 && stored_name.[String.length stored_name - 1] = '!' ->
              let rel =
                String.sub stored_name (i + 1)
                  (String.length stored_name - i - 2)
              in
              Buffer.add_string buf (Printf.sprintf "store %s\n" rel);
              let relation =
                Relalg.Database.find (Peer.stored_db peer) stored_name
              in
              List.iter
                (fun row ->
                  Buffer.add_string buf
                    (Printf.sprintf "row %s: %s\n" rel
                       (String.concat " | "
                          (Array.to_list (Array.map render_value row)))))
                (Relalg.Relation.tuples relation)
          | Some _ | None -> ())
        (Peer.stored_preds peer);
      Buffer.add_char buf '\n')
    (Catalog.peers catalog);
  List.iter
    (fun (_, mapping) ->
      match mapping with
      | Peer_mapping.Definitional rule ->
          Buffer.add_string buf "mapping definitional\n";
          Buffer.add_string buf
            (Printf.sprintf "rule %s\n\n" (Cq.Query.to_string rule))
      | Peer_mapping.Glav g ->
          let kind =
            match g.Rewrite.Glav.kind with
            | Rewrite.Glav.Equality -> "equality"
            | Rewrite.Glav.Inclusion -> "inclusion"
          in
          Buffer.add_string buf (Printf.sprintf "mapping %s\n" kind);
          Buffer.add_string buf
            (Printf.sprintf "lhs %s\n" (Cq.Query.to_string g.Rewrite.Glav.lhs));
          Buffer.add_string buf
            (Printf.sprintf "rhs %s\n\n" (Cq.Query.to_string g.Rewrite.Glav.rhs)))
    (Catalog.mappings catalog);
  Buffer.contents buf
