(** Keyword search over the structured web of data — the U-WORLD query
    paradigm (Section 1.1: "a set of keywords suffices") pointed at
    every peer's stored relations. Tuples are treated as documents;
    results are TF/IDF-ranked across the whole PDMS. *)

type hit = {
  peer : string;  (** owner of the stored relation, "" if unqualified *)
  stored_rel : string;
  tuple : Relalg.Relation.tuple;
  score : float;
}

val search :
  ?limit:int -> ?exec:Exec.t -> ?network:Network.t -> Catalog.t -> string ->
  hit list
(** [search catalog "ancient history"] ranks every stored tuple in every
    peer against the keyword query (stemmed tokens, TF/IDF over the
    tuple corpus); default limit 10, zero scores dropped.

    Answers come from the {!Kwindex} inverted index: postings are
    gathered for the query's tokens only, partial dot products
    accumulate per candidate, and ranking early-terminates whole
    relations whose score upper bound cannot beat the current k-th
    score. Index entries rebuild only when a relation's
    [(uid, version)] moves, so repeated searches over an unchanged
    database skip tokenisation and vectorization entirely.
    [exec.index = false] (the [--no-index] escape hatch) instead
    re-vectorizes and cosine-scores every tuple per call; the hit list
    is byte-identical either way — scores, order, and tie-breaks.

    [exec.jobs] shards posting accumulation (or brute-force scoring)
    across domains; the ranking is identical for every value. When
    [network] is given, relations owned by a peer that
    {!Network.Fault.is_down} are excluded at query time — search
    degrades to the reachable part of the PDMS instead of pretending
    dead peers answered, and the index entries survive for when the
    peer heals.

    Opens a ["keyword.search"] span (children ["kwindex.build"],
    ["kwindex.probe"], ["rank"]; ["score"] on the brute path) and
    records [pdms.keyword.*] plus [pdms.kwindex.*] metrics. *)

val render_hit : hit -> string
