(** Keyword search over the structured web of data — the U-WORLD query
    paradigm (Section 1.1: "a set of keywords suffices") pointed at
    every peer's stored relations. Tuples are treated as documents;
    results are TF/IDF-ranked across the whole PDMS. *)

type hit = {
  peer : string;  (** owner of the stored relation, "" if unqualified *)
  stored_rel : string;
  tuple : Relalg.Relation.tuple;
  score : float;
}

val search :
  ?limit:int -> ?exec:Exec.t -> ?network:Network.t -> Catalog.t -> string ->
  hit list
(** [search catalog "ancient history"] ranks every stored tuple in every
    peer against the keyword query (stemmed tokens, TF/IDF over the
    tuple corpus); default limit 10, zero scores dropped. [exec.jobs]
    shards the scoring pass across domains; the ranking is identical for
    every value. When [network] is given, relations owned by a peer that
    {!Network.Fault.is_down} are skipped — search degrades to the
    reachable part of the PDMS instead of pretending dead peers
    answered. Opens a ["keyword.search"] span (children ["collect"],
    ["score"], ["rank"]) and records [pdms.keyword.*] metrics, including
    token-memo hit/miss counts.
    Per-tuple token vectors are memoised across calls, keyed on
    each relation's [(uid, version)] pair, so repeated searches over an
    unchanged database skip tokenisation entirely; any insert, delete or
    clear invalidates just that relation's vectors. *)

val render_hit : hit -> string
