(** A line-oriented text format describing a whole PDMS — peers, stored
    data and mappings — so catalogs can live in files and be queried
    from the command line:

    {v
    peer uw
    relation course(code, title)
    store course
    row course: cse444 | databases

    peer mit
    relation subject(id, name)
    store subject
    row subject: 6.033 | systems

    mapping equality
    lhs m(C, T) :- mit.subject(C, T)
    rhs m(C, T) :- uw.course(C, T)

    mapping definitional
    rule uw.course(C, T) :- mit.subject(C, T)
    v}

    [store] registers an identity storage description; [row] loads a
    tuple (values parsed as int/float/bool when they look like one;
    single-quote a value, e.g. ['6.830'], to force a string).
    Within a peer section, declare every [relation] before the first
    [store]. Mapping queries use the {!Cq.Parser} syntax with qualified
    predicates. *)

val parse : string -> (Catalog.t, string) result
val parse_exn : string -> Catalog.t

val render : Catalog.t -> string
(** Peers, stored rows and mappings in the same format (identity storage
    descriptions only — the general ones are rendered as comments).
    Row values round-trip: string values that would re-parse as a
    different value (numeric- or boolean-looking, containing ['|'], or
    with leading/trailing whitespace) are single-quoted. *)

val parse_value : string -> Relalg.Value.t
(** One row field, already stripped: quoted strings unwrap ([''] inside
    quotes is a literal quote), everything else goes through
    {!Relalg.Value.of_string}. *)

val split_row : string -> string list
(** Split a row's value list on top-level ['|'] — separators inside a
    single-quoted field are data.  Fields come back unstripped. *)

val render_value : Relalg.Value.t -> string
(** Inverse of {!parse_value} (quoting exactly the strings that need
    it, and rendering floats with a decimal point and full precision so
    [Float 2.] does not come back as [Int 2]); [Value.Null] has no row
    syntax and renders as the bare word [null]. *)
