(** PDMS query reformulation (Section 3.1.1): rewrite a query posed over
    one peer's schema so it refers only to stored relations, chasing the
    {e transitive closure} of peer mappings. The algorithm interleaves
    the two classical directions — global-as-view query unfolding for
    definitional rules and mapping-predicate rules, and local-as-view
    answering-queries-using-views (MiniCon) for GLAV right-hand sides and
    storage descriptions — exactly the hybrid the paper describes.

    Pruning heuristics ("our query answering algorithm is aided by
    heuristics that prune redundant and irrelevant paths through the
    space of mappings") are individually switchable for the ablation
    benchmark. *)

type pruning = Exec.pruning = {
  use_history : bool;
      (** never traverse the same mapping edge twice on one derivation
          branch (cycle cut) *)
  use_visited : bool;
      (** dominance pruning: drop a pending query alpha-equivalent to an
          already-explored one whose per-atom histories were pointwise
          subsets (the earlier node could derive strictly more) *)
  use_goal_memo : bool;
      (** the aggressive Piazza heuristic: expand each alpha-equivalent
          pending query only once, regardless of history. Exact on
          acyclic mapping graphs and on the symmetric-equality cyclic
          workloads of the benchmarks (breadth-first order makes the
          first visit the shortest-path one); in adversarial cyclic
          setups it may prune derivations the slower settings find *)
  use_subsumption : bool;
      (** drop emitted rewritings contained in previously emitted ones *)
  use_minimize : bool;  (** minimize each emitted rewriting *)
  max_depth : int;  (** expansion-depth cap per branch *)
  max_rewritings : int;  (** stop after this many emitted rewritings *)
}

val default_pruning : pruning
val no_pruning : pruning
(** Everything off except a (high) depth cap and rewriting cap — used by
    the E2 ablation to expose the blow-up. *)

type stats = {
  nodes_expanded : int;
  emitted : int;
  pruned_history : int;
  pruned_visited : int;
  pruned_subsumed : int;
  pruned_depth : int;
  lav_invocations : int;
}

type outcome = { rewritings : Cq.Query.t list; stats : stats }

val reformulate : ?exec:Exec.t -> Catalog.t -> Cq.Query.t -> outcome
(** The rewritings range over stored predicates only. [exec] carries the
    pruning configuration, the domain count for the final subsumption
    sweep, and the observability hooks ({!Exec.default} when omitted);
    the rewriting list is identical — same queries, same order — for
    every value of [exec.jobs]. Opens a ["reformulate"] span (with a
    nested ["sweep"]) on [exec.trace] and batches the {!stats} counters
    into [pdms.reformulate.*] metrics when [exec.metrics] is set. *)

val subsumption_sweep : ?exec:Exec.t -> Cq.Query.t list -> Cq.Query.t list
(** The final all-pairs subsumption sweep on its own (exposed for the
    reformulation-throughput benchmark): remove every rewriting
    contained in another, keeping the first representative of each
    equivalence class. Pairs are prefiltered by {!Cq.Signature}
    compatibility before the homomorphism test; [exec.jobs > 1]
    precomputes the containment verdicts in parallel and replays the
    identical sequential keep loop, so the surviving rewritings are
    deterministic and independent of [exec.jobs]. (The
    [pdms.reformulate.sweep.pairs_*] telemetry counts {e do} vary with
    [exec.jobs]: the sequential path short-circuits pairs whose operands
    were already killed, the parallel path tests every
    signature-compatible pair up front.) *)

val pp_stats : Format.formatter -> stats -> unit
