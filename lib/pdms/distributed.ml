type site_plan = {
  rewriting : Cq.Query.t;
  site : string;
  local_reads : int;
  remote_reads : int;
  fetch_ms : float;
  ship_ms : float;
}

type completeness = {
  complete : bool;
  sites_failed : string list;
  rewritings_dropped : int;
  send_attempts : int;
  retries : int;
  backoff_ms : float;
}

type plan = {
  at : string;
  sites : site_plan list;
  answers : Relalg.Relation.t;
  central_ms : float;
  distributed_ms : float;
  report : completeness;
}

let m_executes = Obs.Metrics.counter "pdms.distributed.executes"
let m_sites_local = Obs.Metrics.counter "pdms.distributed.sites_local"
let m_sites_remote = Obs.Metrics.counter "pdms.distributed.sites_remote"
let m_candidates = Obs.Metrics.counter "pdms.distributed.candidates_considered"
let m_rejected = Obs.Metrics.counter "pdms.distributed.candidates_rejected"
let m_partial = Obs.Metrics.counter "pdms.distributed.partial"
let m_dropped = Obs.Metrics.counter "pdms.distributed.rewritings_dropped"
let m_fetch_ms = Obs.Metrics.histogram "pdms.distributed.fetch_ms"
let m_ship_ms = Obs.Metrics.histogram "pdms.distributed.ship_ms"

let owner_of_pred pred =
  match String.index_opt pred '.' with
  | Some i when i > 0 && String.length pred > 0 && pred.[String.length pred - 1] = '!'
    ->
      Some (String.sub pred 0 i)
  | Some _ | None -> None

let bytes_per_tuple = 64

let relation_bytes db pred =
  match Relalg.Database.find_opt db pred with
  | Some rel -> Relalg.Relation.cardinality rel * bytes_per_tuple
  | None -> 0

(* Pure cost estimate that tolerates same-peer transfers; [None] means
   unreachable. Planning never touches the network's traffic counters. *)
let estimate network ~src ~dst ~size =
  if String.equal src dst || size = 0 then Some 0.0
  else Network.cost network ~src ~dst ~size

(* Choose an execution site for one rewriting. [result] is the
   already-evaluated answer relation, reused for the ship-size estimate
   instead of a second evaluation. *)
let plan_rewriting catalog network ~at db (r : Cq.Query.t) result =
  let reads =
    Cq.Query.body_preds r |> List.filter (Catalog.is_stored catalog)
  in
  let owners = List.filter_map owner_of_pred reads in
  (* Candidate sites: every (live) owner plus the querying peer; pick
     the one minimising estimated input-shipping cost. *)
  let candidates =
    List.sort_uniq String.compare (at :: owners)
    |> List.filter (fun c ->
           String.equal c at || not (Network.Fault.is_down network c))
  in
  let cost_at site =
    List.fold_left
      (fun acc pred ->
        match owner_of_pred pred with
        | Some owner when not (String.equal owner site) -> (
            match
              estimate network ~src:owner ~dst:site
                ~size:(relation_bytes db pred)
            with
            | Some c -> acc +. c
            | None -> infinity)
        | Some _ | None -> acc)
      0.0 reads
  in
  let site, _ =
    List.fold_left
      (fun (best_site, best_cost) cand ->
        (* The seed already priced [at]; don't evaluate it twice. *)
        if String.equal cand at then (best_site, best_cost)
        else
          let c = cost_at cand in
          if c < best_cost then (cand, c) else (best_site, best_cost))
      (at, cost_at at) candidates
  in
  let local_reads =
    List.length
      (List.filter (fun pred -> owner_of_pred pred = Some site) reads)
  in
  ( {
      rewriting = r;
      site;
      local_reads;
      remote_reads = List.length reads - local_reads;
      fetch_ms = 0.0;
      ship_ms = 0.0;
    },
    reads,
    result,
    List.length candidates )

(* Which peer to blame for a failed transfer. *)
let culprit ~at = function
  | Network.Peer_down p -> p
  | Network.No_route (a, b)
  | Network.Link_drop (a, b)
  | Network.Timed_out (a, b, _) ->
      if String.equal a at then b else a

type transfer_outcome = {
  mutable t_attempts : int;
  mutable t_retries : int;
  mutable t_backoff : float;
}

(* Run one rewriting's transfers for real: fetch every remote input to
   the site, then ship the result back to the querying peer. Any
   transfer that exhausts its retries drops the rewriting. *)
let run_transfers network ~retry ~prng ~at ~db totals (sp, reads, result, _) =
  let exchange ~src ~dst ~size =
    if String.equal src dst || size = 0 then Ok 0.0
    else begin
      let o = Network.send_with_retry network ~retry ~prng ~src ~dst ~size in
      totals.t_attempts <- totals.t_attempts + o.Network.attempts;
      totals.t_retries <- totals.t_retries + o.Network.retries;
      totals.t_backoff <- totals.t_backoff +. o.Network.backoff_ms;
      match o.Network.result with
      | Ok _ -> Ok o.Network.elapsed_ms
      | Error e -> Error e
    end
  in
  let fetch =
    List.fold_left
      (fun acc pred ->
        match acc with
        | Error _ -> acc
        | Ok ms -> (
            match owner_of_pred pred with
            | Some owner when not (String.equal owner sp.site) -> (
                match
                  exchange ~src:owner ~dst:sp.site
                    ~size:(relation_bytes db pred)
                with
                | Ok t -> Ok (ms +. t)
                | Error e -> Error e)
            | Some _ | None -> Ok ms))
      (Ok 0.0) reads
  in
  match fetch with
  | Error e -> Error (culprit ~at e)
  | Ok fetch_ms -> (
      let ship_size = Relalg.Relation.cardinality result * bytes_per_tuple in
      match exchange ~src:sp.site ~dst:at ~size:ship_size with
      | Error e -> Error (culprit ~at e)
      | Ok ship_ms -> Ok ({ sp with fetch_ms; ship_ms }, result))

let execute ?(exec = Exec.default) catalog network ~at query =
  let trace = exec.Exec.trace in
  Obs.Trace.span trace "distributed.execute" @@ fun () ->
  let outcome = Reformulate.reformulate ~exec catalog query in
  let rewritings = outcome.Reformulate.rewritings in
  let db = Catalog.global_db catalog in
  (* Evaluate each rewriting exactly once; the result feeds both the
     ship-size estimate and the final union. Site planning needs one
     answer relation per rewriting, so the batch path runs the trie in
     [run_each] mode — shared prefixes are still computed once. *)
  let results =
    Obs.Trace.span trace "eval" @@ fun () ->
    let jobs = exec.Exec.jobs in
    Obs.Trace.attr_i trace "jobs" jobs;
    Obs.Trace.attr_i trace "rewritings" (List.length rewritings);
    Obs.Trace.attr_b trace "batch"
      (exec.Exec.batch && List.length rewritings >= 2);
    if exec.Exec.batch && List.length rewritings >= 2 then begin
      if jobs > 1 then Relalg.Database.freeze db;
      let plan = Cq.Plan.build ~trace db rewritings in
      Cq.Plan.run_each ~jobs ~trace db plan
    end
    else if jobs <= 1 || List.length rewritings < 2 then
      List.map (Cq.Eval.run db) rewritings
    else begin
      Relalg.Database.freeze db;
      let shards = Util.Pool.chunk jobs rewritings in
      Util.Pool.map (List.length shards) (List.map (Cq.Eval.run db)) shards
      |> List.concat
    end
  in
  let planned, candidates_total =
    Obs.Trace.span trace "plan" @@ fun () ->
    let planned =
      List.map2 (plan_rewriting catalog network ~at db) rewritings results
    in
    let candidates_total =
      List.fold_left (fun acc (_, _, _, c) -> acc + c) 0 planned
    in
    Obs.Trace.attr_i trace "rewritings" (List.length planned);
    Obs.Trace.attr_i trace "candidate_sites" candidates_total;
    Obs.Trace.attr_i trace "remote_sites"
      (List.length
         (List.filter
            (fun (p, _, _, _) -> not (String.equal p.site at))
            planned));
    (planned, candidates_total)
  in
  (* Transfers run sequentially with a constant-seeded jitter stream, so
     plans (and retry schedules) are reproducible and independent of
     [jobs]. *)
  let totals = { t_attempts = 0; t_retries = 0; t_backoff = 0.0 } in
  let prng = Util.Prng.create 0x5e7d in
  let survived, failed =
    Obs.Trace.span trace "transfer" @@ fun () ->
    let survived, failed =
      List.fold_left
        (fun (ok, bad) p ->
          match
            run_transfers network ~retry:exec.Exec.retry ~prng ~at ~db totals p
          with
          | Ok sp -> (sp :: ok, bad)
          | Error peer -> (ok, peer :: bad))
        ([], []) planned
    in
    (List.rev survived, List.sort_uniq String.compare failed)
  in
  let dropped = List.length planned - List.length survived in
  let sites = List.map fst survived in
  let answers =
    match survived with
    | [] ->
        let arity = Cq.Atom.arity query.Cq.Query.head in
        Relalg.Relation.create
          (Relalg.Schema.make "ans" (List.init arity (Printf.sprintf "a%d")))
    | (sp0, _) :: _ ->
        let out = Relalg.Relation.create (Cq.Eval.head_schema sp0.rewriting) in
        List.iter
          (fun (_, result) ->
            Relalg.Relation.iter (Cq.Eval.add_distinct out) result)
          survived;
        out
  in
  (* Central baseline: ship every stored relation any rewriting reads to
     the querying peer, once. Unreachable owners simply can't
     contribute, so they are priced at zero rather than infinity. *)
  let all_reads =
    List.concat_map (fun (_, reads, _, _) -> reads) planned
    |> List.sort_uniq String.compare
  in
  let central_ms =
    List.fold_left
      (fun acc pred ->
        match owner_of_pred pred with
        | Some owner -> (
            match
              estimate network ~src:owner ~dst:at ~size:(relation_bytes db pred)
            with
            | Some c -> acc +. c
            | None -> acc)
        | None -> acc)
      0.0 all_reads
  in
  (* Sites run in parallel; each pays fetch + ship. *)
  let distributed_ms =
    List.fold_left
      (fun worst p -> Float.max worst (p.fetch_ms +. p.ship_ms))
      0.0 sites
  in
  let report =
    {
      complete = dropped = 0;
      sites_failed = failed;
      rewritings_dropped = dropped;
      send_attempts = totals.t_attempts;
      retries = totals.t_retries;
      backoff_ms = totals.t_backoff;
    }
  in
  if exec.Exec.metrics then begin
    Obs.Metrics.incr m_executes;
    List.iter
      (fun p ->
        if String.equal p.site at then Obs.Metrics.incr m_sites_local
        else Obs.Metrics.incr m_sites_remote;
        Obs.Metrics.observe m_fetch_ms p.fetch_ms;
        Obs.Metrics.observe m_ship_ms p.ship_ms)
      sites;
    Obs.Metrics.add m_candidates candidates_total;
    Obs.Metrics.add m_rejected (candidates_total - List.length planned);
    if dropped > 0 then begin
      Obs.Metrics.incr m_partial;
      Obs.Metrics.add m_dropped dropped
    end
  end;
  Obs.Trace.attr_s trace "at" at;
  Obs.Trace.attr_i trace "answers" (Relalg.Relation.cardinality answers);
  Obs.Trace.attr_f trace "central_ms" central_ms;
  Obs.Trace.attr_f trace "distributed_ms" distributed_ms;
  Obs.Trace.attr_b trace "complete" report.complete;
  Obs.Trace.attr_i trace "rewritings_dropped" dropped;
  Obs.Trace.attr_i trace "retries" totals.t_retries;
  { at; sites; answers; central_ms; distributed_ms; report }

let report_to_string r =
  Printf.sprintf
    "complete=%b sites_failed=[%s] rewritings_dropped=%d attempts=%d \
     retries=%d backoff=%.1fms"
    r.complete
    (String.concat "," r.sites_failed)
    r.rewritings_dropped r.send_attempts r.retries r.backoff_ms

(* Uniform-latency network over the mapping graph: two peers are
   connected iff some mapping mentions both. Every catalog peer is
   present even if unmapped; [connect] dedupes repeated pairs. *)
let network_of_catalog catalog ~latency_ms =
  let network = Network.create () in
  List.iter
    (fun p -> Network.add_peer network (Peer.name p))
    (Catalog.peers catalog);
  List.iter
    (fun (_, m) ->
      let ps = Peer_mapping.peers_mentioned m in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if String.compare a b < 0 then
                Network.connect network a b ~latency_ms)
            ps)
        ps)
    (Catalog.mappings catalog);
  network
