type site_plan = {
  rewriting : Cq.Query.t;
  site : string;
  local_reads : int;
  remote_reads : int;
  fetch_ms : float;
  ship_ms : float;
}

type plan = {
  at : string;
  sites : site_plan list;
  answers : Relalg.Relation.t;
  central_ms : float;
  distributed_ms : float;
}

let m_executes = Obs.Metrics.counter "pdms.distributed.executes"
let m_sites_local = Obs.Metrics.counter "pdms.distributed.sites_local"
let m_sites_remote = Obs.Metrics.counter "pdms.distributed.sites_remote"
let m_candidates = Obs.Metrics.counter "pdms.distributed.candidates_considered"
let m_rejected = Obs.Metrics.counter "pdms.distributed.candidates_rejected"
let m_fetch_ms = Obs.Metrics.histogram "pdms.distributed.fetch_ms"
let m_ship_ms = Obs.Metrics.histogram "pdms.distributed.ship_ms"

let owner_of_pred pred =
  match String.index_opt pred '.' with
  | Some i when i > 0 && String.length pred > 0 && pred.[String.length pred - 1] = '!'
    ->
      Some (String.sub pred 0 i)
  | Some _ | None -> None

let bytes_per_tuple = 64

let relation_bytes db pred =
  match Relalg.Database.find_opt db pred with
  | Some rel -> Relalg.Relation.cardinality rel * bytes_per_tuple
  | None -> 0

(* Latency helper that tolerates same-peer transfers. *)
let transfer network ~src ~dst ~size =
  if String.equal src dst || size = 0 then 0.0
  else Network.send network ~src ~dst ~size

let plan_rewriting catalog network ~at db (r : Cq.Query.t) =
  let reads =
    Cq.Query.body_preds r |> List.filter (Catalog.is_stored catalog)
  in
  let owners = List.filter_map owner_of_pred reads in
  (* Candidate sites: every owner plus the querying peer; pick the one
     minimising input-shipping cost. *)
  let candidates = List.sort_uniq String.compare (at :: owners) in
  let cost_at site =
    List.fold_left
      (fun acc pred ->
        match owner_of_pred pred with
        | Some owner when not (String.equal owner site) ->
            acc +. transfer network ~src:owner ~dst:site ~size:(relation_bytes db pred)
        | Some _ | None -> acc)
      0.0 reads
  in
  let site, fetch_ms =
    List.fold_left
      (fun (best_site, best_cost) cand ->
        let c = cost_at cand in
        if c < best_cost then (cand, c) else (best_site, best_cost))
      (at, cost_at at) candidates
  in
  let local_reads =
    List.length
      (List.filter
         (fun pred -> owner_of_pred pred = Some site)
         reads)
  in
  let result = Cq.Eval.run db r in
  let ship_ms =
    transfer network ~src:site ~dst:at
      ~size:(Relalg.Relation.cardinality result * bytes_per_tuple)
  in
  ( {
      rewriting = r;
      site;
      local_reads;
      remote_reads = List.length reads - local_reads;
      fetch_ms;
      ship_ms;
    },
    List.length candidates )

let execute ?(exec = Exec.default) catalog network ~at query =
  let trace = exec.Exec.trace in
  Obs.Trace.span trace "distributed.execute" @@ fun () ->
  let outcome = Reformulate.reformulate ~exec catalog query in
  let db = Catalog.global_db catalog in
  let planned, candidates_total =
    Obs.Trace.span trace "plan" @@ fun () ->
    let planned =
      List.map (plan_rewriting catalog network ~at db)
        outcome.Reformulate.rewritings
    in
    let candidates_total =
      List.fold_left (fun acc (_, c) -> acc + c) 0 planned
    in
    Obs.Trace.attr_i trace "rewritings" (List.length planned);
    Obs.Trace.attr_i trace "candidate_sites" candidates_total;
    Obs.Trace.attr_i trace "remote_sites"
      (List.length
         (List.filter (fun (p, _) -> not (String.equal p.site at)) planned));
    (List.map fst planned, candidates_total)
  in
  let sites = planned in
  let answers =
    match outcome.Reformulate.rewritings with
    | [] ->
        let arity = Cq.Atom.arity query.Cq.Query.head in
        Relalg.Relation.create
          (Relalg.Schema.make "ans" (List.init arity (Printf.sprintf "a%d")))
    | rewritings -> Answer.eval_union ~exec db rewritings
  in
  (* Central baseline: ship every stored relation any rewriting reads to
     the querying peer, once. *)
  let all_reads =
    List.concat_map (fun p -> Cq.Query.body_preds p.rewriting) planned
    |> List.filter (Catalog.is_stored catalog)
    |> List.sort_uniq String.compare
  in
  let central_ms =
    List.fold_left
      (fun acc pred ->
        match owner_of_pred pred with
        | Some owner ->
            acc +. transfer network ~src:owner ~dst:at ~size:(relation_bytes db pred)
        | None -> acc)
      0.0 all_reads
  in
  (* Sites run in parallel; each pays fetch + ship. *)
  let distributed_ms =
    List.fold_left
      (fun worst p -> Float.max worst (p.fetch_ms +. p.ship_ms))
      0.0 sites
  in
  if exec.Exec.metrics then begin
    Obs.Metrics.incr m_executes;
    List.iter
      (fun p ->
        if String.equal p.site at then Obs.Metrics.incr m_sites_local
        else Obs.Metrics.incr m_sites_remote;
        Obs.Metrics.observe m_fetch_ms p.fetch_ms;
        Obs.Metrics.observe m_ship_ms p.ship_ms)
      sites;
    Obs.Metrics.add m_candidates candidates_total;
    Obs.Metrics.add m_rejected (candidates_total - List.length sites)
  end;
  Obs.Trace.attr_s trace "at" at;
  Obs.Trace.attr_i trace "answers" (Relalg.Relation.cardinality answers);
  Obs.Trace.attr_f trace "central_ms" central_ms;
  Obs.Trace.attr_f trace "distributed_ms" distributed_ms;
  { at; sites; answers; central_ms; distributed_ms }
