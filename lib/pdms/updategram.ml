type t = {
  rel : string;
  inserts : Relalg.Relation.tuple list;
  deletes : Relalg.Relation.tuple list;
}

let make ~rel ?(inserts = []) ?(deletes = []) () = { rel; inserts; deletes }

let tuple_equal a b =
  Array.length a = Array.length b && Array.for_all2 Relalg.Value.equal a b

let remove_one tuple list =
  let rec go acc = function
    | [] -> None
    | x :: rest ->
        if tuple_equal x tuple then Some (List.rev_append acc rest)
        else go (x :: acc) rest
  in
  go [] list

let of_log events =
  let order = ref [] in
  let grams = Hashtbl.create 8 in
  let get rel =
    match Hashtbl.find_opt grams rel with
    | Some g -> g
    | None ->
        order := rel :: !order;
        let g = ref (make ~rel ()) in
        Hashtbl.replace grams rel g;
        g
  in
  List.iter
    (fun event ->
      match event with
      | Storage.Relation_store.Inserted (rel, tuple) ->
          let g = get rel in
          (* A pending delete of the same tuple cancels out. *)
          (match remove_one tuple !g.deletes with
          | Some deletes -> g := { !g with deletes }
          | None -> g := { !g with inserts = !g.inserts @ [ tuple ] })
      | Storage.Relation_store.Deleted (rel, tuple) ->
          let g = get rel in
          (match remove_one tuple !g.inserts with
          | Some inserts -> g := { !g with inserts }
          | None -> g := { !g with deletes = !g.deletes @ [ tuple ] }))
    events;
  List.rev_map (fun rel -> !(Hashtbl.find grams rel)) !order

let m_applied = Obs.Metrics.counter "pdms.delta.applied"

(* The effective {!Relalg.Relation.Delta.t} this updategram denotes
   against the relation's current contents: deletes keep one removal per
   present tuple (stored relations are kept distinct), and inserts keep
   the tuples that will actually land under insert-distinct semantics
   once the deletes have gone through. *)
let effective_delta rel t =
  let dels =
    List.fold_left
      (fun acc tuple ->
        if
          Relalg.Relation.mem rel tuple
          && not (List.exists (tuple_equal tuple) acc)
        then tuple :: acc
        else acc)
      [] t.deletes
    |> List.rev
  in
  let adds =
    List.fold_left
      (fun acc tuple ->
        let present_after_dels =
          Relalg.Relation.mem rel tuple
          && not (List.exists (tuple_equal tuple) dels)
        in
        if present_after_dels || List.exists (tuple_equal tuple) acc then acc
        else tuple :: acc)
      [] t.inserts
    |> List.rev
  in
  Relalg.Relation.Delta.make ~adds ~dels ()

let apply ?(exec = Exec.default) ?tee db t =
  let rel = Relalg.Database.find db t.rel in
  Obs.Trace.span exec.Exec.trace "delta.apply" @@ fun () ->
  let d = effective_delta rel t in
  Obs.Trace.attr_s exec.Exec.trace "rel" t.rel;
  Obs.Trace.attr_i exec.Exec.trace "delta.size" (Relalg.Relation.Delta.size d);
  (* Write-ahead: the durability tee sees the effective delta before
     the in-memory state moves, so a crash between the two leaves the
     log ahead of (never behind) the store. *)
  (match tee with
  | Some f when not (Relalg.Relation.Delta.is_empty d) -> f ~rel:t.rel d
  | Some _ | None -> ());
  Relalg.Relation.apply rel d;
  if exec.Exec.metrics then Obs.Metrics.incr m_applied

let compose a b =
  if not (String.equal a.rel b.rel) then
    invalid_arg "Updategram.compose: different relations";
  (* b's deletes cancel a's pending inserts; survivors accumulate. *)
  let inserts, deletes =
    List.fold_left
      (fun (ins, dels) d ->
        match remove_one d ins with
        | Some ins' -> (ins', dels)
        | None -> (ins, dels @ [ d ]))
      (a.inserts, a.deletes) b.deletes
  in
  { rel = a.rel; inserts = inserts @ b.inserts; deletes }

let size t = List.length t.inserts + List.length t.deletes
let is_empty t = t.inserts = [] && t.deletes = []
