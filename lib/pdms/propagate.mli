(** Update propagation (Section 3.1.2): "Piazza treats updates as
    first-class citizens ... Updategrams on base data can be combined to
    create updategrams for views." A propagation registry holds
    materialised replicas of reformulated queries (e.g. the views that
    {!Placement} decided to replicate); pushing a base updategram
    applies it to the shared database once, ships the effective delta to
    every replica that reads the touched relation, and incrementally
    maintains exactly those replicas.

    When a simulated {!Network} is supplied, each dependent replica's
    delta travels over it (via {!Network.send_with_retry} under
    [exec.retry]); a replica whose transfer fails queues the updategram
    in a per-replica lag list and serves stale answers until
    {!reconcile} succeeds.  Successful deliveries and reconciliations
    bump [pdms.delta.replicas_converged]. *)

type t

val create : Catalog.t -> t

val materialise :
  t -> name:string -> at:string -> ?exec:Exec.t -> Cq.Query.t -> int
(** Reformulate the query, materialise every rewriting as a maintained
    view, and register them under [name] (hosted at peer [at]).
    Returns the number of distinct tuples materialised. Raises
    [Invalid_argument] on duplicate names. *)

val tuples : t -> name:string -> Relalg.Relation.tuple list
(** Distinct union across the replica's rewritings — the replica's
    {e last delivered} state; lagging replicas serve stale tuples. *)

val cardinality : t -> name:string -> int

val push :
  ?exec:Exec.t ->
  ?network:Network.t ->
  ?prng:Util.Prng.t ->
  ?tee:(rel:string -> Relalg.Relation.Delta.t -> unit) ->
  t ->
  Updategram.t ->
  (string * string) list
(** Apply the updategram to the catalog's global database (once) and
    maintain dependent replicas; returns the (name, at) pairs that
    converged.  Replicas not reading the relation pay nothing.  With a
    [network], the delta is shipped to each dependent host first
    ([exec.retry] + [prng] drive the retry loop); failed deliveries
    land in the replica's lag queue instead.  [exec.incremental]
    selects counting maintenance (default) vs full view recomputation —
    replica contents are identical either way.  [tee] (the durability
    hook) observes the single effective delta in write-ahead order,
    exactly as {!Updategram.apply} would record it, in both modes. *)

val lagging : t -> (string * int) list
(** Replicas with undelivered updategrams, with their backlog length,
    sorted by name. *)

val reconcile :
  ?exec:Exec.t ->
  ?network:Network.t ->
  ?prng:Util.Prng.t ->
  t ->
  name:string ->
  bool
(** Re-deliver the replica's backlog.  On success the replica's views
    are refreshed from the current database state (the base already
    moved on — replaying stale grams would not converge), the lag queue
    clears, and [pdms.delta.replicas_converged] bumps; on failure the
    backlog is kept.  Returns whether the replica is now converged. *)

val replicas : t -> (string * string) list
(** Registered (name, host peer) pairs. *)
