(** Update propagation (Section 3.1.2): "Piazza treats updates as
    first-class citizens ... Updategrams on base data can be combined to
    create updategrams for views." A propagation registry holds
    materialised replicas of reformulated queries (e.g. the views that
    {!Placement} decided to replicate); pushing a base updategram
    applies it to the shared database once and incrementally maintains
    exactly the replicas that read the touched relation. *)

type t

val create : Catalog.t -> t

val materialise :
  t -> name:string -> at:string -> ?exec:Exec.t -> Cq.Query.t -> int
(** Reformulate the query, materialise every rewriting as a maintained
    view, and register them under [name] (hosted at peer [at]).
    Returns the number of distinct tuples materialised. Raises
    [Invalid_argument] on duplicate names. *)

val tuples : t -> name:string -> Relalg.Relation.tuple list
(** Distinct union across the replica's rewritings. *)

val cardinality : t -> name:string -> int

val push : t -> Updategram.t -> (string * string) list
(** Apply the updategram to the catalog's global database and maintain
    dependent replicas incrementally; returns the (name, at) pairs that
    were touched. Replicas not reading the relation pay nothing. *)

val replicas : t -> (string * string) list
(** Registered (name, host peer) pairs. *)
