(** Simulated peer overlay network.

    Latency-weighted undirected graph over peer names.  Routing is
    shortest-path (Dijkstra) and memoised per source until the topology
    changes; transfers cost the route latency plus 1 ms per KiB.

    Since the fault layer landed the network can also misbehave on
    demand: peers go down, links get cut or slow, and sends fail
    probabilistically — all injected through {!Fault} and all seeded via
    {!Util.Prng} so every run is reproducible.  {!send} consequently
    returns a [result]; callers that want the retry/timeout/backoff
    treatment go through {!send_with_retry} with an {!Exec.retry}
    policy. *)

type t

(** Why a delivery failed. *)
type error =
  | Peer_down of string  (** source or destination peer is down *)
  | No_route of string * string
      (** both endpoints up, but no surviving path between them *)
  | Link_drop of string * string
      (** message lost in transit (flaky-network fault) *)
  | Timed_out of string * string * float
      (** delivery took longer than the per-attempt deadline (ms) *)

val error_to_string : error -> string

val create : unit -> t

val add_peer : t -> string -> unit
(** Idempotent; O(1) (hashtable-backed peer set). *)

val connect : t -> string -> string -> latency_ms:float -> unit
(** Add an undirected edge.  Adds both endpoints as peers.  Repeat
    connections of the same pair keep the lowest latency instead of
    accumulating duplicate edges; self-loops are ignored. *)

val of_topology : Topology.t -> names:string list -> base_latency_ms:float -> t
(** Wire the topology's edges between the named peers, all with the same
    latency. *)

val peers : t -> string list
(** All peers (including down ones), sorted. *)

val latency : t -> string -> string -> float option
(** Shortest-path latency in ms over the surviving topology, or [None]
    if either endpoint is down or no path remains.  [latency t a a] is
    [Some 0.] while [a] is up. *)

val hops : t -> string -> string -> int option
(** Hop count along the shortest path, under the same reachability
    rules as {!latency}. *)

val cost : t -> src:string -> dst:string -> size:int -> float option
(** Pure estimate of what delivering [size] bytes would cost in ms:
    latency + transfer time.  Mutates nothing — this is what planning
    uses, so cost probes never show up in {!messages_sent}. *)

val send : t -> src:string -> dst:string -> size:int -> (float, error) result
(** Deliver [size] bytes; [Ok ms] gives the simulated delivery time.
    Counts toward {!messages_sent}/{!bytes_sent} only on success.
    Subject to injected faults: down peers, cut links, latency spikes
    and probabilistic {!Fault.flaky} drops. *)

(** Result of pushing one logical transfer through the retry loop. *)
type outcome = {
  result : (float, error) result;  (** final delivery time or last error *)
  attempts : int;  (** total tries made, >= 1 *)
  retries : int;  (** [attempts - 1] *)
  backoff_ms : float;  (** total time slept between tries *)
  elapsed_ms : float;
      (** simulated wall-clock for the whole exchange: waits on failed
          attempts + backoff sleeps + the final delivery (if any) *)
}

val send_with_retry :
  t ->
  retry:Exec.retry ->
  prng:Util.Prng.t ->
  src:string ->
  dst:string ->
  size:int ->
  outcome
(** Run {!send} under a retry policy.  Attempts that fail (or deliver
    past [retry.timeout_ms]) are retried up to [retry.max_attempts]
    total tries, sleeping an exponentially growing, jittered backoff in
    between; jitter randomness comes from [prng] only.  Records
    [pdms.net.retries], [pdms.net.gave_up] and the [pdms.net.backoff_ms]
    histogram. *)

val broadcast : t -> src:string -> size:int -> float
(** Deliver to every reachable peer; returns the slowest delivery. *)

val messages_sent : t -> int
val bytes_sent : t -> int
val reset_counters : t -> unit

(** Fault injection.  Every mutation bumps a monotonically increasing
    topology version, which invalidates memoised routes and lets callers
    detect churn. *)
module Fault : sig
  val topology_version : t -> int
  (** Bumped on every topology or fault change (including heals). *)

  val fail_peer : t -> string -> unit
  (** Take a peer down: it neither sends, receives, nor routes. *)

  val heal_peer : t -> string -> unit

  val is_down : t -> string -> bool

  val cut_link : t -> string -> string -> unit
  (** Sever the direct edge between two peers (either argument order). *)

  val restore_link : t -> string -> string -> unit

  val partition : t -> string list -> unit
  (** Cut every edge between the given group and the rest of the
      network, splitting it into (at least) two islands. *)

  val spike : t -> string -> string -> extra_ms:float -> unit
  (** Add [extra_ms] latency to the direct edge between two peers. *)

  val flaky : t -> ?seed:int -> p:float -> unit -> unit
  (** Make every send fail independently with probability [p], drawn
      from a {!Util.Prng} stream seeded with [seed] (default 2003).
      [p <= 0.] turns flakiness off. *)

  val heal : t -> unit
  (** Clear all injected faults: downed peers, cut links, spikes and
      flakiness. *)
end
