type hit = {
  peer : string;
  stored_rel : string;
  tuple : Relalg.Relation.tuple;
  score : float;
}

let tuple_tokens tuple =
  Array.to_list tuple
  |> List.concat_map (fun v -> Util.Tokenize.words (Relalg.Value.to_string v))
  |> List.map Util.Stemmer.stem

(* Tokenising + stemming every tuple dominates search time, and the
   result only changes when the relation's contents do. Memoise the
   per-relation entry lists keyed on {!Relalg.Relation.uid}, guarded by
   {!Relalg.Relation.version} — any insert/delete/clear bumps the
   version and forces a rebuild of just that relation's entries.
   [Catalog.global_db] shares the peers' relation instances, so uids are
   stable across calls. *)
let max_memo_relations = 1024

let token_memo :
    ( int,
      int * (string * string * Relalg.Relation.tuple * string list) list )
    Hashtbl.t =
  Hashtbl.create 64

let m_searches = Obs.Metrics.counter "pdms.keyword.searches"
let m_scored = Obs.Metrics.counter "pdms.keyword.tuples_scored"
let m_memo_hits = Obs.Metrics.counter "pdms.keyword.memo_hits"
let m_memo_misses = Obs.Metrics.counter "pdms.keyword.memo_misses"
let m_hits_returned = Obs.Metrics.counter "pdms.keyword.hits_returned"

(* [memo] tallies hit/miss into the caller's locals so metrics stay
   batched per search rather than paid per relation lookup. *)
let relation_entries ~memo rel_name rel =
  let memo_hits, memo_misses = memo in
  let uid = Relalg.Relation.uid rel in
  let version = Relalg.Relation.version rel in
  match Hashtbl.find_opt token_memo uid with
  | Some (v, entries) when v = version ->
      Stdlib.incr memo_hits;
      entries
  | _ ->
      Stdlib.incr memo_misses;
      let peer =
        match Distributed.owner_of_pred rel_name with
        | Some p -> p
        | None -> ""
      in
      let entries =
        List.map
          (fun tuple -> (peer, rel_name, tuple, tuple_tokens tuple))
          (Relalg.Relation.tuples rel)
      in
      if Hashtbl.length token_memo >= max_memo_relations then
        Hashtbl.reset token_memo;
      Hashtbl.replace token_memo uid (version, entries);
      entries

let search ?(limit = 10) ?(exec = Exec.default) ?network catalog keywords =
  let jobs = exec.Exec.jobs in
  let trace = exec.Exec.trace in
  Obs.Trace.span trace "keyword.search" @@ fun () ->
  let memo_hits = ref 0 and memo_misses = ref 0 in
  let db = Catalog.global_db catalog in
  (* Degraded search: relations owned by a downed peer are unreachable,
     so they neither get tokenised nor ranked. *)
  let reachable rel_name =
    match network with
    | None -> true
    | Some net -> (
        match Distributed.owner_of_pred rel_name with
        | Some owner -> not (Network.Fault.is_down net owner)
        | None -> true)
  in
  let entries =
    Obs.Trace.span trace "collect" @@ fun () ->
    let entries =
      List.concat_map
        (fun rel_name ->
          relation_entries ~memo:(memo_hits, memo_misses) rel_name
            (Relalg.Database.find db rel_name))
        (List.filter reachable (Relalg.Database.names db))
    in
    Obs.Trace.attr_i trace "tuples" (List.length entries);
    Obs.Trace.attr_i trace "memo_hits" !memo_hits;
    Obs.Trace.attr_i trace "memo_misses" !memo_misses;
    entries
  in
  let corpus = Util.Tfidf.build (List.map (fun (_, _, _, toks) -> toks) entries) in
  let query_toks = List.map Util.Stemmer.stem (Util.Tokenize.words keywords) in
  let query_vec = Util.Tfidf.vectorize corpus query_toks in
  (* Scoring is pure, so it shards across domains; chunks are contiguous
     and re-concatenated in order, keeping the ranking (tie-breaks
     included) identical to the sequential pass. *)
  let scored =
    Obs.Trace.span trace "score" @@ fun () ->
    Obs.Trace.attr_i trace "jobs" jobs;
    Util.Pool.chunk (max 1 jobs) entries
    |> Util.Pool.map jobs
         (List.map (fun (peer, stored_rel, tuple, toks) ->
              let score =
                Util.Tfidf.cosine query_vec (Util.Tfidf.vectorize corpus toks)
              in
              (score, { peer; stored_rel; tuple; score })))
    |> List.concat
  in
  let hits =
    Obs.Trace.span trace "rank" @@ fun () ->
    let top = Util.Topk.create limit in
    List.iter
      (fun (score, hit) -> if score > 0.0 then Util.Topk.add top score hit)
      scored;
    let hits = List.map snd (Util.Topk.to_list top) in
    Obs.Trace.attr_i trace "limit" limit;
    Obs.Trace.attr_i trace "hits" (List.length hits);
    hits
  in
  if exec.Exec.metrics then begin
    Obs.Metrics.incr m_searches;
    Obs.Metrics.add m_scored (List.length entries);
    Obs.Metrics.add m_memo_hits !memo_hits;
    Obs.Metrics.add m_memo_misses !memo_misses;
    Obs.Metrics.add m_hits_returned (List.length hits)
  end;
  hits

let render_hit hit =
  Printf.sprintf "%.3f %s (%s): %s" hit.score hit.stored_rel hit.peer
    (String.concat " | "
       (Array.to_list (Array.map Relalg.Value.to_string hit.tuple)))
