type hit = {
  peer : string;
  stored_rel : string;
  tuple : Relalg.Relation.tuple;
  score : float;
}

let m_searches = Obs.Metrics.counter "pdms.keyword.searches"
let m_scored = Obs.Metrics.counter "pdms.keyword.tuples_scored"
let m_memo_hits = Obs.Metrics.counter "pdms.keyword.memo_hits"
let m_memo_misses = Obs.Metrics.counter "pdms.keyword.memo_misses"
let m_hits_returned = Obs.Metrics.counter "pdms.keyword.hits_returned"
let m_relations_indexed = Obs.Metrics.counter "pdms.kwindex.relations_indexed"
let m_candidates = Obs.Metrics.counter "pdms.kwindex.candidates"
let m_skipped = Obs.Metrics.counter "pdms.kwindex.skipped_by_bound"

(* Candidate-driven ranking: gather postings for the query's tokens
   only, then rank relation by relation, skipping any relation whose
   score upper bound cannot beat the current k-th score. Relations are
   visited in database order and candidates in ascending tuple id, so
   insertions into the heap happen in the same order the brute-force
   scan would make them — tie-breaks included. *)
let indexed ~jobs ~trace ~metrics ~limit entries query_toks =
  let stamp, corpus = Kwindex.corpus ~metrics entries in
  let query_vec = Util.Tfidf.vectorize corpus query_toks in
  let probes =
    Obs.Trace.span trace "kwindex.probe" @@ fun () ->
    Obs.Trace.attr_i trace "jobs" jobs;
    Util.Pool.map jobs
      (fun e -> Kwindex.probe e ~stamp corpus query_vec)
      entries
  in
  let candidates = ref 0 and skipped = ref 0 in
  let hits =
    Obs.Trace.span trace "rank" @@ fun () ->
    let top = Util.Topk.create limit in
    List.iter
      (fun pr ->
        candidates := !candidates + Array.length pr.Kwindex.candidates;
        let skip =
          match Util.Topk.min_score top with
          | Some floor -> pr.Kwindex.bound <= floor
          | None -> false
        in
        if skip then Stdlib.incr skipped
        else
          let e = pr.Kwindex.source in
          Array.iter
            (fun id ->
              let score = pr.Kwindex.scores.(id) in
              if score > 0.0 then
                Util.Topk.add top score
                  {
                    peer = e.Kwindex.peer;
                    stored_rel = e.Kwindex.rel_name;
                    tuple = e.Kwindex.tuples.(id);
                    score;
                  })
            pr.Kwindex.candidates)
      probes;
    let hits = List.map snd (Util.Topk.to_list top) in
    Obs.Trace.attr_i trace "limit" limit;
    Obs.Trace.attr_i trace "hits" (List.length hits);
    Obs.Trace.attr_i trace "skipped_by_bound" !skipped;
    hits
  in
  (hits, !candidates, !candidates, !skipped)

(* The [--no-index] baseline: rebuild the corpus and re-vectorize every
   tuple per call, as the pre-index implementation did. Tokenisation
   still comes from the shared Kwindex entries (the old token memo,
   folded into the index store), so the A/B measures indexing proper,
   not tokenisation caching. *)
let brute ~jobs ~trace ~limit entries query_toks =
  let docs =
    List.concat_map
      (fun e ->
        (* Ascending live slots only: dead (tombstoned) slots belong to
           deleted tuples and must not contribute documents or df. *)
        let acc = ref [] in
        for id = e.Kwindex.n_slots - 1 downto 0 do
          if e.Kwindex.live.(id) then begin
            let toks =
              Array.to_list e.Kwindex.token_tfs.(id)
              |> List.concat_map (fun (tok, tf) ->
                     List.init (int_of_float tf) (fun _ -> tok))
            in
            acc :=
              (e.Kwindex.peer, e.Kwindex.rel_name, e.Kwindex.tuples.(id), toks)
              :: !acc
          end
        done;
        !acc)
      entries
  in
  let corpus =
    Util.Tfidf.build (List.map (fun (_, _, _, toks) -> toks) docs)
  in
  let query_vec = Util.Tfidf.vectorize corpus query_toks in
  (* Scoring is pure, so it shards across domains; chunks are contiguous
     and re-concatenated in order, keeping the ranking (tie-breaks
     included) identical to the sequential pass. *)
  let scored =
    Obs.Trace.span trace "score" @@ fun () ->
    Obs.Trace.attr_i trace "jobs" jobs;
    Util.Pool.chunk (max 1 jobs) docs
    |> Util.Pool.map jobs
         (List.map (fun (peer, stored_rel, tuple, toks) ->
              let score =
                Util.Tfidf.cosine query_vec (Util.Tfidf.vectorize corpus toks)
              in
              (score, { peer; stored_rel; tuple; score })))
    |> List.concat
  in
  let hits =
    Obs.Trace.span trace "rank" @@ fun () ->
    let top = Util.Topk.create limit in
    List.iter
      (fun (score, hit) -> if score > 0.0 then Util.Topk.add top score hit)
      scored;
    let hits = List.map snd (Util.Topk.to_list top) in
    Obs.Trace.attr_i trace "limit" limit;
    Obs.Trace.attr_i trace "hits" (List.length hits);
    hits
  in
  (hits, List.length docs, 0, 0)

let search ?(limit = 10) ?(exec = Exec.default) ?network catalog keywords =
  let jobs = exec.Exec.jobs in
  let trace = exec.Exec.trace in
  let metrics = exec.Exec.metrics in
  Obs.Trace.span trace "keyword.search" @@ fun () ->
  let db = Catalog.global_db catalog in
  (* Degraded search: relations owned by a downed peer are unreachable,
     so their postings are excluded at query time — the index entries
     themselves survive for when the peer heals. *)
  let reachable rel_name =
    match network with
    | None -> true
    | Some net -> (
        match Distributed.owner_of_pred rel_name with
        | Some owner -> not (Network.Fault.is_down net owner)
        | None -> true)
  in
  let built = ref 0 in
  let entries =
    Obs.Trace.span trace "kwindex.build" @@ fun () ->
    let entries =
      List.map
        (fun rel_name ->
          let e, fresh =
            Kwindex.get ~metrics ~incremental:exec.Exec.incremental ~rel_name
              (Relalg.Database.find db rel_name)
          in
          if fresh then Stdlib.incr built;
          e)
        (List.filter reachable (Relalg.Database.names db))
    in
    Obs.Trace.attr_i trace "relations" (List.length entries);
    Obs.Trace.attr_i trace "built" !built;
    entries
  in
  let query_toks = List.map Util.Stemmer.stem (Util.Tokenize.words keywords) in
  let hits, scanned, candidates, skipped =
    if exec.Exec.index then
      indexed ~jobs ~trace ~metrics ~limit entries query_toks
    else brute ~jobs ~trace ~limit entries query_toks
  in
  if metrics then begin
    let n_entries = List.length entries in
    Obs.Metrics.incr m_searches;
    Obs.Metrics.add m_scored scanned;
    Obs.Metrics.add m_memo_hits (n_entries - !built);
    Obs.Metrics.add m_memo_misses !built;
    Obs.Metrics.add m_hits_returned (List.length hits);
    Obs.Metrics.add m_relations_indexed n_entries;
    Obs.Metrics.add m_candidates candidates;
    Obs.Metrics.add m_skipped skipped
  end;
  hits

let render_hit hit =
  Printf.sprintf "%.3f %s (%s): %s" hit.score hit.stored_rel hit.peer
    (String.concat " | "
       (Array.to_list (Array.map Relalg.Value.to_string hit.tuple)))
