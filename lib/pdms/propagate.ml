type replica = {
  name : string;
  at : string;
  views : View_maintenance.t list;  (* one per rewriting *)
  reads : string list;
}

type t = {
  catalog : Catalog.t;
  db : Relalg.Database.t;  (* the shared global database *)
  mutable registry : replica list;
}

let create catalog = { catalog; db = Catalog.global_db catalog; registry = [] }

let distinct_tuples views =
  let seen = Hashtbl.create 64 in
  List.concat_map View_maintenance.tuples views
  |> List.filter (fun tuple ->
         let key =
           String.concat "\x00"
             (Array.to_list (Array.map Relalg.Value.to_string tuple))
         in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.replace seen key ();
           true
         end)

let materialise t ~name ~at ?exec query =
  if List.exists (fun r -> String.equal r.name name) t.registry then
    invalid_arg ("Propagate.materialise: duplicate replica " ^ name);
  let outcome = Reformulate.reformulate ?exec t.catalog query in
  let views =
    List.map (View_maintenance.create t.db) outcome.Reformulate.rewritings
  in
  let reads =
    List.concat_map Cq.Query.body_preds outcome.Reformulate.rewritings
    |> List.sort_uniq String.compare
  in
  t.registry <- { name; at; views; reads } :: t.registry;
  List.length (distinct_tuples views)

let find t name =
  match List.find_opt (fun r -> String.equal r.name name) t.registry with
  | Some r -> r
  | None -> invalid_arg ("Propagate: unknown replica " ^ name)

let tuples t ~name = distinct_tuples (find t name).views
let cardinality t ~name = List.length (tuples t ~name)

let push t (u : Updategram.t) =
  let dependents =
    List.filter (fun r -> List.mem u.Updategram.rel r.reads) t.registry
  in
  let each_view f =
    List.iter (fun r -> List.iter f r.views) dependents
  in
  match Relalg.Database.find_opt t.db u.Updategram.rel with
  | None -> []
  | Some rel ->
  (* The database is shared by every replica, so the mutation happens
     exactly once here; each dependent view maintains its counts around
     it (deletes while the tuple is still present, inserts after it
     lands). *)
  List.iter
    (fun tuple ->
      if Relalg.Relation.mem rel tuple then begin
        each_view (fun vm ->
            View_maintenance.maintain_delete vm ~rel:u.Updategram.rel tuple);
        ignore (Relalg.Relation.delete rel tuple)
      end)
    u.Updategram.deletes;
  List.iter
    (fun tuple ->
      if Relalg.Relation.insert_distinct rel tuple then
        each_view (fun vm ->
            View_maintenance.maintain_insert vm ~rel:u.Updategram.rel tuple))
    u.Updategram.inserts;
  List.map (fun r -> (r.name, r.at)) dependents

let replicas t = List.map (fun r -> (r.name, r.at)) t.registry
