type replica = {
  name : string;
  at : string;
  views : View_maintenance.t list;  (* one per rewriting *)
  reads : string list;
  mutable lag : Updategram.t list;  (* undelivered grams, newest first *)
}

type t = {
  catalog : Catalog.t;
  db : Relalg.Database.t;  (* the shared global database *)
  mutable registry : replica list;
}

let m_converged = Obs.Metrics.counter "pdms.delta.replicas_converged"

let create catalog = { catalog; db = Catalog.global_db catalog; registry = [] }

let distinct_tuples views =
  let seen = Hashtbl.create 64 in
  List.concat_map View_maintenance.tuples views
  |> List.filter (fun tuple ->
         let key =
           String.concat "\x00"
             (Array.to_list (Array.map Relalg.Value.to_string tuple))
         in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.replace seen key ();
           true
         end)

let materialise t ~name ~at ?exec query =
  if List.exists (fun r -> String.equal r.name name) t.registry then
    invalid_arg ("Propagate.materialise: duplicate replica " ^ name);
  let outcome = Reformulate.reformulate ?exec t.catalog query in
  let views =
    List.map (View_maintenance.create ?exec t.db) outcome.Reformulate.rewritings
  in
  let reads =
    List.concat_map Cq.Query.body_preds outcome.Reformulate.rewritings
    |> List.sort_uniq String.compare
  in
  t.registry <- { name; at; views; reads; lag = [] } :: t.registry;
  List.length (distinct_tuples views)

let find t name =
  match List.find_opt (fun r -> String.equal r.name name) t.registry with
  | Some r -> r
  | None -> invalid_arg ("Propagate: unknown replica " ^ name)

let tuples t ~name = distinct_tuples (find t name).views
let cardinality t ~name = List.length (tuples t ~name)

(* Shipping cost model shared with {!Distributed}: a flat per-tuple
   estimate. *)
let bytes_per_tuple = 64
let delta_bytes (u : Updategram.t) = max 1 (Updategram.size u) * bytes_per_tuple

(* Stored relations are named "<peer>.<rel>!" — the prefix is the
   natural source site for the relation's deltas. *)
let owner_of_pred pred =
  match String.index_opt pred '.' with
  | Some i when i > 0 -> Some (String.sub pred 0 i)
  | Some _ | None -> None

(* Ship one updategram to a replica host over the (optional) simulated
   network.  Without a network the delivery is assumed instantaneous
   and always succeeds — the pre-network behaviour. *)
let ship ?network ~exec ~prng (u : Updategram.t) r =
  match network with
  | None -> true
  | Some net ->
      let src = Option.value ~default:r.at (owner_of_pred u.Updategram.rel) in
      if String.equal src r.at then true
      else
        let o =
          Network.send_with_retry net ~retry:exec.Exec.retry ~prng ~src
            ~dst:r.at ~size:(delta_bytes u)
        in
        Result.is_ok o.Network.result

let default_prng () = Util.Prng.create 2003

let push ?(exec = Exec.default) ?network ?prng ?tee t (u : Updategram.t) =
  let prng = match prng with Some p -> p | None -> default_prng () in
  let dependents =
    List.filter (fun r -> List.mem u.Updategram.rel r.reads) t.registry
  in
  match Relalg.Database.find_opt t.db u.Updategram.rel with
  | None -> []
  | Some rel ->
      Obs.Trace.span exec.Exec.trace "delta.push" @@ fun () ->
      (* Decide deliverability first: a replica whose delta transfer
         fails cannot maintain its views around the mutation below, so
         it queues the gram and goes stale until {!reconcile}. *)
      let converged, lagging =
        List.partition (ship ?network ~exec ~prng u) dependents
      in
      List.iter (fun r -> r.lag <- u :: r.lag) lagging;
      let live_views = List.concat_map (fun r -> r.views) converged in
      let each_view f = List.iter f live_views in
      (* The incremental branch below mutates tuple by tuple, but the
         net database change is exactly the effective delta, and the
         per-tuple order (deletes first, then inserts) matches one
         Relation.apply of it — so the durability tee records a single
         replayable write-ahead entry either way. *)
      (match tee with
      | Some f when exec.Exec.incremental ->
          let d = Updategram.effective_delta rel u in
          if not (Relalg.Relation.Delta.is_empty d) then
            f ~rel:u.Updategram.rel d
      | Some _ | None -> ());
      if not exec.Exec.incremental then begin
        (* Baseline: one delta application to the shared database, then
           recompute every reachable dependent view. *)
        Updategram.apply ~exec ?tee t.db u;
        each_view View_maintenance.refresh
      end
      else begin
        (* The database is shared by every replica, so the mutation
           happens exactly once here; each reachable dependent view
           maintains its counts around it (deletes while the tuple is
           still present, inserts after it lands). *)
        List.iter
          (fun tuple ->
            if Relalg.Relation.mem rel tuple then begin
              each_view (fun vm ->
                  View_maintenance.maintain_delete vm ~rel:u.Updategram.rel
                    tuple);
              Relalg.Relation.apply rel (Relalg.Relation.Delta.remove tuple)
            end)
          u.Updategram.deletes;
        List.iter
          (fun tuple ->
            if not (Relalg.Relation.mem rel tuple) then begin
              Relalg.Relation.apply rel (Relalg.Relation.Delta.add tuple);
              each_view (fun vm ->
                  View_maintenance.maintain_insert vm ~rel:u.Updategram.rel
                    tuple)
            end)
          u.Updategram.inserts
      end;
      if exec.Exec.metrics then
        List.iter (fun _ -> Obs.Metrics.incr m_converged) converged;
      List.map (fun r -> (r.name, r.at)) converged

let lagging t =
  List.filter_map
    (fun r ->
      match r.lag with [] -> None | lag -> Some (r.name, List.length lag))
    t.registry
  |> List.sort compare

let reconcile ?(exec = Exec.default) ?network ?prng t ~name =
  let r = find t name in
  match r.lag with
  | [] -> true
  | lag ->
      let prng = match prng with Some p -> p | None -> default_prng () in
      Obs.Trace.span exec.Exec.trace "delta.reconcile" @@ fun () ->
      (* Resend the backlog.  The shared database has long moved on, so
         a successful catch-up refreshes the views from the current
         state instead of replaying stale grams — honest convergence. *)
      let delivered =
        List.for_all (fun u -> ship ?network ~exec ~prng u r) (List.rev lag)
      in
      if delivered then begin
        List.iter View_maintenance.refresh r.views;
        r.lag <- [];
        if exec.Exec.metrics then Obs.Metrics.incr m_converged
      end;
      delivered

let replicas t = List.map (fun r -> (r.name, r.at)) t.registry
