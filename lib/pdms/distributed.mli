(** Peer-based query processing (Section 3.1.2): "distribute each query
    in the PDMS to the peer that will provide the best performance"
    instead of funnelling everything through one central server. Each
    rewriting is executed at the peer owning most of the stored
    relations it reads; partial results ship back to the querying peer
    over the simulated network. *)

type site_plan = {
  rewriting : Cq.Query.t;
  site : string;  (** peer chosen to execute it *)
  local_reads : int;  (** stored relations it reads that live at the site *)
  remote_reads : int;  (** stored relations fetched from elsewhere *)
  fetch_ms : float;  (** shipping inputs to the site *)
  ship_ms : float;  (** shipping results back to the querying peer *)
}

type plan = {
  at : string;  (** the querying peer *)
  sites : site_plan list;
  answers : Relalg.Relation.t;
  central_ms : float;
      (** baseline: ship every input relation to the querying peer *)
  distributed_ms : float;
      (** the plan's cost: max over sites (parallel execution) *)
}

val owner_of_pred : string -> string option
(** The peer owning a stored predicate ("mit.subject!" -> "mit"). *)

val execute :
  ?exec:Exec.t -> Catalog.t -> Network.t -> at:string -> Cq.Query.t -> plan
(** Reformulate, choose a site per rewriting, evaluate, and price both
    the distributed plan and the ship-everything-central baseline.
    Result sizes are estimated from actual relation cardinalities at 64
    bytes per tuple. [exec.jobs] parallelises the reformulation's final
    subsumption sweep and the answer-union evaluation as in
    {!Answer.answer}; rewritings, plans and costs are unaffected. Opens
    a ["distributed.execute"] span (children ["reformulate"], ["plan"],
    ["eval"]) and records [pdms.distributed.*] metrics — chosen vs.
    rejected candidate sites and per-site fetch/ship cost histograms. *)
