(** Peer-based query processing (Section 3.1.2): "distribute each query
    in the PDMS to the peer that will provide the best performance"
    instead of funnelling everything through one central server. Each
    rewriting is executed at the peer owning most of the stored
    relations it reads; partial results ship back to the querying peer
    over the simulated network.

    Since the fault layer landed, execution {e degrades} instead of
    raising: transfers run under the {!Exec.retry} policy, rewritings
    whose transfers exhaust their retries are dropped, and the returned
    plan carries a {!completeness} report so callers can tell a partial
    answer from a full one. *)

type site_plan = {
  rewriting : Cq.Query.t;
  site : string;  (** peer chosen to execute it *)
  local_reads : int;  (** stored relations it reads that live at the site *)
  remote_reads : int;  (** stored relations fetched from elsewhere *)
  fetch_ms : float;
      (** shipping inputs to the site (includes retry waits/backoff) *)
  ship_ms : float;  (** shipping results back to the querying peer *)
}

(** How much of the full answer the plan actually delivered. *)
type completeness = {
  complete : bool;  (** no rewriting was dropped *)
  sites_failed : string list;
      (** peers blamed for dropped rewritings, sorted, deduped *)
  rewritings_dropped : int;
  send_attempts : int;  (** total send attempts across all transfers *)
  retries : int;  (** attempts beyond the first, summed *)
  backoff_ms : float;  (** total backoff slept across all transfers *)
}

type plan = {
  at : string;  (** the querying peer *)
  sites : site_plan list;  (** surviving rewritings only *)
  answers : Relalg.Relation.t;
  central_ms : float;
      (** baseline: ship every input relation to the querying peer *)
  distributed_ms : float;
      (** the plan's cost: max over sites (parallel execution) *)
  report : completeness;
}

val owner_of_pred : string -> string option
(** The peer owning a stored predicate ("mit.subject!" -> "mit"). *)

val execute :
  ?exec:Exec.t -> Catalog.t -> Network.t -> at:string -> Cq.Query.t -> plan
(** Reformulate, evaluate each rewriting exactly once, choose a site per
    rewriting with the pure {!Network.cost} estimator (planning never
    touches the traffic counters), then run the input-fetch and
    result-ship transfers for real under [exec.retry]. Rewritings whose
    transfers fail even after retrying are dropped; the surviving
    results are unioned and the plan's [report] says what was lost.
    With no injected faults the answer set is identical to
    {!Answer.answer}'s and [report.complete] is [true].

    [exec.jobs] parallelises the reformulation's final subsumption sweep
    and the per-rewriting evaluation; rewritings, plans, costs and retry
    schedules are unaffected (transfers are sequential with a
    constant-seeded jitter stream). Opens a ["distributed.execute"] span
    (children ["reformulate"], ["eval"], ["plan"], ["transfer"]) and
    records [pdms.distributed.*] metrics — chosen vs. rejected candidate
    sites, per-site fetch/ship cost histograms, and
    [pdms.distributed.partial] / [pdms.distributed.rewritings_dropped]
    when the answer is incomplete. *)

val report_to_string : completeness -> string
(** One-line rendering for CLIs and logs. *)

val network_of_catalog : Catalog.t -> latency_ms:float -> Network.t
(** Uniform-latency network over the catalog's mapping graph: every
    catalog peer is a node and two peers are connected iff some mapping
    mentions both. *)
