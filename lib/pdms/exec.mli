(** Execution contexts for the answer path.

    Every tunable that used to travel as scattered [?pruning]/[?jobs]
    optional arguments — plus the observability hooks — now rides in one
    [Exec.t] record threaded through {!Answer}, {!Reformulate},
    {!Distributed}, {!Keyword}, {!Cache} and {!Propagate}.  Callers that
    don't care pass nothing and get {!default}; callers that do build one
    context and reuse it across calls. *)

(** Reformulation pruning heuristics (Section 3.1.1), individually
    switchable for the ablation benchmark.  The record lives here so
    [Exec.t] needs nothing from {!Reformulate}; that module re-exports it
    as [Reformulate.pruning] for compatibility. *)
type pruning = {
  use_history : bool;
      (** never traverse the same mapping edge twice on one derivation
          branch (cycle cut) *)
  use_visited : bool;
      (** dominance pruning: drop a pending query alpha-equivalent to an
          already-explored one whose per-atom histories were pointwise
          subsets (the earlier node could derive strictly more) *)
  use_goal_memo : bool;
      (** the aggressive Piazza heuristic: expand each alpha-equivalent
          pending query only once, regardless of history *)
  use_subsumption : bool;
      (** drop emitted rewritings contained in previously emitted ones *)
  use_minimize : bool;  (** minimize each emitted rewriting *)
  max_depth : int;  (** expansion-depth cap per branch *)
  max_rewritings : int;  (** stop after this many emitted rewritings *)
}

val default_pruning : pruning

val no_pruning : pruning
(** Everything off except a (high) depth cap and rewriting cap — used by
    the E2 ablation to expose the blow-up. *)

(** {2 Retry policy for simulated network transfers}

    Consumed by {!Network.send_with_retry}: every transfer the
    distributed executor performs gets up to [max_attempts] tries, a
    per-attempt delivery deadline, and exponential backoff with
    multiplicative jitter between tries.  All randomness (the jitter)
    comes from an explicit {!Util.Prng.t}, so retry schedules are
    reproducible from a seed. *)

type backoff = {
  base_ms : float;  (** delay before the first retry *)
  multiplier : float;  (** growth factor per further retry *)
  jitter : float;
      (** fraction in [\[0, 1\]]: each delay is scaled by a uniform
          factor in [\[1 - jitter, 1 + jitter\]] *)
}

type retry = {
  max_attempts : int;  (** total tries including the first (>= 1) *)
  timeout_ms : float;
      (** per-attempt delivery deadline in simulated ms; a delivery
          slower than this counts as a failed attempt *)
  backoff : backoff;
}

val default_backoff : backoff
(** 10 ms base, doubling, 50% jitter. *)

val default_retry : retry
(** 3 attempts, 10 s per-attempt deadline, {!default_backoff}. *)

val no_retry : retry
(** One attempt, no deadline — the pre-fault-layer behaviour. *)

type t = {
  jobs : int;  (** domains for the parallel phases (1 = sequential) *)
  pruning : pruning;
  retry : retry;
      (** retry/timeout/backoff policy for simulated network sends
          (used by {!Distributed.execute}) *)
  batch : bool;
      (** evaluate the rewriting union through the shared-prefix trie
          of {!Cq.Plan} (default [true]); [false] evaluates every
          rewriting independently — the [--no-batch] A/B escape hatch.
          The answer set is identical either way. *)
  index : bool;
      (** answer keyword searches from the {!Kwindex} inverted index
          (default [true]); [false] re-vectorizes and scores every
          tuple per query — the [--no-index] A/B escape hatch. Hit
          lists are identical either way, tie-breaks included. *)
  incremental : bool;
      (** maintain derived structures (inverted index, statistics,
          answer cache, replicas) by folding in retained
          {!Relalg.Relation.Delta.t}s rather than rebuilding or
          invalidating on every version bump (default [true]);
          [false] restores the version-guarded rebuild discipline —
          the [--no-incremental] A/B escape hatch.  Search results,
          statistics, and replica contents are identical either way. *)
  trace : Obs.Trace.t;
      (** span collection; {!Obs.Trace.null} (the default) costs one
          branch per span site *)
  metrics : bool;
      (** record [pdms.*] metrics into {!Obs.Metrics} (default [true];
          increments are batched per phase, not per tuple) *)
}

val default : t
(** [jobs = 1], {!default_pruning}, {!default_retry}, batch evaluation
    on, no tracing, metrics on. *)

val make :
  ?jobs:int -> ?pruning:pruning -> ?retry:retry -> ?batch:bool ->
  ?index:bool -> ?incremental:bool -> ?trace:Obs.Trace.t ->
  ?metrics:bool -> unit -> t

val with_jobs : int -> t
(** [with_jobs n] is {!default} with [jobs = n]. *)

val with_pruning : pruning -> t
(** [with_pruning p] is {!default} with [pruning = p]. *)

val with_retry : retry -> t
(** [with_retry r] is {!default} with [retry = r]. *)

val with_batch : bool -> t
(** [with_batch b] is {!default} with [batch = b]. *)

val with_index : bool -> t
(** [with_index b] is {!default} with [index = b]. *)

val with_incremental : bool -> t
(** [with_incremental b] is {!default} with [incremental = b]. *)

val with_trace : Obs.Trace.t -> t
(** [with_trace tr] is {!default} with [trace = tr]. *)
