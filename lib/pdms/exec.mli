(** Execution contexts for the answer path.

    Every tunable that used to travel as scattered [?pruning]/[?jobs]
    optional arguments — plus the observability hooks — now rides in one
    [Exec.t] record threaded through {!Answer}, {!Reformulate},
    {!Distributed}, {!Keyword}, {!Cache} and {!Propagate}.  Callers that
    don't care pass nothing and get {!default}; callers that do build one
    context and reuse it across calls. *)

(** Reformulation pruning heuristics (Section 3.1.1), individually
    switchable for the ablation benchmark.  The record lives here so
    [Exec.t] needs nothing from {!Reformulate}; that module re-exports it
    as [Reformulate.pruning] for compatibility. *)
type pruning = {
  use_history : bool;
      (** never traverse the same mapping edge twice on one derivation
          branch (cycle cut) *)
  use_visited : bool;
      (** dominance pruning: drop a pending query alpha-equivalent to an
          already-explored one whose per-atom histories were pointwise
          subsets (the earlier node could derive strictly more) *)
  use_goal_memo : bool;
      (** the aggressive Piazza heuristic: expand each alpha-equivalent
          pending query only once, regardless of history *)
  use_subsumption : bool;
      (** drop emitted rewritings contained in previously emitted ones *)
  use_minimize : bool;  (** minimize each emitted rewriting *)
  max_depth : int;  (** expansion-depth cap per branch *)
  max_rewritings : int;  (** stop after this many emitted rewritings *)
}

val default_pruning : pruning

val no_pruning : pruning
(** Everything off except a (high) depth cap and rewriting cap — used by
    the E2 ablation to expose the blow-up. *)

type t = {
  jobs : int;  (** domains for the parallel phases (1 = sequential) *)
  pruning : pruning;
  trace : Obs.Trace.t;
      (** span collection; {!Obs.Trace.null} (the default) costs one
          branch per span site *)
  metrics : bool;
      (** record [pdms.*] metrics into {!Obs.Metrics} (default [true];
          increments are batched per phase, not per tuple) *)
}

val default : t
(** [jobs = 1], {!default_pruning}, no tracing, metrics on. *)

val make :
  ?jobs:int -> ?pruning:pruning -> ?trace:Obs.Trace.t -> ?metrics:bool ->
  unit -> t

val with_jobs : int -> t
(** [with_jobs n] is {!default} with [jobs = n]. *)

val with_pruning : pruning -> t
(** [with_pruning p] is {!default} with [pruning = p]. *)

val with_trace : Obs.Trace.t -> t
(** [with_trace tr] is {!default} with [trace = tr]. *)
