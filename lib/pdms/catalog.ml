type mapping_id = int

type t = {
  mutable peers : Peer.t list;
  mutable storage : Storage_desc.t list;
  mutable mappings : (mapping_id * Peer_mapping.t) list;
  mutable next_id : mapping_id;
  (* Derived, rebuilt on mutation: *)
  mutable rules : (string * (mapping_id option * Cq.Query.t)) list;
  mutable views_cache : (mapping_id option * Cq.Query.t) list;
  stored : (string, unit) Hashtbl.t;
}

let create () =
  {
    peers = [];
    storage = [];
    mappings = [];
    next_id = 0;
    rules = [];
    views_cache = [];
    stored = Hashtbl.create 16;
  }

let mapping_pred id reversed =
  Printf.sprintf "~map%d%s" id (if reversed then "r" else "")

let mapping_id_of_pred pred =
  if String.length pred > 4 && String.sub pred 0 4 = "~map" then
    let digits =
      String.sub pred 4 (String.length pred - 4)
      |> String.to_seq
      |> Seq.take_while (fun c -> c >= '0' && c <= '9')
      |> String.of_seq
    in
    int_of_string_opt digits
  else None

let retarget pred (q : Cq.Query.t) =
  { q with Cq.Query.head = { q.Cq.Query.head with Cq.Atom.pred = pred } }

(* One GAV rule + one LAV view per mapping direction. *)
let artifacts_of_mapping (id, mapping) =
  match mapping with
  | Peer_mapping.Definitional rule ->
      ([ (rule.Cq.Query.head.Cq.Atom.pred, (Some id, rule)) ], [])
  | Peer_mapping.Glav g ->
      let directions =
        match g.Rewrite.Glav.kind with
        | Rewrite.Glav.Inclusion -> [ (false, g) ]
        | Rewrite.Glav.Equality -> (
            [ (false, g) ]
            @
            match Rewrite.Glav.reversed g with
            | Some rg -> [ (true, rg) ]
            | None -> [])
      in
      let rules, views =
        List.fold_left
          (fun (rules, views) (rev, g) ->
            let pred = mapping_pred id rev in
            let rule = retarget pred g.Rewrite.Glav.lhs in
            let view = retarget pred g.Rewrite.Glav.rhs in
            ((pred, (Some id, rule)) :: rules, (Some id, view) :: views))
          ([], []) directions
      in
      (rules, views)

let rebuild t =
  let rules, views =
    List.fold_left
      (fun (rules, views) m ->
        let r, v = artifacts_of_mapping m in
        (r @ rules, v @ views))
      ([], []) t.mappings
  in
  let storage_views = List.map (fun d -> (None, d.Storage_desc.view)) t.storage in
  t.rules <- rules;
  t.views_cache <- storage_views @ views

let add_peer t peer =
  if List.exists (fun p -> String.equal (Peer.name p) (Peer.name peer)) t.peers
  then invalid_arg ("Catalog.add_peer: duplicate peer " ^ Peer.name peer);
  t.peers <- peer :: t.peers;
  List.iter (fun pred -> Hashtbl.replace t.stored pred ()) (Peer.stored_preds peer)

let peer t name =
  match List.find_opt (fun p -> String.equal (Peer.name p) name) t.peers with
  | Some p -> p
  | None -> invalid_arg ("Catalog.peer: unknown peer " ^ name)

let peers t = List.rev t.peers

let add_storage t desc =
  t.storage <- desc :: t.storage;
  Hashtbl.replace t.stored (Storage_desc.stored_pred desc) ();
  rebuild t

let store_identity t peer ~rel =
  let attrs = List.assoc rel (Peer.schema peer) in
  let relation =
    match Relalg.Database.find_opt (Peer.stored_db peer) (Peer.stored_pred peer rel) with
    | Some r -> r
    | None -> Peer.add_stored peer ~rel ~attrs
  in
  Hashtbl.replace t.stored (Peer.stored_pred peer rel) ();
  add_storage t (Storage_desc.identity peer ~rel);
  relation

let add_mapping t mapping =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.mappings <- (id, mapping) :: t.mappings;
  rebuild t;
  id

let mappings t = List.rev t.mappings
let mapping_count t = List.length t.mappings

let is_stored t pred = Hashtbl.mem t.stored pred

let rules_for t pred =
  List.filter_map
    (fun (p, rule) -> if String.equal p pred then Some rule else None)
    t.rules

let has_rules t pred = List.exists (fun (p, _) -> String.equal p pred) t.rules

let views t = t.views_cache

let global_db t =
  let db = Relalg.Database.create () in
  List.iter
    (fun peer ->
      List.iter
        (fun rel -> Relalg.Database.add_relation db rel)
        (Relalg.Database.relations (Peer.stored_db peer)))
    t.peers;
  db

let global_db_snapshot t = Relalg.Database.copy (global_db t)
