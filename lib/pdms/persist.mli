(** Durable peers: a data directory holding a {!Storage.Snapshot}
    checkpoint of the whole catalog (its {!Pdms_file} rendering) plus a
    {!Storage.Wal} of the effective deltas applied since.

    Recovery ([open_dir]) loads the newest valid snapshot, re-parses the
    catalog, and replays the WAL suffix (records with a sequence number
    above the snapshot's stamp) through {!Relalg.Relation.apply} —
    byte-identical state reconstruction, including row insertion order,
    so answers, keyword-search transcripts and the PR 8 incremental
    machinery (Kwindex/Stats/Cache patching) behave exactly as before
    the restart.  A torn WAL tail (crash mid-append) is discarded; a
    missing or corrupt newest snapshot falls back to the next older
    one.

    Mutations flow in through {!apply} (or any caller passing {!tee} to
    {!Updategram.apply} / {!Propagate.push}): the effective delta is
    appended to the WAL {e before} the in-memory mutation, so the log
    is never behind the store. *)

type t

val init : dir:string -> Catalog.t -> unit
(** Create (or re-point) a data directory: write a snapshot of
    [catalog] covering sequence 0 and an empty WAL.  The directory is
    created if needed. *)

val open_dir : ?exec:Exec.t -> string -> (t, string) result
(** Recover the catalog from [dir] (snapshot + WAL replay, under a
    [recover] span on [exec.trace]) and open the WAL for appending. *)

val open_dir_exn : ?exec:Exec.t -> string -> t

val catalog : t -> Catalog.t
val db : t -> Relalg.Database.t
(** The global database over the recovered catalog's stored relations
    (shared structure: mutating it mutates the catalog's peers). *)

val tee : t -> rel:string -> Relalg.Relation.Delta.t -> unit
(** The write-ahead hook: append one effective delta to the WAL.  Pass
    as the [?tee] argument of {!Updategram.apply} or
    {!Propagate.push}. *)

val apply : ?exec:Exec.t -> ?sync:bool -> t -> Updategram.t -> unit
(** {!Updategram.apply} against the recovered database with the WAL
    tee wired in; [sync] (default [false]) fsyncs afterwards. *)

val snapshot : t -> string
(** Checkpoint the current catalog, stamped with the WAL sequence
    applied so far; returns the snapshot path.  Subsequent recoveries
    replay only records after the stamp (older WAL records and
    snapshots are kept — [fsck] still verifies them). *)

val sync : t -> unit
val wal_seq : t -> int
(** Sequence number of the last record appended (0 when none yet). *)

val wal_size : t -> int
(** Byte length of the WAL file. *)

val close : t -> unit

(** {2 Verification} *)

type fsck_report = {
  dir : string;
  snapshots : int;  (** snapshot files present *)
  valid_snapshots : int;  (** of which checksum-valid *)
  snapshot_seq : int option;  (** stamp of the newest valid one *)
  wal_records : int;  (** valid records in the WAL *)
  replayable : int;  (** records after the snapshot stamp *)
  torn_bytes : int;  (** trailing WAL bytes discarded as torn *)
  errors : string list;
}

val fsck : string -> fsck_report
(** Read-only integrity check of a data directory: every snapshot
    decodes or is reported, the WAL parses to a valid prefix (a torn
    tail is tolerated and counted, not an error), and the replay dry-
    runs against the recovered catalog (relations exist, arities
    match).  [errors = []] means a restart from [dir] will succeed. *)

val fsck_ok : fsck_report -> bool
val render_fsck : fsck_report -> string
