(** End-to-end PDMS query answering: reformulate onto stored relations,
    then evaluate the union of rewritings over the peers' stored data.
    "The moment a peer establishes mappings to other sources, it can pose
    queries using its native schema, which will return answers from all
    mapped peers" (Example 3.1). *)

type result = {
  answers : Relalg.Relation.t;
  outcome : Reformulate.outcome;
}

val answer : ?exec:Exec.t -> Catalog.t -> Cq.Query.t -> result
(** [exec] ({!Exec.default} when omitted) carries pruning, the domain
    count and the observability hooks. [exec.jobs > 1] parallelises both
    the reformulation's final subsumption sweep
    ({!Reformulate.reformulate}) and the union evaluation: shards of
    rewritings are evaluated over a frozen snapshot of the global
    database and merged through a shared dedup set. The rewriting list
    and the answer {e set} are identical for every [exec.jobs]. Opens an
    ["answer"] span on [exec.trace] with ["reformulate"] (and its
    ["sweep"]) and ["eval"] children; records [pdms.answer.*] metrics
    when [exec.metrics] is set. *)

val eval_union :
  ?exec:Exec.t -> Relalg.Database.t -> Cq.Query.t list -> Relalg.Relation.t
(** Evaluate a union of rewritings over [db], optionally in parallel.
    With [exec.jobs > 1] the database is frozen
    ({!Relalg.Database.freeze}) and must not be mutated concurrently.
    Raises on an empty list. Opens an ["eval"] span and records
    [pdms.eval.*] metrics (per-rewriting pre-dedup tuple counts and the
    union dedup rate — both independent of [exec.jobs]). *)

val answers_list : result -> string list list
(** Answer tuples rendered as strings, sorted lexicographically with
    [String.compare] — convenient for tests and examples. *)

val reachable_peers : Catalog.t -> string -> string list
(** Peers whose data is reachable from the given peer through the
    mapping graph (including itself) — the "web of data" the paper's
    Figure 2 caption describes. *)
