(** The PDMS catalog: peers, storage descriptions and peer mappings.
    Exposes the derived artifacts reformulation consumes — GAV rules
    (definitional mappings plus the lhs-side of each GLAV mapping
    through its mapping predicate) and LAV views (storage descriptions
    plus the rhs-side of each GLAV mapping). *)

type mapping_id = int

type t

val create : unit -> t

val add_peer : t -> Peer.t -> unit
(** Raises [Invalid_argument] on duplicate peer names. *)

val peer : t -> string -> Peer.t
val peers : t -> Peer.t list

val add_storage : t -> Storage_desc.t -> unit

val store_identity : t -> Peer.t -> rel:string -> Relalg.Relation.t
(** Shorthand: declare the stored relation, register the identity
    storage description, and return the relation to load data into. *)

val add_mapping : t -> Peer_mapping.t -> mapping_id

val mappings : t -> (mapping_id * Peer_mapping.t) list
val mapping_count : t -> int

val is_stored : t -> string -> bool
(** Is the predicate a stored relation of some peer? *)

(** {2 Artifacts for reformulation} *)

val rules_for : t -> string -> (mapping_id option * Cq.Query.t) list
(** GAV rules whose head predicate is the given one. The id is the
    mapping the rule derives from ([None] for none — currently unused). *)

val has_rules : t -> string -> bool

val views : t -> (mapping_id option * Cq.Query.t) list
(** All LAV views: storage-description views (id [None]) and GLAV
    mapping-predicate views (their mapping id). *)

val global_db : t -> Relalg.Database.t
(** Union of all peers' stored relations (shared relation objects, not
    copies — inserts through peers are visible). *)

val global_db_snapshot : t -> Relalg.Database.t
(** Like {!global_db} but with fresh relation copies: an immutable-by-
    convention snapshot that is unaffected by later peer inserts, safe
    to hand to worker domains while the live catalog keeps moving. *)

val mapping_id_of_pred : string -> mapping_id option
(** Recover the mapping id from a mapping predicate name ([~map<k> ] or
    [~map<k>r]). *)
