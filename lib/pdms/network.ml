type error =
  | Peer_down of string
  | No_route of string * string
  | Link_drop of string * string
  | Timed_out of string * string * float

let error_to_string = function
  | Peer_down p -> Printf.sprintf "peer %s is down" p
  | No_route (a, b) -> Printf.sprintf "no route from %s to %s" a b
  | Link_drop (a, b) -> Printf.sprintf "message %s -> %s lost in transit" a b
  | Timed_out (a, b, deadline) ->
      Printf.sprintf "delivery %s -> %s missed the %.1fms deadline" a b deadline

type t = {
  peer_tbl : (string, unit) Hashtbl.t;
  (* Undirected adjacency, one entry per direction; at most one edge per
     peer pair (connect keeps the lowest latency). *)
  adjacency : (string, (string * float) list) Hashtbl.t;
  mutable messages : int;
  mutable bytes : int;
  mutable version : int;  (* bumped on any topology or fault change *)
  down : (string, unit) Hashtbl.t;
  cut : (string * string, unit) Hashtbl.t;
  spikes : (string * string, float) Hashtbl.t;
  mutable flaky : (float * Util.Prng.t) option;
  (* Per-source route tables, valid while [version] is unchanged. *)
  routes :
    (string, int * ((string, float) Hashtbl.t * (string, int) Hashtbl.t))
    Hashtbl.t;
}

let m_sends = Obs.Metrics.counter "pdms.net.sends"
let m_send_failures = Obs.Metrics.counter "pdms.net.send_failures"
let m_retries = Obs.Metrics.counter "pdms.net.retries"
let m_gave_up = Obs.Metrics.counter "pdms.net.gave_up"
let m_backoff_ms = Obs.Metrics.histogram "pdms.net.backoff_ms"

let create () =
  {
    peer_tbl = Hashtbl.create 16;
    adjacency = Hashtbl.create 16;
    messages = 0;
    bytes = 0;
    version = 0;
    down = Hashtbl.create 4;
    cut = Hashtbl.create 4;
    spikes = Hashtbl.create 4;
    flaky = None;
    routes = Hashtbl.create 16;
  }

let bump t = t.version <- t.version + 1
let link_key a b = if String.compare a b <= 0 then (a, b) else (b, a)

let add_peer t name =
  if not (Hashtbl.mem t.peer_tbl name) then begin
    Hashtbl.replace t.peer_tbl name ();
    bump t
  end

let neighbours_raw t p =
  Option.value ~default:[] (Hashtbl.find_opt t.adjacency p)

let set_adjacent t a b latency_ms =
  Hashtbl.replace t.adjacency a
    ((b, latency_ms)
    :: List.filter (fun (x, _) -> not (String.equal x b)) (neighbours_raw t a))

let connect t a b ~latency_ms =
  add_peer t a;
  add_peer t b;
  if not (String.equal a b) then
    match List.assoc_opt b (neighbours_raw t a) with
    | Some existing when existing <= latency_ms -> ()
    | _ ->
        set_adjacent t a b latency_ms;
        set_adjacent t b a latency_ms;
        bump t

let peers t =
  Hashtbl.fold (fun p () acc -> p :: acc) t.peer_tbl []
  |> List.sort String.compare

let of_topology topo ~names ~base_latency_ms =
  if List.length names < topo.Topology.n then
    invalid_arg "Network.of_topology: not enough names";
  let arr = Array.of_list names in
  let t = create () in
  Array.iter (add_peer t) (Array.sub arr 0 topo.Topology.n);
  List.iter
    (fun (a, b) -> connect t arr.(a) arr.(b) ~latency_ms:base_latency_ms)
    topo.Topology.edges;
  t

(* Fault-aware neighbour view: down peers and cut links are invisible,
   latency spikes inflate the edge weight. *)
let neighbours t p =
  List.filter_map
    (fun (q, l) ->
      if Hashtbl.mem t.down q || Hashtbl.mem t.cut (link_key p q) then None
      else
        Some
          ( q,
            l
            +. Option.value ~default:0.0
                 (Hashtbl.find_opt t.spikes (link_key p q)) ))
    (neighbours_raw t p)

(* Dijkstra over the small peer graph, memoised per source until the
   topology version moves. *)
let shortest t src =
  match Hashtbl.find_opt t.routes src with
  | Some (v, tables) when v = t.version -> tables
  | _ ->
      let dist = Hashtbl.create 16 in
      let hops = Hashtbl.create 16 in
      if not (Hashtbl.mem t.down src) then begin
        Hashtbl.replace dist src 0.0;
        Hashtbl.replace hops src 0;
        let visited = Hashtbl.create 16 in
        let rec loop () =
          (* Pick the unvisited peer with smallest tentative distance. *)
          let best =
            Hashtbl.fold
              (fun p d acc ->
                if Hashtbl.mem visited p then acc
                else
                  match acc with
                  | None -> Some (p, d)
                  | Some (_, bd) -> if d < bd then Some (p, d) else acc)
              dist None
          in
          match best with
          | None -> ()
          | Some (p, d) ->
              Hashtbl.replace visited p ();
              List.iter
                (fun (q, l) ->
                  let nd = d +. l in
                  let better =
                    match Hashtbl.find_opt dist q with
                    | None -> true
                    | Some old -> nd < old
                  in
                  if better then begin
                    Hashtbl.replace dist q nd;
                    Hashtbl.replace hops q (Hashtbl.find hops p + 1)
                  end)
                (neighbours t p);
              loop ()
        in
        loop ()
      end;
      Hashtbl.replace t.routes src (t.version, (dist, hops));
      (dist, hops)

let latency t a b =
  if Hashtbl.mem t.down a || Hashtbl.mem t.down b then None
  else
    let dist, _ = shortest t a in
    Hashtbl.find_opt dist b

let hops t a b =
  if Hashtbl.mem t.down a || Hashtbl.mem t.down b then None
  else
    let _, hops = shortest t a in
    Hashtbl.find_opt hops b

(* 1 KB costs 1 ms of transfer on top of propagation. *)
let transfer_ms size = float_of_int size /. 1024.0

let cost t ~src ~dst ~size =
  match latency t src dst with
  | None -> None
  | Some l -> Some (l +. transfer_ms size)

let send t ~src ~dst ~size =
  Obs.Metrics.incr m_sends;
  let fail e =
    Obs.Metrics.incr m_send_failures;
    Error e
  in
  if Hashtbl.mem t.down src then fail (Peer_down src)
  else if Hashtbl.mem t.down dst then fail (Peer_down dst)
  else
    match latency t src dst with
    | None -> fail (No_route (src, dst))
    | Some l -> (
        match t.flaky with
        | Some (p, prng) when Util.Prng.bernoulli prng p ->
            fail (Link_drop (src, dst))
        | _ ->
            t.messages <- t.messages + 1;
            t.bytes <- t.bytes + size;
            Ok (l +. transfer_ms size))

type outcome = {
  result : (float, error) result;
  attempts : int;
  retries : int;
  backoff_ms : float;
  elapsed_ms : float;
}

let send_with_retry t ~(retry : Exec.retry) ~prng ~src ~dst ~size =
  let max_attempts = max 1 retry.Exec.max_attempts in
  let deadline = retry.Exec.timeout_ms in
  let backoff = retry.Exec.backoff in
  let rec go attempt backoff_total elapsed =
    let attempt_result =
      match send t ~src ~dst ~size with
      | Ok ms when ms > deadline -> Error (Timed_out (src, dst, deadline))
      | r -> r
    in
    match attempt_result with
    | Ok ms ->
        {
          result = Ok ms;
          attempts = attempt;
          retries = attempt - 1;
          backoff_ms = backoff_total;
          elapsed_ms = elapsed +. ms;
        }
    | Error e ->
        (* A known-down peer or missing route fails fast; a lost or late
           message is only detected once the deadline passes. *)
        let wait =
          match e with
          | Peer_down _ | No_route _ -> 0.0
          | Link_drop _ | Timed_out _ ->
              if Float.is_finite deadline then deadline else 0.0
        in
        if attempt >= max_attempts then begin
          Obs.Metrics.incr m_gave_up;
          {
            result = Error e;
            attempts = attempt;
            retries = attempt - 1;
            backoff_ms = backoff_total;
            elapsed_ms = elapsed +. wait;
          }
        end
        else begin
          Obs.Metrics.incr m_retries;
          let base =
            backoff.Exec.base_ms
            *. (backoff.Exec.multiplier ** float_of_int (attempt - 1))
          in
          let jittered =
            Float.max 0.0
              (base
              *. (1.0
                 +. (backoff.Exec.jitter *. (Util.Prng.float prng 2.0 -. 1.0))
                 ))
          in
          Obs.Metrics.observe m_backoff_ms jittered;
          go (attempt + 1) (backoff_total +. jittered)
            (elapsed +. wait +. jittered)
        end
  in
  go 1 0.0 0.0

let broadcast t ~src ~size =
  let dist, _ = shortest t src in
  Hashtbl.fold
    (fun p l worst ->
      if String.equal p src then worst
      else begin
        t.messages <- t.messages + 1;
        t.bytes <- t.bytes + size;
        Float.max worst (l +. transfer_ms size)
      end)
    dist 0.0

let messages_sent t = t.messages
let bytes_sent t = t.bytes

let reset_counters t =
  t.messages <- 0;
  t.bytes <- 0

module Fault = struct
  let topology_version t = t.version
  let is_down t p = Hashtbl.mem t.down p

  let fail_peer t p =
    if not (Hashtbl.mem t.down p) then begin
      Hashtbl.replace t.down p ();
      bump t
    end

  let heal_peer t p =
    if Hashtbl.mem t.down p then begin
      Hashtbl.remove t.down p;
      bump t
    end

  let cut_link t a b =
    let k = link_key a b in
    if not (Hashtbl.mem t.cut k) then begin
      Hashtbl.replace t.cut k ();
      bump t
    end

  let restore_link t a b =
    let k = link_key a b in
    if Hashtbl.mem t.cut k then begin
      Hashtbl.remove t.cut k;
      bump t
    end

  let partition t group =
    let in_group p = List.exists (String.equal p) group in
    Hashtbl.iter
      (fun a nbrs ->
        List.iter
          (fun (b, _) ->
            if String.compare a b < 0 && in_group a <> in_group b then
              Hashtbl.replace t.cut (link_key a b) ())
          nbrs)
      t.adjacency;
    bump t

  let spike t a b ~extra_ms =
    Hashtbl.replace t.spikes (link_key a b) extra_ms;
    bump t

  let flaky t ?(seed = 2003) ~p () =
    t.flaky <- (if p <= 0.0 then None else Some (p, Util.Prng.create seed));
    bump t

  let heal t =
    Hashtbl.reset t.down;
    Hashtbl.reset t.cut;
    Hashtbl.reset t.spikes;
    t.flaky <- None;
    bump t
end
