type t = {
  dir : string;
  catalog : Catalog.t;
  db : Relalg.Database.t;
  wal : Storage.Wal.t;
}

let m_replayed = Obs.Metrics.counter "pdms.wal.replayed"

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let init ~dir catalog =
  mkdir_p dir;
  (* A stale WAL would replay on top of the fresh checkpoint, and stale
     snapshots would shadow it: a (re)init empties the directory's
     durability state first. *)
  let wal_file = Storage.Wal.file ~dir in
  if Sys.file_exists wal_file then Sys.remove wal_file;
  List.iter (fun (_, path) -> Sys.remove path) (Storage.Snapshot.list ~dir);
  ignore (Storage.Snapshot.write ~dir ~seq:0 (Pdms_file.render catalog));
  match Storage.Wal.open_dir ~dir with
  | Ok (wal, _) -> Storage.Wal.close wal
  | Error msg -> invalid_arg ("Persist.init: " ^ msg)

(* Replay one WAL suffix onto a freshly parsed catalog; shared by
   recovery and the fsck dry run. *)
let replay_records db ~after records =
  List.fold_left
    (fun acc (r : Storage.Wal.record) ->
      match acc with
      | Error _ as e -> e
      | Ok n ->
          if r.Storage.Wal.seq <= after then Ok n
          else (
            match Relalg.Database.find_opt db r.Storage.Wal.rel with
            | None ->
                Error
                  (Printf.sprintf "WAL record %d targets unknown relation %s"
                     r.Storage.Wal.seq r.Storage.Wal.rel)
            | Some rel -> (
                match Relalg.Relation.apply rel r.Storage.Wal.delta with
                | () -> Ok (n + 1)
                | exception Invalid_argument msg ->
                    Error
                      (Printf.sprintf "WAL record %d does not apply: %s"
                         r.Storage.Wal.seq msg))))
    (Ok 0) records

let recover_catalog ~dir records =
  match Storage.Snapshot.load_latest ~dir with
  | None -> Error (dir ^ ": no valid snapshot to recover from")
  | Some (snap_seq, payload) -> (
      match Pdms_file.parse payload with
      | Error msg -> Error (dir ^ ": snapshot does not parse: " ^ msg)
      | Ok catalog -> (
          let db = Catalog.global_db catalog in
          match replay_records db ~after:snap_seq records with
          | Error msg -> Error (dir ^ ": " ^ msg)
          | Ok replayed -> Ok (catalog, db, snap_seq, replayed)))

let open_dir ?(exec = Exec.default) dir =
  Obs.Trace.span exec.Exec.trace "recover" @@ fun () ->
  match Storage.Wal.open_dir ~dir with
  | Error msg -> Error msg
  | Ok (wal, records) -> (
      match recover_catalog ~dir records with
      | Error _ as e ->
          Storage.Wal.close wal;
          e
      | Ok (catalog, db, snap_seq, replayed) ->
          (* If the newest snapshot covers sequences past the WAL's last
             surviving record (tail torn after the snapshot was cut),
             appending under a covered sequence would be shadowed on the
             next recovery — skip past the stamp. *)
          Storage.Wal.reserve wal (snap_seq + 1);
          if exec.Exec.metrics then Obs.Metrics.add m_replayed replayed;
          Obs.Trace.attr_i exec.Exec.trace "snapshot.seq" snap_seq;
          Obs.Trace.attr_i exec.Exec.trace "wal.replayed" replayed;
          Ok { dir; catalog; db; wal })

let open_dir_exn ?exec dir =
  match open_dir ?exec dir with
  | Ok t -> t
  | Error msg -> invalid_arg ("Persist.open_dir: " ^ msg)

let catalog t = t.catalog
let db t = t.db

let tee t ~rel delta = ignore (Storage.Wal.append t.wal ~rel delta)

let apply ?exec ?(sync = false) t u =
  Updategram.apply ?exec ~tee:(tee t) t.db u;
  if sync then Storage.Wal.sync t.wal

let snapshot t =
  Storage.Snapshot.write ~dir:t.dir
    ~seq:(Storage.Wal.next_seq t.wal - 1)
    (Pdms_file.render t.catalog)

let sync t = Storage.Wal.sync t.wal
let wal_seq t = Storage.Wal.next_seq t.wal - 1
let wal_size t = Storage.Wal.size t.wal
let close t = Storage.Wal.close t.wal

(* ------------------------------------------------------------------ *)

type fsck_report = {
  dir : string;
  snapshots : int;
  valid_snapshots : int;
  snapshot_seq : int option;
  wal_records : int;
  replayable : int;
  torn_bytes : int;
  errors : string list;
}

let fsck dir =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let snaps = Storage.Snapshot.list ~dir in
  let valid =
    List.filter
      (fun (_, path) ->
        match Storage.Snapshot.load path with
        | Ok _ -> true
        | Error msg ->
            err "invalid snapshot: %s" msg;
            false)
      snaps
  in
  let wal_result = Storage.Wal.read (Storage.Wal.file ~dir) in
  let wal_records, torn_bytes =
    match wal_result with
    | Error msg ->
        err "%s" msg;
        ([], 0)
    | Ok r -> (r.Storage.Wal.records, r.Storage.Wal.torn_bytes)
  in
  let snapshot_seq, replayable =
    match recover_catalog ~dir wal_records with
    | Error msg ->
        err "%s" msg;
        ( (match valid with (seq, _) :: _ -> Some seq | [] -> None), 0 )
    | Ok (_, _, snap_seq, replayed) -> (Some snap_seq, replayed)
  in
  {
    dir;
    snapshots = List.length snaps;
    valid_snapshots = List.length valid;
    snapshot_seq;
    wal_records = List.length wal_records;
    replayable;
    torn_bytes;
    errors = List.rev !errors;
  }

let fsck_ok r = r.errors = []

let render_fsck r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %d snapshot(s), %d valid, newest covers seq %s\n"
       r.dir r.snapshots r.valid_snapshots
       (match r.snapshot_seq with Some s -> string_of_int s | None -> "-"));
  Buffer.add_string b
    (Printf.sprintf "wal: %d record(s), %d replayable past the snapshot%s\n"
       r.wal_records r.replayable
       (if r.torn_bytes > 0 then
          Printf.sprintf ", %d torn tail byte(s) dropped" r.torn_bytes
        else ""));
  List.iter (fun e -> Buffer.add_string b ("error: " ^ e ^ "\n")) r.errors;
  Buffer.add_string b
    (if r.errors = [] then "ok: recovery from this directory will succeed\n"
     else "FAILED\n");
  Buffer.contents b
