(** Version-guarded, delta-patched inverted index for keyword search.

    One {!entry} per stored relation, keyed on {!Relalg.Relation.uid}
    and guarded by {!Relalg.Relation.version} (the {!Relalg.Stats}
    discipline): postings lists [token -> (slot_id, tf)], per-slot
    term-frequency vectors in ascending token order, and lazily
    computed per-slot norms.  When the relation's version moves, the
    entry is {e patched} from {!Relalg.Relation.deltas_since} — removed
    tuples are tombstoned in place (postings spliced, slot marked
    dead), inserted tuples take fresh ascending slots — counted in
    [pdms.delta.patched_postings].  A full reindex of the relation
    happens only on a cold entry, when the delta log was truncated past
    the cached version ([pdms.delta.rebuild_fallbacks]), or with
    [~incremental:false]; the bounded store evicts its
    least-recently-used entry on overflow instead of resetting
    wholesale.

    Scoring through {!probe} is bit-identical to vectorizing every
    tuple and taking {!Util.Tfidf.cosine} against the query vector —
    term frequencies, norms, and partial dot products replay the exact
    floating-point op order of the brute-force path, and patched
    entries preserve live-doc enumeration order (tie-breaks included)
    relative to a compacting rebuild (see the implementation header for
    the argument).  This is what lets [revere search --no-index] and
    [--no-incremental] serve as byte-exact A/B baselines.

    Instrumented with [pdms.kwindex.{builds,postings,df_merges}]
    counters and a [pdms.kwindex.posting_len] histogram; the search
    layer adds the per-query counters. *)

type posting = {
  mutable ids : int array;
  mutable tfs : float array;
  mutable len : int;
  mutable max_tf : float;
}
(** One token's postings within a relation: parallel arrays (capacity
    may exceed [len]; cells [0 .. len-1] are meaningful) of ascending
    live slot ids and term frequencies, plus the largest live tf
    (feeds the early-termination bound). *)

type entry = {
  uid : int;
  mutable version : int;  (** the relation version the entry reflects *)
  peer : string;  (** owner per {!Distributed.owner_of_pred}, "" if unqualified *)
  rel_name : string;
  mutable tuples : Relalg.Relation.tuple array;
      (** slot -> tuple; meaningful for slots [0 .. n_slots-1] *)
  mutable token_tfs : (string * float) array array;
      (** per slot: (token, tf) ascending by token; [[||]] on dead slots *)
  mutable live : bool array;  (** tombstone map over slots *)
  mutable n_slots : int;  (** allocated slots, live or dead *)
  postings : (string, posting) Hashtbl.t;
  mutable doc_count : int;  (** live slots only *)
  mutable norms : (int * float array * float) option;
      (** (corpus stamp, per-slot norms, min positive norm) — managed
          by {!probe}; treat as private *)
  mutable last_used : int;  (** LRU clock — managed by {!get} *)
}

type probe = {
  source : entry;
  scores : float array;  (** indexed by slot id; only candidates valid *)
  candidates : int array;  (** ascending live slot ids sharing >= 1 query token *)
  bound : float;
      (** upper bound on any candidate's score in this relation; if it
          cannot beat the current top-k floor the whole relation is
          skippable without changing the result *)
}

val tuple_tokens : Relalg.Relation.tuple -> string list
(** Tokenised + stemmed values of a tuple, in value order. *)

val get :
  ?metrics:bool ->
  ?incremental:bool ->
  rel_name:string ->
  Relalg.Relation.t ->
  entry * bool
(** [get ~rel_name rel] returns the index entry for [rel].  A cached
    entry at the current version is served as-is; a stale one is
    delta-patched under the store lock when [incremental] (default
    [true]) and the relation's delta log still reaches back — otherwise
    it is rebuilt from scratch.  The flag is [true] only when a full
    (re)build happened.  Thread-safe; concurrent searches serialise
    their patching on the store lock. *)

val corpus : ?metrics:bool -> entry list -> int * Util.Tfidf.corpus
(** [corpus entries] merges the per-relation df counts of the given
    (reachable) entries into a global corpus, memoised on the entries'
    [(uid, version)] list — repeated searches over an unchanged
    reachable set reuse it. Returns a stamp identifying the corpus;
    per-entry norm caches are keyed on it. *)

val probe :
  entry -> stamp:int -> Util.Tfidf.corpus -> Util.Tfidf.vector -> probe
(** [probe entry ~stamp corpus query_vec] accumulates partial dot
    products for the query's tokens over this relation's postings
    only. [query_vec] must be token-ascending (as
    {!Util.Tfidf.vectorize} output is). Computes and caches the
    entry's norms for [stamp] on first use — safe to call from
    parallel shards as long as each entry is probed by one shard. *)

val store_size : unit -> int
(** Number of relations currently indexed (bounded by {!max_entries}). *)

val max_entries : int
(** Store capacity; overflow evicts the least-recently-used entry. *)

val reset : unit -> unit
(** Drop every cached entry and the corpus memo (tests/benchmarks). *)
