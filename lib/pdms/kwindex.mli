(** Version-guarded incremental inverted index for keyword search.

    One {!entry} per stored relation, keyed on {!Relalg.Relation.uid}
    and guarded by {!Relalg.Relation.version} (the {!Relalg.Stats}
    discipline): postings lists [token -> (tuple_id, tf)], per-tuple
    term-frequency vectors in ascending token order, and lazily
    computed per-tuple norms. Any insert/delete/clear bumps the
    relation's version and reindexes just that relation; the bounded
    store evicts its least-recently-used entry on overflow instead of
    resetting wholesale.

    Scoring through {!probe} is bit-identical to vectorizing every
    tuple and taking {!Util.Tfidf.cosine} against the query vector —
    term frequencies, norms, and partial dot products replay the exact
    floating-point op order of the brute-force path (see the
    implementation header for the argument), which is what lets
    [revere search --no-index] serve as a byte-exact A/B baseline.

    Instrumented with [pdms.kwindex.{builds,postings,df_merges}]
    counters and a [pdms.kwindex.posting_len] histogram; the search
    layer adds the per-query counters. *)

type posting = { ids : int array; tfs : float array; max_tf : float }
(** One token's postings within a relation: parallel arrays of
    ascending tuple ids and term frequencies, plus the largest tf
    (feeds the early-termination bound). *)

type entry = {
  uid : int;
  version : int;
  peer : string;  (** owner per {!Distributed.owner_of_pred}, "" if unqualified *)
  rel_name : string;
  tuples : Relalg.Relation.tuple array;  (** snapshot, ids are indices *)
  token_tfs : (string * float) array array;
      (** per tuple: (token, tf) ascending by token *)
  postings : (string, posting) Hashtbl.t;
  doc_count : int;
  mutable norms : (int * float array * float) option;
      (** (corpus stamp, per-tuple norms, min positive norm) — managed
          by {!probe}; treat as private *)
  mutable last_used : int;  (** LRU clock — managed by {!get} *)
}

type probe = {
  source : entry;
  scores : float array;  (** indexed by tuple id; only candidates valid *)
  candidates : int array;  (** ascending tuple ids sharing >= 1 query token *)
  bound : float;
      (** upper bound on any candidate's score in this relation; if it
          cannot beat the current top-k floor the whole relation is
          skippable without changing the result *)
}

val tuple_tokens : Relalg.Relation.tuple -> string list
(** Tokenised + stemmed values of a tuple, in value order. *)

val get :
  ?metrics:bool -> rel_name:string -> Relalg.Relation.t -> entry * bool
(** [get ~rel_name rel] returns the index entry for [rel], rebuilding
    it only if the relation's version moved since the cached build.
    The flag is [true] when a (re)build happened. Thread-safe. *)

val corpus : ?metrics:bool -> entry list -> int * Util.Tfidf.corpus
(** [corpus entries] merges the per-relation df deltas of the given
    (reachable) entries into a global corpus, memoised on the entries'
    [(uid, version)] list — repeated searches over an unchanged
    reachable set reuse it. Returns a stamp identifying the corpus;
    per-entry norm caches are keyed on it. *)

val probe :
  entry -> stamp:int -> Util.Tfidf.corpus -> Util.Tfidf.vector -> probe
(** [probe entry ~stamp corpus query_vec] accumulates partial dot
    products for the query's tokens over this relation's postings
    only. [query_vec] must be token-ascending (as
    {!Util.Tfidf.vectorize} output is). Computes and caches the
    entry's norms for [stamp] on first use — safe to call from
    parallel shards as long as each entry is probed by one shard. *)

val store_size : unit -> int
(** Number of relations currently indexed (bounded by {!max_entries}). *)

val max_entries : int
(** Store capacity; overflow evicts the least-recently-used entry. *)

val reset : unit -> unit
(** Drop every cached entry and the corpus memo (tests/benchmarks). *)
