type result = {
  answers : Relalg.Relation.t;
  outcome : Reformulate.outcome;
}

let m_queries = Obs.Metrics.counter "pdms.answer.queries"
let m_answers = Obs.Metrics.counter "pdms.answer.answers"
let m_unions = Obs.Metrics.counter "pdms.eval.unions"
let m_tuples = Obs.Metrics.counter "pdms.eval.tuples"
let m_dedup_dropped = Obs.Metrics.counter "pdms.eval.dedup_dropped"
let m_tuples_per_rw = Obs.Metrics.histogram "pdms.eval.tuples_per_rewriting"

let empty_answers (q : Cq.Query.t) =
  let arity = Cq.Atom.arity q.Cq.Query.head in
  Relalg.Relation.create
    (Relalg.Schema.make q.Cq.Query.head.Cq.Atom.pred
       (List.init arity (Printf.sprintf "a%d")))

let eval_union ?(exec = Exec.default) db = function
  | [] -> invalid_arg "Answer.eval_union: empty union"
  | q0 :: _ as qs ->
      let jobs = exec.Exec.jobs in
      let trace = exec.Exec.trace in
      Obs.Trace.span trace "eval" @@ fun () ->
      (* Each branch evaluates one rewriting at a time so the per-rewriting
         pre-dedup tuple counts come back; they are |run_bindings q| per
         query, so identical for every [jobs] — and for the batch trie,
         whose emit-node binding counts equal |run_bindings q| too. *)
      let out, per_rewriting =
        if exec.Exec.batch && List.length qs >= 2 then begin
          (* Batch path: one shared-prefix trie over the whole union,
             walked once; [jobs] shards across top-level branches. *)
          if jobs > 1 then Relalg.Database.freeze db;
          let plan = Cq.Plan.build ~trace db qs in
          let out = Relalg.Relation.create (Cq.Eval.head_schema q0) in
          let counts = Cq.Plan.run_union_into ~jobs ~trace out db plan in
          (out, counts)
        end
        else if jobs <= 1 || List.length qs < 2 then begin
          let out = Relalg.Relation.create (Cq.Eval.head_schema q0) in
          let counts =
            List.map (fun q -> Cq.Eval.run_union_into out db [ q ]) qs
          in
          (out, counts)
        end
        else begin
          (* Parallel path. Pre-build every index so worker domains never
             mutate the shared database; each shard evaluates into its own
             partial relation, and partials are merged through one shared
             hash-backed dedup set. Shards are contiguous and merged in
             order, so the answer set is identical to the sequential one. *)
          Relalg.Database.freeze db;
          let shards = Util.Pool.chunk jobs qs in
          let partials =
            Util.Pool.map (List.length shards)
              (fun shard ->
                let partial =
                  Relalg.Relation.create (Cq.Eval.head_schema q0)
                in
                let counts =
                  List.map
                    (fun q -> Cq.Eval.run_union_into partial db [ q ])
                    shard
                in
                (partial, counts))
              shards
          in
          let out = Relalg.Relation.create (Cq.Eval.head_schema q0) in
          List.iter
            (fun (partial, _) ->
              Relalg.Relation.iter (Cq.Eval.add_distinct out) partial)
            partials;
          (out, List.concat_map snd partials)
        end
      in
      let tuples = List.fold_left ( + ) 0 per_rewriting in
      let answers = Relalg.Relation.cardinality out in
      if exec.Exec.metrics then begin
        Obs.Metrics.incr m_unions;
        Obs.Metrics.add m_tuples tuples;
        Obs.Metrics.add m_dedup_dropped (tuples - answers);
        List.iter
          (fun n -> Obs.Metrics.observe m_tuples_per_rw (float_of_int n))
          per_rewriting
      end;
      Obs.Trace.attr_i trace "rewritings" (List.length qs);
      Obs.Trace.attr_i trace "jobs" jobs;
      Obs.Trace.attr_b trace "batch" (exec.Exec.batch && List.length qs >= 2);
      Obs.Trace.attr_i trace "tuples" tuples;
      Obs.Trace.attr_i trace "answers" answers;
      Obs.Trace.attr_i trace "dedup_dropped" (tuples - answers);
      out

let answer ?(exec = Exec.default) catalog q =
  let trace = exec.Exec.trace in
  Obs.Trace.span trace "answer" @@ fun () ->
  let outcome = Reformulate.reformulate ~exec catalog q in
  let answers =
    match outcome.Reformulate.rewritings with
    | [] ->
        (* No rewriting: empty relation shaped by the query head. *)
        empty_answers q
    | rewritings ->
        (* Workers read a snapshot, never the live peer relations. *)
        let db =
          if exec.Exec.jobs <= 1 then Catalog.global_db catalog
          else Catalog.global_db_snapshot catalog
        in
        eval_union ~exec db rewritings
  in
  if exec.Exec.metrics then begin
    Obs.Metrics.incr m_queries;
    Obs.Metrics.add m_answers (Relalg.Relation.cardinality answers)
  end;
  Obs.Trace.attr_i trace "rewritings"
    (List.length outcome.Reformulate.rewritings);
  Obs.Trace.attr_i trace "answers" (Relalg.Relation.cardinality answers);
  { answers; outcome }

let answers_list result =
  Relalg.Relation.tuples result.answers
  |> List.map (fun row -> Array.to_list (Array.map Relalg.Value.to_string row))
  |> List.sort (List.compare String.compare)

let reachable_peers catalog start =
  (* Adjacency as a hash multimap, visited as a hash set: linear in
     edges + reachable peers instead of quadratic list scans. *)
  let adjacency : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let add_edge a b =
    let existing = Option.value ~default:[] (Hashtbl.find_opt adjacency a) in
    Hashtbl.replace adjacency a (b :: existing)
  in
  List.iter
    (fun (_, m) ->
      let ps = Peer_mapping.peers_mentioned m in
      List.iter (fun a -> List.iter (fun b -> add_edge a b) ps) ps)
    (Catalog.mappings catalog);
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec bfs = function
    | [] -> ()
    | p :: rest ->
        if Hashtbl.mem visited p then bfs rest
        else begin
          Hashtbl.replace visited p ();
          let next = Option.value ~default:[] (Hashtbl.find_opt adjacency p) in
          bfs (next @ rest)
        end
  in
  bfs [ start ];
  Hashtbl.fold (fun p () acc -> p :: acc) visited []
  |> List.sort String.compare
