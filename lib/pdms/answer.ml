type result = {
  answers : Relalg.Relation.t;
  outcome : Reformulate.outcome;
}

let empty_answers (q : Cq.Query.t) =
  let arity = Cq.Atom.arity q.Cq.Query.head in
  Relalg.Relation.create
    (Relalg.Schema.make q.Cq.Query.head.Cq.Atom.pred
       (List.init arity (Printf.sprintf "a%d")))

let eval_union ?(jobs = 1) db = function
  | [] -> invalid_arg "Answer.eval_union: empty union"
  | qs when jobs <= 1 || List.length qs < 2 -> Cq.Eval.run_union db qs
  | q0 :: _ as qs ->
      (* Parallel path. Pre-build every index so worker domains never
         mutate the shared database; each shard evaluates into its own
         partial relation, and partials are merged through one shared
         hash-backed dedup set. Shards are contiguous and merged in
         order, so the answer set is identical to the sequential one. *)
      Relalg.Database.freeze db;
      let shards = Util.Pool.chunk jobs qs in
      let partials =
        Util.Pool.map (List.length shards)
          (fun shard -> Cq.Eval.run_union db shard)
          shards
      in
      let out = Relalg.Relation.create (Cq.Eval.head_schema q0) in
      List.iter
        (fun partial ->
          Relalg.Relation.iter
            (fun row -> ignore (Relalg.Relation.insert_distinct out row))
            partial)
        partials;
      out

let answer ?pruning ?(jobs = 1) catalog q =
  let outcome = Reformulate.reformulate ?pruning ~jobs catalog q in
  let answers =
    match outcome.Reformulate.rewritings with
    | [] ->
        (* No rewriting: empty relation shaped by the query head. *)
        empty_answers q
    | rewritings ->
        (* Workers read a snapshot, never the live peer relations. *)
        let db =
          if jobs <= 1 then Catalog.global_db catalog
          else Catalog.global_db_snapshot catalog
        in
        eval_union ~jobs db rewritings
  in
  { answers; outcome }

let answers_list result =
  Relalg.Relation.tuples result.answers
  |> List.map (fun row -> Array.to_list (Array.map Relalg.Value.to_string row))
  |> List.sort (List.compare String.compare)

let reachable_peers catalog start =
  (* Adjacency as a hash multimap, visited as a hash set: linear in
     edges + reachable peers instead of quadratic list scans. *)
  let adjacency : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let add_edge a b =
    let existing = Option.value ~default:[] (Hashtbl.find_opt adjacency a) in
    Hashtbl.replace adjacency a (b :: existing)
  in
  List.iter
    (fun (_, m) ->
      let ps = Peer_mapping.peers_mentioned m in
      List.iter (fun a -> List.iter (fun b -> add_edge a b) ps) ps)
    (Catalog.mappings catalog);
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec bfs = function
    | [] -> ()
    | p :: rest ->
        if Hashtbl.mem visited p then bfs rest
        else begin
          Hashtbl.replace visited p ();
          let next = Option.value ~default:[] (Hashtbl.find_opt adjacency p) in
          bfs (next @ rest)
        end
  in
  bfs [ start ];
  Hashtbl.fold (fun p () acc -> p :: acc) visited []
  |> List.sort String.compare
