(** Counting-based incremental maintenance of materialised conjunctive
    views under updategrams — "when a view is recomputed on a Piazza
    node, the query optimizer decides which updategrams to use"
    (Section 3.1.2). Each output tuple carries its derivation count, so
    deletions are exact without recomputation. *)

type t

val create : ?exec:Exec.t -> Relalg.Database.t -> Cq.Query.t -> t
(** Materialise the view over the database. The database is captured by
    reference: all subsequent updates must flow through {!apply} (or be
    followed by {!refresh}). The execution context (default
    {!Exec.default}) governs later {!apply} calls that don't override
    it. Raises [Invalid_argument] on unsafe queries. *)

val query : t -> Cq.Query.t
val tuples : t -> Relalg.Relation.tuple list
val cardinality : t -> int

val apply : ?exec:Exec.t -> t -> Updategram.t -> unit
(** Apply the updategram to the underlying database {e and} maintain
    the view (deletes processed before inserts).  With
    [exec.incremental] (the default) the view's derivation counts are
    patched per touched tuple under a [view.maintain] span; with
    [~exec:(Exec.with_incremental false)] the database is mutated and
    the view fully recomputed — the A/B baseline with identical final
    contents.  [exec] defaults to the context given at {!create}. *)

val refresh : t -> unit
(** Full recomputation from the current database state. *)

(** {2 Maintenance without mutating the database}

    For several views sharing one database (update propagation), the
    caller owns the mutation and invokes these around it. *)

val maintain_insert : t -> rel:string -> Relalg.Relation.tuple -> unit
(** Count the new derivations using the tuple. Call {e after} the tuple
    was (distinctly) inserted into the shared database. *)

val maintain_delete : t -> rel:string -> Relalg.Relation.tuple -> unit
(** Discount the derivations using the tuple. Call {e before} the tuple
    is removed from the shared database. *)

val delta_bindings_processed : t -> int
(** Total satisfying assignments enumerated by incremental maintenance —
    the work metric the E9 benchmark reports against recomputation. *)
