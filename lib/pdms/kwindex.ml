(* Incremental inverted index over stored relations.

   One entry per relation, keyed on {!Relalg.Relation.uid} and guarded
   by {!Relalg.Relation.version} — the same discipline as
   {!Relalg.Stats} and the token memo this module replaces, except the
   store evicts a single least-recently-used entry on overflow instead
   of dumping everything (a reset would force a thundering rebuild of
   every live relation on the next search).

   Byte-identity with the brute-force scorer is load-bearing: the
   [--no-index] escape hatch must produce the same hit lists bit for
   bit. Three invariants keep it:
   - per-tuple term frequencies are accumulated with the same
     [+. 1.0] folds as {!Util.Tfidf.vectorize} and stored in ascending
     token order, so norms fold in the exact op order of [vectorize];
   - a tuple's weight is computed as [(tf *. idf) /. norm] — the two
     rounding steps [vectorize] performs, in the same order;
   - [probe] walks the query vector in ascending token order, so each
     candidate's partial dot products arrive in the order
     {!Util.Tfidf.cosine}'s merge would add them.
   Document frequencies merge as exact integer counts; converting with
   [float_of_int] equals [build]'s repeated [+. 1.0] for any count
   below 2^53. *)

module Smap = Map.Make (String)

type posting = { ids : int array; tfs : float array; max_tf : float }
(* [ids] ascending tuple ids; [tfs.(i)] is the term frequency of the
   token in tuple [ids.(i)]. *)

type entry = {
  uid : int;
  version : int;
  peer : string;
  rel_name : string;
  tuples : Relalg.Relation.tuple array;
  token_tfs : (string * float) array array;
      (* per tuple, ascending token order *)
  postings : (string, posting) Hashtbl.t;
  doc_count : int;
  mutable norms : (int * float array * float) option;
      (* (corpus stamp, per-tuple norm, min positive norm) *)
  mutable last_used : int;
}

type probe = {
  source : entry;
  scores : float array;
  candidates : int array;
  bound : float;
}

let m_builds = Obs.Metrics.counter "pdms.kwindex.builds"
let m_postings = Obs.Metrics.counter "pdms.kwindex.postings"
let m_df_merges = Obs.Metrics.counter "pdms.kwindex.df_merges"
let h_posting_len = Obs.Metrics.histogram "pdms.kwindex.posting_len"

let tuple_tokens tuple =
  Array.to_list tuple
  |> List.concat_map (fun v -> Util.Tokenize.words (Relalg.Value.to_string v))
  |> List.map Util.Stemmer.stem

let build ?(metrics = true) ~rel_name rel =
  let peer =
    match Distributed.owner_of_pred rel_name with Some p -> p | None -> ""
  in
  let tuples = Array.of_list (Relalg.Relation.tuples rel) in
  let token_tfs =
    Array.map
      (fun tuple ->
        let tf =
          List.fold_left
            (fun acc tok ->
              Smap.update tok
                (function None -> Some 1.0 | Some x -> Some (x +. 1.0))
                acc)
            Smap.empty (tuple_tokens tuple)
        in
        Array.of_list (Smap.bindings tf))
      tuples
  in
  let acc : (string, (int * float) list) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun id tfs ->
      Array.iter
        (fun (tok, tf) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt acc tok) in
          Hashtbl.replace acc tok ((id, tf) :: prev))
        tfs)
    token_tfs;
  let postings = Hashtbl.create (max 16 (Hashtbl.length acc)) in
  Hashtbl.iter
    (fun tok rev ->
      let l = List.rev rev in
      let ids = Array.of_list (List.map fst l) in
      let tfs = Array.of_list (List.map snd l) in
      let max_tf = Array.fold_left Float.max 0.0 tfs in
      if metrics then
        Obs.Metrics.observe h_posting_len (float_of_int (Array.length ids));
      Hashtbl.replace postings tok { ids; tfs; max_tf })
    acc;
  if metrics then begin
    Obs.Metrics.incr m_builds;
    Obs.Metrics.add m_postings (Hashtbl.length postings)
  end;
  {
    uid = Relalg.Relation.uid rel;
    version = Relalg.Relation.version rel;
    peer;
    rel_name;
    tuples;
    token_tfs;
    postings;
    doc_count = Array.length tuples;
    norms = None;
    last_used = 0;
  }

(* uid -> entry. Bounded; overflow evicts the single least-recently-used
   entry (O(store) scan, paid only at the cap). *)
let store : (int, entry) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let max_entries = 1024
let tick = ref 0

(* Caller holds [lock]. *)
let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun uid e acc ->
        match acc with
        | Some (_, lu) when lu <= e.last_used -> acc
        | _ -> Some (uid, e.last_used))
      store None
  in
  match victim with Some (uid, _) -> Hashtbl.remove store uid | None -> ()

let get ?(metrics = true) ~rel_name rel =
  let uid = Relalg.Relation.uid rel in
  let version = Relalg.Relation.version rel in
  Mutex.lock lock;
  incr tick;
  let now = !tick in
  let cached =
    match Hashtbl.find_opt store uid with
    | Some e when e.version = version ->
        e.last_used <- now;
        Some e
    | Some _ | None -> None
  in
  Mutex.unlock lock;
  match cached with
  | Some e -> (e, false)
  | None ->
      (* Build outside the lock: racing searches may both scan the
         relation, but they write identical entries. *)
      let e = build ~metrics ~rel_name rel in
      e.last_used <- now;
      Mutex.lock lock;
      if (not (Hashtbl.mem store uid)) && Hashtbl.length store >= max_entries
      then evict_lru ();
      Hashtbl.replace store uid e;
      Mutex.unlock lock;
      (e, true)

let store_size () =
  Mutex.lock lock;
  let n = Hashtbl.length store in
  Mutex.unlock lock;
  n

(* The global corpus depends on the reachable set (down peers change df
   and n per query), so it can't live in the per-relation entries. A
   one-slot memo keyed on the reachable [(uid, version)] list serves the
   repeated-search regime; each recompute mints a fresh stamp that
   invalidates the per-entry norm caches. *)
let stamp_counter = ref 0

let corpus_memo : ((int * int) list * int * Util.Tfidf.corpus) option ref =
  ref None

let corpus ?(metrics = true) entries =
  let key = List.map (fun e -> (e.uid, e.version)) entries in
  Mutex.lock lock;
  let memo = !corpus_memo in
  Mutex.unlock lock;
  match memo with
  | Some (k, stamp, c) when k = key -> (stamp, c)
  | _ ->
      let df : (string, int) Hashtbl.t = Hashtbl.create 1024 in
      let n = ref 0 in
      List.iter
        (fun e ->
          n := !n + e.doc_count;
          Hashtbl.iter
            (fun tok p ->
              let prev = Option.value ~default:0 (Hashtbl.find_opt df tok) in
              Hashtbl.replace df tok (prev + Array.length p.ids))
            e.postings)
        entries;
      let counts = Hashtbl.fold (fun tok c acc -> (tok, c) :: acc) df [] in
      let c = Util.Tfidf.of_counts ~n:!n counts in
      Mutex.lock lock;
      incr stamp_counter;
      let stamp = !stamp_counter in
      corpus_memo := Some (key, stamp, c);
      Mutex.unlock lock;
      if metrics then Obs.Metrics.incr m_df_merges;
      (stamp, c)

let norms entry ~stamp c =
  match entry.norms with
  | Some (s, ns, mn) when s = stamp -> (ns, mn)
  | _ ->
      let ns =
        Array.map
          (fun tfs ->
            sqrt
              (Array.fold_left
                 (fun acc (tok, tf) ->
                   let w = tf *. Util.Tfidf.idf c tok in
                   acc +. (w *. w))
                 0.0 tfs))
          entry.token_tfs
      in
      let mn =
        Array.fold_left
          (fun acc n -> if n > 0.0 && n < acc then n else acc)
          infinity ns
      in
      entry.norms <- Some (stamp, ns, mn);
      (ns, mn)

let probe entry ~stamp c query_vec =
  let ns, min_norm = norms entry ~stamp c in
  let scores = Array.make (max 1 entry.doc_count) 0.0 in
  let seen = Array.make (max 1 entry.doc_count) false in
  let touched = ref [] in
  let bound = ref 0.0 in
  List.iter
    (fun (tok, qw) ->
      match Hashtbl.find_opt entry.postings tok with
      | None -> ()
      | Some p ->
          let idf = Util.Tfidf.idf c tok in
          (* Every true per-token contribution is dominated term-wise
             by [qw *. ((max_tf *. idf) /. min_norm)]; round-to-nearest
             is monotone, so the accumulated bound dominates every
             candidate's final score. *)
          bound := !bound +. (qw *. ((p.max_tf *. idf) /. min_norm));
          for i = 0 to Array.length p.ids - 1 do
            let id = p.ids.(i) in
            let w = (p.tfs.(i) *. idf) /. ns.(id) in
            scores.(id) <- scores.(id) +. (qw *. w);
            if not seen.(id) then begin
              seen.(id) <- true;
              touched := id :: !touched
            end
          done)
    query_vec;
  let candidates = Array.of_list (List.sort Int.compare !touched) in
  { source = entry; scores; candidates; bound = !bound }

let reset () =
  Mutex.lock lock;
  Hashtbl.reset store;
  corpus_memo := None;
  tick := 0;
  Mutex.unlock lock
