(* Incremental inverted index over stored relations.

   One entry per relation, keyed on {!Relalg.Relation.uid} and guarded
   by {!Relalg.Relation.version} — the same discipline as
   {!Relalg.Stats} and the token memo this module replaces, except the
   store evicts a single least-recently-used entry on overflow instead
   of dumping everything (a reset would force a thundering rebuild of
   every live relation on the next search).

   Since the delta pipeline landed, a stale entry is {e patched} from
   the relation's retained {!Relalg.Relation.deltas_since} instead of
   rebuilt: removed tuples are tombstoned (their slot stays, marked
   dead, their postings spliced out) and inserted tuples take fresh
   ascending slots, so postings stay id-ascending without renumbering.
   A full rebuild happens only on a cold entry, when the delta log was
   truncated past the cached version (counted in
   [pdms.delta.rebuild_fallbacks]), or with [~incremental:false].

   Byte-identity with the brute-force scorer is load-bearing: the
   [--no-index] escape hatch must produce the same hit lists bit for
   bit. Three invariants keep it:
   - per-tuple term frequencies are accumulated with the same
     [+. 1.0] folds as {!Util.Tfidf.vectorize} and stored in ascending
     token order, so norms fold in the exact op order of [vectorize];
   - a tuple's weight is computed as [(tf *. idf) /. norm] — the two
     rounding steps [vectorize] performs, in the same order;
   - [probe] walks the query vector in ascending token order, so each
     candidate's partial dot products arrive in the order
     {!Util.Tfidf.cosine}'s merge would add them.
   Document frequencies merge as exact integer counts; converting with
   [float_of_int] equals [build]'s repeated [+. 1.0] for any count
   below 2^53.

   Patching preserves all three: live docs keep their tf vectors
   bit-for-bit, df counts stay exact integers ([len] per posting), and
   candidate enumeration stays ascending by slot — dead slots are
   simply skipped, so the relative order of live docs (hence every
   Topk tie-break) equals a compacting rebuild's. *)

module Smap = Map.Make (String)

type posting = {
  mutable ids : int array;
  mutable tfs : float array;
  mutable len : int;
  mutable max_tf : float;
}
(* [ids.(0 .. len-1)] ascending live slot ids; [tfs.(i)] is the term
   frequency of the token in slot [ids.(i)].  Arrays are capacities —
   only the first [len] cells are meaningful. *)

type entry = {
  uid : int;
  mutable version : int;
  peer : string;
  rel_name : string;
  mutable tuples : Relalg.Relation.tuple array;
  mutable token_tfs : (string * float) array array;
      (* per slot, ascending token order; [[||]] on dead slots *)
  mutable live : bool array;
  mutable n_slots : int;
  postings : (string, posting) Hashtbl.t;
  mutable doc_count : int;  (* live slots *)
  mutable norms : (int * float array * float) option;
      (* (corpus stamp, per-slot norm, min positive norm) *)
  mutable last_used : int;
}

type probe = {
  source : entry;
  scores : float array;
  candidates : int array;
  bound : float;
}

let m_builds = Obs.Metrics.counter "pdms.kwindex.builds"
let m_postings = Obs.Metrics.counter "pdms.kwindex.postings"
let m_df_merges = Obs.Metrics.counter "pdms.kwindex.df_merges"
let h_posting_len = Obs.Metrics.histogram "pdms.kwindex.posting_len"
let m_patched = Obs.Metrics.counter "pdms.delta.patched_postings"
let m_fallbacks = Obs.Metrics.counter "pdms.delta.rebuild_fallbacks"

let tuple_tokens tuple =
  Array.to_list tuple
  |> List.concat_map (fun v -> Util.Tokenize.words (Relalg.Value.to_string v))
  |> List.map Util.Stemmer.stem

(* The tf map fold below is shared verbatim between [build] and
   [add_doc] — same op order, same rounding. *)
let tuple_tfs tuple =
  let tf =
    List.fold_left
      (fun acc tok ->
        Smap.update tok
          (function None -> Some 1.0 | Some x -> Some (x +. 1.0))
          acc)
      Smap.empty (tuple_tokens tuple)
  in
  Array.of_list (Smap.bindings tf)

let build ?(metrics = true) ~rel_name rel =
  let peer =
    match Distributed.owner_of_pred rel_name with Some p -> p | None -> ""
  in
  let tuples = Array.of_list (Relalg.Relation.tuples rel) in
  let token_tfs = Array.map tuple_tfs tuples in
  let acc : (string, (int * float) list) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun id tfs ->
      Array.iter
        (fun (tok, tf) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt acc tok) in
          Hashtbl.replace acc tok ((id, tf) :: prev))
        tfs)
    token_tfs;
  let postings = Hashtbl.create (max 16 (Hashtbl.length acc)) in
  Hashtbl.iter
    (fun tok rev ->
      let l = List.rev rev in
      let ids = Array.of_list (List.map fst l) in
      let tfs = Array.of_list (List.map snd l) in
      let max_tf = Array.fold_left Float.max 0.0 tfs in
      if metrics then
        Obs.Metrics.observe h_posting_len (float_of_int (Array.length ids));
      Hashtbl.replace postings tok { ids; tfs; len = Array.length ids; max_tf })
    acc;
  if metrics then begin
    Obs.Metrics.incr m_builds;
    Obs.Metrics.add m_postings (Hashtbl.length postings)
  end;
  let n = Array.length tuples in
  {
    uid = Relalg.Relation.uid rel;
    version = Relalg.Relation.version rel;
    peer;
    rel_name;
    tuples;
    token_tfs;
    live = Array.make (max 1 n) true;
    n_slots = n;
    postings;
    doc_count = n;
    norms = None;
    last_used = 0;
  }

(* {2 Delta patching}  (caller holds [lock]) *)

let tuple_equal a b =
  Array.length a = Array.length b && Array.for_all2 Relalg.Value.equal a b

let find_live_slot e tuple =
  let rec go i =
    if i >= e.n_slots then None
    else if e.live.(i) && tuple_equal e.tuples.(i) tuple then Some i
    else go (i + 1)
  in
  go 0

(* Tombstone the lowest live slot holding [tuple]: splice its id out of
   every posting it appears in (recomputing max_tf by scan) and blank
   its tf vector so norms see a zero-norm dead doc. *)
let remove_doc e touched tuple =
  match find_live_slot e tuple with
  | None -> ()
  | Some slot ->
      Array.iter
        (fun (tok, _) ->
          Hashtbl.replace touched tok ();
          match Hashtbl.find_opt e.postings tok with
          | None -> ()
          | Some p ->
              let j = ref (-1) in
              for i = 0 to p.len - 1 do
                if p.ids.(i) = slot then j := i
              done;
              if !j >= 0 then begin
                for i = !j to p.len - 2 do
                  p.ids.(i) <- p.ids.(i + 1);
                  p.tfs.(i) <- p.tfs.(i + 1)
                done;
                p.len <- p.len - 1;
                if p.len = 0 then Hashtbl.remove e.postings tok
                else begin
                  let m = ref 0.0 in
                  for i = 0 to p.len - 1 do
                    m := Float.max !m p.tfs.(i)
                  done;
                  p.max_tf <- !m
                end
              end)
        e.token_tfs.(slot);
      e.token_tfs.(slot) <- [||];
      e.live.(slot) <- false;
      e.doc_count <- e.doc_count - 1

(* Append [tuple] at a fresh slot; since the new slot id exceeds every
   existing one, pushing it onto each posting keeps ids ascending. *)
let add_doc e touched tuple =
  let tfs = tuple_tfs tuple in
  let slot = e.n_slots in
  if slot >= Array.length e.tuples then begin
    let cap = max 4 (2 * Array.length e.tuples) in
    let grow blank a =
      let a' = Array.make cap blank in
      Array.blit a 0 a' 0 e.n_slots;
      a'
    in
    e.tuples <- grow [||] e.tuples;
    e.token_tfs <- grow [||] e.token_tfs;
    e.live <- grow false e.live
  end;
  e.tuples.(slot) <- tuple;
  e.token_tfs.(slot) <- tfs;
  e.live.(slot) <- true;
  e.n_slots <- e.n_slots + 1;
  e.doc_count <- e.doc_count + 1;
  Array.iter
    (fun (tok, tf) ->
      Hashtbl.replace touched tok ();
      match Hashtbl.find_opt e.postings tok with
      | Some p ->
          if p.len >= Array.length p.ids then begin
            let cap = max 4 (2 * Array.length p.ids) in
            let ids' = Array.make cap 0 in
            Array.blit p.ids 0 ids' 0 p.len;
            p.ids <- ids';
            let tfs' = Array.make cap 0.0 in
            Array.blit p.tfs 0 tfs' 0 p.len;
            p.tfs <- tfs'
          end;
          p.ids.(p.len) <- slot;
          p.tfs.(p.len) <- tf;
          p.len <- p.len + 1;
          p.max_tf <- Float.max p.max_tf tf
      | None ->
          Hashtbl.replace e.postings tok
            { ids = [| slot |]; tfs = [| tf |]; len = 1; max_tf = tf })
    tfs

let patch ~metrics e rel deltas =
  let touched = Hashtbl.create 16 in
  List.iter
    (fun d ->
      List.iter (remove_doc e touched) (Relalg.Relation.Delta.dels d);
      List.iter (add_doc e touched) (Relalg.Relation.Delta.adds d))
    deltas;
  e.version <- Relalg.Relation.version rel;
  e.norms <- None;
  if metrics then Obs.Metrics.add m_patched (Hashtbl.length touched)

(* uid -> entry. Bounded; overflow evicts the single least-recently-used
   entry (O(store) scan, paid only at the cap). *)
let store : (int, entry) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let max_entries = 1024
let tick = ref 0

(* Caller holds [lock]. *)
let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun uid e acc ->
        match acc with
        | Some (_, lu) when lu <= e.last_used -> acc
        | _ -> Some (uid, e.last_used))
      store None
  in
  match victim with Some (uid, _) -> Hashtbl.remove store uid | None -> ()

let get ?(metrics = true) ?(incremental = true) ~rel_name rel =
  let uid = Relalg.Relation.uid rel in
  let version = Relalg.Relation.version rel in
  Mutex.lock lock;
  incr tick;
  let now = !tick in
  let cached =
    match Hashtbl.find_opt store uid with
    | Some e when e.version = version ->
        e.last_used <- now;
        Some e
    | Some e when incremental -> (
        (* Stale entry: patch from the retained deltas under the lock —
           concurrent searches sharing the store serialise their index
           refresh here instead of racing on duplicate rebuilds. *)
        match Relalg.Relation.deltas_since rel e.version with
        | Some ds ->
            patch ~metrics e rel ds;
            e.last_used <- now;
            Some e
        | None ->
            if metrics then Obs.Metrics.incr m_fallbacks;
            None)
    | Some _ | None -> None
  in
  Mutex.unlock lock;
  match cached with
  | Some e -> (e, false)
  | None ->
      (* Build outside the lock: racing searches may both scan the
         relation, but they write identical entries. *)
      let e = build ~metrics ~rel_name rel in
      e.last_used <- now;
      Mutex.lock lock;
      if (not (Hashtbl.mem store uid)) && Hashtbl.length store >= max_entries
      then evict_lru ();
      Hashtbl.replace store uid e;
      Mutex.unlock lock;
      (e, true)

let store_size () =
  Mutex.lock lock;
  let n = Hashtbl.length store in
  Mutex.unlock lock;
  n

(* The global corpus depends on the reachable set (down peers change df
   and n per query), so it can't live in the per-relation entries. A
   one-slot memo keyed on the reachable [(uid, version)] list serves the
   repeated-search regime; each recompute mints a fresh stamp that
   invalidates the per-entry norm caches. *)
let stamp_counter = ref 0

let corpus_memo : ((int * int) list * int * Util.Tfidf.corpus) option ref =
  ref None

let corpus ?(metrics = true) entries =
  let key = List.map (fun e -> (e.uid, e.version)) entries in
  Mutex.lock lock;
  let memo = !corpus_memo in
  Mutex.unlock lock;
  match memo with
  | Some (k, stamp, c) when k = key -> (stamp, c)
  | _ ->
      let df : (string, int) Hashtbl.t = Hashtbl.create 1024 in
      let n = ref 0 in
      List.iter
        (fun e ->
          n := !n + e.doc_count;
          Hashtbl.iter
            (fun tok p ->
              let prev = Option.value ~default:0 (Hashtbl.find_opt df tok) in
              Hashtbl.replace df tok (prev + p.len))
            e.postings)
        entries;
      let counts = Hashtbl.fold (fun tok c acc -> (tok, c) :: acc) df [] in
      let c = Util.Tfidf.of_counts ~n:!n counts in
      Mutex.lock lock;
      incr stamp_counter;
      let stamp = !stamp_counter in
      corpus_memo := Some (key, stamp, c);
      Mutex.unlock lock;
      if metrics then Obs.Metrics.incr m_df_merges;
      (stamp, c)

let norms entry ~stamp c =
  match entry.norms with
  | Some (s, ns, mn) when s = stamp -> (ns, mn)
  | _ ->
      (* Dead slots carry [[||]] tf vectors, so they norm to 0.0 and
         stay out of the min below. *)
      let ns =
        Array.init entry.n_slots (fun id ->
            sqrt
              (Array.fold_left
                 (fun acc (tok, tf) ->
                   let w = tf *. Util.Tfidf.idf c tok in
                   acc +. (w *. w))
                 0.0
                 entry.token_tfs.(id)))
      in
      let mn =
        Array.fold_left
          (fun acc n -> if n > 0.0 && n < acc then n else acc)
          infinity ns
      in
      entry.norms <- Some (stamp, ns, mn);
      (ns, mn)

let probe entry ~stamp c query_vec =
  let ns, min_norm = norms entry ~stamp c in
  let scores = Array.make (max 1 entry.n_slots) 0.0 in
  let seen = Array.make (max 1 entry.n_slots) false in
  let touched = ref [] in
  let bound = ref 0.0 in
  List.iter
    (fun (tok, qw) ->
      match Hashtbl.find_opt entry.postings tok with
      | None -> ()
      | Some p ->
          let idf = Util.Tfidf.idf c tok in
          (* Every true per-token contribution is dominated term-wise
             by [qw *. ((max_tf *. idf) /. min_norm)]; round-to-nearest
             is monotone, so the accumulated bound dominates every
             candidate's final score. *)
          bound := !bound +. (qw *. ((p.max_tf *. idf) /. min_norm));
          for i = 0 to p.len - 1 do
            let id = p.ids.(i) in
            let w = (p.tfs.(i) *. idf) /. ns.(id) in
            scores.(id) <- scores.(id) +. (qw *. w);
            if not seen.(id) then begin
              seen.(id) <- true;
              touched := id :: !touched
            end
          done)
    query_vec;
  let candidates = Array.of_list (List.sort Int.compare !touched) in
  { source = entry; scores; candidates; bound = !bound }

let reset () =
  Mutex.lock lock;
  Hashtbl.reset store;
  corpus_memo := None;
  tick := 0;
  Mutex.unlock lock
