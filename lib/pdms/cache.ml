(* Hash-backed LRU: a key -> entry hashtable for O(1) lookup, an
   intrusive doubly-linked recency list (head = most recent, tail =
   least) for O(1) touch/evict, and an inverted predicate -> entries
   index so [invalidate] visits only the affected entries. The seed
   stored entries in a list: O(n) lookup, O(n) eviction by minimum
   timestamp, O(n) invalidation. *)

type entry = {
  key : string;
  result : Answer.result;
  reads : string list;  (* stored predicates the rewritings mention *)
  mutable prev : entry option;  (* towards the most recently used *)
  mutable next : entry option;  (* towards the least recently used *)
}

type t = {
  catalog : Catalog.t;
  capacity : int;
  table : (string, entry) Hashtbl.t;
  (* pred -> (key -> entry): which live entries read each predicate. *)
  by_pred : (string, (string, entry) Hashtbl.t) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
  mutable invalidated_count : int;
}

let m_hits = Obs.Metrics.counter "pdms.cache.hits"
let m_misses = Obs.Metrics.counter "pdms.cache.misses"
let m_evictions = Obs.Metrics.counter "pdms.cache.evictions"
let m_invalidated = Obs.Metrics.counter "pdms.cache.invalidated"
let m_kept = Obs.Metrics.counter "pdms.delta.cache_kept"

let create ?(capacity = 64) catalog () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    catalog;
    capacity;
    table = Hashtbl.create (min capacity 1024);
    by_pred = Hashtbl.create 64;
    mru = None;
    lru = None;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
    invalidated_count = 0;
  }

(* Alpha-normalised key: queries equal up to variable renaming share an
   entry. *)
let key_of (q : Cq.Query.t) =
  let mapping = Hashtbl.create 8 in
  let rename = function
    | Cq.Term.Var x ->
        let x' =
          match Hashtbl.find_opt mapping x with
          | Some x' -> x'
          | None ->
              let x' = Printf.sprintf "v%d" (Hashtbl.length mapping) in
              Hashtbl.replace mapping x x';
              x'
        in
        Cq.Term.Var x'
    | Cq.Term.Const _ as c -> c
  in
  let head = Cq.Atom.map_terms rename q.Cq.Query.head in
  let body = List.map (Cq.Atom.map_terms rename) q.Cq.Query.body in
  Cq.Atom.to_string head ^ ":-"
  ^ String.concat "," (List.map Cq.Atom.to_string body)

let reads_of (result : Answer.result) =
  List.concat_map Cq.Query.body_preds result.Answer.outcome.Reformulate.rewritings
  |> List.sort_uniq String.compare

(* Recency-list surgery — all O(1). *)

let unlink t e =
  (match e.prev with
  | Some p -> p.next <- e.next
  | None -> t.mru <- e.next);
  (match e.next with
  | Some n -> n.prev <- e.prev
  | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some e | None -> ());
  t.mru <- Some e;
  match t.lru with None -> t.lru <- Some e | Some _ -> ()

let touch t e =
  match t.mru with
  | Some m when m == e -> ()
  | _ ->
      unlink t e;
      push_front t e

let remove t e =
  unlink t e;
  Hashtbl.remove t.table e.key;
  List.iter
    (fun pred ->
      match Hashtbl.find_opt t.by_pred pred with
      | None -> ()
      | Some bucket ->
          Hashtbl.remove bucket e.key;
          if Hashtbl.length bucket = 0 then Hashtbl.remove t.by_pred pred)
    e.reads

let add t e =
  push_front t e;
  Hashtbl.replace t.table e.key e;
  List.iter
    (fun pred ->
      let bucket =
        match Hashtbl.find_opt t.by_pred pred with
        | Some b -> b
        | None ->
            let b = Hashtbl.create 8 in
            Hashtbl.replace t.by_pred pred b;
            b
      in
      Hashtbl.replace bucket e.key e)
    e.reads

let answer ?(exec = Exec.default) t q =
  let trace = exec.Exec.trace in
  Obs.Trace.span trace "cache.answer" @@ fun () ->
  let key = key_of q in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      touch t e;
      t.hit_count <- t.hit_count + 1;
      Obs.Metrics.incr m_hits;
      Obs.Trace.attr_b trace "hit" true;
      e.result
  | None ->
      t.miss_count <- t.miss_count + 1;
      Obs.Metrics.incr m_misses;
      Obs.Trace.attr_b trace "hit" false;
      let result = Answer.answer ~exec t.catalog q in
      let entry =
        { key; result; reads = reads_of result; prev = None; next = None }
      in
      add t entry;
      if Hashtbl.length t.table > t.capacity then (
        match t.lru with
        | Some victim ->
            remove t victim;
            t.eviction_count <- t.eviction_count + 1;
            Obs.Metrics.incr m_evictions
        | None -> ());
      result

(* Can [tuple] ground [atom]'s argument pattern?  Constants must agree
   and repeated variables must bind consistently — a cheap one-atom
   unification. *)
let atom_matches (atom : Cq.Atom.t) tuple =
  List.length atom.Cq.Atom.args = Array.length tuple
  && begin
       let env = Hashtbl.create 4 in
       let rec go i = function
         | [] -> true
         | Cq.Term.Const c :: rest ->
             Relalg.Value.equal c tuple.(i) && go (i + 1) rest
         | Cq.Term.Var x :: rest -> (
             match Hashtbl.find_opt env x with
             | Some v -> Relalg.Value.equal v tuple.(i) && go (i + 1) rest
             | None ->
                 Hashtbl.replace env x tuple.(i);
                 go (i + 1) rest)
       in
       go 0 atom.Cq.Atom.args
     end

(* A cached answer can only change if some body atom over the touched
   relation unifies with some changed tuple; an entry where none does is
   provably unaffected and may be kept. *)
let entry_affected rel_name changed e =
  List.exists
    (fun (q : Cq.Query.t) ->
      List.exists
        (fun (a : Cq.Atom.t) ->
          String.equal a.Cq.Atom.pred rel_name
          && List.exists (atom_matches a) changed)
        q.Cq.Query.body)
    e.result.Answer.outcome.Reformulate.rewritings

let invalidate ?(exec = Exec.default) t (u : Updategram.t) =
  match Hashtbl.find_opt t.by_pred u.Updategram.rel with
  | None -> 0
  | Some bucket ->
      (* Snapshot first: [remove] mutates the bucket being folded. *)
      let changed = u.Updategram.deletes @ u.Updategram.inserts in
      let victims, kept =
        (* An empty updategram carries no tuples to probe against: it is
           a wildcard "this relation changed somehow" signal and drops
           every reader, as does the non-incremental baseline. *)
        if exec.Exec.incremental && changed <> [] then
          Hashtbl.fold
            (fun _ e (vs, ks) ->
              if entry_affected u.Updategram.rel changed e then (e :: vs, ks)
              else (vs, ks + 1))
            bucket ([], 0)
        else (Hashtbl.fold (fun _ e acc -> e :: acc) bucket [], 0)
      in
      List.iter (remove t) victims;
      if kept > 0 && exec.Exec.metrics then Obs.Metrics.add m_kept kept;
      let n = List.length victims in
      t.invalidated_count <- t.invalidated_count + n;
      Obs.Metrics.add m_invalidated n;
      n

let invalidate_all t =
  let n = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  Hashtbl.reset t.by_pred;
  t.mru <- None;
  t.lru <- None;
  t.invalidated_count <- t.invalidated_count + n;
  Obs.Metrics.add m_invalidated n

let hits t = t.hit_count
let misses t = t.miss_count
let entries t = Hashtbl.length t.table

type stats = { hits : int; misses : int; evictions : int; invalidated : int }

let stats t =
  {
    hits = t.hit_count;
    misses = t.miss_count;
    evictions = t.eviction_count;
    invalidated = t.invalidated_count;
  }
