exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

(* CRC-32, IEEE 802.3 polynomial (reflected: 0xEDB88320), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand !c 0xFFl) lxor Char.code ch in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Writers *)

(* LEB128 over the raw bit pattern: [lsr] zero-fills, so a "negative"
   [n] (a zig-zagged large magnitude whose top bit is set) encodes as
   an unsigned word and round-trips exactly. *)
let add_bits buf n =
  let rec go n =
    if n >= 0 && n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

let add_varint buf n =
  if n < 0 then invalid_arg "Codec.add_varint: negative";
  add_bits buf n

let add_int buf n =
  (* Zig-zag: the sign lands in bit 0 so small magnitudes stay short. *)
  add_bits buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done

let add_value buf (v : Relalg.Value.t) =
  match v with
  | Relalg.Value.Null -> Buffer.add_char buf '\000'
  | Relalg.Value.Bool false -> Buffer.add_char buf '\001'
  | Relalg.Value.Bool true -> Buffer.add_char buf '\002'
  | Relalg.Value.Int i ->
      Buffer.add_char buf '\003';
      add_int buf i
  | Relalg.Value.Float f ->
      Buffer.add_char buf '\004';
      add_float buf f
  | Relalg.Value.Str s ->
      Buffer.add_char buf '\005';
      add_string buf s

let add_tuple buf (row : Relalg.Relation.tuple) =
  add_varint buf (Array.length row);
  Array.iter (add_value buf) row

let add_delta buf (d : Relalg.Relation.Delta.t) =
  let adds = Relalg.Relation.Delta.adds d
  and dels = Relalg.Relation.Delta.dels d in
  add_varint buf (List.length adds);
  List.iter (add_tuple buf) adds;
  add_varint buf (List.length dels);
  List.iter (add_tuple buf) dels

(* ------------------------------------------------------------------ *)
(* Readers *)

type reader = { buf : string; mutable pos : int }

let reader ?(pos = 0) buf = { buf; pos }
let pos r = r.pos
let at_end r = r.pos >= String.length r.buf

let byte r =
  if r.pos >= String.length r.buf then corrupt "unexpected end of input";
  let c = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_varint r =
  let rec go shift acc =
    if shift > Sys.int_size then corrupt "varint too long";
    let b = byte r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_int r =
  let z = read_varint r in
  (z lsr 1) lxor (-(z land 1))

let read_string r =
  let n = read_varint r in
  if n < 0 || r.pos + n > String.length r.buf then
    corrupt "string length %d runs past end" n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let read_float r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_value r =
  match byte r with
  | 0 -> Relalg.Value.Null
  | 1 -> Relalg.Value.Bool false
  | 2 -> Relalg.Value.Bool true
  | 3 -> Relalg.Value.Int (read_int r)
  | 4 -> Relalg.Value.Float (read_float r)
  | 5 -> Relalg.Value.Str (read_string r)
  | tag -> corrupt "unknown value tag %d" tag

let read_tuple r =
  let n = read_varint r in
  (* Each value is at least one byte, so a plausibility bound on [n]
     keeps a corrupt count from allocating a huge array. *)
  if n < 0 || n > String.length r.buf - r.pos then
    corrupt "tuple arity %d implausible" n;
  Array.init n (fun _ -> read_value r)

let read_tuples r =
  let n = read_varint r in
  if n < 0 || n > String.length r.buf - r.pos then
    corrupt "tuple count %d implausible" n;
  List.init n (fun _ -> read_tuple r)

let read_delta r =
  let adds = read_tuples r in
  let dels = read_tuples r in
  Relalg.Relation.Delta.make ~adds ~dels ()

(* ------------------------------------------------------------------ *)
(* Framing *)

let frame_overhead = 8

let le32 n =
  String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xFF))

let get_le32 s pos =
  let b i = Char.code s.[pos + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let frame payload =
  let crc = Int32.to_int (crc32 payload) land 0xFFFFFFFF in
  le32 (String.length payload) ^ le32 crc ^ payload

type frame_result = Frame of string * int | End | Torn of string

let read_frame s pos =
  let len = String.length s in
  if pos >= len then End
  else if pos + frame_overhead > len then Torn "truncated frame header"
  else
    let plen = get_le32 s pos in
    let crc = get_le32 s (pos + 4) in
    if plen < 0 || pos + frame_overhead + plen > len then
      Torn (Printf.sprintf "frame length %d runs past end of input" plen)
    else
      let payload = String.sub s (pos + frame_overhead) plen in
      if Int32.to_int (crc32 payload) land 0xFFFFFFFF <> crc then
        Torn "frame checksum mismatch"
      else Frame (payload, pos + frame_overhead + plen)
