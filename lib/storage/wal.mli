(** A per-database write-ahead log of [(relation, delta)] records.

    Every record carries a strictly increasing sequence number assigned
    at append time; a {!Snapshot} stamped with sequence [s] covers
    exactly the records with [seq <= s], so recovery replays the suffix
    [seq > s] through {!Relalg.Relation.apply}.  Sequences are normally
    dense, but a gap is legal: when a torn append's effect survives in a
    later snapshot, the recovery layer {!reserve}s past the snapshot
    stamp so the replacement record is not shadowed by it.

    On-disk format: a magic line followed by one {!Codec.frame} per
    record (payload: varint seq, string relation, delta).  Reads are
    torn-tail tolerant — a truncated or corrupt {e final} record is the
    normal residue of a crash mid-append and is discarded, not fatal;
    {!open_dir} additionally truncates the file back to the valid
    prefix so the next append lands on a clean boundary.  A corrupt
    magic line, by contrast, means the file is not a WAL at all and is
    reported as an error.

    Instrumented with [pdms.wal.{appends,bytes,fsyncs,
    torn_tail_drops}] counters and a [wal.append] span on the optional
    trace ([pdms.wal.replayed] is bumped by the recovery layer, which
    knows which records actually replay). *)

type t

type record = {
  seq : int;
  rel : string;  (** the (stored) relation the delta applies to *)
  delta : Relalg.Relation.Delta.t;
}

val file : dir:string -> string
(** The log's path inside a data directory ([<dir>/wal.log]). *)

type read_result = {
  records : record list;  (** the valid prefix, in append order *)
  valid_bytes : int;  (** offset of the first byte past that prefix *)
  torn_bytes : int;  (** trailing bytes discarded as a torn tail *)
  torn_reason : string option;
}

val read : string -> (read_result, string) result
(** [read path] decodes the log file read-only.  A missing file is an
    empty log; a bad magic line or a non-monotonic sequence number is
    [Error]; a torn tail is tolerated and reported in the result.
    Bumps [pdms.wal.torn_tail_drops] when a tail is dropped. *)

val open_dir : dir:string -> (t * record list, string) result
(** Open (creating if absent) the log in [dir] for appending: decode
    the valid prefix, truncate any torn tail away, and position the
    writer at the end.  Returns the writer and the replayable records. *)

val append :
  ?trace:Obs.Trace.t -> ?sync:bool -> t -> rel:string ->
  Relalg.Relation.Delta.t -> int
(** Append one record, returning its sequence number.  The frame is
    flushed to the OS; [sync] (default [false]) additionally fsyncs.
    Bumps [pdms.wal.appends] and [pdms.wal.bytes]. *)

val sync : t -> unit
(** Flush and fsync. Bumps [pdms.wal.fsyncs]. *)

val next_seq : t -> int
(** The sequence number the next {!append} will use. *)

val reserve : t -> int -> unit
(** [reserve t n] ensures the next append uses a sequence [>= n].  Used
    after recovery when a snapshot covers sequences past the WAL's last
    surviving record (its tail was torn after the snapshot was cut):
    appending under a covered sequence would be silently skipped by
    future replays. *)

val size : t -> int
(** Current byte length of the log file (including the magic line). *)

val close : t -> unit
