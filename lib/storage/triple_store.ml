type triple = {
  subj : string;
  pred : string;
  obj : Relalg.Value.t;
  prov : Provenance.t;
}

(* Three single-component indexes; lookups intersect by filtering the
   most selective posting list. *)
type t = {
  mutable all : triple list;
  mutable size : int;
  by_subj : (string, triple list) Hashtbl.t;
  by_pred : (string, triple list) Hashtbl.t;
  by_obj : (Relalg.Value.t, triple list) Hashtbl.t;
  (* Statement identity for O(1) insert dedup, instead of scanning the
     subject posting list (O(n) on hot subjects). *)
  stmts : (string * string * Relalg.Value.t * string, unit) Hashtbl.t;
}

let create () =
  {
    all = [];
    size = 0;
    by_subj = Hashtbl.create 64;
    by_pred = Hashtbl.create 64;
    by_obj = Hashtbl.create 64;
    stmts = Hashtbl.create 64;
  }

let stmt_key tr = (tr.subj, tr.pred, tr.obj, tr.prov.Provenance.source_url)

let push tbl key triple =
  let existing = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (triple :: existing)

let add t ~subj ~pred ~obj ~prov =
  let triple = { subj; pred; obj; prov } in
  if not (Hashtbl.mem t.stmts (stmt_key triple)) then begin
    t.all <- triple :: t.all;
    t.size <- t.size + 1;
    Hashtbl.replace t.stmts (stmt_key triple) ();
    push t.by_subj subj triple;
    push t.by_pred pred triple;
    push t.by_obj obj triple
  end

let rebuild t remaining =
  t.all <- remaining;
  t.size <- List.length remaining;
  Hashtbl.reset t.by_subj;
  Hashtbl.reset t.by_pred;
  Hashtbl.reset t.by_obj;
  Hashtbl.reset t.stmts;
  List.iter
    (fun tr ->
      push t.by_subj tr.subj tr;
      push t.by_pred tr.pred tr;
      push t.by_obj tr.obj tr;
      Hashtbl.replace t.stmts (stmt_key tr) ())
    remaining

let remove_source t url =
  let keep, drop =
    List.partition
      (fun tr -> not (String.equal tr.prov.Provenance.source_url url))
      t.all
  in
  if drop <> [] then rebuild t keep;
  List.length drop

let size t = t.size
let triples t = t.all

let sources t =
  List.fold_left
    (fun acc tr ->
      let url = tr.prov.Provenance.source_url in
      if List.mem url acc then acc else url :: acc)
    [] t.all
  |> List.sort String.compare

let select ?subj ?pred ?obj t =
  let candidates =
    match (subj, pred, obj) with
    | Some s, _, _ -> Option.value ~default:[] (Hashtbl.find_opt t.by_subj s)
    | None, _, Some o -> Option.value ~default:[] (Hashtbl.find_opt t.by_obj o)
    | None, Some p, None -> Option.value ~default:[] (Hashtbl.find_opt t.by_pred p)
    | None, None, None -> t.all
  in
  List.filter
    (fun tr ->
      (match subj with None -> true | Some s -> String.equal tr.subj s)
      && (match pred with None -> true | Some p -> String.equal tr.pred p)
      && match obj with None -> true | Some o -> Relalg.Value.equal tr.obj o)
    candidates

type pattern = { psubj : Cq.Term.t; ppred : Cq.Term.t; pobj : Cq.Term.t }

let pat psubj ppred pobj = { psubj; ppred; pobj }

type binding = Relalg.Value.t Cq.Eval.Smap.t

module Smap = Cq.Eval.Smap

let resolve (b : binding) = function
  | Cq.Term.Const v -> Some v
  | Cq.Term.Var x -> Smap.find_opt x b

let as_string = function
  | Relalg.Value.Str s -> Some s
  | Relalg.Value.Null | Relalg.Value.Bool _ | Relalg.Value.Int _
  | Relalg.Value.Float _ ->
      None

(* Match one pattern under a binding, returning extended bindings paired
   with the matched triple. *)
let match_pattern t (b : binding) p : (binding * triple) list =
  let subj = Option.bind (resolve b p.psubj) as_string in
  let pred = Option.bind (resolve b p.ppred) as_string in
  let obj = resolve b p.pobj in
  let candidates = select ?subj ?pred ?obj t in
  List.filter_map
    (fun tr ->
      let bind_str acc term value =
        match acc with
        | None -> None
        | Some b -> (
            match term with
            | Cq.Term.Const v ->
                if Relalg.Value.equal v value then Some b else None
            | Cq.Term.Var x -> (
                match Smap.find_opt x b with
                | Some v -> if Relalg.Value.equal v value then Some b else None
                | None -> Some (Smap.add x value b)))
      in
      let acc = Some b in
      let acc = bind_str acc p.psubj (Relalg.Value.Str tr.subj) in
      let acc = bind_str acc p.ppred (Relalg.Value.Str tr.pred) in
      let acc = bind_str acc p.pobj tr.obj in
      Option.map (fun b -> (b, tr)) acc)
    candidates

(* Order patterns most-constant-first. *)
let selectivity p =
  let k = function Cq.Term.Const _ -> 1 | Cq.Term.Var _ -> 0 in
  k p.psubj + k p.ppred + k p.pobj

let query_provenanced t patterns =
  let patterns =
    List.stable_sort (fun a b -> compare (selectivity b) (selectivity a)) patterns
  in
  List.fold_left
    (fun states p ->
      List.concat_map
        (fun (b, provs) ->
          List.map
            (fun (b', tr) -> (b', tr.prov :: provs))
            (match_pattern t b p))
        states)
    [ (Smap.empty, []) ]
    patterns
  |> List.map (fun (b, provs) -> (b, List.rev provs))

let query t patterns = List.map fst (query_provenanced t patterns)
