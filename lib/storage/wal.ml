type t = {
  path : string;
  oc : out_channel;
  fd : Unix.file_descr;
  mutable next : int;  (* sequence number of the next append *)
  mutable bytes : int;  (* current file length *)
}

type record = { seq : int; rel : string; delta : Relalg.Relation.Delta.t }

let magic = "REVERE-WAL 1\n"

let file ~dir = Filename.concat dir "wal.log"

let m_appends = Obs.Metrics.counter "pdms.wal.appends"
let m_bytes = Obs.Metrics.counter "pdms.wal.bytes"
let m_fsyncs = Obs.Metrics.counter "pdms.wal.fsyncs"
let m_torn = Obs.Metrics.counter "pdms.wal.torn_tail_drops"

type read_result = {
  records : record list;
  valid_bytes : int;
  torn_bytes : int;
  torn_reason : string option;
}

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let decode_record payload =
  let r = Codec.reader payload in
  let seq = Codec.read_varint r in
  let rel = Codec.read_string r in
  let delta = Codec.read_delta r in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing record bytes");
  { seq; rel; delta }

let read path =
  if not (Sys.file_exists path) then
    Ok { records = []; valid_bytes = 0; torn_bytes = 0; torn_reason = None }
  else
    let s = read_all path in
    let mlen = String.length magic in
    if String.length s < mlen then begin
      (* Too short to even hold the magic: a torn creation write. *)
      if String.length s > 0 then Obs.Metrics.incr m_torn;
      Ok
        {
          records = [];
          valid_bytes = 0;
          torn_bytes = String.length s;
          torn_reason =
            (if String.length s > 0 then Some "truncated magic line" else None);
        }
    end
    else if String.sub s 0 mlen <> magic then
      Error (path ^ ": not a WAL file (bad magic line)")
    else
      let rec go acc prev_seq pos =
        match Codec.read_frame s pos with
        | Codec.End ->
            Ok
              {
                records = List.rev acc;
                valid_bytes = pos;
                torn_bytes = 0;
                torn_reason = None;
              }
        | Codec.Torn why ->
            Obs.Metrics.incr m_torn;
            Ok
              {
                records = List.rev acc;
                valid_bytes = pos;
                torn_bytes = String.length s - pos;
                torn_reason = Some why;
              }
        | Codec.Frame (payload, next) -> (
            match decode_record payload with
            | rec_ ->
                (* Strictly increasing, not dense: a gap is the legal
                   residue of a torn append whose effect survives in a
                   later snapshot (the writer reserves past the snapshot
                   stamp on recovery).  A non-increase is corruption. *)
                if rec_.seq <= prev_seq then
                  Error
                    (Printf.sprintf
                       "%s: non-increasing sequence (record %d follows %d)"
                       path rec_.seq prev_seq)
                else go (rec_ :: acc) rec_.seq next
            | exception Codec.Corrupt why ->
                (* The frame checksum held but the payload didn't decode:
                   treat like a torn tail only if nothing follows —
                   mid-log corruption under a valid CRC is a bug, not a
                   crash artefact. *)
                (match Codec.read_frame s next with
                | Codec.End ->
                    Obs.Metrics.incr m_torn;
                    Ok
                      {
                        records = List.rev acc;
                        valid_bytes = pos;
                        torn_bytes = String.length s - pos;
                        torn_reason = Some why;
                      }
                | _ ->
                    Error
                      (Printf.sprintf "%s: corrupt interior record %d (%s)"
                         path (prev_seq + 1) why)))
      in
      go [] 0 mlen

let open_dir ~dir =
  let path = file ~dir in
  match read path with
  | Error _ as e -> e
  | Ok r ->
      let fd =
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_CLOEXEC ]
          0o644
      in
      let valid =
        if r.valid_bytes = 0 then begin
          (* Fresh file, or one whose magic line itself was torn:
             (re)write the magic. *)
          Unix.ftruncate fd 0;
          let n = Unix.write_substring fd magic 0 (String.length magic) in
          assert (n = String.length magic);
          String.length magic
        end
        else begin
          (* Drop the torn tail so appends land on a frame boundary. *)
          if r.torn_bytes > 0 then Unix.ftruncate fd r.valid_bytes;
          r.valid_bytes
        end
      in
      ignore (Unix.lseek fd valid Unix.SEEK_SET);
      let oc = Unix.out_channel_of_descr fd in
      set_binary_mode_out oc true;
      let next =
        match List.rev r.records with [] -> 1 | last :: _ -> last.seq + 1
      in
      Ok ({ path; oc; fd; next; bytes = valid }, r.records)

let append ?(trace = Obs.Trace.null) ?(sync = false) t ~rel delta =
  Obs.Trace.span trace "wal.append" @@ fun () ->
  let seq = t.next in
  let buf = Buffer.create 64 in
  Codec.add_varint buf seq;
  Codec.add_string buf rel;
  Codec.add_delta buf delta;
  let framed = Codec.frame (Buffer.contents buf) in
  output_string t.oc framed;
  flush t.oc;
  if sync then begin
    Unix.fsync t.fd;
    Obs.Metrics.incr m_fsyncs
  end;
  t.next <- seq + 1;
  t.bytes <- t.bytes + String.length framed;
  Obs.Metrics.incr m_appends;
  Obs.Metrics.add m_bytes (String.length framed);
  Obs.Trace.attr_s trace "rel" rel;
  Obs.Trace.attr_i trace "seq" seq;
  seq

let sync t =
  flush t.oc;
  Unix.fsync t.fd;
  Obs.Metrics.incr m_fsyncs

let next_seq t = t.next
let reserve t n = if n > t.next then t.next <- n
let size t = t.bytes

let close t =
  flush t.oc;
  Unix.close t.fd
