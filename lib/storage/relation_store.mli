(** A relation store with a change log and subscriber notifications —
    the substrate both for instant-gratification application refresh
    (Section 2.2: "applications are immediately updated") and for
    updategram-based view maintenance (Section 3.1.2).

    Subscribers are notified in subscription (FIFO) order, and the
    event log is bounded: past [log_max] retained events the oldest are
    dropped, mirroring {!Relalg.Relation}'s delta-log semantics —
    {!events_since} returns [None] for positions older than
    {!log_floor}, the explicit signal that an incremental consumer
    missed events and must rebuild from the database instead. *)

type event =
  | Inserted of string * Relalg.Relation.tuple
  | Deleted of string * Relalg.Relation.tuple

type t

val create : ?log_max:int -> unit -> t
(** [log_max] (default 1024) caps the retained event log; it must be
    at least 1. *)

val database : t -> Relalg.Database.t

val declare : t -> string -> string list -> unit
(** Create an empty relation; no-op if it already exists with the same
    arity, raises [Invalid_argument] otherwise. *)

val insert : t -> string -> Relalg.Relation.tuple -> bool
(** Distinct insert; returns whether the tuple was new. Events fire and
    log entries are appended only for effective changes. *)

val delete : t -> string -> Relalg.Relation.tuple -> bool

val subscribe : t -> (event -> unit) -> unit
(** Subscribers are invoked per effective event, in the order they
    subscribed. *)

val log : t -> event list
(** The retained chronological change log — the events with positions
    [log_floor t .. total_events t - 1].  Older events have been capped
    away (or removed by {!truncate_log}). *)

val events_since : t -> int -> event list option
(** [events_since t n] is the events at positions [>= n], oldest first;
    [None] when [n < log_floor t] — the truncation signal: the suffix
    can no longer be reconstructed and the consumer must rebuild. *)

val truncate_log : t -> unit
(** Drop every retained event (raising {!log_floor} to
    {!total_events}). *)

val log_length : t -> int
(** Retained events ([<= log_max]). *)

val log_floor : t -> int
(** Position of the oldest retained event. *)

val total_events : t -> int
(** Events ever emitted, including capped and truncated ones. *)
