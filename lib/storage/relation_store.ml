type event =
  | Inserted of string * Relalg.Relation.tuple
  | Deleted of string * Relalg.Relation.tuple

(* The retention cap mirrors Relalg.Relation's delta log: beyond it the
   oldest events are truncated and [events_since] answers [None] for
   pre-truncation positions, telling consumers to rebuild. *)
let default_log_max = 1024

type t = {
  db : Relalg.Database.t;
  log_max : int;
  (* Retained events: oldest first in [log_front], newest first in
     [log_back] (two-stack queue, O(1) amortised push/drop). *)
  mutable log_front : event list;
  mutable log_back : event list;
  mutable log_len : int;
  mutable log_floor : int;  (* index of the oldest retained event *)
  mutable total : int;  (* events ever emitted *)
  mutable subscribers_rev : (event -> unit) list;
}

let create ?(log_max = default_log_max) () =
  if log_max < 1 then invalid_arg "Relation_store.create: log_max < 1";
  {
    db = Relalg.Database.create ();
    log_max;
    log_front = [];
    log_back = [];
    log_len = 0;
    log_floor = 0;
    total = 0;
    subscribers_rev = [];
  }

let database t = t.db

let declare t name attrs =
  match Relalg.Database.find_opt t.db name with
  | None -> ignore (Relalg.Database.create_relation t.db name attrs)
  | Some rel ->
      if Relalg.Schema.arity (Relalg.Relation.schema rel) <> List.length attrs then
        invalid_arg ("Relation_store.declare: arity clash for " ^ name)

let drop_oldest t =
  (match t.log_front with
  | [] ->
      t.log_front <- List.rev t.log_back;
      t.log_back <- []
  | _ -> ());
  match t.log_front with
  | _ :: rest ->
      t.log_front <- rest;
      t.log_len <- t.log_len - 1;
      t.log_floor <- t.log_floor + 1
  | [] -> assert false

let emit t event =
  t.log_back <- event :: t.log_back;
  t.log_len <- t.log_len + 1;
  t.total <- t.total + 1;
  while t.log_len > t.log_max do
    drop_oldest t
  done;
  (* Subscribers run in subscription (FIFO) order, so a later observer
     can rely on an earlier one having seen the event already. *)
  List.iter (fun f -> f event) (List.rev t.subscribers_rev)

let insert t name tuple =
  let rel = Relalg.Database.find t.db name in
  let added = not (Relalg.Relation.mem rel tuple) in
  if added then begin
    Relalg.Relation.apply rel (Relalg.Relation.Delta.add tuple);
    emit t (Inserted (name, tuple))
  end;
  added

let delete t name tuple =
  let rel = Relalg.Database.find t.db name in
  let removed = Relalg.Relation.mem rel tuple in
  if removed then begin
    (* Stored relations are kept distinct by [insert], so one removal
       per copy empties the membership. *)
    Relalg.Relation.apply rel (Relalg.Relation.Delta.remove tuple);
    emit t (Deleted (name, tuple))
  end;
  removed

let subscribe t f = t.subscribers_rev <- f :: t.subscribers_rev
let log t = t.log_front @ List.rev t.log_back

let events_since t since =
  if since < t.log_floor then None
  else if since >= t.total then Some []
  else
    let skip = since - t.log_floor in
    let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r in
    Some (drop skip (log t))

let truncate_log t =
  t.log_front <- [];
  t.log_back <- [];
  t.log_len <- 0;
  t.log_floor <- t.total

let log_length t = t.log_len
let log_floor t = t.log_floor
let total_events t = t.total
