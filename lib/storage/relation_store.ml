type event =
  | Inserted of string * Relalg.Relation.tuple
  | Deleted of string * Relalg.Relation.tuple

type t = {
  db : Relalg.Database.t;
  mutable log_rev : event list;
  mutable log_len : int;
  mutable subscribers : (event -> unit) list;
}

let create () =
  { db = Relalg.Database.create (); log_rev = []; log_len = 0; subscribers = [] }

let database t = t.db

let declare t name attrs =
  match Relalg.Database.find_opt t.db name with
  | None -> ignore (Relalg.Database.create_relation t.db name attrs)
  | Some rel ->
      if Relalg.Schema.arity (Relalg.Relation.schema rel) <> List.length attrs then
        invalid_arg ("Relation_store.declare: arity clash for " ^ name)

let emit t event =
  t.log_rev <- event :: t.log_rev;
  t.log_len <- t.log_len + 1;
  List.iter (fun f -> f event) t.subscribers

let insert t name tuple =
  let rel = Relalg.Database.find t.db name in
  let added = not (Relalg.Relation.mem rel tuple) in
  if added then begin
    Relalg.Relation.apply rel (Relalg.Relation.Delta.add tuple);
    emit t (Inserted (name, tuple))
  end;
  added

let delete t name tuple =
  let rel = Relalg.Database.find t.db name in
  let removed = Relalg.Relation.mem rel tuple in
  if removed then begin
    (* Stored relations are kept distinct by [insert], so one removal
       per copy empties the membership. *)
    Relalg.Relation.apply rel (Relalg.Relation.Delta.remove tuple);
    emit t (Deleted (name, tuple))
  end;
  removed

let subscribe t f = t.subscribers <- f :: t.subscribers
let log t = List.rev t.log_rev

let truncate_log t =
  t.log_rev <- [];
  t.log_len <- 0

let log_length t = t.log_len
