(* ['>'] must be escaped everywhere, not just inside quotes: subjects,
   predicates and source URLs are angle-delimited, so a raw ['>'] in a
   URL ends the token early and the rest of the line fails to parse (or
   silently lands in the wrong field).  ['\r'] is escaped alongside
   ['\n'] so a value never spills across the line-oriented format (and
   CRLF-translated files cannot corrupt a trailing field). *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '>' -> Buffer.add_string buf "\\>"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let render_line (tr : Triple_store.triple) =
  let prov = tr.Triple_store.prov in
  Printf.sprintf "<%s> <%s> \"%s\" . # <%s> %d%s"
    (escape tr.Triple_store.subj)
    (escape tr.Triple_store.pred)
    (escape (Relalg.Value.to_string tr.Triple_store.obj))
    (escape prov.Provenance.source_url)
    prov.Provenance.timestamp
    (match prov.Provenance.author with None -> "" | Some a -> " " ^ escape a)

let export store =
  Triple_store.triples store
  |> List.map render_line
  |> List.sort String.compare
  |> String.concat "\n"
  |> fun body -> if body = "" then "" else body ^ "\n"

(* Scan an angle- or quote-delimited token starting at [i] (which must
   point at the opener); returns (content, position after closer).
   Backslash escapes are honoured inside quotes. *)
let delimited line i opener closer =
  if i >= String.length line || line.[i] <> opener then
    Error (Printf.sprintf "expected '%c' at column %d" opener i)
  else
    let rec find j =
      if j >= String.length line then Error "unterminated token"
      else if line.[j] = '\\' then find (j + 2)
      else if line.[j] = closer then
        Ok (unescape (String.sub line (i + 1) (j - i - 1)), j + 1)
      else find (j + 1)
    in
    find (i + 1)

let skip_ws line i =
  let n = String.length line in
  let rec go i = if i < n && line.[i] = ' ' then go (i + 1) else i in
  go i

let parse_line line =
  let ( let* ) = Result.bind in
  let i = skip_ws line 0 in
  let* subj, i = delimited line i '<' '>' in
  let i = skip_ws line i in
  let* pred, i = delimited line i '<' '>' in
  let i = skip_ws line i in
  let* obj, i = delimited line i '"' '"' in
  let i = skip_ws line i in
  let* i =
    if i < String.length line && line.[i] = '.' then Ok (i + 1)
    else Error "expected '.'"
  in
  let i = skip_ws line i in
  let* i =
    if i < String.length line && line.[i] = '#' then Ok (skip_ws line (i + 1))
    else Error "expected provenance comment"
  in
  let* source_url, i = delimited line i '<' '>' in
  let i = skip_ws line i in
  let rest = String.sub line i (String.length line - i) in
  let* timestamp, author =
    match String.split_on_char ' ' (String.trim rest) with
    | [ ts ] | [ ts; "" ] -> (
        match int_of_string_opt ts with
        | Some t -> Ok (t, None)
        | None -> Error "bad timestamp")
    | ts :: author -> (
        match int_of_string_opt ts with
        | Some t -> Ok (t, Some (unescape (String.concat " " author)))
        | None -> Error "bad timestamp")
    | [] -> Error "missing timestamp"
  in
  Ok
    ( subj,
      pred,
      Relalg.Value.of_string obj,
      Provenance.make ?author ~source_url ~timestamp () )

let import text =
  let store = Triple_store.create () in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok store
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) rest
        else (
          match parse_line line with
          | Ok (subj, pred, obj, prov) ->
              Triple_store.add store ~subj ~pred ~obj ~prov;
              go (lineno + 1) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 lines

let import_exn text =
  match import text with
  | Ok store -> store
  | Error msg -> invalid_arg ("Ntriples.import_exn: " ^ msg)
