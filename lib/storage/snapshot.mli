(** Full-state checkpoint files for a data directory.

    A snapshot is an opaque payload (the {!Pdms} layer uses the
    [Pdms_file] rendering of a whole catalog) stamped with the WAL
    sequence number it covers: recovery loads the newest {e valid}
    snapshot and replays only the WAL records with a larger sequence
    number.

    Files are named [snapshot-<seq>.snap] and written atomically — the
    bytes go to a temp file in the same directory, are fsynced, and the
    file is renamed into place — so a crash mid-checkpoint leaves at
    worst a stray temp file, never a half-written snapshot under the
    real name.  Contents are one {!Codec.frame} (payload: varint seq +
    string payload) behind a magic line, so corruption is detected by
    CRC and a corrupt newest snapshot silently falls back to the next
    older one.

    Bumps [pdms.wal.snapshots] per snapshot written. *)

val write : dir:string -> seq:int -> string -> string
(** [write ~dir ~seq payload] checkpoints [payload] as covering WAL
    records [<= seq]; returns the path written. *)

val load_latest : dir:string -> (int * string) option
(** The newest snapshot (by covered sequence) that passes its checksum,
    as [(seq, payload)]; [None] if the directory holds no valid
    snapshot. *)

val list : dir:string -> (int * string) list
(** All snapshot files as [(seq, path)], newest first, without
    validating their contents. *)

val load : string -> (int * string, string) result
(** Decode one snapshot file as [(seq, payload)]. *)
