(** Binary serialisation for the durability layer: compact encodings of
    {!Relalg.Value.t}, tuples and {!Relalg.Relation.Delta.t}, plus a
    length-prefixed, CRC-checksummed frame format shared by the
    write-ahead log ({!Wal}) and checkpoint files ({!Snapshot}).

    Writers append to a [Buffer.t]; readers consume a cursor over an
    immutable string and raise {!Corrupt} on any malformed input, so a
    caller can treat "decoded without an exception" as "the checksum
    and every interior length field were consistent".

    Integers use LEB128 varints (zig-zag for signed values), floats are
    the 8 IEEE-754 bytes little-endian, strings are length-prefixed
    bytes — the encoding is byte-deterministic, so equal values always
    produce equal frames and CRCs. *)

exception Corrupt of string
(** Raised by every [read_*] function on truncated or malformed input. *)

val crc32 : string -> int32
(** CRC-32 (the IEEE 802.3 polynomial, as used by zip/png) of a whole
    string. *)

(** {2 Writers} *)

val add_varint : Buffer.t -> int -> unit
(** Non-negative LEB128. Raises [Invalid_argument] on negatives. *)

val add_int : Buffer.t -> int -> unit
(** Zig-zag LEB128: any OCaml [int], small magnitudes stay short. *)

val add_string : Buffer.t -> string -> unit
val add_value : Buffer.t -> Relalg.Value.t -> unit
val add_tuple : Buffer.t -> Relalg.Relation.tuple -> unit
val add_delta : Buffer.t -> Relalg.Relation.Delta.t -> unit

(** {2 Readers} *)

type reader
(** A cursor over an in-memory string. *)

val reader : ?pos:int -> string -> reader
val pos : reader -> int
val at_end : reader -> bool

val read_varint : reader -> int
val read_int : reader -> int
val read_string : reader -> string
val read_value : reader -> Relalg.Value.t
val read_tuple : reader -> Relalg.Relation.tuple
val read_delta : reader -> Relalg.Relation.Delta.t

(** {2 Framing}

    A frame is [length (4 bytes LE) | crc32 of payload (4 bytes LE) |
    payload].  The length covers the payload only, so a reader can skip
    a frame without decoding it, and a torn write is detectable as
    either a short header, a length running past the end of the file,
    or a checksum mismatch. *)

val frame : string -> string
(** [frame payload] is the framed encoding of [payload]. *)

val frame_overhead : int
(** Bytes added by {!frame} (the 8-byte header). *)

type frame_result =
  | Frame of string * int
      (** [(payload, next)] — a valid frame; [next] is the offset just
          past it. *)
  | End  (** The offset sits exactly at the end of the input. *)
  | Torn of string
      (** Trailing bytes that do not form a complete valid frame — a
          truncated or corrupt tail.  The message says why. *)

val read_frame : string -> int -> frame_result
(** [read_frame s pos] attempts to decode one frame at [pos]. *)
