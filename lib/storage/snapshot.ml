let magic = "REVERE-SNAP 1\n"

let m_snapshots = Obs.Metrics.counter "pdms.wal.snapshots"

let name_of_seq seq = Printf.sprintf "snapshot-%d.snap" seq

let seq_of_name name =
  if
    String.length name > 13
    && String.sub name 0 9 = "snapshot-"
    && Filename.check_suffix name ".snap"
  then int_of_string_opt (String.sub name 9 (String.length name - 14))
  else None

let write ~dir ~seq payload =
  let path = Filename.concat dir (name_of_seq seq) in
  let tmp = path ^ ".tmp" in
  let buf = Buffer.create (String.length payload + 16) in
  Codec.add_varint buf seq;
  Codec.add_string buf payload;
  let body = magic ^ Codec.frame (Buffer.contents buf) in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = Unix.write_substring fd body 0 (String.length body) in
      assert (n = String.length body);
      Unix.fsync fd);
  (* rename is atomic within a filesystem: readers see either the old
     directory state or the complete new snapshot, never a prefix. *)
  Sys.rename tmp path;
  Obs.Metrics.incr m_snapshots;
  path

let load path =
  let s =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let mlen = String.length magic in
  if String.length s < mlen || String.sub s 0 mlen <> magic then
    Error (path ^ ": not a snapshot file (bad magic line)")
  else
    match Codec.read_frame s mlen with
    | Codec.End -> Error (path ^ ": empty snapshot")
    | Codec.Torn why -> Error (path ^ ": " ^ why)
    | Codec.Frame (payload, _) -> (
        match
          let r = Codec.reader payload in
          let seq = Codec.read_varint r in
          let body = Codec.read_string r in
          (seq, body)
        with
        | v -> Ok v
        | exception Codec.Corrupt why -> Error (path ^ ": " ^ why))

let list ~dir =
  (if Sys.file_exists dir then Sys.readdir dir else [||])
  |> Array.to_list
  |> List.filter_map (fun name ->
         match seq_of_name name with
         | Some seq -> Some (seq, Filename.concat dir name)
         | None -> None)
  |> List.sort (fun (a, _) (b, _) -> compare b a)

let load_latest ~dir =
  let rec go = function
    | [] -> None
    | (_, path) :: rest -> (
        match load path with Ok (seq, payload) -> Some (seq, payload) | Error _ -> go rest)
  in
  go (list ~dir)
