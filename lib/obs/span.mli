(** Completed trace spans.

    A span records one timed phase of work: a name, wall-clock start and
    duration, a list of typed attributes, and the child spans that completed
    while it was open.  Spans are pure data — they are produced by
    {!Trace.span} and consumed by {!Sink} implementations or rendered
    directly.

    The tree shape is deterministic: children appear in start order and
    attributes in the order they were attached, so two runs of the same
    single-threaded code produce structurally identical trees (only the
    timings differ). *)

(** A typed attribute value. *)
type value = Int of int | Float of float | Str of string | Bool of bool

type t = {
  name : string;
  start_s : float;  (** wall-clock seconds at open (clock-dependent) *)
  duration_s : float;  (** wall-clock seconds between open and close *)
  attrs : (string * value) list;  (** in attachment order *)
  children : t list;  (** in start order *)
}

val value_to_string : value -> string
(** [value_to_string v] renders an attribute value without quoting. *)

val render : t -> string
(** [render span] renders the span tree as an indented text tree, one span
    per line with its duration in milliseconds and [k=v] attributes, ending
    with a newline.  Suitable for a terminal. *)

val to_json : t -> string
(** [to_json span] renders the span tree as a single-line JSON object
    [{"name":…,"start_s":…,"duration_ms":…,"attrs":{…},"children":[…]}]. *)

val names : t -> string list
(** [names span] lists span names in preorder (the root first) — handy for
    asserting tree shape in tests. *)

val find : t -> string -> t option
(** [find span name] returns the first descendant (or [span] itself) with
    the given name, searching in preorder. *)
