type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  h_mutex : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()
let switch = Atomic.make true

let set_enabled b = Atomic.set switch b
let enabled () = Atomic.get switch

let counter name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) -> c
    | Some _ ->
        Mutex.unlock registry_mutex;
        invalid_arg
          (Printf.sprintf "Obs.Metrics: %S already registered with another kind"
             name)
    | None ->
        let c = Atomic.make 0 in
        Hashtbl.add registry name (Counter c);
        c
  in
  Mutex.unlock registry_mutex;
  c

let gauge name =
  Mutex.lock registry_mutex;
  let g =
    match Hashtbl.find_opt registry name with
    | Some (Gauge g) -> g
    | Some _ ->
        Mutex.unlock registry_mutex;
        invalid_arg
          (Printf.sprintf "Obs.Metrics: %S already registered with another kind"
             name)
    | None ->
        let g = Atomic.make 0. in
        Hashtbl.add registry name (Gauge g);
        g
  in
  Mutex.unlock registry_mutex;
  g

let histogram name =
  Mutex.lock registry_mutex;
  let h =
    match Hashtbl.find_opt registry name with
    | Some (Histogram h) -> h
    | Some _ ->
        Mutex.unlock registry_mutex;
        invalid_arg
          (Printf.sprintf "Obs.Metrics: %S already registered with another kind"
             name)
    | None ->
        let h =
          {
            h_mutex = Mutex.create ();
            h_count = 0;
            h_sum = 0.;
            h_min = infinity;
            h_max = neg_infinity;
          }
        in
        Hashtbl.add registry name (Histogram h);
        h
  in
  Mutex.unlock registry_mutex;
  h

let incr c = if Atomic.get switch then ignore (Atomic.fetch_and_add c 1)
let add c n = if Atomic.get switch then ignore (Atomic.fetch_and_add c n)
let set_gauge g v = if Atomic.get switch then Atomic.set g v

let observe h v =
  if Atomic.get switch then begin
    Mutex.lock h.h_mutex;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    Mutex.unlock h.h_mutex
  end

type histogram_stats = { count : int; sum : float; min : float; max : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  Mutex.lock registry_mutex;
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name m ->
      match m with
      | Counter c -> counters := (name, Atomic.get c) :: !counters
      | Gauge g -> gauges := (name, Atomic.get g) :: !gauges
      | Histogram h ->
          Mutex.lock h.h_mutex;
          let stats =
            { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max }
          in
          Mutex.unlock h.h_mutex;
          histograms := (name, stats) :: !histograms)
    registry;
  Mutex.unlock registry_mutex;
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c 0
      | Gauge g -> Atomic.set g 0.
      | Histogram h ->
          Mutex.lock h.h_mutex;
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_min <- infinity;
          h.h_max <- neg_infinity;
          Mutex.unlock h.h_mutex)
    registry;
  Mutex.unlock registry_mutex

let counter_value snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let find_histogram snap name = List.assoc_opt name snap.histograms

let render snap =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
    snap.counters;
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s %g\n" name v))
    snap.gauges;
  List.iter
    (fun (name, h) ->
      if h.count = 0 then
        Buffer.add_string buf (Printf.sprintf "%s count=0\n" name)
      else
        Buffer.add_string buf
          (Printf.sprintf "%s count=%d sum=%g min=%g max=%g mean=%g\n" name
             h.count h.sum h.min h.max
             (h.sum /. float_of_int h.count)))
    snap.histograms;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 256 in
  let str s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      str name;
      Buffer.add_string buf (Printf.sprintf ":%d" v))
    snap.counters;
  Buffer.add_string buf "},\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      str name;
      Buffer.add_string buf (Printf.sprintf ":%g" v))
    snap.gauges;
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      str name;
      if h.count = 0 then Buffer.add_string buf ":{\"count\":0}"
      else
        Buffer.add_string buf
          (Printf.sprintf ":{\"count\":%d,\"sum\":%g,\"min\":%g,\"max\":%g}"
             h.count h.sum h.min h.max))
    snap.histograms;
  Buffer.add_string buf "}}";
  Buffer.contents buf
