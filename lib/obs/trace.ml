let clock = ref Unix.gettimeofday
let set_clock f = clock := f

type frame = {
  f_name : string;
  f_start : float;
  mutable f_attrs : (string * Span.value) list;  (* reversed *)
  mutable f_children : Span.t list;  (* reversed *)
}

type t = { active : bool; sink : Sink.t; mutable stack : frame list }

let null = { active = false; sink = Sink.null; stack = [] }

let create sink =
  if Sink.is_null sink then null else { active = true; sink; stack = [] }

let enabled t = t.active

let close t frame =
  let finished =
    {
      Span.name = frame.f_name;
      start_s = frame.f_start;
      duration_s = !clock () -. frame.f_start;
      attrs = List.rev frame.f_attrs;
      children = List.rev frame.f_children;
    }
  in
  match t.stack with
  | [] -> Sink.emit t.sink finished
  | parent :: _ -> parent.f_children <- finished :: parent.f_children

let span t name f =
  if not t.active then f ()
  else begin
    let frame =
      { f_name = name; f_start = !clock (); f_attrs = []; f_children = [] }
    in
    t.stack <- frame :: t.stack;
    let pop () =
      match t.stack with
      | top :: rest when top == frame ->
          t.stack <- rest;
          close t top
      | _ ->
          (* Unbalanced nesting can only happen if [f] tampered with the
             tracer; drop frames down to ours so the tree stays a tree. *)
          let rec unwind = function
            | top :: rest ->
                t.stack <- rest;
                close t top;
                if top != frame then unwind rest
            | [] -> ()
          in
          unwind t.stack
    in
    match f () with
    | result ->
        pop ();
        result
    | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        frame.f_attrs <- ("exn", Span.Str (Printexc.to_string exn)) :: frame.f_attrs;
        pop ();
        Printexc.raise_with_backtrace exn bt
  end

let attr t k v =
  if t.active then
    match t.stack with
    | frame :: _ -> frame.f_attrs <- (k, v) :: frame.f_attrs
    | [] -> ()

let attr_i t k i = attr t k (Span.Int i)
let attr_f t k f = attr t k (Span.Float f)
let attr_s t k s = attr t k (Span.Str s)
let attr_b t k b = attr t k (Span.Bool b)
