type value = Int of int | Float of float | Str of string | Bool of bool

type t = {
  name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * value) list;
  children : t list;
}

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

let pp_duration_ms buf d =
  let ms = d *. 1000. in
  if ms < 0.01 then Buffer.add_string buf (Printf.sprintf "%.4fms" ms)
  else if ms < 10. then Buffer.add_string buf (Printf.sprintf "%.2fms" ms)
  else Buffer.add_string buf (Printf.sprintf "%.1fms" ms)

let render span =
  let buf = Buffer.create 256 in
  (* [prefix] is the indentation already owed to our ancestors; [branch] the
     connector for this span's own line. *)
  let rec go prefix branch span =
    Buffer.add_string buf prefix;
    Buffer.add_string buf branch;
    Buffer.add_string buf span.name;
    Buffer.add_string buf "  ";
    pp_duration_ms buf span.duration_s;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf (value_to_string v))
      span.attrs;
    Buffer.add_char buf '\n';
    let child_prefix =
      match branch with
      | "" -> ""
      | "`- " | "|- " ->
          prefix ^ (if branch = "`- " then "   " else "|  ")
      | _ -> prefix ^ "   "
    in
    let rec children = function
      | [] -> ()
      | [ last ] -> go child_prefix "`- " last
      | c :: rest ->
          go child_prefix "|- " c;
          children rest
    in
    children span.children
  in
  go "" "" span;
  Buffer.contents buf

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_json span =
  let buf = Buffer.create 256 in
  let str s =
    Buffer.add_char buf '"';
    json_escape buf s;
    Buffer.add_char buf '"'
  in
  let value = function
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (Printf.sprintf "%g" f)
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Str s -> str s
  in
  let rec go span =
    Buffer.add_string buf "{\"name\":";
    str span.name;
    Buffer.add_string buf (Printf.sprintf ",\"start_s\":%.6f" span.start_s);
    Buffer.add_string buf
      (Printf.sprintf ",\"duration_ms\":%.6f" (span.duration_s *. 1000.));
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        str k;
        Buffer.add_char buf ':';
        value v)
      span.attrs;
    Buffer.add_string buf "},\"children\":[";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        go c)
      span.children;
    Buffer.add_string buf "]}"
  in
  go span;
  Buffer.contents buf

let names span =
  let rec go acc span =
    List.fold_left go (span.name :: acc) span.children
  in
  List.rev (go [] span)

let find span name =
  let rec go span =
    if span.name = name then Some span
    else
      List.fold_left
        (fun acc c -> match acc with Some _ -> acc | None -> go c)
        None span.children
  in
  go span
