(** Hierarchical tracing.

    A tracer maintains a stack of open frames on the calling domain.
    [span t name f] opens a frame, runs [f], and closes the frame into a
    {!Span.t}; nested [span] calls become children, and when the outermost
    frame closes the finished root span is emitted to the tracer's sink.

    The disabled tracer {!null} (and any tracer created over {!Sink.null})
    reduces [span t name f] to a single branch plus the call to [f], so
    instrumentation can stay on permanently.

    Tracers are {e not} domain-safe: open spans and attach attributes only
    from the coordinating domain.  Parallel workers should batch-count into
    locals and let the coordinator record the totals — see the
    "Observability" section of DESIGN.md. *)

type t

val null : t
(** The disabled tracer: spans cost one branch, attributes cost nothing. *)

val create : Sink.t -> t
(** [create sink] makes a tracer emitting completed root spans to [sink].
    [create Sink.null] returns a disabled tracer. *)

val enabled : t -> bool

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()] inside a new frame.  Exception-safe: the
    frame closes (and the root emits) even if [f] raises. *)

val attr : t -> string -> Span.value -> unit
(** [attr t k v] attaches an attribute to the innermost open frame; ignored
    when the tracer is disabled or no frame is open. *)

val attr_i : t -> string -> int -> unit
val attr_f : t -> string -> float -> unit
val attr_s : t -> string -> string -> unit
val attr_b : t -> string -> bool -> unit

val set_clock : (unit -> float) -> unit
(** Replace the wall clock (default [Unix.gettimeofday]) process-wide —
    used by tests to make durations deterministic. *)
