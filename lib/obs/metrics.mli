(** Process-wide named metrics: counters, gauges, and histograms.

    Metrics live in a single global registry keyed by name, so any module can
    register a metric at load time and increment it on its hot path without
    threading handles around.  Counters and gauges are backed by [Atomic]
    (domain-safe, O(1) increments); histograms keep count/sum/min/max under a
    mutex and are meant for coarser-grained observations (per-query, not
    per-tuple).

    Registration is idempotent: asking twice for the same name and kind
    returns the same metric; asking for the same name with a different kind
    raises [Invalid_argument].  {!reset} zeroes values but keeps
    registrations, so module-toplevel handles stay valid across runs.

    The global {!set_enabled} switch turns every increment into a no-op —
    used by bench E15 to measure a true uninstrumented baseline without
    recompiling. *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
(** [incr c] adds 1; O(1), domain-safe, no-op while disabled. *)

val add : counter -> int -> unit
(** [add c n] adds [n] — use to flush a locally batched count in one shot
    rather than paying an atomic per inner-loop event. *)

val set_gauge : gauge -> float -> unit

val observe : histogram -> float -> unit
(** [observe h v] records one sample (count/sum/min/max). *)

(** {2 Snapshots} *)

type histogram_stats = { count : int; sum : float; min : float; max : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}
(** Each list is sorted by metric name, so snapshots of the same state render
    identically. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered metric (registrations survive). *)

val counter_value : snapshot -> string -> int
(** [counter_value snap name] is the counter's value, or 0 if absent. *)

val find_histogram : snapshot -> string -> histogram_stats option

val render : snapshot -> string
(** Plain-text rendering, one [name value] line per metric, sorted;
    zero-valued counters are included (they show the metric exists). *)

val to_json : snapshot -> string

(** {2 Global switch} *)

val set_enabled : bool -> unit
val enabled : unit -> bool
