type t = Null | Memory of Span.t list ref | Stderr

let null = Null
let memory () = Memory (ref [])
let stderr = Stderr
let is_null = function Null -> true | _ -> false

let emit t span =
  match t with
  | Null -> ()
  | Memory cell -> cell := span :: !cell
  | Stderr -> prerr_string (Span.render span)

let spans = function
  | Memory cell -> List.rev !cell
  | Null | Stderr -> []

let clear = function Memory cell -> cell := [] | Null | Stderr -> ()
