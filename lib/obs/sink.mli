(** Destinations for completed trace spans.

    A sink receives each {e root} span once its tracer frame closes.  Three
    implementations cover every current need:

    - [Null] — drops everything.  A tracer built on the null sink disables
      itself entirely, so instrumented code pays a single branch (well under
      10ns) per would-be span.
    - [Memory] — accumulates root spans in order for later rendering or
      assertions (used by [revere --trace] and the test-suite).
    - [Stderr] — renders each root span tree to stderr as it completes. *)

type t

val null : t
val memory : unit -> t
(** [memory ()] creates a fresh in-memory sink; each call returns an
    independent buffer. *)

val stderr : t

val is_null : t -> bool

val emit : t -> Span.t -> unit
(** [emit sink root] delivers one completed root span.  Called by
    {!Trace.span} when the outermost frame closes; safe to call directly. *)

val spans : t -> Span.t list
(** [spans sink] returns the root spans collected so far, oldest first.
    Always [[]] for [null] and [stderr] sinks. *)

val clear : t -> unit
(** [clear sink] empties a memory sink; no-op for the others. *)
