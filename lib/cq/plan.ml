(* Prefix-trie batch evaluation of a rewriting union. See plan.mli for
   the contract; the shape notes that matter for correctness:

   - Every query is exactly one root-to-leaf path (its stats-ordered,
     alpha-normalised body), so each query lives entirely under one
     top-level branch. Sharding the walk across branches therefore
     partitions the queries, and per-branch results merged in branch
     order reproduce the sequential outcome for any [jobs].
   - Per-query pre-dedup counts are binding counts at the query's emit
     node, which equal |Eval.run_bindings q| because both use the same
     [Eval.order_atoms] order and counting is invariant under the
     alpha-renaming. *)

let m_builds = Obs.Metrics.counter "cq.plan.builds"
let m_nodes = Obs.Metrics.counter "cq.plan.nodes"
let m_shared = Obs.Metrics.counter "cq.plan.shared_prefix_atoms"
let m_reused = Obs.Metrics.counter "cq.plan.bindings_reused"
let m_duplicates = Obs.Metrics.counter "cq.plan.duplicate_queries"
let h_depth = Obs.Metrics.histogram "cq.plan.depth"

type emit = { query : int; head : Term.t array }

type node = {
  atom : Atom.t;
  depth : int;
  children_by_key : (Atom.t, node) Hashtbl.t;
      (* keyed on the alpha-normalised atom itself (structural hash and
         equality) — rendering string keys dominated build time *)
  mutable children : node list;  (* reverse insertion order until [build] finalises *)
  mutable emits : emit list;  (* reverse insertion order until [build] finalises *)
  mutable through : int;  (* queries whose path passes through this node *)
}

type build_stats = {
  queries : int;
  nodes : int;
  shared_prefix_atoms : int;
  duplicate_queries : int;
  max_depth : int;
}

type t = {
  queries : Query.t array;
  root : node;  (* pseudo-node: children are the top-level branches,
                   emits are the empty-body queries *)
  stats : build_stats;
}

let stats t = t.stats

(* Canonical variable names, memoized as in Reformulate so typical
   bodies allocate no name strings. A distinct prefix keeps planner
   names out of any user variable namespace (purely cosmetic — sharing
   only needs the renaming to be deterministic). *)
let canon_names = Array.init 256 (fun i -> "p" ^ string_of_int i)
let canon_name i = if i < 256 then canon_names.(i) else "p" ^ string_of_int i

let mk_node atom depth =
  {
    atom;
    depth;
    children_by_key = Hashtbl.create 4;
    children = [];
    emits = [];
    through = 0;
  }

let head_equal a b =
  Array.length a = Array.length b && Array.for_all2 Term.equal a b

let build ?(trace = Obs.Trace.null) db qs =
  Obs.Trace.span trace "plan" @@ fun () ->
  let queries = Array.of_list qs in
  let root = mk_node (Atom.make "" []) 0 in
  let nodes = ref 0 in
  let max_depth = ref 0 in
  let duplicates = ref 0 in
  Array.iteri
    (fun qi q ->
      let ordered = Eval.order_atoms db q in
      (* Alpha-normalise over the ordered body: variables renamed by
         first occurrence, so alpha-equivalent prefixes hash to the
         same trie children and collapse onto one path. The mapping is
         a linear scan over a small array — bodies are tiny, and this
         runs once per rewriting of the union. *)
      let orig_names = ref (Array.make 8 "") in
      let nvars = ref 0 in
      let find_mapped x =
        let names = !orig_names in
        let rec find i =
          if i >= !nvars then -1
          else if String.equal names.(i) x then i
          else find (i + 1)
        in
        find 0
      in
      let canon_term = function
        | Term.Const _ as t -> t
        | Term.Var x ->
            let i = find_mapped x in
            if i >= 0 then Term.Var (canon_name i)
            else begin
              if !nvars >= Array.length !orig_names then begin
                let bigger = Array.make (2 * Array.length !orig_names) "" in
                Array.blit !orig_names 0 bigger 0 !nvars;
                orig_names := bigger
              end;
              !orig_names.(!nvars) <- x;
              Stdlib.incr nvars;
              Term.Var (canon_name (!nvars - 1))
            end
      in
      let catoms = List.map (Atom.map_terms canon_term) ordered in
      (* Head vars map through the body's renaming only: a head var
         absent from the body (unsafe query) is left as-is, so emitting
         raises exactly like [Eval.run] would. *)
      let chead =
        Array.of_list
          (List.map
             (fun t ->
               match t with
               | Term.Const _ -> t
               | Term.Var x ->
                   let i = find_mapped x in
                   if i >= 0 then Term.Var (canon_name i) else t)
             q.Query.head.Atom.args)
      in
      let tip =
        List.fold_left
          (fun parent atom ->
            match Hashtbl.find_opt parent.children_by_key atom with
            | Some n ->
                n.through <- n.through + 1;
                n
            | None ->
                let n = mk_node atom (parent.depth + 1) in
                n.through <- 1;
                incr nodes;
                Hashtbl.replace parent.children_by_key atom n;
                parent.children <- n :: parent.children;
                n)
          root catoms
      in
      if tip.depth > !max_depth then max_depth := tip.depth;
      Obs.Metrics.observe h_depth (float_of_int tip.depth);
      if List.exists (fun e -> head_equal e.head chead) tip.emits then
        incr duplicates;
      tip.emits <- { query = qi; head = chead } :: tip.emits)
    queries;
  (* Finalise: restore insertion order so walks are deterministic. *)
  let shared = ref 0 in
  let rec finalise n =
    n.children <- List.rev n.children;
    n.emits <- List.rev n.emits;
    if n != root && n.through > 1 then shared := !shared + (n.through - 1);
    List.iter finalise n.children
  in
  finalise root;
  let stats =
    {
      queries = Array.length queries;
      nodes = !nodes;
      shared_prefix_atoms = !shared;
      duplicate_queries = !duplicates;
      max_depth = !max_depth;
    }
  in
  Obs.Metrics.incr m_builds;
  Obs.Metrics.add m_nodes stats.nodes;
  Obs.Metrics.add m_shared stats.shared_prefix_atoms;
  Obs.Metrics.add m_duplicates stats.duplicate_queries;
  Obs.Trace.attr_i trace "queries" stats.queries;
  Obs.Trace.attr_i trace "nodes" stats.nodes;
  Obs.Trace.attr_i trace "shared_prefix_atoms" stats.shared_prefix_atoms;
  Obs.Trace.attr_i trace "duplicate_queries" stats.duplicate_queries;
  Obs.Trace.attr_i trace "max_depth" stats.max_depth;
  { queries; root; stats }

let head_tuple (e : emit) (b : Eval.binding) =
  Array.map
    (fun t ->
      match Eval.resolve b t with
      | Some v -> v
      | None ->
          invalid_arg
            ("Plan: unsafe query, unbound head term " ^ Term.to_string t))
    e.head

(* Depth-first walk of one subtree. [emit_fn] receives every (emit,
   binding) pair in deterministic order: at each extension, emits
   before children, children in insertion order. [reused] accumulates
   the bindings a shared node saved — each of its extension bindings
   would have been recomputed once more per additional query through
   the node. *)
let rec walk db emit_fn reused n b =
  match Eval.match_atom db b n.atom with
  | [] -> ()
  | extensions ->
      if n.through > 1 then
        reused := !reused + (List.length extensions * (n.through - 1));
      List.iter
        (fun b' ->
          List.iter (fun e -> emit_fn e b') n.emits;
          List.iter (fun child -> walk db emit_fn reused child b') n.children)
        extensions

let run_union_into ?(jobs = 1) ?(trace = Obs.Trace.null) out db t =
  Obs.Trace.span trace "trie_eval" @@ fun () ->
  let nq = Array.length t.queries in
  let counts = Array.make nq 0 in
  let emit_into rel counts e b =
    let tuple = head_tuple e b in
    counts.(e.query) <- counts.(e.query) + 1;
    Eval.add_distinct rel tuple
  in
  (* Empty-body queries emit once from the empty binding, before any
     branch runs (same position in both the sequential and parallel
     orders). *)
  List.iter (fun e -> emit_into out counts e Eval.Smap.empty) t.root.emits;
  let reused =
    if jobs <= 1 || List.length t.root.children < 2 then begin
      let reused = ref 0 in
      List.iter
        (fun branch -> walk db (emit_into out counts) reused branch Eval.Smap.empty)
        t.root.children;
      !reused
    end
    else begin
      (* One partial relation per top-level branch, merged in branch
         order through the shared accumulator's dedup set. Each query
         lies under exactly one branch, so count slots never race; a
         private counts array per branch keeps the write sets obviously
         disjoint anyway. *)
      let partials =
        Util.Pool.map jobs
          (fun branch ->
            let partial = Relalg.Relation.create (Relalg.Relation.schema out) in
            let local = Array.make nq 0 in
            let reused = ref 0 in
            walk db (emit_into partial local) reused branch Eval.Smap.empty;
            (partial, local, !reused))
          t.root.children
      in
      List.fold_left
        (fun acc (partial, local, r) ->
          Relalg.Relation.iter (Eval.add_distinct out) partial;
          Array.iteri (fun i n -> counts.(i) <- counts.(i) + n) local;
          acc + r)
        0 partials
    end
  in
  Obs.Metrics.add m_reused reused;
  let tuples = Array.fold_left ( + ) 0 counts in
  Obs.Trace.attr_i trace "jobs" jobs;
  Obs.Trace.attr_i trace "branches" (List.length t.root.children);
  Obs.Trace.attr_i trace "tuples" tuples;
  Obs.Trace.attr_i trace "bindings_reused" reused;
  Array.to_list counts

let run_each ?(jobs = 1) ?(trace = Obs.Trace.null) db t =
  Obs.Trace.span trace "trie_eval" @@ fun () ->
  let nq = Array.length t.queries in
  let outs =
    Array.init nq (fun i ->
        Relalg.Relation.create (Eval.head_schema t.queries.(i)))
  in
  let emit_fn e b = Eval.add_distinct outs.(e.query) (head_tuple e b) in
  List.iter (fun e -> emit_fn e Eval.Smap.empty) t.root.emits;
  let reused =
    if jobs <= 1 || List.length t.root.children < 2 then begin
      let reused = ref 0 in
      List.iter
        (fun branch -> walk db emit_fn reused branch Eval.Smap.empty)
        t.root.children;
      !reused
    end
    else
      (* Each query's relation is written by exactly one branch (one
         path per query), so branches write disjoint slots of [outs];
         Pool.map's joins publish them to the caller. *)
      List.fold_left ( + ) 0
        (Util.Pool.map jobs
           (fun branch ->
             let reused = ref 0 in
             walk db emit_fn reused branch Eval.Smap.empty;
             !reused)
           t.root.children)
  in
  Obs.Metrics.add m_reused reused;
  Obs.Trace.attr_i trace "jobs" jobs;
  Obs.Trace.attr_i trace "branches" (List.length t.root.children);
  Obs.Trace.attr_i trace "bindings_reused" reused;
  Array.to_list outs
