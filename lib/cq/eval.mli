(** Evaluation of conjunctive queries over a database.

    The evaluator performs index-assisted nested-loop joins with a
    greedy, statistics-aware atom ordering: each step picks the atom
    with the lowest estimated extension count (cardinality scaled by
    1/distinct for every bound position, via the {!Relalg.Stats}
    cache). Missing relations are treated as empty (a PDMS peer may
    reference relations it stores no data for); an atom whose arity
    disagrees with its stored relation also yields no bindings, and
    bumps the [cq.eval.arity_mismatch] counter so the schema bug shows
    up in metrics instead of vanishing as an empty answer. *)

module Smap : Map.S with type key = string

type binding = Relalg.Value.t Smap.t

val resolve : binding -> Term.t -> Relalg.Value.t option
(** The value a term denotes under a binding: [Some] for constants and
    bound variables, [None] for unbound variables. *)

val order_atoms : Relalg.Database.t -> Query.t -> Atom.t list
(** The greedy stats-aware join order the evaluator would use for the
    query's body — deterministic (ties break towards more bound
    positions, then body order). Exposed for {!Plan}. *)

val match_atom : Relalg.Database.t -> binding -> Atom.t -> binding list
(** All extensions of one binding across one atom, in the relation's
    candidate order. Exposed for {!Plan}'s trie walk. *)

val run_bindings : Relalg.Database.t -> Query.t -> binding list
(** All satisfying assignments of the body variables. *)

val add_distinct : Relalg.Relation.t -> Relalg.Relation.tuple -> unit
(** Set-semantics append into a dedup accumulator: a {!Relalg.Relation.mem}
    guard in front of a singleton {!Relalg.Relation.apply}. Exposed for
    {!Plan} and the layers merging sharded partial answers. *)

val run : Relalg.Database.t -> Query.t -> Relalg.Relation.t
(** Distinct head tuples. Raises [Invalid_argument] on unsafe queries. *)

val run_union : Relalg.Database.t -> Query.t list -> Relalg.Relation.t
(** Distinct union of the answers of a UCQ (all heads must share arity;
    the first query's head shapes the schema). Raises on an empty list. *)

val run_union_into : Relalg.Relation.t -> Relalg.Database.t -> Query.t list -> int
(** Evaluate every member and {!add_distinct} its head tuples into
    [out]: one shared hash-backed dedup set across the whole union,
    instead of a per-member relation. Useful for merging the partial
    results of sharded union evaluation. Returns the number of head
    tuples produced {e before} deduplication (the union's dedup rate is
    this minus the cardinality gained by [out]) — pre-dedup counts are
    independent of sharding, so callers can report them for any [jobs]. *)

val head_schema : Query.t -> Relalg.Schema.t
(** The output schema [run] would build for the query's head. *)
