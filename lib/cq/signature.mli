(** Cheap query signatures: a necessary-condition prefilter for the
    NP-hard containment test. [q1 ⊑ q2] requires a homomorphism from
    [q2]'s body into [q1]'s body that maps head onto head, so it can
    only hold when the head arities agree and every body predicate of
    [q2] also occurs in [q1]'s body (a homomorphism preserves predicate
    names; several atoms may collapse onto one, so only the name {e
    set} is constrained, not multiplicities). Comparing signatures is a
    few string comparisons — callers screen candidate pairs with
    {!compatible} before paying for the homomorphism search. *)

type t = {
  head_arity : int;
  body_len : int;  (** number of body atoms *)
  preds : (string * int) list;
      (** body predicate multiset, sorted by name, with occurrence
          counts *)
}

val of_query : Query.t -> t

val compatible : sub:t -> super:t -> bool
(** [compatible ~sub ~super] is a necessary condition for the query of
    [sub] to be contained in the query of [super]: equal head arity and
    [super]'s predicate names a subset of [sub]'s. When it returns
    [false], [Containment.contained_in sub_q super_q] is certainly
    [false]; when [true], the full test must still run. *)

val equal : t -> t -> bool
(** Structural equality (arity, body length, exact multiset). *)

val key : t -> string
(** Injective rendering of the signature — a hash-bucket key; two
    queries share a key iff their signatures are {!equal}. *)
