type program = Query.t list

let idb_preds (program : program) =
  List.fold_left
    (fun acc (r : Query.t) ->
      let p = r.Query.head.Atom.pred in
      if List.mem p acc then acc else p :: acc)
    [] program
  |> List.rev

let ensure_idb db (r : Query.t) =
  let pred = r.Query.head.Atom.pred in
  let arity = Atom.arity r.Query.head in
  match Relalg.Database.find_opt db pred with
  | Some rel ->
      if Relalg.Schema.arity (Relalg.Relation.schema rel) <> arity then
        invalid_arg ("Datalog.eval: arity clash for " ^ pred)
  | None ->
      let attrs = List.init arity (Printf.sprintf "a%d") in
      ignore (Relalg.Database.create_relation db pred attrs)

let eval edb (program : program) =
  List.iter
    (fun (r : Query.t) ->
      if not (Query.is_safe r) then
        invalid_arg ("Datalog.eval: unsafe rule " ^ Query.to_string r))
    program;
  let db = Relalg.Database.copy edb in
  List.iter (ensure_idb db) program;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Query.t) ->
        let rel = Relalg.Database.find db r.Query.head.Atom.pred in
        let derived = Eval.run db r in
        Relalg.Relation.iter
          (fun row ->
            if not (Relalg.Relation.mem rel row) then begin
              Relalg.Relation.apply rel (Relalg.Relation.Delta.add row);
              changed := true
            end)
          derived)
      program
  done;
  db

let query edb program q = Eval.run (eval edb program) q
