type t = {
  head_arity : int;
  body_len : int;
  preds : (string * int) list;  (* sorted by predicate name *)
}

let of_query (q : Query.t) =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (a : Atom.t) ->
      Hashtbl.replace counts a.Atom.pred
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts a.Atom.pred)))
    q.Query.body;
  {
    head_arity = Atom.arity q.Query.head;
    body_len = List.length q.Query.body;
    preds =
      Hashtbl.fold (fun p c acc -> (p, c) :: acc) counts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

(* Every predicate name of [smaller] occurs in [larger]; both sorted. *)
let rec pred_names_subset smaller larger =
  match (smaller, larger) with
  | [], _ -> true
  | _ :: _, [] -> false
  | (p, _) :: ps, (q, _) :: qs -> (
      match String.compare p q with
      | 0 -> pred_names_subset ps qs
      | c when c > 0 -> pred_names_subset smaller qs
      | _ -> false)

let compatible ~sub ~super =
  sub.head_arity = super.head_arity
  && pred_names_subset super.preds sub.preds

let equal a b =
  a.head_arity = b.head_arity && a.body_len = b.body_len
  && List.equal (fun (p, c) (q, d) -> c = d && String.equal p q) a.preds b.preds

let key t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int t.head_arity);
  Buffer.add_char buf '/';
  Buffer.add_string buf (string_of_int t.body_len);
  List.iter
    (fun (p, c) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf p;
      Buffer.add_char buf '*';
      Buffer.add_string buf (string_of_int c))
    t.preds;
  Buffer.contents buf
