module Smap = Map.Make (String)

type binding = Relalg.Value.t Smap.t

let resolve (b : binding) = function
  | Term.Const v -> Some v
  | Term.Var x -> Smap.find_opt x b

(* Number of argument positions already determined under [bound_vars]. *)
let boundness bound_vars (atom : Atom.t) =
  List.fold_left
    (fun acc t ->
      match t with
      | Term.Const _ -> acc + 1
      | Term.Var x -> if List.mem x bound_vars then acc + 1 else acc)
    0 atom.Atom.args

(* Greedy join order: repeatedly pick the atom with the most bound
   positions (ties: fewer tuples). Cardinalities are looked up once per
   predicate, not per candidate per step. *)
let order_atoms db (q : Query.t) =
  let cards = Hashtbl.create 8 in
  let card (a : Atom.t) =
    match Hashtbl.find_opt cards a.Atom.pred with
    | Some c -> c
    | None ->
        let c =
          match Relalg.Database.find_opt db a.Atom.pred with
          | None -> 0
          | Some rel -> Relalg.Relation.cardinality rel
        in
        Hashtbl.add cards a.Atom.pred c;
        c
  in
  let rec go bound_vars remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let best =
          List.fold_left
            (fun best atom ->
              let score = (boundness bound_vars atom, -card atom) in
              match best with
              | None -> Some (atom, score)
              | Some (_, best_score) ->
                  if score > best_score then Some (atom, score) else best)
            None remaining
        in
        let atom, _ = Option.get best in
        let remaining = List.filter (fun a -> a != atom) remaining in
        go (Atom.vars atom @ bound_vars) remaining (atom :: acc)
  in
  go [] q.Query.body []

(* Extend one binding across one atom. *)
let match_atom db (b : binding) (atom : Atom.t) : binding list =
  match Relalg.Database.find_opt db atom.Atom.pred with
  | None -> []
  | Some rel ->
      let args = Array.of_list atom.Atom.args in
      let n = Array.length args in
      if n <> Relalg.Schema.arity (Relalg.Relation.schema rel) then []
      else begin
        (* Narrow candidates through indexes on every determined
           position (the relation intersects the two most selective
           posting lists); [extend] below re-verifies all positions. *)
        let known = Array.map (resolve b) args in
        let bound = ref [] in
        for i = n - 1 downto 0 do
          match known.(i) with
          | Some v -> bound := (i, v) :: !bound
          | None -> ()
        done;
        let candidates = Relalg.Relation.find_by_bound rel !bound in
        List.filter_map
          (fun row ->
            let rec extend i acc =
              if i >= n then Some acc
              else
                match args.(i) with
                | Term.Const v ->
                    if Relalg.Value.equal v row.(i) then extend (i + 1) acc else None
                | Term.Var x -> (
                    match Smap.find_opt x acc with
                    | Some v ->
                        if Relalg.Value.equal v row.(i) then extend (i + 1) acc else None
                    | None -> extend (i + 1) (Smap.add x row.(i) acc))
            in
            extend 0 b)
          candidates
      end

let run_bindings db q =
  let ordered = order_atoms db q in
  List.fold_left
    (fun bindings atom ->
      List.concat_map (fun b -> match_atom db b atom) bindings)
    [ Smap.empty ] ordered

let head_schema (q : Query.t) =
  let seen = Hashtbl.create 8 in
  let attrs =
    List.mapi
      (fun i t ->
        match t with
        | Term.Var x when not (Hashtbl.mem seen x) ->
            Hashtbl.replace seen x ();
            x
        | Term.Var _ | Term.Const _ -> Printf.sprintf "col%d" i)
      q.Query.head.Atom.args
  in
  Relalg.Schema.make q.Query.head.Atom.pred attrs

let head_tuple (q : Query.t) (b : binding) =
  Array.of_list
    (List.map
       (fun t ->
         match resolve b t with
         | Some v -> v
         | None ->
             invalid_arg
               ("Eval.run: unsafe query, unbound head term " ^ Term.to_string t))
       q.Query.head.Atom.args)

let run db q =
  let out = Relalg.Relation.create (head_schema q) in
  List.iter
    (fun b -> ignore (Relalg.Relation.insert_distinct out (head_tuple q b)))
    (run_bindings db q);
  out

let run_union_into out db qs =
  let attempts = ref 0 in
  List.iter
    (fun q ->
      List.iter
        (fun b ->
          Stdlib.incr attempts;
          ignore (Relalg.Relation.insert_distinct out (head_tuple q b)))
        (run_bindings db q))
    qs;
  !attempts

let run_union db = function
  | [] -> invalid_arg "Eval.run_union: empty union"
  | q0 :: _ as qs ->
      let out = Relalg.Relation.create (head_schema q0) in
      ignore (run_union_into out db qs : int);
      out
