module Smap = Map.Make (String)

type binding = Relalg.Value.t Smap.t

(* Arity mismatches between an atom and its stored relation used to
   vanish as empty answers; the counter makes schema bugs visible in
   any metrics dump. Incremented unconditionally like the other cq.*
   counters — the global Metrics switch gates the cost. *)
let m_arity_mismatch = Obs.Metrics.counter "cq.eval.arity_mismatch"

let resolve (b : binding) = function
  | Term.Const v -> Some v
  | Term.Var x -> Smap.find_opt x b

(* Greedy stats-aware join order: repeatedly pick the atom with the
   lowest estimated extension count — relation cardinality scaled by
   the selectivity (1/distinct) of every already-determined position —
   breaking ties towards more bound positions and then towards the
   earlier atom, so the order is deterministic. Statistics come from
   the per-[(uid, version)] cache in {!Relalg.Stats}, so repeated
   planning over an unchanged database never rescans a relation.

   This runs once per rewriting of a union (thousands of times per
   answered query), so it works over dense arrays: variables are
   interned into slots by linear scan (bodies are small — the seed's
   [List.mem] over an ever-growing bound list was the same idea done
   quadratically and with string hashing on every probe), boundness is
   a [bool array] read, and per-atom statistics are resolved exactly
   once up front. *)
let order_atoms db (q : Query.t) =
  match q.Query.body with
  | ([] | [ _ ]) as body -> body
  | body ->
      let atoms = Array.of_list body in
      let n = Array.length atoms in
      (* Intern variables into dense slots; constants map to -1 (always
         determined). *)
      let var_names = ref (Array.make 8 "") in
      let nvars = ref 0 in
      let slot x =
        let names = !var_names in
        let rec find i =
          if i >= !nvars then begin
            if !nvars >= Array.length names then begin
              let bigger = Array.make (2 * Array.length names) "" in
              Array.blit names 0 bigger 0 !nvars;
              var_names := bigger
            end;
            !var_names.(!nvars) <- x;
            Stdlib.incr nvars;
            !nvars - 1
          end
          else if String.equal names.(i) x then i
          else find (i + 1)
        in
        find 0
      in
      let arg_slots =
        Array.map
          (fun (a : Atom.t) ->
            Array.of_list
              (List.map
                 (function Term.Const _ -> -1 | Term.Var x -> slot x)
                 a.Atom.args))
          atoms
      in
      let stats =
        Array.map
          (fun (a : Atom.t) ->
            Option.map Relalg.Stats.of_relation
              (Relalg.Database.find_opt db a.Atom.pred))
          atoms
      in
      let bound = Array.make (max 1 !nvars) false in
      let used = Array.make n false in
      let order = Array.make n 0 in
      for round = 0 to n - 1 do
        let best = ref (-1) in
        let best_est = ref infinity in
        let best_bound = ref (-1) in
        for i = 0 to n - 1 do
          if not used.(i) then begin
            let slots = arg_slots.(i) in
            let bcount = ref 0 in
            let est =
              match stats.(i) with
              | None ->
                  (* Missing relation: empty, cheapest possible — but
                     still count determined positions for the tie. *)
                  Array.iter
                    (fun s -> if s < 0 || bound.(s) then Stdlib.incr bcount)
                    slots;
                  0.0
              | Some st ->
                  let est = ref (float_of_int st.Relalg.Stats.cardinality) in
                  Array.iteri
                    (fun j s ->
                      if s < 0 || bound.(s) then begin
                        Stdlib.incr bcount;
                        est := !est *. Relalg.Stats.selectivity st j
                      end)
                    slots;
                  !est
            in
            (* Lower estimate wins; ties fall to higher boundness, then
               to the earlier atom (strict [<] / [>] keeps the first
               minimum). *)
            if est < !best_est || (est = !best_est && !bcount > !best_bound)
            then begin
              best := i;
              best_est := est;
              best_bound := !bcount
            end
          end
        done;
        let i = !best in
        used.(i) <- true;
        order.(round) <- i;
        Array.iter (fun s -> if s >= 0 then bound.(s) <- true) arg_slots.(i)
      done;
      List.init n (fun round -> atoms.(order.(round)))

(* Extend one binding across one atom. *)
let match_atom db (b : binding) (atom : Atom.t) : binding list =
  match Relalg.Database.find_opt db atom.Atom.pred with
  | None -> []
  | Some rel ->
      let args = Array.of_list atom.Atom.args in
      let n = Array.length args in
      if n <> Relalg.Schema.arity (Relalg.Relation.schema rel) then begin
        Obs.Metrics.incr m_arity_mismatch;
        []
      end
      else begin
        (* Narrow candidates through indexes on every determined
           position (the relation intersects the two most selective
           posting lists); [extend] below re-verifies all positions. *)
        let known = Array.map (resolve b) args in
        let bound = ref [] in
        for i = n - 1 downto 0 do
          match known.(i) with
          | Some v -> bound := (i, v) :: !bound
          | None -> ()
        done;
        let candidates = Relalg.Relation.find_by_bound rel !bound in
        List.filter_map
          (fun row ->
            let rec extend i acc =
              if i >= n then Some acc
              else
                match args.(i) with
                | Term.Const v ->
                    if Relalg.Value.equal v row.(i) then extend (i + 1) acc else None
                | Term.Var x -> (
                    match Smap.find_opt x acc with
                    | Some v ->
                        if Relalg.Value.equal v row.(i) then extend (i + 1) acc else None
                    | None -> extend (i + 1) (Smap.add x row.(i) acc))
            in
            extend 0 b)
          candidates
      end

let run_bindings db q =
  let ordered = order_atoms db q in
  List.fold_left
    (fun bindings atom ->
      List.concat_map (fun b -> match_atom db b atom) bindings)
    [ Smap.empty ] ordered

let head_schema (q : Query.t) =
  let seen = Hashtbl.create 8 in
  let attrs =
    List.mapi
      (fun i t ->
        match t with
        | Term.Var x when not (Hashtbl.mem seen x) ->
            Hashtbl.replace seen x ();
            x
        | Term.Var _ | Term.Const _ -> Printf.sprintf "col%d" i)
      q.Query.head.Atom.args
  in
  Relalg.Schema.make q.Query.head.Atom.pred attrs

let head_tuple (q : Query.t) (b : binding) =
  Array.of_list
    (List.map
       (fun t ->
         match resolve b t with
         | Some v -> v
         | None ->
             invalid_arg
               ("Eval.run: unsafe query, unbound head term " ^ Term.to_string t))
       q.Query.head.Atom.args)

let add_distinct out row =
  if not (Relalg.Relation.mem out row) then
    Relalg.Relation.apply out (Relalg.Relation.Delta.add row)

let run db q =
  let out = Relalg.Relation.create (head_schema q) in
  List.iter (fun b -> add_distinct out (head_tuple q b)) (run_bindings db q);
  out

let run_union_into out db qs =
  let attempts = ref 0 in
  List.iter
    (fun q ->
      List.iter
        (fun b ->
          Stdlib.incr attempts;
          add_distinct out (head_tuple q b))
        (run_bindings db q))
    qs;
  !attempts

let run_union db = function
  | [] -> invalid_arg "Eval.run_union: empty union"
  | q0 :: _ as qs ->
      let out = Relalg.Relation.create (head_schema q0) in
      ignore (run_union_into out db qs : int);
      out
