(** Conjunctive query containment via containment mappings
    (Chandra-Merlin). Used by rewriting algorithms and by the PDMS
    reformulation pruning heuristics (Section 3.1.1). *)

val contained_in : Query.t -> Query.t -> bool
(** [contained_in q1 q2] decides [q1 ⊑ q2]: every answer of [q1] is an
    answer of [q2] on every database. Queries must have equal head
    arity (else [false]). A predicate-coverage prefilter (see
    {!Signature}) rejects impossible pairs before the homomorphism
    search. Counts [cq.containment.tests] / [.prefilter_rejects] /
    [.hom_tests] in {!Obs.Metrics} (attempted vs. short-circuited vs.
    searched); {!contained_in_with} is left uninstrumented because sweep
    callers batch-count their own pairs. *)

val contained_in_with :
  sub:Signature.t -> super:Signature.t -> Query.t -> Query.t -> bool
(** Like {!contained_in} but with the signatures of both queries
    precomputed by the caller ([sub] for [q1], [super] for [q2]) — for
    sweeps that test many pairs over the same query set, where
    signature construction would otherwise dominate. Verdicts are
    identical to {!contained_in}. *)

val equivalent : Query.t -> Query.t -> bool

val contained_in_union : Query.t -> Query.t list -> bool
(** Containment of a CQ in a union of CQs; sound and complete for CQs
    (Sagiv-Yannakakis: a CQ is contained in a UCQ iff it is contained in
    one disjunct). *)
