(** Shared-prefix batch evaluation of a rewriting union.

    [build] orders every body with the stats-aware {!Eval.order_atoms},
    alpha-normalises it (variables renamed by first occurrence over the
    ordered body, heads mapped through the same renaming), and folds the
    ordered bodies into a prefix trie: each query is one root-to-leaf
    path, internal nodes are shared join prefixes, and the node where a
    body ends carries the query's head template. Alpha-equivalent
    prefixes — the common case for sibling rewritings unfolded from the
    same mapping chains — collapse onto one path, and fully identical
    (body, head) queries collapse onto one emit point, so evaluation
    computes every shared prefix binding set exactly once.

    Evaluation walks the trie depth-first; with [jobs > 1] the walk is
    sharded across top-level branches with {!Util.Pool} and per-branch
    partial results are merged in branch order, so the answer set and
    all reported counts are identical for every [jobs] (callers must
    freeze the database first, as for the other parallel sweeps).

    Instrumentation: [cq.plan.builds], [cq.plan.nodes],
    [cq.plan.shared_prefix_atoms] and [cq.plan.bindings_reused]
    counters, a [cq.plan.depth] histogram of per-query path depths, and
    [plan] / [trie_eval] spans on the caller's tracer. *)

type t

type build_stats = {
  queries : int;  (** queries folded into the trie *)
  nodes : int;  (** trie nodes (root excluded) *)
  shared_prefix_atoms : int;
      (** sum over nodes of (queries through the node - 1): the number
          of atom evaluations the trie shares away relative to
          per-rewriting evaluation, structurally *)
  duplicate_queries : int;
      (** queries whose canonical (body, head) duplicated an earlier
          one — they share an emit point *)
  max_depth : int;  (** longest root-to-leaf path *)
}

val build : ?trace:Obs.Trace.t -> Relalg.Database.t -> Query.t list -> t
(** Plan the union. Ordering consults {!Relalg.Stats} (cached per
    relation state), so building is cheap to repeat on an unchanged
    database. *)

val stats : t -> build_stats

val run_union_into :
  ?jobs:int -> ?trace:Obs.Trace.t -> Relalg.Relation.t ->
  Relalg.Database.t -> t -> int list
(** Walk the trie once, [insert_distinct]-ing every head tuple into the
    shared accumulator, exactly like {!Eval.run_union_into} over the
    original list. Returns per-query pre-dedup tuple counts in input
    order — equal to [|Eval.run_bindings q|] per query and independent
    of [jobs]. With [jobs > 1] the caller must have frozen [db]. *)

val run_each :
  ?jobs:int -> ?trace:Obs.Trace.t -> Relalg.Database.t -> t ->
  Relalg.Relation.t list
(** Walk the trie once but give every query its own distinct-answer
    relation (schema from {!Eval.head_schema}), in input order —
    equivalent to [List.map (Eval.run db)] over the original list. Used
    by the distributed executor, which sizes per-rewriting shipments.
    With [jobs > 1] the caller must have frozen [db]. *)
