(* q1 ⊑ q2 iff there is a homomorphism from q2 into the frozen q1 that
   maps q2's head onto q1's head. We freeze q1 and (a) seed the
   substitution by matching heads, (b) require q2's frozen body image to
   be a subset of q1's frozen body. *)
let homomorphism_test (q1 : Query.t) (q2 : Query.t) =
  let frozen_head = Homomorphism.freeze_atom q1.Query.head in
  let seeded =
    Subst.match_atom Subst.empty
      { q2.Query.head with Atom.pred = frozen_head.Atom.pred }
      { frozen_head with Atom.pred = frozen_head.Atom.pred }
  in
  match seeded with
  | None -> false
  | Some init -> Homomorphism.exists ~init ~from:q2.Query.body q1.Query.body

(* Inline necessary-condition prefilter (see {!Signature}): a
   homomorphism preserves predicate names, so every body predicate of q2
   must occur in q1's body. Checking this costs a linear pass; skipping
   the backtracking search when it fails is the common case in
   subsumption sweeps over heterogeneous rewritings. *)
let preds_covered (q1 : Query.t) (q2 : Query.t) =
  match q2.Query.body with
  | [] -> true
  | [ (a : Atom.t) ] ->
      List.exists (fun (b : Atom.t) -> String.equal a.Atom.pred b.Atom.pred)
        q1.Query.body
  | body ->
      let present = Hashtbl.create 8 in
      List.iter
        (fun (a : Atom.t) -> Hashtbl.replace present a.Atom.pred ())
        q1.Query.body;
      List.for_all (fun (a : Atom.t) -> Hashtbl.mem present a.Atom.pred) body

(* Standalone-entry telemetry. [contained_in_with] stays uninstrumented:
   it is the sweep hot path (~tens of ns per call) and its callers batch
   their own pair counts — see Reformulate.subsumption_sweep. *)
let m_tests = Obs.Metrics.counter "cq.containment.tests"
let m_prefilter_rejects = Obs.Metrics.counter "cq.containment.prefilter_rejects"
let m_hom_tests = Obs.Metrics.counter "cq.containment.hom_tests"

let contained_in (q1 : Query.t) (q2 : Query.t) =
  Obs.Metrics.incr m_tests;
  if
    Atom.arity q1.Query.head = Atom.arity q2.Query.head
    && preds_covered q1 q2
  then begin
    Obs.Metrics.incr m_hom_tests;
    homomorphism_test q1 q2
  end
  else begin
    Obs.Metrics.incr m_prefilter_rejects;
    false
  end

let contained_in_with ~sub ~super q1 q2 =
  Signature.compatible ~sub ~super && homomorphism_test q1 q2

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

let contained_in_union q qs =
  let sub = Signature.of_query q in
  List.exists
    (fun q' -> contained_in_with ~sub ~super:(Signature.of_query q') q q')
    qs
