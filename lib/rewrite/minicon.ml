open Cq

type stats = {
  mcds_formed : int;
  combinations_tried : int;
  rewritings_produced : int;
}

type mcd = { view : Query.t; state : Cover.state; covered : int list }

module Iset = Set.Make (Int)

(* All MCDs of [view] for query [q]. Each MCD starts from one (subgoal,
   view-atom) seed and is closed under the forced-coverage rule: a query
   variable mapped to an existential view variable drags every subgoal
   mentioning it into the MCD. *)
let mcds_of_view (q : Query.t) view =
  let body = Array.of_list q.Query.body in
  let n = Array.length body in
  let head_vars = Query.head_vars q in
  let subgoals_with x =
    List.filter (fun j -> List.mem x (Atom.vars body.(j))) (List.init n Fun.id)
  in
  let results = ref [] in
  (* Returns the subgoals forced by the variables of subgoal [j], or None
     when a distinguished query variable maps to an existential view
     variable (condition C1 of MiniCon). *)
  let forced_by st j =
    List.fold_left
      (fun acc x ->
        match acc with
        | None -> None
        | Some forced ->
            if Cover.maps_to_existential ~view st x then
              if List.mem x head_vars then None
              else Some (subgoals_with x @ forced)
            else Some forced)
      (Some []) (Atom.vars body.(j))
  in
  let rec close st covered = function
    | [] -> results := (st, covered) :: !results
    | j :: rest when Iset.mem j covered -> close st covered rest
    | j :: rest ->
        List.iter
          (fun b ->
            match Cover.match_subgoal ~view st body.(j) b with
            | None -> ()
            | Some st' -> (
                match forced_by st' j with
                | None -> ()
                | Some forced -> close st' (Iset.add j covered) (forced @ rest)))
          view.Query.body
  in
  (* Seed from every subgoal; dedupe solutions afterwards. *)
  for i = 0 to n - 1 do
    close Cover.empty Iset.empty [ i ]
  done;
  let canonical (st, covered) =
    let bindings =
      List.map
        (fun (x, t) -> x ^ "=" ^ Term.to_string (Subst.walk st t))
        (Subst.bindings st)
    in
    String.concat ";" (List.map string_of_int (Iset.elements covered))
    ^ "|" ^ String.concat "," bindings
  in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (st, covered) ->
      let key = canonical (st, covered) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.replace seen key ();
        Some { view; state = st; covered = Iset.elements covered }
      end)
    !results

let rewrite ~views (q : Query.t) =
  let views = Cover.prepare_views views in
  let mcds = List.concat_map (mcds_of_view q) views in
  let n = Query.size q in
  let full = Iset.of_list (List.init n Fun.id) in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "~f%d" !counter
  in
  let combinations = ref 0 in
  let rewritings = ref [] in
  (* Exact-partition combination (justified by MCD minimality). *)
  let rec combine covered chosen =
    if Iset.equal covered full then begin
      incr combinations;
      let pieces =
        List.rev_map
          (fun m -> Build.piece ~view:m.view ~state:m.state ~covered:m.covered ~query:q)
          chosen
      in
      match Build.assemble ~fresh q pieces with
      | Some r -> rewritings := Minimize.remove_duplicate_atoms r :: !rewritings
      | None -> ()
    end
    else
      let j = Iset.min_elt (Iset.diff full covered) in
      List.iter
        (fun m ->
          let mset = Iset.of_list m.covered in
          if Iset.mem j mset && Iset.is_empty (Iset.inter mset covered) then
            combine (Iset.union covered mset) (m :: chosen))
        mcds
  in
  if n > 0 then combine Iset.empty [];
  (* Syntactic dedupe on sorted bodies, hash-set backed: first
     occurrence wins, linear in the number of rewritings. *)
  let normalize (r : Query.t) =
    { r with Query.body = List.sort Atom.compare r.Query.body }
  in
  let seen_rewriting = Hashtbl.create 32 in
  let deduped =
    List.filter
      (fun r ->
        let nkey = Query.to_string (normalize r) in
        if Hashtbl.mem seen_rewriting nkey then false
        else begin
          Hashtbl.replace seen_rewriting nkey ();
          true
        end)
      !rewritings
  in
  ( deduped,
    {
      mcds_formed = List.length mcds;
      combinations_tried = !combinations;
      rewritings_produced = List.length deduped;
    } )

let expand ~views r = Unfold.expand views r

let is_contained_rewriting ~views r q =
  (* The target query's signature is loop-invariant; precompute it so
     each expansion pays only its own signature + (if compatible) the
     homomorphism search. *)
  let super = Signature.of_query q in
  List.for_all
    (fun e ->
      Containment.contained_in_with ~sub:(Signature.of_query e) ~super e q)
    (expand ~views r)
