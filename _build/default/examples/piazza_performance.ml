(* Piazza's performance machinery (Section 3.1.2): the parts of the PDMS
   that make it "a more Web-like environment ... in which peers can also
   perform the duties of cooperative web caches and content distribution
   networks":

   - distributed execution at the data sites vs. central shipping,
   - cooperative result caching with updategram invalidation,
   - materialised-view placement chosen by cost,
   - incremental maintenance of the placed views.

   Run with: dune exec examples/piazza_performance.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let prng = Util.Prng.create 31 in
  let topology = Pdms.Topology.generate Pdms.Topology.Chain ~n:6 in
  let g = Workload.Peers_gen.generate prng ~topology ~tuples_per_peer:40 () in
  let catalog = g.Workload.Peers_gen.catalog in
  let names = List.init 6 (Printf.sprintf "p%d") in
  let network = Pdms.Network.of_topology topology ~names ~base_latency_ms:20.0 in

  section "Distributed execution";
  let some_code =
    let peer = g.Workload.Peers_gen.peers.(5) in
    let stored =
      Relalg.Database.find (Pdms.Peer.stored_db peer)
        (Pdms.Peer.stored_pred peer "course")
    in
    match Relalg.Relation.tuples stored with
    | row :: _ -> row.(0)
    | [] -> Relalg.Value.Str "?"
  in
  let selective =
    Cq.Query.make
      (Cq.Atom.make "ans" [ Cq.Term.v "T" ])
      [ Pdms.Peer.atom g.Workload.Peers_gen.peers.(0) "course"
          [ Cq.Term.Const some_code; Cq.Term.v "T"; Cq.Term.v "I" ] ]
  in
  let plan = Pdms.Distributed.execute catalog network ~at:"p0" selective in
  Printf.printf
    "selective query at p0: %d answers; distributed %.1f ms vs central %.1f ms\n"
    (Relalg.Relation.cardinality plan.Pdms.Distributed.answers)
    plan.Pdms.Distributed.distributed_ms plan.Pdms.Distributed.central_ms;

  section "Cooperative caching";
  let cache = Pdms.Cache.create catalog () in
  let full = Workload.Peers_gen.course_query g ~at:0 in
  let burst n = for _ = 1 to n do ignore (Pdms.Cache.answer cache full) done in
  burst 20;
  Printf.printf "20 repeated queries: %d misses, %d hits\n"
    (Pdms.Cache.misses cache) (Pdms.Cache.hits cache);
  (* An update at p3 invalidates exactly the dependent entry. *)
  let p3 = g.Workload.Peers_gen.peers.(3) in
  let u =
    Pdms.Updategram.make
      ~rel:(Pdms.Peer.stored_pred p3 "course")
      ~inserts:
        [ [| Relalg.Value.Str "new999";
             Relalg.Value.Str "a brand new course";
             Relalg.Value.Str (Workload.Vocab.person_name prng) |] ]
      ()
  in
  Pdms.Updategram.apply (Pdms.Catalog.global_db catalog) u;
  let dropped = Pdms.Cache.invalidate cache u in
  Printf.printf "update at p3 invalidated %d cache entr%s\n" dropped
    (if dropped = 1 then "y" else "ies");
  let fresh = Pdms.Cache.answer cache full in
  Printf.printf "next query re-answers and sees %d tuples (was %d)\n"
    (Relalg.Relation.cardinality fresh.Pdms.Answer.answers)
    (6 * 40);

  section "Cost-based view placement";
  let workloads =
    [ {
        Pdms.Placement.view_name = "coalition-calendar";
        query_freq = [ ("p0", 20.0); ("p5", 20.0); ("p2", 5.0) ];
        update_rate = 0.5;
        result_size = 4096;
      } ]
  in
  let initial = [ ("coalition-calendar", [ "p3" ]) ] in
  let before = Pdms.Placement.cost network workloads initial in
  let placed = Pdms.Placement.greedy network workloads ~initial ~max_replicas:3 in
  let after = Pdms.Placement.cost network workloads placed in
  Printf.printf "replicas: %s\n"
    (String.concat ", " (List.assoc "coalition-calendar" placed));
  Printf.printf "workload cost %.1f -> %.1f\n" before after;

  section "Incremental maintenance of the placed view";
  let db = Pdms.Catalog.global_db catalog in
  let p0 = g.Workload.Peers_gen.peers.(0) in
  let view =
    Cq.Query.make
      (Cq.Atom.make "calendar" [ Cq.Term.v "C"; Cq.Term.v "T" ])
      [ Cq.Atom.make (Pdms.Peer.stored_pred p0 "course")
          [ Cq.Term.v "C"; Cq.Term.v "T"; Cq.Term.v "I" ] ]
  in
  let vm = Pdms.View_maintenance.create db view in
  Printf.printf "materialised %d rows at the replica\n"
    (Pdms.View_maintenance.cardinality vm);
  Pdms.View_maintenance.apply vm
    (Pdms.Updategram.make
       ~rel:(Pdms.Peer.stored_pred p0 "course")
       ~inserts:
         [ [| Relalg.Value.Str "late1"; Relalg.Value.Str "late addition";
              Relalg.Value.Str "staff" |] ]
       ());
  Printf.printf "after one updategram: %d rows, %d delta bindings processed\n"
    (Pdms.View_maintenance.cardinality vm)
    (Pdms.View_maintenance.delta_bindings_processed vm);
  print_newline ()
