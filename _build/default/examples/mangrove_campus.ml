(* MANGROVE on a campus (Section 2): a whole department annotates its
   existing pages; the instant-gratification applications come alive;
   integrity constraints are deferred and cleaned per application; the
   proactive inconsistency finder notifies authors.

   Run with: dune exec examples/mangrove_campus.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let prng = Util.Prng.create 7 in
  let repo = Mangrove.Repository.create () in

  section "Annotate and publish a department's existing pages";
  (* Live views registered BEFORE publishing: they refresh on the spot. *)
  let calendar = Mangrove.Apps.live ~compute:Mangrove.Apps.calendar repo in
  let papers = Mangrove.Apps.live ~compute:Mangrove.Apps.paper_database repo in
  let pages =
    Workload.Pages.publish_department prng ~repo ~host:"uw" ~people:5
      ~course_pages:3 ~courses_per_page:3
  in
  Printf.printf "published %d pages; repository holds %d triples from %d sources\n"
    pages
    (Storage.Triple_store.size (Mangrove.Repository.store repo))
    (List.length (Storage.Triple_store.sources (Mangrove.Repository.store repo)));
  Printf.printf "the live calendar refreshed %d times (once per publish)\n"
    (Mangrove.Apps.refresh_count calendar);

  section "Instant gratification: the department calendar";
  List.iteri
    (fun i (r : Mangrove.Apps.course_row) ->
      if i < 5 then
        Printf.printf "  %-9s %-10s %-6s %-10s %s\n" r.Mangrove.Apps.code
          r.Mangrove.Apps.day r.Mangrove.Apps.time r.Mangrove.Apps.room
          r.Mangrove.Apps.course_title)
    (Mangrove.Apps.value calendar);
  Printf.printf "  ... %d rows total\n" (List.length (Mangrove.Apps.value calendar));

  section "Paper database and annotation-aware search";
  Printf.printf "%d publications on record\n"
    (List.length (Mangrove.Apps.value papers));
  (match Mangrove.Apps.value papers with
  | (p : Mangrove.Apps.publication_row) :: _ ->
      let hits = Mangrove.Apps.search ~tag:"publication" repo p.Mangrove.Apps.author in
      Printf.printf "searching for %S finds %d ranked entities\n"
        p.Mangrove.Apps.author (List.length hits)
  | [] -> ());

  section "Deferred integrity: conflicting phone numbers";
  (* The department directory page asserts a different phone for alice
     than her own home page does. Both publish without complaint. *)
  let leaf tag value = Xmlmodel.Xml.element tag [ Xmlmodel.Xml.text value ] in
  let make_page url spans =
    Mangrove.Html.make ~url ~title:url
      (Xmlmodel.Xml.element "html"
         [ Xmlmodel.Xml.element "h1" [ Xmlmodel.Xml.text url ];
           Xmlmodel.Xml.element "div" (List.map (fun s -> leaf "span" s) spans) ])
  in
  let annotate_person page tags =
    let a = Mangrove.Annotator.start ~schema:Mangrove.Lightweight_schema.department page in
    Mangrove.Annotator.annotate_exn a ~node:[ 1 ] ~tag:"person";
    List.iteri
      (fun i tag -> Mangrove.Annotator.annotate_exn a ~node:[ 1; i ] ~tag)
      tags;
    ignore (Mangrove.Repository.publish repo a)
  in
  annotate_person
    (make_page "http://uw.edu/alice/home.html" [ "alice zhang"; "206-543-1111" ])
    [ "name"; "phone" ];
  annotate_person
    (make_page "http://uw.edu/dept/directory.html" [ "alice zhang"; "206-543-9999" ])
    [ "name"; "phone" ];
  (* Different applications clean the same dirty data differently. *)
  let show policy =
    let dir = Mangrove.Apps.phone_directory ~policy repo in
    match List.find_opt (fun (n, _) -> n = "alice zhang") dir with
    | Some (_, phone) ->
        let rendered = Format.asprintf "%a" Mangrove.Cleaning.pp_policy policy in
        Printf.printf "  policy %-42s -> alice zhang: %s\n" rendered phone
    | None -> ()
  in
  (* Two subjects named alice zhang exist (one per page); pick the one
     with two claims by looking at the finder below. Policies act per
     subject; here we show the repository-wide directory. *)
  show Mangrove.Cleaning.Freshest;
  show (Mangrove.Cleaning.Prefer_scope ("http://uw.edu/alice", Mangrove.Cleaning.Freshest));

  section "Proactive inconsistency finder";
  (* Publish a page that gives ONE subject two distinct offices. *)
  let page = make_page "http://uw.edu/bob.html" [ "bob chen"; "allen 101"; "sieg 202" ] in
  let a = Mangrove.Annotator.start ~schema:Mangrove.Lightweight_schema.department page in
  Mangrove.Annotator.annotate_exn a ~node:[ 1 ] ~tag:"person";
  Mangrove.Annotator.annotate_exn a ~node:[ 1; 0 ] ~tag:"name";
  Mangrove.Annotator.annotate_exn a ~node:[ 1; 1 ] ~tag:"office";
  Mangrove.Annotator.annotate_exn a ~node:[ 1; 2 ] ~tag:"office";
  ignore (Mangrove.Repository.publish repo a);
  let conflicts =
    Mangrove.Inconsistency.find repo
      ~functional:[ ("person", "phone"); ("person", "office") ]
  in
  Printf.printf "%d functional-constraint conflicts detected\n"
    (List.length conflicts);
  List.iter
    (fun (url, msg) -> Printf.printf "  notify %s: %s\n" url msg)
    (Mangrove.Inconsistency.notifications conflicts);

  section "Editing a page re-publishes cleanly";
  (* Bob fixes his page: only one office now. *)
  let fixed = make_page "http://uw.edu/bob.html" [ "bob chen"; "allen 101" ] in
  let a = Mangrove.Annotator.start ~schema:Mangrove.Lightweight_schema.department fixed in
  Mangrove.Annotator.annotate_exn a ~node:[ 1 ] ~tag:"person";
  Mangrove.Annotator.annotate_exn a ~node:[ 1; 0 ] ~tag:"name";
  Mangrove.Annotator.annotate_exn a ~node:[ 1; 1 ] ~tag:"office";
  ignore (Mangrove.Repository.publish repo a);
  let conflicts =
    Mangrove.Inconsistency.find repo ~functional:[ ("person", "office") ]
  in
  Printf.printf "after the fix: %d office conflicts remain\n" (List.length conflicts);
  print_newline ()
