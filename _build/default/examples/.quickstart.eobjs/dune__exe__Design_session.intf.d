examples/design_session.mli:
