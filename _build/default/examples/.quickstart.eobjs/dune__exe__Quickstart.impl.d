examples/quickstart.ml: Advisor Array Core Corpus Cq Format List Mangrove Pdms Printf Relalg String Util Workload Xmlmodel
