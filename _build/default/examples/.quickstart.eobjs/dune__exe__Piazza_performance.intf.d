examples/piazza_performance.mli:
