examples/delearning.ml: Core Cq Format List Pdms Printf String Util Workload Xmlmodel
