examples/quickstart.mli:
