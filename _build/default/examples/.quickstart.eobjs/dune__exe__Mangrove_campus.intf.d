examples/mangrove_campus.mli:
