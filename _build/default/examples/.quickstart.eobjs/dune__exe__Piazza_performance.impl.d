examples/piazza_performance.ml: Array Cq List Pdms Printf Relalg String Util Workload
