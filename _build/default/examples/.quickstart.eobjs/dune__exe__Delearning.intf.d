examples/delearning.mli:
