examples/design_session.ml: Advisor Corpus Cq Fun List Matching Printf String Util Workload
