examples/mangrove_campus.ml: Format List Mangrove Printf Storage Util Workload Xmlmodel
