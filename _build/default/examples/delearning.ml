(* The DElearning scenario (Examples 1.1 and 3.1, Figures 2-4).

   - Builds the six-university PDMS of Figure 2.
   - Shows a student query answered across the whole coalition from any
     peer, in that peer's own vocabulary (including Italian at Roma).
   - Runs the Figure-4 XML mapping: Berkeley's nested schedule becomes
     an MIT-shaped catalog, and a path query is translated through it.
   - Has the University of Trento join the coalition: its mapping is
     proposed by the corpus-based MatchingAdvisor, and it maps to the
     semantically closest member (Roma), not to a global schema.

   Run with: dune exec examples/delearning.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let prng = Util.Prng.create 2003 in
  section "Figure 2: the six-university PDMS";
  let scenario = Core.Delearning.build prng ~courses_per_peer:3 in
  let d = scenario.Core.Delearning.delearning in
  Printf.printf "peers: %s\n"
    (String.concat ", " (List.map fst d.Workload.University.peers));
  Printf.printf "mappings authored: %d (linear in the number of peers)\n"
    (Pdms.Catalog.mapping_count d.Workload.University.catalog);
  Printf.printf "network diameter does not matter: reformulation chases the\n";
  Printf.printf "transitive closure of mappings.\n";

  section "A student browses at Roma, in Italian";
  let roma = Pdms.Catalog.peer d.Workload.University.catalog "roma" in
  let query = Workload.University.course_query roma in
  Printf.printf "query: %s\n" (Cq.Query.to_string query);
  let result = Pdms.Answer.answer d.Workload.University.catalog query in
  let rows = Pdms.Answer.answers_list result in
  Printf.printf "corsi visibili: %d (every university's offerings)\n"
    (List.length rows);
  List.iteri
    (fun i row -> if i < 6 then Printf.printf "  %s\n" (String.concat " | " row))
    rows;
  Format.printf "reformulation: %a@."
    Pdms.Reformulate.pp_stats result.Pdms.Answer.outcome.Pdms.Reformulate.stats;

  section "A join, still in local vocabulary";
  (* Tsinghua asks who teaches what — a two-relation join answered
     across all ten mappings (course + instructor per edge). *)
  let tsinghua = Pdms.Catalog.peer d.Workload.University.catalog "tsinghua" in
  let join_query = Workload.University.course_instructor_query tsinghua in
  Printf.printf "query: %s\n" (Cq.Query.to_string join_query);
  let join_result = Pdms.Answer.answer d.Workload.University.catalog join_query in
  let join_rows = Pdms.Answer.answers_list join_result in
  Printf.printf "%d (course, instructor) pairs from the whole coalition:\n"
    (List.length join_rows);
  List.iteri
    (fun i row -> if i < 4 then Printf.printf "  %s\n" (String.concat " | " row))
    join_rows;

  section "Figure 4: the Berkeley-to-MIT XML mapping";
  let berkeley_xml =
    Workload.University.berkeley_instance prng ~colleges:1 ~depts:2 ~courses:2
  in
  (match Xmlmodel.Dtd.validate Workload.University.berkeley_dtd berkeley_xml with
  | Ok () -> Printf.printf "Berkeley.xml validates against the Figure-3 DTD\n"
  | Error e -> Printf.printf "unexpected: %s\n" e);
  let mit_catalog =
    Xmlmodel.Template.apply_single Workload.University.berkeley_to_mit
      ~docs:[ ("Berkeley.xml", berkeley_xml) ]
  in
  (match Xmlmodel.Dtd.validate Workload.University.mit_dtd mit_catalog with
  | Ok () -> Printf.printf "the mapped catalog validates against MIT's DTD\n"
  | Error e -> Printf.printf "unexpected: %s\n" e);
  let target = Xmlmodel.Path.of_string "catalog/course/subject/title/text()" in
  let resolutions =
    Xmlmodel.Translate.resolve Workload.University.berkeley_to_mit target
  in
  List.iter
    (fun (r : Xmlmodel.Translate.resolution) ->
      Printf.printf "MIT path %s answers from %s at %s\n"
        (Xmlmodel.Path.to_string target) r.Xmlmodel.Translate.doc
        (Xmlmodel.Path.to_string r.Xmlmodel.Translate.path))
    resolutions;

  section "Peer-based query processing";
  (* Execute the Roma query with the network in the loop: each rewriting
     runs at the peer owning its data, results ship back. *)
  let plan =
    Pdms.Distributed.execute d.Workload.University.catalog
      d.Workload.University.network ~at:"roma" query
  in
  Printf.printf "distributed plan: %d site executions\n"
    (List.length plan.Pdms.Distributed.sites);
  List.iteri
    (fun i (sp : Pdms.Distributed.site_plan) ->
      if i < 4 then
        Printf.printf "  run at %-9s (local reads %d, ship %.1f ms)\n"
          sp.Pdms.Distributed.site sp.Pdms.Distributed.local_reads
          sp.Pdms.Distributed.ship_ms)
    plan.Pdms.Distributed.sites;
  Printf.printf "simulated cost: distributed %.1f ms vs central %.1f ms\n"
    plan.Pdms.Distributed.distributed_ms plan.Pdms.Distributed.central_ms;

  section "Trento joins the coalition";
  let report =
    Core.Delearning.join_university scenario prng ~name:"trento" ~rel:"corso"
      ~attrs:[ "titolo"; "iscritti" ] ~courses:4
  in
  Printf.printf "the MatchingAdvisor mapped trento to '%s' with:\n"
    report.Core.Delearning.mapped_to;
  List.iter
    (fun (a, b) -> Printf.printf "  trento.%s  <->  %s.%s\n" a
        report.Core.Delearning.mapped_to b)
    report.Core.Delearning.correspondences;
  Printf.printf "one new mapping, total now %d\n"
    (Pdms.Catalog.mapping_count d.Workload.University.catalog);
  let at_trento = Core.Delearning.courses_visible_at scenario "trento" in
  Printf.printf "trento students now see %d courses, e.g.:\n"
    (List.length at_trento);
  List.iteri (fun i t -> if i < 4 then Printf.printf "  %s\n" t) at_trento;
  let at_mit = Core.Delearning.courses_visible_at scenario "mit" in
  Printf.printf "and MIT's inventory grew to %d (trento's courses flowed back)\n"
    (List.length at_mit);
  print_newline ()
