(* Quickstart: the three REVERE components in one small session.

   1. MANGROVE  — annotate an HTML page, publish, get instant results.
   2. Piazza    — share the structured data with a second peer through a
                  schema mapping, query in either vocabulary.
   3. Corpus    — let the statistics suggest what to do next.

   Run with: dune exec examples/quickstart.exe *)

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  section "1. MANGROVE: structure an existing web page";
  (* Professor Alon's home page, as it already exists. *)
  let leaf tag value = Xmlmodel.Xml.element tag [ Xmlmodel.Xml.text value ] in
  let body =
    Xmlmodel.Xml.element "html"
      [ Xmlmodel.Xml.element "h1" [ Xmlmodel.Xml.text "alon's home page" ];
        Xmlmodel.Xml.element "div"
          [ leaf "span" "alon halevy"; leaf "span" "206-543-1695";
            leaf "span" "allen 592"; leaf "span" "alon42@berkeley.edu" ] ]
  in
  let page = Mangrove.Html.make ~url:"http://uw.edu/alon.html" ~title:"alon" body in
  let node =
    Core.Revere.create ~name:"uw" ~peer_schema:[ ("person", [ "name"; "phone"; "office" ]) ] ()
  in
  let annotator = Core.Revere.annotator node page in
  (* Highlight regions of the page and pick tags from the schema tree. *)
  Mangrove.Annotator.annotate_exn annotator ~node:[ 1 ] ~tag:"person";
  Mangrove.Annotator.annotate_exn annotator ~node:[ 1; 0 ] ~tag:"name";
  Mangrove.Annotator.annotate_exn annotator ~node:[ 1; 1 ] ~tag:"phone";
  Mangrove.Annotator.annotate_exn annotator ~node:[ 1; 2 ] ~tag:"office";
  Mangrove.Annotator.annotate_exn annotator ~node:[ 1; 3 ] ~tag:"email";
  (* Instant gratification: a live Who's Who refreshes on publish. *)
  let repo = Core.Revere.repository node in
  let whos_who = Mangrove.Apps.live ~compute:Mangrove.Apps.who_is_who repo in
  let triples = Core.Revere.publish node annotator in
  Printf.printf "published %d triples from %s\n" triples page.Mangrove.Html.url;
  List.iter
    (fun (r : Mangrove.Apps.person_row) ->
      Printf.printf "who's who: %s | %s | %s\n" r.Mangrove.Apps.person_name
        r.Mangrove.Apps.email r.Mangrove.Apps.office)
    (Mangrove.Apps.value whos_who);
  Printf.printf "the app refreshed %d time(s) without being asked\n"
    (Mangrove.Apps.refresh_count whos_who);

  section "2. Piazza: share through a peer mapping";
  let catalog = Pdms.Catalog.create () in
  Pdms.Catalog.add_peer catalog (Core.Revere.peer node);
  (* Feed the published annotations into the peer's stored relation. *)
  let synced =
    Core.Revere.sync node ~catalog ~rel:"person" ~tag:"person"
      ~fields:[ "name"; "phone"; "office" ]
  in
  Printf.printf "synced %d tuples into uw's stored relation\n" synced;
  (* A second institution with its own vocabulary: staff(who, tel). *)
  let mit = Pdms.Peer.create ~name:"mit" ~schema:[ ("staff", [ "who"; "tel" ]) ] in
  Pdms.Catalog.add_peer catalog mit;
  let v = Cq.Term.v in
  let lhs =
    Cq.Query.make (Cq.Atom.make "m" [ v "N"; v "P" ])
      [ Pdms.Peer.atom (Core.Revere.peer node) "person" [ v "N"; v "P"; v "O" ] ]
  in
  let rhs =
    Cq.Query.make (Cq.Atom.make "m" [ v "N"; v "P" ])
      [ Pdms.Peer.atom mit "staff" [ v "N"; v "P" ] ]
  in
  ignore (Pdms.Catalog.add_mapping catalog (Pdms.Peer_mapping.equality ~lhs ~rhs));
  (* MIT queries in ITS schema; answers come from UW's data. *)
  let query =
    Cq.Query.make (Cq.Atom.make "ans" [ v "W"; v "T" ])
      [ Pdms.Peer.atom mit "staff" [ v "W"; v "T" ] ]
  in
  let result = Pdms.Answer.answer catalog query in
  Printf.printf "mit asks staff(who, tel) and gets:\n";
  List.iter
    (fun row -> Printf.printf "  %s\n" (String.concat " | " row))
    (Pdms.Answer.answers_list result);
  Format.printf "reformulation: %a@."
    Pdms.Reformulate.pp_stats result.Pdms.Answer.outcome.Pdms.Reformulate.stats;

  section "3. Corpus: statistics advise the next designer";
  let prng = Util.Prng.create 1 in
  let corpus = Workload.University.corpus_of_variants prng ~n:8 ~level:0.3 in
  let stats = Corpus.Basic_stats.build corpus in
  let usage = Corpus.Basic_stats.term_usage stats "phone" in
  Printf.printf "'phone' is an attribute in %.0f%% of corpus schemas\n"
    (100.0 *. usage.Corpus.Basic_stats.as_attribute);
  (match Corpus.Basic_stats.cooccurring_attrs stats "phone" with
  | (top, f) :: _ ->
      Printf.printf "it most often sits next to '%s' (%.0f%% of its relations)\n"
        top (100.0 *. f)
  | [] -> ());
  let advisor = Advisor.Design_advisor.build corpus in
  let partial =
    Corpus.Schema_model.make ~name:"draft"
      [ Corpus.Schema_model.relation "course"
          [ Corpus.Schema_model.attribute "title";
            Corpus.Schema_model.attribute "instructor" ] ]
  in
  let missing = Advisor.Design_advisor.autocomplete advisor ~partial in
  Printf.printf "DesignAdvisor proposes %d further elements, e.g.:\n"
    (List.length missing);
  List.iteri
    (fun i (rel, attr) -> if i < 5 then Printf.printf "  %s.%s\n" rel attr)
    missing;

  section "4. U-WORLD habits over S-WORLD data";
  (* Keyword search across every peer's stored relations. *)
  List.iter
    (fun hit -> Printf.printf "keyword hit: %s\n" (Pdms.Keyword.render_hit hit))
    (Pdms.Keyword.search catalog "halevy");
  (* Graceful degradation: the user misremembers the office. *)
  let bad_guess =
    Cq.Parser.parse_query_exn
      "ans(N) :- uw.person!(N, P, 'allen 999')"
  in
  (match Cq.Relax.graceful (Pdms.Catalog.global_db catalog) bad_guess with
  | Some r ->
      Printf.printf
        "query for office 'allen 999' found nothing; after %d relaxation \
         step(s) we get:\n"
        (List.length r.Cq.Relax.steps);
      Relalg.Relation.iter
        (fun row ->
          Printf.printf "  %s\n"
            (String.concat " | "
               (Array.to_list (Array.map Relalg.Value.to_string row))))
        r.Cq.Relax.answers
  | None -> Printf.printf "nothing found even after relaxation\n");
  print_newline ()
