(* A schema-design session with the corpus tools (Section 4.3):

   - the coordinator sketches a course fragment;
   - DesignAdvisor ranks similar corpus schemas and auto-completes;
   - she then (wrongly) folds TA fields into the course table, and the
     monitoring critique suggests the separate table the corpus uses;
   - finally a user who has never seen the resulting schema poses a
     query in her own vocabulary and the corpus reformulates it.

   Run with: dune exec examples/design_session.exe *)

module Sm = Corpus.Schema_model

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let prng = Util.Prng.create 11 in
  section "The corpus of structures";
  let corpus = Workload.University.corpus_of_variants prng ~n:10 ~level:0.3 in
  (* A handful of corpus schemas keep TA info in its own relation. *)
  List.iteri
    (fun i _ ->
      Corpus.Corpus_store.add_schema corpus
        (Workload.Data_gen.populate (Util.Prng.split prng) ~samples:15
           (Sm.make ~name:(Printf.sprintf "ta_univ_%d" i)
              [ Sm.relation "course"
                  [ Sm.attribute "title"; Sm.attribute "instructor";
                    Sm.attribute "room" ];
                Sm.relation "ta"
                  [ Sm.attribute "ta_name"; Sm.attribute "contact_phone" ] ])))
    [ (); (); (); () ];
  Printf.printf "corpus holds %d schemas\n" (Corpus.Corpus_store.size corpus);
  let stats = Corpus.Basic_stats.build corpus in
  Printf.printf "most similar names to 'instructor' (distributional):\n";
  List.iteri
    (fun i (t, s) -> if i < 4 then Printf.printf "  %-20s %.3f\n" t s)
    (Corpus.Similar_names.most_similar stats "instructor");

  section "Auto-complete a partial schema";
  let partial =
    Workload.Data_gen.populate prng ~samples:15
      (Sm.make ~name:"draft"
         [ Sm.relation "course"
             [ Sm.attribute "title"; Sm.attribute "instructor" ] ])
  in
  let advisor = Advisor.Design_advisor.build corpus in
  (match Advisor.Design_advisor.rank ~limit:3 advisor ~partial with
  | [] -> Printf.printf "no suggestions\n"
  | suggestions ->
      List.iter
        (fun (s : Advisor.Design_advisor.suggestion) ->
          Printf.printf "candidate %-12s score %.3f (%d matched, %d to add)\n"
            s.Advisor.Design_advisor.candidate.Sm.schema_name
            s.Advisor.Design_advisor.score
            (List.length s.Advisor.Design_advisor.matched)
            (List.length s.Advisor.Design_advisor.missing))
        suggestions;
      let missing = Advisor.Design_advisor.autocomplete advisor ~partial in
      Printf.printf "auto-complete proposes:\n";
      List.iteri
        (fun i (rel, attr) -> if i < 6 then Printf.printf "  %s.%s\n" rel attr)
        missing);

  section "The TA-table critique";
  let raw_stats = Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Raw corpus in
  let draft =
    Sm.make ~name:"draft2"
      [ Sm.relation "course"
          [ Sm.attribute "title"; Sm.attribute "instructor"; Sm.attribute "room";
            Sm.attribute "ta_name"; Sm.attribute "contact_phone" ] ]
  in
  (match Advisor.Critique.decompositions ~stats:raw_stats ~corpus draft with
  | [] -> Printf.printf "no critique (unexpected)\n"
  | advices ->
      List.iter
        (fun (a : Advisor.Critique.advice) ->
          Printf.printf
            "in relation '%s', the corpus usually keeps {%s} in a separate\n\
             relation%s (confidence %.2f)\n"
            a.Advisor.Critique.relation
            (String.concat ", " a.Advisor.Critique.move_out)
            (match a.Advisor.Critique.suggested_relation with
            | Some r -> Printf.sprintf " — it tends to be called '%s'" r
            | None -> "")
            a.Advisor.Critique.confidence)
        advices);

  section "Frequent partial structures and estimation";
  let exact = Corpus.Composite_stats.frequent_itemsets ~stats corpus ~min_support:4 in
  Printf.printf "%d frequent attribute sets maintained; top three:\n"
    (List.length exact);
  List.iteri
    (fun i (it : Corpus.Composite_stats.itemset) ->
      if i < 3 then
        Printf.printf "  {%s} support=%d\n"
          (String.concat ", " it.Corpus.Composite_stats.attrs)
          it.Corpus.Composite_stats.support)
    exact;
  let probe = [ "title"; "instructor"; "room" ] in
  Printf.printf "estimated support of {%s}: %.1f (true: %d)\n"
    (String.concat ", " probe)
    (Corpus.Estimate.estimated_support ~stats corpus ~exact probe)
    (Corpus.Composite_stats.support ~stats corpus probe);

  section "GLUE: matching two course taxonomies";
  (* Two universities organise their course catalogs as taxonomies with
     different concept names; GLUE matches them from instances alone. *)
  let taxonomy renamer =
    Matching.Taxonomy.make (renamer "catalog")
      [ Matching.Taxonomy.make
          ~instances:
            [ "relational databases and sql"; "query optimization techniques";
              "transactions and recovery" ]
          (renamer "databases") [];
        Matching.Taxonomy.make
          ~instances:
            [ "roman empire and ancient law"; "medieval europe";
              "renaissance florence and its art" ]
          (renamer "history") [] ]
  in
  let ta = taxonomy Fun.id in
  let tb =
    taxonomy (function
      | "catalog" -> "curriculum"
      | "databases" -> "data_systems"
      | "history" -> "past_studies"
      | other -> other)
  in
  List.iter
    (fun (a, b) -> Printf.printf "GLUE: %s <-> %s\n" a b)
    (Matching.Glue.match_taxonomies ta tb);

  section "Querying an unfamiliar schema (Section 4.4)";
  let target =
    Sm.make ~name:"target"
      [ Sm.relation "course" [ Sm.attribute "title"; Sm.attribute "instructor" ];
        Sm.relation "person" [ Sm.attribute "name"; Sm.attribute "phone" ] ]
  in
  let user_query =
    Cq.Query.make
      (Cq.Atom.make "ans" [ Cq.Term.v "T" ])
      [ Cq.Atom.make "class" [ Cq.Term.v "T"; Cq.Term.v "I" ] ]
  in
  Printf.printf "user asks (her own words): %s\n" (Cq.Query.to_string user_query);
  List.iter
    (fun (c : Advisor.Query_reformulator.candidate) ->
      Printf.printf "  candidate (%.2f): %s\n" c.Advisor.Query_reformulator.confidence
        (Cq.Query.to_string c.Advisor.Query_reformulator.reformulated))
    (Advisor.Query_reformulator.reformulate ~stats ~target user_query);
  print_newline ()
