(** Matching a query subgoal into a view body — the shared machinery of
    the Bucket and MiniCon algorithms.

    A cover state is a single substitution over two disjoint variable
    namespaces: query variables map to view terms, and view variables map
    to view terms or constants (recording head-homomorphism equalities
    and constant constraints). Callers must ensure the namespaces are
    disjoint, e.g. via {!prepare_views}. *)

type state = Cq.Subst.t

val empty : state

val prepare_views : Cq.Query.t list -> Cq.Query.t list
(** Freshen each view with a unique suffix so its variables cannot
    collide with query variables or other views'. *)

val match_subgoal :
  view:Cq.Query.t -> state -> Cq.Atom.t -> Cq.Atom.t -> state option
(** [match_subgoal ~view st g b] extends [st] so that query subgoal [g]
    is covered by view body atom [b]. Fails when it would require
    equating existential view variables or binding an existential view
    variable to a constant. *)

val image : state -> string -> Cq.Term.t
(** [image st x] is the (walked) view-side image of query variable [x];
    [Var x] itself if unbound. *)

val maps_to_existential : view:Cq.Query.t -> state -> string -> bool
(** Does query variable [x] map to an existential variable of [view]? *)
