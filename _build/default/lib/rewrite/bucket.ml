open Cq

type stats = {
  bucket_sizes : int list;
  candidates_tried : int;
  candidates_valid : int;
  truncated : bool;
}

type entry = { view : Query.t; state : Cover.state }

(* A view enters subgoal [g]'s bucket when some view body atom matches
   [g] and every distinguished query variable of [g] maps to a
   distinguished view variable or a constant. Unlike MiniCon, no
   closure over existential variables is performed — that laxity is
   exactly what the validation step later pays for. *)
let bucket_for (q : Query.t) views (g : Atom.t) =
  let head_vars = Query.head_vars q in
  List.concat_map
    (fun view ->
      List.filter_map
        (fun b ->
          match Cover.match_subgoal ~view Cover.empty g b with
          | None -> None
          | Some st ->
              let ok =
                List.for_all
                  (fun x ->
                    (not (List.mem x head_vars))
                    || not (Cover.maps_to_existential ~view st x))
                  (Atom.vars g)
              in
              if ok then Some { view; state = st } else None)
        view.Query.body)
    views

let rewrite ?(max_candidates = 200_000) ~views (q : Query.t) =
  let views = Cover.prepare_views views in
  let body = Array.of_list q.Query.body in
  let n = Array.length body in
  let buckets = Array.init n (fun i -> bucket_for q views body.(i)) in
  let bucket_sizes = Array.to_list (Array.map List.length buckets) in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "~f%d" !counter
  in
  let tried = ref 0 in
  let truncated = ref false in
  let results = ref [] in
  (* Depth-first cartesian product over the buckets. *)
  let rec product i chosen =
    if !tried >= max_candidates then truncated := true
    else if i = n then begin
      incr tried;
      let pieces =
        List.rev
          (List.mapi
             (fun k e ->
               Build.piece ~view:e.view ~state:e.state
                 ~covered:[ n - 1 - k ] ~query:q)
             chosen)
      in
      match Build.assemble ~fresh q pieces with
      | None -> ()
      | Some candidate ->
          if Minicon.is_contained_rewriting ~views candidate q then
            results := Minimize.remove_duplicate_atoms candidate :: !results
    end
    else List.iter (fun e -> product (i + 1) (e :: chosen)) buckets.(i)
  in
  if n > 0 && Array.for_all (fun b -> b <> []) buckets then product 0 [];
  let normalize (r : Query.t) =
    { r with Query.body = List.sort Atom.compare r.Query.body }
  in
  let deduped =
    List.fold_left
      (fun acc r ->
        let nr = normalize r in
        if List.exists (fun r' -> Query.equal (normalize r') nr) acc then acc
        else r :: acc)
      [] !results
    |> List.rev
  in
  ( deduped,
    {
      bucket_sizes;
      candidates_tried = !tried;
      candidates_valid = List.length deduped;
      truncated = !truncated;
    } )
