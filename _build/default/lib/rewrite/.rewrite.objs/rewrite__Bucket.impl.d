lib/rewrite/bucket.ml: Array Atom Build Cover Cq List Minicon Minimize Printf Query
