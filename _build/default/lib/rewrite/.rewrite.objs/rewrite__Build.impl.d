lib/rewrite/build.ml: Array Atom Cover Cq Hashtbl List Option Query Relalg String Subst Term Util
