lib/rewrite/cover.mli: Cq
