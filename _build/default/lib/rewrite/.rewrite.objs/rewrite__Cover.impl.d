lib/rewrite/cover.ml: Atom Cq List Printf Query Relalg String Subst Term
