lib/rewrite/glav.ml: Atom Cq Format Query
