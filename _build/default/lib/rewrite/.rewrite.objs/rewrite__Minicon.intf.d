lib/rewrite/minicon.mli: Cq
