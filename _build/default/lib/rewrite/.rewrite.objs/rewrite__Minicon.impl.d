lib/rewrite/minicon.ml: Array Atom Build Containment Cover Cq Fun Hashtbl Int List Minimize Printf Query Set String Subst Term Unfold
