lib/rewrite/build.mli: Cover Cq
