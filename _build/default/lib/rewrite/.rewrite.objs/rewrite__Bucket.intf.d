lib/rewrite/bucket.mli: Cq
