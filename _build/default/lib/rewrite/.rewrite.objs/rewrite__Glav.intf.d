lib/rewrite/glav.mli: Cq Format
