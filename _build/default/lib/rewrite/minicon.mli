(** The MiniCon algorithm (Pottinger & Halevy, VLDB J. 2001) for
    answering queries using views — the core of LAV-direction query
    reformulation in the PDMS.

    Phase 1 forms MiniCon descriptions (MCDs): minimal view covers of
    query subgoals satisfying the distinguished-variable conditions.
    Phase 2 combines MCDs with disjoint subgoal coverage into conjunctive
    rewritings over the view predicates. The union of the produced
    rewritings is the maximally-contained rewriting of the query. *)

type stats = {
  mcds_formed : int;
  combinations_tried : int;
  rewritings_produced : int;
}

val rewrite : views:Cq.Query.t list -> Cq.Query.t -> Cq.Query.t list * stats
(** [rewrite ~views q] returns contained rewritings of [q] over the view
    predicates. View heads must use distinct predicate names from base
    relations. *)

val expand : views:Cq.Query.t list -> Cq.Query.t -> Cq.Query.t list
(** Expand a rewriting back to base predicates by unfolding view
    definitions (used for verification and end-to-end evaluation). *)

val is_contained_rewriting : views:Cq.Query.t list -> Cq.Query.t -> Cq.Query.t -> bool
(** [is_contained_rewriting ~views r q]: does [r]'s expansion hold only
    answers of [q]? *)
