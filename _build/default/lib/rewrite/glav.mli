(** GLAV (global-local-as-view) mappings: [Q_l(x̄) ⊆ Q_r(x̄)] or
    [Q_l(x̄) = Q_r(x̄)], where the two sides are conjunctive queries over
    different schemas sharing head variables. This is the mapping
    formalism the paper adopts for Piazza (Section 3.1.1, citing
    Friedman-Levy-Millstein). *)

type kind = Inclusion | Equality

type t = { kind : kind; lhs : Cq.Query.t; rhs : Cq.Query.t }

val make : kind -> lhs:Cq.Query.t -> rhs:Cq.Query.t -> t
(** Raises [Invalid_argument] unless both sides are safe and share head
    arity. *)

val gav : lhs:Cq.Query.t -> rhs:Cq.Query.t -> t
(** Equality shorthand. *)

val split : t -> mapping_pred:string -> Cq.Query.t * Cq.Query.t
(** [split m ~mapping_pred] decomposes the GLAV statement through a fresh
    mapping predicate [M]: returns [(rule, view)] where [rule] is the
    GAV-style rule [M(x̄) :- body(lhs)] and [view] is the LAV-style view
    definition [M(x̄) :- body(rhs)]. Reformulation first rewrites the
    query using [view] (answering queries using views), then unfolds
    [M] through [rule]. *)

val reversed : t -> t option
(** For an [Equality] mapping, the mapping with sides swapped; [None]
    for inclusions (they are directional). *)

val pp : Format.formatter -> t -> unit
