open Cq

type kind = Inclusion | Equality

type t = { kind : kind; lhs : Query.t; rhs : Query.t }

let make kind ~lhs ~rhs =
  if Atom.arity lhs.Query.head <> Atom.arity rhs.Query.head then
    invalid_arg "Glav.make: head arity mismatch";
  if not (Query.is_safe lhs && Query.is_safe rhs) then
    invalid_arg "Glav.make: both sides must be safe";
  { kind; lhs; rhs }

let gav ~lhs ~rhs = make Equality ~lhs ~rhs

let retarget pred (q : Query.t) =
  { q with Query.head = { q.Query.head with Atom.pred } }

let split t ~mapping_pred =
  (retarget mapping_pred t.lhs, retarget mapping_pred t.rhs)

let reversed t =
  match t.kind with
  | Inclusion -> None
  | Equality -> Some { t with lhs = t.rhs; rhs = t.lhs }

let pp fmt t =
  let op = match t.kind with Inclusion -> "⊆" | Equality -> "=" in
  Format.fprintf fmt "%a %s %a" Query.pp t.lhs op Query.pp t.rhs
