open Cq

type piece = {
  view : Query.t;
  state : Cover.state;
  covered : int list;
  covered_qvars : string list;
}

let piece ~view ~state ~covered ~query =
  let body = Array.of_list query.Query.body in
  let qvars =
    List.concat_map (fun i -> Atom.vars body.(i)) covered
    |> List.sort_uniq String.compare
  in
  { view; state; covered; covered_qvars = qvars }

exception Conflict

let assemble ~fresh (q : Query.t) pieces =
  let uf = Util.Union_find.create () in
  (* Query variables mapped to the same distinguished view variable by
     one piece are equated in the rewriting. *)
  List.iter
    (fun p ->
      let by_image = Hashtbl.create 8 in
      List.iter
        (fun x ->
          match Cover.image p.state x with
          | Term.Var v when not (String.equal v x) ->
              let group = Option.value ~default:[] (Hashtbl.find_opt by_image v) in
              Hashtbl.replace by_image v (x :: group)
          | Term.Var _ | Term.Const _ -> ())
        p.covered_qvars;
      Hashtbl.iter
        (fun _ group ->
          match group with
          | [] | [ _ ] -> ()
          | x :: rest -> List.iter (Util.Union_find.union uf x) rest)
        by_image)
    pieces;
  let repr x = Util.Union_find.find uf x in
  (* Rewriting-side term for each (representative) query variable. *)
  let global : (string, Term.t) Hashtbl.t = Hashtbl.create 16 in
  try
    List.iter
      (fun p ->
        List.iter
          (fun x ->
            let key = repr x in
            match Cover.image p.state x with
            | Term.Const c -> (
                match Hashtbl.find_opt global key with
                | Some (Term.Const c') when not (Relalg.Value.equal c c') ->
                    raise Conflict
                | Some (Term.Const _) -> ()
                | Some (Term.Var _) | None ->
                    Hashtbl.replace global key (Term.Const c))
            | Term.Var v ->
                if
                  (not (String.equal v x))
                  && Query.is_distinguished p.view v
                  && not (Hashtbl.mem global key)
                then Hashtbl.replace global key (Term.Var key))
          p.covered_qvars)
      pieces;
    let atom_of_piece p =
      (* Reverse map: distinguished view var -> covered query vars. *)
      let exposing = Hashtbl.create 8 in
      List.iter
        (fun x ->
          match Cover.image p.state x with
          | Term.Var v when not (String.equal v x) ->
              if not (Hashtbl.mem exposing v) then Hashtbl.replace exposing v x
          | Term.Var _ | Term.Const _ -> ())
        p.covered_qvars;
      let args =
        List.map
          (fun head_arg ->
            match Subst.walk p.state head_arg with
            | Term.Const c -> Term.Const c
            | Term.Var v -> (
                match Hashtbl.find_opt exposing v with
                | Some x -> (
                    match Hashtbl.find_opt global (repr x) with
                    | Some t -> t
                    | None -> Term.Var (repr x))
                | None -> Term.Var (fresh ())))
          p.view.Query.head.Atom.args
      in
      Atom.make p.view.Query.head.Atom.pred args
    in
    let body = List.map atom_of_piece pieces in
    let head_args =
      List.map
        (fun t ->
          match t with
          | Term.Const _ -> t
          | Term.Var x -> (
              match Hashtbl.find_opt global (repr x) with
              | Some t -> t
              | None -> raise Conflict (* head variable not exposed *)))
        q.Query.head.Atom.args
    in
    Some { Query.head = Atom.make q.Query.head.Atom.pred head_args; body }
  with Conflict -> None
