(** Assembling a candidate rewriting from per-view cover pieces.

    Both Bucket and MiniCon end with the same construction problem: given
    a set of views, each covering some query subgoals under a cover
    state, emit a conjunctive query over the view predicates whose head
    is the original query head. *)

type piece = {
  view : Cq.Query.t;  (** freshened view (head predicate = view name) *)
  state : Cover.state;
  covered : int list;  (** indices of covered query subgoals *)
  covered_qvars : string list;
      (** query variables occurring in the covered subgoals *)
}

val piece : view:Cq.Query.t -> state:Cover.state -> covered:int list
  -> query:Cq.Query.t -> piece
(** Computes [covered_qvars] from the query body. *)

val assemble : fresh:(unit -> string) -> Cq.Query.t -> piece list -> Cq.Query.t option
(** [assemble ~fresh q pieces] builds the rewriting, or [None] when the
    pieces impose conflicting constant constraints or fail to expose a
    distinguished variable of [q]. *)
