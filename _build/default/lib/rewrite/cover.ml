open Cq

type state = Subst.t

let empty = Subst.empty

let prepare_views views =
  List.mapi (fun i v -> Query.freshen ~suffix:(Printf.sprintf "~v%d" i) v) views

let distinguished (view : Query.t) v = Query.is_distinguished view v

(* Match one argument position: query term [qterm] against view term
   [vterm] under [st]. *)
let match_pos ~view st qterm vterm =
  let vt = Subst.walk st vterm in
  match qterm with
  | Term.Const c -> (
      match vt with
      | Term.Const c' -> if Relalg.Value.equal c c' then Some st else None
      | Term.Var v ->
          if distinguished view v then Some (Subst.bind st v (Term.Const c))
          else None)
  | Term.Var x -> (
      match Subst.walk st (Term.Var x) with
      | Term.Var x' when String.equal x' x -> Some (Subst.bind st x vt)
      | prev -> (
          match (prev, vt) with
          | Term.Const c, Term.Const c' ->
              if Relalg.Value.equal c c' then Some st else None
          | Term.Const c, Term.Var v | Term.Var v, Term.Const c ->
              if distinguished view v then Some (Subst.bind st v (Term.Const c))
              else None
          | Term.Var v, Term.Var w ->
              if String.equal v w then Some st
              else if distinguished view v && distinguished view w then
                (* Head homomorphism: equate two distinguished vars. *)
                Some (Subst.bind st w (Term.Var v))
              else None))

let match_subgoal ~view st (g : Atom.t) (b : Atom.t) =
  if (not (String.equal g.Atom.pred b.Atom.pred)) || Atom.arity g <> Atom.arity b
  then None
  else
    let rec go st = function
      | [], [] -> Some st
      | qt :: qrest, vt :: vrest -> (
          match match_pos ~view st qt vt with
          | None -> None
          | Some st -> go st (qrest, vrest))
      | _ -> None
    in
    go st (g.Atom.args, b.Atom.args)

let image st x = Subst.walk st (Term.Var x)

let maps_to_existential ~view st x =
  match image st x with
  | Term.Const _ -> false
  | Term.Var v ->
      (* An unbound query variable is not mapped at all. *)
      (not (String.equal v x)) && not (distinguished view v)
