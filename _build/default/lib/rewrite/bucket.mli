(** The Bucket algorithm (Levy et al., from the Information Manifold
    line of work) — the classic baseline MiniCon improves on. One bucket
    per query subgoal; candidate rewritings are the cartesian product of
    the buckets, each validated by an expansion containment check. *)

type stats = {
  bucket_sizes : int list;
  candidates_tried : int;
  candidates_valid : int;
  truncated : bool;  (** hit [max_candidates] before exhausting the product *)
}

val rewrite :
  ?max_candidates:int ->
  views:Cq.Query.t list ->
  Cq.Query.t ->
  Cq.Query.t list * stats
(** [rewrite ~views q] returns the contained rewritings found among the
    candidate combinations (default candidate cap: 200_000). *)
