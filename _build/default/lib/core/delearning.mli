(** The DElearning scenario (Example 1.1/3.1): a distance-education
    coalition of universities sharing course data through the PDMS, new
    members joining with corpus assistance. *)

type scenario = {
  delearning : Workload.University.delearning;
  corpus : Corpus.Corpus_store.t;
      (** the schemas already in the coalition, with sample data *)
  matcher : Matching.Corpus_matcher.t;
}

val build : Util.Prng.t -> courses_per_peer:int -> scenario
(** The Figure-2 six-university coalition with stored courses. *)

type join_report = {
  joined_peer : Pdms.Peer.t;
  mapped_to : string;  (** the existing peer it authored a mapping to *)
  correspondences : (string * string) list;
      (** (new attr, existing attr) proposed by the MatchingAdvisor *)
  mapping_id : Pdms.Catalog.mapping_id;
}

val join_university :
  scenario ->
  Util.Prng.t ->
  name:string ->
  rel:string ->
  attrs:string list ->
  courses:int ->
  join_report
(** The paper's three-step join flow: (1) the new university's course
    data is stored at its peer; (2) the corpus identifies the
    semantically closest member schema; (3) the MatchingAdvisor
    proposes attribute correspondences, from which the equality mapping
    is authored and registered. Raises [Invalid_argument] when no
    correspondence at all can be proposed. *)

val courses_visible_at : scenario -> string -> string list
(** Course titles a student browsing the named university sees — the
    "full set of distance-education courses" of Example 3.1. *)
