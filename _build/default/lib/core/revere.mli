(** A REVERE node (Figure 1): one organisation's deployment of the three
    components — a MANGROVE repository fed by annotated pages, a Piazza
    peer publishing the structured data, and handles to the corpus-based
    advisors. The [sync] function is the arrow in Figure 1 from the
    annotated-HTML store to the peer's stored relations. *)

type t

val create :
  name:string ->
  ?schema:Mangrove.Lightweight_schema.t ->
  peer_schema:(string * string list) list ->
  unit ->
  t
(** Default MANGROVE schema: the department schema. *)

val name : t -> string
val repository : t -> Mangrove.Repository.t
val peer : t -> Pdms.Peer.t
val mangrove_schema : t -> Mangrove.Lightweight_schema.t

val annotator : t -> Mangrove.Html.t -> Mangrove.Annotator.t
(** Start the annotation tool on a page, against this node's schema. *)

val publish : t -> Mangrove.Annotator.t -> int
(** Publish into this node's repository. *)

val sync :
  t ->
  catalog:Pdms.Catalog.t ->
  rel:string ->
  tag:string ->
  fields:string list ->
  int
(** Export repository entities of [tag] into the peer's stored relation
    [rel] (declared with identity storage description on first use):
    one tuple per entity, columns = first published value per field
    ([Null] when absent). Returns the number of tuples inserted. The
    peer must already be registered in the catalog. *)

val schema_model_of_peer : Pdms.Peer.t -> rel:string -> Corpus.Schema_model.t
(** The peer relation as a corpus schema, sample values drawn from the
    stored data — what the MatchingAdvisor consumes when a new
    university joins. *)
