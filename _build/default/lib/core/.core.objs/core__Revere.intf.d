lib/core/revere.mli: Corpus Mangrove Pdms
