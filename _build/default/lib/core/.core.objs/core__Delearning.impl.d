lib/core/delearning.ml: Corpus Cq List Matching Pdms Printf Relalg Revere String Util Workload
