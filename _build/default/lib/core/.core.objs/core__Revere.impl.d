lib/core/revere.ml: Array Corpus List Mangrove Pdms Printf Relalg
