lib/core/delearning.mli: Corpus Matching Pdms Util Workload
