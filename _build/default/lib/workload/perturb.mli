(** Schema perturbation with ground truth — the engine of the matching
    experiments. Models the heterogeneity the paper attributes to
    "different domains and tastes in schema design": synonym renamings,
    abbreviations, token drops, relation splits, attribute drops, and
    independently regenerated sample data. *)

type t = {
  perturbed : Corpus.Schema_model.t;
  truth : ((string * string) * (string * string)) list;
      (** base (rel, attr) -> perturbed (rel, attr); dropped attributes
          have no entry *)
}

val label_of : string * string -> string
(** Render a base element as a mediated-schema label ("rel.attr"). *)

val perturb :
  ?name:string ->
  ?synonyms:Util.Synonyms.t ->
  Util.Prng.t ->
  level:float ->
  Corpus.Schema_model.t ->
  t
(** [level] in [0, 1] controls how aggressive every operator is. Sample
    values are regenerated from the attribute's semantic kind, so data
    remains comparable while names diverge. [synonyms] is the renaming
    vocabulary (default: the university table); pass an exotic table to
    produce renamings that name-based matchers cannot undo. *)

val truth_correspondences :
  t -> Matching.Evaluate.correspondence list
(** Ground truth in the evaluator's format: perturbed column -> base
    label. *)
