(** Deterministic vocabulary pools for the university domain. *)

val first_names : string array
val last_names : string array
val course_topics : string array
val course_levels : string array
val departments : string array
val buildings : string array
val days : string array
val times : string array
val venues : string array
val universities : string array
(** The six universities of Figure 2, in paper order. *)

val person_name : Util.Prng.t -> string
val course_code : Util.Prng.t -> string
val course_title : Util.Prng.t -> string
val phone : Util.Prng.t -> string
val email : Util.Prng.t -> name:string -> string
val room : Util.Prng.t -> string
val year : Util.Prng.t -> string
val url : host:string -> path:string -> string
