(** The paper's running example, made executable: the Figure-3 peer
    schemas (Berkeley and MIT DTDs), the Figure-4 Berkeley-to-MIT
    mapping template, the Figure-2 six-university PDMS, and the mediated
    university schema the matching experiments perturb. *)

(** {2 Figure 3: peer schemas as DTDs} *)

val berkeley_dtd : Xmlmodel.Dtd.t
(** schedule: college list; college: name + dept list; dept: name +
    course list; course: title, size. *)

val mit_dtd : Xmlmodel.Dtd.t
(** catalog: course list; course: name + subject list; subject: title,
    enrollment. *)

val berkeley_instance :
  Util.Prng.t -> colleges:int -> depts:int -> courses:int -> Xmlmodel.Xml.t
(** A random Berkeley.xml conforming to {!berkeley_dtd}. *)

(** {2 Figure 4: the Berkeley-to-MIT mapping template} *)

val berkeley_to_mit : Xmlmodel.Template.t

(** {2 The mediated relational university schema} *)

val mediated_schema : Corpus.Schema_model.t
(** course / person / ta / talk / publication relations; the base the
    perturbation experiments and the corpus generator start from. *)

val corpus_of_variants :
  Util.Prng.t -> n:int -> level:float -> Corpus.Corpus_store.t
(** A corpus of [n] independently perturbed variants of the mediated
    schema (each with fresh sample data) — the "corpus of structures"
    of Figure 5. *)

(** {2 Figure 2: the six-university PDMS} *)

type delearning = {
  catalog : Pdms.Catalog.t;
  peers : (string * Pdms.Peer.t) list;  (** name -> peer, paper order *)
  network : Pdms.Network.t;
  course_counts : (string * int) list;
}

val peer_course_schema : string -> string * string list
(** Each university's own (relation, attributes) shape for course data:
    e.g. mit -> subject(title, enrollment), roma -> corso(titolo,
    iscritti). *)

val peer_instructor_schema : string -> string * string list
(** The second relation every university carries: who teaches what,
    e.g. mit -> teacher(name, subject_title), roma -> docente(persona,
    titolo_corso). The second attribute joins with the course relation's
    title attribute. *)

val build_delearning : Util.Prng.t -> courses_per_peer:int -> delearning
(** Builds the peers, stores [courses_per_peer] courses at each (plus
    one instructor row per course, referencing the course's title), and
    authors equality mappings along the Figure-2 edges (Stanford-
    Berkeley, Stanford-MIT, MIT-Oxford, MIT-Tsinghua, Berkeley-Roma)
    for both the course and the instructor relations. *)

val course_query : Pdms.Peer.t -> Cq.Query.t
(** [q(title, size) :- peer's course relation] in the peer's own
    vocabulary. *)

val course_instructor_query : Pdms.Peer.t -> Cq.Query.t
(** The cross-relation join in the peer's own vocabulary:
    [q(title, person) :- course(title, size), instructor(person, title)] —
    answered across every mapped peer. *)
