(** Sample-value generation keyed by what an attribute {e means} (its
    canonical tokens), so perturbed schemas produce comparable data —
    the signal the LSD content and format learners rely on. *)

type kind =
  | Person_name
  | Phone
  | Email
  | Room
  | Time
  | Day
  | Title
  | Code
  | Year
  | Count
  | Department
  | Free_text

val kind_of_attr : string -> kind
(** Inferred from the attribute name's canonical tokens; defaults to
    [Free_text]. *)

val value : Util.Prng.t -> kind -> string
val values : Util.Prng.t -> kind -> int -> string list

val populate : Util.Prng.t -> samples:int -> Corpus.Schema_model.t -> Corpus.Schema_model.t
(** A copy of the schema with [samples] generated values per attribute
    (existing sample values are replaced). *)
