module Xml = Xmlmodel.Xml

type annotated_page = {
  doc : Mangrove.Html.t;
  plan : (int list * string) list;
}

let span value = Xml.element "span" [ Xml.text value ]
let h1 title = Xml.element "h1" [ Xml.text title ]

(* A block of fields: a div whose children are spans in a fixed order;
   the plan annotates the div with [instance_tag] and child [i] with
   [field_tags.(i)]. *)
let block ~at ~instance_tag fields =
  let div = Xml.element "div" (List.map (fun (_, value) -> span value) fields) in
  let plan =
    (at, instance_tag)
    :: List.mapi (fun i (tag, _) -> (at @ [ i ], tag)) fields
  in
  (div, plan)

let page ~url ~title blocks =
  let divs, plans =
    List.split
      (List.mapi (fun i make_block -> make_block ~at:[ i + 1 ]) blocks)
  in
  let body = Xml.element "html" (h1 title :: divs) in
  { doc = Mangrove.Html.make ~url ~title body; plan = List.concat plans }

let course_page prng ~host ~page_id ~courses =
  let url = Vocab.url ~host ~path:(Printf.sprintf "courses/%d.html" page_id) in
  let blocks =
    List.init courses (fun _ ->
        let fields =
          [ ("code", Vocab.course_code prng);
            ("title", Vocab.course_title prng);
            ("instructor", Vocab.person_name prng);
            ("room", Vocab.room prng);
            ("time", Util.Prng.pick_arr prng Vocab.times);
            ("day", Util.Prng.pick_arr prng Vocab.days) ]
        in
        block ~instance_tag:"course" fields)
  in
  page ~url ~title:(host ^ " course listings") blocks

let person_page prng ~host ~person_id =
  let name = Vocab.person_name prng in
  let url = Vocab.url ~host ~path:(Printf.sprintf "people/%d.html" person_id) in
  let fields =
    [ ("name", name);
      ("phone", Vocab.phone prng);
      ("email", Vocab.email prng ~name);
      ("office", Vocab.room prng) ]
  in
  page ~url ~title:(name ^ "'s home page") [ block ~instance_tag:"person" fields ]

let talk_page prng ~host ~talks =
  let url = Vocab.url ~host ~path:"talks.html" in
  let blocks =
    List.init talks (fun _ ->
        let fields =
          [ ("speaker", Vocab.person_name prng);
            ("topic", Vocab.course_title prng);
            ("venue", Vocab.room prng);
            ("when", Util.Prng.pick_arr prng Vocab.days
                     ^ " " ^ Util.Prng.pick_arr prng Vocab.times) ]
        in
        block ~instance_tag:"talk" fields)
  in
  page ~url ~title:(host ^ " colloquium calendar") blocks

let publication_page prng ~host ~author ~papers =
  let slug =
    match Util.Tokenize.words author with w :: _ -> w | [] -> "anon"
  in
  let url = Vocab.url ~host ~path:(Printf.sprintf "pubs/%s.html" slug) in
  let blocks =
    List.init papers (fun _ ->
        let fields =
          [ ("author", author);
            ("paper_title", Vocab.course_title prng);
            ("forum", Util.Prng.pick_arr prng Vocab.venues);
            ("year", Vocab.year prng) ]
        in
        block ~instance_tag:"publication" fields)
  in
  page ~url ~title:(author ^ "'s publications") blocks

let department prng ~host ~people ~course_pages ~courses_per_page =
  let person_pages = List.init people (fun i -> person_page prng ~host ~person_id:i) in
  let course_pages =
    List.init course_pages (fun i ->
        course_page prng ~host ~page_id:i ~courses:courses_per_page)
  in
  let talks = talk_page prng ~host ~talks:(max 1 (people / 2)) in
  let pubs =
    List.init people (fun _ ->
        publication_page prng ~host ~author:(Vocab.person_name prng) ~papers:2)
  in
  person_pages @ course_pages @ [ talks ] @ pubs

let annotate annotator plan =
  List.iter
    (fun (node, tag) -> Mangrove.Annotator.annotate_exn annotator ~node ~tag)
    plan

let publish_department prng ~repo ~host ~people ~course_pages ~courses_per_page =
  let pages = department prng ~host ~people ~course_pages ~courses_per_page in
  List.iter
    (fun p ->
      let annotator =
        Mangrove.Annotator.start ~schema:Mangrove.Lightweight_schema.department p.doc
      in
      annotate annotator p.plan;
      ignore (Mangrove.Repository.publish repo annotator))
    pages;
  List.length pages
