type t = {
  perturbed : Corpus.Schema_model.t;
  truth : ((string * string) * (string * string)) list;
}

let label_of (rel, attr) = rel ^ "." ^ attr

let swap_token synonyms prng tok =
  let group = Util.Synonyms.expand synonyms tok in
  match List.filter (fun w -> not (String.equal w tok)) group with
  | [] -> tok
  | others -> Util.Prng.pick prng others

let abbreviate tok =
  if String.length tok > 4 then String.sub tok 0 3 else tok

let perturb_name synonyms prng ~level name =
  let tokens = Util.Tokenize.split_identifier name in
  let tokens = match tokens with [] -> [ name ] | ts -> ts in
  let tokens =
    List.map
      (fun tok ->
        let tok =
          if Util.Prng.bernoulli prng level then swap_token synonyms prng tok
          else tok
        in
        if Util.Prng.bernoulli prng (level *. 0.4) then abbreviate tok else tok)
      tokens
  in
  (* Occasionally drop a qualifier token from multi-token names. *)
  let tokens =
    match tokens with
    | _ :: _ :: _ when Util.Prng.bernoulli prng (level *. 0.3) ->
        List.filteri (fun i _ -> i > 0) tokens
    | ts -> ts
  in
  String.concat "_" tokens

(* Ensure attribute names stay unique within a relation. *)
let uniquify names =
  let seen = Hashtbl.create 8 in
  List.map
    (fun n ->
      match Hashtbl.find_opt seen n with
      | None ->
          Hashtbl.replace seen n 1;
          n
      | Some k ->
          Hashtbl.replace seen n (k + 1);
          Printf.sprintf "%s%d" n (k + 1))
    names

let perturb ?name ?(synonyms = Util.Synonyms.university_domain) prng ~level
    (base : Corpus.Schema_model.t) =
  let truth = ref [] in
  let perturbed_relations =
    List.concat_map
      (fun (r : Corpus.Schema_model.relation) ->
        let rel = r.Corpus.Schema_model.rel_name in
        let new_rel = perturb_name synonyms prng ~level rel in
        (* Keep or drop each attribute. *)
        let kept =
          List.filter
            (fun (_ : Corpus.Schema_model.attribute) ->
              not (Util.Prng.bernoulli prng (level *. 0.15)))
            r.Corpus.Schema_model.attributes
        in
        let kept = if kept = [] then r.Corpus.Schema_model.attributes else kept in
        let renamed =
          uniquify
            (List.map
               (fun (a : Corpus.Schema_model.attribute) ->
                 perturb_name synonyms prng ~level a.Corpus.Schema_model.attr_name)
               kept)
        in
        let pairs = List.combine kept renamed in
        (* Structural split: peel off a suffix of a wide relation. *)
        let split =
          List.length pairs >= 4 && Util.Prng.bernoulli prng (level *. 0.6)
        in
        let emit rel_name pairs =
          List.iter
            (fun ((a : Corpus.Schema_model.attribute), new_attr) ->
              truth :=
                ((rel, a.Corpus.Schema_model.attr_name), (rel_name, new_attr))
                :: !truth)
            pairs;
          {
            Corpus.Schema_model.rel_name;
            attributes =
              List.map
                (fun ((a : Corpus.Schema_model.attribute), new_attr) ->
                  { a with Corpus.Schema_model.attr_name = new_attr })
                pairs;
          }
        in
        if split then begin
          let n = List.length pairs in
          let cut = n - (n / 3) in
          let main = List.filteri (fun i _ -> i < cut) pairs in
          let moved = List.filteri (fun i _ -> i >= cut) pairs in
          let side_name =
            match moved with
            | ((a : Corpus.Schema_model.attribute), _) :: _ ->
                perturb_name synonyms prng ~level:(level *. 0.5)
                  (a.Corpus.Schema_model.attr_name ^ "_info")
            | [] -> new_rel ^ "_info"
          in
          [ emit new_rel main; emit side_name moved ]
        end
        else [ emit new_rel pairs ])
      base.Corpus.Schema_model.relations
  in
  let schema_name =
    match name with
    | Some n -> n
    | None -> base.Corpus.Schema_model.schema_name ^ "_variant"
  in
  let perturbed =
    Corpus.Schema_model.make ~name:schema_name perturbed_relations
    |> Data_gen.populate prng ~samples:25
  in
  { perturbed; truth = List.rev !truth }

let truth_correspondences t =
  List.map
    (fun (base_key, (rel, attr)) ->
      {
        Matching.Evaluate.src = (rel, attr);
        dst = label_of base_key;
      })
    t.truth
