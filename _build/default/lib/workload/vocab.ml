let first_names =
  [| "alice"; "bruno"; "carla"; "daniel"; "elena"; "felix"; "grace"; "hugo";
     "irene"; "jamal"; "keiko"; "liang"; "maria"; "nadia"; "omar"; "priya";
     "quentin"; "rosa"; "stefan"; "tara"; "umberto"; "vera"; "wei"; "xenia";
     "yusuf"; "zoe" |]

let last_names =
  [| "anderson"; "bianchi"; "chen"; "dubois"; "evans"; "fischer"; "garcia";
     "haruki"; "ivanov"; "johnson"; "kim"; "lopez"; "moretti"; "nakamura";
     "okafor"; "patel"; "quinn"; "rossi"; "schmidt"; "tanaka"; "unger";
     "varga"; "wang"; "xu"; "yamamoto"; "zhang" |]

let course_topics =
  [| "databases"; "ancient history"; "machine learning"; "compilers";
     "operating systems"; "linear algebra"; "organic chemistry";
     "microeconomics"; "renaissance art"; "quantum mechanics";
     "distributed systems"; "roman law"; "number theory"; "genetics";
     "information retrieval"; "game theory"; "thermodynamics";
     "medieval literature"; "signal processing"; "epidemiology" |]

let course_levels = [| "introduction to"; "intermediate"; "advanced"; "seminar in"; "topics in" |]

let departments =
  [| "computer science"; "history"; "mathematics"; "physics"; "chemistry";
     "economics"; "biology"; "literature"; "philosophy"; "engineering" |]

let buildings =
  [| "allen"; "gates"; "meb"; "sieg"; "loew"; "savery"; "kane"; "guggenheim" |]

let days = [| "monday"; "tuesday"; "wednesday"; "thursday"; "friday" |]

let times =
  [| "8:30"; "9:30"; "10:30"; "11:30"; "12:30"; "13:30"; "14:30"; "15:30"; "16:30" |]

let venues = [| "CIDR"; "SIGMOD"; "VLDB"; "ICDE"; "WWW"; "AAAI" |]

let universities =
  [| "stanford"; "oxford"; "mit"; "tsinghua"; "roma"; "berkeley" |]

let person_name prng =
  Util.Prng.pick_arr prng first_names ^ " " ^ Util.Prng.pick_arr prng last_names

let course_code prng =
  let dept_code =
    match Util.Prng.int prng 4 with
    | 0 -> "cse"
    | 1 -> "hist"
    | 2 -> "math"
    | _ -> "phys"
  in
  Printf.sprintf "%s%d" dept_code (100 + Util.Prng.int prng 500)

let course_title prng =
  Util.Prng.pick_arr prng course_levels ^ " " ^ Util.Prng.pick_arr prng course_topics

let phone prng =
  Printf.sprintf "%d-%d-%d"
    (200 + Util.Prng.int prng 700)
    (100 + Util.Prng.int prng 900)
    (1000 + Util.Prng.int prng 9000)

let email prng ~name =
  let user =
    match Util.Tokenize.words name with
    | first :: _ -> first
    | [] -> "someone"
  in
  Printf.sprintf "%s%d@%s.edu" user (Util.Prng.int prng 100)
    (Util.Prng.pick_arr prng universities)

let room prng =
  Printf.sprintf "%s %d"
    (Util.Prng.pick_arr prng buildings)
    (100 + Util.Prng.int prng 500)

let year prng = string_of_int (1995 + Util.Prng.int prng 10)

let url ~host ~path = Printf.sprintf "http://%s.edu/%s" host path
