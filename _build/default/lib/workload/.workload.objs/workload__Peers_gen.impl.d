lib/workload/peers_gen.ml: Array Cq List Pdms Printf Relalg Vocab
