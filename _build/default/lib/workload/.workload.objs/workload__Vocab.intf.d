lib/workload/vocab.mli: Util
