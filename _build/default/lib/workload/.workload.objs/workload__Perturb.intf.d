lib/workload/perturb.mli: Corpus Matching Util
