lib/workload/pages.mli: Mangrove Util
