lib/workload/university.mli: Corpus Cq Pdms Util Xmlmodel
