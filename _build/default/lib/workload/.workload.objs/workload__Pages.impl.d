lib/workload/pages.ml: List Mangrove Printf Util Vocab Xmlmodel
