lib/workload/peers_gen.mli: Cq Pdms Util
