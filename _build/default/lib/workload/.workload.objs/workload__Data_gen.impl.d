lib/workload/data_gen.ml: Corpus List Util Vocab
