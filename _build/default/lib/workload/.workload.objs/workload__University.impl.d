lib/workload/university.ml: Array Corpus Cq List Pdms Perturb Printf Relalg Util Vocab Xmlmodel
