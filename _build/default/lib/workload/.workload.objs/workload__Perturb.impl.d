lib/workload/perturb.ml: Corpus Data_gen Hashtbl List Matching Printf String Util
