lib/workload/vocab.ml: Printf Util
