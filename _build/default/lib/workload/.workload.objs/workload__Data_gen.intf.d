lib/workload/data_gen.mli: Corpus Util
