type kind =
  | Person_name
  | Phone
  | Email
  | Room
  | Time
  | Day
  | Title
  | Code
  | Year
  | Count
  | Department
  | Free_text

let kind_of_attr attr =
  let canon =
    Util.Tokenize.split_identifier attr
    |> List.map (Util.Synonyms.canonical Util.Synonyms.university_domain)
  in
  let has t = List.mem t canon in
  if has "phone" then Phone
  else if has "email" then Email
  else if has "room" || has "office" || has "building" then Room
  else if has "hour" || has "when" then Time
  else if has "day" then Day
  else if has "instructor" || has "ta" || has "speaker" || has "author"
          || has "student" then Person_name
  else if has "name" || has "title" then Title
  else if has "code" || has "id" then Code
  else if has "year" then Year
  else if has "enrollment" || has "credit" || has "count" then Count
  else if has "department" || has "college" then Department
  else Free_text

let value prng = function
  | Person_name -> Vocab.person_name prng
  | Phone -> Vocab.phone prng
  | Email -> Vocab.email prng ~name:(Vocab.person_name prng)
  | Room -> Vocab.room prng
  | Time -> Util.Prng.pick_arr prng Vocab.times
  | Day -> Util.Prng.pick_arr prng Vocab.days
  | Title -> Vocab.course_title prng
  | Code -> Vocab.course_code prng
  | Year -> Vocab.year prng
  | Count -> string_of_int (5 + Util.Prng.int prng 300)
  | Department -> Util.Prng.pick_arr prng Vocab.departments
  | Free_text -> Vocab.course_title prng

let values prng kind n = List.init n (fun _ -> value prng kind)

let populate prng ~samples (s : Corpus.Schema_model.t) =
  let relations =
    List.map
      (fun (r : Corpus.Schema_model.relation) ->
        {
          r with
          Corpus.Schema_model.attributes =
            List.map
              (fun (a : Corpus.Schema_model.attribute) ->
                {
                  a with
                  Corpus.Schema_model.sample_values =
                    values prng (kind_of_attr a.Corpus.Schema_model.attr_name) samples;
                })
              r.Corpus.Schema_model.attributes;
        })
      s.Corpus.Schema_model.relations
  in
  { s with Corpus.Schema_model.relations }
