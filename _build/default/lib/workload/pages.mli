(** HTML page generation with annotation plans: each generated page
    comes with the list of (node, tag) annotations a user of the
    MANGROVE tool would make — the ground truth driving the MANGROVE
    benchmarks and examples. *)

type annotated_page = {
  doc : Mangrove.Html.t;
  plan : (int list * string) list;
}

val course_page :
  Util.Prng.t -> host:string -> page_id:int -> courses:int -> annotated_page

val person_page : Util.Prng.t -> host:string -> person_id:int -> annotated_page

val talk_page : Util.Prng.t -> host:string -> talks:int -> annotated_page

val publication_page :
  Util.Prng.t -> host:string -> author:string -> papers:int -> annotated_page

val department :
  Util.Prng.t ->
  host:string ->
  people:int ->
  course_pages:int ->
  courses_per_page:int ->
  annotated_page list
(** A department web: one page per person, several course pages, a talk
    calendar, and one publication page per person. *)

val annotate : Mangrove.Annotator.t -> (int list * string) list -> unit
(** Apply a plan (raises on schema violations — plans are valid against
    {!Mangrove.Lightweight_schema.department}). *)

val publish_department :
  Util.Prng.t ->
  repo:Mangrove.Repository.t ->
  host:string ->
  people:int ->
  course_pages:int ->
  courses_per_page:int ->
  int
(** Generate, annotate and publish a whole department; returns the
    number of pages published. *)
