let strip = String.trim

let split_prefix line prefix =
  let lp = String.length prefix in
  if String.length line > lp && String.sub line 0 lp = prefix then
    Some (strip (String.sub line lp (String.length line - lp)))
  else None

let parse_relation_decl rest =
  (* course(code, title, instructor) *)
  match String.index_opt rest '(' with
  | None -> Error "relation declaration needs (attributes)"
  | Some i ->
      let name = strip (String.sub rest 0 i) in
      let rest = String.sub rest (i + 1) (String.length rest - i - 1) in
      (match String.index_opt rest ')' with
      | None -> Error "missing closing parenthesis"
      | Some j ->
          let attrs =
            String.sub rest 0 j |> String.split_on_char ','
            |> List.map strip
            |> List.filter (fun a -> a <> "")
          in
          if name = "" then Error "empty relation name"
          else if attrs = [] then Error ("relation " ^ name ^ " has no attributes")
          else Ok (name, attrs))

let parse_join rest =
  (* course.instructor = person.name *)
  let parts = String.split_on_char '=' rest |> List.map strip in
  let split_dotted s =
    match String.index_opt s '.' with
    | Some i ->
        Some
          ( strip (String.sub s 0 i),
            strip (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> None
  in
  match parts with
  | [ a; b ] -> (
      match (split_dotted a, split_dotted b) with
      | Some (r1, a1), Some (r2, a2) -> Ok (r1, a1, r2, a2)
      | _ -> Error "join sides must be rel.attr")
  | _ -> Error "join needs exactly one '='"

let parse_values rest =
  (* course.title: v1 | v2 | v3 *)
  match String.index_opt rest ':' with
  | None -> Error "values needs 'rel.attr: v | v | ...'"
  | Some i ->
      let target = strip (String.sub rest 0 i) in
      let vals =
        String.sub rest (i + 1) (String.length rest - i - 1)
        |> String.split_on_char '|' |> List.map strip
        |> List.filter (fun v -> v <> "")
      in
      (match String.index_opt target '.' with
      | Some j ->
          Ok
            ( strip (String.sub target 0 j),
              strip (String.sub target (j + 1) (String.length target - j - 1)),
              vals )
      | None -> Error "values target must be rel.attr")

let parse text =
  let lines = String.split_on_char '\n' text in
  let name = ref None in
  let relations = ref [] in
  let joins = ref [] in
  let values = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None then
        let line = strip line in
        if line = "" || line.[0] = '#' then ()
        else
          let result =
            match split_prefix line "schema " with
            | Some n ->
                name := Some n;
                Ok ()
            | None -> (
                match split_prefix line "relation " with
                | Some rest ->
                    Result.map
                      (fun decl -> relations := decl :: !relations)
                      (parse_relation_decl rest)
                | None -> (
                    match split_prefix line "join " with
                    | Some rest ->
                        Result.map (fun j -> joins := j :: !joins) (parse_join rest)
                    | None -> (
                        match split_prefix line "values " with
                        | Some rest ->
                            Result.map
                              (fun v -> values := v :: !values)
                              (parse_values rest)
                        | None -> Error ("unrecognised line: " ^ line))))
          in
          match result with
          | Ok () -> ()
          | Error msg ->
              error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg))
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> (
      match !name with
      | None -> Error "missing 'schema <name>' line"
      | Some schema_name ->
          let relations =
            List.rev_map
              (fun (rel, attrs) ->
                Schema_model.relation rel
                  (List.map
                     (fun attr ->
                       let vals =
                         List.filter_map
                           (fun (r, a, vs) ->
                             if r = rel && a = attr then Some vs else None)
                           !values
                         |> List.concat
                       in
                       Schema_model.attribute ~values:vals attr)
                     attrs))
              !relations
          in
          Ok (Schema_model.make ~joins:(List.rev !joins) ~name:schema_name relations))

let parse_exn text =
  match parse text with
  | Ok s -> s
  | Error msg -> invalid_arg ("Schema_parser.parse_exn: " ^ msg)

let render (s : Schema_model.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("schema " ^ s.Schema_model.schema_name ^ "\n");
  List.iter
    (fun (r : Schema_model.relation) ->
      Buffer.add_string buf
        (Printf.sprintf "relation %s(%s)\n" r.Schema_model.rel_name
           (String.concat ", "
              (List.map
                 (fun (a : Schema_model.attribute) -> a.Schema_model.attr_name)
                 r.Schema_model.attributes)));
      List.iter
        (fun (a : Schema_model.attribute) ->
          if a.Schema_model.sample_values <> [] then
            Buffer.add_string buf
              (Printf.sprintf "values %s.%s: %s\n" r.Schema_model.rel_name
                 a.Schema_model.attr_name
                 (String.concat " | " a.Schema_model.sample_values)))
        r.Schema_model.attributes)
    s.Schema_model.relations;
  List.iter
    (fun (r1, a1, r2, a2) ->
      Buffer.add_string buf (Printf.sprintf "join %s.%s = %s.%s\n" r1 a1 r2 a2))
    s.Schema_model.joins;
  Buffer.contents buf
