(** A line-oriented text format for schemas, so the CLI and tests can
    read them from files:

    {v
    schema university
    relation course(code, title, instructor)
    relation person(name, email, phone)
    join course.instructor = person.name
    # comments and blank lines are ignored
    values course.title: intro to databases | ancient history
    v} *)

val parse : string -> (Schema_model.t, string) result
val parse_exn : string -> Schema_model.t

val render : Schema_model.t -> string
(** Inverse of [parse] (sample values included). *)
