(** The corpus itself: "a collection of disparate structures" (Section
    4.1) — schemas, their data samples (inside {!Schema_model}), and
    known mappings between corpus schemas. *)

type known_mapping = {
  from_schema : string;
  to_schema : string;
  correspondences : ((string * string) * (string * string)) list;
      (** ((rel, attr), (rel', attr')) pairs *)
}

type t

val create : unit -> t
val add_schema : t -> Schema_model.t -> unit
(** Raises [Invalid_argument] on duplicate schema names. *)

val add_mapping : t -> known_mapping -> unit
val schemas : t -> Schema_model.t list
val schema : t -> string -> Schema_model.t option
val mappings : t -> known_mapping list

val mappings_between : t -> string -> string -> known_mapping list
(** Mappings from the first schema to the second (direct only). *)

val size : t -> int

val all_columns : t -> (Schema_model.t * Schema_model.relation * Schema_model.attribute) list
