(** Composite statistics (Section 4.2.2): statistics over {e partial
    structures}. We maintain the frequent ones — attribute sets that
    recur across relations, mined Apriori-style — and estimate the rest
    (see {!Estimate}). *)

type itemset = { attrs : string list; support : int }
(** [support] = number of corpus relations containing all of [attrs]. *)

val frequent_itemsets :
  ?max_size:int -> stats:Basic_stats.t -> Corpus_store.t -> min_support:int -> itemset list
(** Apriori over the (normalised) attribute sets of corpus relations;
    itemsets of size >= 2, largest support first. [max_size] caps the
    itemset size (default 4). *)

val support : stats:Basic_stats.t -> Corpus_store.t -> string list -> int
(** Exact support of one attribute set (counted directly). *)

val same_relation_probability :
  stats:Basic_stats.t -> Corpus_store.t -> string -> string -> float
(** Among corpus schemas where both attributes occur somewhere, the
    fraction in which they occur in the {e same} relation — the signal
    behind the "TA info belongs in a separate table" advice. *)

val separate_relation_name :
  stats:Basic_stats.t -> Corpus_store.t -> string -> string option
(** The most common relation name holding the attribute in schemas where
    it is {e not} in the same relation as the schema's main cluster —
    simplified to: most common relation name overall. *)
