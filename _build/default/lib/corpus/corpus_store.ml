type known_mapping = {
  from_schema : string;
  to_schema : string;
  correspondences : ((string * string) * (string * string)) list;
}

type t = {
  mutable schemas : Schema_model.t list;
  mutable mappings : known_mapping list;
}

let create () = { schemas = []; mappings = [] }

let add_schema t s =
  if
    List.exists
      (fun s' -> String.equal s'.Schema_model.schema_name s.Schema_model.schema_name)
      t.schemas
  then
    invalid_arg
      ("Corpus_store.add_schema: duplicate " ^ s.Schema_model.schema_name);
  t.schemas <- s :: t.schemas

let add_mapping t m = t.mappings <- m :: t.mappings

let schemas t = List.rev t.schemas

let schema t name =
  List.find_opt
    (fun s -> String.equal s.Schema_model.schema_name name)
    t.schemas

let mappings t = List.rev t.mappings

let mappings_between t a b =
  List.filter
    (fun m -> String.equal m.from_schema a && String.equal m.to_schema b)
    (mappings t)

let size t = List.length t.schemas

let all_columns t =
  List.concat_map
    (fun s ->
      List.concat_map
        (fun r ->
          List.map (fun a -> (s, r, a)) r.Schema_model.attributes)
        s.Schema_model.relations)
    (schemas t)
