let normalize_vec vec =
  let norm = sqrt (List.fold_left (fun acc (_, w) -> acc +. (w *. w)) 0.0 vec) in
  if norm > 0.0 then List.map (fun (k, w) -> (k, w /. norm)) vec else vec

let context_vector stats term =
  normalize_vec (Basic_stats.cooccurring_attrs stats term)

let strip term vec = List.filter (fun (k, _) -> not (String.equal k term)) vec

let similarity stats a b =
  let na = Basic_stats.normalize stats a and nb = Basic_stats.normalize stats b in
  if String.equal na nb then 1.0
  else
    let va = normalize_vec (strip nb (Basic_stats.cooccurring_attrs stats na)) in
    let vb = normalize_vec (strip na (Basic_stats.cooccurring_attrs stats nb)) in
    Util.Tfidf.cosine va vb

let most_similar ?(limit = 10) stats term =
  let nt = Basic_stats.normalize stats term in
  Basic_stats.known_terms stats
  |> List.filter (fun other -> not (String.equal other nt))
  |> List.filter_map (fun other ->
         let s = similarity stats nt other in
         if s > 0.0 then Some (other, s) else None)
  |> List.sort (fun (a, s1) (b, s2) ->
         match Float.compare s2 s1 with 0 -> String.compare a b | c -> c)
  |> List.filteri (fun i _ -> i < limit)
