(** The unified schema representation the corpus stores: "forms of schema
    information: relational, OO and XML schemas ... DTDs, knowledge-base
    terminologies" (Section 4.1) are all normalised to named relations
    with named attributes carrying optional sample data. *)

type attribute = { attr_name : string; sample_values : string list }

type relation = { rel_name : string; attributes : attribute list }

type t = {
  schema_name : string;
  relations : relation list;
  joins : (string * string * string * string) list;
      (** (rel1, attr1, rel2, attr2) join predicates *)
}

val make :
  ?joins:(string * string * string * string) list ->
  name:string ->
  relation list ->
  t

val attribute : ?values:string list -> string -> attribute
val relation : string -> attribute list -> relation

val of_dtd : name:string -> Xmlmodel.Dtd.t -> t
(** Non-leaf DTD elements whose children include PCDATA leaves become
    relations; their leaf children become attributes. *)

val relation_names : t -> string list
val attr_names : t -> string list
(** All attribute names, duplicates removed, sorted. *)

val element_count : t -> int
(** Relations plus attributes — the "number of elements" of the
    DesignAdvisor similarity measure. *)

val find_relation : t -> string -> relation option
val attrs_of : t -> string -> string list
val pp : Format.formatter -> t -> unit
