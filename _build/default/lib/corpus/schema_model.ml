type attribute = { attr_name : string; sample_values : string list }

type relation = { rel_name : string; attributes : attribute list }

type t = {
  schema_name : string;
  relations : relation list;
  joins : (string * string * string * string) list;
}

let make ?(joins = []) ~name relations =
  { schema_name = name; relations; joins }

let attribute ?(values = []) attr_name = { attr_name; sample_values = values }
let relation rel_name attributes = { rel_name; attributes }

let of_dtd ~name dtd =
  let leaves = Xmlmodel.Dtd.leaf_elements dtd in
  let relations =
    List.filter_map
      (fun element ->
        match Xmlmodel.Dtd.decl_of dtd element with
        | Some (Xmlmodel.Dtd.Children children) ->
            let attrs =
              List.filter_map
                (fun (child, _) ->
                  if List.mem child leaves then Some (attribute child) else None)
                children
            in
            if attrs = [] then None else Some (relation element attrs)
        | Some Xmlmodel.Dtd.Pcdata | None -> None)
      (Xmlmodel.Dtd.elements dtd)
  in
  make ~name relations

let relation_names t = List.map (fun r -> r.rel_name) t.relations

let attr_names t =
  List.concat_map (fun r -> List.map (fun a -> a.attr_name) r.attributes) t.relations
  |> List.sort_uniq String.compare

let element_count t =
  List.fold_left
    (fun acc r -> acc + 1 + List.length r.attributes)
    0 t.relations

let find_relation t name =
  List.find_opt (fun r -> String.equal r.rel_name name) t.relations

let attrs_of t rel =
  match find_relation t rel with
  | Some r -> List.map (fun a -> a.attr_name) r.attributes
  | None -> []

let pp fmt t =
  Format.fprintf fmt "schema %s@\n" t.schema_name;
  List.iter
    (fun r ->
      Format.fprintf fmt "  %s(%s)@\n" r.rel_name
        (String.concat ", " (List.map (fun a -> a.attr_name) r.attributes)))
    t.relations
