(** "Similar names: for each of the uses of a term, which other words
    tend to be used with similar statistical characteristics?" (Section
    4.2.1). Distributional similarity: two attribute names are similar
    when they co-occur with similar sets of other attributes — even if
    lexically unrelated. *)

val context_vector : Basic_stats.t -> string -> (string * float) list
(** The attribute's co-occurrence profile, L2-normalised. *)

val similarity : Basic_stats.t -> string -> string -> float
(** Cosine of the two context vectors, excluding each other from the
    contexts (so synonymous attributes that never co-occur still score
    high). *)

val most_similar : ?limit:int -> Basic_stats.t -> string -> (string * float) list
(** Other attribute terms ranked by distributional similarity
    (default limit 10, zero-score entries dropped). *)
