(** Basic statistics over the corpus (Section 4.2.1): how each term is
    used — as a relation name, attribute name, or in data — plus
    attribute co-occurrence. Each statistic exists in variants depending
    on whether stemming and synonym tables are folded in. *)

type variant = Raw | Stemmed | Canonical
(** [Canonical] = stemmed + synonym-table normalisation. *)

type usage = {
  as_relation : float;  (** fraction of corpus schemas using it so *)
  as_attribute : float;
  in_data : float;
}

type t

val build : ?variant:variant -> ?synonyms:Util.Synonyms.t -> Corpus_store.t -> t
(** Default variant [Canonical] with the university synonym table. *)

val variant : t -> variant
val normalize : t -> string -> string
(** The term normalisation this instance applies. *)

val term_usage : t -> string -> usage

val known_terms : t -> string list

val cooccurring_attrs : t -> string -> (string * float) list
(** Attributes appearing in the same relation as the given one, with
    co-occurrence fraction (of relations containing the given attr),
    descending. *)

val cooccurrence : t -> string -> string -> float
(** P(both in one relation | first present in the relation). *)

val mutually_exclusive : t -> string -> string -> bool
(** Both terms are used as attributes in the corpus, but never in the
    same relation. *)

val attr_clusters : t -> threshold:float -> string list list
(** Connected components of the co-occurrence graph above the
    threshold — "clusters of attribute names that appear in
    conjunction". *)

val relation_name_for : t -> string -> (string * float) list
(** Which relation names tend to hold the given attribute, descending
    frequency. *)
