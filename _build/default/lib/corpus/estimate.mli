(** Estimating statistics for partial structures that were not frequent
    enough to be maintained exactly: "we will maintain only statistics on
    partial structures that appear frequently ... and estimate the
    statistics for other partial structures" (Section 4.2.2). *)

val estimated_support :
  stats:Basic_stats.t ->
  Corpus_store.t ->
  exact:Composite_stats.itemset list ->
  string list ->
  float
(** Support estimate for an attribute set: if a maintained itemset
    matches exactly, its support; otherwise combine the largest
    maintained subsets under conditional-independence, backing off to
    pairwise co-occurrence products. *)

val relative_error :
  stats:Basic_stats.t ->
  Corpus_store.t ->
  exact:Composite_stats.itemset list ->
  string list ->
  float
(** |estimate - exact| / max(1, exact) — used by tests and the E5
    ablation to quantify estimation quality. *)
