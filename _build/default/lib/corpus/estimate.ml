module Sset = Set.Make (String)

let find_exact exact items =
  List.find_opt
    (fun (it : Composite_stats.itemset) ->
      Sset.equal (Sset.of_list it.Composite_stats.attrs) items)
    exact

(* Estimate P(items) by chaining conditional co-occurrence from the
   attribute with the highest relation count through the rest. *)
let chain_estimate ~stats corpus items =
  let items = Sset.elements items in
  match items with
  | [] -> 0.0
  | first :: rest ->
      let base = float_of_int (Composite_stats.support ~stats corpus [ first ]) in
      List.fold_left
        (fun acc (prev, next) ->
          acc *. Basic_stats.cooccurrence stats prev next)
        base
        (List.map2 (fun a b -> (a, b)) (first :: rest) (rest @ [ first ])
        |> List.filteri (fun i _ -> i < List.length rest))

let estimated_support ~stats corpus ~exact attrs =
  let items = Sset.of_list (List.map (Basic_stats.normalize stats) attrs) in
  match find_exact exact items with
  | Some it -> float_of_int it.Composite_stats.support
  | None -> (
      (* Back off to the largest maintained subset, then extend by
         pairwise co-occurrence. *)
      let subsets =
        List.filter
          (fun (it : Composite_stats.itemset) ->
            Sset.subset (Sset.of_list it.Composite_stats.attrs) items)
          exact
        |> List.sort (fun a b ->
               compare
                 (List.length b.Composite_stats.attrs)
                 (List.length a.Composite_stats.attrs))
      in
      match subsets with
      | best :: _ ->
          let covered = Sset.of_list best.Composite_stats.attrs in
          let remaining = Sset.elements (Sset.diff items covered) in
          let anchor = List.hd best.Composite_stats.attrs in
          List.fold_left
            (fun acc extra -> acc *. Basic_stats.cooccurrence stats anchor extra)
            (float_of_int best.Composite_stats.support)
            remaining
      | [] -> chain_estimate ~stats corpus items)

let relative_error ~stats corpus ~exact attrs =
  let est = estimated_support ~stats corpus ~exact attrs in
  let true_support = float_of_int (Composite_stats.support ~stats corpus attrs) in
  Float.abs (est -. true_support) /. Float.max 1.0 true_support
