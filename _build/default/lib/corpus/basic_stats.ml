type variant = Raw | Stemmed | Canonical

type usage = { as_relation : float; as_attribute : float; in_data : float }

type t = {
  variant : variant;
  synonyms : Util.Synonyms.t;
  num_schemas : int;
  rel_usage : Util.Counter.t;  (* term -> #schemas using it as relation name *)
  attr_usage : Util.Counter.t;
  data_usage : Util.Counter.t;
  (* attr term -> #relations containing it *)
  attr_rel_count : Util.Counter.t;
  (* "a|b" (a < b) -> #relations containing both *)
  pair_count : Util.Counter.t;
  (* attr -> relation-name counter *)
  rel_names_of_attr : (string, Util.Counter.t) Hashtbl.t;
}

let normalize_with variant synonyms term =
  let tokens = Util.Tokenize.split_identifier term in
  let tokens = match tokens with [] -> [ String.lowercase_ascii term ] | ts -> ts in
  let map tok =
    match variant with
    | Raw -> tok
    | Stemmed -> Util.Stemmer.stem tok
    | Canonical -> Util.Stemmer.stem (Util.Synonyms.canonical synonyms tok)
  in
  String.concat "_" (List.map map tokens)

let pair_key a b = if String.compare a b <= 0 then a ^ "|" ^ b else b ^ "|" ^ a

let build ?(variant = Canonical) ?(synonyms = Util.Synonyms.university_domain)
    corpus =
  let norm = normalize_with variant synonyms in
  let t =
    {
      variant;
      synonyms;
      num_schemas = Corpus_store.size corpus;
      rel_usage = Util.Counter.create ();
      attr_usage = Util.Counter.create ();
      data_usage = Util.Counter.create ();
      attr_rel_count = Util.Counter.create ();
      pair_count = Util.Counter.create ();
      rel_names_of_attr = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (s : Schema_model.t) ->
      let rel_terms = ref [] and attr_terms = ref [] and data_terms = ref [] in
      List.iter
        (fun (r : Schema_model.relation) ->
          let rel_term = norm r.Schema_model.rel_name in
          rel_terms := rel_term :: !rel_terms;
          let attrs =
            List.map
              (fun (a : Schema_model.attribute) -> norm a.Schema_model.attr_name)
              r.Schema_model.attributes
            |> List.sort_uniq String.compare
          in
          List.iter
            (fun a ->
              attr_terms := a :: !attr_terms;
              Util.Counter.add t.attr_rel_count a;
              let rc =
                match Hashtbl.find_opt t.rel_names_of_attr a with
                | Some c -> c
                | None ->
                    let c = Util.Counter.create () in
                    Hashtbl.replace t.rel_names_of_attr a c;
                    c
              in
              Util.Counter.add rc rel_term)
            attrs;
          let rec pairs = function
            | [] -> ()
            | a :: rest ->
                List.iter (fun b -> Util.Counter.add t.pair_count (pair_key a b)) rest;
                pairs rest
          in
          pairs attrs;
          List.iter
            (fun (a : Schema_model.attribute) ->
              List.iter
                (fun value ->
                  List.iter
                    (fun w -> data_terms := norm w :: !data_terms)
                    (Util.Tokenize.words value))
                a.Schema_model.sample_values)
            r.Schema_model.attributes)
        s.Schema_model.relations;
      (* Per-schema presence (not raw frequency): usage is the fraction
         of schemas exhibiting the term in that role. *)
      List.iter (Util.Counter.add t.rel_usage)
        (List.sort_uniq String.compare !rel_terms);
      List.iter (Util.Counter.add t.attr_usage)
        (List.sort_uniq String.compare !attr_terms);
      List.iter (Util.Counter.add t.data_usage)
        (List.sort_uniq String.compare !data_terms))
    (Corpus_store.schemas corpus);
  t

let variant t = t.variant
let normalize t term = normalize_with t.variant t.synonyms term

let term_usage t term =
  let term = normalize t term in
  let frac counter =
    if t.num_schemas = 0 then 0.0
    else Util.Counter.count counter term /. float_of_int t.num_schemas
  in
  {
    as_relation = frac t.rel_usage;
    as_attribute = frac t.attr_usage;
    in_data = frac t.data_usage;
  }

let known_terms t =
  List.map fst (Util.Counter.items t.attr_usage)
  @ List.map fst (Util.Counter.items t.rel_usage)
  |> List.sort_uniq String.compare

let cooccurrence t a b =
  let a = normalize t a and b = normalize t b in
  let denom = Util.Counter.count t.attr_rel_count a in
  if denom <= 0.0 then 0.0
  else Util.Counter.count t.pair_count (pair_key a b) /. denom

let cooccurring_attrs t a =
  let a = normalize t a in
  let denom = Util.Counter.count t.attr_rel_count a in
  if denom <= 0.0 then []
  else
    Util.Counter.items t.pair_count
    |> List.filter_map (fun (key, count) ->
           match String.index_opt key '|' with
           | None -> None
           | Some i ->
               let x = String.sub key 0 i in
               let y = String.sub key (i + 1) (String.length key - i - 1) in
               if String.equal x a then Some (y, count /. denom)
               else if String.equal y a then Some (x, count /. denom)
               else None)
    |> List.sort (fun (_, f1) (_, f2) -> Float.compare f2 f1)

let mutually_exclusive t a b =
  let na = normalize t a and nb = normalize t b in
  Util.Counter.count t.attr_rel_count na > 0.0
  && Util.Counter.count t.attr_rel_count nb > 0.0
  && Util.Counter.count t.pair_count (pair_key na nb) = 0.0

let attr_clusters t ~threshold =
  let uf = Util.Union_find.create () in
  List.iter
    (fun (key, _) ->
      match String.index_opt key '|' with
      | None -> ()
      | Some i ->
          let a = String.sub key 0 i in
          let b = String.sub key (i + 1) (String.length key - i - 1) in
          (* Symmetric strength: co-occurrence conditioned both ways. *)
          let s = Float.min (cooccurrence t a b) (cooccurrence t b a) in
          ignore (Util.Union_find.find uf a);
          ignore (Util.Union_find.find uf b);
          if s >= threshold then Util.Union_find.union uf a b)
    (Util.Counter.items t.pair_count);
  Util.Union_find.groups uf

let relation_name_for t attr =
  let attr = normalize t attr in
  match Hashtbl.find_opt t.rel_names_of_attr attr with
  | None -> []
  | Some counter ->
      let total = Util.Counter.total counter in
      List.map (fun (name, c) -> (name, c /. total)) (Util.Counter.items counter)
