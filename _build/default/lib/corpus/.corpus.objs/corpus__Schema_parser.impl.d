lib/corpus/schema_parser.ml: Buffer List Printf Result Schema_model String
