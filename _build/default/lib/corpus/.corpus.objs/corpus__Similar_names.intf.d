lib/corpus/similar_names.mli: Basic_stats
