lib/corpus/schema_model.mli: Format Xmlmodel
