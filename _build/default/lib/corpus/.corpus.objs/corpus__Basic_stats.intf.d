lib/corpus/basic_stats.mli: Corpus_store Util
