lib/corpus/composite_stats.mli: Basic_stats Corpus_store
