lib/corpus/corpus_store.ml: List Schema_model String
