lib/corpus/basic_stats.ml: Corpus_store Float Hashtbl List Schema_model String Util
