lib/corpus/corpus_store.mli: Schema_model
