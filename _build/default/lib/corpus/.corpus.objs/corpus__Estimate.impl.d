lib/corpus/estimate.ml: Basic_stats Composite_stats Float List Set String
