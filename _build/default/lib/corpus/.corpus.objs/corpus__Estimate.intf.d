lib/corpus/estimate.mli: Basic_stats Composite_stats Corpus_store
