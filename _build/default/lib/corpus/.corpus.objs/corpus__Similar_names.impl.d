lib/corpus/similar_names.ml: Basic_stats Float List String Util
