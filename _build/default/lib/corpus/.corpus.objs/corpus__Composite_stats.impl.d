lib/corpus/composite_stats.ml: Basic_stats Corpus_store List Schema_model Set String
