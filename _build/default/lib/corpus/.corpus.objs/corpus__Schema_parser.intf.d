lib/corpus/schema_parser.mli: Schema_model
