lib/corpus/schema_model.ml: Format List String Xmlmodel
