type itemset = { attrs : string list; support : int }

module Sset = Set.Make (String)

let relation_attr_sets ~stats corpus =
  List.concat_map
    (fun (s : Schema_model.t) ->
      List.map
        (fun (r : Schema_model.relation) ->
          List.map
            (fun (a : Schema_model.attribute) ->
              Basic_stats.normalize stats a.Schema_model.attr_name)
            r.Schema_model.attributes
          |> Sset.of_list)
        s.Schema_model.relations)
    (Corpus_store.schemas corpus)

let count_support sets items =
  List.length (List.filter (fun set -> Sset.subset items set) sets)

let support ~stats corpus attrs =
  let sets = relation_attr_sets ~stats corpus in
  let items = Sset.of_list (List.map (Basic_stats.normalize stats) attrs) in
  count_support sets items

let frequent_itemsets ?(max_size = 4) ~stats corpus ~min_support =
  let sets = relation_attr_sets ~stats corpus in
  (* Level 1: frequent single attributes. *)
  let singles =
    List.fold_left (fun acc set -> Sset.union acc set) Sset.empty sets
    |> Sset.elements
    |> List.filter (fun a -> count_support sets (Sset.singleton a) >= min_support)
  in
  (* Levels >= 2: extend each frequent set with a lexicographically
     larger frequent single (classic Apriori candidate generation). *)
  let rec level current size acc =
    if size > max_size || current = [] then acc
    else
      let next =
        List.concat_map
          (fun items ->
            let maxi = Sset.max_elt items in
            List.filter_map
              (fun a ->
                if String.compare a maxi > 0 then
                  let candidate = Sset.add a items in
                  let sup = count_support sets candidate in
                  if sup >= min_support then Some (candidate, sup) else None
                else None)
              singles)
          current
      in
      let acc =
        acc
        @ List.map
            (fun (items, sup) -> { attrs = Sset.elements items; support = sup })
            next
      in
      level (List.map fst next) (size + 1) acc
  in
  level (List.map Sset.singleton singles) 2 []
  |> List.sort (fun a b ->
         match compare b.support a.support with
         | 0 -> compare a.attrs b.attrs
         | c -> c)

let same_relation_probability ~stats corpus a b =
  let na = Basic_stats.normalize stats a and nb = Basic_stats.normalize stats b in
  let both_somewhere, same_relation =
    List.fold_left
      (fun (both, same) (s : Schema_model.t) ->
        let rel_sets =
          List.map
            (fun (r : Schema_model.relation) ->
              List.map
                (fun (x : Schema_model.attribute) ->
                  Basic_stats.normalize stats x.Schema_model.attr_name)
                r.Schema_model.attributes)
            s.Schema_model.relations
        in
        let has x = List.exists (fun set -> List.mem x set) rel_sets in
        if has na && has nb then
          let together =
            List.exists (fun set -> List.mem na set && List.mem nb set) rel_sets
          in
          (both + 1, if together then same + 1 else same)
        else (both, same))
      (0, 0) (Corpus_store.schemas corpus)
  in
  if both_somewhere = 0 then 0.0
  else float_of_int same_relation /. float_of_int both_somewhere

let separate_relation_name ~stats _corpus attr =
  match Basic_stats.relation_name_for stats attr with
  | (name, _) :: _ -> Some name
  | [] -> None
