(** The annotation repository: an indexed subject/predicate/object store
    with per-triple provenance and basic-graph-pattern queries. This
    plays the role Jena plays in the paper (Section 2.2): annotations are
    stored here the moment a user publishes, so applications never touch
    HTML at query time. *)

type triple = {
  subj : string;
  pred : string;
  obj : Relalg.Value.t;
  prov : Provenance.t;
}

type t

val create : unit -> t

val add : t -> subj:string -> pred:string -> obj:Relalg.Value.t -> prov:Provenance.t -> unit
(** Duplicate (subj, pred, obj) triples from the same source are
    collapsed; the same statement from different sources is kept twice
    (its provenance differs — the cleaning layer wants that). *)

val remove_source : t -> string -> int
(** Retract all triples whose provenance URL equals the given URL
    (re-publishing a page replaces its previous contribution). Returns
    the number of triples removed. *)

val size : t -> int
val triples : t -> triple list
val sources : t -> string list

val select :
  ?subj:string -> ?pred:string -> ?obj:Relalg.Value.t -> t -> triple list
(** All triples matching the given components. *)

(** {2 Basic graph patterns} *)

type pattern = { psubj : Cq.Term.t; ppred : Cq.Term.t; pobj : Cq.Term.t }
(** Subject/predicate positions match string values; a constant there
    must be a [Str]. *)

val pat : Cq.Term.t -> Cq.Term.t -> Cq.Term.t -> pattern

type binding = Relalg.Value.t Cq.Eval.Smap.t

val query : t -> pattern list -> binding list
(** All satisfying assignments, most-selective-pattern-first. *)

val query_provenanced : t -> pattern list -> (binding * Provenance.t list) list
(** Like [query], also returning the provenance of the triples each
    binding matched (one entry per pattern). *)
