(** Provenance of published data. Section 2.3: "The source URL of the
    data is stored in the database and can serve as an important resource
    for cleaning up the data." Timestamps are logical (a global publish
    counter), keeping runs deterministic. *)

type t = { source_url : string; author : string option; timestamp : int }

val make : ?author:string -> source_url:string -> timestamp:int -> unit -> t

val in_scope : t -> string -> bool
(** [in_scope p prefix]: does the source URL fall under [prefix]? Used by
    cleaning policies such as "take the phone number from the faculty
    member's own web space". *)

val pp : Format.formatter -> t -> unit
