lib/storage/ntriples.mli: Triple_store
