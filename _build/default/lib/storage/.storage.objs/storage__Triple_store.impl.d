lib/storage/triple_store.ml: Cq Hashtbl List Option Provenance Relalg String
