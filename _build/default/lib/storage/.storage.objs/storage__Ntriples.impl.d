lib/storage/ntriples.ml: Buffer List Printf Provenance Relalg Result String Triple_store
