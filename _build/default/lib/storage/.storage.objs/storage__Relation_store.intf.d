lib/storage/relation_store.mli: Relalg
