lib/storage/provenance.ml: Format String
