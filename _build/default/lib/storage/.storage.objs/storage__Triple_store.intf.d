lib/storage/triple_store.mli: Cq Provenance Relalg
