lib/storage/relation_store.ml: List Relalg
