lib/storage/provenance.mli: Format
