(** A relation store with a change log and subscriber notifications —
    the substrate both for instant-gratification application refresh
    (Section 2.2: "applications are immediately updated") and for
    updategram-based view maintenance (Section 3.1.2). *)

type event =
  | Inserted of string * Relalg.Relation.tuple
  | Deleted of string * Relalg.Relation.tuple

type t

val create : unit -> t
val database : t -> Relalg.Database.t

val declare : t -> string -> string list -> unit
(** Create an empty relation; no-op if it already exists with the same
    arity, raises [Invalid_argument] otherwise. *)

val insert : t -> string -> Relalg.Relation.tuple -> bool
(** Distinct insert; returns whether the tuple was new. Events fire and
    log entries are appended only for effective changes. *)

val delete : t -> string -> Relalg.Relation.tuple -> bool

val subscribe : t -> (event -> unit) -> unit

val log : t -> event list
(** Chronological change log since creation (or the last [truncate_log]). *)

val truncate_log : t -> unit
val log_length : t -> int
