type t = { source_url : string; author : string option; timestamp : int }

let make ?author ~source_url ~timestamp () = { source_url; author; timestamp }

let in_scope t prefix =
  String.length t.source_url >= String.length prefix
  && String.sub t.source_url 0 (String.length prefix) = prefix

let pp fmt t =
  Format.fprintf fmt "%s@@t%d%s" t.source_url t.timestamp
    (match t.author with None -> "" | Some a -> " by " ^ a)
