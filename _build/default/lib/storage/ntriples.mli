(** Text serialisation of the triple store in an N-Triples-flavoured
    line format, with provenance carried in a trailing comment — the
    paper calls MANGROVE's annotation language "syntactic sugar for
    basic RDF", and this is the RDF-facing exchange format:

    {v
    <u/alice#person0> <phone> "206-543-1695" . # <http://u/alice> 3 bob
    v}

    (source URL, timestamp, optional author). *)

val export : Triple_store.t -> string
(** One line per triple, deterministic order. *)

val import : string -> (Triple_store.t, string) result
(** Inverse of [export]; blank lines and [#]-only comment lines are
    skipped. *)

val import_exn : string -> Triple_store.t
