(** Naive-fixpoint datalog evaluation. Used to materialise the
    consequences of definitional peer mappings and to check PDMS answer
    completeness in tests. *)

type program = Query.t list
(** Each query is a rule [head :- body]; head predicates are IDB. *)

val idb_preds : program -> string list

val eval : Relalg.Database.t -> program -> Relalg.Database.t
(** Returns a fresh database containing the input EDB relations plus all
    derived IDB relations, evaluated to fixpoint (set semantics). The
    input database is not modified. Raises [Invalid_argument] if an IDB
    relation already exists in the EDB with a different arity, or if a
    rule is unsafe. *)

val query : Relalg.Database.t -> program -> Query.t -> Relalg.Relation.t
(** Evaluate the program to fixpoint, then run the query on top. *)
