(** Global-as-view unfolding: replace body atoms by the bodies of their
    defining rules. A predicate may have several rules, so unfolding one
    query yields a union of conjunctive queries. *)

type rules = Query.t list
(** Definitional rules; a rule defines its head predicate. *)

val definitions_for : rules -> string -> Query.t list

val expand_atom : fresh:(unit -> string) -> Query.t -> Atom.t -> Query.t -> Query.t option
(** [expand_atom ~fresh q atom rule] replaces [atom] in [q]'s body by the
    body of [rule] (freshened), unifying [atom] with the rule head.
    [None] if the head does not unify. *)

val expand : ?max_depth:int -> rules -> Query.t -> Query.t list
(** Fully unfold every defined predicate, to fixpoint, producing a UCQ
    over undefined (base) predicates only. Recursion through defined
    predicates is cut off at [max_depth] (default 12) expansions per
    derivation branch; the result is complete for non-recursive rule
    sets. *)
