(** Homomorphism (containment-mapping) search between atom sets.

    The target side is {e frozen}: its variables are replaced by unique
    constants, so a homomorphism is a one-way matching from source
    variables to frozen target terms. *)

val freeze_term : Term.t -> Term.t
(** Variables become reserved constants; constants pass through. *)

val freeze_atom : Atom.t -> Atom.t

val unfreeze_term : Term.t -> Term.t
(** Inverse of [freeze_term] on its image. *)

val find : ?init:Subst.t -> from:Atom.t list -> Atom.t list -> Subst.t option
(** [find ~from onto] searches for a substitution [h] of the variables
    of [from] such that every atom of [h(from)] appears in the frozen
    [onto]. [init] seeds required bindings (already frozen on the right-
    hand side). *)

val exists : ?init:Subst.t -> from:Atom.t list -> Atom.t list -> bool
