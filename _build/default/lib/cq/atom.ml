type t = { pred : string; args : Term.t list }

let make pred args = { pred; args }
let arity t = List.length t.args

let vars t =
  List.fold_left
    (fun acc term ->
      match term with
      | Term.Var x -> if List.mem x acc then acc else x :: acc
      | Term.Const _ -> acc)
    [] t.args
  |> List.rev

let compare a b =
  match String.compare a.pred b.pred with
  | 0 -> List.compare Term.compare a.args b.args
  | c -> c

let equal a b = compare a b = 0

let to_string t =
  Printf.sprintf "%s(%s)" t.pred (String.concat ", " (List.map Term.to_string t.args))

let pp fmt t = Format.pp_print_string fmt (to_string t)

let map_terms f t = { t with args = List.map f t.args }
