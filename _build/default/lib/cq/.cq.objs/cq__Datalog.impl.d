lib/cq/datalog.ml: Atom Eval List Printf Query Relalg
