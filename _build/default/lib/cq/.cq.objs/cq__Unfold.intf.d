lib/cq/unfold.mli: Atom Query
