lib/cq/minimize.mli: Query
