lib/cq/homomorphism.mli: Atom Subst Term
