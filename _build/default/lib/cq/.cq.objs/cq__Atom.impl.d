lib/cq/atom.ml: Format List Printf String Term
