lib/cq/subst.mli: Atom Format Term
