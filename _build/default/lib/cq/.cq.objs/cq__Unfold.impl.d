lib/cq/unfold.ml: Atom List Printf Query String Subst
