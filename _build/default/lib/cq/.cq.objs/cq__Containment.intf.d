lib/cq/containment.mli: Query
