lib/cq/parser.ml: Atom Buffer List Printf Query Relalg String Term
