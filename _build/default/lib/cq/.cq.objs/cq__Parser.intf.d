lib/cq/parser.mli: Atom Query
