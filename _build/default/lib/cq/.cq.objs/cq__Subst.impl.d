lib/cq/subst.ml: Atom Format List Map Printf Relalg String Term
