lib/cq/homomorphism.ml: Atom Hashtbl List Option Relalg String Subst Term
