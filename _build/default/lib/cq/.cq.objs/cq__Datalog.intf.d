lib/cq/datalog.mli: Query Relalg
