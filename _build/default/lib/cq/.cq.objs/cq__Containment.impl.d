lib/cq/containment.ml: Atom Homomorphism List Query Subst
