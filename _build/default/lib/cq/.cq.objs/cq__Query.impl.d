lib/cq/query.ml: Atom Format List Printf String Subst Term
