lib/cq/eval.ml: Array Atom Hashtbl List Map Option Printf Query Relalg String Term
