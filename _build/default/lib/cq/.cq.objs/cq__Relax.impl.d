lib/cq/relax.ml: Atom Eval Fun List Option Printf Query Relalg Term
