lib/cq/term.mli: Format Relalg
