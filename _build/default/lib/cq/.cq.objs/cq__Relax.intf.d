lib/cq/relax.mli: Atom Query Relalg
