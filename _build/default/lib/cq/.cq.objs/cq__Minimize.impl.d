lib/cq/minimize.ml: Atom Containment List Query
