lib/cq/atom.mli: Format Term
