lib/cq/eval.mli: Map Query Relalg
