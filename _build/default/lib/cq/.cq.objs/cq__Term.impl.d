lib/cq/term.ml: Format Relalg String
