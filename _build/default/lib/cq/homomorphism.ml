(* Frozen variables are encoded as string constants carrying a reserved
   prefix that cannot appear in real data (it contains a NUL byte). *)
let frozen_prefix = "\000frozen:"

let freeze_term = function
  | Term.Var x -> Term.Const (Relalg.Value.Str (frozen_prefix ^ x))
  | Term.Const _ as c -> c

let freeze_atom = Atom.map_terms freeze_term

let unfreeze_term = function
  | Term.Const (Relalg.Value.Str s)
    when String.length s > String.length frozen_prefix
         && String.sub s 0 (String.length frozen_prefix) = frozen_prefix ->
      Term.Var (String.sub s (String.length frozen_prefix)
                  (String.length s - String.length frozen_prefix))
  | t -> t

(* Backtracking search. Atoms of [from] are matched in order against any
   compatible frozen atom of [onto]; substitution consistency prunes. *)
let find ?(init = Subst.empty) ~from onto =
  let onto = List.map freeze_atom onto in
  let by_pred = Hashtbl.create 16 in
  List.iter
    (fun (a : Atom.t) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_pred a.Atom.pred) in
      Hashtbl.replace by_pred a.Atom.pred (a :: existing))
    onto;
  let rec go subst = function
    | [] -> Some subst
    | atom :: rest ->
        let candidates =
          Option.value ~default:[]
            (Hashtbl.find_opt by_pred atom.Atom.pred)
        in
        let rec try_candidates = function
          | [] -> None
          | cand :: more -> (
              match Subst.match_atom subst atom cand with
              | None -> try_candidates more
              | Some subst' -> (
                  match go subst' rest with
                  | Some _ as result -> result
                  | None -> try_candidates more))
        in
        try_candidates candidates
  in
  go init from

let exists ?init ~from onto = Option.is_some (find ?init ~from onto)
