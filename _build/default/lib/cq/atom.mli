(** A relational atom [p(t1, ..., tn)]. *)

type t = { pred : string; args : Term.t list }

val make : string -> Term.t list -> t
val arity : t -> int
val vars : t -> string list
(** Distinct variable names, in order of first occurrence. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val map_terms : (Term.t -> Term.t) -> t -> t
