(** Graceful degradation for structured queries. Section 1.1(2): in the
    S-WORLD "if a query is not completely appropriate for the schema,
    the user will get no answers. There is no graceful degradation."
    This module imports the U-WORLD property: when a query returns
    nothing, systematically weaken it — generalise constants to
    variables, then drop atoms — and return the nearest relaxation that
    does produce answers. *)

type step =
  | Generalised_constant of string * Relalg.Value.t
      (** (predicate, the constant replaced by a fresh variable) *)
  | Dropped_atom of Atom.t

type result = {
  relaxed_query : Query.t;
  steps : step list;  (** empty when the original query succeeded *)
  answers : Relalg.Relation.t;
}

val relaxations : Query.t -> (Query.t * step) list
(** All single-step relaxations: one constant generalised, or one atom
    dropped (only where the query stays safe and non-empty). *)

val graceful :
  ?max_steps:int -> Relalg.Database.t -> Query.t -> result option
(** Breadth-first over relaxation steps (default at most 3): the first
    level that yields answers wins; within a level, constant
    generalisation is preferred over atom dropping. [None] when even the
    maximally relaxed queries are empty. *)
