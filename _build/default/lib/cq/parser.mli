(** A small concrete syntax for conjunctive queries and rules:

    {[ ans(X, Y) :- course(X, T, 'cs'), teaches(Y, X) ]}

    Identifiers starting with an uppercase letter are variables;
    single-quoted strings, bare numbers and lowercase identifiers are
    constants (lowercase identifiers inside argument lists are string
    constants). Whitespace is free. *)

val parse_query : string -> (Query.t, string) result
(** Parse one rule of the form [head :- body] (the body may be empty:
    [head :- .] is not allowed, but [head.] or just [head :- true] are
    not supported either — every query needs at least one body atom). *)

val parse_query_exn : string -> Query.t

val parse_atom : string -> (Atom.t, string) result

val parse_program : string -> (Query.t list, string) result
(** One rule per non-empty, non-[#]-comment line. *)
