(** Terms of conjunctive queries: variables or constants. *)

type t = Var of string | Const of Relalg.Value.t

val compare : t -> t -> int
val equal : t -> t -> bool
val is_var : t -> bool
val var_name : t -> string option
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val v : string -> t
(** Variable shorthand. *)

val c : Relalg.Value.t -> t
val str : string -> t
val int : int -> t
