(** Substitutions: finite maps from variable names to terms, with
    triangular (chained) bindings resolved by [walk]. *)

type t

val empty : t
val is_empty : t -> bool
val bindings : t -> (string * Term.t) list
val find : t -> string -> Term.t option

val bind : t -> string -> Term.t -> t
(** Unchecked binding (no consistency check); prefer [unify_term]. *)

val walk : t -> Term.t -> Term.t
(** Resolve a term through binding chains to its representative. *)

val apply_term : t -> Term.t -> Term.t
val apply_atom : t -> Atom.t -> Atom.t

val unify_term : t -> Term.t -> Term.t -> t option
(** Two-way unification of terms under an existing substitution. *)

val unify_atom : t -> Atom.t -> Atom.t -> t option
(** Unify two atoms (same predicate and arity required). *)

val match_term : t -> Term.t -> Term.t -> t option
(** One-way matching: variables of the {e first} term may be bound, the
    second term is treated as rigid (its variables behave like
    constants). Used for homomorphism search. *)

val match_atom : t -> Atom.t -> Atom.t -> t option
val pp : Format.formatter -> t -> unit
