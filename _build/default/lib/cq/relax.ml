type step =
  | Generalised_constant of string * Relalg.Value.t
  | Dropped_atom of Atom.t

type result = {
  relaxed_query : Query.t;
  steps : step list;
  answers : Relalg.Relation.t;
}

(* Fresh variables for generalised constants; the counter lives per
   relaxation session via partial application. *)
let generalise_constants fresh (q : Query.t) =
  List.concat_map
    (fun (atom : Atom.t) ->
      List.mapi
        (fun i term ->
          match term with
          | Term.Var _ -> None
          | Term.Const value ->
              let args =
                List.mapi
                  (fun j t -> if j = i then Term.Var (fresh ()) else t)
                  atom.Atom.args
              in
              let body =
                List.map
                  (fun a -> if a == atom then { atom with Atom.args } else a)
                  q.Query.body
              in
              Some
                ( { q with Query.body },
                  Generalised_constant (atom.Atom.pred, value) ))
        atom.Atom.args
      |> List.filter_map Fun.id)
    q.Query.body

let drop_atoms (q : Query.t) =
  List.filter_map
    (fun (atom : Atom.t) ->
      let smaller =
        { q with Query.body = List.filter (fun a -> a != atom) q.Query.body }
      in
      if smaller.Query.body <> [] && Query.is_safe smaller then
        Some (smaller, Dropped_atom atom)
      else None)
    q.Query.body

let relaxations q =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "~r%d" !counter
  in
  generalise_constants fresh q @ drop_atoms q

let graceful ?(max_steps = 3) db q =
  let try_query q =
    let answers = Eval.run db q in
    if Relalg.Relation.cardinality answers > 0 then Some answers else None
  in
  (* Breadth-first frontier of (query, steps-so-far), constant
     generalisations enumerated first at each level. *)
  let rec level frontier depth =
    let hits =
      List.filter_map
        (fun (q, steps) ->
          Option.map
            (fun answers ->
              { relaxed_query = q; steps = List.rev steps; answers })
            (try_query q))
        frontier
    in
    match hits with
    | hit :: _ -> Some hit
    | [] ->
        if depth >= max_steps then None
        else
          let next =
            List.concat_map
              (fun (q, steps) ->
                List.map (fun (q', s) -> (q', s :: steps)) (relaxations q))
              frontier
          in
          if next = [] then None else level next (depth + 1)
  in
  level [ (q, []) ] 0
