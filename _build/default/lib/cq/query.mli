(** Conjunctive queries [q(x̄) :- a1, ..., an]. *)

type t = { head : Atom.t; body : Atom.t list }

val make : Atom.t -> Atom.t list -> t

val vars : t -> string list
(** Distinct variables of head and body, in first-occurrence order. *)

val head_vars : t -> string list
(** Distinguished variables. *)

val existential_vars : t -> string list
(** Body variables not appearing in the head. *)

val is_distinguished : t -> string -> bool

val is_safe : t -> bool
(** Every head variable appears in the body. *)

val apply : Subst.t -> t -> t

val freshen : suffix:string -> t -> t
(** Rename every variable [x] to [x ^ suffix]; used to keep variable
    namespaces of different queries disjoint. *)

val rename_preds : (string -> string) -> t -> t
val body_preds : t -> string list
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val size : t -> int
(** Number of body atoms. *)
