type rules = Query.t list

let definitions_for rules pred =
  List.filter (fun (r : Query.t) -> String.equal r.Query.head.Atom.pred pred) rules

let expand_atom ~fresh (q : Query.t) (atom : Atom.t) (rule : Query.t) =
  let rule = Query.freshen ~suffix:(fresh ()) rule in
  match Subst.unify_atom Subst.empty atom rule.Query.head with
  | None -> None
  | Some mgu ->
      let body =
        List.concat_map
          (fun a ->
            if a == atom then List.map (Subst.apply_atom mgu) rule.Query.body
            else [ Subst.apply_atom mgu a ])
          q.Query.body
      in
      Some { Query.head = Subst.apply_atom mgu q.Query.head; body }

let expand ?(max_depth = 12) rules (q : Query.t) =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "~u%d" !counter
  in
  let defined pred = definitions_for rules pred <> [] in
  (* Worklist of (query, remaining budget); a query is emitted when no
     body atom is defined. *)
  let results = ref [] in
  let rec go q budget =
    match List.find_opt (fun (a : Atom.t) -> defined a.Atom.pred) q.Query.body with
    | None -> results := q :: !results
    | Some atom ->
        if budget > 0 then
          List.iter
            (fun rule ->
              match expand_atom ~fresh q atom rule with
              | None -> ()
              | Some q' -> go q' (budget - 1))
            (definitions_for rules atom.Atom.pred)
  in
  go q max_depth;
  List.rev !results
