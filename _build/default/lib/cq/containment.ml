(* q1 ⊑ q2 iff there is a homomorphism from q2 into the frozen q1 that
   maps q2's head onto q1's head. We freeze q1 and (a) seed the
   substitution by matching heads, (b) require q2's frozen body image to
   be a subset of q1's frozen body. *)
let contained_in (q1 : Query.t) (q2 : Query.t) =
  if Atom.arity q1.Query.head <> Atom.arity q2.Query.head then false
  else
    let frozen_head = Homomorphism.freeze_atom q1.Query.head in
    let seeded =
      Subst.match_atom Subst.empty
        { q2.Query.head with Atom.pred = frozen_head.Atom.pred }
        { frozen_head with Atom.pred = frozen_head.Atom.pred }
    in
    match seeded with
    | None -> false
    | Some init ->
        Homomorphism.exists ~init ~from:q2.Query.body q1.Query.body

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

let contained_in_union q qs = List.exists (fun q' -> contained_in q q') qs
