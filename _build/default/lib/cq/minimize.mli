(** Query minimization: compute a core by dropping redundant body atoms.
    Reformulations produced by unfolding mapping chains accumulate
    duplicate subgoals; minimizing them keeps rule-goal trees small. *)

val minimize : Query.t -> Query.t
(** An equivalent query with an inclusion-minimal body. *)

val remove_duplicate_atoms : Query.t -> Query.t
(** Cheap syntactic pass: drop exact duplicate body atoms. *)
