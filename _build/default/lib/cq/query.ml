type t = { head : Atom.t; body : Atom.t list }

let make head body = { head; body }

let add_vars acc atom =
  List.fold_left
    (fun acc x -> if List.mem x acc then acc else x :: acc)
    acc (Atom.vars atom)

let vars t = List.rev (List.fold_left add_vars (add_vars [] t.head) t.body)
let head_vars t = Atom.vars t.head

let body_vars t = List.rev (List.fold_left add_vars [] t.body)

let existential_vars t =
  let hv = head_vars t in
  List.filter (fun x -> not (List.mem x hv)) (body_vars t)

let is_distinguished t x = List.mem x (head_vars t)

let is_safe t =
  let bv = body_vars t in
  List.for_all (fun x -> List.mem x bv) (head_vars t)

let apply s t =
  { head = Subst.apply_atom s t.head; body = List.map (Subst.apply_atom s) t.body }

let freshen ~suffix t =
  let rename = function
    | Term.Var x -> Term.Var (x ^ suffix)
    | Term.Const _ as c -> c
  in
  { head = Atom.map_terms rename t.head; body = List.map (Atom.map_terms rename) t.body }

let rename_preds f t =
  let on_atom (a : Atom.t) = { a with Atom.pred = f a.Atom.pred } in
  { head = on_atom t.head; body = List.map on_atom t.body }

let body_preds t =
  List.fold_left
    (fun acc (a : Atom.t) -> if List.mem a.Atom.pred acc then acc else a.Atom.pred :: acc)
    [] t.body
  |> List.rev

let compare a b =
  match Atom.compare a.head b.head with
  | 0 -> List.compare Atom.compare a.body b.body
  | c -> c

let equal a b = compare a b = 0

let to_string t =
  Printf.sprintf "%s :- %s" (Atom.to_string t.head)
    (String.concat ", " (List.map Atom.to_string t.body))

let pp fmt t = Format.pp_print_string fmt (to_string t)

let size t = List.length t.body
