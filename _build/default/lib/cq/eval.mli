(** Evaluation of conjunctive queries over a database.

    The evaluator performs index-assisted nested-loop joins with a greedy
    bound-first atom ordering. Missing relations are treated as empty
    (a PDMS peer may reference relations it stores no data for). *)

module Smap : Map.S with type key = string

type binding = Relalg.Value.t Smap.t

val run_bindings : Relalg.Database.t -> Query.t -> binding list
(** All satisfying assignments of the body variables. *)

val run : Relalg.Database.t -> Query.t -> Relalg.Relation.t
(** Distinct head tuples. Raises [Invalid_argument] on unsafe queries. *)

val run_union : Relalg.Database.t -> Query.t list -> Relalg.Relation.t
(** Distinct union of the answers of a UCQ (all heads must share arity;
    the first query's head shapes the schema). Raises on an empty list. *)
