type t = Var of string | Const of Relalg.Value.t

let compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Const u, Const v -> Relalg.Value.compare u v
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let equal a b = compare a b = 0
let is_var = function Var _ -> true | Const _ -> false
let var_name = function Var x -> Some x | Const _ -> None

let to_string = function
  | Var x -> x
  | Const v -> "'" ^ Relalg.Value.to_string v ^ "'"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let v x = Var x
let c value = Const value
let str s = Const (Relalg.Value.Str s)
let int i = Const (Relalg.Value.Int i)
