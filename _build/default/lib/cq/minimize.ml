let remove_duplicate_atoms (q : Query.t) =
  let rec dedupe seen = function
    | [] -> List.rev seen
    | a :: rest ->
        if List.exists (Atom.equal a) seen then dedupe seen rest
        else dedupe (a :: seen) rest
  in
  { q with Query.body = dedupe [] q.Query.body }

(* Dropping an atom can only generalise the query, so the removal is
   legal iff the smaller query is still contained in the original. *)
let minimize q =
  let q = remove_duplicate_atoms q in
  let try_remove body atom =
    let smaller = { q with Query.body = List.filter (fun a -> a != atom) body } in
    if Query.is_safe smaller && Containment.contained_in smaller q then
      Some smaller.Query.body
    else None
  in
  let rec loop body =
    let rec scan = function
      | [] -> body
      | atom :: rest -> (
          match try_remove body atom with
          | Some smaller -> loop smaller
          | None -> scan rest)
    in
    scan body
  in
  { q with Query.body = loop q.Query.body }
