(* Recursive-descent over a char cursor; the grammar is tiny. *)

type cursor = { text : string; mutable pos : int }

exception Parse_error of string

let fail cur fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Parse_error (Printf.sprintf "%s (at offset %d)" msg cur.pos)))
    fmt

let peek cur =
  if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        go ()
    | Some _ | None -> ()
  in
  go ()

let expect cur c =
  skip_ws cur;
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> fail cur "expected '%c', found '%c'" c c'
  | None -> fail cur "expected '%c', found end of input" c

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '!' || c = '~' || c = '-'

let ident cur =
  skip_ws cur;
  let start = cur.pos in
  let rec go () =
    match peek cur with
    | Some c when is_ident_char c ->
        advance cur;
        go ()
    | Some _ | None -> ()
  in
  go ();
  if cur.pos = start then fail cur "expected an identifier";
  String.sub cur.text start (cur.pos - start)

let quoted cur =
  (* Opening quote already consumed. *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | Some '\'' -> advance cur
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
    | None -> fail cur "unterminated quoted constant"
  in
  go ();
  Buffer.contents buf

let term cur =
  skip_ws cur;
  match peek cur with
  | Some '\'' ->
      advance cur;
      Term.Const (Relalg.Value.Str (quoted cur))
  | Some c when (c >= 'A' && c <= 'Z') || c = '_' -> Term.Var (ident cur)
  | Some _ ->
      let word = ident cur in
      (* Numbers parse as numeric constants, anything else as strings. *)
      Term.Const (Relalg.Value.of_string word)
  | None -> fail cur "expected a term"

let atom cur =
  let pred = ident cur in
  expect cur '(';
  skip_ws cur;
  let args =
    match peek cur with
    | Some ')' -> []
    | _ ->
        let rec go acc =
          let t = term cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              go (t :: acc)
          | _ -> List.rev (t :: acc)
        in
        go []
  in
  expect cur ')';
  Atom.make pred args

let query cur =
  let head = atom cur in
  skip_ws cur;
  expect cur ':';
  expect cur '-';
  let rec body acc =
    let a = atom cur in
    skip_ws cur;
    match peek cur with
    | Some ',' ->
        advance cur;
        body (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  let body = body [] in
  skip_ws cur;
  (match peek cur with
  | None -> ()
  | Some c -> fail cur "trailing input starting with '%c'" c);
  Query.make head body

let run f text =
  let cur = { text; pos = 0 } in
  try Ok (f cur) with Parse_error msg -> Error msg

let parse_query text = run query text

let parse_query_exn text =
  match parse_query text with
  | Ok q -> q
  | Error msg -> invalid_arg ("Cq.Parser.parse_query_exn: " ^ msg)

let parse_atom text =
  run
    (fun cur ->
      let a = atom cur in
      skip_ws cur;
      (match peek cur with
      | None -> ()
      | Some c -> fail cur "trailing input starting with '%c'" c);
      a)
    text

let parse_program text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" || (String.length line > 0 && line.[0] = '#') then
          go acc rest
        else
          (match parse_query line with
          | Ok q -> go (q :: acc) rest
          | Error msg -> Error (Printf.sprintf "%s in %S" msg line))
  in
  go [] lines
