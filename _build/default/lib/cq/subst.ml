module Smap = Map.Make (String)

type t = Term.t Smap.t

let empty = Smap.empty
let is_empty = Smap.is_empty
let bindings t = Smap.bindings t
let find t x = Smap.find_opt x t
let bind t x term = Smap.add x term t

let rec walk t term =
  match term with
  | Term.Const _ -> term
  | Term.Var x -> (
      match Smap.find_opt x t with None -> term | Some next -> walk t next)

let apply_term t term = walk t term
let apply_atom t atom = Atom.map_terms (walk t) atom

let unify_term t a b =
  let a = walk t a and b = walk t b in
  match (a, b) with
  | Term.Const u, Term.Const v ->
      if Relalg.Value.equal u v then Some t else None
  | Term.Var x, Term.Var y when String.equal x y -> Some t
  | Term.Var x, other | other, Term.Var x -> Some (bind t x other)

let fold_args f t args_a args_b =
  let rec go t = function
    | [], [] -> Some t
    | a :: ra, b :: rb -> (
        match f t a b with None -> None | Some t -> go t (ra, rb))
    | _ -> None
  in
  go t (args_a, args_b)

let unify_atom t (a : Atom.t) (b : Atom.t) =
  if String.equal a.pred b.pred && Atom.arity a = Atom.arity b then
    fold_args unify_term t a.args b.args
  else None

(* Callers must freeze the rigid side (replace its variables by unique
   constants, cf. Homomorphism.freeze) so that pattern variables can never
   collide with rigid variables through binding chains. *)
let match_term t pat rigid =
  match (walk t pat, rigid) with
  | Term.Const u, Term.Const v -> if Relalg.Value.equal u v then Some t else None
  | Term.Const _, Term.Var _ -> None
  | Term.Var x, other -> Some (bind t x other)

let match_atom t (pat : Atom.t) (rigid : Atom.t) =
  if String.equal pat.pred rigid.pred && Atom.arity pat = Atom.arity rigid then
    fold_args match_term t pat.args rigid.args
  else None

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map
          (fun (x, term) -> Printf.sprintf "%s -> %s" x (Term.to_string term))
          (Smap.bindings t)))
