type t = { name : string; attrs : string array }

let make name attrs =
  let sorted = List.sort_uniq String.compare attrs in
  if List.length sorted <> List.length attrs then
    invalid_arg ("Schema.make: duplicate attribute in " ^ name);
  { name; attrs = Array.of_list attrs }

let name t = t.name
let attrs t = Array.to_list t.attrs
let arity t = Array.length t.attrs

let index_of_opt t a =
  let n = Array.length t.attrs in
  let rec go i =
    if i >= n then None else if String.equal t.attrs.(i) a then Some i else go (i + 1)
  in
  go 0

let index_of t a =
  match index_of_opt t a with Some i -> i | None -> raise Not_found

let has_attr t a = Option.is_some (index_of_opt t a)

let rename t name = { t with name }

let pp fmt t =
  Format.fprintf fmt "%s(%s)" t.name (String.concat ", " (attrs t))

let equal a b =
  String.equal a.name b.name
  && Array.length a.attrs = Array.length b.attrs
  && Array.for_all2 String.equal a.attrs b.attrs
