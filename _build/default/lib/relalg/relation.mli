(** An in-memory relation: a schema and a bag of tuples with optional
    set semantics and per-column hash indexes (built lazily, invalidated
    on insertion). *)

type tuple = Value.t array
type t

val create : Schema.t -> t
val schema : t -> Schema.t
val cardinality : t -> int

val insert : t -> tuple -> unit
(** Raises [Invalid_argument] on arity mismatch. Duplicates are kept
    (bag semantics); use [insert_distinct] for set semantics. *)

val insert_distinct : t -> tuple -> bool
(** Returns [false] (and does nothing) if an equal tuple is present. *)

val delete : t -> tuple -> int
(** Removes all equal tuples; returns how many were removed. *)

val tuples : t -> tuple list
val iter : (tuple -> unit) -> t -> unit
val fold : ('a -> tuple -> 'a) -> 'a -> t -> 'a

val find_by : t -> int -> Value.t -> tuple list
(** [find_by t col v] returns tuples whose [col]-th value equals [v],
    via a lazily built hash index. *)

val mem : t -> tuple -> bool
val of_tuples : Schema.t -> tuple list -> t
val copy : t -> t
val clear : t -> unit
val pp : Format.formatter -> t -> unit
