(** Relational algebra operators. All operators are functional: they
    return fresh relations and never mutate their inputs. *)

type agg = Count | Sum of string | Min of string | Max of string | Avg of string

val select : (Relation.tuple -> bool) -> Relation.t -> Relation.t

val select_eq : string -> Value.t -> Relation.t -> Relation.t
(** Equality selection on a named attribute (index-assisted). *)

val project : string list -> Relation.t -> Relation.t
(** Set-semantics projection. Raises [Not_found] on unknown attributes. *)

val rename : string -> Relation.t -> Relation.t

val rename_attrs : (string * string) list -> Relation.t -> Relation.t
(** [(old, new)] pairs; attributes not mentioned are kept. *)

val natural_join : Relation.t -> Relation.t -> Relation.t
(** Hash join on all shared attribute names; output attributes are the
    left attributes followed by the right-only attributes. *)

val product : Relation.t -> Relation.t -> Relation.t
(** Raises [Invalid_argument] if the two schemas share attribute names. *)

val union : Relation.t -> Relation.t -> Relation.t
(** Set union; arities must agree (schema of the left operand wins). *)

val diff : Relation.t -> Relation.t -> Relation.t
val intersect : Relation.t -> Relation.t -> Relation.t

val group_by : string list -> agg list -> Relation.t -> Relation.t
(** [group_by keys aggs r]: one output tuple per distinct key combination;
    output attributes are [keys] followed by derived aggregate names
    ([count], [sum_a], ...). *)

val distinct : Relation.t -> Relation.t
val sort_by : string -> Relation.t -> Relation.t
