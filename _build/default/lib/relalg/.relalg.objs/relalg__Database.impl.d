lib/relalg/database.ml: Format Hashtbl List Relation Schema String
