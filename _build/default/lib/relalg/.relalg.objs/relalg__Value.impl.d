lib/relalg/value.ml: Format Hashtbl Printf Stdlib
