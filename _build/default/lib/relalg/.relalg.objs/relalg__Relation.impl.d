lib/relalg/relation.ml: Array Format Hashtbl List Option Printf Schema String Value
