lib/relalg/schema.ml: Array Format List Option String
