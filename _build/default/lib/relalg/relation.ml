type tuple = Value.t array

type t = {
  schema : Schema.t;
  mutable rows : tuple list;
  mutable count : int;
  (* col -> (value -> tuples); rebuilt on demand after mutation. *)
  mutable indexes : (int, (Value.t, tuple list) Hashtbl.t) Hashtbl.t;
}

let create schema =
  { schema; rows = []; count = 0; indexes = Hashtbl.create 4 }

let schema t = t.schema
let cardinality t = t.count

let invalidate t = if Hashtbl.length t.indexes > 0 then t.indexes <- Hashtbl.create 4

let check_arity t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Relation.insert: arity mismatch for %s (got %d, want %d)"
         (Schema.name t.schema) (Array.length row) (Schema.arity t.schema))

let insert t row =
  check_arity t row;
  t.rows <- row :: t.rows;
  t.count <- t.count + 1;
  invalidate t

let tuple_equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let mem t row = List.exists (tuple_equal row) t.rows

let insert_distinct t row =
  check_arity t row;
  if mem t row then false
  else begin
    insert t row;
    true
  end

let delete t row =
  let before = t.count in
  t.rows <- List.filter (fun r -> not (tuple_equal r row)) t.rows;
  t.count <- List.length t.rows;
  invalidate t;
  before - t.count

let tuples t = t.rows
let iter f t = List.iter f t.rows
let fold f init t = List.fold_left f init t.rows

let build_index t col =
  let idx = Hashtbl.create (max 16 t.count) in
  List.iter
    (fun row ->
      let key = row.(col) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt idx key) in
      Hashtbl.replace idx key (row :: existing))
    t.rows;
  Hashtbl.replace t.indexes col idx;
  idx

let find_by t col v =
  if col < 0 || col >= Schema.arity t.schema then
    invalid_arg "Relation.find_by: column out of range";
  let idx =
    match Hashtbl.find_opt t.indexes col with
    | Some idx -> idx
    | None -> build_index t col
  in
  Option.value ~default:[] (Hashtbl.find_opt idx v)

let of_tuples schema rows =
  let t = create schema in
  List.iter (insert t) rows;
  t

let copy t = of_tuples t.schema t.rows

let clear t =
  t.rows <- [];
  t.count <- 0;
  invalidate t

let pp fmt t =
  Format.fprintf fmt "%a [%d rows]" Schema.pp t.schema t.count;
  List.iteri
    (fun i row ->
      if i < 20 then
        Format.fprintf fmt "@\n  (%s)"
          (String.concat ", " (Array.to_list (Array.map Value.to_string row))))
    t.rows
