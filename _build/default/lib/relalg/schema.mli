(** Relation schema: a name plus ordered attribute names. *)

type t = private { name : string; attrs : string array }

val make : string -> string list -> t
(** Raises [Invalid_argument] on duplicate attribute names. *)

val name : t -> string
val attrs : t -> string list
val arity : t -> int

val index_of : t -> string -> int
(** Raises [Not_found] if the attribute is absent. *)

val index_of_opt : t -> string -> int option
val has_attr : t -> string -> bool
val rename : t -> string -> t
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
