(** Atomic data values. The S-WORLD substrate is dynamically typed: the
    repository built from annotated web pages may hold dirty data
    (Section 2.3), so a column is not statically forced to one type. *)

type t = Null | Bool of bool | Int of int | Float of float | Str of string

type ty = Tnull | Tbool | Tint | Tfloat | Tstr

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val type_of : t -> ty
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Best-effort parse: int, then float, then bool, else string. *)

val str : string -> t
val int : int -> t
