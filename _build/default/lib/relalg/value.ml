type t = Null | Bool of bool | Int of int | Float of float | Str of string

type ty = Tnull | Tbool | Tint | Tfloat | Tstr

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = Stdlib.compare a b = 0
let hash (v : t) = Hashtbl.hash v

let type_of = function
  | Null -> Tnull
  | Bool _ -> Tbool
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Str _ -> Tstr

let to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let pp fmt v = Format.pp_print_string fmt (to_string v)

let of_string s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> (
          match bool_of_string_opt s with Some b -> Bool b | None -> Str s))

let str s = Str s
let int i = Int i
