module Smap = Map.Make (String)

type corpus = { df : float Smap.t; n : int }
type vector = (string * float) list

let build docs =
  let df =
    List.fold_left
      (fun acc doc ->
        let distinct = List.sort_uniq String.compare doc in
        List.fold_left
          (fun acc tok ->
            Smap.update tok
              (function None -> Some 1.0 | Some c -> Some (c +. 1.0))
              acc)
          acc distinct)
      Smap.empty docs
  in
  { df; n = List.length docs }

let num_docs c = c.n

let idf c tok =
  let df = Option.value ~default:0.0 (Smap.find_opt tok c.df) in
  log ((float_of_int c.n +. 1.0) /. (df +. 1.0)) +. 1.0

let vectorize c doc =
  let tf =
    List.fold_left
      (fun acc tok ->
        Smap.update tok
          (function None -> Some 1.0 | Some x -> Some (x +. 1.0))
          acc)
      Smap.empty doc
  in
  let weighted = Smap.mapi (fun tok f -> f *. idf c tok) tf in
  let norm =
    sqrt (Smap.fold (fun _ w acc -> acc +. (w *. w)) weighted 0.0)
  in
  let weighted = if norm > 0.0 then Smap.map (fun w -> w /. norm) weighted else weighted in
  Smap.bindings weighted

let cosine va vb =
  let mb = List.fold_left (fun acc (k, v) -> Smap.add k v acc) Smap.empty vb in
  List.fold_left
    (fun acc (k, v) ->
      match Smap.find_opt k mb with None -> acc | Some w -> acc +. (v *. w))
    0.0 va

let similarity c da db = cosine (vectorize c da) (vectorize c db)
