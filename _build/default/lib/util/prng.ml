type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed) }

let split t = { state = mix64 (next_int64 t) }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value stays non-negative as a native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t ~mean ~stddev =
  (* Box-Muller; one value per call is plenty for our workloads. *)
  let u1 = Float.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Prng.pick_arr: empty array";
  a.(int t (Array.length a))

let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t k xs =
  let shuffled = shuffle t xs in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take k shuffled

let weighted t choices =
  let total = List.fold_left (fun acc (_, w) -> acc +. Float.max 0.0 w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Prng.weighted: weights must be positive";
  let target = float t total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted: empty choices"
    | [ (x, _) ] -> x
    | (x, w) :: rest ->
        let acc = acc +. Float.max 0.0 w in
        if target < acc then x else go acc rest
  in
  go 0.0 choices

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  (* Direct inversion over the (small) support; our sweeps keep n modest. *)
  let h = ref 0.0 in
  let weights =
    Array.init n (fun i ->
        let w = 1.0 /. Float.pow (float_of_int (i + 1)) s in
        h := !h +. w;
        w)
  in
  let target = float t !h in
  let rec go i acc =
    if i >= n - 1 then n
    else
      let acc = acc +. weights.(i) in
      if target < acc then i + 1 else go (i + 1) acc
  in
  go 0 0.0
