(** Bounded best-k accumulator for ranked retrieval (DesignAdvisor,
    semantic search). *)

type 'a t

val create : int -> 'a t
(** [create k] keeps the [k] highest-scoring items. *)

val add : 'a t -> float -> 'a -> unit

val to_list : 'a t -> (float * 'a) list
(** Best first. *)

val min_score : 'a t -> float option
(** Score of the weakest retained item, if the accumulator is full. *)
