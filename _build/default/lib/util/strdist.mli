(** String similarity measures used by the name-based matcher. *)

val levenshtein : string -> string -> int

val levenshtein_sim : string -> string -> float
(** [1 - dist / max-length], in [\[0, 1\]]; 1.0 for two empty strings. *)

val ngrams : int -> string -> string list
(** Character n-grams of the padded string; [ngrams 3 "ab"] pads so short
    strings still produce grams. *)

val jaccard : string list -> string list -> float
(** Jaccard similarity of two token multisets (treated as sets). *)

val dice : string list -> string list -> float

val ngram_sim : ?n:int -> string -> string -> float
(** Dice coefficient over character n-grams (default [n = 3]). *)

val prefix_sim : string -> string -> float
(** Length of common prefix over max length. *)
