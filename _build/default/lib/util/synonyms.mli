(** Synonym tables.

    Section 4.2.1 maintains statistics "depending on whether we take into
    consideration word stemming, synonym tables, inter-language
    dictionaries, or any combination". A table groups interchangeable
    tokens; [canonical] maps every member of a group to one
    representative. *)

type t

val empty : t

val of_groups : string list list -> t
(** [of_groups groups] builds a table where all words within one group are
    mutual synonyms. Words are lowercased. *)

val add_group : t -> string list -> t

val canonical : t -> string -> string
(** [canonical t w] is the representative of [w]'s group ([w] itself if
    unknown). *)

val synonymous : t -> string -> string -> bool

val expand : t -> string -> string list
(** [expand t w] is the full group of [w] (at least [\[w\]]). *)

val university_domain : t
(** Built-in table for the paper's running university / course domain,
    including a small English–Italian inter-language fragment for the
    Rome/Trento scenario of Example 3.1. *)
