(** Porter stemmer.

    The corpus statistics of Section 4.2 are maintained in several
    variants, one of which folds morphological variation ("instructor",
    "instructors", "instructing" share a stem). This is a full
    implementation of the classic Porter (1980) algorithm. *)

val stem : string -> string
(** [stem w] stems a lowercase English word. Words of length <= 2 are
    returned unchanged; the input is lowercased first. *)
