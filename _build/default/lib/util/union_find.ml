type t = { parent : (string, string) Hashtbl.t; rank : (string, int) Hashtbl.t }

let create () = { parent = Hashtbl.create 64; rank = Hashtbl.create 64 }

let rec find t x =
  match Hashtbl.find_opt t.parent x with
  | None ->
      Hashtbl.replace t.parent x x;
      Hashtbl.replace t.rank x 0;
      x
  | Some p when String.equal p x -> x
  | Some p ->
      let root = find t p in
      Hashtbl.replace t.parent x root;
      root

let union t a b =
  let ra = find t a and rb = find t b in
  if not (String.equal ra rb) then begin
    let ka = Hashtbl.find t.rank ra and kb = Hashtbl.find t.rank rb in
    if ka < kb then Hashtbl.replace t.parent ra rb
    else if ka > kb then Hashtbl.replace t.parent rb ra
    else begin
      Hashtbl.replace t.parent rb ra;
      Hashtbl.replace t.rank ra (ka + 1)
    end
  end

let connected t a b = String.equal (find t a) (find t b)

let groups t =
  let by_root = Hashtbl.create 16 in
  Hashtbl.iter
    (fun x _ ->
      let r = find t x in
      let members = Option.value ~default:[] (Hashtbl.find_opt by_root r) in
      Hashtbl.replace by_root r (x :: members))
    t.parent;
  Hashtbl.fold (fun _ members acc -> List.sort String.compare members :: acc) by_root []
