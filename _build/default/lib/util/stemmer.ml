(* Classic Porter (1980) algorithm. The word being stemmed is an
   immutable string; each rule produces a fresh string. *)

let rec is_consonant w i =
  match w.[i] with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> false
  | 'y' -> if i = 0 then true else not (is_consonant w (i - 1))
  | _ -> true

(* Number of VC patterns in w.[0 .. len-1]. *)
let measure_prefix w len =
  let m = ref 0 in
  let prev_vowel = ref false in
  for i = 0 to len - 1 do
    let c = is_consonant w i in
    if c && !prev_vowel then incr m;
    prev_vowel := not c
  done;
  !m

let measure w = measure_prefix w (String.length w)

let contains_vowel w len =
  let rec go i = i < len && ((not (is_consonant w i)) || go (i + 1)) in
  go 0

let ends_with w suffix =
  let lw = String.length w and ls = String.length suffix in
  lw >= ls && String.sub w (lw - ls) ls = suffix

let chop w n = String.sub w 0 (String.length w - n)

let ends_double_consonant w =
  let n = String.length w in
  n >= 2 && w.[n - 1] = w.[n - 2] && is_consonant w (n - 1)

(* Stem ends consonant-vowel-consonant where the final consonant is not
   w, x or y: the *o condition of the original paper. *)
let ends_cvc w =
  let n = String.length w in
  n >= 3
  && is_consonant w (n - 3)
  && (not (is_consonant w (n - 2)))
  && is_consonant w (n - 1)
  && (match w.[n - 1] with 'w' | 'x' | 'y' -> false | _ -> true)

(* Try rules (suffix, replacement, condition-on-stem) in order; apply the
   first whose suffix matches (condition failing still consumes the
   match, per the original algorithm's longest-match semantics). *)
let apply_rules w rules =
  let rec go = function
    | [] -> w
    | (suffix, repl, cond) :: rest ->
        if ends_with w suffix then
          let stem = chop w (String.length suffix) in
          if cond stem then stem ^ repl else w
        else go rest
  in
  go rules

let m_gt n stem = measure stem > n

let step_1a w =
  if ends_with w "sses" then chop w 2
  else if ends_with w "ies" then chop w 2
  else if ends_with w "ss" then w
  else if ends_with w "s" then chop w 1
  else w

let step_1b w =
  if ends_with w "eed" then (if m_gt 0 (chop w 3) then chop w 1 else w)
  else
    let stripped =
      if ends_with w "ed" && contains_vowel w (String.length w - 2) then
        Some (chop w 2)
      else if ends_with w "ing" && contains_vowel w (String.length w - 3) then
        Some (chop w 3)
      else None
    in
    match stripped with
    | None -> w
    | Some s ->
        if ends_with s "at" || ends_with s "bl" || ends_with s "iz" then s ^ "e"
        else if
          ends_double_consonant s
          && not (ends_with s "l" || ends_with s "s" || ends_with s "z")
        then chop s 1
        else if measure s = 1 && ends_cvc s then s ^ "e"
        else s

let step_1c w =
  if ends_with w "y" && contains_vowel w (String.length w - 1) then
    chop w 1 ^ "i"
  else w

let step_2 w =
  apply_rules w
    [ ("ational", "ate", m_gt 0); ("tional", "tion", m_gt 0);
      ("enci", "ence", m_gt 0); ("anci", "ance", m_gt 0);
      ("izer", "ize", m_gt 0); ("abli", "able", m_gt 0);
      ("alli", "al", m_gt 0); ("entli", "ent", m_gt 0);
      ("eli", "e", m_gt 0); ("ousli", "ous", m_gt 0);
      ("ization", "ize", m_gt 0); ("ation", "ate", m_gt 0);
      ("ator", "ate", m_gt 0); ("alism", "al", m_gt 0);
      ("iveness", "ive", m_gt 0); ("fulness", "ful", m_gt 0);
      ("ousness", "ous", m_gt 0); ("aliti", "al", m_gt 0);
      ("iviti", "ive", m_gt 0); ("biliti", "ble", m_gt 0) ]

let step_3 w =
  apply_rules w
    [ ("icate", "ic", m_gt 0); ("ative", "", m_gt 0); ("alize", "al", m_gt 0);
      ("iciti", "ic", m_gt 0); ("ical", "ic", m_gt 0); ("ful", "", m_gt 0);
      ("ness", "", m_gt 0) ]

let step_4 w =
  let ion_cond stem = m_gt 1 stem && (ends_with stem "s" || ends_with stem "t") in
  apply_rules w
    [ ("ement", "", m_gt 1); ("ance", "", m_gt 1); ("ence", "", m_gt 1);
      ("able", "", m_gt 1); ("ible", "", m_gt 1); ("ment", "", m_gt 1);
      ("ant", "", m_gt 1); ("ent", "", m_gt 1); ("ion", "", ion_cond);
      ("ism", "", m_gt 1); ("ate", "", m_gt 1); ("iti", "", m_gt 1);
      ("ous", "", m_gt 1); ("ive", "", m_gt 1); ("ize", "", m_gt 1);
      ("al", "", m_gt 1); ("er", "", m_gt 1); ("ic", "", m_gt 1);
      ("ou", "", m_gt 1) ]

let step_5a w =
  if ends_with w "e" then
    let stem = chop w 1 in
    let m = measure stem in
    if m > 1 || (m = 1 && not (ends_cvc stem)) then stem else w
  else w

let step_5b w =
  if m_gt 1 w && ends_double_consonant w && ends_with w "l" then chop w 1
  else w

let stem word =
  let w = String.lowercase_ascii word in
  if String.length w <= 2 then w
  else w |> step_1a |> step_1b |> step_1c |> step_2 |> step_3 |> step_4
       |> step_5a |> step_5b
