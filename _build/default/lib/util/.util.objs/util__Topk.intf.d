lib/util/topk.mli:
