lib/util/strdist.ml: Array List Set String
