lib/util/tokenize.ml: Buffer List String
