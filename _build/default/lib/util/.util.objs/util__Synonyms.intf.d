lib/util/synonyms.mli:
