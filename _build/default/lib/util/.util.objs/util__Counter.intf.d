lib/util/counter.mli:
