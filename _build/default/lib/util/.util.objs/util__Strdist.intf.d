lib/util/strdist.mli:
