lib/util/stats.mli:
