lib/util/union_find.ml: Hashtbl List Option String
