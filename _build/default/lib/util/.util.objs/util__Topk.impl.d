lib/util/topk.ml: List
