lib/util/stemmer.mli:
