lib/util/tfidf.mli:
