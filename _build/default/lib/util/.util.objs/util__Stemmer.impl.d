lib/util/stemmer.ml: String
