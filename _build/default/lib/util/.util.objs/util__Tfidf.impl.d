lib/util/tfidf.ml: List Map Option String
