lib/util/synonyms.ml: List Map String
