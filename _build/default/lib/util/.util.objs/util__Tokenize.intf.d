lib/util/tokenize.mli:
