lib/util/counter.ml: Float Hashtbl List Option String
