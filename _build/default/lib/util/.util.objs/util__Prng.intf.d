lib/util/prng.mli:
