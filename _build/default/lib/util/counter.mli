(** Frequency counter over strings — the workhorse of the corpus
    statistics layer. *)

type t

val create : unit -> t
val add : ?weight:float -> t -> string -> unit
val count : t -> string -> float
val total : t -> float
val distinct : t -> int
val mem : t -> string -> bool

val items : t -> (string * float) list
(** All (key, count) pairs, sorted by decreasing count then key. *)

val top : t -> int -> (string * float) list

val frequency : t -> string -> float
(** [count / total], or 0 when empty. *)

val merge : t -> t -> t
(** Pointwise sum; inputs are not mutated. *)
