(** Plain-text table rendering for the benchmark harness: every experiment
    prints its rows in the same aligned format. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells. *)

val render : t -> string
(** Aligned, pipe-separated rendering with a header rule. *)

val print : t -> unit
(** [render] followed by a newline on stdout. *)

val cell_f : float -> string
(** Fixed 3-decimal float cell. *)

val cell_i : int -> string
