(** Deterministic, splittable pseudo-random number generator.

    All randomized components of the library (workload generators, learners
    with random initialisation, the network simulator) take an explicit
    [Prng.t] so that every experiment is reproducible from a single seed.
    The generator is SplitMix64. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mean:float -> stddev:float -> float

val pick : t -> 'a list -> 'a
(** [pick t xs] is a uniform element of [xs]. Raises [Invalid_argument] on
    the empty list. *)

val pick_arr : t -> 'a array -> 'a

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] elements without
    replacement, preserving no particular order. *)

val shuffle : t -> 'a list -> 'a list

val weighted : t -> ('a * float) list -> 'a
(** [weighted t choices] picks proportionally to the (positive) weights. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws a rank in [\[1, n\]] under a Zipf distribution
    with exponent [s]. *)
