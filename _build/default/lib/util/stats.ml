let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let var =
        sum (List.map (fun x -> (x -. m) ** 2.0) xs)
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) |> max 1 |> min n
      in
      List.nth sorted (rank - 1)

let median xs = percentile 50.0 xs

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: rest -> List.fold_left Float.min x rest

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: rest -> List.fold_left Float.max x rest

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  match xs with
  | [] -> []
  | _ ->
      let lo = minimum xs and hi = maximum xs in
      let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
      let counts = Array.make bins 0 in
      List.iter
        (fun x ->
          let i = int_of_float ((x -. lo) /. width) |> max 0 |> min (bins - 1) in
          counts.(i) <- counts.(i) + 1)
        xs;
      List.init bins (fun i -> (lo +. (float_of_int i *. width), counts.(i)))
