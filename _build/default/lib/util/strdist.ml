let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let levenshtein_sim a b =
  let m = max (String.length a) (String.length b) in
  if m = 0 then 1.0
  else 1.0 -. (float_of_int (levenshtein a b) /. float_of_int m)

let ngrams n s =
  if n <= 0 then invalid_arg "Strdist.ngrams: n must be positive";
  let padded = String.make (n - 1) '#' ^ s ^ String.make (n - 1) '#' in
  let len = String.length padded in
  let rec go i acc =
    if i + n > len then List.rev acc else go (i + 1) (String.sub padded i n :: acc)
  in
  go 0 []

module Sset = Set.Make (String)

let jaccard xs ys =
  let sx = Sset.of_list xs and sy = Sset.of_list ys in
  if Sset.is_empty sx && Sset.is_empty sy then 1.0
  else
    let inter = Sset.cardinal (Sset.inter sx sy) in
    let union = Sset.cardinal (Sset.union sx sy) in
    float_of_int inter /. float_of_int union

let dice xs ys =
  let sx = Sset.of_list xs and sy = Sset.of_list ys in
  let cx = Sset.cardinal sx and cy = Sset.cardinal sy in
  if cx = 0 && cy = 0 then 1.0
  else
    let inter = Sset.cardinal (Sset.inter sx sy) in
    2.0 *. float_of_int inter /. float_of_int (cx + cy)

let ngram_sim ?(n = 3) a b = dice (ngrams n a) (ngrams n b)

let prefix_sim a b =
  let la = String.length a and lb = String.length b in
  let m = max la lb in
  if m = 0 then 1.0
  else begin
    let rec common i = if i < la && i < lb && a.[i] = b.[i] then common (i + 1) else i in
    float_of_int (common 0) /. float_of_int m
  end
