(** Tokenisation of schema identifiers and free text.

    Schema names in the corpus arrive as [courseTitle], [course_title],
    [COURSE-TITLE], etc.; the statistics layer (Section 4 of the paper)
    needs them broken into comparable word tokens. *)

val split_identifier : string -> string list
(** [split_identifier s] splits on underscores, dashes, dots, digits and
    camelCase boundaries, lowercasing every token:
    [split_identifier "courseTitle2" = ["course"; "title"]]. *)

val words : string -> string list
(** [words text] extracts lowercase alphanumeric word tokens from free
    text, dropping punctuation. *)

val normalize : string -> string
(** [normalize s] is the canonical single-string form of an identifier:
    tokens joined by ["_"]. *)
