type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let pad_to n row =
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let render t =
  let ncols = List.length t.headers in
  let rows = List.rev_map (pad_to ncols) t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let fmt_row row =
    let cells =
      List.map2
        (fun cell w -> cell ^ String.make (w - String.length cell) ' ')
        row widths
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  String.concat "\n" (fmt_row t.headers :: rule :: List.map fmt_row rows)

let print t = print_endline (render t)

let cell_f x = Printf.sprintf "%.3f" x
let cell_i n = string_of_int n
