(** Descriptive statistics for benchmark reporting. *)

val mean : float list -> float
val stddev : float list -> float
val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0, 100\]], nearest-rank on the sorted
    values. Raises [Invalid_argument] on the empty list. *)

val minimum : float list -> float
val maximum : float list -> float
val sum : float list -> float

val histogram : bins:int -> float list -> (float * int) list
(** [(lower-bound, count)] per bin across the value range. *)
