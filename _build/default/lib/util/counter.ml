type t = { tbl : (string, float) Hashtbl.t; mutable total : float }

let create () = { tbl = Hashtbl.create 64; total = 0.0 }

let add ?(weight = 1.0) t key =
  let current = Option.value ~default:0.0 (Hashtbl.find_opt t.tbl key) in
  Hashtbl.replace t.tbl key (current +. weight);
  t.total <- t.total +. weight

let count t key = Option.value ~default:0.0 (Hashtbl.find_opt t.tbl key)
let total t = t.total
let distinct t = Hashtbl.length t.tbl
let mem t key = Hashtbl.mem t.tbl key

let items t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (k1, v1) (k2, v2) ->
         match Float.compare v2 v1 with 0 -> String.compare k1 k2 | c -> c)

let top t n =
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take n (items t)

let frequency t key = if t.total <= 0.0 then 0.0 else count t key /. t.total

let merge a b =
  let out = create () in
  Hashtbl.iter (fun k v -> add ~weight:v out k) a.tbl;
  Hashtbl.iter (fun k v -> add ~weight:v out k) b.tbl;
  out
