(** Union-find over strings, used to cluster co-occurring attribute names
    in the corpus statistics. *)

type t

val create : unit -> t
val find : t -> string -> string
val union : t -> string -> string -> unit
val connected : t -> string -> string -> bool

val groups : t -> string list list
(** All classes with at least one recorded element. *)
