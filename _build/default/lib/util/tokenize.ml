let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_upper c = c >= 'A' && c <= 'Z'
let is_lower c = c >= 'a' && c <= 'z'

(* Boundaries: non-alphanumeric separators, lower->Upper transitions, and
   Upper+Upper+lower sequences like "XMLFile" -> "xml"/"file". *)
let split_identifier s =
  let n = String.length s in
  let tokens = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := String.lowercase_ascii (Buffer.contents buf) :: !tokens;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if not (is_alpha c) then flush ()
    else begin
      let boundary =
        i > 0
        && ((is_lower s.[i - 1] && is_upper c)
           || (is_upper c
              && i + 1 < n
              && is_upper s.[i - 1]
              && is_lower s.[i + 1]))
      in
      if boundary then flush ();
      Buffer.add_char buf c
    end
  done;
  flush ();
  List.rev !tokens

let words text =
  let n = String.length text in
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := String.lowercase_ascii (Buffer.contents buf) :: !tokens;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = text.[i] in
    if is_alpha c || is_digit c then Buffer.add_char buf c else flush ()
  done;
  flush ();
  List.rev !tokens

let normalize s = String.concat "_" (split_identifier s)
