(* A simple sorted-list implementation: k is small (tens) in every use
   site, so O(k) insertion is fine and keeps the code obvious. *)
type 'a t = { k : int; mutable items : (float * 'a) list; mutable size : int }

let create k =
  if k <= 0 then invalid_arg "Topk.create: k must be positive";
  { k; items = []; size = 0 }

let add t score x =
  let rec insert = function
    | [] -> [ (score, x) ]
    | (s, _) :: _ as rest when score > s -> (score, x) :: rest
    | item :: rest -> item :: insert rest
  in
  t.items <- insert t.items;
  t.size <- t.size + 1;
  if t.size > t.k then begin
    t.items <- List.filteri (fun i _ -> i < t.k) t.items;
    t.size <- t.k
  end

let to_list t = t.items

let min_score t =
  if t.size < t.k then None
  else
    match List.rev t.items with [] -> None | (s, _) :: _ -> Some s
