(** TF/IDF vector space — the U-WORLD technique the paper explicitly
    transplants into the S-WORLD (Section 4). Documents are bags of
    tokens; vectors are sparse. *)

type corpus
type vector = (string * float) list
(** Sparse vector: token -> weight, tokens unique. *)

val build : string list list -> corpus
(** [build docs] computes document frequencies over tokenised documents. *)

val num_docs : corpus -> int

val idf : corpus -> string -> float
(** Smoothed: [log ((n + 1) / (df + 1)) + 1]. *)

val vectorize : corpus -> string list -> vector
(** TF (raw count) * IDF, L2-normalised. *)

val cosine : vector -> vector -> float

val similarity : corpus -> string list -> string list -> float
(** Cosine of the two vectorised documents. *)
