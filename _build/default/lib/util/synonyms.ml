module Smap = Map.Make (String)

(* word -> (representative, group). Groups are small, so storing the full
   group per member keeps lookups trivial. *)
type t = (string * string list) Smap.t

let empty = Smap.empty

let add_group t group =
  let group = List.map String.lowercase_ascii group in
  match group with
  | [] -> t
  | repr :: _ ->
      (* Merge with any groups the new words already belong to. *)
      let full =
        List.fold_left
          (fun acc w ->
            match Smap.find_opt w t with
            | Some (_, g) -> g @ acc
            | None -> w :: acc)
          [] group
        |> List.sort_uniq String.compare
      in
      List.fold_left (fun acc w -> Smap.add w (repr, full) acc) t full

let of_groups groups = List.fold_left add_group empty groups

let canonical t w =
  let w = String.lowercase_ascii w in
  match Smap.find_opt w t with Some (repr, _) -> repr | None -> w

let synonymous t a b = String.equal (canonical t a) (canonical t b)

let expand t w =
  let w = String.lowercase_ascii w in
  match Smap.find_opt w t with Some (_, group) -> group | None -> [ w ]

let university_domain =
  of_groups
    [ [ "course"; "class"; "subject"; "corso" ];
      [ "instructor"; "teacher"; "professor"; "lecturer"; "faculty"; "docente" ];
      [ "student"; "pupil"; "studente" ];
      [ "title"; "name"; "titolo"; "nome" ];
      [ "enrollment"; "size"; "capacity"; "seats" ];
      [ "department"; "dept"; "division"; "dipartimento" ];
      [ "schedule"; "calendar"; "timetable"; "orario" ];
      [ "room"; "location"; "venue"; "place"; "aula" ];
      [ "phone"; "telephone"; "tel"; "telefono" ];
      [ "email"; "mail"; "contact" ];
      [ "ta"; "assistant"; "grader" ];
      [ "textbook"; "book"; "text"; "libro" ];
      [ "grade"; "mark"; "score"; "voto" ];
      [ "semester"; "term"; "quarter"; "semestre" ];
      [ "prerequisite"; "prereq"; "requirement" ];
      [ "lecture"; "session"; "meeting"; "lezione" ];
      [ "office"; "bureau"; "ufficio" ];
      [ "homework"; "assignment"; "problem" ];
      [ "exam"; "test"; "final"; "midterm"; "esame" ];
      [ "college"; "school"; "university"; "universita" ];
      [ "hour"; "time"; "ora" ];
      [ "day"; "weekday"; "giorno" ];
      [ "credit"; "unit"; "credito" ];
      [ "publication"; "paper"; "article" ];
      [ "talk"; "seminar"; "colloquium" ];
      [ "building"; "hall"; "edificio" ] ]
