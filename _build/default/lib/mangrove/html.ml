type t = { url : string; title : string; body : Xmlmodel.Xml.t }

let make ~url ~title body = { url; title; body }

let node_at doc path =
  let rec go node = function
    | [] -> Some node
    | i :: rest -> (
        match List.nth_opt (Xmlmodel.Xml.children node) i with
        | Some child -> go child rest
        | None -> None)
  in
  go doc.body path

let nodes doc =
  let rec go path node acc =
    let acc = (List.rev path, node) :: acc in
    List.fold_left
      (fun (i, acc) child -> (i + 1, go (i :: path) child acc))
      (0, acc)
      (Xmlmodel.Xml.children node)
    |> snd
  in
  List.rev (go [] doc.body [])

let find_nodes doc pred =
  List.filter (fun (_, node) -> pred node) (nodes doc)

let contains_ci haystack needle =
  let h = String.lowercase_ascii haystack and n = String.lowercase_ascii needle in
  let lh = String.length h and ln = String.length n in
  let rec go i = i + ln <= lh && (String.sub h i ln = n || go (i + 1)) in
  ln = 0 || go 0

let find_text doc needle =
  List.filter_map
    (fun (path, node) ->
      match node with
      | Xmlmodel.Xml.Text s when contains_ci s needle -> Some (path, s)
      | Xmlmodel.Xml.Text _ | Xmlmodel.Xml.Element _ -> None)
    (nodes doc)

let text_at doc path =
  Option.map Xmlmodel.Xml.text_content (node_at doc path)

let word_count doc =
  List.length (Util.Tokenize.words (Xmlmodel.Xml.text_content doc.body))
