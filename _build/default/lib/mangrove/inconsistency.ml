type conflict = {
  subject : string;
  field : string;
  values : (Relalg.Value.t * Storage.Provenance.t) list;
}

let distinct_count values =
  List.fold_left
    (fun acc (v, _) ->
      if List.exists (Relalg.Value.equal v) acc then acc else v :: acc)
    [] values
  |> List.length

let find repo ~functional =
  List.concat_map
    (fun (tag, field) ->
      Repository.entities repo ~tag
      |> List.filter_map (fun subject ->
             let values = Repository.field_values repo ~subject ~field in
             if distinct_count values >= 2 then Some { subject; field; values }
             else None))
    functional

let notifications conflicts =
  List.concat_map
    (fun c ->
      let sources =
        List.map (fun (_, p) -> p.Storage.Provenance.source_url) c.values
        |> List.sort_uniq String.compare
      in
      let rendered =
        String.concat " vs "
          (List.map (fun (v, _) -> Relalg.Value.to_string v) c.values)
      in
      List.map
        (fun url ->
          ( url,
            Printf.sprintf "conflicting %s for %s: %s" c.field c.subject rendered ))
        sources)
    conflicts
