(** Deferred integrity constraints (Section 2.3). MANGROVE accepts
    partial, redundant or conflicting data; each {e application} chooses
    how to clean it. A policy resolves the multiple published values of
    one (subject, field) pair. *)

type policy =
  | Keep_all  (** distinct values, publication order *)
  | First  (** earliest published value *)
  | Freshest  (** latest published value *)
  | Majority  (** most frequently asserted value (ties: earliest) *)
  | Prefer_scope of string * policy
      (** restrict to sources whose URL starts with the prefix (e.g. the
          faculty member's own web space); fall back to the inner policy
          on the unrestricted set when no source is in scope *)

val resolve :
  policy ->
  (Relalg.Value.t * Storage.Provenance.t) list ->
  Relalg.Value.t list
(** The cleaned value(s); singleton for every policy but [Keep_all]. *)

val resolve_one :
  policy -> (Relalg.Value.t * Storage.Provenance.t) list -> Relalg.Value.t option

val pp_policy : Format.formatter -> policy -> unit
