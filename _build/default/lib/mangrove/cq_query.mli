(** Conjunctive queries over the annotation repository. The repository
    speaks basic graph patterns (its RDF face); this module gives it the
    S-WORLD face: instance tags become virtual relations whose columns
    are their schema fields, so the same query language used across the
    PDMS runs directly on published annotations.

    [person(N, P)] under a binding [person -> [name; phone]] compiles to
    the patterns [(S, mangrove:type, "person"), (S, name, N),
    (S, phone, P)] with a fresh subject variable per atom. Entities
    missing one of the requested fields do not match (join semantics) —
    deferred integrity means partial entities are common, so ask only
    for the fields you need. *)

val patterns :
  tags:(string * string list) list ->
  Cq.Query.t ->
  (Storage.Triple_store.pattern list, string) result
(** Compile the query body; fails on unknown tags or arity mismatches. *)

val run :
  tags:(string * string list) list ->
  Repository.t ->
  Cq.Query.t ->
  (Relalg.Relation.t, string) result
(** Compile and evaluate; the result relation carries the head's
    variables as attributes. Unsafe queries fail. *)

val run_exn :
  tags:(string * string list) list ->
  Repository.t ->
  Cq.Query.t ->
  Relalg.Relation.t

val department_tags : (string * string list) list
(** Field bindings for {!Lightweight_schema.department}'s instance tags,
    fields in schema declaration order. *)
