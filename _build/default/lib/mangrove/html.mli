(** A simplified HTML document model: a URL, a title, and a body tree
    (reusing the XML node type). Annotations address nodes by their
    child-index path from the body root, which survives the in-place
    edits MANGROVE encourages. *)

type t = { url : string; title : string; body : Xmlmodel.Xml.t }

val make : url:string -> title:string -> Xmlmodel.Xml.t -> t

val node_at : t -> int list -> Xmlmodel.Xml.t option
(** [node_at doc path] follows child indexes from the body root; [[]] is
    the body itself. *)

val nodes : t -> (int list * Xmlmodel.Xml.t) list
(** All nodes with their paths, document order. *)

val find_nodes : t -> (Xmlmodel.Xml.t -> bool) -> (int list * Xmlmodel.Xml.t) list

val find_text : t -> string -> (int list * string) list
(** Nodes whose text content contains the given substring (case
    insensitive); the "highlight a portion of the page" gesture. *)

val text_at : t -> int list -> string option
val word_count : t -> int
