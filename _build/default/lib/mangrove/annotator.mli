(** The annotation tool (Section 2.1): "displays a rendered version of
    the HTML document alongside a tree view of a schema ... users
    highlight portions of the HTML document, then annotate by choosing a
    corresponding tag name from the schema". This module is that tool's
    programmatic core: it validates tags against the schema and nesting
    rules, and accumulates annotations alongside the (unmodified)
    document. *)

type t

val start : schema:Lightweight_schema.t -> Html.t -> t
val document : t -> Html.t
val schema : t -> Lightweight_schema.t
val annotations : t -> Annotation.t list

val annotate : t -> node:int list -> tag:string -> (unit, string) result
(** Annotate the node at [node] with [tag]. Fails when the node does not
    exist, the tag is not in the schema, or the nesting rule is violated
    (a field tag must lie inside an annotation of its parent tag; an
    instance tag must not lie inside another instance). The annotated
    value is the node's text content. *)

val annotate_exn : t -> node:int list -> tag:string -> unit

val annotate_text : t -> string -> tag:string -> (unit, string) result
(** Convenience: annotate the first text node containing the given
    substring — the "highlight this phrase" gesture. *)

val remove : t -> node:int list -> tag:string -> bool

val grouped : t -> (Annotation.t * Annotation.t list) list
(** Instances with their fields (see {!Annotation.group}). *)

val suggest_tags : t -> node:int list -> string list
(** Rank the schema's tags for a node by lexical affinity between the
    node's text and the tag name (stemming + synonyms) — the hook the
    corpus tools plug into. *)
