let value_str = function
  | Some v -> Relalg.Value.to_string v
  | None -> ""

let field repo subject field =
  value_str (Repository.field_value repo ~subject ~field)

type course_row = {
  code : string;
  course_title : string;
  instructor : string;
  day : string;
  time : string;
  room : string;
}

let calendar repo =
  Repository.entities repo ~tag:"course"
  |> List.map (fun subject ->
         {
           code = field repo subject "code";
           course_title = field repo subject "title";
           instructor = field repo subject "instructor";
           day = field repo subject "day";
           time = field repo subject "time";
           room = field repo subject "room";
         })
  |> List.sort (fun a b ->
         compare (a.day, a.time, a.code) (b.day, b.time, b.code))

type person_row = { person_name : string; email : string; office : string }

let who_is_who repo =
  Repository.entities repo ~tag:"person"
  |> List.map (fun subject ->
         {
           person_name = field repo subject "name";
           email = field repo subject "email";
           office = field repo subject "office";
         })
  |> List.sort (fun a b -> compare a.person_name b.person_name)

let phone_directory ~policy repo =
  Repository.entities repo ~tag:"person"
  |> List.filter_map (fun subject ->
         let name = field repo subject "name" in
         let phones = Repository.field_values repo ~subject ~field:"phone" in
         match Cleaning.resolve_one policy phones with
         | Some phone -> Some (name, Relalg.Value.to_string phone)
         | None -> None)
  |> List.sort compare

type publication_row = {
  author : string;
  paper_title : string;
  forum : string;
  year : string;
}

let paper_database repo =
  Repository.entities repo ~tag:"publication"
  |> List.map (fun subject ->
         {
           author = field repo subject "author";
           paper_title = field repo subject "paper_title";
           forum = field repo subject "forum";
           year = field repo subject "year";
         })
  |> List.sort (fun a b -> compare (a.year, a.author) (b.year, b.author))

(* Annotation-aware search: documents are entities; their text is the
   concatenation of all field values. *)
let search ?tag repo keywords =
  let store = Repository.store repo in
  let subjects =
    match tag with
    | Some t -> Repository.entities repo ~tag:t
    | None ->
        Storage.Triple_store.triples store
        |> List.map (fun tr -> tr.Storage.Triple_store.subj)
        |> List.sort_uniq String.compare
  in
  let doc_of subject =
    Storage.Triple_store.select ~subj:subject store
    |> List.concat_map (fun tr ->
           Util.Tokenize.words
             (Relalg.Value.to_string tr.Storage.Triple_store.obj))
    |> List.map Util.Stemmer.stem
  in
  let docs = List.map doc_of subjects in
  let corpus = Util.Tfidf.build docs in
  let query_toks = List.map Util.Stemmer.stem (Util.Tokenize.words keywords) in
  List.map2
    (fun subject doc -> (Util.Tfidf.similarity corpus query_toks doc, subject))
    subjects docs
  |> List.filter (fun (score, _) -> score > 0.0)
  |> List.sort (fun (s1, a) (s2, b) ->
         match Float.compare s2 s1 with 0 -> String.compare a b | c -> c)

type 'a live = {
  mutable current : 'a;
  mutable refreshes : int;
}

let live ~compute repo =
  let view = { current = compute repo; refreshes = 0 } in
  Repository.on_publish repo (fun () ->
      view.current <- compute repo;
      view.refreshes <- view.refreshes + 1);
  view

let value v = v.current
let refresh_count v = v.refreshes
