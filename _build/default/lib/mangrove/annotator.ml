type t = {
  doc : Html.t;
  schema : Lightweight_schema.t;
  mutable annotations : Annotation.t list;
}

let start ~schema doc = { doc; schema; annotations = [] }
let document t = t.doc
let schema t = t.schema
let annotations t = List.rev t.annotations

let is_instance_tag t tag = Lightweight_schema.parent_of t.schema tag = None

let is_instance t (a : Annotation.t) = is_instance_tag t a.Annotation.tag

let enclosing_instance t node =
  let probe =
    Annotation.make ~doc_url:t.doc.Html.url ~node ~tag:"~probe" ~value:""
  in
  List.fold_left
    (fun best (a : Annotation.t) ->
      if is_instance t a && Annotation.is_within probe a then
        match best with
        | None -> Some a
        | Some (b : Annotation.t) ->
            if List.length a.Annotation.node > List.length b.Annotation.node
            then Some a
            else best
      else best)
    None t.annotations

let annotate t ~node ~tag =
  match Html.node_at t.doc node with
  | None -> Error "no such node"
  | Some xml_node ->
      if not (Lightweight_schema.mem t.schema tag) then
        Error (Printf.sprintf "tag %s not in schema %s" tag
                 (Lightweight_schema.name t.schema))
      else begin
        let parent = Lightweight_schema.parent_of t.schema tag in
        let enclosing = enclosing_instance t node in
        let ok =
          match (parent, enclosing) with
          | None, None -> Ok ()
          | None, Some (e : Annotation.t) ->
              Error
                (Printf.sprintf "instance tag %s nested inside %s" tag
                   e.Annotation.tag)
          | Some p, Some (e : Annotation.t) ->
              if String.equal p e.Annotation.tag then Ok ()
              else
                Error
                  (Printf.sprintf "field %s belongs under %s, found under %s"
                     tag p e.Annotation.tag)
          | Some p, None ->
              Error (Printf.sprintf "field %s must lie inside a %s annotation" tag p)
        in
        match ok with
        | Error _ as e -> e
        | Ok () ->
            let value = String.trim (Xmlmodel.Xml.text_content xml_node) in
            t.annotations <-
              Annotation.make ~doc_url:t.doc.Html.url ~node ~tag ~value
              :: t.annotations;
            Ok ()
      end

let annotate_exn t ~node ~tag =
  match annotate t ~node ~tag with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Annotator.annotate: " ^ msg)

let annotate_text t needle ~tag =
  match Html.find_text t.doc needle with
  | [] -> Error (Printf.sprintf "no text matching %S" needle)
  | (node, _) :: _ -> annotate t ~node ~tag

let remove t ~node ~tag =
  let before = List.length t.annotations in
  t.annotations <-
    List.filter
      (fun (a : Annotation.t) ->
        not (a.Annotation.node = node && String.equal a.Annotation.tag tag))
      t.annotations;
  List.length t.annotations < before

let grouped t =
  Annotation.group ~is_instance:(is_instance t) (annotations t)

let suggest_tags t ~node =
  let text =
    match Html.text_at t.doc node with Some s -> s | None -> ""
  in
  let toks =
    List.map Util.Stemmer.stem (Util.Tokenize.words text)
    |> List.map (Util.Synonyms.canonical Util.Synonyms.university_domain)
  in
  let score tag =
    let tag_toks =
      List.map Util.Stemmer.stem (Util.Tokenize.split_identifier tag)
      |> List.map (Util.Synonyms.canonical Util.Synonyms.university_domain)
    in
    Util.Strdist.jaccard toks tag_toks
  in
  Lightweight_schema.tags t.schema
  |> List.map (fun tag -> (tag, score tag))
  |> List.sort (fun (t1, s1) (t2, s2) ->
         match Float.compare s2 s1 with 0 -> String.compare t1 t2 | c -> c)
  |> List.map fst
