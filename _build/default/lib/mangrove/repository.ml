type t = {
  store : Storage.Triple_store.t;
  mutable clock : int;
  mutable listeners : (unit -> unit) list;
}

let create () = { store = Storage.Triple_store.create (); clock = 0; listeners = [] }

let store t = t.store

let type_pred = "mangrove:type"
let label_pred = "mangrove:label"

let on_publish t f = t.listeners <- f :: t.listeners
let clock t = t.clock

let publish ?author t annotator =
  let doc = Annotator.document annotator in
  let url = doc.Html.url in
  ignore (Storage.Triple_store.remove_source t.store url);
  t.clock <- t.clock + 1;
  let prov = Storage.Provenance.make ?author ~source_url:url ~timestamp:t.clock () in
  let count = ref 0 in
  let add ~subj ~pred ~obj =
    Storage.Triple_store.add t.store ~subj ~pred ~obj ~prov;
    incr count
  in
  List.iteri
    (fun idx ((inst : Annotation.t), fields) ->
      let subj = Printf.sprintf "%s#%s%d" url inst.Annotation.tag idx in
      add ~subj ~pred:type_pred ~obj:(Relalg.Value.Str inst.Annotation.tag);
      if not (String.equal inst.Annotation.value "") then
        add ~subj ~pred:label_pred ~obj:(Relalg.Value.Str inst.Annotation.value);
      List.iter
        (fun (f : Annotation.t) ->
          add ~subj ~pred:f.Annotation.tag
            ~obj:(Relalg.Value.of_string f.Annotation.value))
        fields)
    (Annotator.grouped annotator);
  List.iter (fun f -> f ()) t.listeners;
  !count

let retract t url =
  let n = Storage.Triple_store.remove_source t.store url in
  if n > 0 then List.iter (fun f -> f ()) t.listeners;
  n

let entities t ~tag =
  Storage.Triple_store.select ~pred:type_pred ~obj:(Relalg.Value.Str tag) t.store
  |> List.map (fun tr -> tr.Storage.Triple_store.subj)
  |> List.sort_uniq String.compare

let field_values t ~subject ~field =
  Storage.Triple_store.select ~subj:subject ~pred:field t.store
  |> List.map (fun tr -> (tr.Storage.Triple_store.obj, tr.Storage.Triple_store.prov))

let field_value t ~subject ~field =
  match field_values t ~subject ~field with
  | (v, _) :: _ -> Some v
  | [] -> None

let query t patterns = Storage.Triple_store.query t.store patterns
