(** Lightweight MANGROVE schemas: "a set of standardized tag names (and
    their allowed nesting structure)" — no integrity constraints
    (Section 2.1). A schema is a forest of tags; top-level tags denote
    entity instances (course, person, talk), nested tags denote their
    fields. *)

type t

val make : name:string -> (string * string option) list -> t
(** [(tag, parent)] pairs; [None] marks a top-level (instance) tag.
    Raises [Invalid_argument] on duplicates, unknown parents or cycles. *)

val name : t -> string
val tags : t -> string list
val instance_tags : t -> string list
val fields_of : t -> string -> string list
val parent_of : t -> string -> string option
val mem : t -> string -> bool

val allowed_under : t -> child:string -> parent:string option -> bool
(** May [child] be annotated inside an annotation tagged [parent]
    ([None] = at top level)? *)

val tag_path : t -> string -> string list
(** Ancestry chain from the top-level tag down to the tag itself, e.g.
    [tag_path s "title" = ["course"; "title"]]. *)

val department : t
(** The built-in department schema the paper's examples revolve around:
    people (phone, email, office), courses (code, title, instructor,
    room, time, day), talks and publications. *)
