(** Instant-gratification applications (Section 2.2): the department
    course calendar, the "Who's Who", the phone directory, the paper
    database, and an annotation-aware search engine. Each application
    reads the repository; {!live} wraps one for automatic refresh on
    every publish, which is what delivers the instant feedback loop. *)

type course_row = {
  code : string;
  course_title : string;
  instructor : string;
  day : string;
  time : string;
  room : string;
}

val calendar : Repository.t -> course_row list
(** Sorted by (day, time, code); missing fields are empty strings. *)

type person_row = { person_name : string; email : string; office : string }

val who_is_who : Repository.t -> person_row list

val phone_directory :
  policy:Cleaning.policy -> Repository.t -> (string * string) list
(** (name, phone) pairs, one per person entity, conflicts resolved by
    the policy; people without any phone are omitted. *)

type publication_row = {
  author : string;
  paper_title : string;
  forum : string;
  year : string;
}

val paper_database : Repository.t -> publication_row list

val search :
  ?tag:string -> Repository.t -> string -> (float * string) list
(** TF/IDF-ranked subjects matching the keyword query, optionally
    restricted to entities of one instance tag. Scores are strictly
    positive. *)

(** {2 Live views} *)

type 'a live

val live : compute:(Repository.t -> 'a) -> Repository.t -> 'a live
(** Materialise [compute] now and after every publish. *)

val value : 'a live -> 'a
val refresh_count : 'a live -> int
(** How many times the view recomputed (the "instant" in instant
    gratification: it equals the number of publishes since creation). *)
