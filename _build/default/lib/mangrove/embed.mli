(** In-place annotation embedding (Section 2.1): "the annotations given
    by the user are embedded in the HTML files but invisible to the
    browser. This method both ensures backward compatibility with
    existing web pages and eliminates inconsistency problems arising
    from having multiple copies of the same data."

    We embed by adding a reserved attribute to annotated elements
    ([mangrove:tag="course"]) — browsers ignore unknown attributes, the
    page's rendered content is untouched, and the data lives in exactly
    one place. Text-node annotations attach to the nearest enclosing
    element with a position marker. *)

val embed : Annotator.t -> Xmlmodel.Xml.t
(** The document body with annotations written into its elements.
    Raises [Invalid_argument] if an annotation addresses a text node
    whose parent cannot carry it (never happens for annotator-created
    annotations). *)

val extract :
  schema:Lightweight_schema.t -> url:string -> Xmlmodel.Xml.t -> Annotator.t
(** Rebuild an annotator (document + annotations) from an embedded
    page: the inverse of {!embed}. The stripped document (reserved
    attributes removed) becomes the annotator's page, so
    [embed (extract ~schema ~url (embed a))] is stable. *)

val tag_attribute : string
(** The reserved attribute name. *)
