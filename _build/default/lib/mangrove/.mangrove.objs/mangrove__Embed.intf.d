lib/mangrove/embed.mli: Annotator Lightweight_schema Xmlmodel
