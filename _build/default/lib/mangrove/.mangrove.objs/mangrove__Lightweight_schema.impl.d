lib/mangrove/lightweight_schema.ml: List Option String
