lib/mangrove/dynamic_page.mli: Apps Cleaning Html Repository
