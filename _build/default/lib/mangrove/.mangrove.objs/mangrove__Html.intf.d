lib/mangrove/html.mli: Xmlmodel
