lib/mangrove/html.ml: List Option String Util Xmlmodel
