lib/mangrove/annotation.mli: Format
