lib/mangrove/cq_query.ml: Array Cq Lightweight_schema List Option Printf Relalg Repository Result Storage
