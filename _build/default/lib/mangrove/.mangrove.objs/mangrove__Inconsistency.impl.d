lib/mangrove/inconsistency.ml: List Printf Relalg Repository Storage String
