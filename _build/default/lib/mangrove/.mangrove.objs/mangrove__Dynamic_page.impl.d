lib/mangrove/dynamic_page.ml: Apps Html List Option Xmlmodel
