lib/mangrove/inconsistency.mli: Relalg Repository Storage
