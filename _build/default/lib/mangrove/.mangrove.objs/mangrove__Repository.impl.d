lib/mangrove/repository.ml: Annotation Annotator Html List Printf Relalg Storage String
