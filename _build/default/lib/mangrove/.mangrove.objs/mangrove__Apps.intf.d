lib/mangrove/apps.mli: Cleaning Repository
