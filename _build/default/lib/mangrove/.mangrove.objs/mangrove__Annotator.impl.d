lib/mangrove/annotator.ml: Annotation Float Html Lightweight_schema List Printf String Util Xmlmodel
