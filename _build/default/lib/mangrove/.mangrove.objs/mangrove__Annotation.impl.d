lib/mangrove/annotation.ml: Format List String
