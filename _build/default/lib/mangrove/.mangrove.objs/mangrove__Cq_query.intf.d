lib/mangrove/cq_query.mli: Cq Relalg Repository Storage
