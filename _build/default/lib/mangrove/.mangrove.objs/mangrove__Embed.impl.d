lib/mangrove/embed.ml: Annotation Annotator Hashtbl Html Lightweight_schema List Option String Xmlmodel
