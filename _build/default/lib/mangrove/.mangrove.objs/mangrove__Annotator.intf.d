lib/mangrove/annotator.mli: Annotation Html Lightweight_schema
