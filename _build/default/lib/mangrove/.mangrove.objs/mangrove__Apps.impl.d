lib/mangrove/apps.ml: Cleaning Float List Relalg Repository Storage String Util
