lib/mangrove/cleaning.mli: Format Relalg Storage
