lib/mangrove/cleaning.ml: Format Hashtbl List Option Relalg Storage
