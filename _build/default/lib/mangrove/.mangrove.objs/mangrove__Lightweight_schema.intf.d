lib/mangrove/lightweight_schema.mli:
