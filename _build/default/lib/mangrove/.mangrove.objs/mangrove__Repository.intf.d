lib/mangrove/repository.mli: Annotator Relalg Storage
