(** The proactive inconsistency finder of Section 2.3: "special
    applications whose goal is to proactively find inconsistencies in the
    database and notify the relevant authors". *)

type conflict = {
  subject : string;
  field : string;
  values : (Relalg.Value.t * Storage.Provenance.t) list;
      (** two or more distinct values with their sources *)
}

val find :
  Repository.t -> functional:(string * string) list -> conflict list
(** [functional] lists (instance tag, field) pairs expected to be
    single-valued — e.g. [("person", "phone")]. A conflict is reported
    when a subject carries two or more {e distinct} values. *)

val notifications : conflict list -> (string * string) list
(** One (source URL, message) pair per source involved in each
    conflict — the "notify the relevant authors" step. *)
