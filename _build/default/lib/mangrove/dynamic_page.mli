(** Dynamic page generation in the spirit of Strudel (Section 2.3:
    "MANGROVE also enables some web pages that are currently compiled by
    hand, such as department-wide course summaries, to be dynamically
    generated"). Pages are built from the repository and stay fresh by
    construction. *)

val course_summary : url:string -> Repository.t -> Html.t
(** The department-wide course summary: one table row per course,
    sorted like the calendar app. *)

val people_directory :
  url:string -> policy:Cleaning.policy -> Repository.t -> Html.t
(** Who's-who plus cleaned phone numbers. *)

val live_course_summary :
  url:string -> Repository.t -> Html.t Apps.live
(** The summary as a live view: regenerated on every publish. *)
