(** An annotation marks a node of an HTML document with a schema tag,
    in place — the data is not copied out of the page. Instance
    annotations (top-level tags like [course]) delimit entities; field
    annotations nested inside them (by node-path containment) supply the
    entity's attributes. *)

type t = {
  doc_url : string;
  node : int list;  (** node path within the document body *)
  tag : string;
  value : string;  (** the highlighted text the annotation covers *)
}

val make : doc_url:string -> node:int list -> tag:string -> value:string -> t

val is_within : t -> t -> bool
(** [is_within field inst]: is [field]'s node strictly inside [inst]'s
    subtree (same document)? *)

val group : is_instance:(t -> bool) -> t list -> (t * t list) list
(** Group annotations into (instance, fields) pairs: each field
    annotation attaches to its nearest (deepest) enclosing instance
    annotation. Field annotations with no enclosing instance are
    dropped — the annotator UI prevents creating them. *)

val pp : Format.formatter -> t -> unit
