type t = { name : string; parents : (string * string option) list }

let make ~name pairs =
  let tags = List.map fst pairs in
  if List.length (List.sort_uniq String.compare tags) <> List.length tags then
    invalid_arg "Lightweight_schema.make: duplicate tag";
  List.iter
    (fun (tag, parent) ->
      match parent with
      | None -> ()
      | Some p ->
          if not (List.mem p tags) then
            invalid_arg ("Lightweight_schema.make: unknown parent " ^ p);
          if String.equal p tag then
            invalid_arg ("Lightweight_schema.make: self-parent " ^ tag))
    pairs;
  (* Cycle check: walking up from any tag must terminate. *)
  let rec depth seen tag =
    if List.mem tag seen then
      invalid_arg "Lightweight_schema.make: cyclic nesting"
    else
      match List.assoc tag pairs with
      | None -> ()
      | Some p -> depth (tag :: seen) p
  in
  List.iter (fun (tag, _) -> depth [] tag) pairs;
  { name; parents = pairs }

let name t = t.name
let tags t = List.map fst t.parents

let instance_tags t =
  List.filter_map
    (fun (tag, parent) -> match parent with None -> Some tag | Some _ -> None)
    t.parents

let fields_of t tag =
  List.filter_map
    (fun (child, parent) ->
      match parent with
      | Some p when String.equal p tag -> Some child
      | Some _ | None -> None)
    t.parents

let parent_of t tag = Option.join (List.assoc_opt tag t.parents)
let mem t tag = List.mem_assoc tag t.parents

let allowed_under t ~child ~parent =
  match List.assoc_opt child t.parents with
  | None -> false
  | Some declared -> (
      match (declared, parent) with
      | None, None -> true
      | Some p, Some q -> String.equal p q
      | None, Some _ | Some _, None -> false)

let tag_path t tag =
  let rec go acc tag =
    match parent_of t tag with None -> tag :: acc | Some p -> go (tag :: acc) p
  in
  go [] tag

let department =
  make ~name:"department"
    [ ("person", None); ("name", Some "person"); ("phone", Some "person");
      ("email", Some "person"); ("office", Some "person");
      ("homepage", Some "person");
      ("course", None); ("code", Some "course"); ("title", Some "course");
      ("instructor", Some "course"); ("room", Some "course");
      ("time", Some "course"); ("day", Some "course");
      ("quarter", Some "course"); ("enrollment", Some "course");
      ("textbook", Some "course"); ("ta", Some "course");
      ("talk", None); ("speaker", Some "talk"); ("topic", Some "talk");
      ("venue", Some "talk"); ("when", Some "talk");
      ("publication", None); ("author", Some "publication");
      ("paper_title", Some "publication"); ("forum", Some "publication");
      ("year", Some "publication") ]
