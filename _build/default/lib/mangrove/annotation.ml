type t = { doc_url : string; node : int list; tag : string; value : string }

let make ~doc_url ~node ~tag ~value = { doc_url; node; tag; value }

let rec is_prefix prefix path =
  match (prefix, path) with
  | [], _ :: _ -> true
  | [], [] -> false (* strict containment *)
  | p :: ps, x :: xs -> p = x && is_prefix ps xs
  | _ :: _, [] -> false

let is_within field inst =
  String.equal field.doc_url inst.doc_url && is_prefix inst.node field.node

let group ~is_instance annotations =
  let instances = List.filter is_instance annotations in
  let fields = List.filter (fun a -> not (is_instance a)) annotations in
  let enclosing field =
    List.fold_left
      (fun best inst ->
        if is_within field inst then
          match best with
          | None -> Some inst
          | Some b ->
              (* Deepest enclosing instance wins. *)
              if List.length inst.node > List.length b.node then Some inst
              else best
        else best)
      None instances
  in
  List.map
    (fun inst ->
      let mine =
        List.filter
          (fun f ->
            match enclosing f with
            | Some e -> e == inst
            | None -> false)
          fields
      in
      (inst, mine))
    instances

let pp fmt t =
  Format.fprintf fmt "%s@%s[%s]=%S" t.tag t.doc_url
    (String.concat "." (List.map string_of_int t.node))
    t.value
