module Xml = Xmlmodel.Xml

let tag_attribute = "mangrove:tag"
let text_prefix = "mangrove:text-"

let is_reserved (key, _) =
  String.equal key tag_attribute
  || (String.length key > String.length text_prefix
     && String.sub key 0 (String.length text_prefix) = text_prefix)

let embed annotator =
  let doc = Annotator.document annotator in
  let by_path : (int list, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Annotation.t) ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_path a.Annotation.node)
      in
      Hashtbl.replace by_path a.Annotation.node (existing @ [ a.Annotation.tag ]))
    (Annotator.annotations annotator);
  let rec go rev_path node =
    match node with
    | Xml.Text _ -> node
    | Xml.Element (tag, attrs, children) ->
        let attrs = List.filter (fun a -> not (is_reserved a)) attrs in
        let own =
          match Hashtbl.find_opt by_path (List.rev rev_path) with
          | Some tags -> [ (tag_attribute, String.concat " " tags) ]
          | None -> []
        in
        (* Annotations addressing text children attach here. *)
        let text_attrs =
          List.mapi
            (fun i child ->
              match child with
              | Xml.Text _ -> (
                  match Hashtbl.find_opt by_path (List.rev (i :: rev_path)) with
                  | Some tags ->
                      [ (text_prefix ^ string_of_int i, String.concat " " tags) ]
                  | None -> [])
              | Xml.Element _ -> [])
            children
          |> List.concat
        in
        let children = List.mapi (fun i c -> go (i :: rev_path) c) children in
        Xml.Element (tag, attrs @ own @ text_attrs, children)
  in
  go [] doc.Html.body

let split_tags s = String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let extract ~schema ~url body =
  let annotations = ref [] in
  let record path tag = annotations := (path, tag) :: !annotations in
  let rec strip rev_path node =
    match node with
    | Xml.Text _ -> node
    | Xml.Element (tag, attrs, children) ->
        List.iter
          (fun (key, value) ->
            if String.equal key tag_attribute then
              List.iter (record (List.rev rev_path)) (split_tags value)
            else if
              String.length key > String.length text_prefix
              && String.sub key 0 (String.length text_prefix) = text_prefix
            then begin
              let idx =
                int_of_string
                  (String.sub key (String.length text_prefix)
                     (String.length key - String.length text_prefix))
              in
              List.iter (record (List.rev (idx :: rev_path))) (split_tags value)
            end)
          attrs;
        let attrs = List.filter (fun a -> not (is_reserved a)) attrs in
        Xml.Element (tag, attrs, List.mapi (fun i c -> strip (i :: rev_path) c) children)
  in
  let stripped = strip [] body in
  let title =
    match Xml.descendants_named stripped "h1" with
    | h :: _ -> Xml.text_content h
    | [] -> url
  in
  let doc = Html.make ~url ~title stripped in
  let annotator = Annotator.start ~schema doc in
  (* Instances must exist before their fields: apply top-level tags
     first, then fields by increasing path depth. *)
  let ordered =
    List.stable_sort
      (fun (p1, t1) (p2, t2) ->
        let rank tag =
          match Lightweight_schema.parent_of schema tag with
          | None -> 0
          | Some _ -> 1
        in
        match compare (rank t1) (rank t2) with
        | 0 -> compare (List.length p1) (List.length p2)
        | c -> c)
      (List.rev !annotations)
  in
  List.iter (fun (node, tag) -> Annotator.annotate_exn annotator ~node ~tag) ordered;
  annotator
