(** The annotation repository. Publishing extracts an annotator's
    grouped annotations into the triple store "the moment a user
    publishes new or revised content" (Section 2.2); re-publishing a URL
    first retracts that URL's previous triples. Registered listeners
    (the instant-gratification applications) are notified synchronously. *)

type t

val create : unit -> t
val store : t -> Storage.Triple_store.t

val publish : ?author:string -> t -> Annotator.t -> int
(** Returns the number of triples now contributed by the document. *)

val retract : t -> string -> int
(** Retract all triples published from a URL. *)

val on_publish : t -> (unit -> unit) -> unit
val clock : t -> int
(** Logical publish counter (provenance timestamps come from it). *)

(** {2 Query conveniences} *)

val entities : t -> tag:string -> string list
(** Subjects of the given instance tag, sorted. *)

val field_values :
  t -> subject:string -> field:string ->
  (Relalg.Value.t * Storage.Provenance.t) list

val field_value : t -> subject:string -> field:string -> Relalg.Value.t option
(** First value if any (no cleaning applied — see {!Cleaning}). *)

val query :
  t -> Storage.Triple_store.pattern list -> Storage.Triple_store.binding list

val type_pred : string
(** The reserved predicate naming an entity's instance tag. *)

val label_pred : string
(** The reserved predicate carrying the instance annotation's own text. *)
