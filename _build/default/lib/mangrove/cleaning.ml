type policy =
  | Keep_all
  | First
  | Freshest
  | Majority
  | Prefer_scope of string * policy

let by_time (_, (p : Storage.Provenance.t)) (_, (q : Storage.Provenance.t)) =
  compare p.Storage.Provenance.timestamp q.Storage.Provenance.timestamp

let distinct_values pairs =
  List.fold_left
    (fun acc (v, _) ->
      if List.exists (Relalg.Value.equal v) acc then acc else v :: acc)
    [] pairs
  |> List.rev

let rec resolve policy pairs =
  match pairs with
  | [] -> []
  | _ -> (
      match policy with
      | Keep_all -> distinct_values (List.sort by_time pairs)
      | First -> (
          match List.sort by_time pairs with
          | (v, _) :: _ -> [ v ]
          | [] -> [])
      | Freshest -> (
          match List.sort (fun a b -> by_time b a) pairs with
          | (v, _) :: _ -> [ v ]
          | [] -> [])
      | Majority ->
          let counts = Hashtbl.create 8 in
          List.iter
            (fun (v, (p : Storage.Provenance.t)) ->
              let key = Relalg.Value.to_string v in
              let n, first =
                Option.value ~default:(0, p.Storage.Provenance.timestamp)
                  (Hashtbl.find_opt counts key)
              in
              Hashtbl.replace counts key
                (n + 1, min first p.Storage.Provenance.timestamp))
            pairs;
          let best =
            List.fold_left
              (fun best (v, _) ->
                let key = Relalg.Value.to_string v in
                let n, first = Hashtbl.find counts key in
                match best with
                | None -> Some (v, n, first)
                | Some (_, bn, bfirst) ->
                    if n > bn || (n = bn && first < bfirst) then Some (v, n, first)
                    else best)
              None pairs
          in
          (match best with Some (v, _, _) -> [ v ] | None -> [])
      | Prefer_scope (prefix, fallback) -> (
          let in_scope =
            List.filter
              (fun (_, p) -> Storage.Provenance.in_scope p prefix)
              pairs
          in
          match in_scope with
          | [] -> resolve fallback pairs
          | scoped -> resolve Freshest scoped))

let resolve_one policy pairs =
  match resolve policy pairs with v :: _ -> Some v | [] -> None

let rec pp_policy fmt = function
  | Keep_all -> Format.pp_print_string fmt "keep-all"
  | First -> Format.pp_print_string fmt "first"
  | Freshest -> Format.pp_print_string fmt "freshest"
  | Majority -> Format.pp_print_string fmt "majority"
  | Prefer_scope (p, inner) ->
      Format.fprintf fmt "prefer-scope(%s, %a)" p pp_policy inner
