module Xml = Xmlmodel.Xml

let cell value = Xml.element "td" [ Xml.text value ]
let row cells = Xml.element "tr" (List.map cell cells)

let table header rows =
  Xml.element "table"
    (Xml.element "tr"
       (List.map (fun h -> Xml.element "th" [ Xml.text h ]) header)
    :: rows)

let course_summary ~url repo =
  let rows =
    List.map
      (fun (r : Apps.course_row) ->
        row
          [ r.Apps.code; r.Apps.course_title; r.Apps.instructor; r.Apps.day;
            r.Apps.time; r.Apps.room ])
      (Apps.calendar repo)
  in
  let body =
    Xml.element "html"
      [ Xml.element "h1" [ Xml.text "course summary" ];
        table [ "code"; "title"; "instructor"; "day"; "time"; "room" ] rows ]
  in
  Html.make ~url ~title:"course summary" body

let people_directory ~url ~policy repo =
  let phones = Apps.phone_directory ~policy repo in
  let rows =
    List.map
      (fun (p : Apps.person_row) ->
        let phone =
          Option.value ~default:""
            (List.assoc_opt p.Apps.person_name phones)
        in
        row [ p.Apps.person_name; p.Apps.email; p.Apps.office; phone ])
      (Apps.who_is_who repo)
  in
  let body =
    Xml.element "html"
      [ Xml.element "h1" [ Xml.text "people" ];
        table [ "name"; "email"; "office"; "phone" ] rows ]
  in
  Html.make ~url ~title:"people" body

let live_course_summary ~url repo =
  Apps.live ~compute:(course_summary ~url) repo
