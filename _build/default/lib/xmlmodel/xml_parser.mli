(** A small XML parser covering the subset {!Xml.to_string} emits:
    elements with attributes, text, self-closing tags, comments, an
    optional XML declaration, and the five predefined entities. No
    namespaces, CDATA, or DTD-internal subsets. *)

val parse : string -> (Xml.t, string) result
(** Parse one document (a single root element). *)

val parse_exn : string -> Xml.t

val roundtrip : Xml.t -> Xml.t
(** [parse_exn (Xml.to_string t)] with whitespace-only text dropped —
    used by tests to check the parser against the printer. *)
