type multiplicity = One | Optional | Many | Many1

type decl = Children of (string * multiplicity) list | Pcdata

type t = { root : string; decls : (string * decl) list }

let make ~root decls =
  let names = List.map fst decls in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Dtd.make: duplicate element declaration";
  if not (List.mem root names) then invalid_arg "Dtd.make: undeclared root";
  { root; decls }

let root t = t.root
let elements t = List.map fst t.decls
let decl_of t name = List.assoc_opt name t.decls

let leaf_elements t =
  List.filter_map
    (fun (name, d) -> match d with Pcdata -> Some name | Children _ -> None)
    t.decls

let multiplicity_ok m count =
  match m with
  | One -> count = 1
  | Optional -> count <= 1
  | Many -> true
  | Many1 -> count >= 1

let validate t xml =
  let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let rec check node =
    match node with
    | Xml.Text _ -> Ok ()
    | Xml.Element (name, _, children) -> (
        match decl_of t name with
        | None -> fail "undeclared element <%s>" name
        | Some Pcdata ->
            if List.for_all (function Xml.Text _ -> true | Xml.Element _ -> false) children
            then Ok ()
            else fail "<%s> must contain only text" name
        | Some (Children allowed) ->
            let child_elems =
              List.filter_map
                (function Xml.Element (n, _, _) -> Some n | Xml.Text _ -> None)
                children
            in
            let bad =
              List.find_opt (fun n -> not (List.mem_assoc n allowed)) child_elems
            in
            (match bad with
            | Some n -> fail "<%s> may not contain <%s>" name n
            | None ->
                let rec check_counts = function
                  | [] -> Ok ()
                  | (child, m) :: rest ->
                      let count =
                        List.length (List.filter (String.equal child) child_elems)
                      in
                      if multiplicity_ok m count then check_counts rest
                      else
                        fail "<%s> has %d <%s> children (multiplicity violated)"
                          name count child
                in
                (match check_counts allowed with
                | Error _ as e -> e
                | Ok () ->
                    List.fold_left
                      (fun acc c -> match acc with Error _ -> acc | Ok () -> check c)
                      (Ok ()) children)))
  in
  match xml with
  | Xml.Element (name, _, _) when String.equal name t.root -> check xml
  | Xml.Element (name, _, _) ->
      fail "root is <%s>, expected <%s>" name t.root
  | Xml.Text _ -> fail "root must be an element"

let pp fmt t =
  List.iter
    (fun (name, d) ->
      match d with
      | Pcdata -> Format.fprintf fmt "Element %s(#PCDATA)@\n" name
      | Children cs ->
          let star = function
            | One -> ""
            | Optional -> "?"
            | Many -> "*"
            | Many1 -> "+"
          in
          Format.fprintf fmt "Element %s(%s)@\n" name
            (String.concat ", " (List.map (fun (c, m) -> c ^ star m) cs)))
    t.decls
