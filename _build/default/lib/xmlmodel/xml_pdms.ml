type mapping = { source : string; target : string; template : Template.t }

type t = {
  mutable docs : (string * Xml.t) list;
  mutable mappings : mapping list;
}

let create () = { docs = []; mappings = [] }

let add_peer t ~name ?dtd doc =
  if List.mem_assoc name t.docs then
    invalid_arg ("Xml_pdms.add_peer: duplicate peer " ^ name);
  (match dtd with
  | Some dtd -> (
      match Dtd.validate dtd doc with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Xml_pdms.add_peer: " ^ name ^ ": " ^ msg))
  | None -> ());
  t.docs <- (name, doc) :: t.docs

let add_mapping t ~source ~target template =
  if not (List.mem_assoc source t.docs) then
    invalid_arg ("Xml_pdms.add_mapping: unknown source " ^ source);
  if not (List.mem_assoc target t.docs) then
    invalid_arg ("Xml_pdms.add_mapping: unknown target " ^ target);
  t.mappings <- { source; target; template } :: t.mappings

let peers t = List.sort String.compare (List.map fst t.docs)

let document t name =
  match List.assoc_opt name t.docs with
  | Some doc -> doc
  | None -> invalid_arg ("Xml_pdms.document: unknown peer " ^ name)

(* Evaluate a path directly on a document; the first step names the
   document root, so wrap. *)
let eval_on doc path =
  let wrapped = Xml.element "~root" [ doc ] in
  if path.Path.text then Path.select_text wrapped path
  else List.map Xml.text_content (Path.select wrapped path)

let query_local t ~at path = eval_on (document t at) path

(* Depth-first over inbound mapping chains: a mapping source->target
   means data can flow from [source] to queries at [target]. *)
let rec answers t ~at path visited =
  let local = eval_on (document t at) path in
  let inbound =
    List.filter (fun m -> String.equal m.target at) t.mappings
  in
  let remote =
    List.concat_map
      (fun m ->
        if List.mem m.source visited then []
        else
          (* Translate the path through this mapping into source-side
             locations, then answer those at the source peer
             (recursively, so chains compose). Binding paths are
             root-element-relative; query paths are root-inclusive, so
             re-anchor at the source document's root tag. *)
          let source_root =
            match Xml.name (document t m.source) with
            | Some tag -> tag
            | None -> invalid_arg "Xml_pdms: source document has no root element"
          in
          Translate.resolve m.template path
          |> List.concat_map (fun (r : Translate.resolution) ->
                 let anchored =
                   {
                     Path.steps = Path.Child source_root :: r.Translate.path.Path.steps;
                     text = r.Translate.path.Path.text;
                   }
                 in
                 answers t ~at:m.source anchored (at :: visited)))
      inbound
  in
  local @ remote

let query t ~at path =
  answers t ~at path [] |> List.sort_uniq String.compare

let reachable t start =
  let rec go visited frontier =
    match frontier with
    | [] -> visited
    | p :: rest ->
        if List.mem p visited then go visited rest
        else
          let sources =
            List.filter_map
              (fun m ->
                if String.equal m.target p then Some m.source else None)
              t.mappings
          in
          go (p :: visited) (sources @ rest)
  in
  List.sort String.compare (go [] [ start ])
