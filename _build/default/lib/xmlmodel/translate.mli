(** Query translation through a template mapping: a path query phrased
    against the {e target} schema is resolved to the source-document
    locations that populate it. This is the XML-level counterpart of the
    relational reformulation the PDMS performs. *)

type resolution = { doc : string; path : Path.t }
(** An absolute location: a path evaluated from the root of a named
    source document. *)

val resolve : Template.t -> Path.t -> resolution list
(** [resolve tpl target_path] follows [target_path] (child steps only;
    the first step names the template root) through the template,
    composing binding paths. An empty result means the target location
    is not populated from source data. Raises [Invalid_argument] on
    descendant steps (not supported by the mapping language). *)

val resolve_chain : Template.t list -> Path.t -> resolution list
(** Compose translations along a chain of mappings: the path is resolved
    through the {e last} template; each resulting source location (a
    path over that template's source document) is treated as a target
    path for the previous template, and so on. The templates are listed
    source-first (as the data flows), e.g.
    [resolve_chain [berkeley_to_mit; mit_to_x] path_over_x] yields
    Berkeley locations. *)

val equivalent_on :
  Template.t -> docs:(string * Xml.t) list -> Path.t -> bool
(** Check (for a given source instance) that evaluating [target_path]
    over the template output equals evaluating the resolved source paths
    directly — the correctness statement for [resolve], used in tests. *)
