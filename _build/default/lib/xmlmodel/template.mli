(** The Piazza mapping language of Figure 4: a template shaped like the
    target schema, annotated with brace-delimited bindings that describe
    how variables range over the source document.

    {[
      <catalog>
        <course> {$c = document("Berkeley.xml")/schedule/college/dept}
          <name> $c/name/text() </name>
          <subject> {$s = $c/course}
            <title> $s/title/text() </title>
            <enrollment> $s/size/text() </enrollment>
          </subject>
        </course>
      </catalog>
    ]} *)

type source = Document of string | Variable of string

type node =
  | Elem of elem
  | Text_from of string * Path.t  (** [$var/path/text()] *)
  | Literal of string

and elem = {
  tag : string;
  binding : (string * source * Path.t) option;
      (** [{$var = source/path}] — the element is replicated once per
          node the path selects. *)
  children : node list;
}

type t = { root : node }

val elem : ?binding:string * source * Path.t -> string -> node list -> node
val template : node -> t

val apply : t -> docs:(string * Xml.t) list -> Xml.t list
(** Instantiate against source documents. Raises [Invalid_argument] on a
    reference to an unbound variable or unknown document. *)

val apply_single : t -> docs:(string * Xml.t) list -> Xml.t
(** Like [apply] but requires exactly one root instance. *)

val target_dtd_elements : t -> string list
(** Tags the template can emit (for checking against a target DTD). *)
