(** Simplified DTDs, expressive enough for the Figure-3 peer schemas:
    each element declares its allowed child elements with multiplicities,
    or is a PCDATA leaf. Child order is not enforced (annotated HTML data
    is too dirty for that to be useful). *)

type multiplicity = One | Optional | Many | Many1

type decl =
  | Children of (string * multiplicity) list
  | Pcdata

type t

val make : root:string -> (string * decl) list -> t
(** Raises [Invalid_argument] on duplicate declarations or an undeclared
    root. *)

val root : t -> string
val elements : t -> string list
val decl_of : t -> string -> decl option

val leaf_elements : t -> string list
(** Elements declared [Pcdata]. *)

val validate : t -> Xml.t -> (unit, string) result
(** Check the tree against the DTD; the error describes the first
    violation found. *)

val pp : Format.formatter -> t -> unit
(** Renders in the paper's style: [Element course(title, size)]. *)
