type resolution = { doc : string; path : Path.t }

(* env maps template variables to absolute (doc, path) locations. *)
let extend_env env (var, src, path) =
  match src with
  | Template.Document d -> (var, { doc = d; path }) :: env
  | Template.Variable v -> (
      match List.assoc_opt v env with
      | None -> invalid_arg ("Translate.resolve: unbound variable $" ^ v)
      | Some r -> (var, { r with path = Path.append r.path path }) :: env)

let resolve tpl (target : Path.t) =
  List.iter
    (function
      | Path.Descendant _ ->
          invalid_arg "Translate.resolve: descendant steps not supported"
      | Path.Child _ -> ())
    target.Path.steps;
  let rec walk env node steps =
    match node with
    | Template.Literal _ -> []
    | Template.Text_from (var, path) -> (
        (* Only reachable when the remaining target path is text(). *)
        match steps with
        | [] when target.Path.text -> (
            match List.assoc_opt var env with
            | None -> []
            | Some r -> [ { r with path = Path.append r.path path } ])
        | _ -> [])
    | Template.Elem { tag; binding; children } -> (
        match steps with
        | Path.Child name :: rest when String.equal name tag ->
            let env =
              match binding with Some b -> extend_env env b | None -> env
            in
            if rest = [] then
              if target.Path.text then
                (* Collect the text sources among the children. *)
                List.concat_map (fun c -> walk env c []) children
              else
                (* The element itself: its data source is its binding. *)
                (match binding with
                | Some (var, _, _) -> (
                    match List.assoc_opt var env with Some r -> [ r ] | None -> [])
                | None -> [])
            else List.concat_map (fun c -> walk env c rest) children
        | Path.Child _ :: _ -> []
        | Path.Descendant _ :: _ -> []
        | [] -> [])
  in
  walk [] tpl.Template.root target.Path.steps

let root_tag (tpl : Template.t) =
  match tpl.Template.root with
  | Template.Elem e -> e.Template.tag
  | Template.Text_from _ | Template.Literal _ ->
      invalid_arg "Translate.resolve_chain: template root is not an element"

(* Resolved paths are relative to the source document's root element,
   while [resolve] consumes root-inclusive paths — so between hops each
   intermediate path is re-anchored at the upstream template's root
   tag (the upstream output *is* that intermediate document). *)
let resolve_chain templates target =
  let rec go rev_templates targets =
    match rev_templates with
    | [] -> targets
    | tpl :: rest -> (
        let resolved =
          List.concat_map (fun (r : resolution) -> resolve tpl r.path) targets
        in
        match rest with
        | [] -> resolved
        | upstream :: _ ->
            let anchor = root_tag upstream in
            go rest
              (List.map
                 (fun r ->
                   {
                     r with
                     path =
                       {
                         Path.steps = Path.Child anchor :: r.path.Path.steps;
                         text = r.path.Path.text;
                       };
                   })
                 resolved))
  in
  go (List.rev templates) [ { doc = "~target"; path = target } ]

let equivalent_on tpl ~docs target =
  let outputs = Template.apply tpl ~docs in
  (* Evaluating [target] over the template output: the first step names
     the output root itself, so wrap outputs under a synthetic node. *)
  let wrapped = Xml.element "~root" outputs in
  let via_target =
    if target.Path.text then Path.select_text wrapped target
    else List.map Xml.text_content (Path.select wrapped target)
  in
  let via_source =
    List.concat_map
      (fun r ->
        match List.assoc_opt r.doc docs with
        | None -> []
        | Some d ->
            if r.path.Path.text || target.Path.text then Path.select_text d r.path
            else List.map Xml.text_content (Path.select d r.path))
      (resolve tpl target)
  in
  List.sort compare via_target = List.sort compare via_source
