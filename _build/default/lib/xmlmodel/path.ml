type step = Child of string | Descendant of string

type t = { steps : step list; text : bool }

let of_string s =
  (* Split on '/', with "//" marking the next step as descendant. *)
  let parts = String.split_on_char '/' s in
  let rec go descendant acc = function
    | [] -> List.rev acc
    | "" :: rest -> go true acc rest
    | "text()" :: rest ->
        if rest <> [] then invalid_arg "Path.of_string: text() must be last";
        List.rev (`Text :: acc)
    | name :: rest ->
        let step = if descendant then Descendant name else Child name in
        go false (`Step step :: acc) rest
  in
  (* A leading "/" produces a leading "" which would flag the first step
     as descendant; treat a single leading slash as a plain child step. *)
  let parts = match parts with "" :: rest -> rest | parts -> parts in
  let items = go false [] parts in
  let steps =
    List.filter_map (function `Step st -> Some st | `Text -> None) items
  in
  let text = List.exists (function `Text -> true | `Step _ -> false) items in
  if steps = [] && not text then invalid_arg "Path.of_string: empty path";
  { steps; text }

let to_string t =
  let step_str = function Child n -> "/" ^ n | Descendant n -> "//" ^ n in
  let s = String.concat "" (List.map step_str t.steps) in
  let s =
    if String.length s > 1 && s.[0] = '/' && s.[1] <> '/' then
      String.sub s 1 (String.length s - 1)
    else s
  in
  if t.text then s ^ "/text()" else s

let select node t =
  let apply nodes = function
    | Child name -> List.concat_map (fun n -> Xml.children_named n name) nodes
    | Descendant name -> List.concat_map (fun n -> Xml.descendants_named n name) nodes
  in
  List.fold_left apply [ node ] t.steps

let select_text node t = List.map Xml.text_content (select node t)

let append a b = { steps = a.steps @ b.steps; text = b.text }
