type t =
  | Element of string * (string * string) list * t list
  | Text of string

let element ?(attrs = []) name children = Element (name, attrs, children)
let text s = Text s

let name = function Element (n, _, _) -> Some n | Text _ -> None

let attr t key =
  match t with
  | Element (_, attrs, _) -> List.assoc_opt key attrs
  | Text _ -> None

let children = function Element (_, _, cs) -> cs | Text _ -> []

let children_named t tag =
  List.filter
    (function Element (n, _, _) -> String.equal n tag | Text _ -> false)
    (children t)

let child_named t tag =
  match children_named t tag with [] -> None | c :: _ -> Some c

let rec text_content = function
  | Text s -> s
  | Element (_, _, cs) -> String.concat "" (List.map text_content cs)

let rec descendants t =
  match t with
  | Text _ -> []
  | Element (_, _, cs) -> t :: List.concat_map descendants cs

let descendants_named t tag =
  List.filter
    (function Element (n, _, _) -> String.equal n tag | Text _ -> false)
    (descendants t)

let rec equal a b =
  match (a, b) with
  | Text s, Text s' -> String.equal s s'
  | Element (n, attrs, cs), Element (n', attrs', cs') ->
      String.equal n n'
      && List.length attrs = List.length attrs'
      && List.for_all2
           (fun (k, v) (k', v') -> String.equal k k' && String.equal v v')
           attrs attrs'
      && List.length cs = List.length cs'
      && List.for_all2 equal cs cs'
  | Text _, Element _ | Element _, Text _ -> false

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string t =
  let buf = Buffer.create 256 in
  let rec go indent t =
    let pad = String.make indent ' ' in
    match t with
    | Text s -> Buffer.add_string buf (pad ^ escape s ^ "\n")
    | Element (n, attrs, cs) ->
        let attr_str =
          String.concat ""
            (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape v)) attrs)
        in
        (match cs with
        | [] -> Buffer.add_string buf (Printf.sprintf "%s<%s%s/>\n" pad n attr_str)
        | [ Text s ] ->
            Buffer.add_string buf
              (Printf.sprintf "%s<%s%s>%s</%s>\n" pad n attr_str (escape s) n)
        | _ ->
            Buffer.add_string buf (Printf.sprintf "%s<%s%s>\n" pad n attr_str);
            List.iter (go (indent + 2)) cs;
            Buffer.add_string buf (Printf.sprintf "%s</%s>\n" pad n))
  in
  go 0 t;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)

let rec count_nodes = function
  | Text _ -> 1
  | Element (_, _, cs) -> 1 + List.fold_left (fun acc c -> acc + count_nodes c) 0 cs
