type cursor = { text : string; mutable pos : int }

exception Error of string

let fail cur fmt =
  Printf.ksprintf
    (fun msg -> raise (Error (Printf.sprintf "%s (at offset %d)" msg cur.pos)))
    fmt

let peek cur =
  if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let peek2 cur =
  if cur.pos + 1 < String.length cur.text then Some cur.text.[cur.pos + 1]
  else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        go ()
    | Some _ | None -> ()
  in
  go ()

let starts_with cur prefix =
  let lp = String.length prefix in
  cur.pos + lp <= String.length cur.text
  && String.sub cur.text cur.pos lp = prefix

let skip_past cur marker what =
  let rec go () =
    if starts_with cur marker then cur.pos <- cur.pos + String.length marker
    else if cur.pos >= String.length cur.text then
      fail cur "unterminated %s" what
    else begin
      advance cur;
      go ()
    end
  in
  go ()

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let name cur =
  let start = cur.pos in
  let rec go () =
    match peek cur with
    | Some c when is_name_char c ->
        advance cur;
        go ()
    | Some _ | None -> ()
  in
  go ();
  if cur.pos = start then fail cur "expected a name";
  String.sub cur.text start (cur.pos - start)

let entity cur =
  (* '&' consumed. *)
  let start = cur.pos in
  let rec go () =
    match peek cur with
    | Some ';' ->
        let e = String.sub cur.text start (cur.pos - start) in
        advance cur;
        e
    | Some _ ->
        advance cur;
        if cur.pos - start > 8 then fail cur "unterminated entity" else go ()
    | None -> fail cur "unterminated entity"
  in
  match go () with
  | "lt" -> '<'
  | "gt" -> '>'
  | "amp" -> '&'
  | "quot" -> '"'
  | "apos" -> '\''
  | other -> fail cur "unknown entity &%s;" other

let text_until_tag cur =
  let buf = Buffer.create 32 in
  let rec go () =
    match peek cur with
    | Some '<' | None -> Buffer.contents buf
    | Some '&' ->
        advance cur;
        Buffer.add_char buf (entity cur);
        go ()
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let attr_value cur =
  skip_ws cur;
  let quote =
    match peek cur with
    | Some ('"' as q) | Some ('\'' as q) ->
        advance cur;
        q
    | _ -> fail cur "expected a quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | Some c when c = quote ->
        advance cur;
        Buffer.contents buf
    | Some '&' ->
        advance cur;
        Buffer.add_char buf (entity cur);
        go ()
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
    | None -> fail cur "unterminated attribute value"
  in
  go ()

let rec skip_misc cur =
  skip_ws cur;
  if starts_with cur "<!--" then begin
    skip_past cur "-->" "comment";
    skip_misc cur
  end
  else if starts_with cur "<?" then begin
    skip_past cur "?>" "processing instruction";
    skip_misc cur
  end
  else if starts_with cur "<!DOCTYPE" then begin
    skip_past cur ">" "doctype";
    skip_misc cur
  end

let rec element cur =
  (* '<' consumed by caller check; consume it here. *)
  (match peek cur with
  | Some '<' -> advance cur
  | _ -> fail cur "expected '<'");
  let tag = name cur in
  let rec attrs acc =
    skip_ws cur;
    match peek cur with
    | Some '/' ->
        advance cur;
        (match peek cur with
        | Some '>' ->
            advance cur;
            `Selfclosing (List.rev acc)
        | _ -> fail cur "expected '>' after '/'")
    | Some '>' ->
        advance cur;
        `Open (List.rev acc)
    | Some c when is_name_char c ->
        let key = name cur in
        skip_ws cur;
        (match peek cur with
        | Some '=' -> advance cur
        | _ -> fail cur "expected '=' after attribute %s" key);
        attrs ((key, attr_value cur) :: acc)
    | Some c -> fail cur "unexpected '%c' in tag <%s>" c tag
    | None -> fail cur "unterminated tag <%s>" tag
  in
  match attrs [] with
  | `Selfclosing attrs -> Xml.element ~attrs tag []
  | `Open attrs ->
      let children = content cur tag [] in
      Xml.element ~attrs tag children

and content cur tag acc =
  let txt = text_until_tag cur in
  let acc =
    if String.trim txt = "" then acc else Xml.text txt :: acc
  in
  if starts_with cur "<!--" then begin
    skip_past cur "-->" "comment";
    content cur tag acc
  end
  else if starts_with cur "</" then begin
    cur.pos <- cur.pos + 2;
    let closing = name cur in
    if not (String.equal closing tag) then
      fail cur "mismatched </%s>, expected </%s>" closing tag;
    skip_ws cur;
    (match peek cur with
    | Some '>' -> advance cur
    | _ -> fail cur "expected '>' in closing tag");
    List.rev acc
  end
  else if peek cur = Some '<' && peek2 cur <> None then
    content cur tag (element cur :: acc)
  else fail cur "unterminated element <%s>" tag

let parse input =
  let cur = { text = input; pos = 0 } in
  try
    skip_misc cur;
    match peek cur with
    | Some '<' ->
        let root = element cur in
        skip_misc cur;
        (match peek cur with
        | None -> Ok root
        | Some c -> Error (Printf.sprintf "trailing content '%c'" c))
    | _ -> Error "expected a root element"
  with Error msg -> Result.Error msg

let parse_exn input =
  match parse input with
  | Ok x -> x
  | Error msg -> invalid_arg ("Xml_parser.parse_exn: " ^ msg)

let rec strip_ws_text node =
  match node with
  | Xml.Text s -> if String.trim s = "" then None else Some (Xml.Text (String.trim s))
  | Xml.Element (tag, attrs, children) ->
      Some (Xml.Element (tag, attrs, List.filter_map strip_ws_text children))

let roundtrip t =
  match strip_ws_text (parse_exn (Xml.to_string t)) with
  | Some x -> x
  | None -> Xml.text ""
