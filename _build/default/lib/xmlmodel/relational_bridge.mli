(** Bridging XML instances and the relational substrate. Peers store
    "relations" in a very loose sense (the paper's footnote 1: "any flat
    or hierarchical structure, including XML"); this module shreds XML
    into relations the CQ machinery can evaluate, and rebuilds XML from
    relations. *)

val shred : Xml.t -> Relalg.Database.t
(** Generic edge shredding: relations [node(id, tag)],
    [edge(parent, child, position)] and [content(id, value)]. *)

val extract :
  Xml.t -> tag:string -> fields:string list -> Relalg.Relation.tuple list
(** For every descendant element named [tag], one tuple whose columns
    are the text contents of its [fields] children ([Null] when a field
    is missing — annotated data is allowed to be partial). *)

val relation_of :
  Xml.t -> name:string -> tag:string -> fields:string list -> Relalg.Relation.t

val to_xml :
  Relalg.Relation.t -> root:string -> row_tag:string -> Xml.t
(** One [row_tag] element per tuple, one child per attribute. *)
