(** Limited path expressions — the subset the paper's mapping language
    supports ("hierarchical XML construction and limited path
    expressions", Section 3.1.1). *)

type step = Child of string | Descendant of string

type t = { steps : step list; text : bool }
(** [text = true] means the path ends in [text()]. *)

val of_string : string -> t
(** Parses ["schedule/college/dept"], ["//course/title/text()"],
    [".../text()"]. A leading ["/"] is ignored (paths are evaluated
    relative to a context node); ["//x"] makes a descendant step.
    Raises [Invalid_argument] on empty steps. *)

val to_string : t -> string

val select : Xml.t -> t -> Xml.t list
(** Nodes reached by the steps (ignores the [text] flag). The context
    node's own tag is not consumed: [a/b] from node [n] selects the
    [b]-children of the [a]-children of [n]. *)

val select_text : Xml.t -> t -> string list
(** Text content of the selected nodes. *)

val append : t -> t -> t
(** Concatenate steps; the suffix's [text] flag wins. *)
