(** The XML face of Piazza (Section 3.1.1): peers hold XML documents
    conforming to their own DTDs; template mappings (Figure 4) relate
    pairs of peers; a path query posed against one peer's schema is
    answered from its own document {e and}, by translating the path
    through chains of mappings, from every transitively mapped peer. *)

type t

val create : unit -> t

val add_peer : t -> name:string -> ?dtd:Dtd.t -> Xml.t -> unit
(** Register a peer with its document. When a DTD is supplied the
    document must validate ([Invalid_argument] otherwise). *)

val add_mapping :
  t -> source:string -> target:string -> Template.t -> unit
(** A template whose bindings read [source]'s document (under the name
    ["<source>.xml"]) and whose shape matches [target]'s schema. *)

val peers : t -> string list
val document : t -> string -> Xml.t

val query : t -> at:string -> Path.t -> string list
(** All text results of the path, evaluated on the peer's own document
    and on every source reachable through mapping chains (the path is
    translated through the chain, then evaluated directly on the remote
    document — no materialisation). Duplicates removed, sorted. *)

val query_local : t -> at:string -> Path.t -> string list
(** The peer's own document only, for comparison. *)

val reachable : t -> string -> string list
(** Peers whose data can flow to the given peer (including itself). *)
