type source = Document of string | Variable of string

type node =
  | Elem of elem
  | Text_from of string * Path.t
  | Literal of string

and elem = {
  tag : string;
  binding : (string * source * Path.t) option;
  children : node list;
}

type t = { root : node }

let elem ?binding tag children = Elem { tag; binding; children }
let template root = { root }

let apply t ~docs =
  let doc name =
    match List.assoc_opt name docs with
    | Some d -> d
    | None -> invalid_arg ("Template.apply: unknown document " ^ name)
  in
  let lookup env var =
    match List.assoc_opt var env with
    | Some n -> n
    | None -> invalid_arg ("Template.apply: unbound variable $" ^ var)
  in
  let rec inst env node : Xml.t list =
    match node with
    | Literal s -> [ Xml.text s ]
    | Text_from (var, path) ->
        List.map Xml.text (Path.select_text (lookup env var) path)
    | Elem { tag; binding = None; children } ->
        [ Xml.element tag (List.concat_map (inst env) children) ]
    | Elem { tag; binding = Some (var, src, path); children } ->
        let roots =
          match src with
          | Document d -> [ doc d ]
          | Variable v -> [ lookup env v ]
        in
        let matches = List.concat_map (fun r -> Path.select r path) roots in
        List.map
          (fun n ->
            Xml.element tag (List.concat_map (inst ((var, n) :: env)) children))
          matches
  in
  inst [] t.root

let apply_single t ~docs =
  match apply t ~docs with
  | [ x ] -> x
  | xs ->
      invalid_arg
        (Printf.sprintf "Template.apply_single: %d root instances" (List.length xs))

let target_dtd_elements t =
  let rec go acc = function
    | Literal _ | Text_from _ -> acc
    | Elem { tag; children; _ } ->
        let acc = if List.mem tag acc then acc else tag :: acc in
        List.fold_left go acc children
  in
  List.rev (go [] t.root)
