lib/xmlmodel/xml_pdms.ml: Dtd List Path String Template Translate Xml
