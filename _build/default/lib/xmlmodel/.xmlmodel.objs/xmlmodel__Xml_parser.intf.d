lib/xmlmodel/xml_parser.mli: Xml
