lib/xmlmodel/xml.mli: Format
