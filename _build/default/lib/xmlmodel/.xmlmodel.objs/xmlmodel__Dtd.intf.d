lib/xmlmodel/dtd.mli: Format Xml
