lib/xmlmodel/path.ml: List String Xml
