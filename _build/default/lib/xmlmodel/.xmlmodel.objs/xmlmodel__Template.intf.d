lib/xmlmodel/template.mli: Path Xml
