lib/xmlmodel/xml.ml: Buffer Format List Printf String
