lib/xmlmodel/relational_bridge.ml: Array List Relalg Xml
