lib/xmlmodel/translate.mli: Path Template Xml
