lib/xmlmodel/xml_parser.ml: Buffer List Printf Result String Xml
