lib/xmlmodel/translate.ml: List Path String Template Xml
