lib/xmlmodel/xml_pdms.mli: Dtd Path Template Xml
