lib/xmlmodel/relational_bridge.mli: Relalg Xml
