lib/xmlmodel/dtd.ml: Format List Printf String Xml
