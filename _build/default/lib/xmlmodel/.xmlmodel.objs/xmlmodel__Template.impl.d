lib/xmlmodel/template.ml: List Path Printf Xml
