lib/xmlmodel/path.mli: Xml
