(** XML trees — Piazza's data model ("general enough to encompass
    relational, hierarchical, or semi-structured data, including marked
    up HTML pages", Section 3.1). *)

type t =
  | Element of string * (string * string) list * t list
  | Text of string

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

val name : t -> string option
(** Element tag, [None] for text nodes. *)

val attr : t -> string -> string option
val children : t -> t list
val children_named : t -> string -> t list

val child_named : t -> string -> t option
(** First child element with the tag. *)

val text_content : t -> string
(** Concatenated text of all descendant text nodes. *)

val descendants : t -> t list
(** All descendant-or-self element nodes, document order. *)

val descendants_named : t -> string -> t list
val equal : t -> t -> bool
val to_string : t -> string
(** Indented serialisation. *)

val pp : Format.formatter -> t -> unit
val count_nodes : t -> int
