type t = {
  corpus : Corpus.Corpus_store.t;
  matcher : Matching.Corpus_matcher.t;
  weights : Similarity.weights;
  usage : (string * int) list;
}

let build ?(weights = Similarity.default_weights) ?(usage = []) corpus =
  { corpus; matcher = Matching.Corpus_matcher.build corpus; weights; usage }

type suggestion = {
  candidate : Corpus.Schema_model.t;
  score : float;
  matched : (Matching.Column.t * Matching.Column.t) list;
  missing : (string * string) list;
}

let usage_count t name =
  Option.value ~default:1 (List.assoc_opt name t.usage)

let suggestion_of t ~partial candidate =
  let fit_score, pairs = Similarity.fit ~matcher:t.matcher candidate partial in
  let score =
    (t.weights.Similarity.alpha *. fit_score)
    +. t.weights.Similarity.beta
       *. Similarity.preference ~usage_count:(usage_count t) candidate
  in
  let matched = List.map (fun (c1, c2, _) -> (c1, c2)) pairs in
  let covered = List.map (fun (c1, _) -> Matching.Column.key c1) matched in
  let missing =
    List.filter
      (fun key -> not (List.mem key covered))
      (List.concat_map
         (fun (r : Corpus.Schema_model.relation) ->
           List.map
             (fun (a : Corpus.Schema_model.attribute) ->
               (r.Corpus.Schema_model.rel_name, a.Corpus.Schema_model.attr_name))
             r.Corpus.Schema_model.attributes)
         candidate.Corpus.Schema_model.relations)
  in
  { candidate; score; matched; missing }

let rank ?(limit = 5) t ~partial =
  Corpus.Corpus_store.schemas t.corpus
  |> List.filter (fun s ->
         not
           (String.equal s.Corpus.Schema_model.schema_name
              partial.Corpus.Schema_model.schema_name))
  |> List.map (suggestion_of t ~partial)
  |> List.sort (fun a b ->
         match Float.compare b.score a.score with
         | 0 ->
             String.compare a.candidate.Corpus.Schema_model.schema_name
               b.candidate.Corpus.Schema_model.schema_name
         | c -> c)
  |> List.filteri (fun i _ -> i < limit)

let autocomplete t ~partial =
  match rank ~limit:1 t ~partial with
  | [ best ] when best.score > 0.0 -> best.missing
  | _ -> []
