(** The DesignAdvisor (Section 4.3.1): given a fragment [(S, D)] — a
    partial schema with optional data — return a ranked list of corpus
    schemas that model a superset of it, and propose concrete
    completions ("auto-complete for schemas"). *)

type t

val build :
  ?weights:Similarity.weights ->
  ?usage:(string * int) list ->
  Corpus.Corpus_store.t ->
  t
(** [usage] supplies community usage counts per schema name (default:
    each corpus schema counts once). *)

type suggestion = {
  candidate : Corpus.Schema_model.t;
  score : float;
  matched : (Matching.Column.t * Matching.Column.t) list;
      (** (candidate column, partial-schema column) correspondences *)
  missing : (string * string) list;
      (** (rel, attr) elements of the candidate absent from the partial
          schema — the proposed completion *)
}

val rank : ?limit:int -> t -> partial:Corpus.Schema_model.t -> suggestion list
(** Best-first (default limit 5). *)

val autocomplete :
  t -> partial:Corpus.Schema_model.t -> (string * string) list
(** The missing elements of the best-ranked candidate (empty when the
    corpus offers nothing similar). *)
