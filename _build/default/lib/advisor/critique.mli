(** The design-monitoring half of DesignAdvisor: "at this point,
    DesignAdvisor, which has been monitoring the coordinator's actions,
    steps in and tells the coordinator that in similar schemas at most
    other universities, TA information has been modeled in a table
    separate from the course table" (Section 4.3.1). *)

type advice = {
  relation : string;  (** the relation being critiqued *)
  move_out : string list;  (** attributes that usually live elsewhere *)
  suggested_relation : string option;
      (** the relation name the corpus uses for them *)
  confidence : float;
      (** 1 - max same-relation probability of the moved attributes with
          the relation's core attributes *)
}

val decompositions :
  ?max_same_relation_probability:float ->
  stats:Corpus.Basic_stats.t ->
  corpus:Corpus.Corpus_store.t ->
  Corpus.Schema_model.t ->
  advice list
(** Cluster each relation's attributes by corpus same-relation
    probability (edges above the threshold, default 0.34, keep
    attributes together); the largest cluster is the core, every other
    cluster yields one decomposition advice. *)
