type candidate = {
  reformulated : Cq.Query.t;
  confidence : float;
  substitutions : (string * string) list;
}

let canon name =
  Util.Tokenize.split_identifier name
  |> List.map (Util.Synonyms.canonical Util.Synonyms.university_domain)
  |> List.map Util.Stemmer.stem

(* Similarity between a user predicate and a target relation: lexical
   token overlap, plus corpus distributional similarity when stats are
   available (catching renamings the synonym table misses). *)
let pred_similarity ?stats user_pred (r : Corpus.Schema_model.relation) =
  let name = r.Corpus.Schema_model.rel_name in
  let lexical = Util.Strdist.jaccard (canon user_pred) (canon name) in
  let distributional =
    match stats with
    | None -> 0.0
    | Some stats -> Corpus.Similar_names.similarity stats user_pred name
  in
  Float.max lexical (0.8 *. distributional)

let reformulate ?(limit = 3) ?stats ~target (q : Cq.Query.t) =
  let preds =
    List.fold_left
      (fun acc (a : Cq.Atom.t) ->
        let entry = (a.Cq.Atom.pred, Cq.Atom.arity a) in
        if List.mem entry acc then acc else entry :: acc)
      [] q.Cq.Query.body
    |> List.rev
  in
  (* Per user predicate, arity-compatible target relations with scores. *)
  let options =
    List.map
      (fun (pred, arity) ->
        let scored =
          List.filter_map
            (fun (r : Corpus.Schema_model.relation) ->
              if List.length r.Corpus.Schema_model.attributes <> arity then None
              else
                let s = pred_similarity ?stats pred r in
                if s > 0.0 then Some (r.Corpus.Schema_model.rel_name, s) else None)
            target.Corpus.Schema_model.relations
          |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
        in
        (pred, scored))
      preds
  in
  let rec combos = function
    | [] -> [ ([], 1.0) ]
    | (pred, scored) :: rest ->
        let tails = combos rest in
        List.concat_map
          (fun (name, s) ->
            List.map (fun (subs, c) -> ((pred, name) :: subs, c *. s)) tails)
          scored
  in
  combos options
  |> List.filter (fun (subs, _) -> List.length subs = List.length preds)
  |> List.map (fun (subs, confidence) ->
         let rename p =
           match List.assoc_opt p subs with Some p' -> p' | None -> p
         in
         {
           reformulated = Cq.Query.rename_preds rename q;
           confidence;
           substitutions = subs;
         })
  |> List.sort (fun a b -> Float.compare b.confidence a.confidence)
  |> List.filteri (fun i _ -> i < limit)
