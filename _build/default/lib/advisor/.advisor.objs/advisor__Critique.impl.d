lib/advisor/critique.ml: Corpus Float List Util
