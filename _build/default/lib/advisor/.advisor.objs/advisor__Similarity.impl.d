lib/advisor/similarity.ml: Corpus List Matching
