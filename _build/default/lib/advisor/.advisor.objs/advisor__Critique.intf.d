lib/advisor/critique.mli: Corpus
