lib/advisor/design_advisor.ml: Corpus Float List Matching Option Similarity String
