lib/advisor/query_reformulator.ml: Corpus Cq Float List Util
