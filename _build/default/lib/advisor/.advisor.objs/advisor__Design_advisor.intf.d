lib/advisor/design_advisor.mli: Corpus Matching Similarity
