lib/advisor/similarity.mli: Corpus Matching
