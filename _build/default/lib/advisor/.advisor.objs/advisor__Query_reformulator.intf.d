lib/advisor/query_reformulator.mli: Corpus Cq
