type weights = { alpha : float; beta : float }

let default_weights = { alpha = 0.8; beta = 0.2 }

let fit ~matcher candidate partial =
  let pairs = Matching.Corpus_matcher.match_schemas matcher candidate partial in
  (* The paper's ratio of mappings to total elements, with each mapping
     weighted by the matcher's confidence so that a single spurious
     low-score match on a tiny candidate cannot dominate. *)
  let weight = List.fold_left (fun acc (_, _, s) -> acc +. s) 0.0 pairs in
  let elements =
    Corpus.Schema_model.element_count candidate
    + Corpus.Schema_model.element_count partial
  in
  let score = if elements = 0 then 0.0 else 2.0 *. weight /. float_of_int elements in
  (score, pairs)

let preference ~usage_count (s : Corpus.Schema_model.t) =
  let usage = float_of_int (usage_count s.Corpus.Schema_model.schema_name) in
  let popularity = usage /. (usage +. 3.0) in
  let size = float_of_int (Corpus.Schema_model.element_count s) in
  let conciseness = 1.0 /. (1.0 +. (size /. 25.0)) in
  (0.7 *. popularity) +. (0.3 *. conciseness)

let sim ?(weights = default_weights) ~matcher ~usage_count ~candidate partial =
  let f, _ = fit ~matcher candidate partial in
  (weights.alpha *. f) +. (weights.beta *. preference ~usage_count candidate)
