type advice = {
  relation : string;
  move_out : string list;
  suggested_relation : string option;
  confidence : float;
}

(* Cluster the relation's attributes by their corpus same-relation
   probability: attributes the corpus usually co-locates stay together,
   the largest cluster is the relation's core, and every other cluster
   is advised to move out (the paper's TA-table case). Attributes the
   corpus has never seen stay with the core — no evidence, no advice. *)
let decompositions ?(max_same_relation_probability = 0.34) ~stats ~corpus
    (schema : Corpus.Schema_model.t) =
  List.concat_map
    (fun (r : Corpus.Schema_model.relation) ->
      let attrs =
        List.map
          (fun (a : Corpus.Schema_model.attribute) -> a.Corpus.Schema_model.attr_name)
          r.Corpus.Schema_model.attributes
      in
      let known a =
        let u = Corpus.Basic_stats.term_usage stats a in
        u.Corpus.Basic_stats.as_attribute > 0.0
      in
      let known_attrs = List.filter known attrs in
      match known_attrs with
      | [] | [ _ ] -> []
      | _ ->
          let prob a b =
            Corpus.Composite_stats.same_relation_probability ~stats corpus a b
          in
          let uf = Util.Union_find.create () in
          List.iter (fun a -> ignore (Util.Union_find.find uf a)) known_attrs;
          List.iteri
            (fun i a ->
              List.iteri
                (fun j b ->
                  if j > i && prob a b > max_same_relation_probability then
                    Util.Union_find.union uf a b)
                known_attrs)
            known_attrs;
          let groups = Util.Union_find.groups uf in
          let core =
            List.fold_left
              (fun best g ->
                match best with
                | None -> Some g
                | Some b -> if List.length g > List.length b then Some g else best)
              None groups
          in
          (match core with
          | None -> []
          | Some core ->
              groups
              |> List.filter (fun g -> g != core)
              |> List.map (fun group ->
                     let max_cross =
                       List.fold_left
                         (fun acc a ->
                           List.fold_left
                             (fun acc b -> Float.max acc (prob a b))
                             acc core)
                         0.0 group
                     in
                     {
                       relation = r.Corpus.Schema_model.rel_name;
                       move_out = group;
                       suggested_relation =
                         Corpus.Composite_stats.separate_relation_name ~stats
                           corpus (List.hd group);
                       confidence = 1.0 -. max_cross;
                     })))
    schema.Corpus.Schema_model.relations
