(** The DesignAdvisor similarity template (Section 4.3.1):
    [sim(S', (S, D)) = alpha * fit(S', S, D) + beta * preference(S')].
    [fit] is "the ratio between the total number of mappings between S'
    and S and the total number of elements of S' and S"; [preference]
    rewards commonly used and concise schemas. *)

type weights = { alpha : float; beta : float }

val default_weights : weights

val fit :
  matcher:Matching.Corpus_matcher.t ->
  Corpus.Schema_model.t ->
  Corpus.Schema_model.t ->
  float * (Matching.Column.t * Matching.Column.t * float) list
(** [fit ~matcher candidate partial] — the fit score together with the
    element correspondences it is based on (found by the
    SchemaMatcher, as the paper prescribes). *)

val preference :
  usage_count:(string -> int) -> Corpus.Schema_model.t -> float
(** [usage_count] reports how often the schema (by name) is used in the
    corpus/community; conciseness favours fewer elements. Result in
    [0, 1]. *)

val sim :
  ?weights:weights ->
  matcher:Matching.Corpus_matcher.t ->
  usage_count:(string -> int) ->
  candidate:Corpus.Schema_model.t ->
  Corpus.Schema_model.t ->
  float
(** [sim ~matcher ~usage_count ~candidate partial]. *)
