(** Querying unfamiliar data (Section 4.4): "a user should be able to
    access a database the schema of which she does not know, and pose a
    query using her own terminology ... a tool that uses the corpus to
    propose reformulations of the user's query that are well formed
    w.r.t. the schema at hand." *)

type candidate = {
  reformulated : Cq.Query.t;
  confidence : float;
  substitutions : (string * string) list;
      (** (user term, schema term) renamings applied *)
}

val reformulate :
  ?limit:int ->
  ?stats:Corpus.Basic_stats.t ->
  target:Corpus.Schema_model.t ->
  Cq.Query.t ->
  candidate list
(** The user query's predicates are relation names in her own
    vocabulary. Each candidate renames predicates to arity-compatible
    target relations, ranked by lexical similarity boosted (when
    [stats] is given) by corpus distributional similarity. Returns at
    most [limit] candidates (default 3), best first. *)
