lib/pdms/view_maintenance.ml: Array Atom Cq Eval Hashtbl List Query Relalg String Subst Term Updategram
