lib/pdms/topology.mli: Util
