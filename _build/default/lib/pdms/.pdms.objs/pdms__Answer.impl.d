lib/pdms/answer.ml: Array Catalog Cq List Peer_mapping Printf Reformulate Relalg String
