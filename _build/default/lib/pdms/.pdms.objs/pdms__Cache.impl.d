lib/pdms/cache.ml: Answer Catalog Cq Hashtbl List Printf Reformulate String Updategram
