lib/pdms/catalog.ml: Cq Hashtbl List Peer Peer_mapping Printf Relalg Rewrite Seq Storage_desc String
