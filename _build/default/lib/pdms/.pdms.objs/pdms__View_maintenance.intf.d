lib/pdms/view_maintenance.mli: Cq Relalg Updategram
