lib/pdms/peer.mli: Cq Relalg
