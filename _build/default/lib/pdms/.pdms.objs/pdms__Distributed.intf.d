lib/pdms/distributed.mli: Catalog Cq Network Reformulate Relalg
