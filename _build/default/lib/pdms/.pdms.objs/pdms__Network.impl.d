lib/pdms/network.ml: Array Float Hashtbl List Printf String Topology
