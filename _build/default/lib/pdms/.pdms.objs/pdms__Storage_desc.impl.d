lib/pdms/storage_desc.ml: Cq Format List Peer Printf
