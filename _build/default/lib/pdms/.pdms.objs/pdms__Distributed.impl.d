lib/pdms/distributed.ml: Catalog Cq Float List Network Printf Reformulate Relalg String
