lib/pdms/propagate.ml: Array Catalog Cq Hashtbl List Reformulate Relalg String Updategram View_maintenance
