lib/pdms/pdms_file.ml: Array Buffer Catalog Cq List Peer Peer_mapping Printf Relalg Result Rewrite String
