lib/pdms/cache.mli: Answer Catalog Cq Reformulate Updategram
