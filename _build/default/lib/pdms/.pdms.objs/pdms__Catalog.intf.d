lib/pdms/catalog.mli: Cq Peer Peer_mapping Relalg Storage_desc
