lib/pdms/updategram.mli: Relalg Storage
