lib/pdms/peer_mapping.mli: Cq Format Rewrite
