lib/pdms/storage_desc.mli: Cq Format Peer
