lib/pdms/pdms_file.mli: Catalog
