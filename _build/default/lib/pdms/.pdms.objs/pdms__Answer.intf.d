lib/pdms/answer.mli: Catalog Cq Reformulate Relalg
