lib/pdms/reformulate.mli: Catalog Cq Format
