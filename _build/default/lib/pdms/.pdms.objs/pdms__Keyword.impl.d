lib/pdms/keyword.ml: Array Catalog Distributed List Printf Relalg String Util
