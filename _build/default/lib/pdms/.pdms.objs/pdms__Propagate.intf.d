lib/pdms/propagate.mli: Catalog Cq Reformulate Relalg Updategram
