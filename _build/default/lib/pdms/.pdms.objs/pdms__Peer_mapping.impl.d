lib/pdms/peer_mapping.ml: Cq Format List Option Rewrite String
