lib/pdms/reformulate.ml: Array Atom Catalog Containment Cq Format Hashtbl Int List Minimize Option Printf Query Queue Rewrite Set String Subst Term
