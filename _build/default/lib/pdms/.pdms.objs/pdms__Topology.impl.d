lib/pdms/topology.ml: Array Fun List Printf Queue Util
