lib/pdms/placement.mli: Network
