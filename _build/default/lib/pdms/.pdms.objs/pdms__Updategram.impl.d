lib/pdms/updategram.ml: Array Hashtbl List Relalg Storage String
