lib/pdms/placement.ml: Float List Network Option String
