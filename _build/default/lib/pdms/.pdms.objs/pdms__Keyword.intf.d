lib/pdms/keyword.mli: Catalog Relalg
