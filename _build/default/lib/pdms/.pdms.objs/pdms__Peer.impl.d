lib/pdms/peer.ml: Cq List Printf Relalg String
