lib/pdms/network.mli: Topology
