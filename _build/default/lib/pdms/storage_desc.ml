type kind = Exact | Containment

type t = { kind : kind; view : Cq.Query.t }

let make kind view =
  if not (Cq.Query.is_safe view) then
    invalid_arg "Storage_desc.make: unsafe view";
  { kind; view }

let identity peer ~rel =
  let attrs =
    match List.assoc_opt rel (Peer.schema peer) with
    | Some attrs -> attrs
    | None ->
        invalid_arg
          (Printf.sprintf "Storage_desc.identity: %s has no relation %s"
             (Peer.name peer) rel)
  in
  let args = List.map (fun a -> Cq.Term.v ("X_" ^ a)) attrs in
  let head = Cq.Atom.make (Peer.stored_pred peer rel) args in
  let body = [ Peer.atom peer rel args ] in
  make Exact (Cq.Query.make head body)

let stored_pred t = t.view.Cq.Query.head.Cq.Atom.pred

let pp fmt t =
  let op = match t.kind with Exact -> "=" | Containment -> "⊆" in
  Format.fprintf fmt "%s %s %a" (stored_pred t) op Cq.Query.pp t.view
