type entry = {
  key : string;
  result : Answer.result;
  reads : string list;  (* stored predicates the rewritings mention *)
  mutable last_used : int;
}

type t = {
  catalog : Catalog.t;
  capacity : int;
  mutable store : entry list;
  mutable clock : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ?(capacity = 64) catalog () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  { catalog; capacity; store = []; clock = 0; hit_count = 0; miss_count = 0 }

(* Alpha-normalised key: queries equal up to variable renaming share an
   entry. *)
let key_of (q : Cq.Query.t) =
  let mapping = Hashtbl.create 8 in
  let rename = function
    | Cq.Term.Var x ->
        let x' =
          match Hashtbl.find_opt mapping x with
          | Some x' -> x'
          | None ->
              let x' = Printf.sprintf "v%d" (Hashtbl.length mapping) in
              Hashtbl.replace mapping x x';
              x'
        in
        Cq.Term.Var x'
    | Cq.Term.Const _ as c -> c
  in
  let head = Cq.Atom.map_terms rename q.Cq.Query.head in
  let body = List.map (Cq.Atom.map_terms rename) q.Cq.Query.body in
  Cq.Atom.to_string head ^ ":-"
  ^ String.concat "," (List.map Cq.Atom.to_string body)

let reads_of (result : Answer.result) =
  List.concat_map Cq.Query.body_preds result.Answer.outcome.Reformulate.rewritings
  |> List.sort_uniq String.compare

let answer ?pruning t q =
  let key = key_of q in
  t.clock <- t.clock + 1;
  match List.find_opt (fun e -> String.equal e.key key) t.store with
  | Some e ->
      e.last_used <- t.clock;
      t.hit_count <- t.hit_count + 1;
      e.result
  | None ->
      t.miss_count <- t.miss_count + 1;
      let result = Answer.answer ?pruning t.catalog q in
      let entry =
        { key; result; reads = reads_of result; last_used = t.clock }
      in
      t.store <- entry :: t.store;
      if List.length t.store > t.capacity then begin
        (* Evict the least recently used entry. *)
        let lru =
          List.fold_left
            (fun worst e ->
              match worst with
              | None -> Some e
              | Some w -> if e.last_used < w.last_used then Some e else worst)
            None t.store
        in
        match lru with
        | Some victim -> t.store <- List.filter (fun e -> e != victim) t.store
        | None -> ()
      end;
      result

let invalidate t (u : Updategram.t) =
  let before = List.length t.store in
  t.store <-
    List.filter
      (fun e -> not (List.mem u.Updategram.rel e.reads))
      t.store;
  before - List.length t.store

let invalidate_all t = t.store <- []
let hits t = t.hit_count
let misses t = t.miss_count
let entries t = List.length t.store
