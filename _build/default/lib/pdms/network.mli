(** A deterministic overlay-network simulator: peers exchange messages
    along mapping edges with per-edge latency. Used to attach simulated
    wall-clock costs to reformulation and distributed evaluation
    (Section 3.1.2's peer-based query processing). *)

type t

val create : unit -> t
val add_peer : t -> string -> unit
val connect : t -> string -> string -> latency_ms:float -> unit
val peers : t -> string list

val of_topology : Topology.t -> names:string list -> base_latency_ms:float -> t
(** Wire the topology's edges between the named peers, all with the same
    latency. *)

val latency : t -> string -> string -> float option
(** Shortest-path latency between two peers, [None] if disconnected. *)

val hops : t -> string -> string -> int option

val send : t -> src:string -> dst:string -> size:int -> float
(** Simulated delivery time in ms: shortest-path latency plus a
    size-proportional transfer term. Records the message. Raises
    [Invalid_argument] if disconnected. *)

val broadcast : t -> src:string -> size:int -> float
(** Deliver to every reachable peer; returns the slowest delivery. *)

val messages_sent : t -> int
val bytes_sent : t -> int
val reset_counters : t -> unit
