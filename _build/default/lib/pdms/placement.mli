(** Materialised-view placement: "our ultimate goal is to materialize
    the best views at each peer to allow answering queries most
    efficiently, given network constraints" (Section 3.1.2). A greedy
    cost-based placement: repeatedly add the replica with the largest
    net saving. *)

type workload = {
  view_name : string;
  query_freq : (string * float) list;  (** queries per peer *)
  update_rate : float;  (** updategrams per unit time, paid per replica *)
  result_size : int;  (** bytes shipped per remote query *)
}

type placement = (string * string list) list
(** view name -> peers holding a replica. *)

val cost : Network.t -> workload list -> placement -> float
(** Total simulated cost: each query pays latency to its nearest
    replica times frequency; each replica pays the update rate as
    maintenance. Unreachable views pay a large penalty. *)

val greedy :
  Network.t -> workload list -> initial:placement -> max_replicas:int -> placement
(** Starting from [initial] (each view's authoritative copy), add
    replicas while the cost strictly decreases, up to [max_replicas]
    per view. *)
