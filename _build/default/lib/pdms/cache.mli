(** Cooperative query-result caching (Section 3.1.2: peers should
    "perform the duties of cooperative web caches"). A cache stores the
    reformulated rewritings and evaluated answers per query; an incoming
    updategram invalidates exactly the entries whose rewritings read the
    touched relation. *)

type t

val create : ?capacity:int -> Catalog.t -> unit -> t
(** LRU with the given capacity (default 64 entries). *)

val answer : ?pruning:Reformulate.pruning -> t -> Cq.Query.t -> Answer.result
(** Like {!Answer.answer} but cached: a hit skips both reformulation and
    evaluation. Queries are matched up to variable renaming. *)

val invalidate : t -> Updategram.t -> int
(** Drop entries whose rewritings mention the updategram's relation;
    returns how many were dropped. Call this when applying updates to
    any peer's stored data. *)

val invalidate_all : t -> unit
val hits : t -> int
val misses : t -> int
val entries : t -> int
