type t = {
  name : string;
  schema : (string * string list) list;
  stored : Relalg.Database.t;
}

let create ~name ~schema =
  let rels = List.map fst schema in
  if List.length (List.sort_uniq String.compare rels) <> List.length rels then
    invalid_arg ("Peer.create: duplicate relation in schema of " ^ name);
  { name; schema; stored = Relalg.Database.create () }

let name t = t.name
let schema t = t.schema
let stored_db t = t.stored

let pred t rel =
  if not (List.mem_assoc rel t.schema) then
    invalid_arg (Printf.sprintf "Peer.pred: %s has no relation %s" t.name rel);
  t.name ^ "." ^ rel

let atom t rel args =
  let attrs = List.assoc rel t.schema in
  if List.length args <> List.length attrs then
    invalid_arg
      (Printf.sprintf "Peer.atom: %s.%s expects %d args, got %d" t.name rel
         (List.length attrs) (List.length args));
  Cq.Atom.make (pred t rel) args

let stored_pred t rel = t.name ^ "." ^ rel ^ "!"

let add_stored t ~rel ~attrs =
  Relalg.Database.create_relation t.stored (stored_pred t rel) attrs

let stored_atom t rel args =
  let p = stored_pred t rel in
  (match Relalg.Database.find_opt t.stored p with
  | None -> invalid_arg ("Peer.stored_atom: no stored relation " ^ p)
  | Some r ->
      if Relalg.Schema.arity (Relalg.Relation.schema r) <> List.length args then
        invalid_arg ("Peer.stored_atom: arity mismatch for " ^ p));
  Cq.Atom.make p args

let stored_preds t = Relalg.Database.names t.stored
