type result = {
  answers : Relalg.Relation.t;
  outcome : Reformulate.outcome;
}

let answer ?pruning catalog q =
  let outcome = Reformulate.reformulate ?pruning catalog q in
  let db = Catalog.global_db catalog in
  let answers =
    match outcome.Reformulate.rewritings with
    | [] ->
        (* No rewriting: empty relation shaped by the query head. *)
        let arity = Cq.Atom.arity q.Cq.Query.head in
        Relalg.Relation.create
          (Relalg.Schema.make q.Cq.Query.head.Cq.Atom.pred
             (List.init arity (Printf.sprintf "a%d")))
    | rewritings -> Cq.Eval.run_union db rewritings
  in
  { answers; outcome }

let answers_list result =
  Relalg.Relation.tuples result.answers
  |> List.map (fun row -> Array.to_list (Array.map Relalg.Value.to_string row))
  |> List.sort compare

let reachable_peers catalog start =
  let adjacency =
    List.concat_map
      (fun (_, m) ->
        let ps = Peer_mapping.peers_mentioned m in
        List.concat_map (fun a -> List.map (fun b -> (a, b)) ps) ps)
      (Catalog.mappings catalog)
  in
  let rec bfs visited = function
    | [] -> visited
    | p :: rest ->
        if List.mem p visited then bfs visited rest
        else
          let next =
            List.filter_map
              (fun (a, b) -> if String.equal a p then Some b else None)
              adjacency
          in
          bfs (p :: visited) (next @ rest)
  in
  List.sort String.compare (bfs [] [ start ])
