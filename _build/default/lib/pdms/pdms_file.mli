(** A line-oriented text format describing a whole PDMS — peers, stored
    data and mappings — so catalogs can live in files and be queried
    from the command line:

    {v
    peer uw
    relation course(code, title)
    store course
    row course: cse444 | databases

    peer mit
    relation subject(id, name)
    store subject
    row subject: 6.033 | systems

    mapping equality
    lhs m(C, T) :- mit.subject(C, T)
    rhs m(C, T) :- uw.course(C, T)

    mapping definitional
    rule uw.course(C, T) :- mit.subject(C, T)
    v}

    [store] registers an identity storage description; [row] loads a
    tuple (values parsed as int/float/bool when they look like one;
    single-quote a value, e.g. ['6.830'], to force a string).
    Within a peer section, declare every [relation] before the first
    [store]. Mapping queries use the {!Cq.Parser} syntax with qualified
    predicates. *)

val parse : string -> (Catalog.t, string) result
val parse_exn : string -> Catalog.t

val render : Catalog.t -> string
(** Peers, stored rows and mappings in the same format (identity storage
    descriptions only — the general ones are rendered as comments). *)
