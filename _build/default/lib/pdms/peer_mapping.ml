type t = Definitional of Cq.Query.t | Glav of Rewrite.Glav.t

let definitional rule =
  if not (Cq.Query.is_safe rule) then
    invalid_arg "Peer_mapping.definitional: unsafe rule";
  Definitional rule

let inclusion ~lhs ~rhs = Glav (Rewrite.Glav.make Rewrite.Glav.Inclusion ~lhs ~rhs)
let equality ~lhs ~rhs = Glav (Rewrite.Glav.make Rewrite.Glav.Equality ~lhs ~rhs)

let peer_of_pred pred =
  match String.index_opt pred '.' with
  | Some i when i > 0 -> Some (String.sub pred 0 i)
  | Some _ | None -> None

let peers_of_query (q : Cq.Query.t) =
  List.filter_map (fun (a : Cq.Atom.t) -> peer_of_pred a.Cq.Atom.pred) q.Cq.Query.body

let peers_mentioned = function
  | Definitional rule ->
      List.sort_uniq String.compare
        (peers_of_query rule
        @ Option.to_list (peer_of_pred rule.Cq.Query.head.Cq.Atom.pred))
  | Glav g ->
      List.sort_uniq String.compare
        (peers_of_query g.Rewrite.Glav.lhs @ peers_of_query g.Rewrite.Glav.rhs)

let pp fmt = function
  | Definitional rule -> Format.fprintf fmt "def: %a" Cq.Query.pp rule
  | Glav g -> Rewrite.Glav.pp fmt g
