(** Mapping-graph topologies for the scalability experiments: which
    pairs of peers author mappings between themselves. Peers are
    numbered [0 .. n-1]; an edge [(a, b)] means a mapping is authored
    between peer [a] and peer [b]. *)

type kind = Chain | Star | Binary_tree | Ring | Mesh of int | Small_world

type t = { kind : kind; n : int; edges : (int * int) list }

val generate : ?prng:Util.Prng.t -> kind -> n:int -> t
(** [Mesh d] adds [d] random extra edges per node on top of a chain
    (connected); [Small_world] is a ring plus [n/4] random chords.
    Random kinds require [prng]. *)

val edge_count : t -> int
val diameter : t -> int
(** Longest shortest path (hop count) in the undirected graph. *)

val kind_name : kind -> string
