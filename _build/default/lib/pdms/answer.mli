(** End-to-end PDMS query answering: reformulate onto stored relations,
    then evaluate the union of rewritings over the peers' stored data.
    "The moment a peer establishes mappings to other sources, it can pose
    queries using its native schema, which will return answers from all
    mapped peers" (Example 3.1). *)

type result = {
  answers : Relalg.Relation.t;
  outcome : Reformulate.outcome;
}

val answer : ?pruning:Reformulate.pruning -> Catalog.t -> Cq.Query.t -> result

val answers_list : result -> string list list
(** Answer tuples rendered as strings, sorted — convenient for tests and
    examples. *)

val reachable_peers : Catalog.t -> string -> string list
(** Peers whose data is reachable from the given peer through the
    mapping graph (including itself) — the "web of data" the paper's
    Figure 2 caption describes. *)
