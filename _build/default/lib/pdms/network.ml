type t = {
  mutable peer_list : string list;
  mutable edges : (string * string * float) list;
  mutable messages : int;
  mutable bytes : int;
}

let create () = { peer_list = []; edges = []; messages = 0; bytes = 0 }

let add_peer t name =
  if not (List.mem name t.peer_list) then t.peer_list <- name :: t.peer_list

let connect t a b ~latency_ms =
  add_peer t a;
  add_peer t b;
  t.edges <- (a, b, latency_ms) :: t.edges

let peers t = List.sort String.compare t.peer_list

let of_topology topo ~names ~base_latency_ms =
  if List.length names < topo.Topology.n then
    invalid_arg "Network.of_topology: not enough names";
  let arr = Array.of_list names in
  let t = create () in
  Array.iter (add_peer t) (Array.sub arr 0 topo.Topology.n);
  List.iter
    (fun (a, b) -> connect t arr.(a) arr.(b) ~latency_ms:base_latency_ms)
    topo.Topology.edges;
  t

(* Dijkstra over the small peer graph. *)
let shortest t src =
  let dist = Hashtbl.create 16 in
  let hops = Hashtbl.create 16 in
  Hashtbl.replace dist src 0.0;
  Hashtbl.replace hops src 0;
  let visited = Hashtbl.create 16 in
  let neighbours p =
    List.filter_map
      (fun (a, b, l) ->
        if String.equal a p then Some (b, l)
        else if String.equal b p then Some (a, l)
        else None)
      t.edges
  in
  let rec loop () =
    (* Pick the unvisited peer with smallest tentative distance. *)
    let best =
      Hashtbl.fold
        (fun p d acc ->
          if Hashtbl.mem visited p then acc
          else
            match acc with
            | None -> Some (p, d)
            | Some (_, bd) -> if d < bd then Some (p, d) else acc)
        dist None
    in
    match best with
    | None -> ()
    | Some (p, d) ->
        Hashtbl.replace visited p ();
        List.iter
          (fun (q, l) ->
            let nd = d +. l in
            let better =
              match Hashtbl.find_opt dist q with
              | None -> true
              | Some old -> nd < old
            in
            if better then begin
              Hashtbl.replace dist q nd;
              Hashtbl.replace hops q (Hashtbl.find hops p + 1)
            end)
          (neighbours p);
        loop ()
  in
  loop ();
  (dist, hops)

let latency t a b =
  let dist, _ = shortest t a in
  Hashtbl.find_opt dist b

let hops t a b =
  let _, hops = shortest t a in
  Hashtbl.find_opt hops b

(* 1 KB costs 1 ms of transfer on top of propagation. *)
let transfer_ms size = float_of_int size /. 1024.0

let send t ~src ~dst ~size =
  match latency t src dst with
  | None -> invalid_arg (Printf.sprintf "Network.send: %s cannot reach %s" src dst)
  | Some l ->
      t.messages <- t.messages + 1;
      t.bytes <- t.bytes + size;
      l +. transfer_ms size

let broadcast t ~src ~size =
  let dist, _ = shortest t src in
  Hashtbl.fold
    (fun p l worst ->
      if String.equal p src then worst
      else begin
        t.messages <- t.messages + 1;
        t.bytes <- t.bytes + size;
        Float.max worst (l +. transfer_ms size)
      end)
    dist 0.0

let messages_sent t = t.messages
let bytes_sent t = t.bytes

let reset_counters t =
  t.messages <- 0;
  t.bytes <- 0
