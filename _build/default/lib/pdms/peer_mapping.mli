(** Semantic mappings between peers (Section 3.1.1). Two forms:
    definitional (datalog rules defining one peer's relation in terms of
    others — global-as-view flavoured) and GLAV inclusions/equalities
    between conjunctive queries over two peers' schemas. *)

type t =
  | Definitional of Cq.Query.t
      (** head over the target peer's relation, body over other peers' *)
  | Glav of Rewrite.Glav.t

val definitional : Cq.Query.t -> t
(** Raises [Invalid_argument] on unsafe rules. *)

val inclusion : lhs:Cq.Query.t -> rhs:Cq.Query.t -> t
(** [lhs ⊆ rhs]: the lhs (over the source peer) is contained in the rhs
    (over the target peer). *)

val equality : lhs:Cq.Query.t -> rhs:Cq.Query.t -> t

val peers_mentioned : t -> string list
(** Peer names occurring in qualified predicates, sorted. *)

val pp : Format.formatter -> t -> unit
