type workload = {
  view_name : string;
  query_freq : (string * float) list;
  update_rate : float;
  result_size : int;
}

type placement = (string * string list) list

let unreachable_penalty = 1.0e6

let replica_cost = 5.0
(* Maintenance cost per replica per unit update rate. *)

let cost network workloads placement =
  List.fold_left
    (fun total w ->
      let replicas =
        Option.value ~default:[] (List.assoc_opt w.view_name placement)
      in
      let query_cost =
        List.fold_left
          (fun acc (peer, freq) ->
            let best =
              List.fold_left
                (fun best replica ->
                  if String.equal replica peer then Some 0.0
                  else
                    match Network.latency network peer replica with
                    | None -> best
                    | Some l -> (
                        let c = l +. (float_of_int w.result_size /. 1024.0) in
                        match best with
                        | None -> Some c
                        | Some b -> Some (Float.min b c)))
                None replicas
            in
            let unit_cost =
              match best with Some c -> c | None -> unreachable_penalty
            in
            acc +. (freq *. unit_cost))
          0.0 w.query_freq
      in
      let maintenance =
        float_of_int (List.length replicas) *. w.update_rate *. replica_cost
      in
      total +. query_cost +. maintenance)
    0.0 workloads

let greedy network workloads ~initial ~max_replicas =
  let peers = Network.peers network in
  let rec improve placement =
    let current = cost network workloads placement in
    let candidates =
      List.concat_map
        (fun w ->
          let replicas =
            Option.value ~default:[] (List.assoc_opt w.view_name placement)
          in
          if List.length replicas >= max_replicas then []
          else
            List.filter_map
              (fun peer ->
                if List.mem peer replicas then None
                else
                  let placement' =
                    (w.view_name, peer :: replicas)
                    :: List.remove_assoc w.view_name placement
                  in
                  let c = cost network workloads placement' in
                  if c < current then Some (c, placement') else None)
              peers)
        workloads
    in
    match candidates with
    | [] -> placement
    | _ ->
        let _, best =
          List.fold_left
            (fun ((bc, _) as best) ((c, _) as cand) ->
              if c < bc then cand else best)
            (List.hd candidates) (List.tl candidates)
        in
        improve best
  in
  improve initial
