(** A Piazza peer: a name, a peer schema (logical relations others can
    query or map to), and locally stored relations (materialised source
    data). Peer-relation predicates are qualified as ["peer.rel"];
    stored-relation predicates as ["peer.rel!"]. *)

type t

val create : name:string -> schema:(string * string list) list -> t
(** [schema] lists (relation, attributes). *)

val name : t -> string
val schema : t -> (string * string list) list
val stored_db : t -> Relalg.Database.t

val pred : t -> string -> string
(** Qualified peer-relation predicate; raises [Invalid_argument] for a
    relation not in the schema. *)

val atom : t -> string -> Cq.Term.t list -> Cq.Atom.t
(** Convenience: an atom over a qualified peer relation (arity checked). *)

val add_stored : t -> rel:string -> attrs:string list -> Relalg.Relation.t
(** Declare a stored relation; its predicate is [name.rel!]. *)

val stored_pred : t -> string -> string
val stored_atom : t -> string -> Cq.Term.t list -> Cq.Atom.t
val stored_preds : t -> string list
