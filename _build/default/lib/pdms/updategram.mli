(** Updategrams (Section 3.1.2): "Piazza treats updates as first-class
    citizens, as any other data source" — a batch of inserts and deletes
    against one relation that can be shipped, composed, and applied to
    views incrementally. *)

type t = {
  rel : string;
  inserts : Relalg.Relation.tuple list;
  deletes : Relalg.Relation.tuple list;
}

val make :
  rel:string ->
  ?inserts:Relalg.Relation.tuple list ->
  ?deletes:Relalg.Relation.tuple list ->
  unit ->
  t

val of_log : Storage.Relation_store.event list -> t list
(** Fold a change log into one updategram per relation (insert-then-
    delete of the same tuple cancels). *)

val apply : Relalg.Database.t -> t -> unit
(** Deletes first, then distinct inserts. Missing relation raises
    [Not_found]. *)

val compose : t -> t -> t
(** Sequential composition (same relation required): the right operand
    happens after the left. *)

val size : t -> int
val is_empty : t -> bool
