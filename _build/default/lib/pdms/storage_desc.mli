(** Storage descriptions relate a peer's stored relations to its peer
    schema: [R = Q(peer relations)] or [R ⊆ Q] (Section 3.1). For
    reformulation they act as LAV views: the stored relation is a view
    over the peer relations. *)

type kind = Exact | Containment

type t = { kind : kind; view : Cq.Query.t }
(** [view]'s head predicate is the stored relation; its body ranges over
    peer relations. *)

val make : kind -> Cq.Query.t -> t
(** Raises [Invalid_argument] on unsafe views. *)

val identity : Peer.t -> rel:string -> t
(** The common case: the peer stores relation [rel] exactly as declared
    in its schema — [peer.rel! = peer.rel(x̄)]. The stored relation must
    already have been declared via {!Peer.add_stored}. *)

val stored_pred : t -> string
val pp : Format.formatter -> t -> unit
