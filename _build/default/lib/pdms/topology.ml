type kind = Chain | Star | Binary_tree | Ring | Mesh of int | Small_world

type t = { kind : kind; n : int; edges : (int * int) list }

let dedupe_edges edges =
  List.sort_uniq compare
    (List.filter_map
       (fun (a, b) ->
         if a = b then None else if a < b then Some (a, b) else Some (b, a))
       edges)

let generate ?prng kind ~n =
  if n < 2 then invalid_arg "Topology.generate: need at least 2 peers";
  let need_prng () =
    match prng with
    | Some p -> p
    | None -> invalid_arg "Topology.generate: this kind needs ~prng"
  in
  let chain = List.init (n - 1) (fun i -> (i, i + 1)) in
  let edges =
    match kind with
    | Chain -> chain
    | Star -> List.init (n - 1) (fun i -> (0, i + 1))
    | Binary_tree -> List.init (n - 1) (fun i -> ((i + 1 - 1) / 2, i + 1))
    | Ring -> (n - 1, 0) :: chain
    | Mesh d ->
        let prng = need_prng () in
        let extra =
          List.concat_map
            (fun i ->
              List.init d (fun _ -> (i, Util.Prng.int prng n)))
            (List.init n Fun.id)
        in
        chain @ extra
    | Small_world ->
        let prng = need_prng () in
        let chords =
          List.init (max 1 (n / 4)) (fun _ ->
              (Util.Prng.int prng n, Util.Prng.int prng n))
        in
        ((n - 1, 0) :: chain) @ chords
  in
  { kind; n; edges = dedupe_edges edges }

let edge_count t = List.length t.edges

let diameter t =
  let adj = Array.make t.n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    t.edges;
  let bfs src =
    let dist = Array.make t.n (-1) in
    dist.(src) <- 0;
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v queue
          end)
        adj.(u)
    done;
    Array.fold_left max 0 dist
  in
  List.fold_left max 0 (List.init t.n bfs)

let kind_name = function
  | Chain -> "chain"
  | Star -> "star"
  | Binary_tree -> "tree"
  | Ring -> "ring"
  | Mesh d -> Printf.sprintf "mesh%d" d
  | Small_world -> "smallworld"
