let create () =
  let token_counts : (string, Util.Counter.t) Hashtbl.t = Hashtbl.create 16 in
  let label_docs = Util.Counter.create () in
  let vocab : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let labels = ref [] in
  let train examples =
    Hashtbl.reset token_counts;
    Hashtbl.reset vocab;
    labels := Learner.labels_of_examples examples;
    List.iter
      (fun (e : Learner.example) ->
        Util.Counter.add label_docs e.Learner.label;
        let counter =
          match Hashtbl.find_opt token_counts e.Learner.label with
          | Some c -> c
          | None ->
              let c = Util.Counter.create () in
              Hashtbl.replace token_counts e.Learner.label c;
              c
        in
        List.iter
          (fun tok ->
            Util.Counter.add counter tok;
            Hashtbl.replace vocab tok ())
          (Column.value_tokens e.Learner.column))
      examples
  in
  let predict (column : Column.t) =
    let tokens = Column.value_tokens column in
    match (tokens, !labels) with
    | [], _ | _, [] -> List.map (fun l -> (l, 0.0)) !labels
    | _ ->
        let v = float_of_int (max 1 (Hashtbl.length vocab)) in
        let log_posteriors =
          List.map
            (fun label ->
              let counter = Hashtbl.find_opt token_counts label in
              let total =
                match counter with Some c -> Util.Counter.total c | None -> 0.0
              in
              let log_prior =
                log ((Util.Counter.count label_docs label +. 1.0)
                    /. (Util.Counter.total label_docs +. v))
              in
              let ll =
                List.fold_left
                  (fun acc tok ->
                    let count =
                      match counter with
                      | Some c -> Util.Counter.count c tok
                      | None -> 0.0
                    in
                    acc +. log ((count +. 1.0) /. (total +. v)))
                  log_prior tokens
              in
              (label, ll))
            !labels
        in
        (* Softmax for numerical stability. *)
        let max_ll =
          List.fold_left (fun acc (_, ll) -> Float.max acc ll) neg_infinity
            log_posteriors
        in
        let exps = List.map (fun (l, ll) -> (l, exp (ll -. max_ll))) log_posteriors in
        let z = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 exps in
        List.map (fun (l, e) -> (l, if z > 0.0 then e /. z else 0.0)) exps
  in
  { Learner.learner_name = "naive-bayes"; train; predict }
