(** The MatchingAdvisor (Section 4.3.2): match two {e previously unseen}
    schemas S1 and S2 with the corpus as the domain expert. Two methods,
    both from the paper:

    - {b classifier correlation}: apply the corpus-trained classifiers to
      the elements of both schemas and hypothesise s1 ~ s2 when the
      classifiers make correlated predictions;
    - {b pivot}: find the corpus schemas most similar to S1 and S2 and
      reuse a known corpus mapping between them. *)

type t

val build : ?synonyms:Util.Synonyms.t -> Corpus.Corpus_store.t -> t
(** Train per-concept classifiers over the corpus; concepts are the
    canonicalised attribute names of the corpus. *)

val concepts : t -> string list

val concept_vector : t -> Column.t -> Learner.prediction
(** The column's prediction profile over corpus concepts. *)

val match_schemas :
  ?threshold:float ->
  t ->
  Corpus.Schema_model.t ->
  Corpus.Schema_model.t ->
  (Column.t * Column.t * float) list
(** Classifier-correlation matching: one-to-one pairs (s1 column, s2
    column, correlation), best first. *)

val match_via_pivot :
  t ->
  corpus:Corpus.Corpus_store.t ->
  Corpus.Schema_model.t ->
  Corpus.Schema_model.t ->
  (Column.t * Column.t) list
(** Pivot through the closest corpus schemas and their known mapping;
    empty when no usable corpus mapping exists. *)
