type t = {
  base : Learner.t list;
  meta : Meta_learner.t;
  labels : string list;
}

let make_base synonyms =
  [ Name_learner.create ~synonyms ();
    Naive_bayes.create ();
    Format_learner.create ();
    Structure_learner.create ~synonyms () ]

let train ?(synonyms = Util.Synonyms.university_domain) ~examples () =
  (* Stacking with a held-out split: base learners trained on one half
     predict the other half, and those out-of-sample predictions fit the
     meta weights — otherwise a memorising learner (naive Bayes) looks
     perfect on its own training data and gets overweighted. *)
  let half_a, half_b =
    List.partition
      (fun (e : Learner.example) ->
        Hashtbl.hash e.Learner.column.Column.schema_name land 1 = 0)
      examples
  in
  let meta =
    if half_a = [] || half_b = [] then begin
      let base = make_base synonyms in
      List.iter (fun (l : Learner.t) -> l.Learner.train examples) base;
      Meta_learner.train base examples
    end
    else begin
      let holdout_base = make_base synonyms in
      List.iter (fun (l : Learner.t) -> l.Learner.train half_a) holdout_base;
      Meta_learner.train holdout_base half_b
    end
  in
  (* The deployed base learners see all the training data. *)
  let base = make_base synonyms in
  List.iter (fun (l : Learner.t) -> l.Learner.train examples) base;
  let labels = Learner.labels_of_examples examples in
  let meta = Meta_learner.retarget meta ~learners:base ~labels in
  { base; meta; labels }

let mediated_labels t = t.labels
let learner_weights t = Meta_learner.weights t.meta

let predict_column t column = Meta_learner.predict t.meta column

let predict_column_with t ~only column =
  let learners =
    List.filter
      (fun (l : Learner.t) -> List.mem l.Learner.learner_name only)
      t.base
  in
  Meta_learner.predict_single t.meta learners column

let match_schema ?threshold ?one_to_one ?only t schema =
  let predict =
    match only with
    | None -> predict_column t
    | Some only -> predict_column_with t ~only
  in
  let predictions =
    List.map (fun col -> (col, predict col)) (Column.of_schema schema)
  in
  Constraint_handler.assign ?threshold ?one_to_one predictions

let examples_of_schema ~mapping schema =
  List.filter_map
    (fun col ->
      match List.assoc_opt (Column.key col) mapping with
      | Some label -> Some { Learner.column = col; label }
      | None -> None)
    (Column.of_schema schema)
