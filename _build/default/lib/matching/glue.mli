(** GLUE-style taxonomy matching (the paper's reference [14], "Learning
    to map between ontologies on the semantic web") — the ontology half
    of the MatchingAdvisor.

    The method: train a text classifier per concept of each taxonomy,
    use it to classify the {e other} taxonomy's instances, derive joint
    probability estimates P(A, B) from the cross-classification counts,
    score candidate pairs with the Jaccard similarity
    P(A ∧ B) / P(A ∨ B), and refine with relaxation labeling: a pair
    whose parents also match gets boosted, iterated to stability. *)

type similarity = {
  concept_a : string;
  concept_b : string;
  jaccard : float;  (** the raw instance-based similarity *)
  relaxed : float;  (** after relaxation labeling *)
}

val similarities : Taxonomy.t -> Taxonomy.t -> similarity list
(** All concept pairs with positive raw similarity, best relaxed score
    first. *)

val match_taxonomies :
  ?threshold:float -> Taxonomy.t -> Taxonomy.t -> (string * string) list
(** One-to-one greedy assignment on the relaxed scores (default
    threshold 0.05). *)
