let assign ?(threshold = 0.05) ?(one_to_one = true) predictions =
  if not one_to_one then
    List.map
      (fun (col, pred) ->
        match Learner.best pred with
        | Some (label, score) when score >= threshold -> (col, Some label)
        | Some _ | None -> (col, None))
      predictions
  else begin
    (* Greedy: repeatedly take the globally best (column, label) pair. *)
    let assigned : (Column.t * string) list ref = ref [] in
    let used_labels = ref [] in
    let remaining = ref predictions in
    let rec loop () =
      let best =
        List.fold_left
          (fun best (col, pred) ->
            List.fold_left
              (fun best (label, score) ->
                if score < threshold || List.mem label !used_labels then best
                else
                  match best with
                  | None -> Some (col, label, score)
                  | Some (_, _, s) -> if score > s then Some (col, label, score) else best)
              best pred)
          None !remaining
      in
      match best with
      | None -> ()
      | Some (col, label, _) ->
          assigned := (col, label) :: !assigned;
          used_labels := label :: !used_labels;
          remaining := List.filter (fun (c, _) -> c != col) !remaining;
          loop ()
    in
    loop ();
    List.map
      (fun (col, _) ->
        match List.find_opt (fun (c, _) -> c == col) !assigned with
        | Some (_, label) -> (col, Some label)
        | None -> (col, None))
      predictions
  end
