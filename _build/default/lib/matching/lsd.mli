(** The LSD pipeline (Doan, Domingos, Halevy, SIGMOD'01 — Section 4.3.2
    of the paper): manually mapped sources train per-mediated-element
    classifiers; new sources are then matched automatically. The paper
    reports "matching accuracies in the 70%-90% range", which bench E4
    reproduces. *)

type t

val train :
  ?synonyms:Util.Synonyms.t -> examples:Learner.example list -> unit -> t
(** Trains all four base learners plus the stacking meta-learner. *)

val mediated_labels : t -> string list
val learner_weights : t -> (string * float) list

val predict_column : t -> Column.t -> Learner.prediction
(** Meta-learner scores per mediated label. *)

val predict_column_with : t -> only:string list -> Column.t -> Learner.prediction
(** Ablation: restrict to the named base learners. *)

val match_schema :
  ?threshold:float ->
  ?one_to_one:bool ->
  ?only:string list ->
  t ->
  Corpus.Schema_model.t ->
  (Column.t * string option) list
(** Match every column of the schema to a mediated label (or none). *)

val examples_of_schema :
  mapping:((string * string) * string) list ->
  Corpus.Schema_model.t ->
  Learner.example list
(** Build training examples from a schema plus a ground-truth mapping of
    (rel, attr) to mediated label. Unmapped columns are skipped. *)
