type prediction = (string * float) list

type example = { column : Column.t; label : string }

type t = {
  learner_name : string;
  train : example list -> unit;
  predict : Column.t -> prediction;
}

let score_of prediction label =
  Option.value ~default:0.0 (List.assoc_opt label prediction)

let best prediction =
  List.fold_left
    (fun best (label, score) ->
      match best with
      | None -> Some (label, score)
      | Some (_, s) -> if score > s then Some (label, score) else best)
    None prediction

let normalize prediction =
  match best prediction with
  | Some (_, m) when m > 0.0 ->
      List.map (fun (l, s) -> (l, s /. m)) prediction
  | Some _ | None -> prediction

let labels_of_examples examples =
  List.fold_left
    (fun acc e -> if List.mem e.label acc then acc else e.label :: acc)
    [] examples
  |> List.rev
