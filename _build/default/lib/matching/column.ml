type t = {
  schema_name : string;
  rel : string;
  attr : string;
  context : string list;
  values : string list;
}

let of_schema (s : Corpus.Schema_model.t) =
  List.concat_map
    (fun (r : Corpus.Schema_model.relation) ->
      let names =
        List.map
          (fun (a : Corpus.Schema_model.attribute) -> a.Corpus.Schema_model.attr_name)
          r.Corpus.Schema_model.attributes
      in
      List.map
        (fun (a : Corpus.Schema_model.attribute) ->
          {
            schema_name = s.Corpus.Schema_model.schema_name;
            rel = r.Corpus.Schema_model.rel_name;
            attr = a.Corpus.Schema_model.attr_name;
            context =
              List.filter
                (fun n -> not (String.equal n a.Corpus.Schema_model.attr_name))
                names;
            values = a.Corpus.Schema_model.sample_values;
          })
        r.Corpus.Schema_model.attributes)
    s.Corpus.Schema_model.relations

let key t = (t.rel, t.attr)

let canon_tokens synonyms s =
  Util.Tokenize.split_identifier s
  |> List.map (Util.Synonyms.canonical synonyms)
  |> List.map Util.Stemmer.stem

let name_tokens ?(synonyms = Util.Synonyms.university_domain) t =
  canon_tokens synonyms t.attr

let value_tokens ?(limit = 50) t =
  t.values
  |> List.filteri (fun i _ -> i < limit)
  |> List.concat_map Util.Tokenize.words
  |> List.map Util.Stemmer.stem

let context_tokens ?(synonyms = Util.Synonyms.university_domain) t =
  List.concat_map (canon_tokens synonyms) t.context

let pp fmt t = Format.fprintf fmt "%s.%s.%s" t.schema_name t.rel t.attr
