lib/matching/meta_learner.ml: Array Column Float Learner List String
