lib/matching/corpus_matcher.ml: Column Corpus Float Learner List Lsd String Util
