lib/matching/format_learner.ml: Buffer Column Hashtbl Learner List Option String Util
