lib/matching/column.ml: Corpus Format List String Util
