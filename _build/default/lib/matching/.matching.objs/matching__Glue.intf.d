lib/matching/glue.mli: Taxonomy
