lib/matching/name_learner.ml: Column Float Hashtbl Learner List Option String Util
