lib/matching/lsd.ml: Column Constraint_handler Format_learner Hashtbl Learner List Meta_learner Naive_bayes Name_learner Structure_learner Util
