lib/matching/evaluate.ml: Column Format List Option String
