lib/matching/corpus_matcher.mli: Column Corpus Learner Util
