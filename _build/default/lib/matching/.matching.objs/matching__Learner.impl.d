lib/matching/learner.ml: Column List Option
