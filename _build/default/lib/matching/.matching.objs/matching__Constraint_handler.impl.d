lib/matching/constraint_handler.ml: Column Learner List
