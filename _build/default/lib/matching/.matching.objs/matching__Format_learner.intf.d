lib/matching/format_learner.mli: Learner
