lib/matching/learner.mli: Column
