lib/matching/naive_bayes.mli: Learner
