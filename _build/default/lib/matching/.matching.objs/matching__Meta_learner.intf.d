lib/matching/meta_learner.mli: Column Learner
