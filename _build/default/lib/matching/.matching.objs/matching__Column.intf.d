lib/matching/column.mli: Corpus Format Util
