lib/matching/glue.ml: Float Hashtbl List Option String Taxonomy Util
