lib/matching/taxonomy.ml: List Option String
