lib/matching/structure_learner.mli: Learner Util
