lib/matching/structure_learner.ml: Column Hashtbl Learner List Option Util
