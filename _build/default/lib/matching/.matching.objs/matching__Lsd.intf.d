lib/matching/lsd.mli: Column Corpus Learner Util
