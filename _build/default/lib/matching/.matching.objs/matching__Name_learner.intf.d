lib/matching/name_learner.mli: Learner Util
