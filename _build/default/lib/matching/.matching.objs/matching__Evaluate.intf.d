lib/matching/evaluate.mli: Column Format
