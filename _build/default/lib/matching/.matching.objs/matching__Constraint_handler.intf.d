lib/matching/constraint_handler.mli: Column Learner
