lib/matching/naive_bayes.ml: Column Float Hashtbl Learner List Util
