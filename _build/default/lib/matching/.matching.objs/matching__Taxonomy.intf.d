lib/matching/taxonomy.mli:
