(** Naive-Bayes data-content learner: classifies a column by the tokens
    of its data values (LSD's content learner). Laplace-smoothed
    multinomial model; prediction scores are normalised posteriors. *)

val create : unit -> Learner.t
