type t = {
  learners : Learner.t list;
  w : float array;
  labels : string list;
}

(* Least squares with non-negativity projection. Features: per training
   (column, candidate label) pair, the base learners' scores; target 1
   for the correct label, 0 otherwise. *)
let fit features targets k =
  let w = Array.make k (1.0 /. float_of_int k) in
  let n = List.length features in
  if n = 0 then w
  else begin
    let lr = 0.5 /. float_of_int n in
    for _ = 1 to 300 do
      let grad = Array.make k 0.0 in
      List.iter2
        (fun x y ->
          let pred = ref 0.0 in
          Array.iteri (fun i xi -> pred := !pred +. (w.(i) *. xi)) x;
          let err = !pred -. y in
          Array.iteri (fun i xi -> grad.(i) <- grad.(i) +. (err *. xi)) x)
        features targets;
      Array.iteri (fun i g -> w.(i) <- Float.max 0.0 (w.(i) -. (lr *. g))) grad
    done;
    (* Guard against the degenerate all-zero solution. *)
    if Array.for_all (fun x -> x <= 1e-9) w then
      Array.fill w 0 k (1.0 /. float_of_int k);
    w
  end

let train learners examples =
  let labels = Learner.labels_of_examples examples in
  let features = ref [] and targets = ref [] in
  List.iter
    (fun (e : Learner.example) ->
      let predictions =
        List.map
          (fun (l : Learner.t) -> Learner.normalize (l.Learner.predict e.Learner.column))
          learners
      in
      List.iter
        (fun label ->
          let x =
            Array.of_list
              (List.map (fun p -> Learner.score_of p label) predictions)
          in
          let y = if String.equal label e.Learner.label then 1.0 else 0.0 in
          features := x :: !features;
          targets := y :: !targets)
        labels)
    examples;
  let w = fit !features !targets (List.length learners) in
  { learners; w; labels }

let weights t =
  let total = Array.fold_left ( +. ) 0.0 t.w in
  List.mapi
    (fun i (l : Learner.t) ->
      (l.Learner.learner_name, if total > 0.0 then t.w.(i) /. total else 0.0))
    t.learners

let predict_with t learners (column : Column.t) =
  let predictions =
    List.map
      (fun (l : Learner.t) -> Learner.normalize (l.Learner.predict column))
      learners
  in
  let weight_of name =
    let rec go i = function
      | [] -> 0.0
      | (l : Learner.t) :: rest ->
          if String.equal l.Learner.learner_name name then t.w.(i)
          else go (i + 1) rest
    in
    go 0 t.learners
  in
  List.map
    (fun label ->
      let score =
        List.fold_left2
          (fun acc (l : Learner.t) p ->
            acc +. (weight_of l.Learner.learner_name *. Learner.score_of p label))
          0.0 learners predictions
      in
      (label, score))
    t.labels

let predict t column = predict_with t t.learners column
let predict_single t learners column = predict_with t learners column

let retarget t ~learners ~labels =
  if List.length learners <> List.length t.learners then
    invalid_arg "Meta_learner.retarget: learner count mismatch";
  { t with learners; labels }
