type similarity = {
  concept_a : string;
  concept_b : string;
  jaccard : float;
  relaxed : float;
}

let tokens text = List.map Util.Stemmer.stem (Util.Tokenize.words text)

(* A naive-Bayes text classifier over a taxonomy's concepts, trained on
   each concept's extension (own + descendant instances). *)
let train_classifier taxonomy =
  let concepts = Taxonomy.concepts taxonomy in
  let counters =
    List.map
      (fun name ->
        let counter = Util.Counter.create () in
        let node = Option.get (Taxonomy.find taxonomy name) in
        List.iter
          (fun instance -> List.iter (Util.Counter.add counter) (tokens instance))
          (Taxonomy.all_instances node);
        (name, counter))
      concepts
  in
  let vocab =
    List.fold_left
      (fun acc (_, c) -> acc + Util.Counter.distinct c)
      1 counters
  in
  fun instance ->
    (* Most likely concept for the instance, by smoothed log-likelihood;
       concepts with empty extensions are skipped. *)
    let toks = tokens instance in
    List.fold_left
      (fun best (name, counter) ->
        if Util.Counter.total counter <= 0.0 then best
        else
          let ll =
            List.fold_left
              (fun acc tok ->
                acc
                +. log
                     ((Util.Counter.count counter tok +. 1.0)
                     /. (Util.Counter.total counter +. float_of_int vocab)))
              0.0 toks
          in
          match best with
          | Some (_, best_ll) when best_ll >= ll -> best
          | Some _ | None -> Some (name, ll))
      None counters
    |> Option.map fst

(* Is [name] equal to or a descendant of [ancestor]? *)
let within taxonomy ~ancestor name =
  match Taxonomy.find taxonomy ancestor with
  | None -> false
  | Some node -> List.mem name (Taxonomy.concepts node)

let jaccard_matrix ta tb =
  let classify_a = train_classifier ta and classify_b = train_classifier tb in
  (* Every instance with: its home concept and its predicted concept in
     the other taxonomy. *)
  let labelled_a =
    List.concat_map
      (fun concept ->
        let node = Option.get (Taxonomy.find ta concept) in
        List.filter_map
          (fun inst ->
            Option.map (fun p -> (concept, p)) (classify_b inst))
          node.Taxonomy.instances)
      (Taxonomy.concepts ta)
  in
  let labelled_b =
    List.concat_map
      (fun concept ->
        let node = Option.get (Taxonomy.find tb concept) in
        List.filter_map
          (fun inst ->
            Option.map (fun p -> (p, concept)) (classify_a inst))
          node.Taxonomy.instances)
      (Taxonomy.concepts tb)
  in
  let universe = labelled_a @ labelled_b in
  let total = float_of_int (List.length universe) in
  if total <= 0.0 then []
  else
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            (* Membership is hierarchical: an instance labelled with a
               descendant concept belongs to the ancestor too. *)
            let in_a (ca, _) = within ta ~ancestor:a ca in
            let in_b (_, cb) = within tb ~ancestor:b cb in
            let joint =
              float_of_int (List.length (List.filter (fun u -> in_a u && in_b u) universe))
            in
            let either =
              float_of_int (List.length (List.filter (fun u -> in_a u || in_b u) universe))
            in
            if either <= 0.0 || joint <= 0.0 then None
            else Some ((a, b), joint /. either))
          (Taxonomy.concepts tb))
      (Taxonomy.concepts ta)

(* Relaxation labeling, simplified to its core: a pair gains weight when
   the parents are each other's current best match (neighbourhood
   agreement), and loses a little when they are not. *)
let relax ta tb raw =
  let score = Hashtbl.create 64 in
  List.iter (fun (pair, s) -> Hashtbl.replace score pair s) raw;
  let get pair = Option.value ~default:0.0 (Hashtbl.find_opt score pair) in
  let best_for_a a =
    List.fold_left
      (fun best ((a', b), _) ->
        if not (String.equal a' a) then best
        else
          match best with
          | Some (_, s) when s >= get (a, b) -> best
          | Some _ | None -> Some (b, get (a, b)))
      None raw
    |> Option.map fst
  in
  for _ = 1 to 3 do
    List.iter
      (fun ((a, b), _) ->
        let boost =
          match (Taxonomy.parent_of ta a, Taxonomy.parent_of tb b) with
          | Some pa, Some pb ->
              if best_for_a pa = Some pb then 0.15
              else if get (pa, pb) > 0.0 then 0.05
              else -0.02
          | None, None -> 0.1 (* both roots *)
          | Some _, None | None, Some _ -> -0.02
        in
        Hashtbl.replace score (a, b)
          (Float.min 1.0 (Float.max 0.0 (get (a, b) +. boost))))
      raw
  done;
  List.map (fun (pair, _) -> (pair, get pair)) raw

let similarities ta tb =
  let raw = jaccard_matrix ta tb in
  let relaxed = relax ta tb raw in
  List.map2
    (fun ((a, b), j) ((_, _), r) ->
      { concept_a = a; concept_b = b; jaccard = j; relaxed = r })
    raw relaxed
  |> List.sort (fun x y ->
         match Float.compare y.relaxed x.relaxed with
         | 0 -> compare (x.concept_a, x.concept_b) (y.concept_a, y.concept_b)
         | c -> c)

let match_taxonomies ?(threshold = 0.05) ta tb =
  let sims = similarities ta tb in
  let used_a = ref [] and used_b = ref [] in
  List.filter_map
    (fun s ->
      if
        s.relaxed < threshold
        || List.mem s.concept_a !used_a
        || List.mem s.concept_b !used_b
      then None
      else begin
        used_a := s.concept_a :: !used_a;
        used_b := s.concept_b :: !used_b;
        Some (s.concept_a, s.concept_b)
      end)
    sims
