type t = { concept : string; instances : string list; children : t list }

let rec concepts t = t.concept :: List.concat_map concepts t.children

let make ?(instances = []) concept children =
  let node = { concept; instances; children } in
  let names = concepts node in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Taxonomy.make: duplicate concept names";
  node

let rec find t name =
  if String.equal t.concept name then Some t
  else List.find_map (fun c -> find c name) t.children

let rec all_instances t =
  t.instances @ List.concat_map all_instances t.children

let parent_of t name =
  (* [search] returns [Some parent] when the concept is found. *)
  let rec search parent node =
    if String.equal node.concept name then Some parent
    else List.find_map (search (Some node.concept)) node.children
  in
  Option.join (search None t)

let rec leaves t =
  match t.children with
  | [] -> [ t.concept ]
  | cs -> List.concat_map leaves cs

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 t.children
