(** Scoring matchers against ground truth. *)

type correspondence = {
  src : string * string;  (** (rel, attr) in the source schema *)
  dst : string;  (** mediated label, or target (rel.attr) rendered *)
}

type scores = {
  precision : float;
  recall : float;
  f1 : float;
  accuracy : float;
      (** fraction of ground-truth source columns assigned their correct
          target — LSD's "matching accuracy" *)
}

val score : predicted:correspondence list -> truth:correspondence list -> scores

val of_assignment :
  (Column.t * string option) list -> correspondence list
(** Drop unassigned columns. *)

val pp_scores : Format.formatter -> scores -> unit
