(** The common interface of LSD's base learners: train on labelled
    columns, then predict a score per mediated-schema label for an
    unseen column (the "multi-strategy learning" of Section 4.3.2). *)

type prediction = (string * float) list
(** label -> score; scores in [0, 1], not necessarily summing to 1. *)

type example = { column : Column.t; label : string }

type t = {
  learner_name : string;
  train : example list -> unit;
  predict : Column.t -> prediction;
}

val score_of : prediction -> string -> float
val best : prediction -> (string * float) option

val normalize : prediction -> prediction
(** Scale so the maximum score is 1 (no-op when all scores are 0). *)

val labels_of_examples : example list -> string list
