(** Concept taxonomies — the ontologies GLUE matches (Doan, Madhavan,
    Domingos, Halevy, WWW'02, cited as [14] by the paper). A taxonomy is
    a tree of named concepts, each carrying text instances. *)

type t = {
  concept : string;
  instances : string list;  (** text instances filed directly here *)
  children : t list;
}

val make : ?instances:string list -> string -> t list -> t

val concepts : t -> string list
(** All concept names, preorder. Raises [Invalid_argument] at
    construction time on duplicates — see {!make}. *)

val find : t -> string -> t option

val all_instances : t -> string list
(** Instances of the concept and all its descendants (the extension). *)

val parent_of : t -> string -> string option
val leaves : t -> string list
val size : t -> int
