(** The unit the matcher classifies: one attribute of one relation,
    together with its data values and its structural context (sibling
    attribute names) — the inputs LSD's base learners consume. *)

type t = {
  schema_name : string;
  rel : string;
  attr : string;
  context : string list;  (** sibling attribute names *)
  values : string list;  (** sample data values *)
}

val of_schema : Corpus.Schema_model.t -> t list

val key : t -> string * string
(** (relation, attribute) — identifies the column within its schema. *)

val name_tokens : ?synonyms:Util.Synonyms.t -> t -> string list
(** Stemmed, synonym-canonicalised tokens of the attribute name. *)

val value_tokens : ?limit:int -> t -> string list
(** Stemmed tokens drawn from the first [limit] values (default 50). *)

val context_tokens : ?synonyms:Util.Synonyms.t -> t -> string list
val pp : Format.formatter -> t -> unit
