type correspondence = { src : string * string; dst : string }

type scores = {
  precision : float;
  recall : float;
  f1 : float;
  accuracy : float;
}

let score ~predicted ~truth =
  let correct =
    List.length
      (List.filter
         (fun p ->
           List.exists (fun t -> p.src = t.src && String.equal p.dst t.dst) truth)
         predicted)
  in
  let np = List.length predicted and nt = List.length truth in
  let precision = if np = 0 then 0.0 else float_of_int correct /. float_of_int np in
  let recall = if nt = 0 then 0.0 else float_of_int correct /. float_of_int nt in
  let f1 =
    if precision +. recall <= 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  (* LSD accuracy: among ground-truth columns, how many got the right
     label (an unassigned or wrongly assigned column counts against). *)
  { precision; recall; f1; accuracy = recall }

let of_assignment assignment =
  List.filter_map
    (fun (col, label) ->
      Option.map (fun dst -> { src = Column.key col; dst }) label)
    assignment

let pp_scores fmt s =
  Format.fprintf fmt "P=%.3f R=%.3f F1=%.3f acc=%.3f" s.precision s.recall s.f1
    s.accuracy
