let pattern_of value =
  let classify c =
    if c >= '0' && c <= '9' then '9'
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then 'a'
    else c
  in
  let buf = Buffer.create (String.length value) in
  String.iter
    (fun c ->
      let k = classify c in
      let last =
        if Buffer.length buf > 0 then Some (Buffer.nth buf (Buffer.length buf - 1))
        else None
      in
      (* Compress runs of the same class. *)
      if last <> Some k || (k <> '9' && k <> 'a') then Buffer.add_char buf k)
    value;
  Buffer.contents buf

(* L2-normalised pattern frequency vector, so dot products are true
   cosines in [0, 1]. *)
let distribution values =
  let counter = Util.Counter.create () in
  List.iter (fun v -> Util.Counter.add counter (pattern_of v)) values;
  let items = Util.Counter.items counter in
  let norm = sqrt (List.fold_left (fun acc (_, c) -> acc +. (c *. c)) 0.0 items) in
  if norm <= 0.0 then [] else List.map (fun (p, c) -> (p, c /. norm)) items

let create () =
  let profiles : (string, (string * float) list) Hashtbl.t = Hashtbl.create 16 in
  let labels = ref [] in
  let train examples =
    Hashtbl.reset profiles;
    labels := Learner.labels_of_examples examples;
    let grouped : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (e : Learner.example) ->
        let values =
          match Hashtbl.find_opt grouped e.Learner.label with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.replace grouped e.Learner.label r;
              r
        in
        values := e.Learner.column.Column.values @ !values)
      examples;
    Hashtbl.iter
      (fun label values -> Hashtbl.replace profiles label (distribution !values))
      grouped
  in
  let predict (column : Column.t) =
    let d = distribution column.Column.values in
    List.map
      (fun label ->
        let profile = Option.value ~default:[] (Hashtbl.find_opt profiles label) in
        (label, Util.Tfidf.cosine d profile))
      !labels
  in
  { Learner.learner_name = "format"; train; predict }
