let l2_items counter =
  let items = Util.Counter.items counter in
  let norm = sqrt (List.fold_left (fun acc (_, c) -> acc +. (c *. c)) 0.0 items) in
  if norm <= 0.0 then [] else List.map (fun (k, c) -> (k, c /. norm)) items

let create ?(synonyms = Util.Synonyms.university_domain) () =
  let profiles : (string, (string * float) list) Hashtbl.t = Hashtbl.create 16 in
  let labels = ref [] in
  let train examples =
    Hashtbl.reset profiles;
    labels := Learner.labels_of_examples examples;
    let grouped : (string, Util.Counter.t) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (e : Learner.example) ->
        let counter =
          match Hashtbl.find_opt grouped e.Learner.label with
          | Some c -> c
          | None ->
              let c = Util.Counter.create () in
              Hashtbl.replace grouped e.Learner.label c;
              c
        in
        List.iter (Util.Counter.add counter)
          (Column.context_tokens ~synonyms e.Learner.column))
      examples;
    Hashtbl.iter (fun label c -> Hashtbl.replace profiles label (l2_items c)) grouped
  in
  let predict (column : Column.t) =
    let counter = Util.Counter.create () in
    List.iter (Util.Counter.add counter) (Column.context_tokens ~synonyms column);
    let vec = l2_items counter in
    List.map
      (fun label ->
        let profile = Option.value ~default:[] (Hashtbl.find_opt profiles label) in
        (label, Util.Tfidf.cosine vec profile))
      !labels
  in
  { Learner.learner_name = "structure"; train; predict }
