let name_sim synonyms a b =
  let canon s =
    Util.Tokenize.split_identifier s
    |> List.map (Util.Synonyms.canonical synonyms)
    |> List.map Util.Stemmer.stem
  in
  let ta = canon a and tb = canon b in
  (0.6 *. Util.Strdist.jaccard ta tb)
  +. (0.3 *. Util.Strdist.ngram_sim (String.concat "_" ta) (String.concat "_" tb))
  +. (0.1 *. Util.Strdist.levenshtein_sim a b)

let create ?(synonyms = Util.Synonyms.university_domain) () =
  (* label -> alias names seen in training *)
  let aliases : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let labels = ref [] in
  let train examples =
    Hashtbl.reset aliases;
    labels := Learner.labels_of_examples examples;
    List.iter
      (fun (e : Learner.example) ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt aliases e.Learner.label) in
        let name = e.Learner.column.Column.attr in
        if not (List.mem name existing) then
          Hashtbl.replace aliases e.Learner.label (name :: existing))
      examples
  in
  let predict (column : Column.t) =
    List.map
      (fun label ->
        let candidates =
          label :: Option.value ~default:[] (Hashtbl.find_opt aliases label)
        in
        let score =
          List.fold_left
            (fun acc cand -> Float.max acc (name_sim synonyms column.Column.attr cand))
            0.0 candidates
        in
        (label, score))
      !labels
  in
  { Learner.learner_name = "name"; train; predict }
