(** LSD's constraint handler, reduced to the workhorse constraint:
    one-to-one assignment between source columns and mediated labels,
    with a confidence threshold. Greedy global-best matching. *)

val assign :
  ?threshold:float ->
  ?one_to_one:bool ->
  (Column.t * Learner.prediction) list ->
  (Column.t * string option) list
(** Default threshold 0.05, one_to_one true. Input order preserved. *)
