(** Structure learner: classifies by the column's context — "proximity
    of attributes, structure of the schema" (Section 4.3.2). A label's
    profile is the distribution of sibling-attribute tokens observed in
    training. *)

val create : ?synonyms:Util.Synonyms.t -> unit -> Learner.t
