(** LSD's meta-learner: stacking. Base-learner scores become features;
    non-negative weights are fit by projected gradient descent on a
    least-squares objective built from the training examples (correct
    label → target 1, other labels → target 0). *)

type t

val train : Learner.t list -> Learner.example list -> t
(** Base learners must already be trained on the same examples. *)

val weights : t -> (string * float) list
(** (learner name, weight), normalised to sum 1. *)

val predict : t -> Column.t -> Learner.prediction

val predict_single : t -> Learner.t list -> Column.t -> Learner.prediction
(** Like [predict] but with explicit learners (for ablations: pass a
    subset and reuse the trained weights of those learners). *)

val retarget : t -> learners:Learner.t list -> labels:string list -> t
(** Swap in replacement learners (same count and order) and the label
    set, keeping the fitted weights — used by held-out stacking, where
    weights are fit on a split but deployment uses fully trained
    learners over the full label set. *)
