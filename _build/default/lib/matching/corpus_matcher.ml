type t = { lsd : Lsd.t; synonyms : Util.Synonyms.t }

let canon synonyms name =
  Util.Tokenize.split_identifier name
  |> List.map (Util.Synonyms.canonical synonyms)
  |> List.map Util.Stemmer.stem
  |> String.concat "_"

let build ?(synonyms = Util.Synonyms.university_domain) corpus =
  let examples =
    List.concat_map
      (fun schema ->
        List.map
          (fun col ->
            { Learner.column = col; label = canon synonyms col.Column.attr })
          (Column.of_schema schema))
      (Corpus.Corpus_store.schemas corpus)
  in
  { lsd = Lsd.train ~synonyms ~examples (); synonyms }

let concepts t = Lsd.mediated_labels t.lsd

let concept_vector t column = Lsd.predict_column t.lsd column

let l2 vec =
  let norm = sqrt (List.fold_left (fun acc (_, w) -> acc +. (w *. w)) 0.0 vec) in
  if norm > 0.0 then List.map (fun (k, w) -> (k, w /. norm)) vec else vec

let match_schemas ?(threshold = 0.1) t s1 s2 =
  let cols1 = Column.of_schema s1 and cols2 = Column.of_schema s2 in
  let vecs1 = List.map (fun c -> (c, l2 (concept_vector t c))) cols1 in
  let vecs2 = List.map (fun c -> (c, l2 (concept_vector t c))) cols2 in
  let pairs =
    List.concat_map
      (fun (c1, v1) ->
        List.map (fun (c2, v2) -> (c1, c2, Util.Tfidf.cosine v1 v2)) vecs2)
      vecs1
  in
  (* Greedy one-to-one on correlation. *)
  let sorted =
    List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a) pairs
  in
  let used1 = ref [] and used2 = ref [] in
  List.filter
    (fun (c1, c2, score) ->
      if score < threshold || List.memq c1 !used1 || List.memq c2 !used2 then
        false
      else begin
        used1 := c1 :: !used1;
        used2 := c2 :: !used2;
        true
      end)
    sorted

(* Name-overlap proximity between a schema and a corpus schema. *)
let schema_affinity t (s : Corpus.Schema_model.t) (c : Corpus.Schema_model.t) =
  let names s =
    List.map (canon t.synonyms) (Corpus.Schema_model.attr_names s)
  in
  Util.Strdist.jaccard (names s) (names c)

let closest_corpus_schema t corpus s =
  List.fold_left
    (fun best cand ->
      let a = schema_affinity t s cand in
      match best with
      | None -> Some (cand, a)
      | Some (_, ba) -> if a > ba then Some (cand, a) else best)
    None
    (Corpus.Corpus_store.schemas corpus)

let match_via_pivot t ~corpus s1 s2 =
  match (closest_corpus_schema t corpus s1, closest_corpus_schema t corpus s2) with
  | Some (c1, _), Some (c2, _) ->
      let mappings =
        Corpus.Corpus_store.mappings_between corpus
          c1.Corpus.Schema_model.schema_name c2.Corpus.Schema_model.schema_name
      in
      let cols1 = Column.of_schema s1 and cols2 = Column.of_schema s2 in
      (* s1 col -> its best c1 attr (by name); follow the corpus mapping
         to a c2 attr; then to the closest s2 col. *)
      let best_by_name cols (rel, attr) =
        List.fold_left
          (fun best col ->
            let s =
              Util.Strdist.jaccard
                (Util.Tokenize.split_identifier col.Column.attr)
                (Util.Tokenize.split_identifier attr)
              +. (0.2
                 *. Util.Strdist.jaccard
                      (Util.Tokenize.split_identifier col.Column.rel)
                      (Util.Tokenize.split_identifier rel))
            in
            match best with
            | None -> if s > 0.0 then Some (col, s) else None
            | Some (_, bs) -> if s > bs then Some (col, s) else best)
          None cols
      in
      List.concat_map
        (fun (m : Corpus.Corpus_store.known_mapping) ->
          List.filter_map
            (fun (src, dst) ->
              match (best_by_name cols1 src, best_by_name cols2 dst) with
              | Some (c1, _), Some (c2, _) -> Some (c1, c2)
              | _ -> None)
            m.Corpus.Corpus_store.correspondences)
        mappings
  | _ -> []
