(** Name-based matcher: lexical similarity between the column's
    attribute name and each label, boosted by aliases observed during
    training (names of columns previously mapped to the label). *)

val create : ?synonyms:Util.Synonyms.t -> unit -> Learner.t
