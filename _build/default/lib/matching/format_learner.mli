(** Format learner: classifies by the {e shape} of data values (phone
    numbers, times, years, room codes look alike across schemas even
    when vocabularies differ). Values are abstracted to patterns —
    digits to [9], letters to [a], runs compressed — and labels are
    scored by cosine similarity of pattern distributions. *)

val pattern_of : string -> string
(** ["206-543-1695" -> "9-9-9"], ["CSE 444" -> "a 9"]. *)

val create : unit -> Learner.t
