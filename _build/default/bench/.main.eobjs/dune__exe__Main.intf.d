bench/main.mli:
