bench/experiments.ml: Advisor Array Corpus Cq Float Fun Hashtbl List Mangrove Matching Pdms Printf Relalg Rewrite String Sys Util Workload
