bench/micro.ml: Analyze Bechamel Benchmark Cq Fun Hashtbl Instance List Mangrove Matching Measure Pdms Printf Relalg Rewrite Staged String Test Time Toolkit Util Workload
