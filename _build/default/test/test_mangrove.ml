(* Tests for MANGROVE: annotation, publishing, deferred integrity,
   instant-gratification apps, inconsistency finding. *)

module M = Mangrove
module Xml = Xmlmodel.Xml

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)
let leaf tag value = Xml.element tag [ Xml.text value ]

(* Alice's home page: name, phone, office. *)
let alice_page () =
  let body =
    Xml.element "html"
      [ Xml.element "h1" [ Xml.text "alice anderson" ];
        Xml.element "div"
          [ leaf "span" "alice anderson"; leaf "span" "206-543-1695";
            leaf "span" "allen 301" ] ]
  in
  M.Html.make ~url:"http://u/alice.html" ~title:"alice" body

let annotate_alice () =
  let a = M.Annotator.start ~schema:M.Lightweight_schema.department (alice_page ()) in
  M.Annotator.annotate_exn a ~node:[ 1 ] ~tag:"person";
  M.Annotator.annotate_exn a ~node:[ 1; 0 ] ~tag:"name";
  M.Annotator.annotate_exn a ~node:[ 1; 1 ] ~tag:"phone";
  M.Annotator.annotate_exn a ~node:[ 1; 2 ] ~tag:"office";
  a

(* ------------------------------------------------------------------ *)
(* Lightweight schema *)

let test_schema_structure () =
  let s = M.Lightweight_schema.department in
  check_b "person is instance" true
    (List.mem "person" (M.Lightweight_schema.instance_tags s));
  check_b "phone under person" true
    (M.Lightweight_schema.allowed_under s ~child:"phone" ~parent:(Some "person"));
  check_b "phone not top-level" false
    (M.Lightweight_schema.allowed_under s ~child:"phone" ~parent:None);
  check_b "tag path" true
    (M.Lightweight_schema.tag_path s "phone" = [ "person"; "phone" ])

let test_schema_validation () =
  check_b "cycle rejected" true
    (try
       ignore (M.Lightweight_schema.make ~name:"bad" [ ("a", Some "b"); ("b", Some "a") ]);
       false
     with Invalid_argument _ -> true);
  check_b "unknown parent rejected" true
    (try
       ignore (M.Lightweight_schema.make ~name:"bad" [ ("a", Some "zebra") ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Annotator *)

let test_annotator_nesting_rules () =
  let a = M.Annotator.start ~schema:M.Lightweight_schema.department (alice_page ()) in
  (* Field before instance: rejected. *)
  check_b "orphan field rejected" true
    (Result.is_error (M.Annotator.annotate a ~node:[ 1; 1 ] ~tag:"phone"));
  M.Annotator.annotate_exn a ~node:[ 1 ] ~tag:"person";
  check_b "field inside instance ok" true
    (Result.is_ok (M.Annotator.annotate a ~node:[ 1; 1 ] ~tag:"phone"));
  (* Wrong field for the enclosing instance. *)
  check_b "course field under person rejected" true
    (Result.is_error (M.Annotator.annotate a ~node:[ 1; 0 ] ~tag:"title"));
  (* Instance inside instance. *)
  check_b "nested instance rejected" true
    (Result.is_error (M.Annotator.annotate a ~node:[ 1; 2 ] ~tag:"course"));
  check_b "unknown tag rejected" true
    (Result.is_error (M.Annotator.annotate a ~node:[ 1; 2 ] ~tag:"zebra"));
  check_b "missing node rejected" true
    (Result.is_error (M.Annotator.annotate a ~node:[ 9; 9 ] ~tag:"person"))

let test_annotator_grouping () =
  let a = annotate_alice () in
  match M.Annotator.grouped a with
  | [ (inst, fields) ] ->
      check_s "instance tag" "person" inst.M.Annotation.tag;
      check_i "three fields" 3 (List.length fields)
  | groups -> Alcotest.fail (Printf.sprintf "expected 1 group, got %d" (List.length groups))

let test_annotator_annotate_text () =
  let a = M.Annotator.start ~schema:M.Lightweight_schema.department (alice_page ()) in
  M.Annotator.annotate_exn a ~node:[ 1 ] ~tag:"person";
  check_b "by text" true (Result.is_ok (M.Annotator.annotate_text a "206-543" ~tag:"phone"));
  match M.Annotator.annotations a with
  | [ _; phone ] -> check_s "value captured" "206-543-1695" phone.M.Annotation.value
  | _ -> Alcotest.fail "expected two annotations"

let test_suggest_tags () =
  let a = M.Annotator.start ~schema:M.Lightweight_schema.department (alice_page ()) in
  (* The node containing a phone-like string should rank 'phone' high
     only via lexical affinity — here we check the API yields a ranking
     containing all schema tags. *)
  let suggestions = M.Annotator.suggest_tags a ~node:[ 1; 1 ] in
  check_i "all tags ranked"
    (List.length (M.Lightweight_schema.tags M.Lightweight_schema.department))
    (List.length suggestions)

(* ------------------------------------------------------------------ *)
(* Repository and publish *)

let test_publish_and_query () =
  let repo = M.Repository.create () in
  let triples = M.Repository.publish repo (annotate_alice ()) in
  check_i "type + label + 3 fields" 5 triples;
  (match M.Repository.entities repo ~tag:"person" with
  | [ subject ] ->
      check_s "phone" "206-543-1695"
        (match M.Repository.field_value repo ~subject ~field:"phone" with
        | Some v -> Relalg.Value.to_string v
        | None -> "")
  | _ -> Alcotest.fail "expected one person");
  (* Republish replaces, not duplicates. *)
  ignore (M.Repository.publish repo (annotate_alice ()));
  check_i "still one person" 1 (List.length (M.Repository.entities repo ~tag:"person"))

let test_publish_notifies () =
  let repo = M.Repository.create () in
  let notified = ref 0 in
  M.Repository.on_publish repo (fun () -> incr notified);
  ignore (M.Repository.publish repo (annotate_alice ()));
  check_i "listener fired" 1 !notified

(* ------------------------------------------------------------------ *)
(* Cleaning policies *)

let conflicting_phones () =
  let p1 = Storage.Provenance.make ~source_url:"http://u/alice/home.html" ~timestamp:5 () in
  let p2 = Storage.Provenance.make ~source_url:"http://u/dept/directory.html" ~timestamp:9 () in
  let p3 = Storage.Provenance.make ~source_url:"http://elsewhere/page.html" ~timestamp:2 () in
  [ (Relalg.Value.Str "111", p1); (Relalg.Value.Str "222", p2);
    (Relalg.Value.Str "222", p3) ]

let test_cleaning_policies () =
  let values = conflicting_phones () in
  let resolve p = M.Cleaning.resolve p values |> List.map Relalg.Value.to_string in
  check_b "keep_all" true (resolve M.Cleaning.Keep_all = [ "222"; "111" ]);
  check_b "first" true (resolve M.Cleaning.First = [ "222" ]);
  check_b "freshest" true (resolve M.Cleaning.Freshest = [ "222" ]);
  check_b "majority" true (resolve M.Cleaning.Majority = [ "222" ]);
  (* Alice's own web space wins regardless. *)
  check_b "prefer scope" true
    (resolve (M.Cleaning.Prefer_scope ("http://u/alice", M.Cleaning.Majority)) = [ "111" ]);
  (* Scope missing: falls back. *)
  check_b "scope fallback" true
    (resolve (M.Cleaning.Prefer_scope ("http://nowhere", M.Cleaning.First)) = [ "222" ]);
  check_b "empty input" true (M.Cleaning.resolve M.Cleaning.Majority [] = [])

(* ------------------------------------------------------------------ *)
(* Instant gratification apps *)

let department_repo seed =
  let repo = M.Repository.create () in
  let prng = Util.Prng.create seed in
  ignore
    (Workload.Pages.publish_department prng ~repo ~host:"uw" ~people:4
       ~course_pages:2 ~courses_per_page:3);
  repo

let test_calendar_app () =
  let repo = department_repo 11 in
  let rows = M.Apps.calendar repo in
  check_i "six courses" 6 (List.length rows);
  List.iter
    (fun (r : M.Apps.course_row) ->
      check_b "has code" true (String.length r.M.Apps.code > 0))
    rows

let test_who_is_who_and_phone_directory () =
  let repo = department_repo 12 in
  check_i "four people" 4 (List.length (M.Apps.who_is_who repo));
  let phones = M.Apps.phone_directory ~policy:M.Cleaning.Freshest repo in
  check_i "four phones" 4 (List.length phones)

let test_paper_database () =
  let repo = department_repo 13 in
  check_i "two papers per person" 8 (List.length (M.Apps.paper_database repo))

let test_search_app () =
  let repo = M.Repository.create () in
  ignore (M.Repository.publish repo (annotate_alice ()));
  let hits = M.Apps.search repo "alice" in
  check_b "finds alice" true (hits <> []);
  let none = M.Apps.search repo "zzzzqqq" in
  check_i "no bogus hits" 0 (List.length none)

let test_live_view_instant_gratification () =
  let repo = M.Repository.create () in
  let live = M.Apps.live ~compute:(fun r -> List.length (M.Apps.who_is_who r)) repo in
  check_i "empty at start" 0 (M.Apps.value live);
  ignore (M.Repository.publish repo (annotate_alice ()));
  (* The view refreshed without any polling — instant gratification. *)
  check_i "updated immediately" 1 (M.Apps.value live);
  check_i "one refresh" 1 (M.Apps.refresh_count live)

(* ------------------------------------------------------------------ *)
(* CQ queries over the repository *)

let test_cq_query_single_atom () =
  let repo = M.Repository.create () in
  ignore (M.Repository.publish repo (annotate_alice ()));
  let q =
    Cq.Parser.parse_query_exn
      "ans(N, P) :- person(N, P, Office, Email, Homepage)"
  in
  (* person fields in schema order: name, phone, email, office, homepage *)
  let q2 = Cq.Parser.parse_query_exn "ans(N, P) :- person(N, P, E, O, H)" in
  ignore q;
  match M.Cq_query.run ~tags:M.Cq_query.department_tags repo q2 with
  | Ok rel ->
      (* alice has no homepage annotation: join semantics exclude her. *)
      check_i "no full match" 0 (Relalg.Relation.cardinality rel)
  | Error msg -> Alcotest.fail msg

let test_cq_query_projection_tag () =
  let repo = M.Repository.create () in
  ignore (M.Repository.publish repo (annotate_alice ()));
  (* Query through a narrower virtual relation: just name and phone. *)
  let tags = [ ("person", [ "name"; "phone" ]) ] in
  let q = Cq.Parser.parse_query_exn "ans(N, P) :- person(N, P)" in
  (match M.Cq_query.run ~tags repo q with
  | Ok rel ->
      check_i "alice found" 1 (Relalg.Relation.cardinality rel);
      (match Relalg.Relation.tuples rel with
      | [ row ] ->
          check_s "name" "alice anderson" (Relalg.Value.to_string row.(0))
      | _ -> Alcotest.fail "expected one row")
  | Error msg -> Alcotest.fail msg);
  (* Constants filter. *)
  let q_const =
    Cq.Parser.parse_query_exn "ans(N) :- person(N, '206-543-1695')"
  in
  (match M.Cq_query.run ~tags repo q_const with
  | Ok rel -> check_i "constant match" 1 (Relalg.Relation.cardinality rel)
  | Error msg -> Alcotest.fail msg);
  let q_miss = Cq.Parser.parse_query_exn "ans(N) :- person(N, '999')" in
  match M.Cq_query.run ~tags repo q_miss with
  | Ok rel -> check_i "no match" 0 (Relalg.Relation.cardinality rel)
  | Error msg -> Alcotest.fail msg

let test_cq_query_join_two_entities () =
  let repo = M.Repository.create () in
  ignore (M.Repository.publish repo (annotate_alice ()));
  (* A course taught by alice links the two virtual relations. *)
  let leaf tag value = Xml.element tag [ Xml.text value ] in
  let body =
    Xml.element "html"
      [ Xml.element "h1" [ Xml.text "courses" ];
        Xml.element "div"
          [ leaf "span" "cse444"; leaf "span" "alice anderson" ] ]
  in
  let page = M.Html.make ~url:"http://u/courses.html" ~title:"c" body in
  let a = M.Annotator.start ~schema:M.Lightweight_schema.department page in
  M.Annotator.annotate_exn a ~node:[ 1 ] ~tag:"course";
  M.Annotator.annotate_exn a ~node:[ 1; 0 ] ~tag:"code";
  M.Annotator.annotate_exn a ~node:[ 1; 1 ] ~tag:"instructor";
  ignore (M.Repository.publish repo a);
  let tags =
    [ ("person", [ "name"; "phone" ]); ("course", [ "code"; "instructor" ]) ]
  in
  let q =
    Cq.Parser.parse_query_exn "ans(Code, Phone) :- course(Code, N), person(N, Phone)"
  in
  match M.Cq_query.run ~tags repo q with
  | Ok rel -> (
      check_i "joined" 1 (Relalg.Relation.cardinality rel);
      match Relalg.Relation.tuples rel with
      | [ row ] -> check_s "phone via join" "206-543-1695" (Relalg.Value.to_string row.(1))
      | _ -> Alcotest.fail "one row expected")
  | Error msg -> Alcotest.fail msg

let test_cq_query_errors () =
  let repo = M.Repository.create () in
  let bad_tag = Cq.Parser.parse_query_exn "ans(X) :- zebra(X)" in
  check_b "unknown tag" true
    (Result.is_error (M.Cq_query.run ~tags:M.Cq_query.department_tags repo bad_tag));
  let bad_arity = Cq.Parser.parse_query_exn "ans(X) :- person(X)" in
  check_b "arity" true
    (Result.is_error (M.Cq_query.run ~tags:M.Cq_query.department_tags repo bad_arity));
  let unsafe = Cq.Parser.parse_query_exn "ans(Z) :- person(X, Y)" in
  check_b "unsafe" true
    (Result.is_error
       (M.Cq_query.run ~tags:[ ("person", [ "name"; "phone" ]) ] repo unsafe))

(* ------------------------------------------------------------------ *)
(* Embedded annotations (Section 2.1) *)

let test_embed_roundtrip () =
  let a = annotate_alice () in
  let embedded = M.Embed.embed a in
  (* The rendered text is untouched. *)
  check_s "text unchanged"
    (Xml.text_content (M.Annotator.document a).M.Html.body)
    (Xml.text_content embedded);
  (* Extraction recovers the same annotations. *)
  let recovered =
    M.Embed.extract ~schema:M.Lightweight_schema.department
      ~url:"http://u/alice.html" embedded
  in
  let render anns =
    List.map
      (fun (x : M.Annotation.t) ->
        (x.M.Annotation.node, x.M.Annotation.tag, x.M.Annotation.value))
      anns
    |> List.sort compare
  in
  check_b "annotations recovered" true
    (render (M.Annotator.annotations a) = render (M.Annotator.annotations recovered));
  (* Publishing the recovered page yields the same triples. *)
  let repo1 = M.Repository.create () and repo2 = M.Repository.create () in
  check_i "same triple count"
    (M.Repository.publish repo1 a)
    (M.Repository.publish repo2 recovered)

let test_embed_survives_serialisation () =
  (* Embed, print to a string, parse back, extract: the full in-place
     annotation lifecycle through an HTML file on disk. *)
  let a = annotate_alice () in
  let on_disk = Xml.to_string (M.Embed.embed a) in
  let reparsed = Xmlmodel.Xml_parser.parse_exn on_disk in
  let recovered =
    M.Embed.extract ~schema:M.Lightweight_schema.department
      ~url:"http://u/alice.html" reparsed
  in
  check_i "four annotations" 4 (List.length (M.Annotator.annotations recovered));
  (match M.Annotator.grouped recovered with
  | [ (inst, fields) ] ->
      check_s "person instance" "person" inst.M.Annotation.tag;
      check_i "three fields" 3 (List.length fields)
  | _ -> Alcotest.fail "expected one group")

let test_embed_is_stable () =
  let a = annotate_alice () in
  let once = M.Embed.embed a in
  let recovered =
    M.Embed.extract ~schema:M.Lightweight_schema.department
      ~url:"http://u/alice.html" once
  in
  check_b "idempotent" true (Xml.equal once (M.Embed.embed recovered))

(* ------------------------------------------------------------------ *)
(* Dynamic pages (Strudel-style) *)

let test_dynamic_course_summary () =
  let repo = department_repo 21 in
  let page = M.Dynamic_page.course_summary ~url:"http://uw/summary.html" repo in
  (* One table row per course plus the header row. *)
  let rows = Xml.descendants_named page.M.Html.body "tr" in
  check_i "rows" (6 + 1) (List.length rows)

let test_dynamic_page_is_live () =
  let repo = M.Repository.create () in
  let live = M.Dynamic_page.live_course_summary ~url:"http://uw/summary.html" repo in
  let rows_of page = List.length (Xml.descendants_named page.M.Html.body "tr") in
  check_i "header only" 1 (rows_of (M.Apps.value live));
  let prng = Util.Prng.create 5 in
  ignore
    (Workload.Pages.publish_department prng ~repo ~host:"uw" ~people:1
       ~course_pages:1 ~courses_per_page:2);
  check_i "rows appeared without polling" 3 (rows_of (M.Apps.value live))

let test_dynamic_people_directory () =
  let repo = department_repo 22 in
  let page =
    M.Dynamic_page.people_directory ~url:"http://uw/people.html"
      ~policy:M.Cleaning.Freshest repo
  in
  check_i "four people + header" 5
    (List.length (Xml.descendants_named page.M.Html.body "tr"))

(* ------------------------------------------------------------------ *)
(* Deferred integrity + inconsistency finder *)

let test_inconsistency_finder () =
  let repo = M.Repository.create () in
  ignore (M.Repository.publish repo (annotate_alice ()));
  (* A second page claims a different phone for the same person — but a
     different subject. Conflicts are per subject, so none yet. *)
  check_i "no conflicts" 0
    (List.length (M.Inconsistency.find repo ~functional:[ ("person", "phone") ]));
  (* Same page republished with an extra phone annotation makes the
     subject multi-valued. *)
  let a = annotate_alice () in
  M.Annotator.annotate_exn a ~node:[ 1; 2 ] ~tag:"phone";
  ignore (M.Repository.publish repo a);
  let conflicts = M.Inconsistency.find repo ~functional:[ ("person", "phone") ] in
  check_i "one conflict" 1 (List.length conflicts);
  let notes = M.Inconsistency.notifications conflicts in
  check_b "author notified" true
    (List.exists (fun (url, _) -> url = "http://u/alice.html") notes)

let () =
  Alcotest.run "mangrove"
    [ ("schema",
       [ Alcotest.test_case "structure" `Quick test_schema_structure;
         Alcotest.test_case "validation" `Quick test_schema_validation ]);
      ("annotator",
       [ Alcotest.test_case "nesting rules" `Quick test_annotator_nesting_rules;
         Alcotest.test_case "grouping" `Quick test_annotator_grouping;
         Alcotest.test_case "annotate by text" `Quick test_annotator_annotate_text;
         Alcotest.test_case "suggest tags" `Quick test_suggest_tags ]);
      ("repository",
       [ Alcotest.test_case "publish and query" `Quick test_publish_and_query;
         Alcotest.test_case "publish notifies" `Quick test_publish_notifies ]);
      ("cleaning", [ Alcotest.test_case "policies" `Quick test_cleaning_policies ]);
      ("apps",
       [ Alcotest.test_case "calendar" `Quick test_calendar_app;
         Alcotest.test_case "who's who + phones" `Quick test_who_is_who_and_phone_directory;
         Alcotest.test_case "paper database" `Quick test_paper_database;
         Alcotest.test_case "search" `Quick test_search_app;
         Alcotest.test_case "live view" `Quick test_live_view_instant_gratification ]);
      ("cq_query",
       [ Alcotest.test_case "single atom" `Quick test_cq_query_single_atom;
         Alcotest.test_case "projection tag" `Quick test_cq_query_projection_tag;
         Alcotest.test_case "join" `Quick test_cq_query_join_two_entities;
         Alcotest.test_case "errors" `Quick test_cq_query_errors ]);
      ("embed",
       [ Alcotest.test_case "roundtrip" `Quick test_embed_roundtrip;
         Alcotest.test_case "survives serialisation" `Quick
           test_embed_survives_serialisation;
         Alcotest.test_case "stable" `Quick test_embed_is_stable ]);
      ("dynamic_pages",
       [ Alcotest.test_case "course summary" `Quick test_dynamic_course_summary;
         Alcotest.test_case "live regeneration" `Quick test_dynamic_page_is_live;
         Alcotest.test_case "people directory" `Quick test_dynamic_people_directory ]);
      ("inconsistency",
       [ Alcotest.test_case "finder" `Quick test_inconsistency_finder ]) ]
