(* Tests for the corpus of structures and its statistics (Section 4). *)

module Sm = Corpus.Schema_model
module Cs = Corpus.Corpus_store

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_f = Alcotest.(check (float 1e-9))

(* A small hand-built corpus with known statistics:
   - s1: course(title, instructor, room), ta(name, phone)
   - s2: class(name, teacher), assistant(name, phone)
   - s3: course(title, instructor), person(name, phone, email) *)
let corpus () =
  let c = Cs.create () in
  Cs.add_schema c
    (Sm.make ~name:"s1"
       [ Sm.relation "course"
           [ Sm.attribute ~values:[ "intro to databases" ] "title";
             Sm.attribute ~values:[ "alice anderson" ] "instructor";
             Sm.attribute ~values:[ "allen 301" ] "room" ];
         Sm.relation "ta" [ Sm.attribute "name"; Sm.attribute "phone" ] ]);
  Cs.add_schema c
    (Sm.make ~name:"s2"
       [ Sm.relation "class" [ Sm.attribute "name"; Sm.attribute "teacher" ];
         Sm.relation "assistant" [ Sm.attribute "name"; Sm.attribute "phone" ] ]);
  Cs.add_schema c
    (Sm.make ~name:"s3"
       [ Sm.relation "course" [ Sm.attribute "title"; Sm.attribute "instructor" ];
         Sm.relation "person"
           [ Sm.attribute "name"; Sm.attribute "phone"; Sm.attribute "email" ] ]);
  c

(* ------------------------------------------------------------------ *)
(* Schema model *)

let test_schema_model_basics () =
  let c = corpus () in
  let s1 = Option.get (Cs.schema c "s1") in
  check_i "element count" 7 (Sm.element_count s1);
  check_b "attrs of" true (Sm.attrs_of s1 "ta" = [ "name"; "phone" ]);
  check_i "corpus size" 3 (Cs.size c);
  check_i "all columns" 14 (List.length (Cs.all_columns c))

let test_schema_model_of_dtd () =
  let s = Sm.of_dtd ~name:"berkeley" Workload.University.berkeley_dtd in
  (* college(name), dept(name), course(title, size) become relations. *)
  check_b "course relation" true (Sm.attrs_of s "course" = [ "title"; "size" ]);
  check_b "schedule has no pcdata children" true (Sm.find_relation s "schedule" = None)

let test_duplicate_schema_rejected () =
  let c = corpus () in
  check_b "raises" true
    (try
       Cs.add_schema c (Sm.make ~name:"s1" []);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Basic statistics *)

let test_term_usage () =
  let stats = Corpus.Basic_stats.build (corpus ()) in
  (* 'course' appears as a relation name in s1 and s3; with the synonym
     table, 'class' (s2) canonicalises to the same term: 3/3. *)
  let u = Corpus.Basic_stats.term_usage stats "course" in
  check_f "relation usage" 1.0 u.Corpus.Basic_stats.as_relation;
  (* 'phone' is an attribute in all three schemas. *)
  let p = Corpus.Basic_stats.term_usage stats "phone" in
  check_f "attribute usage" 1.0 p.Corpus.Basic_stats.as_attribute;
  (* 'room' only in s1. *)
  let r = Corpus.Basic_stats.term_usage stats "room" in
  check_f "room usage" (1.0 /. 3.0) r.Corpus.Basic_stats.as_attribute;
  (* data words recorded *)
  let d = Corpus.Basic_stats.term_usage stats "databases" in
  check_b "data usage positive" true (d.Corpus.Basic_stats.in_data > 0.0)

let test_variant_sensitivity () =
  let raw = Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Raw (corpus ()) in
  (* Without synonyms, 'class' does not fold into 'course'. *)
  let u = Corpus.Basic_stats.term_usage raw "course" in
  check_f "raw usage" (2.0 /. 3.0) u.Corpus.Basic_stats.as_relation

let test_cooccurrence () =
  (* Stemmed (no synonyms): 'name' and 'title' stay distinct terms, so
     the expectations below are exact. *)
  let stats =
    Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Stemmed (corpus ())
  in
  (* name & phone co-occur in ta (s1), assistant (s2), person (s3):
     every relation containing canonical 'phone' also has 'name'. *)
  check_f "phone->name" 1.0 (Corpus.Basic_stats.cooccurrence stats "phone" "name");
  (* title co-occurs with instructor wherever title appears. *)
  check_f "title->instructor" 1.0
    (Corpus.Basic_stats.cooccurrence stats "title" "instructor");
  check_b "phone never with title" true
    (Corpus.Basic_stats.mutually_exclusive stats "phone" "title")

let test_cooccurring_attrs_ranked () =
  let stats =
    Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Stemmed (corpus ())
  in
  match Corpus.Basic_stats.cooccurring_attrs stats "phone" with
  | (top, f) :: _ ->
      check_b "name is top co-occurrer" true (String.length top > 0 && f > 0.0)
  | [] -> Alcotest.fail "expected co-occurrers"

let test_attr_clusters () =
  let stats =
    Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Stemmed (corpus ())
  in
  let clusters = Corpus.Basic_stats.attr_clusters stats ~threshold:0.7 in
  (* name+phone cluster together; title+instructor cluster together. *)
  let find_cluster_with term =
    let norm = Corpus.Basic_stats.normalize stats term in
    List.find_opt (List.mem norm) clusters
  in
  (match (find_cluster_with "phone", find_cluster_with "title") with
  | Some c1, Some c2 ->
      check_b "phone with name" true
        (List.mem (Corpus.Basic_stats.normalize stats "name") c1);
      check_b "title with instructor" true
        (List.mem (Corpus.Basic_stats.normalize stats "instructor") c2);
      check_b "clusters disjoint" true (c1 != c2)
  | _ -> Alcotest.fail "expected clusters")

let test_relation_name_for () =
  let stats = Corpus.Basic_stats.build (corpus ()) in
  match Corpus.Basic_stats.relation_name_for stats "phone" with
  | (_, f) :: _ -> check_b "has relation profile" true (f > 0.0)
  | [] -> Alcotest.fail "expected relation names"

(* ------------------------------------------------------------------ *)
(* Similar names (distributional) *)

let test_similar_names () =
  (* 'fee' and 'price' are lexically unrelated and not in the synonym
     table, but share their co-occurrence context: distributional
     similarity must catch them. *)
  let c = Cs.create () in
  Cs.add_schema c
    (Sm.make ~name:"d1"
       [ Sm.relation "course"
           [ Sm.attribute "title"; Sm.attribute "code"; Sm.attribute "fee" ] ]);
  Cs.add_schema c
    (Sm.make ~name:"d2"
       [ Sm.relation "course"
           [ Sm.attribute "title"; Sm.attribute "code"; Sm.attribute "price" ] ]);
  Cs.add_schema c
    (Sm.make ~name:"d3"
       [ Sm.relation "course" [ Sm.attribute "title"; Sm.attribute "code" ];
         Sm.relation "person" [ Sm.attribute "email"; Sm.attribute "phone" ] ]);
  let stats = Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Stemmed c in
  let sim = Corpus.Similar_names.similarity stats "fee" "price" in
  check_b (Printf.sprintf "fee ~ price (%.2f)" sim) true (sim > 0.5);
  let dissim = Corpus.Similar_names.similarity stats "fee" "email" in
  check_b "fee !~ email" true (sim > dissim)

let test_most_similar_excludes_self () =
  let stats = Corpus.Basic_stats.build (corpus ()) in
  let result = Corpus.Similar_names.most_similar stats "phone" in
  check_b "no self" true
    (List.for_all
       (fun (t, _) -> t <> Corpus.Basic_stats.normalize stats "phone")
       result)

(* ------------------------------------------------------------------ *)
(* Composite statistics *)

let test_frequent_itemsets () =
  let c = corpus () in
  let stats = Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Stemmed c in
  let itemsets = Corpus.Composite_stats.frequent_itemsets ~stats c ~min_support:3 in
  (* {name, phone} appears in 3 relations. *)
  check_b "name+phone frequent" true
    (List.exists
       (fun (it : Corpus.Composite_stats.itemset) ->
         it.Corpus.Composite_stats.support = 3
         && List.length it.Corpus.Composite_stats.attrs = 2)
       itemsets)

let test_support_and_same_relation () =
  let c = corpus () in
  let stats = Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Stemmed c in
  check_i "support exact" 3 (Corpus.Composite_stats.support ~stats c [ "name"; "phone" ]);
  check_f "same relation always" 1.0
    (Corpus.Composite_stats.same_relation_probability ~stats c "name" "phone");
  (* phone and title: both present in all schemas, never together. *)
  check_f "never same relation" 0.0
    (Corpus.Composite_stats.same_relation_probability ~stats c "phone" "title")

let test_estimate () =
  let c = corpus () in
  let stats = Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Stemmed c in
  let exact = Corpus.Composite_stats.frequent_itemsets ~stats c ~min_support:2 in
  (* Exactly maintained itemset: zero error. *)
  check_f "maintained exact" 0.0
    (Corpus.Estimate.relative_error ~stats c ~exact [ "name"; "phone" ]);
  (* Unmaintained set: estimate exists and error is bounded. *)
  let err = Corpus.Estimate.relative_error ~stats c ~exact [ "title"; "room" ] in
  check_b "estimate bounded" true (err <= 1.0)

(* ------------------------------------------------------------------ *)
(* Schema parser *)

let test_schema_parser_parse () =
  let text =
    "# a comment\n\
     schema university\n\
     relation course(code, title, instructor)\n\
     relation person(name, email)\n\
     values course.title: intro to db | ancient history\n\
     join course.instructor = person.name\n"
  in
  let s = Corpus.Schema_parser.parse_exn text in
  check_b "name" true (s.Sm.schema_name = "university");
  check_i "two relations" 2 (List.length s.Sm.relations);
  check_b "attrs" true (Sm.attrs_of s "course" = [ "code"; "title"; "instructor" ]);
  check_i "one join" 1 (List.length s.Sm.joins);
  (match Sm.find_relation s "course" with
  | Some r ->
      let title = List.nth r.Sm.attributes 1 in
      check_i "two sample values" 2 (List.length title.Sm.sample_values)
  | None -> Alcotest.fail "course missing")

let test_schema_parser_errors () =
  check_b "missing schema line" true
    (Result.is_error (Corpus.Schema_parser.parse "relation r(a)"));
  check_b "bad relation" true
    (Result.is_error (Corpus.Schema_parser.parse "schema s\nrelation broken"));
  check_b "unknown directive" true
    (Result.is_error (Corpus.Schema_parser.parse "schema s\nfrobnicate"))

let test_schema_parser_roundtrip () =
  let original =
    Sm.make
      ~joins:[ ("a", "x", "b", "y") ]
      ~name:"round"
      [ Sm.relation "a" [ Sm.attribute ~values:[ "v1"; "v2" ] "x" ];
        Sm.relation "b" [ Sm.attribute "y"; Sm.attribute "z" ] ]
  in
  let reparsed = Corpus.Schema_parser.parse_exn (Corpus.Schema_parser.render original) in
  check_b "name" true (reparsed.Sm.schema_name = original.Sm.schema_name);
  check_b "relations" true
    (Sm.relation_names reparsed = Sm.relation_names original);
  check_b "joins" true (reparsed.Sm.joins = original.Sm.joins);
  (match Sm.find_relation reparsed "a" with
  | Some r ->
      check_b "values survive" true
        ((List.hd r.Sm.attributes).Sm.sample_values = [ "v1"; "v2" ])
  | None -> Alcotest.fail "relation a missing")

let () =
  Alcotest.run "corpus"
    [ ("schema_model",
       [ Alcotest.test_case "basics" `Quick test_schema_model_basics;
         Alcotest.test_case "of_dtd" `Quick test_schema_model_of_dtd;
         Alcotest.test_case "duplicate rejected" `Quick test_duplicate_schema_rejected ]);
      ("basic_stats",
       [ Alcotest.test_case "term usage" `Quick test_term_usage;
         Alcotest.test_case "variant sensitivity" `Quick test_variant_sensitivity;
         Alcotest.test_case "cooccurrence" `Quick test_cooccurrence;
         Alcotest.test_case "cooccurring ranked" `Quick test_cooccurring_attrs_ranked;
         Alcotest.test_case "attr clusters" `Quick test_attr_clusters;
         Alcotest.test_case "relation name for" `Quick test_relation_name_for ]);
      ("similar_names",
       [ Alcotest.test_case "distributional" `Quick test_similar_names;
         Alcotest.test_case "excludes self" `Quick test_most_similar_excludes_self ]);
      ("schema_parser",
       [ Alcotest.test_case "parse" `Quick test_schema_parser_parse;
         Alcotest.test_case "errors" `Quick test_schema_parser_errors;
         Alcotest.test_case "roundtrip" `Quick test_schema_parser_roundtrip ]);
      ("composite",
       [ Alcotest.test_case "frequent itemsets" `Quick test_frequent_itemsets;
         Alcotest.test_case "support + same-relation" `Quick test_support_and_same_relation;
         Alcotest.test_case "estimate" `Quick test_estimate ]) ]
