(* Tests for the XML substrate: trees, DTD validation, paths, the
   Figure-4 template mapping language and query translation. *)

module Xml = Xmlmodel.Xml
module Dtd = Xmlmodel.Dtd
module Path = Xmlmodel.Path
module Template = Xmlmodel.Template
module Translate = Xmlmodel.Translate

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)
let check_sl = Alcotest.(check (list string))
let leaf tag value = Xml.element tag [ Xml.text value ]

(* A small Berkeley-style schedule instance. *)
let berkeley =
  Xml.element "schedule"
    [ Xml.element "college"
        [ leaf "name" "engineering";
          Xml.element "dept"
            [ leaf "name" "cs";
              Xml.element "course" [ leaf "title" "databases"; leaf "size" "120" ];
              Xml.element "course" [ leaf "title" "compilers"; leaf "size" "60" ] ];
          Xml.element "dept"
            [ leaf "name" "ee";
              Xml.element "course" [ leaf "title" "circuits"; leaf "size" "80" ] ] ] ]

(* ------------------------------------------------------------------ *)
(* Xml *)

let test_xml_navigation () =
  check_i "node count" 25 (Xml.count_nodes berkeley);
  check_i "colleges" 1 (List.length (Xml.children_named berkeley "college"));
  check_i "all courses" 3 (List.length (Xml.descendants_named berkeley "course"));
  check_s "text content" "databases"
    (match Xml.descendants_named berkeley "title" with
    | t :: _ -> Xml.text_content t
    | [] -> "")

let test_xml_roundtrip_string () =
  let s = Xml.to_string berkeley in
  check_b "serialises" true (String.length s > 50);
  check_b "escapes" true
    (let x = Xml.to_string (leaf "a" "x < y & z") in
     let contains hay needle =
       let lh = String.length hay and ln = String.length needle in
       let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
       go 0
     in
     contains x "&lt;" && contains x "&amp;")

(* ------------------------------------------------------------------ *)
(* Dtd *)

let berkeley_dtd =
  Dtd.make ~root:"schedule"
    [ ("schedule", Dtd.Children [ ("college", Dtd.Many) ]);
      ("college", Dtd.Children [ ("name", Dtd.One); ("dept", Dtd.Many) ]);
      ("dept", Dtd.Children [ ("name", Dtd.One); ("course", Dtd.Many) ]);
      ("course", Dtd.Children [ ("title", Dtd.One); ("size", Dtd.One) ]);
      ("name", Dtd.Pcdata); ("title", Dtd.Pcdata); ("size", Dtd.Pcdata) ]

let test_dtd_validate_ok () =
  match Dtd.validate berkeley_dtd berkeley with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_dtd_validate_failures () =
  let bad_root = Xml.element "catalog" [] in
  check_b "wrong root" true (Result.is_error (Dtd.validate berkeley_dtd bad_root));
  let missing_name =
    Xml.element "schedule" [ Xml.element "college" [ Xml.element "dept" [ leaf "name" "x" ] ] ]
  in
  check_b "multiplicity violation" true
    (Result.is_error (Dtd.validate berkeley_dtd missing_name));
  let stray =
    Xml.element "schedule" [ Xml.element "zebra" [] ]
  in
  check_b "undeclared child" true (Result.is_error (Dtd.validate berkeley_dtd stray))

(* ------------------------------------------------------------------ *)
(* Path *)

let test_path_parse_and_select () =
  let p = Path.of_string "college/dept/course" in
  check_i "three courses" 3 (List.length (Path.select berkeley p));
  let p2 = Path.of_string "//course/title/text()" in
  check_b "text flag" true p2.Path.text;
  check_sl "titles"
    [ "databases"; "compilers"; "circuits" ]
    (Path.select_text berkeley (Path.of_string "//title"));
  let p3 = Path.of_string "//dept/name/text()" in
  check_sl "dept names" [ "cs"; "ee" ] (Path.select_text berkeley p3)

let test_path_append_roundtrip () =
  let a = Path.of_string "college/dept" in
  let b = Path.of_string "course/title/text()" in
  let ab = Path.append a b in
  check_sl "composition"
    [ "databases"; "compilers"; "circuits" ]
    (Path.select_text berkeley ab);
  check_s "to_string" "college/dept/course/title/text()" (Path.to_string ab)

let test_path_errors () =
  check_b "text() must be last" true
    (try ignore (Path.of_string "a/text()/b"); false
     with Invalid_argument _ -> true);
  check_b "empty path" true
    (try ignore (Path.of_string ""); false with Invalid_argument _ -> true);
  (* A bare text() is legal (current node's text). *)
  let p = Path.of_string "text()" in
  check_b "bare text" true (p.Path.text && p.Path.steps = [])

(* ------------------------------------------------------------------ *)
(* Template (Figure 4) *)

let fig4 = Workload.University.berkeley_to_mit

let test_template_fig4 () =
  let out = Template.apply_single fig4 ~docs:[ ("Berkeley.xml", berkeley) ] in
  check_s "root" "catalog" (Option.value ~default:"" (Xml.name out));
  (* One MIT <course> per Berkeley dept. *)
  check_i "two courses" 2 (List.length (Xml.children_named out "course"));
  let subjects = Xml.descendants_named out "subject" in
  check_i "three subjects" 3 (List.length subjects);
  check_sl "enrollments preserved"
    [ "120"; "60"; "80" ]
    (Path.select_text (Xml.element "~w" [ out ])
       (Path.of_string "catalog/course/subject/enrollment/text()"));
  (* Output conforms to the MIT DTD. *)
  (match Dtd.validate Workload.University.mit_dtd out with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("MIT DTD: " ^ msg))

let test_template_unknown_doc () =
  check_b "raises" true
    (try
       ignore (Template.apply fig4 ~docs:[]);
       false
     with Invalid_argument _ -> true)

let test_template_literal_nodes () =
  let tpl =
    Template.template
      (Template.elem "greeting" [ Template.Literal "hello " ;
                                  Template.Literal "world" ])
  in
  let out = Template.apply_single tpl ~docs:[] in
  check_s "literals concatenated" "hello world" (Xml.text_content out)

let test_template_target_elements () =
  check_sl "emitted tags"
    [ "catalog"; "course"; "name"; "subject"; "title"; "enrollment" ]
    (Template.target_dtd_elements fig4)

(* ------------------------------------------------------------------ *)
(* Translate *)

let test_translate_resolve () =
  let target = Path.of_string "catalog/course/subject/title/text()" in
  match Translate.resolve fig4 target with
  | [ r ] ->
      check_s "doc" "Berkeley.xml" r.Translate.doc;
      check_s "source path" "college/dept/course/title/text()"
        (Path.to_string r.Translate.path)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 resolution, got %d" (List.length rs))

let test_translate_equivalence () =
  let docs = [ ("Berkeley.xml", berkeley) ] in
  List.iter
    (fun path ->
      check_b path true
        (Translate.equivalent_on fig4 ~docs (Path.of_string path)))
    [ "catalog/course/subject/title/text()";
      "catalog/course/subject/enrollment/text()";
      "catalog/course/name/text()" ]

let test_translate_random_instances () =
  let prng = Util.Prng.create 77 in
  for _ = 1 to 10 do
    let inst =
      Workload.University.berkeley_instance prng ~colleges:2 ~depts:2 ~courses:3
    in
    check_b "random instance equivalence" true
      (Translate.equivalent_on fig4
         ~docs:[ ("Berkeley.xml", inst) ]
         (Path.of_string "catalog/course/subject/enrollment/text()"))
  done

(* ------------------------------------------------------------------ *)
(* Xml PDMS *)

(* A second mapping: MIT's catalog republished as a flat reading list
   at a third peer (chains: berkeley -> mit -> lib). *)
let mit_to_lib =
  Template.template
    (Template.elem "readinglist"
       [ Template.elem
           ~binding:
             ("s", Template.Document "mit.xml",
              Path.of_string "course/subject")
           "entry"
           [ Template.elem "label"
               [ Template.Text_from ("s", Path.of_string "title/text()") ] ] ])

let xml_pdms () =
  let net = Xmlmodel.Xml_pdms.create () in
  Xmlmodel.Xml_pdms.add_peer net ~name:"berkeley"
    ~dtd:Workload.University.berkeley_dtd berkeley;
  let mit_doc =
    Template.apply_single fig4 ~docs:[ ("Berkeley.xml", berkeley) ]
  in
  (* MIT also has one local course of its own. *)
  let mit_doc =
    match mit_doc with
    | Xml.Element (tag, attrs, children) ->
        Xml.Element
          ( tag, attrs,
            children
            @ [ Xml.element "course"
                  [ leaf "name" "eecs";
                    Xml.element "subject"
                      [ leaf "title" "sicp"; leaf "enrollment" "300" ] ] ] )
    | other -> other
  in
  Xmlmodel.Xml_pdms.add_peer net ~name:"mit" ~dtd:Workload.University.mit_dtd mit_doc;
  Xmlmodel.Xml_pdms.add_peer net ~name:"lib" (Xml.element "readinglist" []);
  Xmlmodel.Xml_pdms.add_mapping net ~source:"berkeley" ~target:"mit" fig4;
  Xmlmodel.Xml_pdms.add_mapping net ~source:"mit" ~target:"lib" mit_to_lib;
  net

let test_xml_pdms_one_hop () =
  let net = xml_pdms () in
  let titles =
    Xmlmodel.Xml_pdms.query net ~at:"mit"
      (Path.of_string "catalog/course/subject/title/text()")
  in
  (* MIT's own subjects (3 mapped + 1 local) plus Berkeley's titles via
     translation — same values, deduplicated. *)
  check_sl "titles at mit"
    [ "circuits"; "compilers"; "databases"; "sicp" ]
    titles;
  (* Local-only is a strict subset. *)
  let local =
    Xmlmodel.Xml_pdms.query_local net ~at:"mit"
      (Path.of_string "catalog/course/subject/title/text()")
  in
  check_i "local has them all already (materialised)" 4 (List.length local)

let test_xml_pdms_two_hops () =
  let net = xml_pdms () in
  (* The reading list peer holds NO local entries; everything arrives
     through mit (and transitively berkeley). *)
  let labels =
    Xmlmodel.Xml_pdms.query net ~at:"lib"
      (Path.of_string "readinglist/entry/label/text()")
  in
  check_sl "labels via two-hop translation"
    [ "circuits"; "compilers"; "databases"; "sicp" ]
    labels;
  check_i "nothing local" 0
    (List.length
       (Xmlmodel.Xml_pdms.query_local net ~at:"lib"
          (Path.of_string "readinglist/entry/label/text()")))

let test_xml_pdms_reachability_and_validation () =
  let net = xml_pdms () in
  check_sl "lib reaches all" [ "berkeley"; "lib"; "mit" ]
    (Xmlmodel.Xml_pdms.reachable net "lib");
  check_sl "berkeley reaches only itself" [ "berkeley" ]
    (Xmlmodel.Xml_pdms.reachable net "berkeley");
  check_b "invalid doc rejected" true
    (try
       Xmlmodel.Xml_pdms.add_peer net ~name:"bad"
         ~dtd:Workload.University.mit_dtd (Xml.element "zebra" []);
       false
     with Invalid_argument _ -> true)

let test_resolve_chain () =
  let resolutions =
    Translate.resolve_chain [ fig4; mit_to_lib ]
      (Path.of_string "readinglist/entry/label/text()")
  in
  match resolutions with
  | [ r ] ->
      check_s "berkeley location" "college/dept/course/title/text()"
        (Path.to_string r.Translate.path)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length rs))

(* ------------------------------------------------------------------ *)
(* Xml parser *)

let test_parser_basic () =
  let doc = Xmlmodel.Xml_parser.parse_exn
    "<a x=\"1\"><b>hello</b><c/><b>bye &amp; more</b></a>"
  in
  check_s "root" "a" (Option.value ~default:"" (Xml.name doc));
  check_b "attr" true (Xml.attr doc "x" = Some "1");
  check_i "two bs" 2 (List.length (Xml.children_named doc "b"));
  check_s "entity decoded" "bye & more"
    (match Xml.children_named doc "b" with
    | [ _; b2 ] -> Xml.text_content b2
    | _ -> "")

let test_parser_declaration_and_comments () =
  let doc = Xmlmodel.Xml_parser.parse_exn
    "<?xml version=\"1.0\"?><!-- hi --><r><!-- inner --><x>1</x></r>"
  in
  check_i "comment skipped" 1 (List.length (Xml.children doc))

let test_parser_errors () =
  check_b "mismatched" true
    (Result.is_error (Xmlmodel.Xml_parser.parse "<a><b></a></b>"));
  check_b "unterminated" true
    (Result.is_error (Xmlmodel.Xml_parser.parse "<a><b>"));
  check_b "trailing" true
    (Result.is_error (Xmlmodel.Xml_parser.parse "<a/><b/>"));
  check_b "empty" true (Result.is_error (Xmlmodel.Xml_parser.parse "   "))

let test_parser_roundtrip_berkeley () =
  let prng = Util.Prng.create 9 in
  for _ = 1 to 5 do
    let inst =
      Workload.University.berkeley_instance prng ~colleges:2 ~depts:2 ~courses:2
    in
    check_b "print-parse roundtrip" true
      (Xml.equal inst (Xmlmodel.Xml_parser.roundtrip inst))
  done

(* ------------------------------------------------------------------ *)
(* Relational bridge *)

let test_bridge_extract () =
  let rel =
    Xmlmodel.Relational_bridge.relation_of berkeley ~name:"course" ~tag:"course"
      ~fields:[ "title"; "size" ]
  in
  check_i "three rows" 3 (Relalg.Relation.cardinality rel);
  let sizes =
    List.map (fun row -> row.(1)) (Relalg.Relation.tuples rel)
    |> List.map Relalg.Value.to_string
    |> List.sort compare
  in
  check_sl "sizes parsed" [ "120"; "60"; "80" ] sizes

let test_bridge_missing_field_null () =
  let doc = Xml.element "r" [ Xml.element "row" [ leaf "a" "1" ] ] in
  match Xmlmodel.Relational_bridge.extract doc ~tag:"row" ~fields:[ "a"; "b" ] with
  | [ [| a; b |] ] ->
      check_b "a parsed" true (Relalg.Value.equal a (Relalg.Value.Int 1));
      check_b "b null" true (Relalg.Value.equal b Relalg.Value.Null)
  | _ -> Alcotest.fail "expected one row"

let test_bridge_shred () =
  let db = Xmlmodel.Relational_bridge.shred berkeley in
  check_i "node count matches" (Xml.count_nodes berkeley)
    (Relalg.Relation.cardinality (Relalg.Database.find db "node"));
  check_i "edges = nodes - 1" (Xml.count_nodes berkeley - 1)
    (Relalg.Relation.cardinality (Relalg.Database.find db "edge"))

let test_bridge_to_xml () =
  let rel =
    Relalg.Relation.of_tuples
      (Relalg.Schema.make "course" [ "title"; "size" ])
      [ [| Relalg.Value.Str "db"; Relalg.Value.Int 10 |] ]
  in
  let xml = Xmlmodel.Relational_bridge.to_xml rel ~root:"courses" ~row_tag:"course" in
  check_sl "roundtrip title" [ "db" ]
    (Path.select_text xml (Path.of_string "course/title"))

let () =
  Alcotest.run "xmlmodel"
    [ ("xml",
       [ Alcotest.test_case "navigation" `Quick test_xml_navigation;
         Alcotest.test_case "serialisation" `Quick test_xml_roundtrip_string ]);
      ("dtd",
       [ Alcotest.test_case "validate ok" `Quick test_dtd_validate_ok;
         Alcotest.test_case "validate failures" `Quick test_dtd_validate_failures ]);
      ("path",
       [ Alcotest.test_case "parse and select" `Quick test_path_parse_and_select;
         Alcotest.test_case "append" `Quick test_path_append_roundtrip ]);
      ("path-errors", [ Alcotest.test_case "guards" `Quick test_path_errors ]);
      ("template",
       [ Alcotest.test_case "figure 4" `Quick test_template_fig4;
         Alcotest.test_case "unknown doc" `Quick test_template_unknown_doc;
         Alcotest.test_case "literal nodes" `Quick test_template_literal_nodes;
         Alcotest.test_case "target elements" `Quick test_template_target_elements ]);
      ("translate",
       [ Alcotest.test_case "resolve" `Quick test_translate_resolve;
         Alcotest.test_case "equivalence" `Quick test_translate_equivalence;
         Alcotest.test_case "random instances" `Quick test_translate_random_instances ]);
      ("xml_pdms",
       [ Alcotest.test_case "one hop" `Quick test_xml_pdms_one_hop;
         Alcotest.test_case "two hops" `Quick test_xml_pdms_two_hops;
         Alcotest.test_case "reachability + validation" `Quick
           test_xml_pdms_reachability_and_validation;
         Alcotest.test_case "resolve_chain" `Quick test_resolve_chain ]);
      ("xml_parser",
       [ Alcotest.test_case "basic" `Quick test_parser_basic;
         Alcotest.test_case "declaration + comments" `Quick
           test_parser_declaration_and_comments;
         Alcotest.test_case "errors" `Quick test_parser_errors;
         Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip_berkeley ]);
      ("bridge",
       [ Alcotest.test_case "extract" `Quick test_bridge_extract;
         Alcotest.test_case "missing field" `Quick test_bridge_missing_field_null;
         Alcotest.test_case "shred" `Quick test_bridge_shred;
         Alcotest.test_case "to_xml" `Quick test_bridge_to_xml ]) ]
