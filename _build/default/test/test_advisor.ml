(* Tests for DesignAdvisor, the design critique, and the corpus-based
   query reformulator. *)

module Sm = Corpus.Schema_model

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let prng () = Util.Prng.create 42

(* An unrelated decoy schema with plausible data. *)
let library_schema p =
  Sm.make ~name:"library"
    [ Sm.relation "book"
        [ Sm.attribute ~values:(Workload.Data_gen.values p Workload.Data_gen.Title 20) "isbn";
          Sm.attribute ~values:(Workload.Data_gen.values p Workload.Data_gen.Title 20) "shelf" ];
      Sm.relation "loan"
        [ Sm.attribute ~values:(Workload.Data_gen.values p Workload.Data_gen.Year 20) "due";
          Sm.attribute ~values:(Workload.Data_gen.values p Workload.Data_gen.Count 20) "copies" ] ]

(* A corpus containing university variants plus the decoy, which should
   rank last. *)
let corpus_with_decoy () =
  let p = prng () in
  let corpus = Workload.University.corpus_of_variants p ~n:5 ~level:0.25 in
  Corpus.Corpus_store.add_schema corpus (library_schema p);
  corpus

(* The coordinator's partial schema: just a course fragment. *)
let partial_schema () =
  let p = Util.Prng.create 7 in
  Workload.Data_gen.populate p ~samples:20
    (Sm.make ~name:"partial"
       [ Sm.relation "course"
           [ Sm.attribute "title"; Sm.attribute "instructor"; Sm.attribute "room" ] ])

let test_rank_prefers_university_schemas () =
  let advisor = Advisor.Design_advisor.build (corpus_with_decoy ()) in
  let suggestions = Advisor.Design_advisor.rank advisor ~partial:(partial_schema ()) in
  check_b "non-empty" true (suggestions <> []);
  (match suggestions with
  | best :: _ ->
      check_b "best is a university variant" true
        (best.Advisor.Design_advisor.candidate.Sm.schema_name <> "library")
  | [] -> ());
  (* The decoy must not outrank any university variant. *)
  let scores =
    List.map
      (fun s ->
        (s.Advisor.Design_advisor.candidate.Sm.schema_name,
         s.Advisor.Design_advisor.score))
      suggestions
  in
  match List.assoc_opt "library" scores with
  | None -> ()
  | Some decoy_score ->
      check_b "decoy scores lowest" true
        (List.for_all (fun (n, s) -> n = "library" || s >= decoy_score) scores)

let test_autocomplete_proposes_missing_elements () =
  let advisor = Advisor.Design_advisor.build (corpus_with_decoy ()) in
  let missing = Advisor.Design_advisor.autocomplete advisor ~partial:(partial_schema ()) in
  (* The partial schema has 3 course attributes; a full variant has ~20
     elements, so plenty should be proposed. *)
  check_b "proposes completions" true (List.length missing >= 3)

let test_preference_rewards_popularity () =
  let usage name = if name = "popular" then 50 else 1 in
  let small =
    Sm.make ~name:"popular" [ Sm.relation "r" [ Sm.attribute "a" ] ]
  in
  let unpopular =
    Sm.make ~name:"fresh" [ Sm.relation "r" [ Sm.attribute "a" ] ]
  in
  check_b "popularity matters" true
    (Advisor.Similarity.preference ~usage_count:usage small
    > Advisor.Similarity.preference ~usage_count:usage unpopular)

(* ------------------------------------------------------------------ *)
(* Critique: the TA example from the paper *)

let test_critique_ta_case () =
  (* Corpus where TA info always lives in its own relation. *)
  let corpus = Corpus.Corpus_store.create () in
  List.iteri
    (fun i _ ->
      Corpus.Corpus_store.add_schema corpus
        (Sm.make ~name:(Printf.sprintf "u%d" i)
           [ Sm.relation "course"
               [ Sm.attribute "title"; Sm.attribute "instructor"; Sm.attribute "room" ];
             Sm.relation "ta"
               [ Sm.attribute "ta_name"; Sm.attribute "contact_phone" ] ]))
    [ (); (); (); () ];
  let stats = Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Raw corpus in
  (* The coordinator wrongly folded TA fields into course. *)
  let draft =
    Sm.make ~name:"draft"
      [ Sm.relation "course"
          [ Sm.attribute "title"; Sm.attribute "instructor"; Sm.attribute "room";
            Sm.attribute "ta_name"; Sm.attribute "contact_phone" ] ]
  in
  match Advisor.Critique.decompositions ~stats ~corpus draft with
  | [ advice ] ->
      Alcotest.(check string) "critiques course" "course" advice.Advisor.Critique.relation;
      check_i "two attrs move out" 2 (List.length advice.Advisor.Critique.move_out);
      check_b "ta_name moves" true
        (List.mem "ta_name" advice.Advisor.Critique.move_out);
      check_b "suggests the ta relation" true
        (advice.Advisor.Critique.suggested_relation = Some "ta");
      check_b "confident" true (advice.Advisor.Critique.confidence > 0.5)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 advice, got %d" (List.length other))

let test_critique_silent_on_conforming_schema () =
  let corpus = Corpus.Corpus_store.create () in
  List.iteri
    (fun i _ ->
      Corpus.Corpus_store.add_schema corpus
        (Sm.make ~name:(Printf.sprintf "u%d" i)
           [ Sm.relation "course" [ Sm.attribute "title"; Sm.attribute "room" ] ]))
    [ (); (); () ];
  let stats = Corpus.Basic_stats.build ~variant:Corpus.Basic_stats.Raw corpus in
  let draft =
    Sm.make ~name:"draft"
      [ Sm.relation "course" [ Sm.attribute "title"; Sm.attribute "room" ] ]
  in
  check_i "no advice" 0
    (List.length (Advisor.Critique.decompositions ~stats ~corpus draft))

(* ------------------------------------------------------------------ *)
(* Query reformulator (Section 4.4) *)

let target_schema =
  Sm.make ~name:"target"
    [ Sm.relation "course" [ Sm.attribute "title"; Sm.attribute "instructor" ];
      Sm.relation "person" [ Sm.attribute "name"; Sm.attribute "phone" ] ]

let test_query_reformulation_by_synonym () =
  (* User says 'class', target says 'course'. *)
  let q =
    Cq.Query.make
      (Cq.Atom.make "ans" [ Cq.Term.v "T" ])
      [ Cq.Atom.make "class" [ Cq.Term.v "T"; Cq.Term.v "I" ] ]
  in
  match Advisor.Query_reformulator.reformulate ~target:target_schema q with
  | best :: _ ->
      check_b "renamed to course" true
        (List.mem ("class", "course") best.Advisor.Query_reformulator.substitutions);
      check_b "well-formed body" true
        (List.for_all
           (fun (a : Cq.Atom.t) -> a.Cq.Atom.pred = "course")
           best.Advisor.Query_reformulator.reformulated.Cq.Query.body)
  | [] -> Alcotest.fail "no candidates"

let test_query_reformulation_arity_guard () =
  (* Arity 3 matches nothing in the target schema. *)
  let q =
    Cq.Query.make
      (Cq.Atom.make "ans" [ Cq.Term.v "T" ])
      [ Cq.Atom.make "class" [ Cq.Term.v "T"; Cq.Term.v "I"; Cq.Term.v "R" ] ]
  in
  check_i "no candidate" 0
    (List.length (Advisor.Query_reformulator.reformulate ~target:target_schema q))

let test_query_reformulation_multi_atom () =
  let q =
    Cq.Query.make
      (Cq.Atom.make "ans" [ Cq.Term.v "T"; Cq.Term.v "P" ])
      [ Cq.Atom.make "class" [ Cq.Term.v "T"; Cq.Term.v "I" ];
        Cq.Atom.make "persons" [ Cq.Term.v "I"; Cq.Term.v "P" ] ]
  in
  match Advisor.Query_reformulator.reformulate ~target:target_schema q with
  | best :: _ ->
      check_b "both renamed" true
        (List.length best.Advisor.Query_reformulator.substitutions = 2)
  | [] -> Alcotest.fail "no candidates"

let () =
  Alcotest.run "advisor"
    [ ("design_advisor",
       [ Alcotest.test_case "ranking" `Slow test_rank_prefers_university_schemas;
         Alcotest.test_case "autocomplete" `Slow test_autocomplete_proposes_missing_elements;
         Alcotest.test_case "preference" `Quick test_preference_rewards_popularity ]);
      ("critique",
       [ Alcotest.test_case "ta case" `Quick test_critique_ta_case;
         Alcotest.test_case "silent when conforming" `Quick
           test_critique_silent_on_conforming_schema ]);
      ("query_reformulator",
       [ Alcotest.test_case "synonym" `Quick test_query_reformulation_by_synonym;
         Alcotest.test_case "arity guard" `Quick test_query_reformulation_arity_guard;
         Alcotest.test_case "multi atom" `Quick test_query_reformulation_multi_atom ]) ]
