(* Tests for the workload generators. *)

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let prng () = Util.Prng.create 99

(* ------------------------------------------------------------------ *)
(* Data generation *)

let test_data_kinds () =
  check_b "phone kind" true
    (Workload.Data_gen.kind_of_attr "contact_phone" = Workload.Data_gen.Phone);
  check_b "synonym-aware" true
    (Workload.Data_gen.kind_of_attr "telefono" = Workload.Data_gen.Phone);
  check_b "teacher is a person" true
    (Workload.Data_gen.kind_of_attr "teacher" = Workload.Data_gen.Person_name);
  check_b "enrollment count" true
    (Workload.Data_gen.kind_of_attr "enrollment" = Workload.Data_gen.Count)

let test_data_values_shape () =
  let p = prng () in
  let phones = Workload.Data_gen.values p Workload.Data_gen.Phone 20 in
  check_i "twenty values" 20 (List.length phones);
  List.iter
    (fun v ->
      check_b "phone pattern" true
        (String.equal (Matching.Format_learner.pattern_of v) "9-9-9"))
    phones

let test_deterministic_generation () =
  let a = Workload.Data_gen.values (Util.Prng.create 5) Workload.Data_gen.Title 10 in
  let b = Workload.Data_gen.values (Util.Prng.create 5) Workload.Data_gen.Title 10 in
  check_b "same seed, same data" true (a = b)

(* ------------------------------------------------------------------ *)
(* Perturbation *)

let test_perturb_preserves_truth_keys () =
  let p = prng () in
  let v = Workload.Perturb.perturb p ~level:0.5 Workload.University.mediated_schema in
  (* Every truth entry's target exists in the perturbed schema. *)
  List.iter
    (fun (_, (rel, attr)) ->
      check_b
        (Printf.sprintf "%s.%s exists" rel attr)
        true
        (List.mem attr (Corpus.Schema_model.attrs_of v.Workload.Perturb.perturbed rel)))
    v.Workload.Perturb.truth;
  (* And every source is a real element of the base schema. *)
  List.iter
    (fun ((rel, attr), _) ->
      check_b "source exists" true
        (List.mem attr
           (Corpus.Schema_model.attrs_of Workload.University.mediated_schema rel)))
    v.Workload.Perturb.truth

let test_perturb_level_zero_is_identity_names () =
  let p = prng () in
  let v = Workload.Perturb.perturb p ~level:0.0 Workload.University.mediated_schema in
  List.iter
    (fun ((_, battr), (_, pattr)) ->
      Alcotest.(check string) "name unchanged" battr pattr)
    v.Workload.Perturb.truth

let test_perturb_high_level_changes_names () =
  let p = prng () in
  let v = Workload.Perturb.perturb p ~level:0.9 Workload.University.mediated_schema in
  let changed =
    List.length
      (List.filter (fun ((_, b), (_, q)) -> not (String.equal b q)) v.Workload.Perturb.truth)
  in
  check_b "most names changed" true
    (changed * 2 > List.length v.Workload.Perturb.truth)

(* ------------------------------------------------------------------ *)
(* University / DElearning fixtures *)

let test_berkeley_instance_valid () =
  let p = prng () in
  for _ = 1 to 5 do
    let inst = Workload.University.berkeley_instance p ~colleges:2 ~depts:3 ~courses:4 in
    match Xmlmodel.Dtd.validate Workload.University.berkeley_dtd inst with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg
  done

let test_delearning_full_visibility () =
  let p = prng () in
  let d = Workload.University.build_delearning p ~courses_per_peer:4 in
  (* Query at every peer sees all 24 courses via the mapping graph. *)
  List.iter
    (fun (name, peer) ->
      let result =
        Pdms.Answer.answer d.Workload.University.catalog
          (Workload.University.course_query peer)
      in
      check_i
        (Printf.sprintf "%s sees all courses" name)
        24
        (Relalg.Relation.cardinality result.Pdms.Answer.answers))
    d.Workload.University.peers

let test_delearning_linear_mappings () =
  let p = prng () in
  let d = Workload.University.build_delearning p ~courses_per_peer:1 in
  (* One course mapping plus one instructor mapping per Figure-2 edge. *)
  check_i "2 x 5 mappings for 6 peers" 10
    (Pdms.Catalog.mapping_count d.Workload.University.catalog)

let test_delearning_join_across_peers () =
  let p = prng () in
  let d = Workload.University.build_delearning p ~courses_per_peer:2 in
  let roma = Pdms.Catalog.peer d.Workload.University.catalog "roma" in
  let query = Workload.University.course_instructor_query roma in
  let result = Pdms.Answer.answer d.Workload.University.catalog query in
  (* Every peer contributes 2 (title, instructor) pairs; titles are
     peer-prefixed so no accidental cross-peer joins. *)
  check_i "12 joined pairs" 12
    (Relalg.Relation.cardinality result.Pdms.Answer.answers)

(* ------------------------------------------------------------------ *)
(* Peers_gen *)

let test_peers_gen_chain_answers () =
  let p = prng () in
  let topo = Pdms.Topology.generate Pdms.Topology.Chain ~n:6 in
  let g = Workload.Peers_gen.generate p ~topology:topo ~tuples_per_peer:3 () in
  let result =
    Pdms.Answer.answer g.Workload.Peers_gen.catalog
      (Workload.Peers_gen.course_query g ~at:0)
  in
  check_i "sees all 18 tuples" 18
    (Relalg.Relation.cardinality result.Pdms.Answer.answers)

let test_peers_gen_join_query () =
  let p = prng () in
  let topo = Pdms.Topology.generate Pdms.Topology.Chain ~n:3 in
  let g =
    Workload.Peers_gen.generate p ~topology:topo ~tuples_per_peer:5 ~with_join:true ()
  in
  let result =
    Pdms.Answer.answer g.Workload.Peers_gen.catalog
      (Workload.Peers_gen.join_query g ~at:0)
  in
  (* The join may be empty (random codes rarely collide) but must not
     error, and reformulation must produce rewritings. *)
  check_b "rewritings exist" true
    (result.Pdms.Answer.outcome.Pdms.Reformulate.stats.Pdms.Reformulate.emitted > 0)

(* ------------------------------------------------------------------ *)
(* Pages *)

let test_pages_plan_is_valid () =
  let p = prng () in
  let page = Workload.Pages.course_page p ~host:"uw" ~page_id:0 ~courses:3 in
  let annotator =
    Mangrove.Annotator.start ~schema:Mangrove.Lightweight_schema.department
      page.Workload.Pages.doc
  in
  Workload.Pages.annotate annotator page.Workload.Pages.plan;
  check_i "three instances" 3 (List.length (Mangrove.Annotator.grouped annotator))

let test_department_publish_counts () =
  let p = prng () in
  let repo = Mangrove.Repository.create () in
  let pages =
    Workload.Pages.publish_department p ~repo ~host:"uw" ~people:3 ~course_pages:2
      ~courses_per_page:2
  in
  (* people + course pages + 1 talk page + people publication pages *)
  check_i "page count" 9 pages;
  check_i "people" 3 (List.length (Mangrove.Repository.entities repo ~tag:"person"));
  check_i "courses" 4 (List.length (Mangrove.Repository.entities repo ~tag:"course"))

let () =
  Alcotest.run "workload"
    [ ("data_gen",
       [ Alcotest.test_case "kinds" `Quick test_data_kinds;
         Alcotest.test_case "value shapes" `Quick test_data_values_shape;
         Alcotest.test_case "deterministic" `Quick test_deterministic_generation ]);
      ("perturb",
       [ Alcotest.test_case "truth keys" `Quick test_perturb_preserves_truth_keys;
         Alcotest.test_case "level zero" `Quick test_perturb_level_zero_is_identity_names;
         Alcotest.test_case "high level" `Quick test_perturb_high_level_changes_names ]);
      ("university",
       [ Alcotest.test_case "berkeley instance" `Quick test_berkeley_instance_valid;
         Alcotest.test_case "delearning visibility" `Quick test_delearning_full_visibility;
         Alcotest.test_case "linear mappings" `Quick test_delearning_linear_mappings;
         Alcotest.test_case "join across peers" `Quick test_delearning_join_across_peers ]);
      ("peers_gen",
       [ Alcotest.test_case "chain answers" `Quick test_peers_gen_chain_answers;
         Alcotest.test_case "join query" `Quick test_peers_gen_join_query ]);
      ("pages",
       [ Alcotest.test_case "plan valid" `Quick test_pages_plan_is_valid;
         Alcotest.test_case "department publish" `Quick test_department_publish_counts ]) ]
