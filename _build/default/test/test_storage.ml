(* Tests for the triple store (the annotation repository substrate) and
   the event-logging relation store. *)

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let vs s = Relalg.Value.Str s

let prov ?author url ts = Storage.Provenance.make ?author ~source_url:url ~timestamp:ts ()

let store_with_data () =
  let t = Storage.Triple_store.create () in
  Storage.Triple_store.add t ~subj:"u/alice#person0" ~pred:"mangrove:type"
    ~obj:(vs "person") ~prov:(prov "http://u/alice" 1);
  Storage.Triple_store.add t ~subj:"u/alice#person0" ~pred:"phone"
    ~obj:(vs "206-543-1695") ~prov:(prov "http://u/alice" 1);
  Storage.Triple_store.add t ~subj:"u/alice#person0" ~pred:"phone"
    ~obj:(vs "206-543-0000") ~prov:(prov "http://u/dept" 2);
  Storage.Triple_store.add t ~subj:"u/bob#person0" ~pred:"mangrove:type"
    ~obj:(vs "person") ~prov:(prov "http://u/bob" 3);
  Storage.Triple_store.add t ~subj:"u/bob#person0" ~pred:"phone"
    ~obj:(vs "206-543-1111") ~prov:(prov "http://u/bob" 3);
  t

let test_add_and_select () =
  let t = store_with_data () in
  check_i "size" 5 (Storage.Triple_store.size t);
  check_i "alice triples" 3
    (List.length (Storage.Triple_store.select ~subj:"u/alice#person0" t));
  check_i "phones" 3
    (List.length (Storage.Triple_store.select ~pred:"phone" t));
  check_i "by object" 1
    (List.length (Storage.Triple_store.select ~obj:(vs "206-543-1111") t))

let test_duplicate_statement_collapsed () =
  let t = Storage.Triple_store.create () in
  Storage.Triple_store.add t ~subj:"s" ~pred:"p" ~obj:(vs "o")
    ~prov:(prov "http://a" 1);
  Storage.Triple_store.add t ~subj:"s" ~pred:"p" ~obj:(vs "o")
    ~prov:(prov "http://a" 2);
  check_i "same source collapsed" 1 (Storage.Triple_store.size t);
  Storage.Triple_store.add t ~subj:"s" ~pred:"p" ~obj:(vs "o")
    ~prov:(prov "http://b" 3);
  check_i "other source kept" 2 (Storage.Triple_store.size t)

let test_remove_source () =
  let t = store_with_data () in
  check_i "removed" 2 (Storage.Triple_store.remove_source t "http://u/alice");
  check_i "remaining" 3 (Storage.Triple_store.size t);
  (* The dept-directory claim about alice survives: only alice's own
     page was retracted. *)
  check_i "only third-party claim left" 1
    (List.length (Storage.Triple_store.select ~subj:"u/alice#person0" t));
  (* Indexes must be consistent after the rebuild. *)
  check_i "phones now" 2 (List.length (Storage.Triple_store.select ~pred:"phone" t))

let test_sources () =
  let t = store_with_data () in
  check_i "three sources" 3 (List.length (Storage.Triple_store.sources t))

let test_bgp_query () =
  let t = store_with_data () in
  let v = Cq.Term.v and c s = Cq.Term.str s in
  (* All persons with their phones. *)
  let patterns =
    [ Storage.Triple_store.pat (v "S") (c "mangrove:type") (c "person");
      Storage.Triple_store.pat (v "S") (c "phone") (v "P") ]
  in
  let bindings = Storage.Triple_store.query t patterns in
  check_i "three (person, phone) pairs" 3 (List.length bindings);
  (* Join variable consistency: subjects must carry both triples. *)
  List.iter
    (fun b ->
      match Cq.Eval.Smap.find_opt "S" b with
      | Some (Relalg.Value.Str s) ->
          check_b "subject is a person" true
            (Storage.Triple_store.select ~subj:s ~pred:"mangrove:type" t <> [])
      | _ -> Alcotest.fail "unbound subject")
    bindings

let test_bgp_provenance () =
  let t = store_with_data () in
  let v = Cq.Term.v and c s = Cq.Term.str s in
  let results =
    Storage.Triple_store.query_provenanced t
      [ Storage.Triple_store.pat (c "u/alice#person0") (c "phone") (v "P") ]
  in
  check_i "two phone claims" 2 (List.length results);
  List.iter
    (fun (_, provs) -> check_i "one prov per pattern" 1 (List.length provs))
    results

let test_provenance_scope () =
  let p = prov "http://u/alice/home.html" 1 in
  check_b "in scope" true (Storage.Provenance.in_scope p "http://u/alice");
  check_b "out of scope" false (Storage.Provenance.in_scope p "http://u/bob")

(* Relation store *)

let test_relation_store_log_and_events () =
  let s = Storage.Relation_store.create () in
  Storage.Relation_store.declare s "r" [ "a" ];
  let events = ref 0 in
  Storage.Relation_store.subscribe s (fun _ -> incr events);
  check_b "insert" true (Storage.Relation_store.insert s "r" [| vs "x" |]);
  check_b "duplicate rejected" false (Storage.Relation_store.insert s "r" [| vs "x" |]);
  check_b "delete" true (Storage.Relation_store.delete s "r" [| vs "x" |]);
  check_b "delete missing" false (Storage.Relation_store.delete s "r" [| vs "x" |]);
  check_i "two effective events" 2 !events;
  check_i "log length" 2 (Storage.Relation_store.log_length s);
  Storage.Relation_store.truncate_log s;
  check_i "truncated" 0 (Storage.Relation_store.log_length s)

let test_relation_store_declare_conflict () =
  let s = Storage.Relation_store.create () in
  Storage.Relation_store.declare s "r" [ "a" ];
  Storage.Relation_store.declare s "r" [ "a" ];
  check_b "arity clash raises" true
    (try
       Storage.Relation_store.declare s "r" [ "a"; "b" ];
       false
     with Invalid_argument _ -> true)

(* N-Triples export/import *)

let test_ntriples_roundtrip () =
  let t = store_with_data () in
  Storage.Triple_store.add t ~subj:"tricky" ~pred:"note"
    ~obj:(vs "has \"quotes\" and\nnewlines \\ too")
    ~prov:(Storage.Provenance.make ~author:"bob smith" ~source_url:"http://x" ~timestamp:9 ());
  let text = Storage.Ntriples.export t in
  let t' = Storage.Ntriples.import_exn text in
  check_i "same size" (Storage.Triple_store.size t) (Storage.Triple_store.size t');
  check_b "same content" true (Storage.Ntriples.export t' = text);
  (* Provenance survives. *)
  (match Storage.Triple_store.select ~subj:"tricky" t' with
  | [ tr ] ->
      check_b "author" true (tr.Storage.Triple_store.prov.Storage.Provenance.author = Some "bob smith");
      check_i "timestamp" 9 tr.Storage.Triple_store.prov.Storage.Provenance.timestamp
  | _ -> Alcotest.fail "tricky triple lost")

let test_ntriples_import_errors () =
  check_b "garbage rejected" true
    (Result.is_error (Storage.Ntriples.import "not a triple"));
  check_b "missing provenance rejected" true
    (Result.is_error (Storage.Ntriples.import "<s> <p> \"o\" ."));
  (* Blank and comment lines are fine. *)
  check_b "comments ok" true (Result.is_ok (Storage.Ntriples.import "\n# hi\n\n"))

(* Property: BGP matching agrees with a naive nested-loop reference. *)

let prop_bgp_reference =
  QCheck.Test.make ~name:"bgp query agrees with naive reference" ~count:150
    (QCheck.make QCheck.Gen.(int_bound 100_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let t = Storage.Triple_store.create () in
      let subjects = [| "s0"; "s1"; "s2" |] in
      let preds = [| "p0"; "p1" |] in
      for i = 0 to 19 do
        Storage.Triple_store.add t
          ~subj:(Util.Prng.pick_arr prng subjects)
          ~pred:(Util.Prng.pick_arr prng preds)
          ~obj:(vs (string_of_int (Util.Prng.int prng 4)))
          ~prov:(prov (Printf.sprintf "http://src%d" (i mod 3)) i)
      done;
      let v = Cq.Term.v and c x = Cq.Term.str x in
      let pattern =
        Storage.Triple_store.pat (v "S")
          (if Util.Prng.bool prng then c "p0" else v "P")
          (v "O")
      in
      let pattern2 =
        Storage.Triple_store.pat (v "S") (c "p1") (v "O2")
      in
      let got = List.length (Storage.Triple_store.query t [ pattern; pattern2 ]) in
      (* Reference: nested loops over all triples. *)
      let triples = Storage.Triple_store.triples t in
      let matches (p : Storage.Triple_store.pattern) (tr : Storage.Triple_store.triple)
          (binding : (string * Relalg.Value.t) list) =
        let check term value binding =
          match term with
          | Cq.Term.Const x ->
              if Relalg.Value.equal x value then Some binding else None
          | Cq.Term.Var x -> (
              match List.assoc_opt x binding with
              | Some v ->
                  if Relalg.Value.equal v value then Some binding else None
              | None -> Some ((x, value) :: binding))
        in
        Option.bind (check p.Storage.Triple_store.psubj (vs tr.Storage.Triple_store.subj) binding)
          (fun b ->
            Option.bind (check p.Storage.Triple_store.ppred (vs tr.Storage.Triple_store.pred) b)
              (fun b -> check p.Storage.Triple_store.pobj tr.Storage.Triple_store.obj b))
      in
      let expected =
        List.concat_map
          (fun tr1 ->
            match matches pattern tr1 [] with
            | None -> []
            | Some b ->
                List.filter_map (fun tr2 -> matches pattern2 tr2 b) triples)
          triples
        |> List.length
      in
      got = expected)

let () =
  Alcotest.run "storage"
    [ ("triple_store",
       [ Alcotest.test_case "add and select" `Quick test_add_and_select;
         Alcotest.test_case "duplicates" `Quick test_duplicate_statement_collapsed;
         Alcotest.test_case "remove source" `Quick test_remove_source;
         Alcotest.test_case "sources" `Quick test_sources;
         Alcotest.test_case "bgp query" `Quick test_bgp_query;
         Alcotest.test_case "bgp provenance" `Quick test_bgp_provenance ]);
      ("provenance", [ Alcotest.test_case "scope" `Quick test_provenance_scope ]);
      ("ntriples",
       [ Alcotest.test_case "roundtrip" `Quick test_ntriples_roundtrip;
         Alcotest.test_case "import errors" `Quick test_ntriples_import_errors ]);
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_bgp_reference ]);
      ("relation_store",
       [ Alcotest.test_case "log and events" `Quick test_relation_store_log_and_events;
         Alcotest.test_case "declare conflict" `Quick test_relation_store_declare_conflict ]) ]
