(* Tests for the LSD-style multi-strategy matcher and the
   MatchingAdvisor. *)

module Sm = Corpus.Schema_model

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let prng () = Util.Prng.create 2003

(* Training world: perturbed variants of the mediated university schema,
   labelled with ground truth. *)
let training_examples seed n level =
  let p = Util.Prng.create seed in
  List.concat_map
    (fun i ->
      let variant =
        Workload.Perturb.perturb
          ~name:(Printf.sprintf "train%d" i)
          (Util.Prng.split p) ~level Workload.University.mediated_schema
      in
      let mapping =
        List.map
          (fun (base, perturbed) -> (perturbed, Workload.Perturb.label_of base))
          variant.Workload.Perturb.truth
      in
      Matching.Lsd.examples_of_schema ~mapping variant.Workload.Perturb.perturbed)
    (List.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* Base learners in isolation *)

let columns_of schema = Matching.Column.of_schema schema

let test_name_learner () =
  let learner = Matching.Name_learner.create () in
  learner.Matching.Learner.train (training_examples 1 3 0.3);
  let variant =
    Workload.Perturb.perturb (prng ()) ~level:0.2
      Workload.University.mediated_schema
  in
  (* The name learner should at least score the correct label highest
     for mildly perturbed phone columns. *)
  let phone_col =
    List.find_opt
      (fun c ->
        List.exists
          (fun ((_, battr), (_, pattr)) ->
            String.equal battr "phone" && String.equal pattr c.Matching.Column.attr)
          variant.Workload.Perturb.truth)
      (columns_of variant.Workload.Perturb.perturbed)
  in
  match phone_col with
  | None -> () (* phone dropped by perturbation: nothing to assert *)
  | Some col ->
      let pred = learner.Matching.Learner.predict col in
      check_b "phone scores positively" true
        (Matching.Learner.score_of pred "person.phone" > 0.0)

let test_format_learner_patterns () =
  Alcotest.(check string) "phone pattern" "9-9-9"
    (Matching.Format_learner.pattern_of "206-543-1695");
  Alcotest.(check string) "code pattern" "a9"
    (Matching.Format_learner.pattern_of "cse444");
  Alcotest.(check string) "time pattern" "9:9"
    (Matching.Format_learner.pattern_of "10:30")

let test_naive_bayes_separates_kinds () =
  let nb = Matching.Naive_bayes.create () in
  nb.Matching.Learner.train (training_examples 2 3 0.2);
  let p = prng () in
  let mk attr kind =
    {
      Matching.Column.schema_name = "probe";
      rel = "r";
      attr;
      context = [];
      values = Workload.Data_gen.values p kind 30;
    }
  in
  let day_col = mk "x1" Workload.Data_gen.Day in
  let pred = nb.Matching.Learner.predict day_col in
  (* The top label for day-like data should be course.day. *)
  (match Matching.Learner.best pred with
  | Some (label, _) ->
      check_b "day data classified as day"
        true (String.equal label "course.day")
  | None -> Alcotest.fail "no prediction")

let test_learner_prediction_normalization () =
  let pred = [ ("a", 0.2); ("b", 0.4) ] in
  match Matching.Learner.normalize pred with
  | [ ("a", a); ("b", b) ] ->
      Alcotest.(check (float 1e-9)) "max is 1" 1.0 b;
      Alcotest.(check (float 1e-9)) "ratio kept" 0.5 a
  | _ -> Alcotest.fail "unexpected shape"

(* ------------------------------------------------------------------ *)
(* Constraint handler *)

let fake_col attr =
  { Matching.Column.schema_name = "s"; rel = "r"; attr; context = []; values = [] }

let test_constraint_handler_one_to_one () =
  let c1 = fake_col "a" and c2 = fake_col "b" in
  let preds =
    [ (c1, [ ("l1", 0.9); ("l2", 0.8) ]); (c2, [ ("l1", 0.85); ("l2", 0.1) ]) ]
  in
  match Matching.Constraint_handler.assign preds with
  | [ (_, Some "l1"); (_, Some "l2") ] -> ()
  | [ (_, a); (_, b) ] ->
      Alcotest.fail
        (Printf.sprintf "got %s/%s"
           (Option.value ~default:"-" a)
           (Option.value ~default:"-" b))
  | _ -> Alcotest.fail "unexpected shape"

let test_constraint_handler_threshold () =
  let c1 = fake_col "a" in
  match Matching.Constraint_handler.assign ~threshold:0.5 [ (c1, [ ("l1", 0.3) ]) ] with
  | [ (_, None) ] -> ()
  | _ -> Alcotest.fail "expected unassigned"

(* ------------------------------------------------------------------ *)
(* Full LSD pipeline: the 70-90% claim at moderate heterogeneity *)

let lsd_accuracy ~train_seed ~test_seed ~level =
  let examples = training_examples train_seed 4 level in
  let lsd = Matching.Lsd.train ~examples () in
  let p = Util.Prng.create test_seed in
  let trials = 5 in
  let scores =
    List.init trials (fun i ->
        let variant =
          Workload.Perturb.perturb
            ~name:(Printf.sprintf "test%d" i)
            (Util.Prng.split p) ~level Workload.University.mediated_schema
        in
        let truth = Workload.Perturb.truth_correspondences variant in
        let assignment =
          Matching.Lsd.match_schema lsd variant.Workload.Perturb.perturbed
        in
        let predicted = Matching.Evaluate.of_assignment assignment in
        (Matching.Evaluate.score ~predicted ~truth).Matching.Evaluate.accuracy)
  in
  Util.Stats.mean scores

let test_lsd_accuracy_in_paper_range () =
  let acc = lsd_accuracy ~train_seed:10 ~test_seed:20 ~level:0.35 in
  check_b
    (Printf.sprintf "accuracy %.3f in [0.6, 1.0]" acc)
    true
    (acc >= 0.6 && acc <= 1.0)

let test_lsd_degrades_with_heterogeneity () =
  let low = lsd_accuracy ~train_seed:30 ~test_seed:40 ~level:0.15 in
  let high = lsd_accuracy ~train_seed:30 ~test_seed:40 ~level:0.8 in
  check_b
    (Printf.sprintf "monotone-ish: %.3f >= %.3f - 0.05" low high)
    true
    (low >= high -. 0.05)

let test_meta_beats_or_matches_single_learner () =
  let examples = training_examples 50 4 0.35 in
  let lsd = Matching.Lsd.train ~examples () in
  let p = Util.Prng.create 60 in
  let variant =
    Workload.Perturb.perturb p ~level:0.35 Workload.University.mediated_schema
  in
  let truth = Workload.Perturb.truth_correspondences variant in
  let acc only =
    let assignment =
      Matching.Lsd.match_schema ?only lsd variant.Workload.Perturb.perturbed
    in
    (Matching.Evaluate.score
       ~predicted:(Matching.Evaluate.of_assignment assignment)
       ~truth).Matching.Evaluate.accuracy
  in
  let meta = acc None in
  let format_only = acc (Some [ "format" ]) in
  check_b
    (Printf.sprintf "meta %.3f >= format-only %.3f - 0.1" meta format_only)
    true
    (meta >= format_only -. 0.1)

let test_learner_weights_normalised () =
  let examples = training_examples 70 3 0.3 in
  let lsd = Matching.Lsd.train ~examples () in
  let weights = Matching.Lsd.learner_weights lsd in
  check_i "four learners" 4 (List.length weights);
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weights in
  Alcotest.(check (float 1e-6)) "weights sum to 1" 1.0 total

(* ------------------------------------------------------------------ *)
(* Corpus matcher (MatchingAdvisor) *)

let test_corpus_matcher_two_unseen_schemas () =
  let p = prng () in
  let corpus = Workload.University.corpus_of_variants (Util.Prng.split p) ~n:6 ~level:0.3 in
  let matcher = Matching.Corpus_matcher.build corpus in
  let v1 =
    Workload.Perturb.perturb ~name:"s1" (Util.Prng.split p) ~level:0.3
      Workload.University.mediated_schema
  in
  let v2 =
    Workload.Perturb.perturb ~name:"s2" (Util.Prng.split p) ~level:0.3
      Workload.University.mediated_schema
  in
  let pairs =
    Matching.Corpus_matcher.match_schemas matcher v1.Workload.Perturb.perturbed
      v2.Workload.Perturb.perturbed
  in
  check_b "some pairs proposed" true (List.length pairs >= 5);
  (* Score the proposals against composed ground truth. *)
  let base_of truth (rel, attr) =
    List.find_map
      (fun (base, (r, a)) ->
        if String.equal r rel && String.equal a attr then Some base else None)
      truth
  in
  let correct, total =
    List.fold_left
      (fun (c, t) (col1, col2, _) ->
        let b1 = base_of v1.Workload.Perturb.truth (Matching.Column.key col1) in
        let b2 = base_of v2.Workload.Perturb.truth (Matching.Column.key col2) in
        match (b1, b2) with
        | Some x, Some y -> ((if x = y then c + 1 else c), t + 1)
        | _ -> (c, t))
      (0, 0) pairs
  in
  check_b
    (Printf.sprintf "majority correct (%d/%d)" correct total)
    true
    (total > 0 && float_of_int correct /. float_of_int total > 0.5)

let test_corpus_matcher_pivot () =
  let corpus = Corpus.Corpus_store.create () in
  let s_a =
    Sm.make ~name:"a" [ Sm.relation "course" [ Sm.attribute "title"; Sm.attribute "code" ] ]
  in
  let s_b =
    Sm.make ~name:"b"
      [ Sm.relation "subject" [ Sm.attribute "name"; Sm.attribute "id" ] ]
  in
  Corpus.Corpus_store.add_schema corpus s_a;
  Corpus.Corpus_store.add_schema corpus s_b;
  Corpus.Corpus_store.add_mapping corpus
    {
      Corpus.Corpus_store.from_schema = "a";
      to_schema = "b";
      correspondences =
        [ (("course", "title"), ("subject", "name"));
          (("course", "code"), ("subject", "id")) ];
    };
  let matcher = Matching.Corpus_matcher.build corpus in
  (* Two new schemas shaped like a and b. *)
  let n1 =
    Sm.make ~name:"n1" [ Sm.relation "course" [ Sm.attribute "title"; Sm.attribute "code" ] ]
  in
  let n2 =
    Sm.make ~name:"n2"
      [ Sm.relation "subject" [ Sm.attribute "name"; Sm.attribute "id" ] ]
  in
  let pairs = Matching.Corpus_matcher.match_via_pivot matcher ~corpus n1 n2 in
  check_i "both correspondences recovered" 2 (List.length pairs)

(* ------------------------------------------------------------------ *)
(* Evaluate *)

let test_evaluate_scores () =
  let c rel attr dst = { Matching.Evaluate.src = (rel, attr); dst } in
  let truth = [ c "r" "a" "l1"; c "r" "b" "l2" ] in
  let predicted = [ c "r" "a" "l1"; c "r" "b" "l9"; c "r" "c" "l3" ] in
  let s = Matching.Evaluate.score ~predicted ~truth in
  Alcotest.(check (float 1e-9)) "precision" (1.0 /. 3.0) s.Matching.Evaluate.precision;
  Alcotest.(check (float 1e-9)) "recall" 0.5 s.Matching.Evaluate.recall;
  check_b "f1 between" true
    (s.Matching.Evaluate.f1 > 0.0 && s.Matching.Evaluate.f1 < 1.0);
  let empty = Matching.Evaluate.score ~predicted:[] ~truth in
  Alcotest.(check (float 1e-9)) "empty precision" 0.0 empty.Matching.Evaluate.precision

(* ------------------------------------------------------------------ *)
(* GLUE taxonomy matching *)

let course_taxonomy name renamer =
  (* Instances are course descriptions; both taxonomies draw from the
     same underlying distribution with different concept names. *)
  Matching.Taxonomy.make (renamer name)
    [ Matching.Taxonomy.make ~instances:
        [ "relational databases and sql querying";
          "transaction processing and recovery";
          "query optimization in database systems";
          "indexing and storage structures for data" ]
        (renamer "databases") [];
      Matching.Taxonomy.make ~instances:
        [ "neural networks and deep learning";
          "supervised learning and classifiers";
          "reinforcement learning agents";
          "statistical machine learning models" ]
        (renamer "machine_learning") [];
      Matching.Taxonomy.make ~instances:
        [ "roman empire and ancient law";
          "medieval europe and feudal society";
          "renaissance art and florence";
          "ancient greek city states" ]
        (renamer "history") [] ]

let test_glue_matches_renamed_taxonomy () =
  let ta = course_taxonomy "catalog" Fun.id in
  let tb =
    course_taxonomy "curriculum" (fun n ->
        match n with
        | "databases" -> "data_mgmt"
        | "machine_learning" -> "ai"
        | "history" -> "humanities"
        | other -> other ^ "_b")
  in
  let pairs = Matching.Glue.match_taxonomies ta tb in
  check_b "databases -> data_mgmt" true
    (List.mem ("databases", "data_mgmt") pairs);
  check_b "ml -> ai" true (List.mem ("machine_learning", "ai") pairs);
  check_b "history -> humanities" true
    (List.mem ("history", "humanities") pairs)

let test_glue_similarities_ordered () =
  let ta = course_taxonomy "catalog" Fun.id in
  let tb = course_taxonomy "catalog2" (fun n -> n ^ "_b") in
  let sims = Matching.Glue.similarities ta tb in
  check_b "nonempty" true (sims <> []);
  (* The matching pair scores above the cross pair. *)
  let get a b =
    List.find_opt
      (fun (s : Matching.Glue.similarity) ->
        s.Matching.Glue.concept_a = a && s.Matching.Glue.concept_b = b)
      sims
  in
  match (get "databases" "databases_b", get "databases" "history_b") with
  | Some good, Some bad ->
      check_b "right pair wins" true
        (good.Matching.Glue.relaxed > bad.Matching.Glue.relaxed)
  | Some _, None -> () (* cross pair had zero similarity: even better *)
  | None, _ -> Alcotest.fail "expected databases pair"

let test_taxonomy_structure () =
  let t = course_taxonomy "catalog" Fun.id in
  check_i "four concepts" 4 (Matching.Taxonomy.size t);
  check_b "parent" true
    (Matching.Taxonomy.parent_of t "databases" = Some "catalog");
  check_b "root has no parent" true (Matching.Taxonomy.parent_of t "catalog" = None);
  check_i "extension" 12 (List.length (Matching.Taxonomy.all_instances t));
  check_i "leaves" 3 (List.length (Matching.Taxonomy.leaves t));
  check_b "duplicate concepts rejected" true
    (try
       ignore
         (Matching.Taxonomy.make "r"
            [ Matching.Taxonomy.make "x" []; Matching.Taxonomy.make "x" [] ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "matching"
    [ ("learners",
       [ Alcotest.test_case "name learner" `Quick test_name_learner;
         Alcotest.test_case "format patterns" `Quick test_format_learner_patterns;
         Alcotest.test_case "naive bayes kinds" `Quick test_naive_bayes_separates_kinds;
         Alcotest.test_case "normalization" `Quick test_learner_prediction_normalization ]);
      ("constraints",
       [ Alcotest.test_case "one-to-one" `Quick test_constraint_handler_one_to_one;
         Alcotest.test_case "threshold" `Quick test_constraint_handler_threshold ]);
      ("lsd",
       [ Alcotest.test_case "accuracy in paper range" `Slow test_lsd_accuracy_in_paper_range;
         Alcotest.test_case "degrades with heterogeneity" `Slow
           test_lsd_degrades_with_heterogeneity;
         Alcotest.test_case "meta vs single" `Slow test_meta_beats_or_matches_single_learner;
         Alcotest.test_case "weights normalised" `Quick test_learner_weights_normalised ]);
      ("evaluate", [ Alcotest.test_case "scores" `Quick test_evaluate_scores ]);
      ("glue",
       [ Alcotest.test_case "taxonomy structure" `Quick test_taxonomy_structure;
         Alcotest.test_case "renamed taxonomy" `Quick test_glue_matches_renamed_taxonomy;
         Alcotest.test_case "similarity ordering" `Quick test_glue_similarities_ordered ]);
      ("corpus_matcher",
       [ Alcotest.test_case "unseen schemas" `Slow test_corpus_matcher_two_unseen_schemas;
         Alcotest.test_case "pivot" `Quick test_corpus_matcher_pivot ]) ]
