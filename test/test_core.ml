(* End-to-end tests for the REVERE facade: the annotate -> publish ->
   sync -> share pipeline, and the DElearning join flow. *)

module Xml = Xmlmodel.Xml

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let prng () = Util.Prng.create 2003

(* ------------------------------------------------------------------ *)
(* Revere node: Mangrove -> Peer pipeline *)

let test_revere_pipeline () =
  let node =
    Core.Revere.create ~name:"uw"
      ~peer_schema:[ ("course", [ "code"; "title"; "instructor" ]) ]
      ()
  in
  let catalog = Pdms.Catalog.create () in
  Pdms.Catalog.add_peer catalog (Core.Revere.peer node);
  (* Annotate and publish two course pages. *)
  let p = prng () in
  List.iter
    (fun i ->
      let page = Workload.Pages.course_page p ~host:"uw" ~page_id:i ~courses:3 in
      let a = Core.Revere.annotator node page.Workload.Pages.doc in
      Workload.Pages.annotate a page.Workload.Pages.plan;
      ignore (Core.Revere.publish node a))
    [ 0; 1 ];
  (* Sync repository entities into the peer's stored relation. *)
  let n =
    Core.Revere.sync node ~catalog ~rel:"course" ~tag:"course"
      ~fields:[ "code"; "title"; "instructor" ]
  in
  check_i "six courses synced" 6 n;
  (* The peer's own query sees the data through the PDMS. *)
  let query =
    Cq.Query.make
      (Cq.Atom.make "ans" [ Cq.Term.v "C"; Cq.Term.v "T"; Cq.Term.v "I" ])
      [ Pdms.Peer.atom (Core.Revere.peer node) "course"
          [ Cq.Term.v "C"; Cq.Term.v "T"; Cq.Term.v "I" ] ]
  in
  let result = Pdms.Answer.answer catalog query in
  check_i "queryable" 6 (Relalg.Relation.cardinality result.Pdms.Answer.answers);
  (* Re-sync is idempotent (distinct inserts). *)
  check_i "idempotent sync" 0
    (Core.Revere.sync node ~catalog ~rel:"course" ~tag:"course"
       ~fields:[ "code"; "title"; "instructor" ])

let test_schema_model_of_peer_carries_data () =
  let node =
    Core.Revere.create ~name:"uw" ~peer_schema:[ ("course", [ "code"; "title" ]) ] ()
  in
  let catalog = Pdms.Catalog.create () in
  Pdms.Catalog.add_peer catalog (Core.Revere.peer node);
  let stored = Pdms.Catalog.store_identity catalog (Core.Revere.peer node) ~rel:"course" in
  Relalg.Relation.apply stored
    (Relalg.Relation.Delta.add
       [| Relalg.Value.Str "cse444"; Relalg.Value.Str "databases" |]);
  let model = Core.Revere.schema_model_of_peer (Core.Revere.peer node) ~rel:"course" in
  match model.Corpus.Schema_model.relations with
  | [ r ] ->
      check_i "two attrs" 2 (List.length r.Corpus.Schema_model.attributes);
      check_b "values sampled" true
        (List.exists
           (fun (a : Corpus.Schema_model.attribute) ->
             a.Corpus.Schema_model.sample_values <> [])
           r.Corpus.Schema_model.attributes)
  | _ -> Alcotest.fail "expected one relation"

(* ------------------------------------------------------------------ *)
(* DElearning scenario *)

let test_delearning_join_flow () =
  let p = prng () in
  let scenario = Core.Delearning.build p ~courses_per_peer:3 in
  (* Before joining: 6 peers x 3 courses visible anywhere (distinct
     titles; the generator may occasionally collide on a title). *)
  let before = Core.Delearning.courses_visible_at scenario "mit" in
  check_b "sees every peer's courses" true (List.length before >= 15);
  (* Trento joins with an Italian schema, mapping advised by the corpus. *)
  let report =
    Core.Delearning.join_university scenario p ~name:"trento"
      ~rel:"corso" ~attrs:[ "titolo"; "iscritti" ] ~courses:4
  in
  check_b "mapped to somebody" true (report.Core.Delearning.mapped_to <> "");
  check_b "correspondences proposed" true
    (report.Core.Delearning.correspondences <> []);
  (* Trento now sees everything reachable, and others see Trento. *)
  let at_trento = Core.Delearning.courses_visible_at scenario "trento" in
  check_b "trento sees remote courses" true (List.length at_trento > 4);
  let at_mit = Core.Delearning.courses_visible_at scenario "mit" in
  check_b "mit gains trento courses" true
    (List.length at_mit > List.length before);
  (* The paper's leverage argument: Trento mapped to ONE existing peer,
     not to all of them (the fixture starts with 10 mappings: course +
     instructor per Figure-2 edge). *)
  check_i "exactly one new mapping" 11
    (Pdms.Catalog.mapping_count scenario.Core.Delearning.delearning.Workload.University.catalog)

let test_delearning_reachability () =
  let p = prng () in
  let scenario = Core.Delearning.build p ~courses_per_peer:1 in
  let catalog = scenario.Core.Delearning.delearning.Workload.University.catalog in
  List.iter
    (fun name ->
      check_i
        (Printf.sprintf "%s reaches all" name)
        6
        (List.length (Pdms.Answer.reachable_peers catalog name)))
    (Array.to_list Workload.Vocab.universities)

let () =
  Alcotest.run "core"
    [ ("revere",
       [ Alcotest.test_case "pipeline" `Quick test_revere_pipeline;
         Alcotest.test_case "schema model of peer" `Quick
           test_schema_model_of_peer_carries_data ]);
      ("delearning",
       [ Alcotest.test_case "join flow" `Slow test_delearning_join_flow;
         Alcotest.test_case "reachability" `Quick test_delearning_reachability ]) ]
