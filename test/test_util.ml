(* Unit and property tests for the util substrate. *)

let check_s = Alcotest.(check string)
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_sl = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Util.Prng.create 42 and b = Util.Prng.create 42 in
  for _ = 1 to 50 do
    check_i "same stream" (Util.Prng.int a 1000) (Util.Prng.int b 1000)
  done

let test_prng_split_independent () =
  let a = Util.Prng.create 7 in
  let c = Util.Prng.split a in
  let xs = List.init 20 (fun _ -> Util.Prng.int a 100) in
  let ys = List.init 20 (fun _ -> Util.Prng.int c 100) in
  check_b "streams differ" true (xs <> ys)

let test_prng_bounds () =
  let t = Util.Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Util.Prng.int t 7 in
    check_b "in range" true (x >= 0 && x < 7);
    let y = Util.Prng.int_in t 3 5 in
    check_b "in closed range" true (y >= 3 && y <= 5)
  done

let test_prng_weighted () =
  let t = Util.Prng.create 9 in
  for _ = 1 to 200 do
    let x = Util.Prng.weighted t [ ("a", 1.0); ("b", 0.0); ("c", 2.0) ] in
    check_b "never zero-weight" true (x <> "b")
  done

let test_prng_gaussian_moments () =
  let t = Util.Prng.create 17 in
  let xs = List.init 4000 (fun _ -> Util.Prng.gaussian t ~mean:10.0 ~stddev:2.0) in
  check_b "mean near 10" true (Float.abs (Util.Stats.mean xs -. 10.0) < 0.2);
  check_b "stddev near 2" true (Float.abs (Util.Stats.stddev xs -. 2.0) < 0.2)

let test_prng_guards () =
  let t = Util.Prng.create 1 in
  check_b "int 0 rejected" true
    (try ignore (Util.Prng.int t 0); false with Invalid_argument _ -> true);
  check_b "empty pick rejected" true
    (try ignore (Util.Prng.pick t []); false with Invalid_argument _ -> true);
  check_b "weighted all-zero rejected" true
    (try ignore (Util.Prng.weighted t [ ("a", 0.0) ]); false
     with Invalid_argument _ -> true);
  check_b "empty range rejected" true
    (try ignore (Util.Prng.int_in t 5 4); false with Invalid_argument _ -> true)

let test_prng_zipf_range () =
  let t = Util.Prng.create 11 in
  for _ = 1 to 500 do
    let r = Util.Prng.zipf t ~n:10 ~s:1.0 in
    check_b "rank in range" true (r >= 1 && r <= 10)
  done

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (small_list small_int))
    (fun (seed, xs) ->
      let t = Util.Prng.create seed in
      let shuffled = Util.Prng.shuffle t xs in
      List.sort compare shuffled = List.sort compare xs)

let prop_sample_size =
  QCheck.Test.make ~name:"sample size and membership" ~count:200
    QCheck.(triple small_int small_nat (small_list small_int))
    (fun (seed, k, xs) ->
      let t = Util.Prng.create seed in
      let s = Util.Prng.sample t k xs in
      List.length s = min k (List.length xs)
      && List.for_all (fun x -> List.mem x xs) s)

(* ------------------------------------------------------------------ *)
(* Tokenize *)

let test_tokenize_identifiers () =
  check_sl "camelCase" [ "course"; "title" ] (Util.Tokenize.split_identifier "courseTitle");
  check_sl "snake_case" [ "course"; "title" ] (Util.Tokenize.split_identifier "course_title");
  check_sl "dashes" [ "course"; "title" ] (Util.Tokenize.split_identifier "COURSE-TITLE");
  check_sl "acronym" [ "xml"; "file" ] (Util.Tokenize.split_identifier "XMLFile");
  check_sl "digits split" [ "phone" ] (Util.Tokenize.split_identifier "phone2");
  check_sl "empty" [] (Util.Tokenize.split_identifier "");
  check_s "normalize" "course_title" (Util.Tokenize.normalize "CourseTitle")

let test_tokenize_words () =
  check_sl "punctuation"
    [ "intro"; "to"; "databases"; "cse444" ]
    (Util.Tokenize.words "Intro to Databases (CSE444)!")

(* ------------------------------------------------------------------ *)
(* Stemmer: classic Porter vectors *)

let porter_vectors =
  [ ("caresses", "caress"); ("ponies", "poni"); ("ties", "ti");
    ("cats", "cat"); ("agreed", "agre"); ("feed", "feed");
    ("plastered", "plaster"); ("motoring", "motor"); ("sized", "size");
    ("hopping", "hop"); ("failing", "fail"); ("filing", "file");
    ("happy", "happi"); ("sky", "sky"); ("relational", "relat");
    ("conditional", "condit"); ("rational", "ration");
    ("digitizer", "digit"); ("operator", "oper");
    ("feudalism", "feudal"); ("decisiveness", "decis");
    ("formaliti", "formal"); ("formative", "form");
    ("electriciti", "electr"); ("hopeful", "hope"); ("goodness", "good");
    ("allowance", "allow"); ("inference", "infer"); ("adjustable", "adjust");
    ("replacement", "replac"); ("adoption", "adopt"); ("activate", "activ");
    ("effective", "effect"); ("probate", "probat"); ("rate", "rate");
    ("controll", "control"); ("roll", "roll"); ("cease", "ceas") ]

let test_stemmer_vectors () =
  List.iter
    (fun (input, expected) -> check_s input expected (Util.Stemmer.stem input))
    porter_vectors

let test_stemmer_short_words () =
  check_s "is" "is" (Util.Stemmer.stem "is");
  check_s "be" "be" (Util.Stemmer.stem "be");
  check_s "a" "a" (Util.Stemmer.stem "a")

let prop_stemmer_idempotent_on_output_length =
  QCheck.Test.make ~name:"stem never lengthens much" ~count:300
    QCheck.(string_small_of QCheck.Gen.(char_range 'a' 'z'))
    (fun w -> String.length (Util.Stemmer.stem w) <= String.length w + 1)

(* ------------------------------------------------------------------ *)
(* Synonyms *)

let test_synonyms () =
  let t = Util.Synonyms.university_domain in
  check_b "course~class" true (Util.Synonyms.synonymous t "course" "class");
  check_b "cross-language" true (Util.Synonyms.synonymous t "course" "corso");
  check_b "not synonyms" false (Util.Synonyms.synonymous t "course" "phone");
  check_s "unknown is itself" "zebra" (Util.Synonyms.canonical t "zebra");
  check_b "expand contains self" true (List.mem "course" (Util.Synonyms.expand t "course"))

let test_synonyms_merge () =
  let t = Util.Synonyms.of_groups [ [ "a"; "b" ]; [ "b"; "c" ] ] in
  check_b "transitive merge" true (Util.Synonyms.synonymous t "a" "c")

(* ------------------------------------------------------------------ *)
(* Counter *)

let test_counter () =
  let c = Util.Counter.create () in
  Util.Counter.add c "x";
  Util.Counter.add c "x";
  Util.Counter.add ~weight:3.0 c "y";
  Alcotest.(check (float 1e-9)) "count x" 2.0 (Util.Counter.count c "x");
  Alcotest.(check (float 1e-9)) "total" 5.0 (Util.Counter.total c);
  check_i "distinct" 2 (Util.Counter.distinct c);
  (match Util.Counter.top c 1 with
  | [ ("y", 3.0) ] -> ()
  | _ -> Alcotest.fail "top-1 should be y");
  Alcotest.(check (float 1e-9)) "frequency" 0.4 (Util.Counter.frequency c "x")

let test_counter_merge () =
  let a = Util.Counter.create () and b = Util.Counter.create () in
  Util.Counter.add a "x";
  Util.Counter.add b "x";
  Util.Counter.add b "z";
  let m = Util.Counter.merge a b in
  Alcotest.(check (float 1e-9)) "merged x" 2.0 (Util.Counter.count m "x");
  Alcotest.(check (float 1e-9)) "merged z" 1.0 (Util.Counter.count m "z");
  Alcotest.(check (float 1e-9)) "a untouched" 1.0 (Util.Counter.count a "x")

(* ------------------------------------------------------------------ *)
(* Strdist *)

let test_levenshtein () =
  check_i "kitten/sitting" 3 (Util.Strdist.levenshtein "kitten" "sitting");
  check_i "empty" 3 (Util.Strdist.levenshtein "" "abc");
  check_i "equal" 0 (Util.Strdist.levenshtein "same" "same")

let prop_levenshtein_symmetric =
  QCheck.Test.make ~name:"levenshtein symmetric" ~count:200
    QCheck.(pair (string_small_of QCheck.Gen.(char_range 'a' 'e'))
              (string_small_of QCheck.Gen.(char_range 'a' 'e')))
    (fun (a, b) -> Util.Strdist.levenshtein a b = Util.Strdist.levenshtein b a)

let prop_levenshtein_identity =
  QCheck.Test.make ~name:"levenshtein identity" ~count:100
    QCheck.(string_small_of QCheck.Gen.(char_range 'a' 'e'))
    (fun a -> Util.Strdist.levenshtein a a = 0)

let prop_ngram_sim_bounds =
  QCheck.Test.make ~name:"ngram_sim in [0,1]" ~count:200
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
      let s = Util.Strdist.ngram_sim a b in
      s >= 0.0 && s <= 1.0)

let test_jaccard () =
  Alcotest.(check (float 1e-9)) "overlap" 0.5
    (Util.Strdist.jaccard [ "a"; "b" ] [ "b"; "c" ] *. 1.5);
  Alcotest.(check (float 1e-9)) "both empty" 1.0 (Util.Strdist.jaccard [] [])

(* ------------------------------------------------------------------ *)
(* Tfidf *)

let test_tfidf () =
  let docs = [ [ "course"; "title" ]; [ "course"; "phone" ]; [ "talk" ] ] in
  let c = Util.Tfidf.build docs in
  check_i "num docs" 3 (Util.Tfidf.num_docs c);
  let self = Util.Tfidf.similarity c [ "course"; "title" ] [ "course"; "title" ] in
  Alcotest.(check (float 1e-6)) "self similarity" 1.0 self;
  let rel = Util.Tfidf.similarity c [ "course"; "title" ] [ "course"; "phone" ] in
  let unrel = Util.Tfidf.similarity c [ "course"; "title" ] [ "talk" ] in
  check_b "related beats unrelated" true (rel > unrel);
  (* The rarer term is worth more. *)
  check_b "idf favours rare terms" true (Util.Tfidf.idf c "talk" > Util.Tfidf.idf c "course")

(* The pre-heap map-based cosine, kept as a reference model: the
   two-pointer merge must agree with it bit for bit on sorted vectors
   and the fallback must reproduce it on arbitrary ones. *)
let cosine_reference va vb =
  let module Smap = Map.Make (String) in
  let mb = List.fold_left (fun acc (k, v) -> Smap.add k v acc) Smap.empty vb in
  List.fold_left
    (fun acc (k, v) ->
      match Smap.find_opt k mb with None -> acc | Some w -> acc +. (v *. w))
    0.0 va

let sparse_vector_gen =
  QCheck.Gen.(
    let tok = map (Printf.sprintf "t%02d") (int_bound 30) in
    let weight = map (fun x -> float_of_int x /. 7.0) (int_range (-20) 20) in
    map
      (fun kvs ->
        (* unique tokens, ascending: what Tfidf.vectorize emits *)
        List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) kvs)
      (small_list (pair tok weight)))

let prop_cosine_merge_matches_reference =
  QCheck.Test.make ~name:"cosine two-pointer = map reference (sorted)"
    ~count:500
    (QCheck.make
       QCheck.Gen.(pair sparse_vector_gen sparse_vector_gen)
       ~print:(fun (a, b) ->
         let pp v =
           String.concat ";"
             (List.map (fun (k, w) -> Printf.sprintf "%s:%g" k w) v)
         in
         pp a ^ " | " ^ pp b))
    (fun (va, vb) ->
      (* bit-for-bit, not approximately *)
      Int64.equal
        (Int64.bits_of_float (Util.Tfidf.cosine va vb))
        (Int64.bits_of_float (cosine_reference va vb)))

let test_cosine_unsorted_fallback () =
  (* Counter.items-style input: ordered by count, not token. *)
  let va = [ ("zeta", 2.0); ("alpha", 1.0) ] in
  let vb = [ ("alpha", 3.0); ("zeta", 0.5); ("mid", 9.0) ] in
  Alcotest.(check (float 1e-12))
    "fallback equals reference" (cosine_reference va vb)
    (Util.Tfidf.cosine va vb);
  Alcotest.(check (float 1e-12)) "4.0" 4.0 (Util.Tfidf.cosine va vb)

let test_tfidf_of_counts () =
  let docs = [ [ "course"; "title" ]; [ "course"; "phone" ]; [ "talk" ] ] in
  let built = Util.Tfidf.build docs in
  let merged =
    Util.Tfidf.of_counts ~n:3
      [ ("course", 2); ("title", 1); ("phone", 1); ("talk", 1) ]
  in
  List.iter
    (fun tok ->
      check_b
        (Printf.sprintf "idf %s identical" tok)
        true
        (Int64.equal
           (Int64.bits_of_float (Util.Tfidf.idf built tok))
           (Int64.bits_of_float (Util.Tfidf.idf merged tok))))
    [ "course"; "title"; "phone"; "talk"; "absent" ]

(* ------------------------------------------------------------------ *)
(* Topk *)

let test_topk () =
  let t = Util.Topk.create 3 in
  List.iter (fun (s, x) -> Util.Topk.add t s x)
    [ (1.0, "a"); (5.0, "b"); (3.0, "c"); (4.0, "d"); (0.5, "e") ];
  let items = List.map snd (Util.Topk.to_list t) in
  check_sl "best three in order" [ "b"; "d"; "c" ] items;
  (match Util.Topk.min_score t with
  | Some s -> Alcotest.(check (float 1e-9)) "min score" 3.0 s
  | None -> Alcotest.fail "expected full accumulator")

(* Sort-free reference model: the pre-heap sorted-list implementation
   (insert after equal scores, truncate to k). The heap must reproduce
   its output — order and tie-breaks — for any insertion sequence. *)
let model_topk k xs =
  let insert l (score, item) =
    let rec go = function
      | [] -> [ (score, item) ]
      | (s, _) :: _ as l when score > s -> (score, item) :: l
      | hd :: tl -> hd :: go tl
    in
    List.filteri (fun i _ -> i < k) (go l)
  in
  List.fold_left insert [] xs

let model_min_score k l =
  if List.length l < k then None
  else Some (fst (List.nth l (List.length l - 1)))

let prop_topk_model =
  QCheck.Test.make ~name:"topk heap = sorted-list model (ties included)"
    ~count:500
    QCheck.(pair (int_range 1 8) (small_list (int_bound 4)))
    (fun (k, raw) ->
      (* scores drawn from 5 values to force plenty of ties; items are
         insertion indices so tie-break order is observable *)
      let xs = List.mapi (fun i s -> (float_of_int s, i)) raw in
      let t = Util.Topk.create k in
      List.iter (fun (s, x) -> Util.Topk.add t s x) xs;
      let expect = model_topk k xs in
      Util.Topk.to_list t = expect
      && Util.Topk.min_score t = model_min_score k expect)

let test_topk_create_guard () =
  check_b "k = 0 rejected" true
    (try
       ignore (Util.Topk.create 0);
       false
     with Invalid_argument _ -> true)

let prop_topk_sorted =
  QCheck.Test.make ~name:"topk sorted descending" ~count:200
    QCheck.(small_list (float_bound_inclusive 100.0))
    (fun xs ->
      let t = Util.Topk.create 5 in
      List.iter (fun x -> Util.Topk.add t x x) xs;
      let scores = List.map fst (Util.Topk.to_list t) in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a >= b && sorted rest
        | _ -> true
      in
      sorted scores && List.length scores = min 5 (List.length xs))

(* ------------------------------------------------------------------ *)
(* Union_find *)

let test_union_find () =
  let uf = Util.Union_find.create () in
  Util.Union_find.union uf "a" "b";
  Util.Union_find.union uf "c" "d";
  check_b "a~b" true (Util.Union_find.connected uf "a" "b");
  check_b "a!~c" false (Util.Union_find.connected uf "a" "c");
  Util.Union_find.union uf "b" "c";
  check_b "a~d transitively" true (Util.Union_find.connected uf "a" "d");
  check_i "one group of 4" 1
    (List.length (List.filter (fun g -> List.length g = 4) (Util.Union_find.groups uf)))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Util.Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Util.Stats.median xs);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Util.Stats.minimum xs);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Util.Stats.maximum xs);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Util.Stats.stddev xs);
  check_i "histogram bins" 5 (List.length (Util.Stats.histogram ~bins:5 xs));
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 (Util.Stats.histogram ~bins:3 xs) in
  check_i "histogram covers all" 5 total

(* ------------------------------------------------------------------ *)
(* Ascii_table *)

let test_ascii_table () =
  let t = Util.Ascii_table.create [ "n"; "value" ] in
  Util.Ascii_table.add_row t [ "1"; "one" ];
  Util.Ascii_table.add_row t [ "2" ];
  let rendered = Util.Ascii_table.render t in
  check_b "contains header" true
    (String.length rendered > 0
    && List.length (String.split_on_char '\n' rendered) = 4)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_ordering () =
  let xs = List.init 103 (fun i -> i) in
  let expect = List.map (fun x -> (x * x) + 1) xs in
  List.iter
    (fun jobs ->
      check_b
        (Printf.sprintf "jobs=%d matches List.map" jobs)
        true
        (Util.Pool.map jobs (fun x -> (x * x) + 1) xs = expect))
    [ 1; 2; 4; 7 ];
  check_b "empty input" true (Util.Pool.map 4 (fun x -> x) [] = []);
  check_b "more jobs than items" true
    (Util.Pool.map 8 String.length [ "a"; "bb" ] = [ 1; 2 ])

let test_pool_map_exception () =
  let raised =
    try
      ignore
        (Util.Pool.map 4
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 20 (fun i -> i)));
      false
    with Failure msg -> msg = "boom"
  in
  check_b "exception re-raised in caller" true raised

let test_pool_chunk () =
  check_b "empty" true (Util.Pool.chunk 3 [] = []);
  check_b "k=1" true (Util.Pool.chunk 1 [ 1; 2; 3 ] = [ [ 1; 2; 3 ] ]);
  check_b "k > length" true (Util.Pool.chunk 5 [ 1; 2 ] = [ [ 1 ]; [ 2 ] ]);
  check_b "near-equal split" true
    (Util.Pool.chunk 3 [ 1; 2; 3; 4; 5; 6; 7 ]
    = [ [ 1; 2; 3 ]; [ 4; 5 ]; [ 6; 7 ] ])

let prop_pool_chunk_concat =
  QCheck.Test.make ~name:"chunk concat is identity and pieces bounded"
    ~count:200
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (k, xs) ->
      let pieces = Util.Pool.chunk k xs in
      List.concat pieces = xs
      && List.length pieces <= k
      && List.for_all (fun p -> p <> []) pieces)

let prop_pool_map_equals_list_map =
  QCheck.Test.make ~name:"Pool.map = List.map for any jobs" ~count:50
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      Util.Pool.map jobs (fun x -> x * 3) xs = List.map (fun x -> x * 3) xs)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [ ("prng",
       [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
         Alcotest.test_case "split independent" `Quick test_prng_split_independent;
         Alcotest.test_case "bounds" `Quick test_prng_bounds;
         Alcotest.test_case "weighted" `Quick test_prng_weighted;
         Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
         Alcotest.test_case "guards" `Quick test_prng_guards;
         Alcotest.test_case "zipf range" `Quick test_prng_zipf_range ]
       @ qc [ prop_shuffle_is_permutation; prop_sample_size ]);
      ("tokenize",
       [ Alcotest.test_case "identifiers" `Quick test_tokenize_identifiers;
         Alcotest.test_case "words" `Quick test_tokenize_words ]);
      ("stemmer",
       [ Alcotest.test_case "porter vectors" `Quick test_stemmer_vectors;
         Alcotest.test_case "short words" `Quick test_stemmer_short_words ]
       @ qc [ prop_stemmer_idempotent_on_output_length ]);
      ("synonyms",
       [ Alcotest.test_case "university domain" `Quick test_synonyms;
         Alcotest.test_case "group merge" `Quick test_synonyms_merge ]);
      ("counter",
       [ Alcotest.test_case "basic" `Quick test_counter;
         Alcotest.test_case "merge" `Quick test_counter_merge ]);
      ("strdist",
       [ Alcotest.test_case "levenshtein" `Quick test_levenshtein;
         Alcotest.test_case "jaccard" `Quick test_jaccard ]
       @ qc [ prop_levenshtein_symmetric; prop_levenshtein_identity; prop_ngram_sim_bounds ]);
      ("tfidf",
       [ Alcotest.test_case "ranking" `Quick test_tfidf;
         Alcotest.test_case "unsorted cosine fallback" `Quick
           test_cosine_unsorted_fallback;
         Alcotest.test_case "of_counts = build" `Quick test_tfidf_of_counts ]
       @ qc [ prop_cosine_merge_matches_reference ]);
      ("topk",
       [ Alcotest.test_case "basic" `Quick test_topk;
         Alcotest.test_case "create guard" `Quick test_topk_create_guard ]
       @ qc [ prop_topk_sorted; prop_topk_model ]);
      ("union_find", [ Alcotest.test_case "basic" `Quick test_union_find ]);
      ("stats", [ Alcotest.test_case "descriptive" `Quick test_stats ]);
      ("ascii_table", [ Alcotest.test_case "render" `Quick test_ascii_table ]);
      ("pool",
       [ Alcotest.test_case "map ordering" `Quick test_pool_map_ordering;
         Alcotest.test_case "map exception" `Quick test_pool_map_exception;
         Alcotest.test_case "chunk" `Quick test_pool_chunk ]
       @ qc [ prop_pool_chunk_concat; prop_pool_map_equals_list_map ]) ]
