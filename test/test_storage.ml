(* Tests for the triple store (the annotation repository substrate) and
   the event-logging relation store. *)

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let vs s = Relalg.Value.Str s

let prov ?author url ts = Storage.Provenance.make ?author ~source_url:url ~timestamp:ts ()

let store_with_data () =
  let t = Storage.Triple_store.create () in
  Storage.Triple_store.add t ~subj:"u/alice#person0" ~pred:"mangrove:type"
    ~obj:(vs "person") ~prov:(prov "http://u/alice" 1);
  Storage.Triple_store.add t ~subj:"u/alice#person0" ~pred:"phone"
    ~obj:(vs "206-543-1695") ~prov:(prov "http://u/alice" 1);
  Storage.Triple_store.add t ~subj:"u/alice#person0" ~pred:"phone"
    ~obj:(vs "206-543-0000") ~prov:(prov "http://u/dept" 2);
  Storage.Triple_store.add t ~subj:"u/bob#person0" ~pred:"mangrove:type"
    ~obj:(vs "person") ~prov:(prov "http://u/bob" 3);
  Storage.Triple_store.add t ~subj:"u/bob#person0" ~pred:"phone"
    ~obj:(vs "206-543-1111") ~prov:(prov "http://u/bob" 3);
  t

let test_add_and_select () =
  let t = store_with_data () in
  check_i "size" 5 (Storage.Triple_store.size t);
  check_i "alice triples" 3
    (List.length (Storage.Triple_store.select ~subj:"u/alice#person0" t));
  check_i "phones" 3
    (List.length (Storage.Triple_store.select ~pred:"phone" t));
  check_i "by object" 1
    (List.length (Storage.Triple_store.select ~obj:(vs "206-543-1111") t))

let test_duplicate_statement_collapsed () =
  let t = Storage.Triple_store.create () in
  Storage.Triple_store.add t ~subj:"s" ~pred:"p" ~obj:(vs "o")
    ~prov:(prov "http://a" 1);
  Storage.Triple_store.add t ~subj:"s" ~pred:"p" ~obj:(vs "o")
    ~prov:(prov "http://a" 2);
  check_i "same source collapsed" 1 (Storage.Triple_store.size t);
  Storage.Triple_store.add t ~subj:"s" ~pred:"p" ~obj:(vs "o")
    ~prov:(prov "http://b" 3);
  check_i "other source kept" 2 (Storage.Triple_store.size t)

let test_remove_source () =
  let t = store_with_data () in
  check_i "removed" 2 (Storage.Triple_store.remove_source t "http://u/alice");
  check_i "remaining" 3 (Storage.Triple_store.size t);
  (* The dept-directory claim about alice survives: only alice's own
     page was retracted. *)
  check_i "only third-party claim left" 1
    (List.length (Storage.Triple_store.select ~subj:"u/alice#person0" t));
  (* Indexes must be consistent after the rebuild. *)
  check_i "phones now" 2 (List.length (Storage.Triple_store.select ~pred:"phone" t))

let test_sources () =
  let t = store_with_data () in
  check_i "three sources" 3 (List.length (Storage.Triple_store.sources t))

let test_bgp_query () =
  let t = store_with_data () in
  let v = Cq.Term.v and c s = Cq.Term.str s in
  (* All persons with their phones. *)
  let patterns =
    [ Storage.Triple_store.pat (v "S") (c "mangrove:type") (c "person");
      Storage.Triple_store.pat (v "S") (c "phone") (v "P") ]
  in
  let bindings = Storage.Triple_store.query t patterns in
  check_i "three (person, phone) pairs" 3 (List.length bindings);
  (* Join variable consistency: subjects must carry both triples. *)
  List.iter
    (fun b ->
      match Cq.Eval.Smap.find_opt "S" b with
      | Some (Relalg.Value.Str s) ->
          check_b "subject is a person" true
            (Storage.Triple_store.select ~subj:s ~pred:"mangrove:type" t <> [])
      | _ -> Alcotest.fail "unbound subject")
    bindings

let test_bgp_provenance () =
  let t = store_with_data () in
  let v = Cq.Term.v and c s = Cq.Term.str s in
  let results =
    Storage.Triple_store.query_provenanced t
      [ Storage.Triple_store.pat (c "u/alice#person0") (c "phone") (v "P") ]
  in
  check_i "two phone claims" 2 (List.length results);
  List.iter
    (fun (_, provs) -> check_i "one prov per pattern" 1 (List.length provs))
    results

let test_provenance_scope () =
  let p = prov "http://u/alice/home.html" 1 in
  check_b "in scope" true (Storage.Provenance.in_scope p "http://u/alice");
  check_b "out of scope" false (Storage.Provenance.in_scope p "http://u/bob")

(* Relation store *)

let test_relation_store_log_and_events () =
  let s = Storage.Relation_store.create () in
  Storage.Relation_store.declare s "r" [ "a" ];
  let events = ref 0 in
  Storage.Relation_store.subscribe s (fun _ -> incr events);
  check_b "insert" true (Storage.Relation_store.insert s "r" [| vs "x" |]);
  check_b "duplicate rejected" false (Storage.Relation_store.insert s "r" [| vs "x" |]);
  check_b "delete" true (Storage.Relation_store.delete s "r" [| vs "x" |]);
  check_b "delete missing" false (Storage.Relation_store.delete s "r" [| vs "x" |]);
  check_i "two effective events" 2 !events;
  check_i "log length" 2 (Storage.Relation_store.log_length s);
  Storage.Relation_store.truncate_log s;
  check_i "truncated" 0 (Storage.Relation_store.log_length s)

let test_relation_store_declare_conflict () =
  let s = Storage.Relation_store.create () in
  Storage.Relation_store.declare s "r" [ "a" ];
  Storage.Relation_store.declare s "r" [ "a" ];
  check_b "arity clash raises" true
    (try
       Storage.Relation_store.declare s "r" [ "a"; "b" ];
       false
     with Invalid_argument _ -> true)

(* N-Triples export/import *)

let test_ntriples_roundtrip () =
  let t = store_with_data () in
  Storage.Triple_store.add t ~subj:"tricky" ~pred:"note"
    ~obj:(vs "has \"quotes\" and\nnewlines \\ too")
    ~prov:(Storage.Provenance.make ~author:"bob smith" ~source_url:"http://x" ~timestamp:9 ());
  let text = Storage.Ntriples.export t in
  let t' = Storage.Ntriples.import_exn text in
  check_i "same size" (Storage.Triple_store.size t) (Storage.Triple_store.size t');
  check_b "same content" true (Storage.Ntriples.export t' = text);
  (* Provenance survives. *)
  (match Storage.Triple_store.select ~subj:"tricky" t' with
  | [ tr ] ->
      check_b "author" true (tr.Storage.Triple_store.prov.Storage.Provenance.author = Some "bob smith");
      check_i "timestamp" 9 tr.Storage.Triple_store.prov.Storage.Provenance.timestamp
  | _ -> Alcotest.fail "tricky triple lost")

let test_ntriples_import_errors () =
  check_b "garbage rejected" true
    (Result.is_error (Storage.Ntriples.import "not a triple"));
  check_b "missing provenance rejected" true
    (Result.is_error (Storage.Ntriples.import "<s> <p> \"o\" ."));
  (* Blank and comment lines are fine. *)
  check_b "comments ok" true (Result.is_ok (Storage.Ntriples.import "\n# hi\n\n"))

(* Relation store: FIFO notification and the bounded, explicitly
   truncating event log. *)

let test_relation_store_fifo_subscribers () =
  let s = Storage.Relation_store.create () in
  Storage.Relation_store.declare s "r" [ "a" ];
  let order = ref [] in
  Storage.Relation_store.subscribe s (fun _ -> order := "first" :: !order);
  Storage.Relation_store.subscribe s (fun _ -> order := "second" :: !order);
  Storage.Relation_store.subscribe s (fun _ -> order := "third" :: !order);
  ignore (Storage.Relation_store.insert s "r" [| vs "x" |]);
  Alcotest.(check (list string))
    "subscription order" [ "first"; "second"; "third" ] (List.rev !order)

let test_relation_store_bounded_log () =
  let s = Storage.Relation_store.create ~log_max:3 () in
  Storage.Relation_store.declare s "r" [ "a" ];
  for i = 1 to 5 do
    ignore (Storage.Relation_store.insert s "r" [| vs (string_of_int i) |])
  done;
  check_i "capped length" 3 (Storage.Relation_store.log_length s);
  check_i "floor past the dropped" 2 (Storage.Relation_store.log_floor s);
  check_i "total unaffected" 5 (Storage.Relation_store.total_events s);
  (* The retained suffix is chronological and addressable. *)
  (match Storage.Relation_store.log s with
  | [ Storage.Relation_store.Inserted (_, t3);
      Storage.Relation_store.Inserted (_, t4);
      Storage.Relation_store.Inserted (_, t5) ] ->
      check_b "oldest retained is 3" true (t3 = [| vs "3" |]);
      check_b "then 4" true (t4 = [| vs "4" |]);
      check_b "newest is 5" true (t5 = [| vs "5" |])
  | _ -> Alcotest.fail "unexpected log shape");
  check_b "events_since floor works" true
    (match Storage.Relation_store.events_since s 2 with
    | Some evs -> List.length evs = 3
    | None -> false);
  check_i "events_since mid-suffix" 1
    (match Storage.Relation_store.events_since s 4 with
    | Some evs -> List.length evs
    | None -> -1);
  check_b "events_since past the end is empty" true
    (Storage.Relation_store.events_since s 5 = Some []);
  (* Positions older than the floor are gone: the explicit rebuild
     signal, mirroring Relation.deltas_since. *)
  check_b "capped-away position signals rebuild" true
    (Storage.Relation_store.events_since s 1 = None);
  Storage.Relation_store.truncate_log s;
  check_i "truncate empties" 0 (Storage.Relation_store.log_length s);
  check_i "floor jumps to total" 5 (Storage.Relation_store.log_floor s);
  check_b "suffix at total still answerable" true
    (Storage.Relation_store.events_since s 5 = Some []);
  check_b "anything older now signals rebuild" true
    (Storage.Relation_store.events_since s 4 = None)

let test_relation_store_log_max_validated () =
  check_b "log_max must be positive" true
    (try
       ignore (Storage.Relation_store.create ~log_max:0 ());
       false
     with Invalid_argument _ -> true)

(* Codec: binary round-trips and frame integrity. *)

let tup l = Array.of_list l

let test_codec_int_roundtrip () =
  List.iter
    (fun i ->
      let buf = Buffer.create 16 in
      Storage.Codec.add_int buf i;
      let r = Storage.Codec.reader (Buffer.contents buf) in
      check_b (Printf.sprintf "int %d" i) true (Storage.Codec.read_int r = i);
      check_b "consumed" true (Storage.Codec.at_end r))
    [ 0; 1; -1; 63; 64; -64; -65; 300; -300; max_int; min_int ]

let test_codec_varint_rejects_negative () =
  check_b "negative varint" true
    (try
       Storage.Codec.add_varint (Buffer.create 4) (-1);
       false
     with Invalid_argument _ -> true)

let test_codec_value_tuple_delta () =
  let values =
    [ Relalg.Value.Null; Relalg.Value.Bool true; Relalg.Value.Bool false;
      Relalg.Value.Int 42; Relalg.Value.Int (-7);
      Relalg.Value.Float 2.5; Relalg.Value.Float (-0.125);
      vs ""; vs "plain"; vs "with | pipe\nand newline" ]
  in
  let buf = Buffer.create 64 in
  List.iter (Storage.Codec.add_value buf) values;
  let r = Storage.Codec.reader (Buffer.contents buf) in
  List.iter
    (fun v ->
      check_b "value round-trip" true
        (Relalg.Value.equal (Storage.Codec.read_value r) v))
    values;
  check_b "all consumed" true (Storage.Codec.at_end r);
  let delta =
    Relalg.Relation.Delta.make
      ~adds:[ tup [ vs "a"; Relalg.Value.Int 1 ] ]
      ~dels:[ tup [ vs "b"; Relalg.Value.Int 2 ]; tup [ vs "c"; vs "d" ] ]
      ()
  in
  let buf = Buffer.create 64 in
  Storage.Codec.add_delta buf delta;
  let got = Storage.Codec.read_delta (Storage.Codec.reader (Buffer.contents buf)) in
  check_b "delta round-trip" true (got = delta)

let test_codec_frame () =
  let payload = "hello frame" in
  let framed = Storage.Codec.frame payload in
  check_i "overhead" (String.length payload + Storage.Codec.frame_overhead)
    (String.length framed);
  (match Storage.Codec.read_frame framed 0 with
  | Storage.Codec.Frame (p, next) ->
      check_b "payload back" true (p = payload);
      check_i "next at end" (String.length framed) next
  | _ -> Alcotest.fail "expected a frame");
  check_b "End at the boundary" true
    (Storage.Codec.read_frame framed (String.length framed) = Storage.Codec.End);
  (* Torn cases: short header, length past the end, checksum mismatch. *)
  let torn = function Storage.Codec.Torn _ -> true | _ -> false in
  check_b "short header torn" true
    (torn (Storage.Codec.read_frame (String.sub framed 0 5) 0));
  check_b "truncated payload torn" true
    (torn (Storage.Codec.read_frame (String.sub framed 0 (String.length framed - 2)) 0));
  let corrupt = Bytes.of_string framed in
  Bytes.set corrupt (String.length framed - 1) '\255';
  check_b "bad crc torn" true
    (torn (Storage.Codec.read_frame (Bytes.to_string corrupt) 0))

let gen_value =
  QCheck.Gen.(
    oneof
      [ return Relalg.Value.Null;
        map (fun b -> Relalg.Value.Bool b) bool;
        map (fun i -> Relalg.Value.Int i) int;
        map (fun f -> Relalg.Value.Float f) (float_bound_inclusive 1e6);
        map (fun s -> Relalg.Value.Str s) (string_size (int_bound 30)) ])

let gen_tuple = QCheck.Gen.(map Array.of_list (list_size (int_bound 5) gen_value))

let prop_codec_delta_roundtrip =
  QCheck.Test.make ~name:"codec delta round-trip" ~count:1000
    (QCheck.make
       QCheck.Gen.(
         map2
           (fun adds dels -> Relalg.Relation.Delta.make ~adds ~dels ())
           (list_size (int_bound 6) gen_tuple)
           (list_size (int_bound 6) gen_tuple)))
    (fun delta ->
      let buf = Buffer.create 64 in
      Storage.Codec.add_delta buf delta;
      let encoded = Buffer.contents buf in
      let r = Storage.Codec.reader encoded in
      let got = Storage.Codec.read_delta r in
      got = delta && Storage.Codec.at_end r
      (* Determinism: equal deltas must frame to equal bytes. *)
      &&
      let buf2 = Buffer.create 64 in
      Storage.Codec.add_delta buf2 delta;
      Buffer.contents buf2 = encoded)

(* WAL: append, reopen, torn-tail truncation. *)

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "revere-test-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir dir 0o755;
    dir

let d1 tuples = Relalg.Relation.Delta.of_rows tuples

let test_wal_append_reopen () =
  let dir = temp_dir () in
  (match Storage.Wal.open_dir ~dir with
  | Error msg -> Alcotest.fail msg
  | Ok (w, records) ->
      check_i "fresh wal empty" 0 (List.length records);
      check_i "seq 1" 1 (Storage.Wal.append w ~rel:"r" (d1 [ tup [ vs "a" ] ]));
      check_i "seq 2" 2 (Storage.Wal.append w ~rel:"s" (d1 [ tup [ vs "b" ] ]));
      Storage.Wal.sync w;
      Storage.Wal.close w);
  match Storage.Wal.open_dir ~dir with
  | Error msg -> Alcotest.fail msg
  | Ok (w, records) ->
      check_i "both records back" 2 (List.length records);
      (match records with
      | [ r1; r2 ] ->
          check_i "seq order" 1 r1.Storage.Wal.seq;
          check_i "seq order 2" 2 r2.Storage.Wal.seq;
          check_b "rel back" true (r1.Storage.Wal.rel = "r");
          check_b "delta back" true
            (r2.Storage.Wal.delta = d1 [ tup [ vs "b" ] ])
      | _ -> Alcotest.fail "unexpected records");
      check_i "next seq continues" 3 (Storage.Wal.next_seq w);
      Storage.Wal.close w

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd len;
  Unix.close fd

let test_wal_torn_tail () =
  let dir = temp_dir () in
  let sizes =
    match Storage.Wal.open_dir ~dir with
    | Error msg -> Alcotest.fail msg
    | Ok (w, _) ->
        let sizes =
          List.map
            (fun i ->
              ignore
                (Storage.Wal.append w ~rel:"r"
                   (d1 [ tup [ vs (string_of_int i) ] ]));
              Storage.Wal.size w)
            [ 1; 2; 3 ]
        in
        Storage.Wal.close w;
        sizes
  in
  let path = Storage.Wal.file ~dir in
  (* Chop mid-way into the last record: the prefix must survive, the
     tail must be discarded and truncated away on reopen. *)
  let second = List.nth sizes 1 and third = List.nth sizes 2 in
  truncate_file path (second + (third - second) / 2);
  (match Storage.Wal.read path with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
      check_i "two records survive" 2 (List.length r.Storage.Wal.records);
      check_i "valid prefix" second r.Storage.Wal.valid_bytes;
      check_b "torn reported" true (r.Storage.Wal.torn_reason <> None));
  (match Storage.Wal.open_dir ~dir with
  | Error msg -> Alcotest.fail msg
  | Ok (w, records) ->
      check_i "replayable prefix" 2 (List.length records);
      check_i "file truncated to the boundary" second (Storage.Wal.size w);
      check_i "next append reuses the torn seq" 3 (Storage.Wal.next_seq w);
      Storage.Wal.close w);
  (* After reopen the file is clean again. *)
  match Storage.Wal.read path with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
      check_b "no torn tail left" true (r.Storage.Wal.torn_reason = None)

let test_wal_bad_magic () =
  let dir = temp_dir () in
  let path = Storage.Wal.file ~dir in
  let oc = open_out_bin path in
  output_string oc "NOT-A-WAL 9\njunk that is long enough";
  close_out oc;
  check_b "bad magic is an error, not a torn tail" true
    (Result.is_error (Storage.Wal.read path))

let test_wal_reserve () =
  let dir = temp_dir () in
  match Storage.Wal.open_dir ~dir with
  | Error msg -> Alcotest.fail msg
  | Ok (w, _) ->
      ignore (Storage.Wal.append w ~rel:"r" (d1 [ tup [ vs "a" ] ]));
      Storage.Wal.reserve w 10;
      check_i "reserved" 10 (Storage.Wal.next_seq w);
      Storage.Wal.reserve w 4;
      check_i "reserve never lowers" 10 (Storage.Wal.next_seq w);
      check_i "append lands past the reservation" 10
        (Storage.Wal.append w ~rel:"r" (d1 [ tup [ vs "b" ] ]));
      Storage.Wal.close w;
      (* A gap is legal on re-read (strictly increasing, not dense). *)
      (match Storage.Wal.read (Storage.Wal.file ~dir) with
      | Ok r -> check_i "gap tolerated" 2 (List.length r.Storage.Wal.records)
      | Error msg -> Alcotest.fail msg)

(* Snapshots: atomic write, newest-first listing, corrupt fallback. *)

let test_snapshot_roundtrip_and_fallback () =
  let dir = temp_dir () in
  let p1 = Storage.Snapshot.write ~dir ~seq:3 "state at three" in
  let p2 = Storage.Snapshot.write ~dir ~seq:7 "state at seven" in
  check_b "named by seq" true (Filename.basename p2 = "snapshot-7.snap");
  (match Storage.Snapshot.load p1 with
  | Ok (seq, payload) ->
      check_i "seq back" 3 seq;
      check_b "payload back" true (payload = "state at three")
  | Error msg -> Alcotest.fail msg);
  check_b "newest first" true
    (List.map fst (Storage.Snapshot.list ~dir) = [ 7; 3 ]);
  (match Storage.Snapshot.load_latest ~dir with
  | Some (7, "state at seven") -> ()
  | _ -> Alcotest.fail "latest should be seq 7");
  (* Corrupt the newest: recovery falls back to the next older one. *)
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0 p2 in
  seek_out oc (String.length "REVERE-SNAP 1\n" + 9);
  output_string oc "XXXX";
  close_out oc;
  (match Storage.Snapshot.load_latest ~dir with
  | Some (3, "state at three") -> ()
  | _ -> Alcotest.fail "corrupt newest must fall back");
  (* A torn snapshot file (crash before rename would normally prevent
     this, but belt and braces) is also skipped. *)
  truncate_file p2 10;
  match Storage.Snapshot.load_latest ~dir with
  | Some (3, _) -> ()
  | _ -> Alcotest.fail "torn newest must fall back"

(* Property: N-Triples export/import round-trips arbitrary strings —
   the '>' and '\r' escaping regression. *)

let gen_tricky_string =
  (* Weighted towards the characters the escaper must handle. *)
  QCheck.Gen.(
    string_size ~gen:
      (frequency
         [ (6, printable); (1, return '>'); (1, return '\r');
           (1, return '\n'); (1, return '\\'); (1, return '"');
           (1, return '<'); (1, return '#') ])
      (int_bound 20))

let prop_ntriples_roundtrip =
  QCheck.Test.make ~name:"ntriples export/import round-trip" ~count:1000
    (QCheck.make
       QCheck.Gen.(
         let nonempty g =
           map (fun s -> if s = "" then "x" else s) g
         in
         tup4 (nonempty gen_tricky_string) (nonempty gen_tricky_string)
           gen_tricky_string (nonempty gen_tricky_string)))
    (fun (subj, pred, obj, url) ->
      let t = Storage.Triple_store.create () in
      Storage.Triple_store.add t ~subj ~pred ~obj:(vs obj)
        ~prov:(Storage.Provenance.make ~source_url:url ~timestamp:5 ());
      Storage.Triple_store.add t ~subj:(subj ^ ">tail") ~pred:"p\rq"
        ~obj:(vs "o")
        ~prov:
          (Storage.Provenance.make ~author:"ann marie" ~source_url:"http://x"
             ~timestamp:6 ());
      let text = Storage.Ntriples.export t in
      match Storage.Ntriples.import text with
      | Error _ -> false
      | Ok t' ->
          (* Text-level fixpoint: the object goes through
             Value.of_string, so compare renderings, which also covers
             subjects, predicates and provenance byte-for-byte. *)
          Storage.Ntriples.export t' = text
          && Storage.Triple_store.size t' = Storage.Triple_store.size t
          && List.length (Storage.Triple_store.select ~subj t') = 1)

(* Property: BGP matching agrees with a naive nested-loop reference. *)

let prop_bgp_reference =
  QCheck.Test.make ~name:"bgp query agrees with naive reference" ~count:150
    (QCheck.make QCheck.Gen.(int_bound 100_000) ~print:string_of_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let t = Storage.Triple_store.create () in
      let subjects = [| "s0"; "s1"; "s2" |] in
      let preds = [| "p0"; "p1" |] in
      for i = 0 to 19 do
        Storage.Triple_store.add t
          ~subj:(Util.Prng.pick_arr prng subjects)
          ~pred:(Util.Prng.pick_arr prng preds)
          ~obj:(vs (string_of_int (Util.Prng.int prng 4)))
          ~prov:(prov (Printf.sprintf "http://src%d" (i mod 3)) i)
      done;
      let v = Cq.Term.v and c x = Cq.Term.str x in
      let pattern =
        Storage.Triple_store.pat (v "S")
          (if Util.Prng.bool prng then c "p0" else v "P")
          (v "O")
      in
      let pattern2 =
        Storage.Triple_store.pat (v "S") (c "p1") (v "O2")
      in
      let got = List.length (Storage.Triple_store.query t [ pattern; pattern2 ]) in
      (* Reference: nested loops over all triples. *)
      let triples = Storage.Triple_store.triples t in
      let matches (p : Storage.Triple_store.pattern) (tr : Storage.Triple_store.triple)
          (binding : (string * Relalg.Value.t) list) =
        let check term value binding =
          match term with
          | Cq.Term.Const x ->
              if Relalg.Value.equal x value then Some binding else None
          | Cq.Term.Var x -> (
              match List.assoc_opt x binding with
              | Some v ->
                  if Relalg.Value.equal v value then Some binding else None
              | None -> Some ((x, value) :: binding))
        in
        Option.bind (check p.Storage.Triple_store.psubj (vs tr.Storage.Triple_store.subj) binding)
          (fun b ->
            Option.bind (check p.Storage.Triple_store.ppred (vs tr.Storage.Triple_store.pred) b)
              (fun b -> check p.Storage.Triple_store.pobj tr.Storage.Triple_store.obj b))
      in
      let expected =
        List.concat_map
          (fun tr1 ->
            match matches pattern tr1 [] with
            | None -> []
            | Some b ->
                List.filter_map (fun tr2 -> matches pattern2 tr2 b) triples)
          triples
        |> List.length
      in
      got = expected)

let () =
  Alcotest.run "storage"
    [ ("triple_store",
       [ Alcotest.test_case "add and select" `Quick test_add_and_select;
         Alcotest.test_case "duplicates" `Quick test_duplicate_statement_collapsed;
         Alcotest.test_case "remove source" `Quick test_remove_source;
         Alcotest.test_case "sources" `Quick test_sources;
         Alcotest.test_case "bgp query" `Quick test_bgp_query;
         Alcotest.test_case "bgp provenance" `Quick test_bgp_provenance ]);
      ("provenance", [ Alcotest.test_case "scope" `Quick test_provenance_scope ]);
      ("ntriples",
       [ Alcotest.test_case "roundtrip" `Quick test_ntriples_roundtrip;
         Alcotest.test_case "import errors" `Quick test_ntriples_import_errors ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_bgp_reference; prop_codec_delta_roundtrip;
           prop_ntriples_roundtrip ]);
      ("codec",
       [ Alcotest.test_case "int round-trip" `Quick test_codec_int_roundtrip;
         Alcotest.test_case "varint negative" `Quick test_codec_varint_rejects_negative;
         Alcotest.test_case "value/tuple/delta" `Quick test_codec_value_tuple_delta;
         Alcotest.test_case "framing" `Quick test_codec_frame ]);
      ("wal",
       [ Alcotest.test_case "append and reopen" `Quick test_wal_append_reopen;
         Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
         Alcotest.test_case "bad magic" `Quick test_wal_bad_magic;
         Alcotest.test_case "reserve" `Quick test_wal_reserve ]);
      ("snapshot",
       [ Alcotest.test_case "round-trip and fallback" `Quick
           test_snapshot_roundtrip_and_fallback ]);
      ("relation_store",
       [ Alcotest.test_case "log and events" `Quick test_relation_store_log_and_events;
         Alcotest.test_case "declare conflict" `Quick test_relation_store_declare_conflict;
         Alcotest.test_case "fifo subscribers" `Quick test_relation_store_fifo_subscribers;
         Alcotest.test_case "bounded log" `Quick test_relation_store_bounded_log;
         Alcotest.test_case "log_max validated" `Quick test_relation_store_log_max_validated ]) ]
