(* Tests for the relational substrate. *)

open Relalg

let v_i i = Value.Int i
let v_s s = Value.Str s
let insert r row = Relation.apply r (Relation.Delta.add row)
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let people () =
  let r = Relation.create (Schema.make "people" [ "name"; "dept"; "age" ]) in
  insert r [| v_s "ada"; v_s "cs"; v_i 36 |];
  insert r [| v_s "bob"; v_s "cs"; v_i 41 |];
  insert r [| v_s "carol"; v_s "ee"; v_i 29 |];
  r

let depts () =
  let r = Relation.create (Schema.make "depts" [ "dept"; "building" ]) in
  insert r [| v_s "cs"; v_s "allen" |];
  insert r [| v_s "ee"; v_s "meb" |];
  r

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_parse () =
  check_b "int" true (Value.equal (Value.of_string "42") (v_i 42));
  check_b "float" true (Value.equal (Value.of_string "4.5") (Value.Float 4.5));
  check_b "bool" true (Value.equal (Value.of_string "true") (Value.Bool true));
  check_b "string" true (Value.equal (Value.of_string "cse444") (v_s "cse444"))

(* ------------------------------------------------------------------ *)
(* Schema *)

let test_schema_basics () =
  let s = Schema.make "r" [ "a"; "b"; "c" ] in
  check_i "arity" 3 (Schema.arity s);
  check_i "index" 1 (Schema.index_of s "b");
  check_b "has" true (Schema.has_attr s "c");
  check_b "missing" false (Schema.has_attr s "z")

let test_schema_duplicate_attr () =
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Schema.make: duplicate attribute in r") (fun () ->
      ignore (Schema.make "r" [ "a"; "a" ]))

(* ------------------------------------------------------------------ *)
(* Relation *)

let test_relation_insert_and_find () =
  let r = people () in
  check_i "cardinality" 3 (Relation.cardinality r);
  check_i "index lookup" 2 (List.length (Relation.find_by r 1 (v_s "cs")));
  (* Index must see rows inserted after it was built. *)
  insert r [| v_s "dan"; v_s "cs"; v_i 50 |];
  check_i "index after insert" 3 (List.length (Relation.find_by r 1 (v_s "cs")))

let test_relation_arity_mismatch () =
  let r = people () in
  check_b "raises" true
    (try
       insert r [| v_s "x" |];
       false
     with Invalid_argument _ -> true)

let test_relation_apply_multiset () =
  let r = Relation.create (Schema.make "r" [ "a" ]) in
  insert r [| v_i 1 |];
  check_b "mem" true (Relation.mem r [| v_i 1 |]);
  insert r [| v_i 1 |];
  check_i "bag keeps both copies" 2 (Relation.cardinality r);
  Relation.apply r (Relation.Delta.remove [| v_i 1 |]);
  check_i "remove takes one copy" 1 (Relation.cardinality r);
  check_b "still a member" true (Relation.mem r [| v_i 1 |]);
  Relation.apply r (Relation.Delta.remove [| v_i 1 |]);
  check_i "empty" 0 (Relation.cardinality r);
  check_b "gone" false (Relation.mem r [| v_i 1 |]);
  (* Removing an absent tuple is a silent no-op. *)
  Relation.apply r (Relation.Delta.remove [| v_i 9 |]);
  check_i "still empty" 0 (Relation.cardinality r)

let test_relation_bulk_insert_index () =
  let schema = Schema.make "r" [ "a"; "b" ] in
  let r = Relation.create schema in
  (* Build the column-0 index before any bulk load. *)
  check_i "empty index" 0 (List.length (Relation.find_by r 0 (v_i 1)));
  Relation.apply r
    (Relation.Delta.of_rows (List.init 40 (fun i -> [| v_i (i mod 4); v_i i |])));
  check_i "bulk rows visible" 40 (Relation.cardinality r);
  check_i "index sees bulk rows" 10 (List.length (Relation.find_by r 0 (v_i 1)));
  (* A second bulk load must extend, not rebuild-and-lose. *)
  Relation.apply r
    (Relation.Delta.of_rows [ [| v_i 1; v_i 99 |]; [| v_i 7; v_i 100 |] ]);
  check_i "index extended" 11 (List.length (Relation.find_by r 0 (v_i 1)));
  check_i "new key indexed" 1 (List.length (Relation.find_by r 0 (v_i 7)));
  check_b "mem via hash set" true (Relation.mem r [| v_i 7; v_i 100 |]);
  check_b "absent row" false (Relation.mem r [| v_i 7; v_i 101 |]);
  (* of_tuples goes through apply and must behave identically. *)
  let r' = Relation.of_tuples schema (Relation.tuples r) in
  check_i "of_tuples cardinality" 42 (Relation.cardinality r');
  check_i "of_tuples index" 11 (List.length (Relation.find_by r' 0 (v_i 1)))

let test_relation_find_by_bound () =
  let r = Relation.create (Schema.make "r" [ "a"; "b"; "c" ]) in
  Relation.apply r
    (Relation.Delta.of_rows
       [ [| v_i 1; v_s "x"; v_i 10 |];
         [| v_i 1; v_s "y"; v_i 11 |];
         [| v_i 2; v_s "x"; v_i 12 |];
         [| v_i 1; v_s "x"; v_i 13 |] ]);
  check_i "no bound cols = all rows" 4
    (List.length (Relation.find_by_bound r []));
  check_i "single bound col" 3
    (List.length (Relation.find_by_bound r [ (0, v_i 1) ]));
  (* Two bound columns intersect exactly. *)
  let hits = Relation.find_by_bound r [ (0, v_i 1); (1, v_s "x") ] in
  check_i "two bound cols" 2 (List.length hits);
  check_b "rows match both columns" true
    (List.for_all
       (fun row -> Value.equal row.(0) (v_i 1) && Value.equal row.(1) (v_s "x"))
       hits);
  (* With three bound columns the result may be a superset filtered by
     the two most selective lists, but must contain every exact match. *)
  let hits3 =
    Relation.find_by_bound r [ (0, v_i 1); (1, v_s "x"); (2, v_i 13) ]
  in
  check_b "superset contains exact match" true
    (List.exists
       (fun row -> Value.equal row.(2) (v_i 13))
       hits3)

(* ------------------------------------------------------------------ *)
(* Ops *)

let test_select_project () =
  let r = people () in
  let cs = Ops.select_eq "dept" (v_s "cs") r in
  check_i "select" 2 (Relation.cardinality cs);
  let depts_only = Ops.project [ "dept" ] r in
  check_i "project dedupes" 2 (Relation.cardinality depts_only)

let test_natural_join () =
  let j = Ops.natural_join (people ()) (depts ()) in
  check_i "join cardinality" 3 (Relation.cardinality j);
  let s = Relation.schema j in
  check_i "join arity" 4 (Schema.arity s);
  check_b "has building" true (Schema.has_attr s "building");
  let ada =
    List.filter
      (fun row -> Value.equal row.(Schema.index_of s "name") (v_s "ada"))
      (Relation.tuples j)
  in
  (match ada with
  | [ row ] ->
      check_b "ada in allen" true
        (Value.equal row.(Schema.index_of s "building") (v_s "allen"))
  | _ -> Alcotest.fail "expected exactly one ada row")

let test_set_ops () =
  let a = Relation.of_tuples (Schema.make "a" [ "x" ]) [ [| v_i 1 |]; [| v_i 2 |] ] in
  let b = Relation.of_tuples (Schema.make "b" [ "x" ]) [ [| v_i 2 |]; [| v_i 3 |] ] in
  check_i "union" 3 (Relation.cardinality (Ops.union a b));
  check_i "diff" 1 (Relation.cardinality (Ops.diff a b));
  check_i "intersect" 1 (Relation.cardinality (Ops.intersect a b))

let test_group_by () =
  let g = Ops.group_by [ "dept" ] [ Ops.Count; Ops.Avg "age" ] (people ()) in
  check_i "two groups" 2 (Relation.cardinality g);
  let s = Relation.schema g in
  let cs_row =
    List.find
      (fun row -> Value.equal row.(Schema.index_of s "dept") (v_s "cs"))
      (Relation.tuples g)
  in
  check_b "count 2" true (Value.equal cs_row.(Schema.index_of s "count") (v_i 2));
  check_b "avg 38.5" true
    (Value.equal cs_row.(Schema.index_of s "avg_age") (Value.Float 38.5))

let test_product_shared_attr_rejected () =
  check_b "raises" true
    (try
       ignore (Ops.product (people ()) (people ()));
       false
     with Invalid_argument _ -> true)

let test_rename_and_sort () =
  let r = people () in
  let renamed = Ops.rename_attrs [ ("age", "years") ] r in
  check_b "attr renamed" true (Schema.has_attr (Relation.schema renamed) "years");
  check_b "others kept" true (Schema.has_attr (Relation.schema renamed) "name");
  let sorted = Ops.sort_by "age" r in
  (match Relation.tuples sorted with
  | first :: _ ->
      check_b "youngest first" true (Value.equal first.(2) (v_i 29))
  | [] -> Alcotest.fail "empty");
  let r2 = Ops.rename "staff" r in
  Alcotest.(check string) "relation renamed" "staff" (Schema.name (Relation.schema r2))

let test_group_by_min_max () =
  let g = Ops.group_by [ "dept" ] [ Ops.Min "age"; Ops.Max "age" ] (people ()) in
  let s = Relation.schema g in
  let cs =
    List.find
      (fun row -> Value.equal row.(Schema.index_of s "dept") (v_s "cs"))
      (Relation.tuples g)
  in
  check_b "min 36" true (Value.equal cs.(Schema.index_of s "min_age") (v_i 36));
  check_b "max 41" true (Value.equal cs.(Schema.index_of s "max_age") (v_i 41))

let test_product_disjoint () =
  let a = Relation.of_tuples (Schema.make "a" [ "x" ]) [ [| v_i 1 |]; [| v_i 2 |] ] in
  let b = Relation.of_tuples (Schema.make "b" [ "y" ]) [ [| v_i 3 |] ] in
  check_i "2x1" 2 (Relation.cardinality (Ops.product a b))

(* ------------------------------------------------------------------ *)
(* Database *)

let test_database () =
  let db = Database.create () in
  Database.add_relation db (people ());
  Database.add_relation db (depts ());
  check_i "total tuples" 5 (Database.total_tuples db);
  check_b "mem" true (Database.mem db "people");
  check_b "copy is deep" true
    (let c = Database.copy db in
     insert (Database.find c "people") [| v_s "eve"; v_s "cs"; v_i 1 |];
     Relation.cardinality (Database.find db "people") = 3)

(* ------------------------------------------------------------------ *)
(* Properties *)

let small_rel_gen =
  (* Relation over schema r(a, b) with small-int values. *)
  QCheck.make
    ~print:(fun rows -> QCheck.Print.(list (pair int int)) rows)
    QCheck.Gen.(small_list (pair (int_bound 5) (int_bound 5)))

let rel_of rows name =
  Relation.of_tuples
    (Schema.make name [ "a"; "b" ])
    (List.map (fun (a, b) -> [| v_i a; v_i b |]) rows)

let prop_find_by_equals_filter =
  QCheck.Test.make ~name:"find_by agrees with scan" ~count:200
    QCheck.(pair small_rel_gen (int_bound 5))
    (fun (rows, key) ->
      let r = rel_of rows "r" in
      let via_index = List.length (Relation.find_by r 0 (v_i key)) in
      let via_scan =
        List.length (List.filter (fun (a, _) -> a = key) rows)
      in
      via_index = via_scan)

let prop_union_commutative =
  QCheck.Test.make ~name:"union commutative (as sets)" ~count:200
    QCheck.(pair small_rel_gen small_rel_gen)
    (fun (xs, ys) ->
      let a = rel_of xs "a" and b = rel_of ys "b" in
      let u1 = Ops.union a b and u2 = Ops.union b a in
      Relation.cardinality u1 = Relation.cardinality u2
      && List.for_all (Relation.mem u2) (Relation.tuples u1))

let prop_join_subset_of_product =
  QCheck.Test.make ~name:"join tuples satisfy key equality" ~count:200
    QCheck.(pair small_rel_gen small_rel_gen)
    (fun (xs, ys) ->
      let a = rel_of xs "a" in
      let b =
        Relation.of_tuples
          (Schema.make "b" [ "b"; "c" ])
          (List.map (fun (x, y) -> [| v_i x; v_i y |]) ys)
      in
      let j = Ops.natural_join a b in
      (* Every joined tuple's b-value must appear on both sides. *)
      List.for_all
        (fun row ->
          List.exists (fun (_, bb) -> Value.equal row.(1) (v_i bb)) xs
          && List.exists (fun (bb, _) -> Value.equal row.(1) (v_i bb)) ys)
        (Relation.tuples j))

let prop_diff_disjoint =
  QCheck.Test.make ~name:"diff result disjoint from subtrahend" ~count:200
    QCheck.(pair small_rel_gen small_rel_gen)
    (fun (xs, ys) ->
      let a = rel_of xs "a" and b = rel_of ys "b" in
      let d = Ops.diff a b in
      List.for_all (fun row -> not (Relation.mem b row)) (Relation.tuples d))

(* ------------------------------------------------------------------ *)
(* Delta log *)

let test_delta_log_basics () =
  let r = Relation.create (Schema.make "r" [ "a" ]) in
  let v0 = Relation.version r in
  Relation.apply r (Relation.Delta.of_rows [ [| v_i 1 |]; [| v_i 2 |] ]);
  Relation.apply r (Relation.Delta.remove [| v_i 1 |]);
  check_i "cardinality" 1 (Relation.cardinality r);
  (match Relation.deltas_since r v0 with
  | Some [ d1; d2 ] ->
      check_i "first adds" 2 (List.length (Relation.Delta.adds d1));
      check_i "second dels" 1 (List.length (Relation.Delta.dels d2))
  | _ -> Alcotest.fail "expected two log entries");
  check_b "current version folds to empty" true
    (Relation.deltas_since r (Relation.version r) = Some []);
  (* A no-op application bumps nothing and logs nothing. *)
  let v = Relation.version r in
  Relation.apply r (Relation.Delta.remove [| v_i 99 |]);
  check_i "no-op keeps version" v (Relation.version r);
  check_b "no-op logs nothing" true
    (Relation.deltas_since r v = Some [])

let test_delta_compose () =
  let open Relation.Delta in
  check_b "add-then-del cancels" true
    (is_empty (compose (of_rows [ [| v_i 1 |] ]) (remove [| v_i 1 |])));
  check_i "del-then-add keeps both" 2
    (size (compose (remove [| v_i 1 |]) (of_rows [ [| v_i 1 |] ])))

let test_delta_log_truncation () =
  let r = Relation.create (Schema.make "r" [ "a" ]) in
  let v0 = Relation.version r in
  (* Overflow the bounded log with single-row applies. *)
  for i = 1 to 600 do
    Relation.apply r (Relation.Delta.add [| v_i i |])
  done;
  check_b "origin out of reach" true (Relation.deltas_since r v0 = None);
  check_b "floor still reachable" true
    (Relation.deltas_since r (Relation.delta_floor r) <> None);
  Relation.clear r;
  check_b "clear truncates" true
    (Relation.deltas_since r (Relation.version r - 1) = None);
  check_b "clear leaves current reachable" true
    (Relation.deltas_since r (Relation.version r) = Some [])

(* ------------------------------------------------------------------ *)
(* Stats: cached cardinality + distinct counts, patched by deltas *)

let test_stats_distinct_and_cache () =
  Stats.reset_cache ();
  let r = people () in
  let s = Stats.of_relation r in
  check_i "cardinality" 3 s.Stats.cardinality;
  check_i "distinct names" 3 s.Stats.distinct.(0);
  check_i "distinct depts" 2 s.Stats.distinct.(1);
  check_i "one miss" 1 (Stats.cache_misses ());
  (* Unchanged relation: served from the cache. *)
  let s' = Stats.of_relation r in
  check_b "same stats" true (s = s');
  check_i "one hit" 1 (Stats.cache_hits ());
  (* A mutation bumps the version; the stale entry is patched from the
     retained delta instead of rescanned. *)
  insert r [| v_s "dan"; v_s "cs"; v_i 29 |];
  let s2 = Stats.of_relation r in
  check_i "patched cardinality" 4 s2.Stats.cardinality;
  check_i "dept count unchanged" 2 s2.Stats.distinct.(1);
  check_i "still one miss" 1 (Stats.cache_misses ());
  check_i "one patch" 1 (Stats.cache_patches ());
  (* Forcing the version-guarded baseline rescans instead. *)
  insert r [| v_s "eve"; v_s "ee"; v_i 30 |];
  let s3 = Stats.of_relation ~incremental:false r in
  check_i "rescanned cardinality" 5 s3.Stats.cardinality;
  check_i "second miss" 2 (Stats.cache_misses ());
  (* Selectivity: 1/distinct, clamped for degenerate columns. *)
  check_b "dept selectivity" true (Stats.selectivity s2 1 = 0.5);
  check_b "out of range is neutral" true (Stats.selectivity s2 9 = 1.0)

let stats_ops_gen =
  QCheck.make
    ~print:(fun ops -> QCheck.Print.(list (triple bool int int)) ops)
    QCheck.Gen.(list_size (int_bound 30) (triple bool (int_bound 5) (int_bound 5)))

let prop_stats_patch_equals_rescan =
  QCheck.Test.make ~name:"stats: delta patching == rescan" ~count:200
    QCheck.(pair small_rel_gen stats_ops_gen)
    (fun (rows, ops) ->
      Stats.reset_cache ();
      let r = rel_of rows "r" in
      ignore (Stats.of_relation r) (* prime the cached entry *);
      List.iter
        (fun (is_del, a, b) ->
          let row = [| v_i a; v_i b |] in
          if is_del then Relation.apply r (Relation.Delta.remove row)
          else Relation.apply r (Relation.Delta.add row))
        ops;
      let patched = Stats.of_relation r in
      (* [copy] mints a fresh uid, forcing a cold full rescan. *)
      let fresh = Stats.of_relation (Relation.copy r) in
      patched.Stats.cardinality = fresh.Stats.cardinality
      && patched.Stats.distinct = fresh.Stats.distinct)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "relalg"
    [ ("value", [ Alcotest.test_case "parse" `Quick test_value_parse ]);
      ("schema",
       [ Alcotest.test_case "basics" `Quick test_schema_basics;
         Alcotest.test_case "duplicate attr" `Quick test_schema_duplicate_attr ]);
      ("relation",
       [ Alcotest.test_case "insert and find" `Quick test_relation_insert_and_find;
         Alcotest.test_case "arity mismatch" `Quick test_relation_arity_mismatch;
         Alcotest.test_case "apply multiset" `Quick test_relation_apply_multiset;
         Alcotest.test_case "delta log" `Quick test_delta_log_basics;
         Alcotest.test_case "delta compose" `Quick test_delta_compose;
         Alcotest.test_case "delta log truncation" `Quick test_delta_log_truncation;
         Alcotest.test_case "bulk insert index" `Quick test_relation_bulk_insert_index;
         Alcotest.test_case "find_by_bound" `Quick test_relation_find_by_bound ]);
      ("ops",
       [ Alcotest.test_case "select/project" `Quick test_select_project;
         Alcotest.test_case "natural join" `Quick test_natural_join;
         Alcotest.test_case "set ops" `Quick test_set_ops;
         Alcotest.test_case "group by" `Quick test_group_by;
         Alcotest.test_case "product guard" `Quick test_product_shared_attr_rejected;
         Alcotest.test_case "rename and sort" `Quick test_rename_and_sort;
         Alcotest.test_case "group min/max" `Quick test_group_by_min_max;
         Alcotest.test_case "product" `Quick test_product_disjoint ]);
      ("database", [ Alcotest.test_case "basics" `Quick test_database ]);
      ("stats",
       [ Alcotest.test_case "distinct and cache" `Quick
           test_stats_distinct_and_cache ]);
      ("properties",
       qc
         [ prop_find_by_equals_filter; prop_union_commutative;
           prop_join_subset_of_product; prop_diff_disjoint;
           prop_stats_patch_equals_rescan ]) ]
